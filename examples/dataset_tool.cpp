// Dataset command-line tool: generate an on-disk image dataset, convert it
// into the LMDB-like database file, and inspect the result — the offline
// workflow (Fig. 1 steps 1-3 + the §2.2 conversion step) as real artifacts
// on the filesystem.
//
// Usage:
//   dataset_tool gen     dir=/tmp/ds images=64 format=jpeg|png|ppm quality=85
//   dataset_tool convert dir=/tmp/ds db=/tmp/ds.dlb resize=64 threads=2
//   dataset_tool pack    dir=/tmp/ds out=/tmp/ds.pack
//   dataset_tool inspect db=/tmp/ds.dlb
#include <cstdio>
#include <algorithm>
#include <fstream>
#include <sstream>

#include "codec/jpeg_encoder.h"
#include "codec/png.h"
#include "codec/ppm.h"
#include "common/config.h"
#include "dataplane/synthetic_dataset.h"
#include "storagedb/dataset_convert.h"

namespace {

using dlb::Config;

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// Write/read a plain-text manifest alongside the image files.
dlb::Status WriteManifest(const std::string& dir, const dlb::Manifest& m) {
  std::ofstream out(dir + "/manifest.tsv");
  if (!out) return dlb::Internal("cannot write manifest");
  for (const auto& rec : m.Records()) {
    out << rec.name << "\t" << rec.size << "\t" << rec.label << "\t"
        << rec.width << "\t" << rec.height << "\n";
  }
  return dlb::Status::Ok();
}

dlb::Result<dlb::Manifest> ReadManifest(const std::string& dir) {
  std::ifstream in(dir + "/manifest.tsv");
  if (!in) return dlb::NotFound("no manifest.tsv in " + dir);
  dlb::Manifest m;
  std::string line;
  uint64_t id = 0;
  while (std::getline(in, line)) {
    std::istringstream row(line);
    dlb::FileRecord rec;
    rec.id = id++;
    row >> rec.name >> rec.size >> rec.label >> rec.width >> rec.height;
    if (rec.name.empty()) continue;
    m.Add(rec);
  }
  return m;
}

int CmdGen(const Config& args) {
  const std::string dir = args.GetString("dir", "");
  if (dir.empty()) return Fail("gen needs dir=<path>");
  const size_t images = args.GetInt("images", 64);
  const std::string format = args.GetString("format", "jpeg");
  dlb::DatasetSpec spec = dlb::ImageNetLikeSpec(images);
  spec.width = static_cast<int>(args.GetInt("width", 200));
  spec.height = static_cast<int>(args.GetInt("height", 150));
  spec.quality = static_cast<int>(args.GetInt("quality", 85));
  spec.seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  dlb::DirectoryBlobStore store(dir);
  dlb::Manifest manifest;
  for (uint64_t i = 0; i < images; ++i) {
    int label = 0;
    dlb::Image scene = dlb::RenderScene(spec, i, &label);
    dlb::Result<dlb::Bytes> encoded = dlb::InvalidArgument("");
    std::string ext;
    if (format == "jpeg") {
      dlb::jpeg::EncodeOptions opts;
      opts.quality = spec.quality;
      encoded = dlb::jpeg::Encode(scene, opts);
      ext = ".jpg";
    } else if (format == "png") {
      encoded = dlb::png::Encode(scene);
      ext = ".png";
    } else if (format == "ppm") {
      encoded = dlb::ppm::Encode(scene);
      ext = ".ppm";
    } else {
      return Fail("unknown format: " + format);
    }
    if (!encoded.ok()) return Fail(encoded.status().ToString());
    char name[32];
    std::snprintf(name, sizeof(name), "img_%06llu%s",
                  static_cast<unsigned long long>(i), ext.c_str());
    auto rec = store.Write(encoded.value(), name, label);
    if (!rec.ok()) return Fail(rec.status().ToString());
    rec.value().width = static_cast<uint16_t>(scene.Width());
    rec.value().height = static_cast<uint16_t>(scene.Height());
    manifest.Add(rec.value());
  }
  dlb::Status s = WriteManifest(dir, manifest);
  if (!s.ok()) return Fail(s.ToString());
  std::printf("wrote %zu %s files (%.1f KiB) + manifest.tsv to %s\n", images,
              format.c_str(), store.SizeBytes() / 1024.0, dir.c_str());
  return 0;
}

int CmdConvert(const Config& args) {
  const std::string dir = args.GetString("dir", "");
  const std::string db_path = args.GetString("db", "");
  if (dir.empty() || db_path.empty()) {
    return Fail("convert needs dir=<path> db=<path>");
  }
  auto manifest = ReadManifest(dir);
  if (!manifest.ok()) return Fail(manifest.status().ToString());

  // Pull the files into an in-memory dataset for the converter. Only JPEG
  // sources are convertible (the converter is the Caffe-style JPEG->datum
  // pass); other formats are reported.
  dlb::Dataset ds;
  ds.store = std::make_unique<dlb::InMemoryBlobStore>();
  dlb::DirectoryBlobStore files(dir);
  for (const auto& rec : manifest.value().Records()) {
    auto bytes = files.Read(rec);
    if (!bytes.ok()) return Fail(bytes.status().ToString());
    dlb::FileRecord copy =
        ds.store->Append(bytes.value(), rec.name, rec.label);
    copy.width = rec.width;
    copy.height = rec.height;
    ds.manifest.Add(copy);
  }

  const uint32_t buckets = std::max<uint32_t>(
      64, static_cast<uint32_t>(ds.manifest.Size() / 4));
  dlb::db::KvStore store(buckets);
  dlb::db::ConvertOptions opts;
  opts.resize_width = static_cast<int>(args.GetInt("resize", 64));
  opts.resize_height = opts.resize_width;
  opts.num_threads = static_cast<int>(args.GetInt("threads", 2));
  auto report = dlb::db::ConvertDataset(ds, opts, &store);
  if (!report.ok()) return Fail(report.status().ToString());
  dlb::Status s = store.SaveToFile(db_path);
  if (!s.ok()) return Fail(s.ToString());
  std::printf(
      "converted %llu images in %.2fs (%.0f img/s), wrote %.1f MiB DB to "
      "%s\n",
      static_cast<unsigned long long>(report.value().images),
      report.value().wall_seconds,
      report.value().images / report.value().wall_seconds,
      store.SizeBytes() / 1048576.0, db_path.c_str());
  return 0;
}

int CmdPack(const Config& args) {
  const std::string dir = args.GetString("dir", "");
  const std::string out_path = args.GetString("out", "");
  if (dir.empty() || out_path.empty()) {
    return Fail("pack needs dir=<path> out=<file>");
  }
  auto manifest = ReadManifest(dir);
  if (!manifest.ok()) return Fail(manifest.status().ToString());
  dlb::DirectoryBlobStore files(dir);
  dlb::Status s =
      dlb::PackedFileBlobStore::Pack(manifest.value(), files, out_path);
  if (!s.ok()) return Fail(s.ToString());
  auto reopened = dlb::PackedFileBlobStore::Open(out_path);
  if (!reopened.ok()) return Fail(reopened.status().ToString());
  std::printf("packed %zu blobs (%.1f KiB arena) into %s\n",
              reopened.value().manifest.Size(),
              reopened.value().store->SizeBytes() / 1024.0, out_path.c_str());
  return 0;
}

int CmdInspect(const Config& args) {
  const std::string db_path = args.GetString("db", "");
  if (db_path.empty()) return Fail("inspect needs db=<path>");
  auto store = dlb::db::KvStore::LoadFromFile(db_path);
  if (!store.ok()) return Fail(store.status().ToString());
  std::printf("%s: %llu records, %.1f MiB\n", db_path.c_str(),
              static_cast<unsigned long long>(store.value()->RecordCount()),
              store.value()->SizeBytes() / 1048576.0);
  size_t shown = 0;
  dlb::Status s = store.value()->Scan(
      [&shown](std::string_view key, dlb::ByteSpan value) {
        if (shown >= 5) return;
        auto datum = dlb::db::DecodeDatum(value);
        if (datum.ok()) {
          std::printf("  %.*s: %ux%ux%u label=%d (%zu bytes)\n",
                      static_cast<int>(key.size()), key.data(),
                      datum.value().first.width, datum.value().first.height,
                      datum.value().first.channels, datum.value().first.label,
                      value.size());
        }
        ++shown;
      });
  if (!s.ok()) return Fail(s.ToString());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: dataset_tool gen|convert|pack|inspect key=value...\n");
    return 1;
  }
  const std::string command = argv[1];
  auto args = Config::FromArgs({argv + 2, argv + argc});
  if (!args.ok()) return Fail(args.status().ToString());
  if (command == "gen") return CmdGen(args.value());
  if (command == "convert") return CmdConvert(args.value());
  if (command == "pack") return CmdPack(args.value());
  if (command == "inspect") return CmdInspect(args.value());
  return Fail("unknown command: " + command);
}
