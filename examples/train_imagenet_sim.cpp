// Offline training, end to end, two ways:
//
//  (a) RUNTIME: a real multithreaded run of the DLBooster pipeline feeding
//      a toy SGD "engine" (linear classifier on decoded pixels) — actual
//      bytes, actual decode, actual batches, loss goes down.
//  (b) EVALUATION: the calibrated DES reproducing the paper's AlexNet
//      testbed numbers for every backend.
//
// Usage: train_imagenet_sim [images=512 batch=32 epochs=2 backend=dlbooster]
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/config.h"
#include "core/pipeline.h"
#include "dataplane/synthetic_dataset.h"
#include "workflow/report.h"
#include "workflow/toy_trainer.h"
#include "workflow/training_sim.h"



int main(int argc, char** argv) {
  auto config_or = dlb::Config::FromArgs({argv + 1, argv + argc});
  if (!config_or.ok()) {
    std::fprintf(stderr, "bad args: %s\n",
                 config_or.status().ToString().c_str());
    return 1;
  }
  const dlb::Config& args = config_or.value();
  const size_t images = args.GetInt("images", 512);
  const int batch = static_cast<int>(args.GetInt("batch", 32));
  const int epochs = static_cast<int>(args.GetInt("epochs", 2));

  // ---- (a) Real training run over the runtime pipeline ----
  std::printf("== runtime: toy classifier on DLBooster-decoded batches ==\n");
  dlb::DatasetSpec spec = dlb::ImageNetLikeSpec(images);
  spec.width = 160;
  spec.height = 120;
  spec.num_classes = 10;
  auto dataset = dlb::GenerateDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  dlb::core::PipelineConfig config;
  config.backend = args.GetString("backend", "dlbooster");
  config.options.batch_size = batch;
  config.options.resize_w = 64;
  config.options.resize_h = 64;
  config.max_images = images * epochs;
  config.cache_epochs = true;  // §3.1 hybrid service: epoch 2+ from memory
  auto pipeline = dlb::core::PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&dataset.value().manifest,
                                   dataset.value().store.get())
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }

  dlb::workflow::ToyClassifier model(/*features=*/64, /*classes=*/10);
  const size_t batches_per_epoch = (images + batch - 1) / batch;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    double loss = 0;
    size_t count = 0;
    for (size_t b = 0; b < batches_per_epoch; ++b) {
      auto decoded = pipeline.value()->NextBatch();
      if (!decoded.ok()) break;
      loss += model.Step(*decoded.value(), 0.05f);
      ++count;
    }
    std::printf("epoch %d: mean loss %.4f over %zu batches\n", epoch,
                count ? loss / count : 0.0, count);
  }

  // ---- (b) DES: the paper's AlexNet testbed ----
  std::printf("\n== evaluation: AlexNet on 2x P100 (calibrated DES) ==\n");
  dlb::workflow::Table table(
      {"backend", "gpus", "images/s", "cpu cores"});
  for (auto backend : {dlb::workflow::TrainBackend::kCpu,
                       dlb::workflow::TrainBackend::kLmdb,
                       dlb::workflow::TrainBackend::kDlbooster,
                       dlb::workflow::TrainBackend::kSynthetic}) {
    for (int gpus : {1, 2}) {
      dlb::workflow::TrainConfig tc;
      tc.backend = backend;
      tc.num_gpus = gpus;
      tc.sim_seconds = 10;
      auto r = dlb::workflow::SimulateTraining(tc);
      table.AddRow({dlb::workflow::TrainBackendName(backend),
                    std::to_string(gpus),
                    dlb::workflow::FmtCount(r.throughput),
                    dlb::workflow::Fmt(r.cpu_cores, 1)});
    }
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}
