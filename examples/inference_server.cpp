// Online inference server over the network path (Fig. 1 / §5.3).
//
// Two modes share one pipeline shape (rx queue -> emulated-FPGA decode ->
// completion):
//
//   Synthetic (default): in-process client threads stream JPEGs into the
//   receive queue and the serving loop answers them — the paper's
//   single-stream measurement, deterministic and self-contained.
//
//     inference_server [requests=200 clients=5 batch=8 backend=dlbooster ...]
//
//   Serving (serve_port=N): a real multi-tenant front door
//   (frontdoor::FrontDoor) listens on TCP — admission control, per-tenant
//   priority queues, token buckets, deadline rejection and overload
//   shedding. Drive it with tools/dlb_loadgen (or curl) and watch it with
//   dlb_monitor:
//
//     inference_server serve_port=8080 monitor_port=9090 serve_seconds=0
//         tenants='premium:prio=2,rate=500,deadline=50;batch:prio=0'
//     (one command line; serve_seconds=0 = run until SIGINT/SIGTERM)
//
// Shared knobs: batch, backend, devices, numa, placement, steal,
// monitor_port, sample_ms, events, watchdog, slo, flight_dir (see
// core/pipeline.h). With slo=<spec> the pipeline evaluates objectives
// continuously; flight_dir=<dir> arms the black-box flight recorder. In
// serving mode the front door's shed level feeds the /healthz
// degraded-but-serving line.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "core/pipeline.h"
#include "dataplane/synthetic_dataset.h"
#include "frontdoor/front_door.h"

namespace {

std::atomic<bool> g_stop{false};
void HandleSignal(int) { g_stop.store(true); }

dlb::core::PipelineConfig ConfigFromArgs(const dlb::Config& args) {
  dlb::core::PipelineConfig config;
  config.backend = args.GetString("backend", "dlbooster");
  config.options.batch_size = static_cast<int>(args.GetInt("batch", 8));
  config.options.resize_w = 64;
  config.options.resize_h = 64;
  config.options.queue_depth = 4;
  config.devices = static_cast<int>(args.GetInt("devices", 1));
  config.numa_nodes = static_cast<int>(args.GetInt("numa", 1));
  config.placement = args.GetString("placement", "interleave");
  config.steal = args.GetInt("steal", 1) != 0;
  config.monitor_port = static_cast<int>(args.GetInt("monitor_port", -1));
  config.monitor_sample_ms = args.GetInt("sample_ms", 500);
  config.event_log_level = args.GetString("events", "off");
  config.watchdog_deadline_ms = args.GetInt("watchdog", 0);
  config.slo = args.GetString("slo", "");
  config.flight_dir = args.GetString("flight_dir", "");
  return config;
}

// Serving mode: socket front door over the pipeline, runs until the
// duration elapses (serve_seconds) or a signal arrives.
int Serve(const dlb::Config& args) {
  dlb::BoundedQueue<dlb::NetworkImage> rx_queue(
      static_cast<size_t>(args.GetInt("rx_queue", 64)));
  dlb::core::PipelineConfig config = ConfigFromArgs(args);
  // Online serving must flush partial batches: a lone request cannot wait
  // for batch_size-1 others that may never arrive.
  config.options.linger_ms = static_cast<uint64_t>(args.GetInt("linger", 5));
  auto pipeline = dlb::core::PipelineBuilder()
                      .WithConfig(config)
                      .WithNetworkSource(&rx_queue)
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }

  dlb::frontdoor::FrontDoorOptions options;
  options.port = static_cast<int>(args.GetInt("serve_port", 0));
  options.bind_address = args.GetString("serve_bind", "127.0.0.1");
  options.tenants =
      args.GetString("tenants", "default:prio=1,deadline=1000");
  options.target_wait_ms = args.GetDouble("target_wait_ms", 0.0);
  dlb::frontdoor::FrontDoor door(pipeline.value().get(), &rx_queue, options);
  if (auto started = door.Start(); !started.ok()) {
    std::fprintf(stderr, "front door: %s\n", started.ToString().c_str());
    return 1;
  }

  std::printf("serving on http://%s:%d (POST /infer?tenant=<t>)\n",
              options.bind_address.c_str(), door.Port());
  if (pipeline.value()->MonitorPort() >= 0) {
    std::printf("monitoring on http://127.0.0.1:%d\n",
                pipeline.value()->MonitorPort());
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  const double serve_seconds = args.GetDouble("serve_seconds", 0.0);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(serve_seconds));
  while (!g_stop.load()) {
    if (serve_seconds > 0 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  door.Stop();
  std::printf("served: admitted=%llu completed=%llu shed_level=%d\n",
              static_cast<unsigned long long>(door.Admitted()),
              static_cast<unsigned long long>(door.Completed()),
              door.ShedLevel());
  return 0;
}

// Synthetic mode: the original self-driving measurement.
int RunSynthetic(const dlb::Config& args) {
  const uint64_t total_requests = args.GetInt("requests", 200);
  const int num_clients = static_cast<int>(args.GetInt("clients", 5));

  // Pre-render the client-side images (each client cycles its own set).
  dlb::DatasetSpec spec = dlb::ImageNetLikeSpec(32);
  spec.width = 160;
  spec.height = 120;
  auto dataset = dlb::GenerateDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // The "NIC": a bounded receive queue the pipeline drains.
  dlb::BoundedQueue<dlb::NetworkImage> rx_queue(64);

  // Request book-keeping: id -> send timestamp.
  std::mutex book_mu;
  std::map<uint64_t, std::chrono::steady_clock::time_point> in_flight;
  dlb::Histogram latency_us;

  // Client threads stream images in real time.
  std::atomic<uint64_t> next_request{0};
  std::vector<std::jthread> clients;
  clients.reserve(num_clients);
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      while (true) {
        const uint64_t id = next_request.fetch_add(1);
        if (id >= total_requests) return;
        const auto& rec =
            dataset.value().manifest.At((id + c) %
                                        dataset.value().manifest.Size());
        auto bytes = dataset.value().store->Read(rec);
        if (!bytes.ok()) return;
        dlb::NetworkImage img;
        img.payload.assign(bytes.value().begin(), bytes.value().end());
        img.request_id = id;
        {
          std::scoped_lock lock(book_mu);
          in_flight[id] = std::chrono::steady_clock::now();
        }
        if (!rx_queue.Push(std::move(img)).ok()) return;
      }
    });
  }

  // Once every client has sent its share, close the NIC queue: queued
  // images still drain, and the pipeline then flushes its partial final
  // batch instead of waiting for more traffic.
  std::jthread closer([&] {
    for (auto& c : clients) c.join();
    rx_queue.Close();
  });

  auto pipeline = dlb::core::PipelineBuilder()
                      .WithConfig(ConfigFromArgs(args))
                      .WithNetworkSource(&rx_queue)
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  if (pipeline.value()->MonitorPort() >= 0) {
    std::printf("monitoring on http://127.0.0.1:%d\n",
                pipeline.value()->MonitorPort());
  }

  // Serving loop: "infer" (pooled-pixel argmax) and acknowledge requests.
  uint64_t answered = 0;
  const auto start = std::chrono::steady_clock::now();
  while (answered < total_requests) {
    auto decoded = pipeline.value()->NextBatch();
    if (!decoded.ok()) break;
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < decoded.value()->Size(); ++i) {
      const dlb::ImageRef ref = decoded.value()->At(i);
      if (!ref.ok) continue;
      // Toy "prediction": mean intensity bucket.
      long sum = 0;
      for (size_t p = 0; p < ref.SizeBytes(); p += 97) sum += ref.data[p];
      const int prediction =
          static_cast<int>((sum / (ref.SizeBytes() / 97 + 1)) / 26);
      (void)prediction;
      std::scoped_lock lock(book_mu);
      auto it = in_flight.find(ref.cookie);
      if (it != in_flight.end()) {
        latency_us.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                                  it->second)
                .count()));
        in_flight.erase(it);
        ++answered;
      }
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf("answered %llu requests in %.2fs (%.0f req/s)\n",
              static_cast<unsigned long long>(answered), seconds,
              answered / seconds);
  std::printf("request latency: p50=%.2fms p99=%.2fms max=%.2fms\n",
              latency_us.Quantile(0.5) / 1e3, latency_us.Quantile(0.99) / 1e3,
              latency_us.Max() / 1e3);
  return answered == total_requests ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto config_or = dlb::Config::FromArgs({argv + 1, argv + argc});
  if (!config_or.ok()) {
    std::fprintf(stderr, "bad args: %s\n",
                 config_or.status().ToString().c_str());
    return 1;
  }
  const dlb::Config& args = config_or.value();
  if (args.Has("serve_port")) return Serve(args);
  return RunSynthetic(args);
}
