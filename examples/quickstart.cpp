// Quickstart: build a DLBooster preprocessing pipeline in ~20 lines.
//
//   1. Generate a small synthetic JPEG dataset (stands in for ImageNet).
//   2. Build a Pipeline with the DLBooster backend (FPGA-offloaded decode).
//   3. Pull decoded batches and stage one as a normalised NCHW tensor.
//
// Usage: quickstart [key=value ...]
//   images=256 batch=32 resize=224 backend=dlbooster|cpu|synthetic
//   fit=stretch|cover        output geometry: plain resize or aspect-
//                            preserving resize + center crop
//   decode_scale=0|1         decode-to-scale: emit 1/2, 1/4 or 1/8-size
//                            pixels straight from the DCT coefficients
//                            when the output is that much smaller
//   devices=1                emulated FPGA decoder devices; > 1 shards the
//                            data plane (per-device arena + queues) behind
//                            the work-stealing dispatcher
//   numa=1                   NUMA nodes the device shards spread across
//   placement=interleave     shard placement policy (interleave|pack)
//   steal=1                  cross-device work stealing (0 = static shards)
//   trace=/tmp/trace.json   emit a Chrome/Perfetto batch trace
//   events=info             structured event log (off|warn|info|debug)
//   watchdog=2000           stall watchdog deadline in ms (0 = off)
//   monitor_port=9090       HTTP exposition server (/metrics, /stats,
//                           /events, /healthz); 0 = ephemeral, -1 = off
//   sample_ms=500           metrics sampler period while monitoring is on
//   faults=<spec>           fault injection, e.g. "corrupt_jpeg=0.05,
//                           dma_error=0.01" (the DLB_FAULTS environment
//                           variable overrides this; see DESIGN.md)
//   fault_seed=0            overrides the fault spec's RNG seed (0 = keep)
//   slo=<spec>              declare SLOs, e.g. "infer_p99<8ms/30s,
//                           decode_errors<0.1%" (DLB_SLO overrides; /slo
//                           on the monitor port reports burn state)
//   flight_dir=<dir>        arm the flight recorder: SLO breaches, stalls
//                           and retry exhaustion write black-box bundles
//                           (trace + events + metrics + profile) here
#include <chrono>
#include <cstdio>

#include "common/config.h"
#include "core/pipeline.h"
#include "dataplane/synthetic_dataset.h"

int main(int argc, char** argv) {
  auto config_or = dlb::Config::FromArgs({argv + 1, argv + argc});
  if (!config_or.ok()) {
    std::fprintf(stderr, "bad args: %s\n",
                 config_or.status().ToString().c_str());
    return 1;
  }
  const dlb::Config& args = config_or.value();
  const size_t num_images = args.GetInt("images", 256);
  const int batch = static_cast<int>(args.GetInt("batch", 32));
  const int resize = static_cast<int>(args.GetInt("resize", 224));

  // 1. Synthetic dataset: procedurally rendered scenes, really JPEG-encoded.
  std::printf("generating %zu synthetic JPEGs...\n", num_images);
  dlb::DatasetSpec spec = dlb::ImageNetLikeSpec(num_images);
  spec.width = 200;  // smaller than ILSVRC to keep the demo snappy
  spec.height = 150;
  auto dataset = dlb::GenerateDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("  %zu images, %.1f KiB average\n",
              dataset.value().manifest.Size(),
              dataset.value().manifest.MeanBytes() / 1024.0);

  // 2. Pipeline: FPGAReader -> emulated FPGA decoder -> HugePage pool ->
  //    Dispatcher -> this process (acting as the compute engine).
  dlb::core::PipelineConfig config;
  config.backend = args.GetString("backend", "dlbooster");
  config.options.batch_size = batch;
  config.options.output.width = resize;
  config.options.output.height = resize;
  config.options.output.fit = args.GetString("fit", "stretch") == "cover"
                                  ? dlb::FitMode::kCoverCrop
                                  : dlb::FitMode::kStretch;
  config.options.decode_to_scale = args.GetInt("decode_scale", 0) != 0;
  config.devices = static_cast<int>(args.GetInt("devices", 1));
  config.numa_nodes = static_cast<int>(args.GetInt("numa", 1));
  config.placement = args.GetString("placement", "interleave");
  config.steal = args.GetInt("steal", 1) != 0;
  config.max_images = num_images;
  config.trace_path = args.GetString("trace", "");
  config.event_log_level = args.GetString("events", "off");
  config.watchdog_deadline_ms = args.GetInt("watchdog", 0);
  config.monitor_port = static_cast<int>(args.GetInt("monitor_port", -1));
  config.monitor_sample_ms = args.GetInt("sample_ms", 500);
  config.faults = args.GetString("faults", "");
  config.fault_seed = args.GetInt("fault_seed", 0);
  config.slo = args.GetString("slo", "");
  config.flight_dir = args.GetString("flight_dir", "");
  auto pipeline = dlb::core::PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&dataset.value().manifest,
                                   dataset.value().store.get())
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }

  if (pipeline.value()->MonitorPort() >= 0) {
    std::printf("monitoring on http://127.0.0.1:%d (/metrics /metrics.json "
                "/stats /events /healthz /slo /buildinfo /debug/dump)\n",
                pipeline.value()->MonitorPort());
  }

  // 3. Consume decoded batches. Failed decodes (corrupt inputs, exhausted
  //    device retries) are per-image skips, never fatal.
  const auto start = std::chrono::steady_clock::now();
  size_t batches = 0, images = 0, skipped = 0;
  while (true) {
    auto decoded = pipeline.value()->NextBatch();
    if (!decoded.ok()) break;
    ++batches;
    images += decoded.value()->OkCount();
    skipped += decoded.value()->Size() - decoded.value()->OkCount();
    if (batches == 1) {
      const dlb::ImageRef first = decoded.value()->At(0);
      std::printf("first sample: %dx%dx%d label=%d\n", first.width,
                  first.height, first.channels, first.label);
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("%s backend: %zu images in %zu batches, %.0f images/s\n",
              pipeline.value()->BackendName().c_str(), images, batches,
              images / seconds);

  // Fault plane summary (faults=<spec> or DLB_FAULTS): what was injected
  // and how the pipeline degraded — see DESIGN.md "Fault model".
  if (dlb::fault::FaultInjector* faults = pipeline.value()->Faults()) {
    dlb::MetricRegistry& reg = pipeline.value()->Metrics();
    std::printf("\nfault injection (seed %llu): %llu faults injected, "
                "%zu images skipped, %llu decode errors, %llu retries, "
                "%.0f FPGA ways quarantined\n",
                static_cast<unsigned long long>(faults->Spec().seed),
                static_cast<unsigned long long>(faults->TotalInjected()),
                skipped, static_cast<unsigned long long>(
                             reg.GetCounter("decode.errors")->Value()),
                static_cast<unsigned long long>(
                    reg.GetCounter("retry.attempts")->Value()),
                reg.GetGauge("fpga.ways_quarantined")->Value());
  }

  // 4. Observability: Stats() carries a per-stage breakdown recorded by the
  //    pipeline's telemetry; MetricsJson() dumps every metric for tooling.
  const dlb::core::PipelineStats stats = pipeline.value()->Stats();
  std::printf("\nwhere the time went (%s):\n",
              pipeline.value()->Backend().Describe().c_str());
  for (const auto& s : stats.stages) {
    if (s.ops == 0) continue;
    std::printf("  %-8s ops=%-5zu p50=%.1fus p99=%.1fus busy=%.1fms\n",
                s.name.c_str(), static_cast<size_t>(s.ops), s.p50_ns / 1e3,
                s.p99_ns / 1e3, s.busy_ns / 1e6);
  }
  std::printf("pipeline throughput: %.0f images/s over %.2fs\n",
              stats.images_per_second, stats.elapsed_seconds);
  if (args.GetInt("json", 0) != 0) {
    std::printf("metrics json:\n%s\n",
                pipeline.value()->MetricsJson().c_str());
  }

  // 5. Batch tracing (trace=<path>): one causally-linked span tree per
  //    batch, exported as Chrome trace_event JSON on Shutdown().
  if (dlb::telemetry::Tracer* tracer = pipeline.value()->Tracer()) {
    std::printf("trace: %llu batches traced (%llu completed), %llu spans\n",
                static_cast<unsigned long long>(tracer->BatchesStarted()),
                static_cast<unsigned long long>(tracer->BatchesCompleted()),
                static_cast<unsigned long long>(tracer->SpansRecorded()));
  }
  // SLO + flight recorder (slo=<spec>, flight_dir=<dir>): burn state per
  // objective and any black-box bundles captured during the run.
  if (dlb::slo::SloEngine* slo = pipeline.value()->Slo()) {
    std::printf("slo: %llu evaluations, %llu breaches%s\n",
                static_cast<unsigned long long>(slo->Evaluations()),
                static_cast<unsigned long long>(slo->Breaches()),
                slo->AnyBurning() ? " (BURNING)" : "");
  }
  if (dlb::telemetry::EventLog* events = pipeline.value()->Events()) {
    std::printf("event log (%llu events):\n%s",
                static_cast<unsigned long long>(events->TotalLogged()),
                events->RenderText().c_str());
  }
  pipeline.value()->Shutdown();  // writes config.trace_path, if set
  if (!config.trace_path.empty()) {
    std::printf("wrote %s — load it in ui.perfetto.dev\n",
                config.trace_path.c_str());
  }
  // Shutdown() drains the recorder's write queue, so the count is final.
  if (dlb::flight::FlightRecorder* flight = pipeline.value()->Flight()) {
    std::printf("flight recorder: %llu bundles in %s\n",
                static_cast<unsigned long long>(flight->BundlesWritten()),
                config.flight_dir.c_str());
  }

  // Bonus: the tensor staging engines actually consume. Observability is
  // switched off so this second pipeline cannot overwrite the trace file.
  config.trace_path.clear();
  config.event_log_level = "off";
  config.watchdog_deadline_ms = 0;
  config.slo.clear();
  config.flight_dir.clear();
  auto pipeline2 = dlb::core::PipelineBuilder()
                       .WithConfig(config)
                       .WithDataset(&dataset.value().manifest,
                                    dataset.value().store.get())
                       .Build();
  if (pipeline2.ok()) {
    auto tensor = pipeline2.value()->NextTensorBatch();
    if (tensor.ok()) {
      std::printf("tensor batch: N=%d C=%d H=%d W=%d (%zu labels)\n",
                  tensor.value().first.n, tensor.value().first.c,
                  tensor.value().first.h, tensor.value().first.w,
                  tensor.value().second.size());
    }
  }
  return 0;
}
