// Pluggable decoder mirrors (§3.1): "download" a different preprocessing
// mirror to the FPGA for a different application.
//
// This example registers a custom run-length-encoded grayscale format
// ("RLE8"), builds a dataset in that format, and runs it through the SAME
// DLBooster pipeline by selecting the mirror by name — zero pipeline code
// changes, exactly the pluggability story of the paper.
//
// Usage: custom_decoder_plugin [images=64 batch=8]
#include <cstdio>

#include "common/config.h"
#include "core/pipeline.h"
#include "dataplane/synthetic_dataset.h"

namespace {

// --- A tiny custom format: "RLE8" ----------------------------------------
// Header: 'R' 'L' '8' w_lo w_hi h_lo h_hi, then (count, value) byte pairs.

dlb::Bytes EncodeRle8(const dlb::Image& img) {
  dlb::Bytes out = {'R', 'L', '8',
                    static_cast<uint8_t>(img.Width() & 0xFF),
                    static_cast<uint8_t>(img.Width() >> 8),
                    static_cast<uint8_t>(img.Height() & 0xFF),
                    static_cast<uint8_t>(img.Height() >> 8)};
  size_t i = 0;
  const size_t n = img.SizeBytes();
  while (i < n) {
    uint8_t value = img.Data()[i];
    size_t run = 1;
    while (i + run < n && img.Data()[i + run] == value && run < 255) ++run;
    out.push_back(static_cast<uint8_t>(run));
    out.push_back(value);
    i += run;
  }
  return out;
}

class Rle8Mirror : public dlb::core::DecoderMirror {
 public:
  std::string Name() const override { return "rle8"; }
  std::string Description() const override {
    return "run-length-encoded 8-bit grayscale";
  }
  bool Sniff(dlb::ByteSpan data) const override {
    return data.size() >= 7 && data[0] == 'R' && data[1] == 'L' &&
           data[2] == '8';
  }
  dlb::Result<dlb::Image> Decode(dlb::ByteSpan data) const override {
    if (!Sniff(data)) return dlb::CorruptData("not RLE8");
    const int w = data[3] | (data[4] << 8);
    const int h = data[5] | (data[6] << 8);
    if (w <= 0 || h <= 0) return dlb::CorruptData("bad RLE8 dims");
    dlb::Image img(w, h, 1);
    size_t out = 0;
    const size_t total = img.SizeBytes();
    for (size_t i = 7; i + 1 < data.size() && out < total; i += 2) {
      const size_t run = data[i];
      const uint8_t value = data[i + 1];
      for (size_t r = 0; r < run && out < total; ++r) {
        img.Data()[out++] = value;
      }
    }
    if (out != total) return dlb::CorruptData("short RLE8 stream");
    return img;
  }
};

}  // namespace

int main(int argc, char** argv) {
  auto config_or = dlb::Config::FromArgs({argv + 1, argv + argc});
  if (!config_or.ok()) {
    std::fprintf(stderr, "bad args: %s\n",
                 config_or.status().ToString().c_str());
    return 1;
  }
  const dlb::Config& args = config_or.value();
  const size_t num_images = args.GetInt("images", 64);
  const int batch = static_cast<int>(args.GetInt("batch", 8));

  // 1. Register the mirror (what "download to the FPGA" becomes in code).
  auto status = dlb::core::DecoderRegistry::Global().Register(
      "rle8", [] { return std::make_unique<Rle8Mirror>(); });
  if (!status.ok()) {
    std::fprintf(stderr, "register: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("registered mirrors:");
  for (const auto& name : dlb::core::DecoderRegistry::Global().List()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  // 2. Build an RLE8 dataset (grayscale scenes, custom encoding).
  dlb::Manifest manifest;
  auto store = std::make_unique<dlb::InMemoryBlobStore>();
  dlb::DatasetSpec spec = dlb::MnistLikeSpec(num_images);
  spec.width = 48;
  spec.height = 48;
  for (uint64_t i = 0; i < num_images; ++i) {
    int label = 0;
    dlb::Image scene = dlb::RenderScene(spec, i, &label);
    manifest.Add(store->Append(EncodeRle8(scene),
                               "sample_" + std::to_string(i) + ".rle8",
                               label));
  }
  std::printf("built %zu RLE8 samples (%.1f KiB total)\n", manifest.Size(),
              store->SizeBytes() / 1024.0);

  // 3. Same pipeline, different mirror.
  dlb::core::PipelineConfig config;
  config.backend = "dlbooster";
  config.decoder_mirror = "rle8";
  config.options.batch_size = batch;
  config.options.resize_w = 32;
  config.options.resize_h = 32;
  config.options.channels = 1;
  config.max_images = num_images;
  auto pipeline = dlb::core::PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&manifest, store.get())
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  size_t images = 0, failures = 0;
  while (true) {
    auto decoded = pipeline.value()->NextBatch();
    if (!decoded.ok()) break;
    images += decoded.value()->OkCount();
    failures += decoded.value()->Size() - decoded.value()->OkCount();
  }
  std::printf("decoded %zu RLE8 images through the FPGA pipeline "
              "(%zu failures)\n", images, failures);
  return failures == 0 && images == num_images ? 0 : 1;
}
