// dlb_benchdiff — compare bench result sets and gate on regressions.
//
//   dlb_benchdiff --baseline bench/baselines --candidate build/bench_results
//   dlb_benchdiff --baseline A --candidate run1 --candidate run2 --gate all
//
// Multiple --candidate dirs merge best-of-N before diffing (re-run a noisy
// suite and let the best repetition represent it). Exit codes: 0 clean,
// 1 regression past thresholds, 2 usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/benchdiff.h"

namespace {

// The "buildinfo" stamp run_benches.sh injects into each BENCH_*.json
// (balanced-brace extraction; the stamp is a flat string-valued object).
// Empty when the set predates stamping — committed baselines may.
std::string DirBuildInfo(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return "";
  for (const std::filesystem::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) != 0 || !name.ends_with(".json")) continue;
    std::ifstream in(entry.path());
    const std::string body((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    const size_t key = body.find("\"buildinfo\"");
    if (key == std::string::npos) continue;
    const size_t open = body.find('{', key);
    if (open == std::string::npos) continue;
    int depth = 0;
    for (size_t i = open; i < body.size(); ++i) {
      if (body[i] == '{') ++depth;
      if (body[i] == '}' && --depth == 0) {
        return body.substr(open, i - open + 1);
      }
    }
  }
  return "";
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --baseline DIR --candidate DIR [--candidate DIR ...]\n"
      "          [--gate ratio|all] [--rel X] [--ratio-rel X] [--abs X]\n"
      "          [--allow-missing] [--markdown FILE]\n"
      "\n"
      "Compares BENCH_*.json sets; exits 1 when a gated metric regressed.\n"
      "--gate ratio (default) gates only dimensionless metrics (speedups,\n"
      "ratios, pass flags) — safe across machines. --gate all also gates\n"
      "throughput and latency, for same-machine comparisons.\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using dlb::benchdiff::BenchSet;
  std::string baseline_dir;
  std::vector<std::string> candidate_dirs;
  std::string markdown_path;
  dlb::benchdiff::Thresholds thresholds;
  dlb::benchdiff::Gate gate = dlb::benchdiff::Gate::kRatioOnly;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline") {
      baseline_dir = next();
    } else if (arg == "--candidate") {
      candidate_dirs.push_back(next());
    } else if (arg == "--gate") {
      const std::string mode = next();
      if (mode == "ratio") {
        gate = dlb::benchdiff::Gate::kRatioOnly;
      } else if (mode == "all") {
        gate = dlb::benchdiff::Gate::kAll;
      } else {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--rel") {
      thresholds.rel = std::atof(next());
    } else if (arg == "--ratio-rel") {
      thresholds.ratio_rel = std::atof(next());
    } else if (arg == "--abs") {
      thresholds.abs = std::atof(next());
    } else if (arg == "--allow-missing") {
      thresholds.allow_missing = true;
    } else if (arg == "--markdown") {
      markdown_path = next();
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (baseline_dir.empty() || candidate_dirs.empty()) {
    Usage(argv[0]);
    return 2;
  }

  auto baseline = dlb::benchdiff::LoadDir(baseline_dir);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline: %s\n",
                 baseline.status().ToString().c_str());
    return 2;
  }
  std::vector<BenchSet> runs;
  for (const std::string& dir : candidate_dirs) {
    auto run = dlb::benchdiff::LoadDir(dir);
    if (!run.ok()) {
      std::fprintf(stderr, "candidate: %s\n",
                   run.status().ToString().c_str());
      return 2;
    }
    runs.push_back(std::move(run).value());
  }
  const BenchSet candidate = dlb::benchdiff::MergeBest(runs);

  const dlb::benchdiff::DiffReport report =
      dlb::benchdiff::Diff(baseline.value(), candidate, thresholds, gate);
  std::string markdown = report.Markdown();

  // Provenance footer: which build produced each side. Sides without a
  // stamp (older sets) are reported as unknown rather than omitted, so a
  // missing stamp is visible.
  {
    const std::string base_info = DirBuildInfo(baseline_dir);
    std::string cand_info;
    for (const std::string& dir : candidate_dirs) {
      cand_info = DirBuildInfo(dir);
      if (!cand_info.empty()) break;
    }
    markdown += "\n## Builds\n\n";
    markdown += "- baseline: `" +
                (base_info.empty() ? std::string("unknown (no stamp)")
                                   : base_info) +
                "`\n";
    markdown += "- candidate: `" +
                (cand_info.empty() ? std::string("unknown (no stamp)")
                                   : cand_info) +
                "`\n";
  }
  std::fputs(markdown.c_str(), stdout);
  if (!markdown_path.empty()) {
    std::ofstream out(markdown_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", markdown_path.c_str());
      return 2;
    }
    out << markdown;
  }
  return report.HasRegressions() ? 1 : 0;
}
