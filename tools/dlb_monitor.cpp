// dlb_monitor: live terminal dashboard over a pipeline's monitoring plane.
//
// Polls the embedded exposition server (core/pipeline.cpp wires it at
// monitor_port=<p>) and renders stage throughput, latency quantiles,
// offload-unit utilization bars, buffer-pool occupancy and the last few
// structured events. Speaks plain HTTP/1.1 and parses the Prometheus text
// format — no libraries, so it runs anywhere the pipeline does.
//
// Usage: dlb_monitor port=9090 [host=127.0.0.1 interval_ms=1000
//                               iterations=0 once=0 plain=0 profile_ms=200]
//   iterations=N  stop after N refreshes (0 = until the server goes away)
//   once=1        render a single frame and exit (scripting / tests)
//   plain=1       never emit ANSI clear-screen escapes
//   profile_ms=N  sample a /profile window each frame and show the hottest
//                 stage stacks (0 disables; the window blocks the server's
//                 poll loop, so keep it well under interval_ms)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/json.h"

namespace {

struct HttpResult {
  int status = 0;  // 0 = transport failure
  std::string body;
};

// Minimal blocking HTTP/1.1 GET. The server always answers with
// Connection: close, so "read until EOF" delimits the response.
HttpResult HttpGet(const std::string& host, int port, const std::string& path,
                   int timeout_ms = 2000) {
  HttpResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;

  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return result;
  }

  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return result;
    }
    sent += static_cast<size_t>(n);
  }

  std::string raw;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 200 OK" — status is the second token.
  if (raw.compare(0, 5, "HTTP/") != 0) return result;
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos) return result;
  result.status = std::atoi(raw.c_str() + sp + 1);
  const size_t body = raw.find("\r\n\r\n");
  if (body != std::string::npos) result.body = raw.substr(body + 4);
  return result;
}

// Prometheus text parse: "name{labels} value" per line, comments skipped.
// Keys keep their label block verbatim, so quantiles address as
// `dlb_stage_decode_latency_ns{quantile="0.95"}`.
std::map<std::string, double> ParsePrometheus(const std::string& text) {
  std::map<std::string, double> metrics;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0) continue;
    errno = 0;
    char* parsed_end = nullptr;
    const double value = std::strtod(line.c_str() + sp + 1, &parsed_end);
    if (parsed_end == line.c_str() + sp + 1 || errno == ERANGE) continue;
    metrics[line.substr(0, sp)] = value;
  }
  return metrics;
}

double Get(const std::map<std::string, double>& m, const std::string& key,
           double fallback = 0.0) {
  const auto it = m.find(key);
  return it == m.end() ? fallback : it->second;
}

std::string Bar(double fraction, int width = 24) {
  if (fraction < 0) fraction = 0;
  if (fraction > 1) fraction = 1;
  const int filled = static_cast<int>(std::lround(fraction * width));
  std::string bar;
  for (int i = 0; i < width; ++i) bar += i < filled ? '#' : '.';
  return bar;
}

// The hottest collapsed stacks from a /profile window ("collect;decode 412"
// lines, most samples first — the endpoint pre-sorts).
void RenderProfile(const std::string& collapsed, int window_ms) {
  if (collapsed.empty()) return;
  std::printf("\nprofile (%d ms window, top stacks)\n", window_ms);
  size_t pos = 0;
  int shown = 0;
  uint64_t total = 0;
  std::vector<std::pair<std::string, uint64_t>> stacks;
  while (pos < collapsed.size()) {
    size_t end = collapsed.find('\n', pos);
    if (end == std::string::npos) end = collapsed.size();
    const std::string line = collapsed.substr(pos, end - pos);
    pos = end + 1;
    const size_t sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    const uint64_t samples = std::strtoull(line.c_str() + sp + 1, nullptr, 10);
    total += samples;
    stacks.emplace_back(line.substr(0, sp), samples);
  }
  for (const auto& [stack, samples] : stacks) {
    if (++shown > 5) break;
    const double share = total > 0 ? 100.0 * samples / total : 0.0;
    std::printf("  %-40s [%s] %5.1f%%\n", stack.c_str(),
                Bar(share / 100.0, 16).c_str(), share);
  }
}

// SLO panel: one row per declared objective from GET /slo. Absent or
// `{"enabled":false}` responses render nothing — most pipelines declare no
// SLO and the dashboard should not nag about it.
void RenderSlo(const std::string& body) {
  auto doc = dlb::json::Parse(body);
  if (!doc.ok()) return;
  const dlb::json::ValuePtr root = doc.value();
  const dlb::json::ValuePtr enabled = root->Get("enabled");
  if (enabled == nullptr || !enabled->boolean) return;
  const dlb::json::ValuePtr objectives = root->Get("objectives");
  if (objectives == nullptr || !objectives->IsArray()) return;

  std::printf("\nslo  (%.0f evals, %.0f breaches)\n",
              root->Get("evals") ? root->Get("evals")->number : 0.0,
              root->Get("breaches") ? root->Get("breaches")->number : 0.0);
  std::printf("  %-16s %-8s %12s %12s %6s %6s\n", "objective", "state",
              "value", "threshold", "burn", "n");
  for (const dlb::json::ValuePtr& obj : objectives->array) {
    if (obj == nullptr || !obj->IsObject()) continue;
    auto str = [&](const char* key) {
      const dlb::json::ValuePtr v = obj->Get(key);
      return v != nullptr && v->IsString() ? v->str : std::string("?");
    };
    auto num = [&](const char* key) {
      const dlb::json::ValuePtr v = obj->Get(key);
      return v != nullptr ? v->number : 0.0;
    };
    std::printf("  %-16s %-8s %12.3g %12.3g %6.2f %6.0f\n",
                str("name").c_str(), str("state").c_str(), num("value"),
                num("threshold"), num("burn_fast"), num("samples"));
  }
}

// Flight-recorder panel: bundle names from GET /debug/dump (black-box
// captures waiting on disk). Silent when no recorder is armed.
void RenderBundles(const std::string& body) {
  auto doc = dlb::json::Parse(body);
  if (!doc.ok()) return;
  const dlb::json::ValuePtr root = doc.value();
  const dlb::json::ValuePtr enabled = root->Get("enabled");
  if (enabled == nullptr || !enabled->boolean) return;
  const dlb::json::ValuePtr bundles = root->Get("bundles");
  const dlb::json::ValuePtr dir = root->Get("dir");
  std::printf("\nflight bundles  (%s)\n",
              dir != nullptr && dir->IsString() ? dir->str.c_str() : "?");
  if (bundles == nullptr || !bundles->IsArray() || bundles->array.empty()) {
    std::printf("  none captured\n");
    return;
  }
  size_t shown = 0;
  for (auto it = bundles->array.rbegin();
       it != bundles->array.rend() && shown < 3; ++it, ++shown) {
    const dlb::json::ValuePtr bundle = *it;
    if (bundle == nullptr || !bundle->IsObject()) continue;
    const dlb::json::ValuePtr name = bundle->Get("name");
    std::string trigger = "?";
    if (const dlb::json::ValuePtr manifest = bundle->Get("manifest");
        manifest != nullptr && manifest->IsObject()) {
      if (const dlb::json::ValuePtr t = manifest->Get("trigger");
          t != nullptr && t->IsString()) {
        trigger = t->str;
      }
    }
    std::printf("  %-44s %s\n",
                name != nullptr && name->IsString() ? name->str.c_str() : "?",
                trigger.c_str());
  }
}

void RenderFrame(const std::map<std::string, double>& m, int health_status,
                 const std::vector<std::string>& events, uint64_t frame) {
  std::printf("dlb_monitor  frame=%llu  health=%s\n",
              static_cast<unsigned long long>(frame),
              health_status == 200  ? "OK"
              : health_status == 503 ? "STALLED"
                                     : "UNKNOWN");

  static const char* kStages[] = {"fetch",    "decode",   "resize",
                                  "collect",  "dispatch", "consume"};
  // cpu/wait columns: per-stage on-CPU and off-CPU time rates (counter
  // rate ns/s ÷ 1e9 = cores). A stage burning 1.95 cpu with 0.05 wait is
  // compute-bound; the inverse is starving on a queue.
  std::printf("\n%-9s %12s %10s %10s %10s %10s %10s\n", "stage", "items/s",
              "cpu", "wait", "p50_ms", "p95_ms", "p99_ms");
  for (const char* stage : kStages) {
    const std::string base = std::string("dlb_stage_") + stage;
    const double rate = Get(m, base + "_items_rate_per_s");
    const double cpu = Get(m, base + "_cpu_ns_rate_per_s") / 1e9;
    const double wait = Get(m, base + "_wait_ns_rate_per_s") / 1e9;
    const double p50 = Get(m, base + "_latency_ns{quantile=\"0.5\"}") / 1e6;
    const double p95 = Get(m, base + "_latency_ns{quantile=\"0.95\"}") / 1e6;
    const double p99 = Get(m, base + "_latency_ns{quantile=\"0.99\"}") / 1e6;
    std::printf("%-9s %12.1f %10.2f %10.2f %10.2f %10.2f %10.2f\n", stage,
                rate, cpu, wait, p50, p95, p99);
  }

  static const char* kUnits[] = {"huffman", "idct", "resizer"};
  std::printf("\noffload units\n");
  for (const char* unit : kUnits) {
    const std::string base = std::string("dlb_fpga_") + unit;
    const double util = Get(m, base + "_utilization");
    const double ways = Get(m, base + "_ways", 1);
    std::printf("  %-8s [%s] %5.1f%%  (%g ways)\n", unit,
                Bar(util).c_str(), util * 100.0, ways);
  }

  // Per-device rows (sharded data plane): multi-device backends publish
  // dlb_fpga_dev<N>_* twins plus router steal/depth metrics. Absent on
  // single-device runs, so the panel renders nothing there.
  for (int d = 0;; ++d) {
    const std::string base = "dlb_fpga_dev" + std::to_string(d) + "_";
    if (m.count(base + "completed_total") == 0 &&
        m.count(base + "shard_depth") == 0 &&
        m.count(base + "utilization") == 0) {
      break;
    }
    if (d == 0) {
      std::printf("\ndevices  (total steals %.0f, %.1f/s)\n",
                  Get(m, "dlb_fpga_steals_total"),
                  Get(m, "dlb_fpga_steals_rate_per_s"));
      std::printf("  %-5s %-26s %8s %8s %8s %11s %10s\n", "dev",
                  "utilization", "steals", "stolen", "depth", "completed",
                  "state");
    }
    const double util = Get(m, base + "utilization");
    const bool dead = Get(m, base + "quarantined") > 0;
    std::printf("  dev%-2d [%s] %5.1f%% %8.0f %8.0f %8.0f %11.0f %10s\n", d,
                Bar(util, 16).c_str(), util * 100.0,
                Get(m, base + "steals_total"), Get(m, base + "stolen_total"),
                Get(m, base + "shard_depth"), Get(m, base + "completed_total"),
                dead ? "QUARANTINE" : "ok");
  }

  const double free_bufs = Get(m, "dlb_pool_free_buffers");
  const double total_bufs = Get(m, "dlb_pool_buffers");
  const double occupancy =
      total_bufs > 0 ? 1.0 - free_bufs / total_bufs : 0.0;
  std::printf("\nbuffers    [%s] %5.1f%% of %.0f in use\n",
              Bar(occupancy).c_str(), occupancy * 100.0, total_bufs);
  std::printf("queues     cmd_fifo=%.0f (peak %.0f)  dispatcher=%.0f "
              "(peak %.0f)\n",
              Get(m, "dlb_fpga_cmd_fifo_depth"),
              Get(m, "dlb_fpga_cmd_fifo_depth_peak"),
              Get(m, "dlb_dispatcher_queue_depth"),
              Get(m, "dlb_dispatcher_queue_depth_peak"));
  std::printf("copied     %.1f MiB  (%.1f MiB/s)\n",
              Get(m, "dlb_dispatcher_bytes_copied_total") / (1 << 20),
              Get(m, "dlb_dispatcher_bytes_copied_rate_per_s") / (1 << 20));

  if (!events.empty()) {
    std::printf("\nlast events\n");
    for (const std::string& e : events) std::printf("  %s\n", e.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto config_or = dlb::Config::FromArgs({argv + 1, argv + argc});
  if (!config_or.ok()) {
    std::fprintf(stderr, "bad args: %s\n",
                 config_or.status().ToString().c_str());
    return 1;
  }
  const dlb::Config& args = config_or.value();
  const int port = static_cast<int>(args.GetInt("port", -1));
  if (port < 0) {
    std::fprintf(stderr,
                 "usage: dlb_monitor port=<monitor_port> [host=127.0.0.1 "
                 "interval_ms=1000 iterations=0 once=0 plain=0 "
                 "profile_ms=200]\n");
    return 1;
  }
  const std::string host = args.GetString("host", "127.0.0.1");
  const int interval_ms =
      static_cast<int>(args.GetInt("interval_ms", 1000));
  const uint64_t iterations = args.GetInt("iterations", 0);
  const bool once = args.GetInt("once", 0) != 0;
  const bool plain = once || args.GetInt("plain", 0) != 0;
  const int profile_ms = static_cast<int>(args.GetInt("profile_ms", 200));

  uint64_t frame = 0;
  int misses = 0;
  while (true) {
    const HttpResult metrics = HttpGet(host, port, "/metrics");
    if (metrics.status != 200) {
      if (frame == 0 || ++misses >= 3) {
        std::fprintf(stderr, "dlb_monitor: no exposition server at %s:%d\n",
                     host.c_str(), port);
        return frame == 0 ? 1 : 0;  // clean exit once the run just ended
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      continue;
    }
    misses = 0;

    const HttpResult health = HttpGet(host, port, "/healthz");
    const HttpResult slo = HttpGet(host, port, "/slo");
    const HttpResult dump = HttpGet(host, port, "/debug/dump");
    const HttpResult tail = HttpGet(host, port, "/events?n=5");
    std::vector<std::string> events;
    size_t pos = 0;
    while (pos < tail.body.size() && events.size() < 5) {
      size_t end = tail.body.find('\n', pos);
      if (end == std::string::npos) end = tail.body.size();
      if (end > pos) events.push_back(tail.body.substr(pos, end - pos));
      pos = end + 1;
    }

    // The profile window blocks the server's poll loop, so it is sampled
    // after the cheap endpoints and bounded well under the frame interval.
    HttpResult profile;
    if (profile_ms > 0) {
      profile = HttpGet(host, port, "/profile?ms=" + std::to_string(profile_ms),
                        profile_ms + 2000);
    }

    if (!plain) std::printf("\x1b[2J\x1b[H");  // clear + home
    ++frame;
    RenderFrame(ParsePrometheus(metrics.body), health.status, events, frame);
    if (slo.status == 200) RenderSlo(slo.body);
    if (dump.status == 200) RenderBundles(dump.body);
    if (profile.status == 200) RenderProfile(profile.body, profile_ms);
    std::fflush(stdout);

    if (once || (iterations != 0 && frame >= iterations)) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
