// dlb_buildinfo — print this build's provenance record as JSON.
//
// The same record backs GET /buildinfo on a running pipeline's monitor
// port and the "buildinfo" stamp bench/run_benches.sh injects into every
// BENCH_*.json, so benchdiff reports can say which build produced each
// side of a comparison.
#include <cstdio>
#include <cstring>

#include "common/buildinfo.h"

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::fprintf(stderr, "usage: %s\nPrints build provenance JSON.\n",
                   argv[0]);
      return 0;
    }
  }
  std::printf("%s\n", dlb::BuildInfoJson().c_str());
  return 0;
}
