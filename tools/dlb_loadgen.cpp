// Open-loop load generator for the inference front door.
//
// Offered load is a precomputed arrival schedule — a function of pattern,
// rate, duration and seed, never of server behaviour — so overload is
// actually applied instead of self-throttled away. Per-tenant mixes,
// optional trace replay, a closed-loop calibration mode (`load=1.5x`
// probes saturation first, then offers that multiple), and self-gating
// flags so the CI overload-soak lane can fail on a 5xx storm without any
// JSON post-processing.
//
// Usage:
//   dlb_loadgen port=8080 [host=127.0.0.1]
//               [tenants=premium=0.3:50,batch=0.7]   name=weight[:deadline_ms]
//               [pattern=poisson]                    steady|poisson|bursty|diurnal|step
//               [rate=500 | load=1.5x]               absolute rps, or a
//                                                    multiple of measured
//                                                    saturation
//               [duration=10] [seed=42] [connections=16]
//               [calibrate_s=3]                      closed-loop probe length
//               [trace=arrivals.txt]                 "<seconds> [tenant]" lines
//               [width=160 height=120]               synthetic JPEG payload
//               [max_5xx_pct=N] [max_transport_pct=N] [min_answered=N]
//               [--json]
//
// Exit code: 0 when every configured gate holds (and always when no gate
// was configured), 1 otherwise.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/config.h"
#include "dataplane/synthetic_dataset.h"
#include "frontdoor/loadgen.h"

using namespace dlb;
using namespace dlb::frontdoor;

namespace {

std::string Fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

double Pct(uint64_t part, uint64_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> kv;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      kv.emplace_back(argv[i]);
    }
  }
  auto config_or = Config::FromArgs(kv);
  if (!config_or.ok()) {
    std::fprintf(stderr, "bad args: %s\n",
                 config_or.status().ToString().c_str());
    return 2;
  }
  const Config& args = config_or.value();
  const int port = static_cast<int>(args.GetInt("port", -1));
  if (port <= 0) {
    std::fprintf(stderr, "need port=<front door port>\n");
    return 2;
  }

  auto mix = ParseTenantMix(args.GetString("tenants", "default"));
  if (!mix.ok()) {
    std::fprintf(stderr, "tenants: %s\n", mix.status().ToString().c_str());
    return 2;
  }
  auto pattern = ParseArrivalPattern(args.GetString("pattern", "poisson"));
  if (!pattern.ok()) {
    std::fprintf(stderr, "pattern: %s\n", pattern.status().ToString().c_str());
    return 2;
  }

  // Synthetic JPEG payload (every request posts the same bytes; the server
  // decodes each copy independently, so one image is representative load).
  DatasetSpec spec = ImageNetLikeSpec(4);
  spec.width = static_cast<int>(args.GetInt("width", 160));
  spec.height = static_cast<int>(args.GetInt("height", 120));
  auto dataset = GenerateDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "payload: %s\n",
                 dataset.status().ToString().c_str());
    return 2;
  }
  auto payload = dataset.value().store->Read(dataset.value().manifest.At(0));
  if (!payload.ok()) {
    std::fprintf(stderr, "payload: %s\n", payload.status().ToString().c_str());
    return 2;
  }

  LoadgenOptions options;
  options.host = args.GetString("host", "127.0.0.1");
  options.port = port;
  options.mix = std::move(mix).value();
  options.connections = static_cast<int>(args.GetInt("connections", 16));
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  options.payload.assign(payload.value().begin(), payload.value().end());

  const double duration_s = args.GetDouble("duration", 10.0);

  // Offered rate: trace > load=<mult>x (calibrated) > rate=<rps>.
  double rate = args.GetDouble("rate", 100.0);
  double capacity = 0.0;
  const std::string load = args.GetString("load", "");
  if (!load.empty()) {
    const double multiple = std::strtod(load.c_str(), nullptr);
    if (multiple <= 0) {
      std::fprintf(stderr, "bad load=%s (want e.g. load=1.5x)\n",
                   load.c_str());
      return 2;
    }
    const double calibrate_s = args.GetDouble("calibrate_s", 3.0);
    if (!json) {
      std::printf("calibrating: closed-loop probe for %.1fs...\n",
                  calibrate_s);
    }
    capacity = MeasureCapacity(options, calibrate_s);
    if (capacity <= 0) {
      std::fprintf(stderr, "calibration failed: server answered nothing\n");
      return 1;
    }
    rate = capacity * multiple;
    if (!json) {
      std::printf("saturation ~%.0f req/s -> offering %.0f req/s (%sx)\n",
                  capacity, rate, Fmt(multiple, 2).c_str());
    }
  }

  std::vector<TraceArrival> arrivals;
  const std::string trace_path = args.GetString("trace", "");
  if (!trace_path.empty()) {
    auto trace = LoadTrace(trace_path);
    if (!trace.ok()) {
      std::fprintf(stderr, "trace: %s\n", trace.status().ToString().c_str());
      return 2;
    }
    arrivals = std::move(trace).value();
  } else {
    for (double t :
         GenerateArrivals(pattern.value(), rate, duration_s, options.seed)) {
      arrivals.push_back({t, ""});
    }
  }
  if (arrivals.empty()) {
    std::fprintf(stderr, "empty arrival schedule\n");
    return 2;
  }

  const LoadReport report = RunLoad(options, arrivals);

  uint64_t answered_200 = 0;
  auto it200 = report.status_counts.find(200);
  if (it200 != report.status_counts.end()) answered_200 = it200->second;
  const uint64_t fivexx =
      report.TotalStatus(500, 599) -
      report.TotalStatus(503, 503);  // 503 is the contracted shed signal
  const double fivexx_pct = Pct(fivexx, report.sent);
  const double transport_pct = Pct(report.transport_errors, report.sent);

  // Self-gates (all optional): the CI soak asserts through exit code.
  bool pass = true;
  if (args.Has("max_5xx_pct") &&
      fivexx_pct > args.GetDouble("max_5xx_pct", 100.0)) {
    pass = false;
  }
  if (args.Has("max_transport_pct") &&
      transport_pct > args.GetDouble("max_transport_pct", 100.0)) {
    pass = false;
  }
  if (args.Has("min_answered") &&
      answered_200 < static_cast<uint64_t>(args.GetInt("min_answered", 0))) {
    pass = false;
  }

  if (json) {
    std::string out = "{\n";
    out += "  \"duration_s\": " + Fmt(report.duration_s, 2) + ",\n";
    out += "  \"offered_rps\": " + Fmt(report.offered_rps, 1) + ",\n";
    if (capacity > 0) {
      out += "  \"calibrated_capacity_rps\": " + Fmt(capacity, 1) + ",\n";
    }
    out += "  \"sent\": " + std::to_string(report.sent) + ",\n";
    out += "  \"answered_200\": " + std::to_string(answered_200) + ",\n";
    out += "  \"hard_5xx\": " + std::to_string(fivexx) + ",\n";
    out += "  \"hard_5xx_pct\": " + Fmt(fivexx_pct, 2) + ",\n";
    out += "  \"transport_errors\": " +
           std::to_string(report.transport_errors) + ",\n";
    out += "  \"max_send_lag_ms\": " + Fmt(report.max_send_lag_ms, 1) + ",\n";
    for (const TenantReport& t : report.tenants) {
      out += "  \"" + t.name + "_sent\": " + std::to_string(t.sent) + ",\n";
      out += "  \"" + t.name + "_goodput_rps\": " + Fmt(t.goodput_rps, 1) +
             ",\n";
      out += "  \"" + t.name + "_p50_ms\": " +
             Fmt(t.latency_us.Quantile(0.5) / 1e3, 2) + ",\n";
      out += "  \"" + t.name + "_p99_ms\": " +
             Fmt(t.latency_us.Quantile(0.99) / 1e3, 2) + ",\n";
      out += "  \"" + t.name + "_shed_pct\": " + Fmt(Pct(t.shed, t.sent), 2) +
             ",\n";
      out += "  \"" + t.name + "_late\": " + std::to_string(t.late) + ",\n";
    }
    out += std::string("  \"pass\": ") + (pass ? "true" : "false") + "\n}\n";
    std::fputs(out.c_str(), stdout);
    return pass ? 0 : 1;
  }

  std::printf("\noffered %.0f req/s for %.1fs (%llu requests, max send lag "
              "%.1f ms)\n",
              report.offered_rps, report.duration_s,
              static_cast<unsigned long long>(report.sent),
              report.max_send_lag_ms);
  std::printf("%-10s %8s %8s %8s %8s %8s %8s %9s %9s\n", "tenant", "sent",
              "ok", "late", "shed", "reject", "422", "p50 ms", "p99 ms");
  for (const TenantReport& t : report.tenants) {
    std::printf("%-10s %8llu %8llu %8llu %8llu %8llu %8llu %9.2f %9.2f\n",
                t.name.c_str(), static_cast<unsigned long long>(t.sent),
                static_cast<unsigned long long>(t.ok),
                static_cast<unsigned long long>(t.late),
                static_cast<unsigned long long>(t.shed),
                static_cast<unsigned long long>(
                    t.rejected_rate + t.rejected_deadline + t.rejected_other),
                static_cast<unsigned long long>(t.decode_failed),
                t.latency_us.Quantile(0.5) / 1e3,
                t.latency_us.Quantile(0.99) / 1e3);
  }
  std::printf("status counts:");
  for (const auto& [status, count] : report.status_counts) {
    std::printf(" %d=%llu", status, static_cast<unsigned long long>(count));
  }
  if (report.transport_errors > 0) {
    std::printf(" transport=%llu",
                static_cast<unsigned long long>(report.transport_errors));
  }
  std::printf("\nhard 5xx: %.2f%%  transport: %.2f%%  -> %s\n", fivexx_pct,
              transport_pct, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
