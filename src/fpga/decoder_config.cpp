#include "fpga/decoder_config.h"

#include <sstream>

namespace dlb::fpga {

std::string DecoderConfig::ToString() const {
  std::ostringstream os;
  os << "huffman=" << huffman_ways << "-way idct=" << idct_ways
     << "-way resizer=" << resizer_ways << "-way fifo=" << cmd_fifo_depth
     << " clock=" << clock_hz / 1e6 << "MHz"
     << (pipelined ? " pipelined" : " fused");
  return os.str();
}

int AlmUsage(const DecoderConfig& config, const AlmCosts& costs) {
  return costs.parser + costs.data_reader + costs.mmu +
         costs.huffman_per_way * config.huffman_ways +
         costs.idct_per_way * config.idct_ways +
         costs.resizer_per_way * config.resizer_ways + costs.collector +
         costs.dma_engine + costs.finish_arbiter;
}

Status ValidateConfig(const DecoderConfig& config, int budget,
                      const AlmCosts& costs) {
  if (config.huffman_ways < 1 || config.idct_ways < 1 ||
      config.resizer_ways < 1) {
    return InvalidArgument("every unit needs at least one way");
  }
  if (config.cmd_fifo_depth < 1) {
    return InvalidArgument("cmd FIFO must hold at least one entry");
  }
  if (config.clock_hz <= 0) {
    return InvalidArgument("clock must be positive");
  }
  const int usage = AlmUsage(config, costs);
  if (usage > budget) {
    return ResourceExhausted("decoder needs " + std::to_string(usage) +
                             " ALMs but the device offers " +
                             std::to_string(budget));
  }
  return Status::Ok();
}

double EstimatedWatts(const DecoderConfig& config, const AlmCosts& costs) {
  // Static (leakage + BSP shell) floor plus dynamic term. Anchored to the
  // §5.4 figure: the shipped design (252k ALMs @ 240 MHz) ~ 25 W.
  constexpr double kStaticWatts = 8.0;
  constexpr double kWattsPerAlmGhz = 0.281e-3;
  return kStaticWatts +
         AlmUsage(config, costs) * (config.clock_hz / 1e9) * kWattsPerAlmGhz;
}

}  // namespace dlb::fpga
