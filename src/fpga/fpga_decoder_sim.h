// Discrete-event model of the FPGA decoder pipeline (Fig. 4 of the paper).
//
// A decode command flows through:
//   cmd FIFO -> parser -> DataReader (disk DMA or DRAM fetch)
//            -> N-way Huffman unit -> round-robin collector
//            -> iDCT & RGB unit -> M-way resizer -> DMA out -> FINISH
//
// Each unit is a k-server Resource whose service time is derived from the
// image's byte/pixel counts and the StageRates model, so throughput and
// latency emerge from the same queueing structure the hardware has —
// including which unit saturates first under a given ways configuration.
#pragma once

#include <algorithm>
#include <memory>
#include <string>

#include "common/stats.h"
#include "fpga/decoder_config.h"
#include "sim/resource.h"
#include "sim/scheduler.h"

namespace dlb::fpga {

/// Where the DataReader fetches the compressed bytes from (§3.4.1): the
/// training path DMAs from NVMe; the inference path reads NIC-deposited
/// buffers out of host DRAM across PCIe.
enum class DataSource { kDisk, kDram };

struct DecodeJob {
  uint64_t encoded_bytes = 0;  // compressed JPEG size
  uint64_t pixels = 0;         // source width*height
  uint64_t out_bytes = 0;      // resized output bytes DMA'd to the host
  DataSource source = DataSource::kDisk;
  /// Decode-to-scale denominator (1, 2, 4, 8). The Huffman unit still
  /// chews every bit, but the iDCT emits denom^2-fold fewer pixels and the
  /// resizer sees the already-shrunk planes, so both get proportionally
  /// cheaper — the service-time twin of the runtime's scaled kernels.
  int scale_denom = 1;
};

class FpgaDecoderSim {
 public:
  FpgaDecoderSim(sim::Scheduler* sched, const DecoderConfig& config,
                 const StageRates& rates = {});

  /// Push one decode command. Returns false when the cmd FIFO is full
  /// (caller — the FPGAReader — must retry after drain, mirroring the
  /// blocking submit of Algorithm 1). `on_done` fires at FINISH.
  bool SubmitDecode(const DecodeJob& job, sim::EventFn on_done);

  /// Commands admitted but not yet finished.
  int InFlight() const { return in_flight_; }
  int FifoSpace() const { return config_.cmd_fifo_depth - in_flight_; }

  uint64_t Completed() const { return completed_; }
  const Histogram& LatencyHistogram() const { return latency_hist_; }

  /// Per-unit utilisation for the bottleneck report / ways ablation.
  double ParserUtilization() const { return parser_.Utilization(); }
  double ReaderUtilization() const {
    return std::max(disk_reader_.Utilization(), dram_reader_.Utilization());
  }
  double HuffmanUtilization() const { return huffman_.Utilization(); }
  double IdctUtilization() const { return idct_.Utilization(); }
  double ResizerUtilization() const { return resizer_.Utilization(); }
  double DmaUtilization() const { return dma_.Utilization(); }

  const DecoderConfig& Config() const { return config_; }

  /// Publish per-unit utilisation gauges (permille, since gauges are
  /// integral) into a registry under `<prefix>.<unit>.utilization_pm`.
  void ExportMetrics(MetricRegistry* registry,
                     const std::string& prefix = "fpga_sim") const;

 private:
  sim::SimTime ReaderTime(const DecodeJob& job) const;
  sim::SimTime HuffmanTime(const DecodeJob& job) const;
  sim::SimTime IdctTime(const DecodeJob& job) const;
  sim::SimTime ResizerTime(const DecodeJob& job) const;
  sim::SimTime DmaTime(const DecodeJob& job) const;

  sim::Scheduler* sched_;
  DecoderConfig config_;
  StageRates rates_;
  sim::Resource parser_;
  sim::Resource disk_reader_;
  sim::Resource dram_reader_;
  sim::Resource huffman_;
  sim::Resource idct_;
  sim::Resource resizer_;
  sim::Resource dma_;
  int in_flight_ = 0;
  uint64_t completed_ = 0;
  Histogram latency_hist_;
};

}  // namespace dlb::fpga
