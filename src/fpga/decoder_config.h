// FPGA decoder configuration and resource (ALM) budget model.
//
// §3.3 of the paper: the decoder is decoupled into pipelined units, and each
// unit's parallelism ("ways") is sized to balance load under the device's
// configurable-logic budget — the shipped design uses a 4-way Huffman unit
// and a 2-way resizer on an Arria 10. This header models exactly that
// trade-off so the way-count ablation can explore it.
#pragma once

#include <string>

#include "common/status.h"
#include "sim/calibration.h"

namespace dlb::fpga {

struct DecoderConfig {
  int huffman_ways = cal::kFpgaHuffmanWays;  // parallel Huffman channels
  int idct_ways = 1;                         // iDCT & RGB unit instances
  int resizer_ways = cal::kFpgaResizerWays;  // parallel resizer lanes
  int cmd_fifo_depth = 64;                   // host->FPGA FIFO entries
  double clock_hz = cal::kFpgaClockHz;
  /// When false, the three processing units are fused into one monolithic
  /// block (no overlap between images) — the §3.3 step-1 ablation.
  bool pipelined = true;

  std::string ToString() const;
};

/// ALM (adaptive logic module) cost model per unit instance. Values are in
/// the ballpark of published Arria-10 OpenCL JPEG/image kernels; their role
/// is to make the way-count trade-off real, not to be synthesis-exact.
struct AlmCosts {
  int parser = 9000;
  int data_reader = 14000;
  int mmu = 6000;
  int huffman_per_way = 28000;
  int idct_per_way = 42000;
  int resizer_per_way = 25000;
  int collector = 5000;
  int dma_engine = 12000;
  int finish_arbiter = 2000;
};

/// Total ALMs the configuration consumes.
int AlmUsage(const DecoderConfig& config, const AlmCosts& costs = {});

/// Error when the configuration exceeds `budget` ALMs or has nonsensical
/// parameters (zero ways, empty FIFO, ...).
Status ValidateConfig(const DecoderConfig& config,
                      int budget = cal::kFpgaAlmBudget,
                      const AlmCosts& costs = {});

/// Estimated board power for a configuration: static floor plus dynamic
/// power proportional to occupied ALMs and clock. Calibrated so the
/// shipped 4/1/2 design at 240 MHz draws ~25 W (§5.4).
double EstimatedWatts(const DecoderConfig& config, const AlmCosts& costs = {});

/// Stage service-rate model. Rates are per way; the DES divides work across
/// ways through multi-server resources. Derived so the shipped 4/1/2
/// configuration matches the paper: single-image decode latency in the
/// hundreds of microseconds (Fig. 8's 1.2 ms end-to-end at batch 1), the
/// Huffman unit as the unit that saturates first (hence its 4 ways), and a
/// DRAM-fed inference path that tops out near 2.4k img/s (Fig. 7(a)).
struct StageRates {
  double parser_cmd_seconds = cal::kFpgaCmdOverheadUs * 1e-6;
  double huffman_bytes_per_sec = 320.0e6;    // entropy bytes per way
  double idct_blocks_per_sec = 100.0e6;      // 8x8 blocks per way
  double resizer_pixels_per_sec = 2000.0e6;  // source pixels per way
  double dma_fixed_seconds = 1.5e-6;         // descriptor setup per image
  double dma_bytes_per_sec = cal::kPcieBandwidth;
  // DataReader path characteristics. The disk path DMAs from NVMe over two
  // channels; the DRAM path does a per-image PCIe round trip on one channel
  // and is the inference-path bound the paper observes beyond batch 16.
  double disk_fixed_seconds = 5e-6;
  double disk_bytes_per_sec = 2.4e9;
  double dram_fixed_seconds = 390e-6;
  double dram_bytes_per_sec = 2.0e9;
};

}  // namespace dlb::fpga
