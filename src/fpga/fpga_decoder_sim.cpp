#include "fpga/fpga_decoder_sim.h"

#include <algorithm>

namespace dlb::fpga {

namespace {
/// 8x8 blocks per image, including 4:2:0 chroma (1.5x luma blocks).
uint64_t BlocksFor(uint64_t pixels) {
  return std::max<uint64_t>(1, (pixels * 3 / 2) / 64);
}
}  // namespace

FpgaDecoderSim::FpgaDecoderSim(sim::Scheduler* sched,
                               const DecoderConfig& config,
                               const StageRates& rates)
    : sched_(sched),
      config_(config),
      rates_(rates),
      parser_(sched, 1, "fpga.parser"),
      disk_reader_(sched, 2, "fpga.reader.disk"),
      dram_reader_(sched, 1, "fpga.reader.dram"),
      huffman_(sched, config.huffman_ways, "fpga.huffman"),
      idct_(sched, config.idct_ways, "fpga.idct"),
      resizer_(sched, config.resizer_ways, "fpga.resizer"),
      dma_(sched, 1, "fpga.dma") {}

sim::SimTime FpgaDecoderSim::ReaderTime(const DecodeJob& job) const {
  const double fixed = job.source == DataSource::kDisk
                           ? rates_.disk_fixed_seconds
                           : rates_.dram_fixed_seconds;
  const double bw = job.source == DataSource::kDisk ? rates_.disk_bytes_per_sec
                                                    : rates_.dram_bytes_per_sec;
  return sim::Seconds(fixed + static_cast<double>(job.encoded_bytes) / bw);
}

sim::SimTime FpgaDecoderSim::HuffmanTime(const DecodeJob& job) const {
  return sim::Seconds(static_cast<double>(job.encoded_bytes) /
                      rates_.huffman_bytes_per_sec);
}

sim::SimTime FpgaDecoderSim::IdctTime(const DecodeJob& job) const {
  // Decode-to-scale: the scaled transform emits (8/denom)^2 pixels per
  // block, and its flowgraph shrinks accordingly — model the unit as
  // denom^2-fold faster per block (block *count* is unchanged: every block
  // still arrives from the Huffman unit).
  const double scale = static_cast<double>(job.scale_denom) * job.scale_denom;
  return sim::Seconds(static_cast<double>(BlocksFor(job.pixels)) /
                      (rates_.idct_blocks_per_sec * scale));
}

sim::SimTime FpgaDecoderSim::ResizerTime(const DecodeJob& job) const {
  // The resizer streams the iDCT's output planes, which decode-to-scale
  // already shrank by denom^2.
  const double scale = static_cast<double>(job.scale_denom) * job.scale_denom;
  return sim::Seconds(static_cast<double>(job.pixels) /
                      (rates_.resizer_pixels_per_sec * scale));
}

sim::SimTime FpgaDecoderSim::DmaTime(const DecodeJob& job) const {
  return sim::Seconds(rates_.dma_fixed_seconds +
                      static_cast<double>(job.out_bytes) /
                          rates_.dma_bytes_per_sec);
}

bool FpgaDecoderSim::SubmitDecode(const DecodeJob& job, sim::EventFn on_done) {
  if (in_flight_ >= config_.cmd_fifo_depth) return false;
  ++in_flight_;
  const sim::SimTime start = sched_->Now();
  auto finish = [this, start, on_done = std::move(on_done)]() mutable {
    --in_flight_;
    ++completed_;
    latency_hist_.Record(sched_->Now() - start);
    if (on_done) on_done();
  };

  if (!config_.pipelined) {
    // Fused ablation: one pass through a single monolithic unit whose
    // service time is the sum of all stage times; only the parser
    // parallelism (1) applies, so images cannot overlap inside the engine.
    const sim::SimTime total =
        sim::Seconds(rates_.parser_cmd_seconds) + ReaderTime(job) +
        HuffmanTime(job) + IdctTime(job) + ResizerTime(job) + DmaTime(job);
    parser_.Submit(total, std::move(finish));
    return true;
  }

  // Pipelined path: chain the units; each hand-off is a queued submit, so
  // stage k of image i overlaps stage k-1 of image i+1.
  sim::Resource& reader = job.source == DataSource::kDisk
                              ? disk_reader_
                              : dram_reader_;
  parser_.Submit(
      sim::Seconds(rates_.parser_cmd_seconds),
      [this, &reader, job, finish = std::move(finish)]() mutable {
        reader.Submit(
            ReaderTime(job),
            [this, job, finish = std::move(finish)]() mutable {
              huffman_.Submit(
                  HuffmanTime(job),
                  [this, job, finish = std::move(finish)]() mutable {
                    idct_.Submit(
                        IdctTime(job),
                        [this, job, finish = std::move(finish)]() mutable {
                          resizer_.Submit(
                              ResizerTime(job),
                              [this, job,
                               finish = std::move(finish)]() mutable {
                                dma_.Submit(DmaTime(job), std::move(finish));
                              });
                        });
                  });
            });
      });
  return true;
}

void FpgaDecoderSim::ExportMetrics(MetricRegistry* registry,
                                   const std::string& prefix) const {
  if (registry == nullptr) return;
  auto publish = [&](const char* unit, double utilization) {
    registry->GetGauge(prefix + "." + unit + ".utilization_pm")
        ->Set(static_cast<int64_t>(utilization * 1000.0));
  };
  publish("parser", ParserUtilization());
  publish("reader", ReaderUtilization());
  publish("huffman", HuffmanUtilization());
  publish("idct", IdctUtilization());
  publish("resizer", ResizerUtilization());
  publish("dma", DmaUtilization());
  registry->GetGauge(prefix + ".in_flight")->Set(in_flight_);
  registry->GetGauge(prefix + ".completed")
      ->Set(static_cast<int64_t>(completed_));
}

}  // namespace dlb::fpga
