#include "fpga/fpga_device.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "codec/jpeg_decoder.h"
#include "common/log.h"
#include "telemetry/event_log.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/stage_tag.h"

namespace dlb::fpga {

const char* FpgaDevice::UnitName(Unit unit) {
  switch (unit) {
    case Unit::kHuffman: return "huffman";
    case Unit::kIdct: return "idct";
    case Unit::kResizer: return "resizer";
  }
  return "unknown";
}

FpgaDevice::FpgaDevice(const FpgaDeviceOptions& options)
    : options_(options),
      cmd_fifo_(static_cast<size_t>(options.config.cmd_fifo_depth)),
      huffman_out_(static_cast<size_t>(options.config.cmd_fifo_depth)),
      idct_out_(static_cast<size_t>(options.config.cmd_fifo_depth)),
      finish_ring_(static_cast<size_t>(options.config.cmd_fifo_depth) * 2) {
  DLB_CHECK(ValidateConfig(options_.config).ok());
  // Worker threads mirror the hardware unit ways. In the emulation the
  // parser is folded into the Huffman stage (it is negligible work).
  for (int i = 0; i < options_.config.huffman_ways; ++i) {
    workers_.emplace_back(
        [this, i] { HuffmanWorker(static_cast<uint32_t>(i)); });
  }
  for (int i = 0; i < options_.config.idct_ways; ++i) {
    workers_.emplace_back([this, i] { IdctWorker(static_cast<uint32_t>(i)); });
  }
  for (int i = 0; i < options_.config.resizer_ways; ++i) {
    workers_.emplace_back(
        [this, i] { ResizerWorker(static_cast<uint32_t>(i)); });
  }
}

FpgaDevice::~FpgaDevice() { Shutdown(); }

void FpgaDevice::SetTelemetry(telemetry::Telemetry* telemetry) {
  if (telemetry != nullptr) {
    MetricRegistry& reg = telemetry->Registry();
    huffman_busy_.store(reg.GetCounter("fpga.huffman.busy_ns"),
                        std::memory_order_relaxed);
    idct_busy_.store(reg.GetCounter("fpga.idct.busy_ns"),
                     std::memory_order_relaxed);
    resizer_busy_.store(reg.GetCounter("fpga.resizer.busy_ns"),
                        std::memory_order_relaxed);
    // Way counts let the sampler turn busy-ns deltas into per-unit busy
    // fractions (utilization = delta_busy / (dt * ways)).
    reg.GetGauge("fpga.huffman.ways")
        ->Set(static_cast<double>(options_.config.huffman_ways));
    reg.GetGauge("fpga.idct.ways")
        ->Set(static_cast<double>(options_.config.idct_ways));
    reg.GetGauge("fpga.resizer.ways")
        ->Set(static_cast<double>(options_.config.resizer_ways));
    fifo_depth_.store(reg.GetGauge("fpga.cmd_fifo.depth"),
                      std::memory_order_relaxed);
    inflight_gauge_.store(reg.GetGauge("fpga.inflight"),
                          std::memory_order_relaxed);
    cpu_fallback_reg_.store(reg.GetCounter("decode.cpu_fallback"),
                            std::memory_order_relaxed);
    doorbells_.store(reg.GetCounter("fpga.doorbells"),
                     std::memory_order_relaxed);
    if (options_.device_index >= 0) {
      // Per-device twins: the busy counter plus a ways gauge lets the
      // sampler derive "fpga.dev<N>.utilization" exactly like the per-unit
      // fractions; completed/doorbell counters feed the monitor rows.
      const std::string p =
          "fpga.dev" + std::to_string(options_.device_index) + ".";
      dev_busy_.store(reg.GetCounter(p + "busy_ns"),
                      std::memory_order_relaxed);
      dev_completed_.store(reg.GetCounter(p + "completed"),
                           std::memory_order_relaxed);
      dev_fifo_depth_.store(reg.GetGauge(p + "cmd_fifo.depth"),
                            std::memory_order_relaxed);
      dev_doorbells_.store(reg.GetCounter(p + "doorbells"),
                           std::memory_order_relaxed);
      reg.GetGauge(p + "ways")
          ->Set(static_cast<double>(options_.config.huffman_ways +
                                    options_.config.idct_ways +
                                    options_.config.resizer_ways));
    }
  } else {
    huffman_busy_.store(nullptr, std::memory_order_relaxed);
    idct_busy_.store(nullptr, std::memory_order_relaxed);
    resizer_busy_.store(nullptr, std::memory_order_relaxed);
    fifo_depth_.store(nullptr, std::memory_order_relaxed);
    inflight_gauge_.store(nullptr, std::memory_order_relaxed);
    cpu_fallback_reg_.store(nullptr, std::memory_order_relaxed);
    doorbells_.store(nullptr, std::memory_order_relaxed);
    dev_busy_.store(nullptr, std::memory_order_relaxed);
    dev_completed_.store(nullptr, std::memory_order_relaxed);
    dev_fifo_depth_.store(nullptr, std::memory_order_relaxed);
    dev_doorbells_.store(nullptr, std::memory_order_relaxed);
  }
  telemetry_.store(telemetry, std::memory_order_release);
}

void FpgaDevice::SetCompletionSink(std::function<void(FpgaCompletion)> sink) {
  sink_ = std::move(sink);
  has_sink_.store(sink_ != nullptr, std::memory_order_release);
}

void FpgaDevice::PublishFifoDepth() {
  const double depth = static_cast<double>(cmd_fifo_.Size());
  if (Gauge* g = fifo_depth_.load(std::memory_order_acquire)) g->Set(depth);
  if (Gauge* g = dev_fifo_depth_.load(std::memory_order_acquire)) {
    g->Set(depth);
  }
}

void FpgaDevice::PublishInflight() {
  if (Gauge* g = inflight_gauge_.load(std::memory_order_acquire)) {
    g->Set(static_cast<double>(InFlight()));
  }
}

Status FpgaDevice::SubmitCmd(FpgaCmd cmd) {
  if (shutdown_.load(std::memory_order_relaxed)) {
    return Closed("FPGA device is shut down");
  }
  if (cmd.out == nullptr || cmd.jpeg.empty()) {
    return InvalidArgument("cmd needs input bytes and an output region");
  }
  if (telemetry_.load(std::memory_order_acquire) != nullptr) {
    cmd.submit_ns = telemetry::NowNs();
  }
  Status s = cmd_fifo_.TryPush(std::move(cmd));
  if (s.ok()) in_flight_.fetch_add(1, std::memory_order_relaxed);
  PublishFifoDepth();
  PublishInflight();
  return s;
}

size_t FpgaDevice::SubmitCmds(std::vector<FpgaCmd>& cmds) {
  if (cmds.empty() || shutdown_.load(std::memory_order_relaxed)) return 0;
  if (telemetry_.load(std::memory_order_acquire) != nullptr) {
    const uint64_t now = telemetry::NowNs();
    for (FpgaCmd& cmd : cmds) cmd.submit_ns = now;
  }
  const size_t accepted = cmd_fifo_.TryPushMany(cmds.begin(), cmds.end());
  if (accepted > 0) {
    in_flight_.fetch_add(static_cast<int>(accepted),
                         std::memory_order_relaxed);
    cmds.erase(cmds.begin(),
               cmds.begin() + static_cast<ptrdiff_t>(accepted));
    // One doorbell per accepted batch, however many commands it moved —
    // the cmds/doorbell ratio is the batching win.
    if (Counter* c = doorbells_.load(std::memory_order_acquire)) c->Add();
    if (Counter* c = dev_doorbells_.load(std::memory_order_acquire)) {
      c->Add();
    }
  }
  PublishFifoDepth();
  PublishInflight();
  return accepted;
}

std::vector<FpgaCompletion> FpgaDevice::DrainCompletions() {
  std::vector<FpgaCompletion> out;
  auto drained = finish_ring_.DrainAll();
  out.reserve(drained.size());
  for (auto& c : drained) out.push_back(std::move(c));
  return out;
}

std::vector<FpgaCompletion> FpgaDevice::WaitCompletions() {
  std::vector<FpgaCompletion> out;
  auto first = finish_ring_.Pop();
  if (!first.has_value()) return out;  // shut down
  out.push_back(std::move(*first));
  auto rest = finish_ring_.DrainAll();
  for (auto& c : rest) out.push_back(std::move(c));
  return out;
}

std::vector<FpgaCompletion> FpgaDevice::WaitCompletionsFor(
    uint64_t timeout_ms) {
  std::vector<FpgaCompletion> out;
  auto first = finish_ring_.PopFor(std::chrono::milliseconds(timeout_ms));
  if (!first.has_value()) return out;  // timed out or shut down
  out.push_back(std::move(*first));
  auto rest = finish_ring_.DrainAll();
  for (auto& c : rest) out.push_back(std::move(c));
  return out;
}

int FpgaDevice::QuarantinedWays() const {
  int total = 0;
  for (const auto& q : quarantined_) {
    total += q.load(std::memory_order_relaxed);
  }
  return total;
}

std::string FpgaDevice::QuarantineSummary() const {
  std::string out;
  for (int u = 0; u < kNumUnits; ++u) {
    const int n = quarantined_[u].load(std::memory_order_relaxed);
    if (n == 0) continue;
    if (!out.empty()) out += ",";
    out += UnitName(static_cast<Unit>(u));
    out += "=";
    out += std::to_string(n);
  }
  return out;
}

bool FpgaDevice::MaybeQuarantine(Unit unit, uint32_t way,
                                 bool already_quarantined) {
  if (already_quarantined) return true;
  fault::FaultInjector* inj = injector_.load(std::memory_order_acquire);
  if (inj == nullptr || !inj->Fire(fault::FaultKind::kFpgaUnitStall)) {
    return false;
  }
  const int unit_count =
      quarantined_[static_cast<int>(unit)].fetch_add(
          1, std::memory_order_relaxed) + 1;
  if (telemetry::Telemetry* telem =
          telemetry_.load(std::memory_order_acquire)) {
    MetricRegistry& reg = telem->Registry();
    reg.GetGauge("fpga.ways_quarantined")
        ->Set(static_cast<double>(QuarantinedWays()));
    reg.GetGauge(std::string("fpga.") + UnitName(unit) + ".quarantined")
        ->Set(static_cast<double>(unit_count));
    if (telemetry::EventLog* events = telem->events()) {
      events->Log(telemetry::EventType::kUnitQuarantined, 0,
                  static_cast<uint64_t>(unit), way);
    }
    if (flight::FlightRecorder* fr = telem->flight()) {
      fr->Trigger(flight::TriggerKind::kQuarantine,
                  std::string(UnitName(unit)) + " way " +
                      std::to_string(way) + " quarantined");
    }
  }
  return true;
}

void FpgaDevice::MaybeSpike() {
  fault::FaultInjector* inj = injector_.load(std::memory_order_acquire);
  if (inj == nullptr || !inj->Fire(fault::FaultKind::kLatencySpike)) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(inj->SpikeNs()));
}

void FpgaDevice::Complete(const FpgaCmd& cmd, Status status, int w, int h,
                          int c, size_t bytes, bool drop_finish) {
  FpgaCompletion done;
  done.cookie = cmd.cookie;
  done.status = std::move(status);
  done.width = w;
  done.height = h;
  done.channels = c;
  done.bytes_written = bytes;
  completed_.Add();
  if (Counter* c = dev_completed_.load(std::memory_order_acquire)) c->Add();
  if (drop_finish) {
    // Injected dma_drop: the work happened (pixels already landed), but the
    // FINISH record is lost. The reader's completion timeout must recover.
    dropped_finish_.Add();
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    PublishInflight();
    return;
  }
  if (has_sink_.load(std::memory_order_acquire)) {
    // Sink mode: deliver first, decrement after, so a router that observes
    // InFlight()==0 is guaranteed the completion is already visible in its
    // per-shard queue (Quiescent() can't race ahead of delivery).
    sink_(std::move(done));
    in_flight_.fetch_sub(1, std::memory_order_release);
    PublishInflight();
    return;
  }
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  PublishInflight();
  // Push may fail only at shutdown, when nobody is listening anyway.
  (void)finish_ring_.Push(std::move(done));
}

void FpgaDevice::HuffmanWorker(uint32_t way) {
  // Whole-loop stage tag: FIFO waits sample as decode wait, compute as
  // decode cpu — per-unit queue starvation shows up in /profile directly.
  prof::ScopedStageTag tag(static_cast<int>(telemetry::Stage::kDecode));
  bool quarantined = false;
  while (auto cmd = cmd_fifo_.Pop()) {
    MaybeSpike();
    quarantined = MaybeQuarantine(Unit::kHuffman, way, quarantined);
    // Busy time charges only the compute section, never a blocked push —
    // so busy_ns / wall gives true unit utilisation under backpressure.
    Counter* busy = huffman_busy_.load(std::memory_order_acquire);
    const uint64_t t0 = busy != nullptr ? telemetry::NowNs() : 0;
    auto charge = [&] {
      if (busy == nullptr) return;
      const uint64_t d = telemetry::NowNs() - t0;
      busy->Add(d);
      ChargeDevBusy(d);
    };
    if (quarantined) {
      // Dead way, degraded mode: this lane's commands fall back to the CPU
      // decode (one-shot jpeg::Decode composes the exact same stages — with
      // the same decode-to-scale options, so the scale choice matches — and
      // the output is byte-identical) instead of wedging the pipeline.
      auto decode_cpu = [&]() -> Result<Image> {
        jpeg::DecodeOptions dopts;
        if (cmd->decode_to_scale) {
          dopts.target_w = cmd->resize_w;
          dopts.target_h = cmd->resize_h;
        }
        auto result = jpeg::Decode(cmd->jpeg, dopts);
        if (!result.ok()) return result.status();
        return std::move(result.value().image);
      };
      auto img = options_.custom_decoder ? options_.custom_decoder(cmd->jpeg)
                                         : decode_cpu();
      charge();
      cpu_fallback_.Add();
      if (Counter* c = cpu_fallback_reg_.load(std::memory_order_acquire)) {
        c->Add();
      }
      if (!img.ok()) {
        Complete(*cmd, img.status(), 0, 0, 0, 0);
        continue;
      }
      HuffmanOut out;
      out.cmd = std::move(*cmd);
      out.direct = std::move(img).value();
      out.has_direct = true;
      if (!huffman_out_.Push(std::move(out)).ok()) return;
      continue;
    }
    if (options_.custom_decoder) {
      auto img = options_.custom_decoder(cmd->jpeg);
      charge();
      if (!img.ok()) {
        Complete(*cmd, img.status(), 0, 0, 0, 0);
        continue;
      }
      HuffmanOut out;
      out.cmd = std::move(*cmd);
      out.direct = std::move(img).value();
      out.has_direct = true;
      if (!huffman_out_.Push(std::move(out)).ok()) return;
      continue;
    }
    auto header = jpeg::ParseHeaders(cmd->jpeg);
    if (!header.ok()) {
      charge();
      Complete(*cmd, header.status(), 0, 0, 0, 0);
      continue;
    }
    auto coeffs = jpeg::EntropyDecode(header.value(), cmd->jpeg);
    charge();
    if (!coeffs.ok()) {
      Complete(*cmd, coeffs.status(), 0, 0, 0, 0);
      continue;
    }
    HuffmanOut out;
    out.cmd = std::move(*cmd);
    out.header = std::move(header).value();
    out.coeffs = std::move(coeffs).value();
    // Decode-to-scale decision point: the parser knows the source geometry,
    // so the scale rides the command through the iDCT and resizer units.
    if (out.cmd.decode_to_scale && out.cmd.resize_w > 0 &&
        out.cmd.resize_h > 0) {
      out.scale_denom = jpeg::ChooseScaleDenom(
          out.header.width, out.header.height, out.cmd.resize_w,
          out.cmd.resize_h);
    }
    if (!huffman_out_.Push(std::move(out)).ok()) return;
  }
}

void FpgaDevice::IdctWorker(uint32_t way) {
  prof::ScopedStageTag tag(static_cast<int>(telemetry::Stage::kDecode));
  bool quarantined = false;
  while (auto item = huffman_out_.Pop()) {
    // A quarantined iDCT way keeps draining its queue — in the emulation
    // the "CPU fallback" runs the identical transform, so latching here is
    // purely an accounting event (counted, reported, never a stall).
    quarantined = MaybeQuarantine(Unit::kIdct, way, quarantined);
    if (quarantined && !item->has_direct) {
      cpu_fallback_.Add();
      if (Counter* c = cpu_fallback_reg_.load(std::memory_order_acquire)) {
        c->Add();
      }
    }
    if (item->has_direct) {
      IdctOut out;
      out.cmd = std::move(item->cmd);
      out.direct = std::move(item->direct);
      out.has_direct = true;
      if (!idct_out_.Push(std::move(out)).ok()) return;
      continue;
    }
    Counter* busy = idct_busy_.load(std::memory_order_acquire);
    const uint64_t t0 = busy != nullptr ? telemetry::NowNs() : 0;
    auto planes = jpeg::InverseTransformScaled(item->header, item->coeffs,
                                               item->scale_denom);
    if (busy != nullptr) {
      const uint64_t d = telemetry::NowNs() - t0;
      busy->Add(d);
      ChargeDevBusy(d);
    }
    if (!planes.ok()) {
      Complete(item->cmd, planes.status(), 0, 0, 0, 0);
      continue;
    }
    IdctOut out;
    out.cmd = std::move(item->cmd);
    out.header = std::move(item->header);
    out.planes = std::move(planes).value();
    out.scale_denom = item->scale_denom;
    if (!idct_out_.Push(std::move(out)).ok()) return;
  }
}

void FpgaDevice::ResizerWorker(uint32_t way) {
  prof::ScopedStageTag tag(static_cast<int>(telemetry::Stage::kResize));
  bool quarantined = false;
  while (auto item = idct_out_.Pop()) {
    quarantined = MaybeQuarantine(Unit::kResizer, way, quarantined);
    if (quarantined) {
      cpu_fallback_.Add();
      if (Counter* c = cpu_fallback_reg_.load(std::memory_order_acquire)) {
        c->Add();
      }
    }
    telemetry::Telemetry* telem = telemetry_.load(std::memory_order_acquire);
    Counter* busy = resizer_busy_.load(std::memory_order_acquire);
    // Everything up to here — FIFO wait, Huffman, iDCT, colour — is the
    // decode stage of this command. The decode trace span parents to the
    // fetch span that submitted the command; resize then chains to decode.
    uint64_t decode_span = 0;
    if (telem != nullptr && item->cmd.submit_ns != 0) {
      decode_span = telem->RecordSpan(
          telemetry::Stage::kDecode, item->cmd.submit_ns, telemetry::NowNs(),
          1, item->cmd.trace, telemetry::Subsystem::kFpga, way);
    }
    const uint64_t resize_start =
        (telem != nullptr || busy != nullptr) ? telemetry::NowNs() : 0;
    Image image;
    if (item->has_direct) {
      image = std::move(item->direct);
    } else {
      auto rgb = jpeg::ColorReconstructScaled(item->header, item->planes,
                                              item->scale_denom);
      if (!rgb.ok()) {
        Complete(item->cmd, rgb.status(), 0, 0, 0, 0);
        continue;
      }
      image = std::move(rgb).value();
    }
    const FpgaCmd& cmd = item->cmd;
    if (cmd.resize_w > 0 && cmd.resize_h > 0 &&
        (cmd.resize_w != image.Width() || cmd.resize_h != image.Height())) {
      auto resized =
          cmd.aspect_crop
              ? ResizeCoverCrop(image, cmd.resize_w, cmd.resize_h,
                                options_.filter)
              : Resize(image, cmd.resize_w, cmd.resize_h, options_.filter);
      if (!resized.ok()) {
        Complete(cmd, resized.status(), 0, 0, 0, 0);
        continue;
      }
      image = std::move(resized).value();
    }
    if (image.SizeBytes() > cmd.out_capacity) {
      Complete(cmd,
               ResourceExhausted("output region too small for decoded image"),
               0, 0, 0, 0);
      continue;
    }
    // "DMA" the pixels into the host batch buffer.
    std::memcpy(cmd.out, image.Data(), image.SizeBytes());
    if (fault::FaultInjector* inj =
            injector_.load(std::memory_order_acquire)) {
      if (inj->Fire(fault::FaultKind::kDmaError)) {
        // Transient transfer failure: the reader may resubmit (retryable).
        Complete(cmd, Unavailable("injected DMA error"), 0, 0, 0, 0);
        continue;
      }
      if (inj->Fire(fault::FaultKind::kDmaDrop)) {
        // The copy landed but the FINISH record is lost; only the reader's
        // completion timeout can retire this slot.
        Complete(cmd, Status::Ok(), image.Width(), image.Height(),
                 image.Channels(), image.SizeBytes(), /*drop_finish=*/true);
        continue;
      }
    }
    if (resize_start != 0) {
      const uint64_t now = telemetry::NowNs();
      if (telem != nullptr) {
        const telemetry::TraceContext rctx =
            decode_span != 0 ? cmd.trace.Child(decode_span) : cmd.trace;
        telem->RecordSpan(telemetry::Stage::kResize, resize_start, now, 1,
                          rctx, telemetry::Subsystem::kFpga, way);
      }
      if (busy != nullptr) {
        busy->Add(now - resize_start);
        ChargeDevBusy(now - resize_start);
      }
    }
    Complete(cmd, Status::Ok(), image.Width(), image.Height(),
             image.Channels(), image.SizeBytes());
  }
}

void FpgaDevice::Shutdown() {
  if (shutdown_.exchange(true)) return;
  // Closing the queues releases every blocked worker; commands still in
  // flight are abandoned (device reset semantics).
  cmd_fifo_.Close();
  huffman_out_.Close();
  idct_out_.Close();
  finish_ring_.Close();
  workers_.clear();  // jthread joins
}

}  // namespace dlb::fpga
