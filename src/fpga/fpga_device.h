// Software-emulated FPGA decoder device (runtime layer).
//
// Since no Arria-10 is attached, this class stands in for the hardware
// behind the host bridger's FPGAChannel: it accepts the same commands,
// runs the same four decode stages the real decoder implements — organised
// as a thread pipeline mirroring the unit structure of Fig. 4 (N Huffman
// workers, an iDCT stage, M resizer lanes) — writes results by "DMA" into
// caller-supplied memory, and raises FINISH completions on a ring the
// FPGAReader drains. Everything above the channel is the production code
// path the paper describes.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "codec/jpeg_common.h"
#include "common/bounded_queue.h"
#include "common/fault.h"
#include "common/stats.h"
#include "fpga/decoder_config.h"
#include "image/image.h"
#include "image/resize.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace dlb::fpga {

/// One decode command, the software twin of the cmd word Algorithm 1 packs:
/// where the compressed bytes live, where the output must be DMA'd, and how
/// the resizer should shape it.
struct FpgaCmd {
  uint64_t cookie = 0;      // caller correlation id (batch slot)
  ByteSpan jpeg;            // compressed input (already resident)
  uint8_t* out = nullptr;   // output region inside a pool batch buffer
  size_t out_capacity = 0;  // bytes available at `out`
  int resize_w = 0;         // 0 = keep source dims
  int resize_h = 0;
  /// Aspect-preserving cover-resize + centre crop instead of a plain
  /// stretch (the real ImageNet recipe).
  bool aspect_crop = false;
  /// Decode at a reduced DCT scale: the Huffman unit picks the largest
  /// denominator (1/2, 1/4, 1/8) whose scaled dimensions still cover
  /// (resize_w, resize_h); the iDCT and resizer units then run on the
  /// smaller planes. Ignored when resize_w/resize_h are unset.
  bool decode_to_scale = false;
  /// Submit timestamp (ns), stamped by the device when telemetry is
  /// attached; the decode span is measured from here.
  uint64_t submit_ns = 0;
  /// Batch trace context (parented to the submitting fetch span). The
  /// device's decode span records under it and the resize span chains to
  /// the decode span, extending the batch's causal tree into the FPGA.
  telemetry::TraceContext trace;
};

/// FINISH-arbiter completion record.
struct FpgaCompletion {
  uint64_t cookie = 0;
  Status status;
  int width = 0;
  int height = 0;
  int channels = 0;
  size_t bytes_written = 0;
};

struct FpgaDeviceOptions {
  DecoderConfig config;
  /// Resize filter used by the hardware resizer unit (area = what the
  /// accumulate-then-divide hardware does).
  ResizeFilter filter = ResizeFilter::kArea;
  /// Pluggable decoder mirror (§3.1): when set, this function replaces the
  /// built-in JPEG Huffman/iDCT stages — the software twin of downloading a
  /// different preprocessing mirror to the device. The resizer and DMA
  /// stages still apply. Must be thread-safe.
  std::function<Result<Image>(ByteSpan)> custom_decoder;
  /// Shard index in a multi-device data plane. When >= 0 the device also
  /// publishes per-device metrics ("fpga.dev<N>.busy_ns", ".ways",
  /// ".completed", ".cmd_fifo.depth", ".doorbells") alongside the
  /// aggregate "fpga.*" names, so the sampler derives a per-device
  /// utilization and the monitor can render one row per device.
  int device_index = -1;
};

class FpgaDevice {
 public:
  /// The three unit types of Fig. 4 (quarantine is tracked per unit).
  enum class Unit : uint8_t { kHuffman = 0, kIdct, kResizer };
  static constexpr int kNumUnits = 3;
  static const char* UnitName(Unit unit);

  explicit FpgaDevice(const FpgaDeviceOptions& options = {});
  ~FpgaDevice();

  FpgaDevice(const FpgaDevice&) = delete;
  FpgaDevice& operator=(const FpgaDevice&) = delete;

  /// Non-blocking command submit. kResourceExhausted when the FIFO is full
  /// (the FPGAReader then drains completions and retries — Algorithm 1),
  /// kClosed after Shutdown.
  Status SubmitCmd(FpgaCmd cmd);

  /// Batched multi-buffer submit: one doorbell moves as many commands as
  /// the cmd FIFO has room for. The accepted prefix is moved into the FIFO
  /// and erased from `cmds`; the rejected tail stays for the caller to
  /// retry after draining completions. Returns the accepted count (0 when
  /// full or shut down). Commands must already be valid (input bytes and
  /// an output region) — the batch path skips per-command validation.
  size_t SubmitCmds(std::vector<FpgaCmd>& cmds);

  /// Slots currently free in the cmd FIFO — how many commands the next
  /// SubmitCmds doorbell would accept. Advisory under concurrency.
  int FifoSpace() const {
    return static_cast<int>(cmd_fifo_.Capacity() - cmd_fifo_.Size());
  }

  /// Drain all completions currently signalled (drain_out in Table 1).
  std::vector<FpgaCompletion> DrainCompletions();

  /// Block until at least one completion is available (or the device shuts
  /// down); then drain.
  std::vector<FpgaCompletion> WaitCompletions();

  /// Like WaitCompletions, but gives up after `timeout_ms` (empty result).
  /// Lets the FPGAReader bound its wait when completions may be lost.
  std::vector<FpgaCompletion> WaitCompletionsFor(uint64_t timeout_ms);

  /// Route completions to `sink` instead of the FINISH ring (the
  /// work-stealing router uses this to demultiplex completions back to the
  /// submitting shard). Must be installed before the first submit and not
  /// changed while commands are in flight. In sink mode InFlight() only
  /// drops to zero after the completion has been delivered to the sink, so
  /// a router can use it as a quiescence fence. Null restores ring
  /// delivery.
  void SetCompletionSink(std::function<void(FpgaCompletion)> sink);

  /// Shard index from FpgaDeviceOptions (-1 for a standalone device).
  int DeviceIndex() const { return options_.device_index; }

  /// Commands accepted but not yet completed. Acquire pairs with the
  /// sink-mode release decrement: a reader that observes 0 also observes
  /// every effect of the sink call (the router's teardown fence).
  int InFlight() const { return in_flight_.load(std::memory_order_acquire); }

  /// True once Shutdown() ran (no further completions will arrive).
  bool IsClosed() const { return shutdown_.load(std::memory_order_acquire); }

  uint64_t Completed() const { return completed_.Value(); }

  /// Attach a telemetry sink: per-command decode/resize spans plus per-unit
  /// busy-time counters ("fpga.huffman.busy_ns", "fpga.idct.busy_ns",
  /// "fpga.resizer.busy_ns") for busy/idle accounting, way-count gauges
  /// ("fpga.<unit>.ways", letting the metrics sampler derive per-unit busy
  /// fractions from the busy counters) and occupancy gauges
  /// ("fpga.cmd_fifo.depth", "fpga.inflight") refreshed on every submit and
  /// completion. Safe to call after construction (workers already running)
  /// as long as no command has been submitted yet.
  void SetTelemetry(telemetry::Telemetry* telemetry);

  /// Attach a fault injector. A way that draws a `fpga_unit_stall` fault
  /// latches as quarantined: it stays scheduled but routes every further
  /// command through the full CPU decode path (graceful degradation — the
  /// output stays byte-identical; only the routing and the health metrics
  /// change). `dma_error` / `dma_drop` / `latency_spike` fire at the DMA
  /// completion point. Null detaches.
  void SetFaultInjector(fault::FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

  /// Ways currently quarantined, total and per unit.
  int QuarantinedWays() const;
  int QuarantinedWays(Unit unit) const {
    return quarantined_[static_cast<int>(unit)].load(
        std::memory_order_relaxed);
  }
  /// "huffman=1,resizer=2" (empty when healthy) — for Describe()/reports.
  std::string QuarantineSummary() const;

  /// Commands a quarantined way served via the CPU-decode fallback.
  uint64_t CpuFallbackDecodes() const { return cpu_fallback_.Value(); }
  /// FINISH records lost to injected dma_drop faults.
  uint64_t DroppedCompletions() const { return dropped_finish_.Value(); }

  void Shutdown();

 private:
  // Internal pipeline payloads. `direct` carries a fully decoded image when
  // a custom mirror bypasses the JPEG-specific stages.
  struct HuffmanOut {
    FpgaCmd cmd;
    jpeg::JpegHeader header;
    jpeg::CoeffData coeffs;
    Image direct;
    bool has_direct = false;
    /// DCT scale chosen at parse time (decode-to-scale); 1 = full size.
    int scale_denom = 1;
  };
  struct IdctOut {
    FpgaCmd cmd;
    jpeg::JpegHeader header;
    jpeg::PlaneData planes;
    Image direct;
    bool has_direct = false;
    int scale_denom = 1;
  };

  void HuffmanWorker(uint32_t way);
  void IdctWorker(uint32_t way);
  void ResizerWorker(uint32_t way);
  void Complete(const FpgaCmd& cmd, Status status, int w, int h, int c,
                size_t bytes, bool drop_finish = false);
  /// Mirror the cmd-FIFO depth / in-flight count into the cached gauges
  /// (aggregate and per-device twins).
  void PublishFifoDepth();
  void PublishInflight();
  /// Charge `ns` of busy time to the per-device counter (no-op when the
  /// device has no index or no telemetry).
  void ChargeDevBusy(uint64_t ns) {
    if (Counter* c = dev_busy_.load(std::memory_order_acquire)) c->Add(ns);
  }
  /// One Bernoulli draw for a unit-stall fault; latches + reports the way
  /// on the first hit. Returns the (possibly fresh) quarantine state.
  bool MaybeQuarantine(Unit unit, uint32_t way, bool already_quarantined);
  /// Injected latency spike at a unit's service point (no-op when unarmed).
  void MaybeSpike();

  FpgaDeviceOptions options_;
  BoundedQueue<FpgaCmd> cmd_fifo_;
  BoundedQueue<HuffmanOut> huffman_out_;
  BoundedQueue<IdctOut> idct_out_;
  BoundedQueue<FpgaCompletion> finish_ring_;
  std::vector<std::jthread> workers_;
  std::atomic<int> in_flight_{0};
  Counter completed_;
  std::atomic<bool> shutdown_{false};
  std::atomic<telemetry::Telemetry*> telemetry_{nullptr};
  // Unit busy-ns counters, cached from the registry at SetTelemetry time so
  // workers avoid the registry lock on the hot path.
  std::atomic<Counter*> huffman_busy_{nullptr};
  std::atomic<Counter*> idct_busy_{nullptr};
  std::atomic<Counter*> resizer_busy_{nullptr};
  // Occupancy gauges (cmd-FIFO depth, commands in flight), also cached so
  // submit/complete avoid the registry lock.
  std::atomic<Gauge*> fifo_depth_{nullptr};
  std::atomic<Gauge*> inflight_gauge_{nullptr};
  // Per-device metric twins ("fpga.dev<N>.*"), live only when
  // options_.device_index >= 0 and telemetry is attached.
  std::atomic<Counter*> dev_busy_{nullptr};
  std::atomic<Counter*> dev_completed_{nullptr};
  std::atomic<Gauge*> dev_fifo_depth_{nullptr};
  std::atomic<Counter*> doorbells_{nullptr};
  std::atomic<Counter*> dev_doorbells_{nullptr};
  // Completion sink (router demux). Written before the first submit, read
  // by workers under the has_sink_ acquire flag.
  std::function<void(FpgaCompletion)> sink_;
  std::atomic<bool> has_sink_{false};
  // Fault plane: injector hook, per-unit quarantine tallies, fallback and
  // lost-FINISH counters (cached registry twins where the path is warm).
  std::atomic<fault::FaultInjector*> injector_{nullptr};
  std::atomic<int> quarantined_[kNumUnits] = {};
  Counter cpu_fallback_;
  Counter dropped_finish_;
  std::atomic<Counter*> cpu_fallback_reg_{nullptr};
};

}  // namespace dlb::fpga
