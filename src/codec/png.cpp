#include "codec/png.h"

#include <array>
#include <cstdlib>
#include <cstring>

#include "codec/inflate.h"

namespace dlb::png {

namespace {

const uint8_t kSignature[8] = {0x89, 'P', 'N', 'G', '\r', '\n', 0x1A, '\n'};

struct Crc32Table {
  std::array<uint32_t, 256> t;
  Crc32Table() {
    for (uint32_t n = 0; n < 256; ++n) {
      uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[n] = c;
    }
  }
};

uint32_t Crc32Update(uint32_t crc, ByteSpan data) {
  static const Crc32Table table;
  for (uint8_t byte : data) {
    crc = table.t[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

void AppendBe32(Bytes* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v >> 24));
  out->push_back(static_cast<uint8_t>((v >> 16) & 0xFF));
  out->push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
  out->push_back(static_cast<uint8_t>(v & 0xFF));
}

uint32_t ReadBe32Png(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (p[1] << 16) | (p[2] << 8) |
         p[3];
}

void AppendChunk(Bytes* out, const char type[4], ByteSpan payload) {
  AppendBe32(out, static_cast<uint32_t>(payload.size()));
  const size_t type_at = out->size();
  out->insert(out->end(), type, type + 4);
  out->insert(out->end(), payload.begin(), payload.end());
  const uint32_t crc =
      Crc32Update(0xFFFFFFFFu,
                  ByteSpan(out->data() + type_at, 4 + payload.size())) ^
      0xFFFFFFFFu;
  AppendBe32(out, crc);
}

/// Paeth predictor (PNG filter type 4).
uint8_t Paeth(int a, int b, int c) {
  const int p = a + b - c;
  const int pa = std::abs(p - a);
  const int pb = std::abs(p - b);
  const int pc = std::abs(p - c);
  if (pa <= pb && pa <= pc) return static_cast<uint8_t>(a);
  if (pb <= pc) return static_cast<uint8_t>(b);
  return static_cast<uint8_t>(c);
}

/// Undo one scanline's filter in place (prev = defiltered previous row or
/// null for the first row), bpp = bytes per pixel.
Status Defilter(uint8_t filter, uint8_t* row, const uint8_t* prev,
                size_t row_bytes, int bpp) {
  switch (filter) {
    case 0:
      return Status::Ok();
    case 1:  // Sub
      for (size_t i = bpp; i < row_bytes; ++i) row[i] += row[i - bpp];
      return Status::Ok();
    case 2:  // Up
      if (prev) {
        for (size_t i = 0; i < row_bytes; ++i) row[i] += prev[i];
      }
      return Status::Ok();
    case 3:  // Average
      for (size_t i = 0; i < row_bytes; ++i) {
        const int left = i >= static_cast<size_t>(bpp) ? row[i - bpp] : 0;
        const int up = prev ? prev[i] : 0;
        row[i] = static_cast<uint8_t>(row[i] + ((left + up) >> 1));
      }
      return Status::Ok();
    case 4:  // Paeth
      for (size_t i = 0; i < row_bytes; ++i) {
        const int left = i >= static_cast<size_t>(bpp) ? row[i - bpp] : 0;
        const int up = prev ? prev[i] : 0;
        const int up_left =
            (prev && i >= static_cast<size_t>(bpp)) ? prev[i - bpp] : 0;
        row[i] = static_cast<uint8_t>(row[i] + Paeth(left, up, up_left));
      }
      return Status::Ok();
    default:
      return CorruptData("unknown scanline filter");
  }
}

}  // namespace

uint32_t Crc32(ByteSpan data) {
  return Crc32Update(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

bool SniffPng(ByteSpan data) {
  return data.size() >= 8 && std::memcmp(data.data(), kSignature, 8) == 0;
}

Result<Bytes> Encode(const Image& img) {
  if (img.Empty()) return InvalidArgument("encode of empty image");
  if (img.Channels() != 1 && img.Channels() != 3) {
    return InvalidArgument("PNG encoder supports 1 or 3 channels");
  }
  Bytes out(kSignature, kSignature + 8);

  Bytes ihdr;
  AppendBe32(&ihdr, static_cast<uint32_t>(img.Width()));
  AppendBe32(&ihdr, static_cast<uint32_t>(img.Height()));
  ihdr.push_back(8);                                  // bit depth
  ihdr.push_back(img.Channels() == 3 ? 2 : 0);        // color type
  ihdr.push_back(0);                                  // compression
  ihdr.push_back(0);                                  // filter method
  ihdr.push_back(0);                                  // no interlace
  AppendChunk(&out, "IHDR", ihdr);

  // Raw scanlines, filter 0 each.
  const size_t row_bytes =
      static_cast<size_t>(img.Width()) * img.Channels();
  Bytes raw;
  raw.reserve((row_bytes + 1) * img.Height());
  for (int y = 0; y < img.Height(); ++y) {
    raw.push_back(0);  // filter type
    raw.insert(raw.end(), img.Row(y), img.Row(y) + row_bytes);
  }
  const Bytes idat = flate::ZlibCompress(raw);
  AppendChunk(&out, "IDAT", idat);
  AppendChunk(&out, "IEND", ByteSpan{});
  return out;
}

Result<Image> Decode(ByteSpan data) {
  if (!SniffPng(data)) return CorruptData("missing PNG signature");
  size_t pos = 8;
  int width = 0, height = 0, bit_depth = 0, color_type = 0, interlace = 0;
  bool have_ihdr = false;
  bool have_iend = false;
  Bytes idat;
  Bytes palette;  // RGB triples

  while (pos + 12 <= data.size()) {
    const uint32_t length = ReadBe32Png(data.data() + pos);
    if (pos + 12 + length > data.size()) {
      return CorruptData("chunk length out of bounds");
    }
    const char* type = reinterpret_cast<const char*>(data.data() + pos + 4);
    const ByteSpan payload = data.subspan(pos + 8, length);
    const uint32_t stored_crc = ReadBe32Png(data.data() + pos + 8 + length);
    const uint32_t computed_crc =
        Crc32(ByteSpan(data.data() + pos + 4, 4 + length));
    if (stored_crc != computed_crc) return CorruptData("chunk CRC mismatch");

    if (std::memcmp(type, "IHDR", 4) == 0) {
      if (length != 13) return CorruptData("bad IHDR length");
      width = static_cast<int>(ReadBe32Png(payload.data()));
      height = static_cast<int>(ReadBe32Png(payload.data() + 4));
      bit_depth = payload[8];
      color_type = payload[9];
      interlace = payload[12];
      have_ihdr = true;
      if (width <= 0 || height <= 0) return CorruptData("bad dimensions");
      if (bit_depth != 8) {
        return Status(StatusCode::kUnimplemented, "only 8-bit depth");
      }
      if (color_type != 0 && color_type != 2 && color_type != 3 &&
          color_type != 6) {
        return Status(StatusCode::kUnimplemented, "unsupported color type");
      }
      if (interlace != 0) {
        return Status(StatusCode::kUnimplemented, "Adam7 interlace");
      }
    } else if (std::memcmp(type, "PLTE", 4) == 0) {
      if (length % 3 != 0) return CorruptData("bad PLTE length");
      palette.assign(payload.begin(), payload.end());
    } else if (std::memcmp(type, "IDAT", 4) == 0) {
      idat.insert(idat.end(), payload.begin(), payload.end());
    } else if (std::memcmp(type, "IEND", 4) == 0) {
      have_iend = true;
      break;
    }
    // Ancillary chunks are skipped.
    pos += 12 + length;
  }
  if (!have_ihdr) return CorruptData("missing IHDR");
  if (!have_iend) return CorruptData("missing IEND (truncated file)");
  if (idat.empty()) return CorruptData("missing IDAT");
  if (color_type == 3 && palette.empty()) return CorruptData("missing PLTE");

  const int src_channels =
      color_type == 2 ? 3 : (color_type == 6 ? 4 : 1);
  const size_t row_bytes = static_cast<size_t>(width) * src_channels;
  const size_t raw_size = (row_bytes + 1) * height;
  auto raw = flate::ZlibDecompress(idat, raw_size);
  if (!raw.ok()) return raw.status();
  if (raw.value().size() != raw_size) {
    return CorruptData("decompressed size mismatch");
  }

  // Defilter in place, then convert to the output Image.
  const int out_channels = (color_type == 0) ? 1 : 3;
  Image img(width, height, out_channels);
  uint8_t* prev = nullptr;
  for (int y = 0; y < height; ++y) {
    uint8_t* line = raw.value().data() + static_cast<size_t>(y) * (row_bytes + 1);
    const uint8_t filter = line[0];
    uint8_t* row = line + 1;
    DLB_RETURN_IF_ERROR(Defilter(filter, row, prev, row_bytes, src_channels));
    prev = row;
    uint8_t* out_row = img.Row(y);
    switch (color_type) {
      case 0:
        std::memcpy(out_row, row, row_bytes);
        break;
      case 2:
        std::memcpy(out_row, row, row_bytes);
        break;
      case 3:
        for (int x = 0; x < width; ++x) {
          const size_t index = static_cast<size_t>(row[x]) * 3;
          if (index + 2 >= palette.size()) {
            return CorruptData("palette index out of range");
          }
          out_row[x * 3 + 0] = palette[index];
          out_row[x * 3 + 1] = palette[index + 1];
          out_row[x * 3 + 2] = palette[index + 2];
        }
        break;
      case 6:
        for (int x = 0; x < width; ++x) {
          out_row[x * 3 + 0] = row[x * 4 + 0];
          out_row[x * 3 + 1] = row[x * 4 + 1];
          out_row[x * 3 + 2] = row[x * 4 + 2];  // alpha dropped
        }
        break;
    }
  }
  return img;
}

}  // namespace dlb::png
