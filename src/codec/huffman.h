// Canonical Huffman coding per ITU-T T.81 Annex C (table construction),
// Annex F (encode/decode procedures).
//
// The decoder mirrors the FPGA "Huffman decoding unit" (Fig. 4): it is a
// pure function from a bitstream to (run,size)/coefficient symbols, so the
// same code runs inside the emulated FPGA device and the CPU backend.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "codec/bit_io.h"
#include "codec/jpeg_common.h"
#include "common/status.h"

namespace dlb::jpeg {

/// Encoder-side table: code word + length per symbol value.
class HuffmanEncoder {
 public:
  static Result<HuffmanEncoder> Build(const HuffmanSpec& spec);

  /// Emit the code word for `symbol` (must exist in the table).
  void Encode(BitWriter& bw, uint8_t symbol) const {
    const Entry& e = entries_[symbol];
    bw.Put(e.code, e.length);
  }

  bool HasSymbol(uint8_t symbol) const { return entries_[symbol].length != 0; }

 private:
  struct Entry {
    uint16_t code = 0;
    uint8_t length = 0;
  };
  std::array<Entry, 256> entries_{};
};

/// Decoder-side table using the T.81 MINCODE/MAXCODE/VALPTR scheme plus an
/// 8-bit fast lookup for short codes (the common case: >90% of symbols).
class HuffmanDecoder {
 public:
  static Result<HuffmanDecoder> Build(const HuffmanSpec& spec);

  /// Decode one symbol; returns -1 on malformed stream / exhausted input.
  /// Fast path: one 8-bit peek resolves every code of length <= 8 (the
  /// overwhelmingly common case) straight from the lookup table; longer
  /// codes consume the peeked byte and finish via MINCODE/MAXCODE.
  int Decode(BitReader& br) const;

  /// The seed bit-by-bit MINCODE walk, kept as the reference oracle and as
  /// the fallback when fewer than 8 bits remain before a marker. Identical
  /// symbol stream to Decode() on every valid input.
  int DecodeReference(BitReader& br) const;

 private:
  // Slow path state (per code length 1..16).
  std::array<int32_t, 17> min_code_{};
  std::array<int32_t, 17> max_code_{};  // -1 when no codes of that length
  std::array<int32_t, 17> val_ptr_{};
  std::vector<uint8_t> vals_;
  // Fast path: index by next 8 bits -> (symbol, length) or miss.
  struct FastEntry {
    int16_t symbol = -1;  // -1 = miss (code longer than 8 bits)
    uint8_t length = 0;
  };
  std::array<FastEntry, 256> fast_{};
};

/// Magnitude category ("SSSS") of a coefficient per T.81 F.1.2.1.1.
int MagnitudeCategory(int value);

/// Encode `value` of category `ssss` as its variable-length integer bits.
uint32_t MagnitudeBits(int value, int ssss);

/// Reconstruct a value from `ssss` bits read off the stream ("EXTEND").
int ExtendValue(int bits, int ssss);

}  // namespace dlb::jpeg
