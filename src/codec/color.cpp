#include "codec/color.h"

#include <algorithm>

namespace dlb::jpeg {

namespace {
inline uint8_t ClampU8(int v) {
  return static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}
}  // namespace

void RgbToYcbcr(const Image& rgb, std::vector<uint8_t>* y,
                std::vector<uint8_t>* cb, std::vector<uint8_t>* cr) {
  const int w = rgb.Width(), h = rgb.Height();
  y->resize(static_cast<size_t>(w) * h);
  cb->resize(static_cast<size_t>(w) * h);
  cr->resize(static_cast<size_t>(w) * h);
  // Fixed-point BT.601 (JFIF): scale by 2^16.
  constexpr int kYr = 19595, kYg = 38470, kYb = 7471;        // 0.299/0.587/0.114
  constexpr int kCbR = -11059, kCbG = -21709, kCbB = 32768;  // -0.1687/-0.3313/0.5
  constexpr int kCrR = 32768, kCrG = -27439, kCrB = -5329;   // 0.5/-0.4187/-0.0813
  size_t idx = 0;
  for (int yy = 0; yy < h; ++yy) {
    const uint8_t* row = rgb.Row(yy);
    for (int xx = 0; xx < w; ++xx, ++idx) {
      const int r = row[xx * 3 + 0];
      const int g = row[xx * 3 + 1];
      const int b = row[xx * 3 + 2];
      (*y)[idx] = ClampU8((kYr * r + kYg * g + kYb * b + 32768) >> 16);
      (*cb)[idx] = ClampU8(((kCbR * r + kCbG * g + kCbB * b + 32768) >> 16) + 128);
      (*cr)[idx] = ClampU8(((kCrR * r + kCrG * g + kCrB * b + 32768) >> 16) + 128);
    }
  }
}

void YcbcrToRgbPixel(int y, int cb, int cr, uint8_t* r, uint8_t* g,
                     uint8_t* b) {
  // Fixed-point inverse BT.601: R = Y + 1.402(Cr-128), etc.
  const int c = cr - 128;
  const int d = cb - 128;
  *r = ClampU8(y + ((91881 * c + 32768) >> 16));
  *g = ClampU8(y - ((22554 * d + 46802 * c + 32768) >> 16));
  *b = ClampU8(y + ((116130 * d + 32768) >> 16));
}

std::vector<uint8_t> Downsample2x2(const std::vector<uint8_t>& plane, int w,
                                   int h) {
  const int ow = (w + 1) / 2;
  const int oh = (h + 1) / 2;
  std::vector<uint8_t> out(static_cast<size_t>(ow) * oh);
  for (int y = 0; y < oh; ++y) {
    const int y0 = 2 * y;
    const int y1 = std::min(2 * y + 1, h - 1);
    for (int x = 0; x < ow; ++x) {
      const int x0 = 2 * x;
      const int x1 = std::min(2 * x + 1, w - 1);
      const int sum = plane[static_cast<size_t>(y0) * w + x0] +
                      plane[static_cast<size_t>(y0) * w + x1] +
                      plane[static_cast<size_t>(y1) * w + x0] +
                      plane[static_cast<size_t>(y1) * w + x1];
      out[static_cast<size_t>(y) * ow + x] = static_cast<uint8_t>((sum + 2) / 4);
    }
  }
  return out;
}

std::vector<uint8_t> Downsample2x1(const std::vector<uint8_t>& plane, int w,
                                   int h) {
  const int ow = (w + 1) / 2;
  std::vector<uint8_t> out(static_cast<size_t>(ow) * h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < ow; ++x) {
      const int x0 = 2 * x;
      const int x1 = std::min(2 * x + 1, w - 1);
      const int sum = plane[static_cast<size_t>(y) * w + x0] +
                      plane[static_cast<size_t>(y) * w + x1];
      out[static_cast<size_t>(y) * ow + x] = static_cast<uint8_t>((sum + 1) / 2);
    }
  }
  return out;
}

}  // namespace dlb::jpeg
