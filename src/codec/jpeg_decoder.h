// Baseline JPEG decoder, structured as the four separable stages of the
// paper's FPGA decoder (Fig. 4):
//
//   ParseHeaders      — the "parser" unit: markers, tables, geometry
//   EntropyDecode     — the "Huffman decoding" unit: bitstream -> coefficients
//   InverseTransform  — the "iDCT & RGB" unit, first half: dequant + iDCT
//   ColorReconstruct  — second half: upsample + YCbCr -> RGB
//
// `Decode` composes all four. The FPGA simulator's functional mode and the
// CPU backend both call the stage functions, so backend outputs are
// bit-identical by construction.
#pragma once

#include "codec/jpeg_common.h"
#include "image/image.h"

namespace dlb::jpeg {

/// Parse all marker segments up to (and including) SOS. Rejects anything
/// that is not baseline sequential 8-bit with 1 or 3 components.
Result<JpegHeader> ParseHeaders(ByteSpan jpeg);

/// Cheap info peek: dimensions and channel count only.
Result<ImageInfo> PeekInfo(ByteSpan jpeg);

/// Huffman-decode the entropy segment into per-component zig-zag coefficient
/// blocks. Handles restart markers.
Result<CoeffData> EntropyDecode(const JpegHeader& header, ByteSpan jpeg);

/// Dequantise + inverse DCT all blocks into 8-bit component planes
/// (MCU-padded dimensions per component).
Result<PlaneData> InverseTransform(const JpegHeader& header,
                                   const CoeffData& coeffs);

/// Upsample chroma and convert to interleaved RGB (or pass through
/// grayscale), cropped to the true width/height.
Result<Image> ColorReconstruct(const JpegHeader& header,
                               const PlaneData& planes);

/// Convenience full decode.
Result<Image> Decode(ByteSpan jpeg);

}  // namespace dlb::jpeg
