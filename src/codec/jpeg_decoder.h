// Baseline JPEG decoder, structured as the four separable stages of the
// paper's FPGA decoder (Fig. 4):
//
//   ParseHeaders      — the "parser" unit: markers, tables, geometry
//   EntropyDecode     — the "Huffman decoding" unit: bitstream -> coefficients
//   InverseTransform  — the "iDCT & RGB" unit, first half: dequant + iDCT
//   ColorReconstruct  — second half: upsample + YCbCr -> RGB
//
// `Decode` composes all four. The FPGA simulator's functional mode and the
// CPU backend both call the stage functions, so backend outputs are
// bit-identical by construction.
#pragma once

#include "codec/jpeg_common.h"
#include "image/image.h"

namespace dlb::jpeg {

/// Decode-time options. Two ways to ask for DCT-domain decode-to-scale:
///
///   * scale_num/scale_denom — an explicit ratio. Only 1/1, 1/2, 1/4 and
///     1/8 are representable (the DCT block sizes 8, 4, 2, 1).
///   * target_w/target_h — let the decoder pick: the largest denominator
///     whose scaled dimensions still cover the target (never an upscale),
///     leaving only a small residual resize to the caller. Takes precedence
///     over an explicit ratio when both are set.
///
/// Defaults decode at full resolution, exactly like the legacy signature.
struct DecodeOptions {
  int scale_num = 1;    // must be 1
  int scale_denom = 1;  // 1, 2, 4 or 8
  int target_w = 0;     // >0 (with target_h): derive scale_denom
  int target_h = 0;
};

/// Full-decode output plus what the decoder actually did, so telemetry and
/// tests can assert the chosen DCT scale.
struct DecodeResult {
  Image image;
  int scale_denom = 1;  // 1 = full resolution
};

/// The scale-selection rule: largest denom in {8, 4, 2, 1} such that the
/// scaled dimensions (ceil(width/denom), ceil(height/denom)) still cover
/// (target_w, target_h). Returns 1 when the target is unset/degenerate.
int ChooseScaleDenom(int width, int height, int target_w, int target_h);

/// Scaled output dimension: ceil(full / denom).
inline int ScaledDim(int full, int denom) {
  return (full + denom - 1) / denom;
}

/// Parse all marker segments up to (and including) SOS. Rejects anything
/// that is not baseline sequential 8-bit with 1 or 3 components.
Result<JpegHeader> ParseHeaders(ByteSpan jpeg);

/// Cheap info peek: dimensions and channel count only.
Result<ImageInfo> PeekInfo(ByteSpan jpeg);

/// Huffman-decode the entropy segment into per-component zig-zag coefficient
/// blocks. Handles restart markers.
Result<CoeffData> EntropyDecode(const JpegHeader& header, ByteSpan jpeg);

/// Dequantise + inverse DCT all blocks into 8-bit component planes
/// (MCU-padded dimensions per component).
Result<PlaneData> InverseTransform(const JpegHeader& header,
                                   const CoeffData& coeffs);

/// Scale-aware variant: emit (8/denom)x(8/denom) pixels per block, so each
/// component plane is blocks_w*(8/denom) x blocks_h*(8/denom). denom == 1
/// is exactly InverseTransform.
Result<PlaneData> InverseTransformScaled(const JpegHeader& header,
                                         const CoeffData& coeffs,
                                         int scale_denom);

/// Upsample chroma and convert to interleaved RGB (or pass through
/// grayscale), cropped to the true width/height.
Result<Image> ColorReconstruct(const JpegHeader& header,
                               const PlaneData& planes);

/// Scale-aware variant for planes produced by InverseTransformScaled:
/// output is ScaledDim(width, denom) x ScaledDim(height, denom). The
/// per-component sampling-ratio indexing is scale-invariant, so 4:2:0 and
/// 4:2:2 chroma compose identically at every scale.
Result<Image> ColorReconstructScaled(const JpegHeader& header,
                                     const PlaneData& planes,
                                     int scale_denom);

/// Full decode with options (decode-to-scale); reports the chosen scale.
Result<DecodeResult> Decode(ByteSpan jpeg, const DecodeOptions& options);

/// Legacy convenience signature: forwards to the options overload with a
/// default-constructed DecodeOptions (full resolution).
Result<Image> Decode(ByteSpan jpeg);

}  // namespace dlb::jpeg
