// Binary PPM (P6) / PGM (P5) codec.
//
// A second, genuinely different image format so the pluggable-decoder story
// (§3.1: "download relevant preprocessing mirrors to FPGA devices for
// different applications") can be demonstrated end-to-end with real bytes.
#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "image/image.h"

namespace dlb::ppm {

/// Encode 3-channel images as P6, 1-channel as P5 (maxval 255).
Result<Bytes> Encode(const Image& img);

/// Decode P5/P6 with the usual whitespace/comment grammar.
Result<Image> Decode(ByteSpan data);

/// True when the bytes start with a P5/P6 magic.
bool SniffPpm(ByteSpan data);

}  // namespace dlb::ppm
