#include "codec/huffman.h"

namespace dlb::jpeg {

namespace {

/// Generate the canonical (code, length) list in symbol order per Annex C.
struct CodeList {
  std::vector<uint16_t> codes;
  std::vector<uint8_t> lengths;
};

Result<CodeList> GenerateCodes(const HuffmanSpec& spec) {
  CodeList out;
  size_t total = 0;
  for (int l = 0; l < 16; ++l) total += spec.bits[l];
  if (total != spec.vals.size()) {
    return CorruptData("huffman spec: BITS sum != number of values");
  }
  if (total == 0 || total > 256) {
    return CorruptData("huffman spec: invalid symbol count");
  }
  out.codes.reserve(total);
  out.lengths.reserve(total);
  uint32_t code = 0;
  for (int length = 1; length <= 16; ++length) {
    for (int i = 0; i < spec.bits[length - 1]; ++i) {
      if (code >= (1u << length)) {
        return CorruptData("huffman spec: code space overflow");
      }
      out.codes.push_back(static_cast<uint16_t>(code));
      out.lengths.push_back(static_cast<uint8_t>(length));
      ++code;
    }
    code <<= 1;
  }
  return out;
}

}  // namespace

Result<HuffmanEncoder> HuffmanEncoder::Build(const HuffmanSpec& spec) {
  auto codes = GenerateCodes(spec);
  if (!codes.ok()) return codes.status();
  HuffmanEncoder enc;
  for (size_t i = 0; i < spec.vals.size(); ++i) {
    Entry& e = enc.entries_[spec.vals[i]];
    if (e.length != 0) return CorruptData("huffman spec: duplicate symbol");
    e.code = codes.value().codes[i];
    e.length = codes.value().lengths[i];
  }
  return enc;
}

Result<HuffmanDecoder> HuffmanDecoder::Build(const HuffmanSpec& spec) {
  auto codes = GenerateCodes(spec);
  if (!codes.ok()) return codes.status();
  HuffmanDecoder dec;
  dec.vals_ = spec.vals;

  // MINCODE/MAXCODE/VALPTR per code length (T.81 F.2.2.3).
  size_t k = 0;
  for (int length = 1; length <= 16; ++length) {
    if (spec.bits[length - 1] == 0) {
      dec.max_code_[length] = -1;
      continue;
    }
    dec.val_ptr_[length] = static_cast<int32_t>(k);
    dec.min_code_[length] = codes.value().codes[k];
    k += spec.bits[length - 1];
    dec.max_code_[length] = codes.value().codes[k - 1];
  }

  // Fast table: expand every code of length <= 8 across its suffix bits.
  for (size_t i = 0; i < spec.vals.size(); ++i) {
    const int length = codes.value().lengths[i];
    if (length > 8) continue;
    const uint32_t code = codes.value().codes[i];
    const int fill = 8 - length;
    const uint32_t base = code << fill;
    for (uint32_t suffix = 0; suffix < (1u << fill); ++suffix) {
      FastEntry& fe = dec.fast_[base | suffix];
      fe.symbol = spec.vals[i];
      fe.length = static_cast<uint8_t>(length);
    }
  }
  return dec;
}

int HuffmanDecoder::Decode(BitReader& br) const {
  const int peek = br.Peek8();
  if (peek < 0) {
    // Fewer than 8 bits remain before a marker / end of data: the tail of
    // the stream decodes bit-by-bit (at most a handful of symbols).
    return DecodeReference(br);
  }
  const FastEntry fe = fast_[peek];
  if (fe.symbol >= 0) {
    br.Drop(fe.length);
    return fe.symbol;
  }
  // Code longer than 8 bits: consume the peeked prefix and extend it. A
  // canonical table guarantees no code of length <= 8 matches a longer
  // code's prefix, so starting the MINCODE walk at length 9 is exact.
  int code = br.Get(8);
  for (int length = 9; length <= 16; ++length) {
    const int bit = br.GetBit();
    if (bit < 0) return -1;
    code = (code << 1) | bit;
    if (max_code_[length] >= 0 && code <= max_code_[length]) {
      const int index = val_ptr_[length] + (code - min_code_[length]);
      if (index < 0 || index >= static_cast<int>(vals_.size())) return -1;
      return vals_[index];
    }
  }
  return -1;  // no code longer than 16 bits exists
}

int HuffmanDecoder::DecodeReference(BitReader& br) const {
  int code = br.GetBit();
  if (code < 0) return -1;
  for (int length = 1; length <= 16; ++length) {
    if (max_code_[length] >= 0 && code <= max_code_[length]) {
      const int index = val_ptr_[length] + (code - min_code_[length]);
      if (index < 0 || index >= static_cast<int>(vals_.size())) return -1;
      return vals_[index];
    }
    const int bit = br.GetBit();
    if (bit < 0) return -1;
    code = (code << 1) | bit;
  }
  return -1;  // no code longer than 16 bits exists
}

int MagnitudeCategory(int value) {
  int mag = value < 0 ? -value : value;
  int ssss = 0;
  while (mag) {
    mag >>= 1;
    ++ssss;
  }
  return ssss;
}

uint32_t MagnitudeBits(int value, int ssss) {
  if (value >= 0) return static_cast<uint32_t>(value);
  // Negative values are stored as value - 1 in ssss bits (one's complement).
  return static_cast<uint32_t>(value + (1 << ssss) - 1);
}

int ExtendValue(int bits, int ssss) {
  if (ssss == 0) return 0;
  // T.81 EXTEND: if the leading bit is 0 the value is negative.
  if (bits < (1 << (ssss - 1))) return bits - (1 << ssss) + 1;
  return bits;
}

}  // namespace dlb::jpeg
