#include "codec/dct.h"

#include <cmath>

#include "codec/jpeg_common.h"

namespace dlb::jpeg {

namespace {

// Precomputed DCT-II basis: basis[u][x] = C(u)/2 * cos((2x+1)u*pi/16).
struct Basis {
  float b[8][8];
  Basis() {
    const double pi = 3.14159265358979323846;
    for (int u = 0; u < 8; ++u) {
      const double cu = (u == 0) ? std::sqrt(0.5) : 1.0;
      for (int x = 0; x < 8; ++x) {
        b[u][x] = static_cast<float>(
            0.5 * cu * std::cos((2.0 * x + 1.0) * u * pi / 16.0));
      }
    }
  }
};

const Basis& GetBasis() {
  static const Basis basis;
  return basis;
}

}  // namespace

void ForwardDct8x8(const float in[64], float out[64]) {
  const Basis& B = GetBasis();
  float tmp[64];
  // Rows: tmp[y][u] = sum_x in[y][x] * b[u][x]
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      float acc = 0.0f;
      for (int x = 0; x < 8; ++x) acc += in[y * 8 + x] * B.b[u][x];
      tmp[y * 8 + u] = acc;
    }
  }
  // Columns: out[v][u] = sum_y tmp[y][u] * b[v][y]
  for (int v = 0; v < 8; ++v) {
    for (int u = 0; u < 8; ++u) {
      float acc = 0.0f;
      for (int y = 0; y < 8; ++y) acc += tmp[y * 8 + u] * B.b[v][y];
      out[v * 8 + u] = acc;
    }
  }
}

void InverseDct8x8(const float coeffs[64], uint8_t out[64]) {
  const Basis& B = GetBasis();
  float tmp[64];
  // Columns first: tmp[y][u] = sum_v coeffs[v][u] * b[v][y]
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      float acc = 0.0f;
      for (int v = 0; v < 8; ++v) acc += coeffs[v * 8 + u] * B.b[v][y];
      tmp[y * 8 + u] = acc;
    }
  }
  // Rows: sample[y][x] = sum_u tmp[y][u] * b[u][x]
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      float acc = 0.0f;
      for (int u = 0; u < 8; ++u) acc += tmp[y * 8 + u] * B.b[u][x];
      const int v = static_cast<int>(std::lrintf(acc + 128.0f));
      out[y * 8 + x] = static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
    }
  }
}

void DequantizeZigZag(const int16_t zz[64], const uint16_t quant[64],
                      float out[64]) {
  for (int i = 0; i < 64; ++i) {
    const int natural = kZigZag[i];
    out[natural] = static_cast<float>(zz[i]) * static_cast<float>(quant[natural]);
  }
}

}  // namespace dlb::jpeg
