#include "codec/dct.h"

#include <cmath>

#include "codec/jpeg_common.h"

namespace dlb::jpeg {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Precomputed DCT-II basis: basis[u][x] = C(u)/2 * cos((2x+1)u*pi/16).
struct Basis {
  float b[8][8];
  Basis() {
    for (int u = 0; u < 8; ++u) {
      const double cu = (u == 0) ? std::sqrt(0.5) : 1.0;
      for (int x = 0; x < 8; ++x) {
        b[u][x] = static_cast<float>(
            0.5 * cu * std::cos((2.0 * x + 1.0) * u * kPi / 16.0));
      }
    }
  }
};

const Basis& GetBasis() {
  static const Basis basis;
  return basis;
}

// AAN butterfly constants.
constexpr float kA1414 = 1.414213562f;  // sqrt(2)
constexpr float kA1847 = 1.847759065f;
constexpr float kA1082 = 1.082392200f;
constexpr float kA2613 = 2.613125930f;
constexpr float kA0707 = 0.707106781f;  // 1/sqrt(2)
constexpr float kA0382 = 0.382683433f;
constexpr float kA0541 = 0.541196100f;
constexpr float kA1306 = 1.306562965f;

// Interface scale tables: the AAN flowgraph computes the transform up to a
// per-coefficient factor of 8*s[r]*s[c] (s[0]=1, s[k]=cos(k*pi/16)*sqrt(2)),
// which scaled implementations fold into the (de)quantisation tables. This
// module's contract is the unscaled transform, so apply the factors here.
struct AanScales {
  float inverse[64];  // multiply coefficients before the inverse flowgraph
  float forward[64];  // multiply outputs after the forward flowgraph
  AanScales() {
    double s[8];
    s[0] = 1.0;
    for (int k = 1; k < 8; ++k) s[k] = std::cos(k * kPi / 16.0) * std::sqrt(2.0);
    for (int i = 0; i < 64; ++i) {
      const double f = 8.0 * s[i >> 3] * s[i & 7];
      forward[i] = static_cast<float>(1.0 / f);
      inverse[i] = static_cast<float>(s[i >> 3] * s[i & 7] / 8.0);
    }
  }
};

const AanScales& GetScales() {
  static const AanScales scales;
  return scales;
}

// One 8-point inverse AAN butterfly over p[0], p[s], ..., p[7s].
template <int S>
inline void InverseButterfly(float* p) {
  const float tmp10 = p[0 * S] + p[4 * S];
  const float tmp11 = p[0 * S] - p[4 * S];
  const float tmp13 = p[2 * S] + p[6 * S];
  const float tmp12 = (p[2 * S] - p[6 * S]) * kA1414 - tmp13;
  const float e0 = tmp10 + tmp13;
  const float e3 = tmp10 - tmp13;
  const float e1 = tmp11 + tmp12;
  const float e2 = tmp11 - tmp12;
  const float z13 = p[5 * S] + p[3 * S];
  const float z10 = p[5 * S] - p[3 * S];
  const float z11 = p[1 * S] + p[7 * S];
  const float z12 = p[1 * S] - p[7 * S];
  const float o7 = z11 + z13;
  const float t11 = (z11 - z13) * kA1414;
  const float z5 = (z10 + z12) * kA1847;
  const float t10 = kA1082 * z12 - z5;
  const float t12 = z5 - kA2613 * z10;
  const float o6 = t12 - o7;
  const float o5 = t11 - o6;
  const float o4 = t10 + o5;
  p[0 * S] = e0 + o7;
  p[7 * S] = e0 - o7;
  p[1 * S] = e1 + o6;
  p[6 * S] = e1 - o6;
  p[2 * S] = e2 + o5;
  p[5 * S] = e2 - o5;
  p[4 * S] = e3 + o4;
  p[3 * S] = e3 - o4;
}

// One 8-point forward AAN butterfly over p[0], p[s], ..., p[7s].
template <int S>
inline void ForwardButterfly(float* p) {
  const float tmp0 = p[0 * S] + p[7 * S];
  const float tmp7 = p[0 * S] - p[7 * S];
  const float tmp1 = p[1 * S] + p[6 * S];
  const float tmp6 = p[1 * S] - p[6 * S];
  const float tmp2 = p[2 * S] + p[5 * S];
  const float tmp5 = p[2 * S] - p[5 * S];
  const float tmp3 = p[3 * S] + p[4 * S];
  const float tmp4 = p[3 * S] - p[4 * S];
  // Even part.
  float tmp10 = tmp0 + tmp3;
  const float tmp13 = tmp0 - tmp3;
  float tmp11 = tmp1 + tmp2;
  float tmp12 = tmp1 - tmp2;
  p[0 * S] = tmp10 + tmp11;
  p[4 * S] = tmp10 - tmp11;
  const float z1 = (tmp12 + tmp13) * kA0707;
  p[2 * S] = tmp13 + z1;
  p[6 * S] = tmp13 - z1;
  // Odd part.
  tmp10 = tmp4 + tmp5;
  tmp11 = tmp5 + tmp6;
  tmp12 = tmp6 + tmp7;
  const float z5 = (tmp10 - tmp12) * kA0382;
  const float z2 = kA0541 * tmp10 + z5;
  const float z4 = kA1306 * tmp12 + z5;
  const float z3 = tmp11 * kA0707;
  const float z11 = tmp7 + z3;
  const float z13 = tmp7 - z3;
  p[5 * S] = z13 + z2;
  p[3 * S] = z13 - z2;
  p[1 * S] = z11 + z4;
  p[7 * S] = z11 - z4;
}

}  // namespace

void ForwardDct8x8(const float in[64], float out[64]) {
  const AanScales& sc = GetScales();
  for (int i = 0; i < 64; ++i) out[i] = in[i];
  for (int y = 0; y < 8; ++y) ForwardButterfly<1>(out + y * 8);
  for (int x = 0; x < 8; ++x) ForwardButterfly<8>(out + x);
  for (int i = 0; i < 64; ++i) out[i] *= sc.forward[i];
}

void InverseDct8x8(const float coeffs[64], uint8_t out[64]) {
  const AanScales& sc = GetScales();
  float ws[64];
  for (int i = 0; i < 64; ++i) ws[i] = coeffs[i] * sc.inverse[i];
  for (int x = 0; x < 8; ++x) InverseButterfly<8>(ws + x);
  for (int y = 0; y < 8; ++y) InverseButterfly<1>(ws + y * 8);
  for (int i = 0; i < 64; ++i) {
    const int v = static_cast<int>(std::lrintf(ws[i] + 128.0f));
    out[i] = static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
  }
}

void ForwardDct8x8Basis(const float in[64], float out[64]) {
  const Basis& B = GetBasis();
  float tmp[64];
  // Rows: tmp[y][u] = sum_x in[y][x] * b[u][x]
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      float acc = 0.0f;
      for (int x = 0; x < 8; ++x) acc += in[y * 8 + x] * B.b[u][x];
      tmp[y * 8 + u] = acc;
    }
  }
  // Columns: out[v][u] = sum_y tmp[y][u] * b[v][y]
  for (int v = 0; v < 8; ++v) {
    for (int u = 0; u < 8; ++u) {
      float acc = 0.0f;
      for (int y = 0; y < 8; ++y) acc += tmp[y * 8 + u] * B.b[v][y];
      out[v * 8 + u] = acc;
    }
  }
}

void InverseDct8x8Basis(const float coeffs[64], uint8_t out[64]) {
  const Basis& B = GetBasis();
  float tmp[64];
  // Columns first: tmp[y][u] = sum_v coeffs[v][u] * b[v][y]
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      float acc = 0.0f;
      for (int v = 0; v < 8; ++v) acc += coeffs[v * 8 + u] * B.b[v][y];
      tmp[y * 8 + u] = acc;
    }
  }
  // Rows: sample[y][x] = sum_u tmp[y][u] * b[u][x]
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      float acc = 0.0f;
      for (int u = 0; u < 8; ++u) acc += tmp[y * 8 + u] * B.b[u][x];
      const int v = static_cast<int>(std::lrintf(acc + 128.0f));
      out[y * 8 + x] = static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
    }
  }
}

void InverseDctScaledBasis(const float coeffs[64], int n, uint8_t* out) {
  // bn[u][x] = C(u)/2 * cos((2x+1)u*pi/(2n)) — the n-point DCT-III basis
  // with the 8-point coefficient weights, so amplitudes (and the DC mean)
  // match the full transform.
  float bn[8][8];
  for (int u = 0; u < n; ++u) {
    const double cu = (u == 0) ? std::sqrt(0.5) : 1.0;
    for (int x = 0; x < n; ++x) {
      bn[u][x] = static_cast<float>(
          0.5 * cu * std::cos((2.0 * x + 1.0) * u * kPi / (2.0 * n)));
    }
  }
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      float acc = 0.0f;
      for (int v = 0; v < n; ++v) {
        for (int u = 0; u < n; ++u) {
          acc += coeffs[v * 8 + u] * bn[v][y] * bn[u][x];
        }
      }
      const int px = static_cast<int>(std::lrintf(acc + 128.0f));
      out[y * n + x] = static_cast<uint8_t>(px < 0 ? 0 : (px > 255 ? 255 : px));
    }
  }
}

void DequantizeZigZag(const int16_t zz[64], const uint16_t quant[64],
                      float out[64]) {
  for (int i = 0; i < 64; ++i) {
    const int natural = kZigZag[i];
    out[natural] = static_cast<float>(zz[i]) * static_cast<float>(quant[natural]);
  }
}

}  // namespace dlb::jpeg
