#include "codec/jpeg_encoder.h"

#include <cmath>
#include <cstring>

#include "codec/bit_io.h"
#include "codec/dct.h"
#include "codec/color.h"
#include "codec/huffman.h"

namespace dlb::jpeg {

namespace {

void EmitMarker(Bytes* out, uint8_t marker) {
  out->push_back(0xFF);
  out->push_back(marker);
}

void EmitSegment(Bytes* out, uint8_t marker, ByteSpan payload) {
  EmitMarker(out, marker);
  const uint16_t len = static_cast<uint16_t>(payload.size() + 2);
  out->push_back(static_cast<uint8_t>(len >> 8));
  out->push_back(static_cast<uint8_t>(len & 0xFF));
  out->insert(out->end(), payload.begin(), payload.end());
}

void EmitApp0Jfif(Bytes* out) {
  const uint8_t payload[] = {'J', 'F', 'I', 'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0};
  EmitSegment(out, kAPP0, ByteSpan(payload, sizeof(payload)));
}

void EmitDqt(Bytes* out, int table_id, const std::array<uint16_t, 64>& natural) {
  Bytes payload;
  payload.push_back(static_cast<uint8_t>(table_id));  // Pq=0 (8-bit), Tq=id
  for (int i = 0; i < 64; ++i) {
    payload.push_back(static_cast<uint8_t>(natural[kZigZag[i]]));
  }
  EmitSegment(out, kDQT, payload);
}

void EmitDht(Bytes* out, int table_class, int table_id,
             const HuffmanSpec& spec) {
  Bytes payload;
  payload.push_back(static_cast<uint8_t>((table_class << 4) | table_id));
  payload.insert(payload.end(), spec.bits.begin(), spec.bits.end());
  payload.insert(payload.end(), spec.vals.begin(), spec.vals.end());
  EmitSegment(out, kDHT, payload);
}

/// Extract one 8x8 level-shifted block from a plane, replicating edges.
void ExtractBlock(const std::vector<uint8_t>& plane, int pw, int ph, int bx,
                  int by, float out[64]) {
  for (int y = 0; y < 8; ++y) {
    int sy = by * 8 + y;
    if (sy >= ph) sy = ph - 1;
    for (int x = 0; x < 8; ++x) {
      int sx = bx * 8 + x;
      if (sx >= pw) sx = pw - 1;
      out[y * 8 + x] =
          static_cast<float>(plane[static_cast<size_t>(sy) * pw + sx]) - 128.0f;
    }
  }
}

/// Forward DCT + quantise + zig-zag one block.
void TransformBlock(const float samples[64],
                    const std::array<uint16_t, 64>& quant, int16_t zz[64]) {
  float coeffs[64];
  ForwardDct8x8(samples, coeffs);
  for (int i = 0; i < 64; ++i) {
    const int natural = kZigZag[i];
    const float q = coeffs[natural] / static_cast<float>(quant[natural]);
    zz[i] = static_cast<int16_t>(std::lrintf(q));
  }
}

/// Entropy-encode one zig-zag block (T.81 F.1.2).
void EncodeBlock(BitWriter& bw, const int16_t zz[64], int* dc_pred,
                 const HuffmanEncoder& dc_tbl, const HuffmanEncoder& ac_tbl) {
  // DC difference.
  const int diff = zz[0] - *dc_pred;
  *dc_pred = zz[0];
  const int ssss = MagnitudeCategory(diff);
  dc_tbl.Encode(bw, static_cast<uint8_t>(ssss));
  if (ssss) bw.Put(MagnitudeBits(diff, ssss), ssss);

  // AC run-lengths.
  int run = 0;
  for (int k = 1; k < 64; ++k) {
    if (zz[k] == 0) {
      ++run;
      continue;
    }
    while (run > 15) {
      ac_tbl.Encode(bw, 0xF0);  // ZRL: sixteen zeros
      run -= 16;
    }
    const int s = MagnitudeCategory(zz[k]);
    ac_tbl.Encode(bw, static_cast<uint8_t>((run << 4) | s));
    bw.Put(MagnitudeBits(zz[k], s), s);
    run = 0;
  }
  if (run > 0) ac_tbl.Encode(bw, 0x00);  // EOB
}

}  // namespace

Result<Bytes> Encode(const Image& img, const EncodeOptions& opts) {
  if (img.Empty()) return InvalidArgument("encode of empty image");
  if (img.Channels() != 1 && img.Channels() != 3) {
    return InvalidArgument("encoder supports 1 or 3 channels");
  }
  if (img.Width() > 65535 || img.Height() > 65535) {
    return InvalidArgument("image too large for JPEG");
  }
  const bool gray = img.Channels() == 1;
  // Luma sampling factors per subsampling mode (chroma is always 1x1).
  int hs = 1, vs = 1;
  if (!gray) {
    switch (opts.subsampling) {
      case Subsampling::k444: break;
      case Subsampling::k422: hs = 2; break;
      case Subsampling::k420: hs = 2; vs = 2; break;
    }
  }

  const auto luma_q = ScaleQuantTable(kStdLumaQuant, opts.quality);
  const auto chroma_q = ScaleQuantTable(kStdChromaQuant, opts.quality);

  auto dc_luma = HuffmanEncoder::Build(StdLumaDc());
  auto ac_luma = HuffmanEncoder::Build(StdLumaAc());
  auto dc_chroma = HuffmanEncoder::Build(StdChromaDc());
  auto ac_chroma = HuffmanEncoder::Build(StdChromaAc());
  if (!dc_luma.ok()) return dc_luma.status();
  if (!ac_luma.ok()) return ac_luma.status();
  if (!dc_chroma.ok()) return dc_chroma.status();
  if (!ac_chroma.ok()) return ac_chroma.status();

  // Colour planes.
  std::vector<uint8_t> y_plane, cb_plane, cr_plane;
  int cw = img.Width(), chh = img.Height();
  if (gray) {
    y_plane.assign(img.Data(), img.Data() + img.SizeBytes());
  } else {
    RgbToYcbcr(img, &y_plane, &cb_plane, &cr_plane);
    if (hs == 2 && vs == 2) {
      cb_plane = Downsample2x2(cb_plane, img.Width(), img.Height());
      cr_plane = Downsample2x2(cr_plane, img.Width(), img.Height());
    } else if (hs == 2) {
      cb_plane = Downsample2x1(cb_plane, img.Width(), img.Height());
      cr_plane = Downsample2x1(cr_plane, img.Width(), img.Height());
    }
    cw = (img.Width() + hs - 1) / hs;
    chh = (img.Height() + vs - 1) / vs;
  }

  // Headers.
  Bytes out;
  EmitMarker(&out, kSOI);
  EmitApp0Jfif(&out);
  EmitDqt(&out, 0, luma_q);
  if (!gray) EmitDqt(&out, 1, chroma_q);

  {
    Bytes sof;
    sof.push_back(8);  // precision
    sof.push_back(static_cast<uint8_t>(img.Height() >> 8));
    sof.push_back(static_cast<uint8_t>(img.Height() & 0xFF));
    sof.push_back(static_cast<uint8_t>(img.Width() >> 8));
    sof.push_back(static_cast<uint8_t>(img.Width() & 0xFF));
    sof.push_back(gray ? 1 : 3);
    sof.push_back(1);  // component id Y
    sof.push_back(static_cast<uint8_t>((hs << 4) | vs));
    sof.push_back(0);  // quant table 0
    if (!gray) {
      sof.push_back(2);
      sof.push_back(0x11);
      sof.push_back(1);
      sof.push_back(3);
      sof.push_back(0x11);
      sof.push_back(1);
    }
    EmitSegment(&out, kSOF0, sof);
  }

  EmitDht(&out, 0, 0, StdLumaDc());
  EmitDht(&out, 1, 0, StdLumaAc());
  if (!gray) {
    EmitDht(&out, 0, 1, StdChromaDc());
    EmitDht(&out, 1, 1, StdChromaAc());
  }

  if (opts.restart_interval > 0) {
    Bytes dri;
    dri.push_back(static_cast<uint8_t>(opts.restart_interval >> 8));
    dri.push_back(static_cast<uint8_t>(opts.restart_interval & 0xFF));
    EmitSegment(&out, kDRI, dri);
  }

  {
    Bytes sos;
    sos.push_back(gray ? 1 : 3);
    sos.push_back(1);
    sos.push_back(0x00);  // DC 0 / AC 0
    if (!gray) {
      sos.push_back(2);
      sos.push_back(0x11);
      sos.push_back(3);
      sos.push_back(0x11);
    }
    sos.push_back(0);    // spectral start
    sos.push_back(63);   // spectral end
    sos.push_back(0);    // successive approximation
    EmitSegment(&out, kSOS, sos);
  }

  // Entropy-coded scan.
  const int mcu_w = 8 * hs;
  const int mcu_h = 8 * vs;
  const int mcus_x = (img.Width() + mcu_w - 1) / mcu_w;
  const int mcus_y = (img.Height() + mcu_h - 1) / mcu_h;

  BitWriter bw(&out);
  int dc_y = 0, dc_cb = 0, dc_cr = 0;
  int mcu_count = 0;
  int rst_index = 0;
  float samples[64];
  int16_t zz[64];

  for (int my = 0; my < mcus_y; ++my) {
    for (int mx = 0; mx < mcus_x; ++mx) {
      if (opts.restart_interval > 0 && mcu_count > 0 &&
          mcu_count % opts.restart_interval == 0) {
        bw.Flush();
        EmitMarker(&out, static_cast<uint8_t>(kRST0 + (rst_index & 7)));
        ++rst_index;
        dc_y = dc_cb = dc_cr = 0;
        bw = BitWriter(&out);
      }
      // Luma blocks: vs rows x hs columns per MCU (interleaved order).
      for (int by = 0; by < vs; ++by) {
        for (int bx = 0; bx < hs; ++bx) {
          ExtractBlock(y_plane, img.Width(), img.Height(), mx * hs + bx,
                       my * vs + by, samples);
          TransformBlock(samples, luma_q, zz);
          EncodeBlock(bw, zz, &dc_y, dc_luma.value(), ac_luma.value());
        }
      }
      if (!gray) {
        const int cpw = cw;
        const int cph = chh;
        ExtractBlock(cb_plane, cpw, cph, mx, my, samples);
        TransformBlock(samples, chroma_q, zz);
        EncodeBlock(bw, zz, &dc_cb, dc_chroma.value(), ac_chroma.value());
        ExtractBlock(cr_plane, cpw, cph, mx, my, samples);
        TransformBlock(samples, chroma_q, zz);
        EncodeBlock(bw, zz, &dc_cr, dc_chroma.value(), ac_chroma.value());
      }
      ++mcu_count;
    }
  }
  bw.Flush();
  EmitMarker(&out, kEOI);
  return out;
}

}  // namespace dlb::jpeg
