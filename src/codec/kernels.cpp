#include "codec/kernels.h"

#include <cmath>
#include <cstring>

#include "codec/jpeg_common.h"
#include "common/simd.h"

#if defined(DLB_SIMD_SSE2) || defined(DLB_SIMD_AVX2)
#include <immintrin.h>
#endif
#if defined(DLB_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace dlb::jpeg::kernels {

namespace {

// AAN butterfly multipliers at 2^13. The transform works on coefficients
// pre-scaled by the folded dequant table (2^kDqBits), so one block costs
// 2*8*5 = 80 multiplies instead of the 1024 of the basis matmul.
constexpr int kConstBits = 13;
constexpr int32_t kF1414 = 11585;  // sqrt(2)      * 2^13
constexpr int32_t kF1847 = 15137;  // 1.847759065  * 2^13
constexpr int32_t kF1082 = 8867;   // 1.082392200  * 2^13
constexpr int32_t kF2613 = 21407;  // 2.613125930  * 2^13

// Overflow guards (not accuracy bounds): the per-pass worst-case growth of
// the flowgraph is < 22x, so clamping scatter output to +/-2^23 and pass-1
// output to +/-2^25 keeps every intermediate below 2^30 — no int32 overflow,
// UBSan-clean. Valid JPEG data stays 2 orders of magnitude below both
// clamps; only adversarial coefficient/quant combinations ever touch them,
// and both arms clamp identically.
constexpr int32_t kInClamp = 1 << 23;
constexpr int32_t kMidClamp = 1 << 25;

// Final descale: values carry pixel * 2^(kDqBits + 3).
constexpr int kOutShift = kDqBits + 3;
constexpr int32_t kOutRound = 1 << (kOutShift - 1);

inline int32_t Mul(int32_t v, int32_t c) {
  return static_cast<int32_t>((static_cast<int64_t>(v) * c) >> kConstBits);
}

inline int32_t Clamp32(int64_t v, int32_t limit) {
  if (v < -limit) return -limit;
  if (v > limit) return limit;
  return static_cast<int32_t>(v);
}

inline uint8_t ClampU8(int v) {
  return static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

inline uint8_t DescaleToU8(int32_t v) {
  return ClampU8(((v + kOutRound) >> kOutShift) + 128);
}

// Dequantise zz into a natural-order workspace. Returns a bitmask of
// columns that have at least one nonzero AC row (bit c = column c).
inline uint32_t Scatter(const int16_t zz[64], const IdctTable& t,
                        int32_t ws[64]) {
  std::memset(ws, 0, 64 * sizeof(int32_t));
  uint32_t col_ac = 0;
  for (int i = 0; i < 64; ++i) {
    if (zz[i] == 0) continue;
    const int nat = kZigZag[i];
    ws[nat] = Clamp32(static_cast<int64_t>(zz[i]) * t.m[i], kInClamp);
    if (nat >= 8) col_ac |= 1u << (nat & 7);
  }
  return col_ac;
}

inline void FillDcOnly(const int16_t zz[64], const IdctTable& t, uint8_t* out,
                       int stride) {
  // Matches the general path exactly: with only ws[0] nonzero both butterfly
  // passes degenerate to pass-through, so every sample descales ws[0].
  const int32_t dc =
      Clamp32(static_cast<int64_t>(zz[0]) * t.m[0], kInClamp);
  const uint8_t v = DescaleToU8(dc);
  for (int y = 0; y < 8; ++y) std::memset(out + y * stride, v, 8);
}

// Butterfly constants for the scaled (explicit-cosine) passes, at 2^13.
constexpr int32_t kC0707 = 5793;  // cos(pi/4)   * 2^13
constexpr int32_t kC0924 = 7568;  // cos(pi/8)   * 2^13
constexpr int32_t kC0383 = 3135;  // cos(3*pi/8) * 2^13

// Dequantise the n x n low-frequency window of zz into a natural-order
// n x n workspace. Returns true when any in-window AC is nonzero.
inline bool ScatterScaled(const int16_t zz[64], const IdctTable& t, int n,
                          int32_t* ws) {
  std::memset(ws, 0, static_cast<size_t>(n) * n * sizeof(int32_t));
  bool has_ac = false;
  // Every natural position with row,col < n sits on an anti-diagonal of sum
  // <= 2n-2, and zigzag order exhausts those diagonals within the first
  // n*(2n-1) indices — everything beyond is outside the window by
  // construction, so the scan stops there (28 of 64 for n=4, 6 for n=2).
  const int limit = n * (2 * n - 1);
  for (int i = 0; i < limit; ++i) {
    if (zz[i] == 0) continue;
    const int nat = kZigZag[i];
    const int r = nat >> 3, c = nat & 7;
    if (r >= n || c >= n) continue;  // frequency outside the window: dropped
    ws[r * n + c] = Clamp32(static_cast<int64_t>(zz[i]) * t.m[i], kInClamp);
    if (nat != 0) has_ac = true;
  }
  return has_ac;
}

inline void FillDcOnlyScaled(const int16_t zz[64], const IdctTable& t, int n,
                             uint8_t* out, int stride) {
  const int32_t dc = Clamp32(static_cast<int64_t>(zz[0]) * t.m[0], kInClamp);
  const uint8_t v = DescaleToU8(dc);
  for (int y = 0; y < n; ++y) {
    std::memset(out + static_cast<size_t>(y) * stride, v,
                static_cast<size_t>(n));
  }
}

// 4-point DCT-III butterfly. The folded table carries s[0]=1, s[u>0]=sqrt(2)
// so two passes land on the same 8x amplitude (and descale) as the 8x8 path.
inline void Idct4Pass(const int32_t w[4], int32_t out[4]) {
  const int32_t r2 = Mul(w[2], kC0707);
  const int32_t e0 = w[0] + r2;
  const int32_t e1 = w[0] - r2;
  const int32_t o0 = Mul(w[1], kC0924) + Mul(w[3], kC0383);
  const int32_t o1 = Mul(w[1], kC0383) - Mul(w[3], kC0924);
  out[0] = e0 + o0;
  out[1] = e1 + o1;
  out[2] = e1 - o1;
  out[3] = e0 - o0;
}

}  // namespace

IdctTable BuildIdctTable(const uint16_t quant_natural[64]) {
  // AAN output scale factors: s[0] = 1, s[k] = cos(k*pi/16) * sqrt(2).
  double s[8];
  s[0] = 1.0;
  for (int k = 1; k < 8; ++k) {
    s[k] = std::cos(k * 3.14159265358979323846 / 16.0) * 1.41421356237309505;
  }
  IdctTable t;
  for (int i = 0; i < 64; ++i) {
    const int nat = kZigZag[i];
    const int r = nat >> 3, c = nat & 7;
    t.m[i] = static_cast<int32_t>(std::lround(
        quant_natural[nat] * s[r] * s[c] * (1 << kDqBits)));
  }
  return t;
}

IdctTable BuildIdctTableScaled(const uint16_t quant_natural[64], int n) {
  if (n >= 8) return BuildIdctTable(quant_natural);
  // The explicit-cosine butterflies take their scale factors from the table:
  // s[0] = 1, s[u>0] = sqrt(2) makes each pass contribute exactly
  // cos((2x+1)u*pi/(2n)) per coefficient, which after two passes and the
  // shared 2^(kDqBits+3) descale reproduces the full transform's weights
  // (C(0)=1/sqrt(2)) — the block mean is scale-invariant.
  IdctTable t;
  for (int i = 0; i < 64; ++i) {
    const int nat = kZigZag[i];
    const int r = nat >> 3, c = nat & 7;
    if (r >= n || c >= n) {
      t.m[i] = 0;
      continue;
    }
    const double sr = r == 0 ? 1.0 : 1.41421356237309505;
    const double sc = c == 0 ? 1.0 : 1.41421356237309505;
    t.m[i] = static_cast<int32_t>(
        std::lround(quant_natural[nat] * sr * sc * (1 << kDqBits)));
  }
  return t;
}

bool BlockHasAc(const int16_t zz[64]) {
#if defined(DLB_SIMD_SSE2)
  const __m128i* p = reinterpret_cast<const __m128i*>(zz);
  // Mask off zz[0] (element 0 of the first vector).
  const __m128i dc_mask =
      _mm_set_epi16(-1, -1, -1, -1, -1, -1, -1, 0);
  __m128i acc = _mm_and_si128(_mm_loadu_si128(p), dc_mask);
  for (int i = 1; i < 8; ++i) acc = _mm_or_si128(acc, _mm_loadu_si128(p + i));
  const __m128i zero = _mm_setzero_si128();
  return _mm_movemask_epi8(_mm_cmpeq_epi8(acc, zero)) != 0xFFFF;
#elif defined(DLB_SIMD_NEON) && defined(__aarch64__)
  uint16x8_t acc = vreinterpretq_u16_s16(vld1q_s16(zz));
  const uint16x8_t dc_mask = {0, 0xFFFF, 0xFFFF, 0xFFFF,
                              0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF};
  acc = vandq_u16(acc, dc_mask);
  for (int i = 1; i < 8; ++i) {
    acc = vorrq_u16(acc, vreinterpretq_u16_s16(vld1q_s16(zz + i * 8)));
  }
  return vmaxvq_u16(acc) != 0;
#else
  uint32_t agg = static_cast<uint16_t>(zz[1]) | static_cast<uint16_t>(zz[2]) |
                 static_cast<uint16_t>(zz[3]);
  uint64_t wide = 0;
  for (int i = 1; i < 16; ++i) {
    uint64_t w;
    std::memcpy(&w, zz + i * 4, sizeof(w));
    wide |= w;
  }
  return (agg | wide) != 0;
#endif
}

void DequantIdct8x8Scalar(const int16_t zz[64], const IdctTable& t,
                          uint8_t* out, int stride) {
  if (!BlockHasAc(zz)) {
    FillDcOnly(zz, t, out, stride);
    return;
  }
  int32_t ws[64];
  const uint32_t col_ac = Scatter(zz, t, ws);

  // Pass 1: 1-D transform down each column.
  for (int c = 0; c < 8; ++c) {
    int32_t* col = ws + c;
    if (!(col_ac & (1u << c))) {
      // AC rows all zero: the butterfly passes the DC through unchanged.
      const int32_t dc = col[0];
      col[8] = col[16] = col[24] = col[32] = col[40] = col[48] = col[56] = dc;
      continue;
    }
    // Even part.
    const int32_t tmp10 = col[0] + col[32];
    const int32_t tmp11 = col[0] - col[32];
    const int32_t tmp13 = col[16] + col[48];
    const int32_t tmp12 = Mul(col[16] - col[48], kF1414) - tmp13;
    const int32_t e0 = tmp10 + tmp13;
    const int32_t e3 = tmp10 - tmp13;
    const int32_t e1 = tmp11 + tmp12;
    const int32_t e2 = tmp11 - tmp12;
    // Odd part.
    const int32_t z13 = col[40] + col[24];
    const int32_t z10 = col[40] - col[24];
    const int32_t z11 = col[8] + col[56];
    const int32_t z12 = col[8] - col[56];
    const int32_t o7 = z11 + z13;
    const int32_t t11 = Mul(z11 - z13, kF1414);
    const int32_t z5 = Mul(z10 + z12, kF1847);
    const int32_t t10 = Mul(z12, kF1082) - z5;
    const int32_t t12 = z5 - Mul(z10, kF2613);
    const int32_t o6 = t12 - o7;
    const int32_t o5 = t11 - o6;
    const int32_t o4 = t10 + o5;
    col[0] = Clamp32(static_cast<int64_t>(e0) + o7, kMidClamp);
    col[56] = Clamp32(static_cast<int64_t>(e0) - o7, kMidClamp);
    col[8] = Clamp32(static_cast<int64_t>(e1) + o6, kMidClamp);
    col[48] = Clamp32(static_cast<int64_t>(e1) - o6, kMidClamp);
    col[16] = Clamp32(static_cast<int64_t>(e2) + o5, kMidClamp);
    col[40] = Clamp32(static_cast<int64_t>(e2) - o5, kMidClamp);
    col[32] = Clamp32(static_cast<int64_t>(e3) + o4, kMidClamp);
    col[24] = Clamp32(static_cast<int64_t>(e3) - o4, kMidClamp);
  }

  // Pass 2: 1-D transform along each row, descale, level shift, clamp.
  for (int r = 0; r < 8; ++r) {
    const int32_t* row = ws + r * 8;
    uint8_t* o = out + r * stride;
    const int32_t tmp10 = row[0] + row[4];
    const int32_t tmp11 = row[0] - row[4];
    const int32_t tmp13 = row[2] + row[6];
    const int32_t tmp12 = Mul(row[2] - row[6], kF1414) - tmp13;
    const int32_t e0 = tmp10 + tmp13;
    const int32_t e3 = tmp10 - tmp13;
    const int32_t e1 = tmp11 + tmp12;
    const int32_t e2 = tmp11 - tmp12;
    const int32_t z13 = row[5] + row[3];
    const int32_t z10 = row[5] - row[3];
    const int32_t z11 = row[1] + row[7];
    const int32_t z12 = row[1] - row[7];
    const int32_t o7 = z11 + z13;
    const int32_t t11 = Mul(z11 - z13, kF1414);
    const int32_t z5 = Mul(z10 + z12, kF1847);
    const int32_t t10 = Mul(z12, kF1082) - z5;
    const int32_t t12 = z5 - Mul(z10, kF2613);
    const int32_t o6 = t12 - o7;
    const int32_t o5 = t11 - o6;
    const int32_t o4 = t10 + o5;
    o[0] = DescaleToU8(e0 + o7);
    o[7] = DescaleToU8(e0 - o7);
    o[1] = DescaleToU8(e1 + o6);
    o[6] = DescaleToU8(e1 - o6);
    o[2] = DescaleToU8(e2 + o5);
    o[5] = DescaleToU8(e2 - o5);
    o[4] = DescaleToU8(e3 + o4);
    o[3] = DescaleToU8(e3 - o4);
  }
}

void DequantIdct4x4Scalar(const int16_t zz[64], const IdctTable& t,
                          uint8_t* out, int stride) {
  int32_t ws[16];
  if (!ScatterScaled(zz, t, 4, ws)) {
    FillDcOnlyScaled(zz, t, 4, out, stride);
    return;
  }
  // Pass 1 down each column.
  for (int c = 0; c < 4; ++c) {
    const int32_t in[4] = {ws[c], ws[4 + c], ws[8 + c], ws[12 + c]};
    int32_t o[4];
    Idct4Pass(in, o);
    for (int y = 0; y < 4; ++y) {
      ws[y * 4 + c] = Clamp32(o[y], kMidClamp);
    }
  }
  // Pass 2 along each row, descale, level shift, clamp.
  for (int r = 0; r < 4; ++r) {
    int32_t o[4];
    Idct4Pass(ws + r * 4, o);
    uint8_t* dst = out + static_cast<size_t>(r) * stride;
    for (int x = 0; x < 4; ++x) dst[x] = DescaleToU8(o[x]);
  }
}

void DequantIdct2x2(const int16_t zz[64], const IdctTable& t, uint8_t* out,
                    int stride) {
  int32_t ws[4];
  if (!ScatterScaled(zz, t, 2, ws)) {
    FillDcOnlyScaled(zz, t, 2, out, stride);
    return;
  }
  // Columns then rows; each 2-point pass is one multiply.
  int32_t col[4];
  for (int c = 0; c < 2; ++c) {
    const int32_t r = Mul(ws[2 + c], kC0707);
    col[c] = Clamp32(static_cast<int64_t>(ws[c]) + r, kMidClamp);
    col[2 + c] = Clamp32(static_cast<int64_t>(ws[c]) - r, kMidClamp);
  }
  for (int y = 0; y < 2; ++y) {
    const int32_t r = Mul(col[y * 2 + 1], kC0707);
    out[y * stride + 0] = DescaleToU8(col[y * 2] + r);
    out[y * stride + 1] = DescaleToU8(col[y * 2] - r);
  }
}

void DequantIdct1x1(const int16_t zz[64], const IdctTable& t, uint8_t* out,
                    int /*stride*/) {
  const int32_t dc = Clamp32(static_cast<int64_t>(zz[0]) * t.m[0], kInClamp);
  out[0] = DescaleToU8(dc);
}

#if defined(DLB_SIMD_AVX2)

namespace {

// (v * c) >> 13 per 32-bit lane with the full 64-bit product, matching the
// scalar Mul() bit for bit.
inline __m256i Mul13(__m256i v, __m256i c) {
  __m256i even = _mm256_mul_epi32(v, c);
  __m256i odd = _mm256_mul_epi32(_mm256_srli_epi64(v, 32), c);
  even = _mm256_srli_epi64(even, kConstBits);
  odd = _mm256_slli_epi64(_mm256_srli_epi64(odd, kConstBits), 32);
  return _mm256_blend_epi32(even, odd, 0xAA);
}

inline __m256i ClampVec(__m256i v, int32_t limit) {
  v = _mm256_min_epi32(v, _mm256_set1_epi32(limit));
  return _mm256_max_epi32(v, _mm256_set1_epi32(-limit));
}

// One 8-point AAN butterfly across v[0..7], element-wise per lane. The
// arithmetic is the exact vector twin of the scalar passes: same multiplier
// constants, same truncating shifts, same evaluation order.
inline void Butterfly(__m256i v[8]) {
  const __m256i c1414 = _mm256_set1_epi32(kF1414);
  const __m256i c1847 = _mm256_set1_epi32(kF1847);
  const __m256i c1082 = _mm256_set1_epi32(kF1082);
  const __m256i c2613 = _mm256_set1_epi32(kF2613);
  const __m256i tmp10 = _mm256_add_epi32(v[0], v[4]);
  const __m256i tmp11 = _mm256_sub_epi32(v[0], v[4]);
  const __m256i tmp13 = _mm256_add_epi32(v[2], v[6]);
  const __m256i tmp12 =
      _mm256_sub_epi32(Mul13(_mm256_sub_epi32(v[2], v[6]), c1414), tmp13);
  const __m256i e0 = _mm256_add_epi32(tmp10, tmp13);
  const __m256i e3 = _mm256_sub_epi32(tmp10, tmp13);
  const __m256i e1 = _mm256_add_epi32(tmp11, tmp12);
  const __m256i e2 = _mm256_sub_epi32(tmp11, tmp12);
  const __m256i z13 = _mm256_add_epi32(v[5], v[3]);
  const __m256i z10 = _mm256_sub_epi32(v[5], v[3]);
  const __m256i z11 = _mm256_add_epi32(v[1], v[7]);
  const __m256i z12 = _mm256_sub_epi32(v[1], v[7]);
  const __m256i o7 = _mm256_add_epi32(z11, z13);
  const __m256i t11 = Mul13(_mm256_sub_epi32(z11, z13), c1414);
  const __m256i z5 = Mul13(_mm256_add_epi32(z10, z12), c1847);
  const __m256i t10 = _mm256_sub_epi32(Mul13(z12, c1082), z5);
  const __m256i t12 = _mm256_sub_epi32(z5, Mul13(z10, c2613));
  const __m256i o6 = _mm256_sub_epi32(t12, o7);
  const __m256i o5 = _mm256_sub_epi32(t11, o6);
  const __m256i o4 = _mm256_add_epi32(t10, o5);
  v[0] = _mm256_add_epi32(e0, o7);
  v[7] = _mm256_sub_epi32(e0, o7);
  v[1] = _mm256_add_epi32(e1, o6);
  v[6] = _mm256_sub_epi32(e1, o6);
  v[2] = _mm256_add_epi32(e2, o5);
  v[5] = _mm256_sub_epi32(e2, o5);
  v[4] = _mm256_add_epi32(e3, o4);
  v[3] = _mm256_sub_epi32(e3, o4);
}

inline void Transpose8x8(__m256i r[8]) {
  const __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
  const __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
  const __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
  const __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
  const __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
  const __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
  const __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
  const __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);
  const __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
  const __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
  const __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
  const __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
  const __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
  const __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
  const __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
  const __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
  r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
  r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
  r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
  r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
  r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
  r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
  r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
  r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

void DequantIdct8x8Avx2(const int16_t zz[64], const IdctTable& t, uint8_t* out,
                        int stride) {
  if (!BlockHasAc(zz)) {
    FillDcOnly(zz, t, out, stride);
    return;
  }
  alignas(32) int32_t ws[64];
  Scatter(zz, t, ws);  // column mask unused: the vector path runs all 8

  __m256i v[8];
  for (int r = 0; r < 8; ++r) {
    v[r] = _mm256_load_si256(reinterpret_cast<const __m256i*>(ws + r * 8));
  }
  // Pass 1 down the columns (lanes = columns), clamped like the scalar arm.
  Butterfly(v);
  for (int r = 0; r < 8; ++r) v[r] = ClampVec(v[r], kMidClamp);
  // Pass 2 along the rows: transpose so lanes = rows.
  Transpose8x8(v);
  Butterfly(v);
  const __m256i round = _mm256_set1_epi32(kOutRound);
  const __m256i bias = _mm256_set1_epi32(128);
  for (int k = 0; k < 8; ++k) {
    v[k] = _mm256_add_epi32(
        _mm256_srai_epi32(_mm256_add_epi32(v[k], round), kOutShift), bias);
  }
  Transpose8x8(v);  // back to vector = output row
  // Saturating pack to bytes (identical to the scalar 0..255 clamp).
  const __m256i p01 =
      _mm256_permute4x64_epi64(_mm256_packs_epi32(v[0], v[1]), 0xD8);
  const __m256i p23 =
      _mm256_permute4x64_epi64(_mm256_packs_epi32(v[2], v[3]), 0xD8);
  const __m256i p45 =
      _mm256_permute4x64_epi64(_mm256_packs_epi32(v[4], v[5]), 0xD8);
  const __m256i p67 =
      _mm256_permute4x64_epi64(_mm256_packs_epi32(v[6], v[7]), 0xD8);
  alignas(32) uint8_t bytes[64];
  _mm256_store_si256(
      reinterpret_cast<__m256i*>(bytes),
      _mm256_permute4x64_epi64(_mm256_packus_epi16(p01, p23), 0xD8));
  _mm256_store_si256(
      reinterpret_cast<__m256i*>(bytes + 32),
      _mm256_permute4x64_epi64(_mm256_packus_epi16(p45, p67), 0xD8));
  for (int r = 0; r < 8; ++r) std::memcpy(out + r * stride, bytes + r * 8, 8);
}

// (v * c) >> 13 per 32-bit lane over one 128-bit vector (lanes = the four
// columns/rows of a scaled block), matching the scalar Mul() bit for bit.
inline __m128i Mul13x4(__m128i v, __m128i c) {
  __m128i even = _mm_mul_epi32(v, c);
  __m128i odd = _mm_mul_epi32(_mm_srli_epi64(v, 32), c);
  even = _mm_srli_epi64(even, kConstBits);
  odd = _mm_slli_epi64(_mm_srli_epi64(odd, kConstBits), 32);
  return _mm_blend_epi32(even, odd, 0xA);
}

inline __m128i ClampVec4(__m128i v, int32_t limit) {
  v = _mm_min_epi32(v, _mm_set1_epi32(limit));
  return _mm_max_epi32(v, _mm_set1_epi32(-limit));
}

// Vector twin of Idct4Pass: same constants, same truncating shifts, same
// evaluation order, element-wise per lane.
inline void Butterfly4(__m128i v[4]) {
  const __m128i c0707 = _mm_set1_epi32(kC0707);
  const __m128i c0924 = _mm_set1_epi32(kC0924);
  const __m128i c0383 = _mm_set1_epi32(kC0383);
  const __m128i r2 = Mul13x4(v[2], c0707);
  const __m128i e0 = _mm_add_epi32(v[0], r2);
  const __m128i e1 = _mm_sub_epi32(v[0], r2);
  const __m128i o0 =
      _mm_add_epi32(Mul13x4(v[1], c0924), Mul13x4(v[3], c0383));
  const __m128i o1 =
      _mm_sub_epi32(Mul13x4(v[1], c0383), Mul13x4(v[3], c0924));
  v[0] = _mm_add_epi32(e0, o0);
  v[1] = _mm_add_epi32(e1, o1);
  v[2] = _mm_sub_epi32(e1, o1);
  v[3] = _mm_sub_epi32(e0, o0);
}

inline void Transpose4x4(__m128i r[4]) {
  const __m128i t0 = _mm_unpacklo_epi32(r[0], r[1]);
  const __m128i t1 = _mm_unpackhi_epi32(r[0], r[1]);
  const __m128i t2 = _mm_unpacklo_epi32(r[2], r[3]);
  const __m128i t3 = _mm_unpackhi_epi32(r[2], r[3]);
  r[0] = _mm_unpacklo_epi64(t0, t2);
  r[1] = _mm_unpackhi_epi64(t0, t2);
  r[2] = _mm_unpacklo_epi64(t1, t3);
  r[3] = _mm_unpackhi_epi64(t1, t3);
}

void DequantIdct4x4Avx2(const int16_t zz[64], const IdctTable& t, uint8_t* out,
                        int stride) {
  alignas(16) int32_t ws[16];
  if (!ScatterScaled(zz, t, 4, ws)) {
    FillDcOnlyScaled(zz, t, 4, out, stride);
    return;
  }
  __m128i v[4];
  for (int r = 0; r < 4; ++r) {
    v[r] = _mm_load_si128(reinterpret_cast<const __m128i*>(ws + r * 4));
  }
  // Pass 1 down the columns (lanes = columns), clamped like the scalar arm.
  Butterfly4(v);
  for (int r = 0; r < 4; ++r) v[r] = ClampVec4(v[r], kMidClamp);
  // Pass 2 along the rows: transpose so lanes = rows.
  Transpose4x4(v);
  Butterfly4(v);
  const __m128i round = _mm_set1_epi32(kOutRound);
  const __m128i bias = _mm_set1_epi32(128);
  for (int k = 0; k < 4; ++k) {
    v[k] = _mm_add_epi32(
        _mm_srai_epi32(_mm_add_epi32(v[k], round), kOutShift), bias);
  }
  Transpose4x4(v);  // back to vector = output row
  // Saturating pack to bytes (identical to the scalar 0..255 clamp).
  const __m128i p01 = _mm_packs_epi32(v[0], v[1]);
  const __m128i p23 = _mm_packs_epi32(v[2], v[3]);
  alignas(16) uint8_t bytes[16];
  _mm_store_si128(reinterpret_cast<__m128i*>(bytes),
                  _mm_packus_epi16(p01, p23));
  for (int r = 0; r < 4; ++r) std::memcpy(out + r * stride, bytes + r * 4, 4);
}

}  // namespace

#endif  // DLB_SIMD_AVX2

void DequantIdct8x8(const int16_t zz[64], const IdctTable& t, uint8_t* out,
                    int stride) {
#if defined(DLB_SIMD_AVX2)
  if (simd::GetKernelMode() != simd::KernelMode::kScalar) {
    DequantIdct8x8Avx2(zz, t, out, stride);
    return;
  }
#endif
  DequantIdct8x8Scalar(zz, t, out, stride);
}

void DequantIdct4x4(const int16_t zz[64], const IdctTable& t, uint8_t* out,
                    int stride) {
#if defined(DLB_SIMD_AVX2)
  if (simd::GetKernelMode() != simd::KernelMode::kScalar) {
    DequantIdct4x4Avx2(zz, t, out, stride);
    return;
  }
#endif
  DequantIdct4x4Scalar(zz, t, out, stride);
}

void DequantIdctScaled(const int16_t zz[64], const IdctTable& t, int n,
                       uint8_t* out, int stride) {
  // 2x2 and 1x1 are a handful of scalar ops per block — below the useful
  // vector granularity — so their fast and scalar arms coincide.
  switch (n) {
    case 8:
      DequantIdct8x8(zz, t, out, stride);
      break;
    case 4:
      DequantIdct4x4(zz, t, out, stride);
      break;
    case 2:
      DequantIdct2x2(zz, t, out, stride);
      break;
    default:
      DequantIdct1x1(zz, t, out, stride);
      break;
  }
}

// --- Colour rows ----------------------------------------------------------

namespace {

// The exact fixed-point arithmetic of YcbcrToRgbPixel, inlined.
inline void YccPixel(int y, int cb, int cr, uint8_t* p) {
  const int c = cr - 128;
  const int d = cb - 128;
  p[0] = ClampU8(y + ((91881 * c + 32768) >> 16));
  p[1] = ClampU8(y - ((22554 * d + 46802 * c + 32768) >> 16));
  p[2] = ClampU8(y + ((116130 * d + 32768) >> 16));
}

}  // namespace

void YcbcrRowToRgb(const uint8_t* y, const uint8_t* cb, const uint8_t* cr,
                   int width, uint8_t* rgb) {
  for (int x = 0; x < width; ++x) {
    YccPixel(y[x], cb[x], cr[x], rgb + x * 3);
  }
}

void YcbcrRowToRgbHalfX(const uint8_t* y, const uint8_t* cb,
                        const uint8_t* cr, int width, uint8_t* rgb) {
  for (int x = 0; x < width; ++x) {
    YccPixel(y[x], cb[x >> 1], cr[x >> 1], rgb + x * 3);
  }
}

void YcbcrRowToRgbMapped(const uint8_t* y, const uint8_t* cb,
                         const uint8_t* cr, const int32_t* xmap_y,
                         const int32_t* xmap_cb, const int32_t* xmap_cr,
                         int width, uint8_t* rgb) {
  for (int x = 0; x < width; ++x) {
    YccPixel(y[xmap_y[x]], cb[xmap_cb[x]], cr[xmap_cr[x]], rgb + x * 3);
  }
}

}  // namespace dlb::jpeg::kernels
