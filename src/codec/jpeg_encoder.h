// Baseline JPEG (JFIF) encoder.
//
// Used by the synthetic dataset generator to produce real compressed
// bitstreams for the pipeline to chew on — the decode work per image is the
// genuine article, not a stand-in.
#pragma once

#include "codec/jpeg_common.h"
#include "image/image.h"

namespace dlb::jpeg {

struct EncodeOptions {
  /// libjpeg-style quality in [1,100].
  int quality = 85;
  /// Chroma subsampling (ignored for grayscale input).
  Subsampling subsampling = Subsampling::k420;
  /// Emit a DRI segment and RSTn markers every N MCUs (0 = none).
  /// Restart markers are what let hardware decoders parallelise a scan.
  int restart_interval = 0;
};

/// Encode an RGB (3-channel) or grayscale (1-channel) image.
Result<Bytes> Encode(const Image& img, const EncodeOptions& opts = {});

}  // namespace dlb::jpeg
