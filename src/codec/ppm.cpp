#include "codec/ppm.h"

#include <cstring>
#include <string>

namespace dlb::ppm {

namespace {

/// Skip whitespace and '#' comments; returns false at end of data.
bool SkipSpace(ByteSpan data, size_t* pos) {
  while (*pos < data.size()) {
    const uint8_t c = data[*pos];
    if (c == '#') {
      while (*pos < data.size() && data[*pos] != '\n') ++*pos;
    } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      ++*pos;
    } else {
      return true;
    }
  }
  return false;
}

Result<int> ParseInt(ByteSpan data, size_t* pos) {
  if (!SkipSpace(data, pos)) return CorruptData("truncated PPM header");
  int value = 0;
  bool any = false;
  while (*pos < data.size() && data[*pos] >= '0' && data[*pos] <= '9') {
    value = value * 10 + (data[*pos] - '0');
    if (value > 1 << 20) return CorruptData("PPM header value too large");
    ++*pos;
    any = true;
  }
  if (!any) return CorruptData("expected integer in PPM header");
  return value;
}

}  // namespace

bool SniffPpm(ByteSpan data) {
  return data.size() >= 2 && data[0] == 'P' &&
         (data[1] == '5' || data[1] == '6');
}

Result<Bytes> Encode(const Image& img) {
  if (img.Empty()) return InvalidArgument("encode of empty image");
  if (img.Channels() != 1 && img.Channels() != 3) {
    return InvalidArgument("PPM supports 1 or 3 channels");
  }
  const char magic = img.Channels() == 3 ? '6' : '5';
  std::string header = std::string("P") + magic + "\n" +
                       std::to_string(img.Width()) + " " +
                       std::to_string(img.Height()) + "\n255\n";
  Bytes out(header.begin(), header.end());
  out.insert(out.end(), img.Data(), img.Data() + img.SizeBytes());
  return out;
}

Result<Image> Decode(ByteSpan data) {
  if (!SniffPpm(data)) return CorruptData("not a P5/P6 file");
  const int channels = data[1] == '6' ? 3 : 1;
  size_t pos = 2;
  auto w = ParseInt(data, &pos);
  if (!w.ok()) return w.status();
  auto h = ParseInt(data, &pos);
  if (!h.ok()) return h.status();
  auto maxval = ParseInt(data, &pos);
  if (!maxval.ok()) return maxval.status();
  if (maxval.value() != 255) {
    return Status(StatusCode::kUnimplemented, "only maxval 255 supported");
  }
  if (w.value() <= 0 || h.value() <= 0) return CorruptData("bad dimensions");
  // Exactly one whitespace byte separates the header from the raster.
  if (pos >= data.size()) return CorruptData("truncated PPM raster");
  ++pos;
  const size_t need =
      static_cast<size_t>(w.value()) * h.value() * channels;
  if (data.size() - pos < need) return CorruptData("short PPM raster");
  Image img(w.value(), h.value(), channels);
  std::memcpy(img.Data(), data.data() + pos, need);
  return img;
}

}  // namespace dlb::ppm
