// JFIF colour-space conversion and chroma resampling.
#pragma once

#include <cstdint>
#include <vector>

#include "image/image.h"

namespace dlb::jpeg {

/// RGB -> YCbCr (BT.601 full range, JFIF convention). Planes are sized
/// w*h each.
void RgbToYcbcr(const Image& rgb, std::vector<uint8_t>* y,
                std::vector<uint8_t>* cb, std::vector<uint8_t>* cr);

/// One YCbCr triple -> packed RGB (used by the per-pixel reconstruction).
void YcbcrToRgbPixel(int y, int cb, int cr, uint8_t* r, uint8_t* g, uint8_t* b);

/// 2x2 box down-sample of a plane (chroma subsampling for 4:2:0).
/// Output is ceil(w/2) x ceil(h/2).
std::vector<uint8_t> Downsample2x2(const std::vector<uint8_t>& plane, int w,
                                   int h);

/// Horizontal-only 2x1 down-sample (chroma subsampling for 4:2:2).
/// Output is ceil(w/2) x h.
std::vector<uint8_t> Downsample2x1(const std::vector<uint8_t>& plane, int w,
                                   int h);

}  // namespace dlb::jpeg
