// Fast decode kernels for the JPEG hot path (dequant+iDCT, colour rows).
//
// These are the software twins of the FPGA decoder's iDCT and colour units,
// rebuilt for CPU throughput:
//
//  * DequantIdct8x8 fuses dequantisation, the inverse DCT and the +128
//    level shift into one pass that writes straight into the destination
//    plane (no float intermediate, no per-block memcpy). The transform is
//    the AAN (Arai-Agui-Nakajima) factorisation in 32-bit fixed point with
//    the AAN scale factors folded into the dequantisation multipliers, plus
//    two sparse-block short-circuits: an all-AC-zero (DC-only) block fill
//    and a per-column AC-rows-all-zero skip keyed off the coefficient mask.
//  * The row converters apply the exact BT.601 fixed-point arithmetic of
//    YcbcrToRgbPixel over raw row pointers (no per-pixel accessor calls).
//
// Bit-exactness contract: every kernel is pure integer arithmetic, so the
// scalar arm and the SIMD arms produce byte-identical output on every
// input, on every platform (golden_decode_test proves it end-to-end). The
// seed float iDCT (InverseDct8x8Basis) remains compiled in as the
// reference oracle; the integer transform tracks it within +/-1 LSB per
// sample (kernels_test bounds it).
#pragma once

#include <array>
#include <cstdint>

namespace dlb::jpeg::kernels {

/// Fixed-point fractional bits folded into the dequantisation multipliers.
inline constexpr int kDqBits = 10;

/// Folded dequantisation table: m[i] multiplies the zig-zag coefficient
/// zz[i] and carries quant * aan_scale(row) * aan_scale(col) * 2^kDqBits
/// for the natural position kZigZag[i].
struct IdctTable {
  std::array<int32_t, 64> m{};
};

/// Build the folded table from a natural-order dequantisation table
/// (JpegHeader::quant).
IdctTable BuildIdctTable(const uint16_t quant_natural[64]);

/// Dequantise + inverse-transform one 8x8 block of zig-zag coefficients and
/// write the level-shifted, clamped samples to out[y*stride + x].
/// Dispatches to the best compiled arm unless the kernel mode forces
/// scalar; both arms are byte-identical.
void DequantIdct8x8(const int16_t zz[64], const IdctTable& table, uint8_t* out,
                    int stride);

/// Scalar arm, exposed for tests and for the DLB_SIMD=off build.
void DequantIdct8x8Scalar(const int16_t zz[64], const IdctTable& table,
                          uint8_t* out, int stride);

/// True if any AC coefficient (zz[1..63]) is nonzero. SIMD-accelerated
/// where available; exact on every arm.
bool BlockHasAc(const int16_t zz[64]);

// --- Scaled (decode-to-scale) transforms ----------------------------------
// n-point inverse transforms over the top-left n x n frequency window of a
// block, emitting an n x n pixel tile: the DCT-domain downscale the paper's
// workloads want (decode 500x375 straight towards 224x224 instead of
// reconstructing pixels that the resizer immediately discards). The
// coefficient weights match the 8-point transform (C(0)=1/sqrt(2)), so the
// block mean — and therefore overall image brightness — is preserved at
// every scale, and a DC-only block costs one multiply. Same bit-exactness
// contract as the 8x8 kernels: scalar and SIMD arms are byte-identical;
// InverseDctScaledBasis is the float oracle (+/-1 LSB).

/// Build the folded table for an n-point scaled transform (n in {1,2,4,8}).
/// Positions outside the n x n window get a zero multiplier; n == 8 is
/// exactly BuildIdctTable. The folded factors are quant * s[r] * s[c] *
/// 2^kDqBits with s[0] = 1 and s[u>0] = sqrt(2) (the explicit-cosine
/// butterflies below absorb the rest), so the 8x amplitude and the final
/// descale are shared with the 8x8 path.
IdctTable BuildIdctTableScaled(const uint16_t quant_natural[64], int n);

/// 4x4: two 4-point DCT-III butterfly passes (3 multiplies each).
void DequantIdct4x4(const int16_t zz[64], const IdctTable& table, uint8_t* out,
                    int stride);
void DequantIdct4x4Scalar(const int16_t zz[64], const IdctTable& table,
                          uint8_t* out, int stride);

/// 2x2: one butterfly multiply per pass.
void DequantIdct2x2(const int16_t zz[64], const IdctTable& table, uint8_t* out,
                    int stride);

/// 1x1: the DC term alone (dc * quant / 8 + 128), one multiply per block.
void DequantIdct1x1(const int16_t zz[64], const IdctTable& table, uint8_t* out,
                    int stride);

/// Dispatch by block size: n == 8 routes to DequantIdct8x8, else to the
/// matching scaled kernel. `table` must come from BuildIdctTableScaled with
/// the same n.
void DequantIdctScaled(const int16_t zz[64], const IdctTable& table, int n,
                       uint8_t* out, int stride);

// --- YCbCr -> interleaved RGB row converters ------------------------------
// All three reproduce YcbcrToRgbPixel bit-exactly. `rgb` receives width*3
// bytes.

/// Chroma sampled 1:1 with luma (4:4:4).
void YcbcrRowToRgb(const uint8_t* y, const uint8_t* cb, const uint8_t* cr,
                   int width, uint8_t* rgb);

/// Chroma at half horizontal resolution (4:2:0 / 4:2:2): index = x >> 1.
void YcbcrRowToRgbHalfX(const uint8_t* y, const uint8_t* cb,
                        const uint8_t* cr, int width, uint8_t* rgb);

/// Fully general sampling: per-component precomputed x index maps.
void YcbcrRowToRgbMapped(const uint8_t* y, const uint8_t* cb,
                         const uint8_t* cr, const int32_t* xmap_y,
                         const int32_t* xmap_cb, const int32_t* xmap_cr,
                         int width, uint8_t* rgb);

}  // namespace dlb::jpeg::kernels
