// MSB-first bit streams with JPEG byte stuffing.
//
// The entropy-coded segment of a JPEG escapes every 0xFF data byte with a
// following 0x00; readers must strip the escape and stop at real markers
// (0xFF followed by anything else).
#pragma once

#include <cstdint>

#include "codec/jpeg_common.h"
#include "common/bytes.h"
#include "common/log.h"

namespace dlb::jpeg {

/// Writer: accumulates bits MSB-first, performs 0xFF00 stuffing.
class BitWriter {
 public:
  explicit BitWriter(Bytes* out) : out_(out) {}

  /// Append the low `count` bits of `bits` (MSB of those first).
  void Put(uint32_t bits, int count) {
    DLB_CHECK(count >= 0 && count <= 24);
    acc_ = (acc_ << count) | (bits & ((1u << count) - 1));
    bit_count_ += count;
    while (bit_count_ >= 8) {
      const uint8_t byte = static_cast<uint8_t>(acc_ >> (bit_count_ - 8));
      out_->push_back(byte);
      if (byte == 0xFF) out_->push_back(0x00);  // stuffing
      bit_count_ -= 8;
    }
  }

  /// Pad the final partial byte with 1-bits (per T.81) and flush.
  void Flush() {
    if (bit_count_ > 0) {
      const int pad = 8 - bit_count_;
      Put((1u << pad) - 1, pad);
    }
  }

 private:
  Bytes* out_;
  uint64_t acc_ = 0;
  int bit_count_ = 0;
};

/// Reader over an entropy-coded segment. Un-stuffs 0xFF00 and treats any
/// other 0xFF-prefixed byte as end-of-data (a marker), leaving the cursor
/// on the 0xFF.
class BitReader {
 public:
  explicit BitReader(ByteSpan data) : data_(data) {}

  /// Read `count` bits; returns -1 on exhausted data (caller treats as
  /// corrupt stream or expected marker).
  int32_t Get(int count) {
    while (bit_count_ < count) {
      if (!FillByte()) return -1;
    }
    const int32_t v =
        static_cast<int32_t>((acc_ >> (bit_count_ - count)) & ((1u << count) - 1));
    bit_count_ -= count;
    return v;
  }

  /// Read a single bit (hot path of Huffman decode); -1 when exhausted.
  int GetBit() {
    if (bit_count_ == 0 && !FillByte()) return -1;
    --bit_count_;
    return static_cast<int>((acc_ >> bit_count_) & 1u);
  }

  /// Byte position of the cursor within the span (next unread byte).
  size_t Position() const { return pos_; }

  /// Discard buffered bits and re-align to the next byte boundary
  /// (used at restart markers).
  void AlignToByte() {
    acc_ = 0;
    bit_count_ = 0;
  }

  /// True if the next two bytes are a restart marker; advances past it.
  /// Skips any stuffed padding bytes (0xFF00) that precede the marker.
  bool ConsumeRestartMarker(int expected_index) {
    while (pos_ + 1 < data_.size() && data_[pos_] == 0xFF &&
           data_[pos_ + 1] == 0x00) {
      pos_ += 2;
    }
    if (pos_ + 1 >= data_.size()) return false;
    if (data_[pos_] != 0xFF) return false;
    const uint8_t m = data_[pos_ + 1];
    if (m != (kRST0 + (expected_index & 7))) return false;
    pos_ += 2;
    AlignToByte();
    return true;
  }

  bool Exhausted() const { return pos_ >= data_.size() && bit_count_ == 0; }

 private:
  /// Load one (un-stuffed) data byte into the accumulator.
  bool FillByte() {
    if (pos_ >= data_.size()) return false;
    uint8_t byte = data_[pos_];
    if (byte == 0xFF) {
      if (pos_ + 1 < data_.size() && data_[pos_ + 1] == 0x00) {
        pos_ += 2;  // stuffed 0xFF
      } else {
        return false;  // real marker: stop (cursor stays on 0xFF)
      }
    } else {
      ++pos_;
    }
    acc_ = (acc_ << 8) | byte;
    bit_count_ += 8;
    return true;
  }

  ByteSpan data_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;
  int bit_count_ = 0;
};

}  // namespace dlb::jpeg
