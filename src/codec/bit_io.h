// MSB-first bit streams with JPEG byte stuffing.
//
// The entropy-coded segment of a JPEG escapes every 0xFF data byte with a
// following 0x00; readers must strip the escape and stop at real markers
// (0xFF followed by anything else).
#pragma once

#include <cstdint>
#include <cstring>

#include "codec/jpeg_common.h"
#include "common/bytes.h"
#include "common/log.h"

namespace dlb::jpeg {

/// Writer: accumulates bits MSB-first, performs 0xFF00 stuffing.
class BitWriter {
 public:
  explicit BitWriter(Bytes* out) : out_(out) {}

  /// Append the low `count` bits of `bits` (MSB of those first).
  void Put(uint32_t bits, int count) {
    DLB_CHECK(count >= 0 && count <= 24);
    acc_ = (acc_ << count) | (bits & ((1u << count) - 1));
    bit_count_ += count;
    while (bit_count_ >= 8) {
      const uint8_t byte = static_cast<uint8_t>(acc_ >> (bit_count_ - 8));
      out_->push_back(byte);
      if (byte == 0xFF) out_->push_back(0x00);  // stuffing
      bit_count_ -= 8;
    }
  }

  /// Pad the final partial byte with 1-bits (per T.81) and flush.
  void Flush() {
    if (bit_count_ > 0) {
      const int pad = 8 - bit_count_;
      Put((1u << pad) - 1, pad);
    }
  }

 private:
  Bytes* out_;
  uint64_t acc_ = 0;
  int bit_count_ = 0;
};

/// Reader over an entropy-coded segment. Un-stuffs 0xFF00 and treats any
/// other 0xFF-prefixed byte as end-of-data (a marker), leaving the cursor
/// on the 0xFF.
///
/// Internally a 64-bit accumulator refilled 32 bits at a time: a SWAR probe
/// checks the next four bytes for 0xFF and, in the overwhelmingly common
/// clean case, appends them with two shifts; only windows containing 0xFF
/// (stuffing or a marker) take the byte-wise path. Because refill runs
/// ahead of consumption, byte-oriented operations (AlignToByte, Position,
/// restart markers) rewind the cursor over still-buffered whole bytes; the
/// rewind is unambiguous since a consumed 0x00 preceded by 0xFF is always a
/// stuffed pair (an unstuffed 0xFF never enters the accumulator).
class BitReader {
 public:
  explicit BitReader(ByteSpan data) : data_(data) {}

  /// Read `count` bits, 0 <= count <= 24 (checked; 24 is the widest value
  /// the -1 error sentinel cannot collide with, and matches BitWriter::Put).
  /// Returns -1 on exhausted data (caller treats as corrupt stream or
  /// expected marker).
  int32_t Get(int count) {
    DLB_CHECK(count >= 0 && count <= kMaxGetBits);
    if (bit_count_ < count) {
      Refill();
      if (bit_count_ < count) return -1;
    }
    bit_count_ -= count;
    return static_cast<int32_t>((acc_ >> bit_count_) &
                                ((1u << count) - 1));
  }

  /// Widest Get() supported; reads of up to 32 buffered bits are possible
  /// via Peek8/Drop composition, but Get() itself stays sentinel-safe.
  static constexpr int kMaxGetBits = 24;

  /// Read a single bit; -1 when exhausted.
  int GetBit() {
    if (bit_count_ == 0) {
      Refill();
      if (bit_count_ == 0) return -1;
    }
    --bit_count_;
    return static_cast<int>((acc_ >> bit_count_) & 1u);
  }

  /// Peek at the next 8 bits without consuming them (Huffman fast path);
  /// -1 when fewer than 8 bits remain before a marker / end of data.
  int Peek8() {
    if (bit_count_ < 8) {
      Refill();
      if (bit_count_ < 8) return -1;
    }
    return static_cast<int>((acc_ >> (bit_count_ - 8)) & 0xFFu);
  }

  /// Discard `count` already-peeked bits (count <= buffered bits).
  void Drop(int count) {
    DLB_CHECK(count >= 0 && count <= bit_count_);
    bit_count_ -= count;
  }

  /// Byte position of the logical cursor within the span: the next byte
  /// that holds unconsumed bits (buffered-but-unread whole bytes count as
  /// unconsumed; a partially consumed byte counts as consumed).
  size_t Position() const {
    size_t p = pos_;
    for (int n = bit_count_ / 8; n > 0; --n) p = RewindOne(p);
    return p;
  }

  /// Discard buffered bits, give back buffered whole bytes, and re-align
  /// the cursor to the next byte boundary (used at restart markers).
  void AlignToByte() {
    for (int n = bit_count_ / 8; n > 0; --n) pos_ = RewindOne(pos_);
    acc_ = 0;
    bit_count_ = 0;
  }

  /// True if the next two bytes are a restart marker; advances past it.
  /// Skips any stuffed padding bytes (0xFF00) that precede the marker.
  bool ConsumeRestartMarker(int expected_index) {
    AlignToByte();
    while (pos_ + 1 < data_.size() && data_[pos_] == 0xFF &&
           data_[pos_ + 1] == 0x00) {
      pos_ += 2;
    }
    if (pos_ + 1 >= data_.size()) return false;
    if (data_[pos_] != 0xFF) return false;
    const uint8_t m = data_[pos_ + 1];
    if (m != (kRST0 + (expected_index & 7))) return false;
    pos_ += 2;
    acc_ = 0;
    bit_count_ = 0;
    return true;
  }

  bool Exhausted() const { return pos_ >= data_.size() && bit_count_ == 0; }

 private:
  /// Top the accumulator up to >32 (= enough for any Get) buffered bits,
  /// or as many as remain before a marker / end of data.
  void Refill() {
    while (bit_count_ <= 32) {
      if (data_.size() >= 4 && pos_ <= data_.size() - 4) {
        uint8_t b[4];
        std::memcpy(b, data_.data() + pos_, sizeof(b));
        uint32_t w;
        std::memcpy(&w, b, sizeof(w));
        // SWAR: any byte of w equal to 0xFF <=> ~w has a zero byte.
        if ((((~w) - 0x01010101u) & w & 0x80808080u) == 0) {
          const uint64_t be = (static_cast<uint64_t>(b[0]) << 24) |
                              (static_cast<uint32_t>(b[1]) << 16) |
                              (static_cast<uint32_t>(b[2]) << 8) | b[3];
          acc_ = (acc_ << 32) | be;
          bit_count_ += 32;
          pos_ += 4;
          continue;
        }
      }
      if (!FillByte()) return;  // marker or end of data
    }
  }

  /// Load one (un-stuffed) data byte into the accumulator.
  bool FillByte() {
    if (pos_ >= data_.size()) return false;
    const uint8_t byte = data_[pos_];
    if (byte == 0xFF) {
      if (pos_ + 1 < data_.size() && data_[pos_ + 1] == 0x00) {
        pos_ += 2;  // stuffed 0xFF
      } else {
        return false;  // real marker: stop (cursor stays on 0xFF)
      }
    } else {
      ++pos_;
    }
    acc_ = (acc_ << 8) | byte;
    bit_count_ += 8;
    return true;
  }

  /// Step the cursor back over the most recently consumed source token:
  /// two bytes for a stuffed 0xFF00 pair, one otherwise.
  size_t RewindOne(size_t p) const {
    if (p >= 2 && data_[p - 1] == 0x00 && data_[p - 2] == 0xFF) return p - 2;
    return p - 1;
  }

  ByteSpan data_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;
  int bit_count_ = 0;
};

}  // namespace dlb::jpeg
