#include "codec/inflate.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace dlb::flate {

namespace {

// --- LSB-first bit reader (DEFLATE bit order, unlike JPEG's MSB-first) ----
class LsbBitReader {
 public:
  explicit LsbBitReader(ByteSpan data) : data_(data) {}

  /// Read `count` bits (count <= 24); -1 on exhausted input.
  int32_t Get(int count) {
    while (bit_count_ < count) {
      if (pos_ >= data_.size()) return -1;
      acc_ |= static_cast<uint32_t>(data_[pos_++]) << bit_count_;
      bit_count_ += 8;
    }
    const int32_t v = static_cast<int32_t>(acc_ & ((1u << count) - 1));
    acc_ >>= count;
    bit_count_ -= count;
    return v;
  }

  /// Discard bits to the next byte boundary (stored-block alignment).
  void AlignToByte() {
    acc_ = 0;
    bit_count_ = 0;
  }

  /// Copy `n` raw bytes (must be byte-aligned); false on underrun.
  bool CopyBytes(uint8_t* dst, size_t n) {
    if (pos_ + n > data_.size()) return false;
    if (n == 0) return true;  // dst may be null for an empty output buffer
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  size_t Position() const { return pos_; }

 private:
  ByteSpan data_;
  size_t pos_ = 0;
  uint32_t acc_ = 0;
  int bit_count_ = 0;
};

// --- Canonical Huffman decoding over code lengths (RFC 1951 §3.2.2) ------
class LengthHuffman {
 public:
  /// Build from per-symbol code lengths (0 = unused).
  Status Build(const uint8_t* lengths, int count) {
    count_ = count;
    std::array<int, 16> bl_count{};
    for (int i = 0; i < count; ++i) {
      if (lengths[i] > 15) return CorruptData("code length > 15");
      ++bl_count[lengths[i]];
    }
    bl_count[0] = 0;
    int code = 0;
    std::array<int, 16> next_code{};
    for (int bits = 1; bits <= 15; ++bits) {
      code = (code + bl_count[bits - 1]) << 1;
      next_code[bits] = code;
      first_code_[bits] = code;
      if (code + bl_count[bits] > (1 << bits)) {
        return CorruptData("over-subscribed Huffman code");
      }
    }
    // Symbols sorted by (length, symbol) — canonical order.
    int offset = 0;
    for (int bits = 1; bits <= 15; ++bits) {
      offset_[bits] = offset;
      for (int sym = 0; sym < count; ++sym) {
        if (lengths[sym] == bits) symbols_[offset++] = static_cast<uint16_t>(sym);
      }
      counts_[bits] = offset - offset_[bits];
    }
    if (offset == 0) return CorruptData("empty Huffman table");
    return Status::Ok();
  }

  /// Decode one symbol; -1 on error. DEFLATE codes are MSB-first within
  /// the LSB-first byte stream, so we accumulate bit by bit.
  int Decode(LsbBitReader& br) const {
    int code = 0;
    for (int bits = 1; bits <= 15; ++bits) {
      const int b = br.Get(1);
      if (b < 0) return -1;
      code = (code << 1) | b;
      const int first = first_code_[bits];
      const int count = counts_[bits];
      if (code - first < count) {
        return symbols_[offset_[bits] + (code - first)];
      }
    }
    return -1;
  }

 private:
  int count_ = 0;
  std::array<int, 16> first_code_{};
  std::array<int, 16> offset_{};
  std::array<int, 16> counts_{};
  std::array<uint16_t, 320> symbols_{};
};

// Length/distance base tables (RFC 1951 §3.2.5).
constexpr int kLengthBase[29] = {3,  4,  5,  6,  7,  8,  9,  10, 11,  13,
                                 15, 17, 19, 23, 27, 31, 35, 43, 51,  59,
                                 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr int kLengthExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
                                  2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr int kDistBase[30] = {1,    2,    3,    4,    5,    7,     9,    13,
                               17,   25,   33,   49,   65,   97,    129,  193,
                               257,  385,  513,  769,  1025, 1537,  2049, 3073,
                               4097, 6145, 8193, 12289, 16385, 24577};
constexpr int kDistExtra[30] = {0, 0, 0, 0, 1, 1, 2, 2,  3,  3,  4,  4, 5, 5, 6,
                                6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

Status BuildFixedTables(LengthHuffman* lit, LengthHuffman* dist) {
  uint8_t lit_lengths[288];
  for (int i = 0; i < 144; ++i) lit_lengths[i] = 8;
  for (int i = 144; i < 256; ++i) lit_lengths[i] = 9;
  for (int i = 256; i < 280; ++i) lit_lengths[i] = 7;
  for (int i = 280; i < 288; ++i) lit_lengths[i] = 8;
  DLB_RETURN_IF_ERROR(lit->Build(lit_lengths, 288));
  uint8_t dist_lengths[30];
  for (auto& l : dist_lengths) l = 5;
  return dist->Build(dist_lengths, 30);
}

Status ReadDynamicTables(LsbBitReader& br, LengthHuffman* lit,
                         LengthHuffman* dist) {
  const int hlit = br.Get(5);
  const int hdist = br.Get(5);
  const int hclen = br.Get(4);
  if (hlit < 0 || hdist < 0 || hclen < 0) return CorruptData("truncated header");
  const int nlit = hlit + 257;
  const int ndist = hdist + 1;
  const int ncode = hclen + 4;
  if (nlit > 286 || ndist > 30) return CorruptData("bad table sizes");

  static const int kOrder[19] = {16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                                 11, 4,  12, 3, 13, 2, 14, 1, 15};
  uint8_t cl_lengths[19] = {0};
  for (int i = 0; i < ncode; ++i) {
    const int v = br.Get(3);
    if (v < 0) return CorruptData("truncated code lengths");
    cl_lengths[kOrder[i]] = static_cast<uint8_t>(v);
  }
  LengthHuffman cl_table;
  DLB_RETURN_IF_ERROR(cl_table.Build(cl_lengths, 19));

  uint8_t lengths[286 + 30] = {0};
  int i = 0;
  while (i < nlit + ndist) {
    const int sym = cl_table.Decode(br);
    if (sym < 0) return CorruptData("bad code-length symbol");
    if (sym < 16) {
      lengths[i++] = static_cast<uint8_t>(sym);
    } else if (sym == 16) {
      if (i == 0) return CorruptData("repeat with no previous length");
      const int extra = br.Get(2);
      if (extra < 0) return CorruptData("truncated repeat");
      const int repeat = 3 + extra;
      if (i + repeat > nlit + ndist) return CorruptData("repeat overflow");
      for (int r = 0; r < repeat; ++r, ++i) lengths[i] = lengths[i - 1];
    } else {
      const int extra = br.Get(sym == 17 ? 3 : 7);
      if (extra < 0) return CorruptData("truncated zero run");
      const int repeat = (sym == 17 ? 3 : 11) + extra;
      if (i + repeat > nlit + ndist) return CorruptData("zero-run overflow");
      i += repeat;  // lengths already zero
    }
  }
  DLB_RETURN_IF_ERROR(lit->Build(lengths, nlit));
  return dist->Build(lengths + nlit, ndist);
}

}  // namespace

Result<Bytes> Inflate(ByteSpan compressed, size_t expected_size) {
  LsbBitReader br(compressed);
  Bytes out;
  if (expected_size) out.reserve(expected_size);
  // Hard cap against decompression bombs on corrupt input.
  const size_t max_size =
      expected_size ? expected_size : (64ull << 20);

  while (true) {
    const int bfinal = br.Get(1);
    const int btype = br.Get(2);
    if (bfinal < 0 || btype < 0) return CorruptData("truncated block header");

    if (btype == 0) {
      // Stored block.
      br.AlignToByte();
      uint8_t header[4];
      if (!br.CopyBytes(header, 4)) return CorruptData("truncated LEN");
      const uint16_t len = static_cast<uint16_t>(header[0] | (header[1] << 8));
      const uint16_t nlen = static_cast<uint16_t>(header[2] | (header[3] << 8));
      if ((len ^ nlen) != 0xFFFF) return CorruptData("LEN/NLEN mismatch");
      if (out.size() + len > max_size) return CorruptData("output too large");
      const size_t at = out.size();
      out.resize(at + len);
      if (!br.CopyBytes(out.data() + at, len)) {
        return CorruptData("truncated stored data");
      }
    } else if (btype == 3) {
      return CorruptData("reserved block type");
    } else {
      LengthHuffman lit, dist;
      if (btype == 1) {
        DLB_RETURN_IF_ERROR(BuildFixedTables(&lit, &dist));
      } else {
        DLB_RETURN_IF_ERROR(ReadDynamicTables(br, &lit, &dist));
      }
      while (true) {
        const int sym = lit.Decode(br);
        if (sym < 0) return CorruptData("bad literal/length symbol");
        if (sym < 256) {
          if (out.size() + 1 > max_size) return CorruptData("output too large");
          out.push_back(static_cast<uint8_t>(sym));
        } else if (sym == 256) {
          break;  // end of block
        } else {
          const int li = sym - 257;
          if (li >= 29) return CorruptData("bad length symbol");
          const int extra_l = br.Get(kLengthExtra[li]);
          if (extra_l < 0) return CorruptData("truncated length extra");
          const int length = kLengthBase[li] + extra_l;
          const int dsym = dist.Decode(br);
          if (dsym < 0 || dsym >= 30) return CorruptData("bad distance symbol");
          const int extra_d = br.Get(kDistExtra[dsym]);
          if (extra_d < 0) return CorruptData("truncated distance extra");
          const size_t distance =
              static_cast<size_t>(kDistBase[dsym]) + extra_d;
          if (distance > out.size()) return CorruptData("distance too far");
          if (out.size() + length > max_size) {
            return CorruptData("output too large");
          }
          // Byte-by-byte copy: overlapping copies are the LZ77 semantics.
          size_t from = out.size() - distance;
          for (int k = 0; k < length; ++k) out.push_back(out[from + k]);
        }
      }
    }
    if (bfinal) break;
  }
  return out;
}

namespace {

/// LSB-first bit writer for the compressor.
class LsbBitWriter {
 public:
  explicit LsbBitWriter(Bytes* out) : out_(out) {}
  void Put(uint32_t bits, int count) {
    acc_ |= static_cast<uint64_t>(bits & ((1u << count) - 1)) << bit_count_;
    bit_count_ += count;
    while (bit_count_ >= 8) {
      out_->push_back(static_cast<uint8_t>(acc_ & 0xFF));
      acc_ >>= 8;
      bit_count_ -= 8;
    }
  }
  /// Write a fixed-table code (codes are MSB-first on the wire).
  void PutHuffman(uint32_t code, int length) {
    for (int i = length - 1; i >= 0; --i) Put((code >> i) & 1, 1);
  }
  void AlignToByte() {
    if (bit_count_ > 0) Put(0, 8 - bit_count_);
  }

 private:
  Bytes* out_;
  uint64_t acc_ = 0;
  int bit_count_ = 0;
};

/// Fixed-Huffman code for a literal byte (RFC 1951 §3.2.6).
void FixedLiteralCode(int sym, uint32_t* code, int* length) {
  if (sym < 144) {
    *code = 0x30 + sym;  // 8 bits, 00110000..10111111
    *length = 8;
  } else {
    *code = 0x190 + (sym - 144);  // 9 bits
    *length = 9;
  }
}

}  // namespace

Bytes Deflate(ByteSpan data) {
  Bytes out;
  LsbBitWriter bw(&out);
  if (data.empty()) {
    // One empty stored final block.
    bw.Put(1, 1);
    bw.Put(0, 2);
    bw.AlignToByte();
    out.push_back(0);
    out.push_back(0);
    out.push_back(0xFF);
    out.push_back(0xFF);
    return out;
  }
  // Choose per 32 KiB block between stored and fixed-Huffman literals.
  constexpr size_t kBlock = 32 * 1024;
  size_t pos = 0;
  do {
    const size_t n = std::min(kBlock, data.size() - pos);
    const bool final_block = pos + n == data.size();
    // Estimate fixed-literal cost: ~8.5 bits/byte; stored: 8 bits + 5 bytes.
    size_t fixed_bits = 10;  // block header + EOB
    for (size_t i = 0; i < n; ++i) {
      fixed_bits += data[pos + i] < 144 ? 8 : 9;
    }
    const size_t stored_bits = 3 + 32 + n * 8 + 7 /*alignment*/;
    if (fixed_bits < stored_bits) {
      bw.Put(final_block ? 1 : 0, 1);
      bw.Put(1, 2);  // fixed Huffman
      for (size_t i = 0; i < n; ++i) {
        uint32_t code;
        int length;
        FixedLiteralCode(data[pos + i], &code, &length);
        bw.PutHuffman(code, length);
      }
      bw.PutHuffman(0, 7);  // end-of-block (symbol 256, code 0000000)
      if (final_block) bw.AlignToByte();
    } else {
      bw.Put(final_block ? 1 : 0, 1);
      bw.Put(0, 2);  // stored
      bw.AlignToByte();
      const uint16_t len = static_cast<uint16_t>(n);
      out.push_back(static_cast<uint8_t>(len & 0xFF));
      out.push_back(static_cast<uint8_t>(len >> 8));
      out.push_back(static_cast<uint8_t>(~len & 0xFF));
      out.push_back(static_cast<uint8_t>((~len >> 8) & 0xFF));
      out.insert(out.end(), data.begin() + pos, data.begin() + pos + n);
    }
    pos += n;
  } while (pos < data.size());
  return out;
}

uint32_t Adler32(ByteSpan data) {
  uint32_t a = 1, b = 0;
  for (uint8_t byte : data) {
    a = (a + byte) % 65521;
    b = (b + a) % 65521;
  }
  return (b << 16) | a;
}

Result<Bytes> ZlibDecompress(ByteSpan compressed, size_t expected_size) {
  if (compressed.size() < 6) return CorruptData("zlib stream too short");
  const uint8_t cmf = compressed[0];
  const uint8_t flg = compressed[1];
  if ((cmf & 0x0F) != 8) return CorruptData("not DEFLATE");
  if ((cmf * 256 + flg) % 31 != 0) return CorruptData("bad zlib header check");
  if (flg & 0x20) return Status(StatusCode::kUnimplemented, "preset dictionary");
  auto data = Inflate(compressed.subspan(2, compressed.size() - 6),
                      expected_size);
  if (!data.ok()) return data.status();
  const uint8_t* tail = compressed.data() + compressed.size() - 4;
  const uint32_t expected_adler =
      (static_cast<uint32_t>(tail[0]) << 24) | (tail[1] << 16) |
      (tail[2] << 8) | tail[3];
  if (Adler32(data.value()) != expected_adler) {
    return CorruptData("Adler-32 mismatch");
  }
  return data;
}

Bytes ZlibCompress(ByteSpan data) {
  Bytes out = {0x78, 0x01};  // CMF/FLG: 32K window, fastest, check ok (mod 31)
  Bytes deflated = Deflate(data);
  out.insert(out.end(), deflated.begin(), deflated.end());
  const uint32_t adler = Adler32(data);
  out.push_back(static_cast<uint8_t>(adler >> 24));
  out.push_back(static_cast<uint8_t>((adler >> 16) & 0xFF));
  out.push_back(static_cast<uint8_t>((adler >> 8) & 0xFF));
  out.push_back(static_cast<uint8_t>(adler & 0xFF));
  return out;
}

}  // namespace dlb::flate
