// 8x8 forward and inverse DCT (type II / III) for the JPEG codec.
//
// The inverse transform is the AAN (Arai-Agui-Nakajima) factorisation — the
// same structure hardware implementations (including the paper's FPGA iDCT
// unit) use, with the scale factors folded into the dequantisation table.
// For clarity and testability we keep an unscaled float reference path too.
#pragma once

#include <array>
#include <cstdint>

namespace dlb::jpeg {

/// Forward DCT of a level-shifted 8x8 sample block (inputs in [-128,127]).
/// Output coefficients in natural order, unquantised.
void ForwardDct8x8(const float in[64], float out[64]);

/// Inverse DCT: `coeffs` are dequantised coefficients in natural order;
/// output samples are clamped to [0,255] after the +128 level shift.
void InverseDct8x8(const float coeffs[64], uint8_t out[64]);

/// Dequantise a zig-zag-ordered int16 coefficient block into natural-order
/// floats ready for InverseDct8x8. (This is the "dequant" half of the FPGA
/// iDCT unit.)
void DequantizeZigZag(const int16_t zz[64], const uint16_t quant[64],
                      float out[64]);

}  // namespace dlb::jpeg
