// 8x8 forward and inverse DCT (type II / III) for the JPEG codec.
//
// The production transforms use the AAN (Arai-Agui-Nakajima) factorisation
// — 5 multiplies per 1-D pass instead of 64, the same structure hardware
// implementations (including the paper's FPGA iDCT unit) use — with the
// AAN scale factors applied at the interface so the unscaled contract is
// unchanged. The seed basis-matmul implementations stay compiled in as the
// *Basis reference oracles for the golden/kernel tests.
#pragma once

#include <array>
#include <cstdint>

namespace dlb::jpeg {

/// Forward DCT of a level-shifted 8x8 sample block (inputs in [-128,127]).
/// Output coefficients in natural order, unquantised.
void ForwardDct8x8(const float in[64], float out[64]);

/// Inverse DCT: `coeffs` are dequantised coefficients in natural order;
/// output samples are clamped to [0,255] after the +128 level shift.
void InverseDct8x8(const float coeffs[64], uint8_t out[64]);

/// Seed reference implementations (direct basis matmul). Used as the
/// accuracy oracle by tests and by the kReference kernel mode.
void ForwardDct8x8Basis(const float in[64], float out[64]);
void InverseDct8x8Basis(const float coeffs[64], uint8_t out[64]);

/// Scaled inverse DCT reference (direct basis matmul): reconstruct an
/// n x n pixel tile (n in {1, 2, 4, 8}) from the top-left n x n frequency
/// window of a natural-order dequantised 8x8 coefficient block. The
/// per-coefficient weights match the full transform (C(0)=1/sqrt(2)), so
/// the block mean is preserved at every scale: a DC-only block yields
/// dc/8 + 128 whether n is 8 or 1. Oracle for the scaled integer kernels
/// and the kReference path of the decode-to-scale pipeline.
void InverseDctScaledBasis(const float coeffs[64], int n, uint8_t* out);

/// Dequantise a zig-zag-ordered int16 coefficient block into natural-order
/// floats ready for InverseDct8x8. (This is the "dequant" half of the FPGA
/// iDCT unit.)
void DequantizeZigZag(const int16_t zz[64], const uint16_t quant[64],
                      float out[64]);

}  // namespace dlb::jpeg
