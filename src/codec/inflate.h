// DEFLATE (RFC 1951) decompression and a minimal compressor, plus the zlib
// (RFC 1950) wrapper — the substrate under the PNG codec.
//
// The inflater supports all three block types (stored, fixed-Huffman,
// dynamic-Huffman) and the full LZ77 window. The compressor emits valid
// streams using stored and fixed-Huffman-literal blocks (no match search);
// that is enough for the PNG encoder, and every decoder must accept it.
#pragma once

#include "common/bytes.h"
#include "common/status.h"

namespace dlb::flate {

/// Inflate a raw DEFLATE stream. `expected_size` (if nonzero) reserves
/// output and bounds memory growth against corrupt streams.
Result<Bytes> Inflate(ByteSpan compressed, size_t expected_size = 0);

/// Deflate `data` (stored or fixed-Huffman-literal blocks, whichever is
/// smaller per block).
Bytes Deflate(ByteSpan data);

/// zlib wrapper: 0x78 header + DEFLATE + Adler-32.
Result<Bytes> ZlibDecompress(ByteSpan compressed, size_t expected_size = 0);
Bytes ZlibCompress(ByteSpan data);

/// Adler-32 checksum (RFC 1950).
uint32_t Adler32(ByteSpan data);

}  // namespace dlb::flate
