// PNG codec (RFC 2083 core) on top of the from-scratch DEFLATE in
// inflate.h — the second image format the paper names (§2.1: "image
// samples in various formats (e.g., JPEG, PNG.)").
//
// Decoder: 8-bit depth, color types 0 (gray), 2 (RGB), 3 (palette),
// 6 (RGBA, alpha dropped to fit the 1/3-channel Image), all five scanline
// filters. Interlace is rejected cleanly. Encoder: filter-0 scanlines,
// gray or RGB.
#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "image/image.h"

namespace dlb::png {

/// True when the 8-byte PNG signature is present.
bool SniffPng(ByteSpan data);

Result<Bytes> Encode(const Image& img);
Result<Image> Decode(ByteSpan data);

/// CRC-32 (ISO 3309) as used by PNG chunks; exposed for tests.
uint32_t Crc32(ByteSpan data);

}  // namespace dlb::png
