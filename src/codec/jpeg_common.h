// Shared definitions for the from-scratch baseline JPEG (ITU-T T.81) codec.
//
// Scope: baseline sequential DCT, 8-bit samples, Huffman entropy coding,
// grayscale or YCbCr 4:4:4 / 4:2:0, optional restart markers. That covers
// every image DLBooster's pipeline handles (the paper's datasets are JFIF
// baseline files).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace dlb::jpeg {

// --- Marker bytes (second byte after 0xFF) -------------------------------
inline constexpr uint8_t kSOI = 0xD8;
inline constexpr uint8_t kEOI = 0xD9;
inline constexpr uint8_t kSOF0 = 0xC0;  // baseline DCT
inline constexpr uint8_t kSOF2 = 0xC2;  // progressive (rejected)
inline constexpr uint8_t kDHT = 0xC4;
inline constexpr uint8_t kDQT = 0xDB;
inline constexpr uint8_t kDRI = 0xDD;
inline constexpr uint8_t kSOS = 0xDA;
inline constexpr uint8_t kAPP0 = 0xE0;
inline constexpr uint8_t kCOM = 0xFE;
inline constexpr uint8_t kRST0 = 0xD0;  // .. kRST0+7

/// Decode-size cap: total MCU-padded samples (sum over components of
/// plane_w * plane_h) a single image may expand to. Headers are untrusted
/// bytes; without a cap a crafted 65535x65535 SOF drives multi-GB plane
/// allocations before a single entropy bit is read. 2^27 samples (~128 MB
/// of planes) comfortably covers any real camera JPEG.
inline constexpr uint64_t kMaxDecodedSamples = uint64_t{1} << 27;

/// Zig-zag scan order: index = zigzag position, value = natural position.
extern const std::array<uint8_t, 64> kZigZag;

/// Inverse map: natural position -> zigzag position.
extern const std::array<uint8_t, 64> kZigZagInv;

/// Annex K luminance/chrominance quantisation tables (quality 50 baseline).
extern const std::array<uint16_t, 64> kStdLumaQuant;
extern const std::array<uint16_t, 64> kStdChromaQuant;

/// Huffman table specification: BITS (codes per length 1..16) + HUFFVAL.
struct HuffmanSpec {
  std::array<uint8_t, 16> bits{};
  std::vector<uint8_t> vals;
};

/// Annex K typical Huffman tables.
const HuffmanSpec& StdLumaDc();
const HuffmanSpec& StdLumaAc();
const HuffmanSpec& StdChromaDc();
const HuffmanSpec& StdChromaAc();

/// Scale an Annex-K base table by libjpeg-style quality in [1,100].
std::array<uint16_t, 64> ScaleQuantTable(const std::array<uint16_t, 64>& base,
                                         int quality);

/// Chroma subsampling modes supported by the codec.
enum class Subsampling {
  k444,  ///< no subsampling (1x1)
  k422,  ///< horizontal-only chroma subsampling (2x1)
  k420,  ///< 2x2 chroma subsampling (the common camera default)
};

/// One component's sampling/table description from SOF0/SOS.
struct ComponentInfo {
  uint8_t id = 0;          // component identifier from SOF
  int h_samp = 1;          // horizontal sampling factor
  int v_samp = 1;          // vertical sampling factor
  int quant_idx = 0;       // DQT table index
  int dc_table = 0;        // DHT DC table index (from SOS)
  int ac_table = 0;        // DHT AC table index (from SOS)
  // Derived geometry (filled by the parser):
  int blocks_w = 0;        // width in 8x8 blocks (MCU-padded)
  int blocks_h = 0;        // height in 8x8 blocks (MCU-padded)
  int plane_w = 0;         // sample plane width  (blocks_w * 8)
  int plane_h = 0;         // sample plane height (blocks_h * 8)
};

/// Everything the entropy/iDCT/colour stages need, produced by the header
/// parser (the FPGA "parser" unit runs exactly this).
struct JpegHeader {
  int width = 0;
  int height = 0;
  std::vector<ComponentInfo> components;       // 1 (gray) or 3 (YCbCr)
  std::array<std::array<uint16_t, 64>, 4> quant{};  // dequant tables, natural order
  std::array<bool, 4> quant_present{};
  std::array<HuffmanSpec, 4> dc_tables;        // index by table id
  std::array<bool, 4> dc_present{};
  std::array<HuffmanSpec, 4> ac_tables;
  std::array<bool, 4> ac_present{};
  int restart_interval = 0;                    // MCUs between RST markers
  size_t entropy_offset = 0;                   // byte offset of scan data
  size_t entropy_size = 0;                     // bytes up to EOI
  int max_h = 1, max_v = 1;                    // max sampling factors
  int mcus_w = 0, mcus_h = 0;                  // MCU grid
};

/// Per-component DCT coefficients in zig-zag order, as the Huffman stage
/// emits them (quantised; dequantisation happens in the iDCT stage, mirroring
/// the FPGA unit split in Fig. 4 of the paper).
struct CoeffData {
  // coeffs[comp] holds blocks_w*blocks_h blocks of 64 int16 values.
  std::vector<std::vector<int16_t>> coeffs;
};

/// Per-component 8-bit sample planes (MCU-padded sizes), output of the
/// dequant+iDCT stage and input to upsample/colour-convert.
struct PlaneData {
  std::vector<std::vector<uint8_t>> planes;
};

/// Cheap header peek (dimensions + component count) without entropy decode.
struct ImageInfo {
  int width = 0;
  int height = 0;
  int channels = 0;
};

}  // namespace dlb::jpeg
