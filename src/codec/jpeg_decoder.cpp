#include "codec/jpeg_decoder.h"

#include <algorithm>
#include <cstring>

#include "codec/bit_io.h"
#include "codec/color.h"
#include "codec/dct.h"
#include "codec/huffman.h"
#include "codec/kernels.h"
#include "common/simd.h"

namespace dlb::jpeg {

namespace {

/// Read one marker segment's length field, validating bounds.
Result<size_t> SegmentLength(ByteSpan jpeg, size_t pos) {
  if (pos + 2 > jpeg.size()) return CorruptData("truncated segment length");
  const size_t len = ReadBe16(jpeg.data() + pos);
  if (len < 2 || pos + len > jpeg.size()) {
    return CorruptData("segment length out of bounds");
  }
  return len;
}

Status ParseDqt(ByteSpan payload, JpegHeader* h) {
  size_t p = 0;
  while (p < payload.size()) {
    const uint8_t pq_tq = payload[p++];
    const int precision = pq_tq >> 4;
    const int id = pq_tq & 0x0F;
    if (id > 3) return CorruptData("DQT table id > 3");
    if (precision != 0) return CorruptData("only 8-bit DQT supported");
    if (p + 64 > payload.size()) return CorruptData("truncated DQT");
    for (int i = 0; i < 64; ++i) {
      h->quant[id][kZigZag[i]] = payload[p + i];
    }
    h->quant_present[id] = true;
    p += 64;
  }
  return Status::Ok();
}

Status ParseDht(ByteSpan payload, JpegHeader* h) {
  size_t p = 0;
  while (p < payload.size()) {
    const uint8_t tc_th = payload[p++];
    const int cls = tc_th >> 4;
    const int id = tc_th & 0x0F;
    if (cls > 1 || id > 3) return CorruptData("bad DHT class/id");
    if (p + 16 > payload.size()) return CorruptData("truncated DHT bits");
    HuffmanSpec spec;
    size_t total = 0;
    for (int i = 0; i < 16; ++i) {
      spec.bits[i] = payload[p + i];
      total += spec.bits[i];
    }
    p += 16;
    if (p + total > payload.size()) return CorruptData("truncated DHT vals");
    spec.vals.assign(payload.begin() + p, payload.begin() + p + total);
    p += total;
    if (cls == 0) {
      h->dc_tables[id] = std::move(spec);
      h->dc_present[id] = true;
    } else {
      h->ac_tables[id] = std::move(spec);
      h->ac_present[id] = true;
    }
  }
  return Status::Ok();
}

Status ParseSof0(ByteSpan payload, JpegHeader* h) {
  if (payload.size() < 6) return CorruptData("truncated SOF0");
  const int precision = payload[0];
  if (precision != 8) return CorruptData("only 8-bit precision supported");
  h->height = ReadBe16(payload.data() + 1);
  h->width = ReadBe16(payload.data() + 3);
  const int ncomp = payload[5];
  if (h->width == 0 || h->height == 0) return CorruptData("zero dimensions");
  if (ncomp != 1 && ncomp != 3) {
    return CorruptData("only 1 or 3 components supported");
  }
  if (payload.size() < 6 + static_cast<size_t>(ncomp) * 3) {
    return CorruptData("truncated SOF0 components");
  }
  h->components.resize(ncomp);
  for (int i = 0; i < ncomp; ++i) {
    ComponentInfo& c = h->components[i];
    c.id = payload[6 + i * 3];
    const uint8_t samp = payload[7 + i * 3];
    c.h_samp = samp >> 4;
    c.v_samp = samp & 0x0F;
    c.quant_idx = payload[8 + i * 3];
    if (c.h_samp < 1 || c.h_samp > 4 || c.v_samp < 1 || c.v_samp > 4) {
      return CorruptData("bad sampling factor");
    }
    if (c.quant_idx > 3) return CorruptData("bad quant index");
  }
  return Status::Ok();
}

Status ParseSos(ByteSpan payload, JpegHeader* h) {
  if (payload.empty()) return CorruptData("truncated SOS");
  const int ncomp = payload[0];
  if (ncomp != static_cast<int>(h->components.size())) {
    return CorruptData("SOS component count mismatch (non-interleaved scans "
                       "unsupported)");
  }
  if (payload.size() < 1 + static_cast<size_t>(ncomp) * 2 + 3) {
    return CorruptData("truncated SOS body");
  }
  for (int i = 0; i < ncomp; ++i) {
    const uint8_t cid = payload[1 + i * 2];
    const uint8_t tables = payload[2 + i * 2];
    bool found = false;
    for (auto& c : h->components) {
      if (c.id == cid) {
        c.dc_table = tables >> 4;
        c.ac_table = tables & 0x0F;
        if (c.dc_table > 3 || c.ac_table > 3) {
          return CorruptData("bad SOS table index");
        }
        found = true;
        break;
      }
    }
    if (!found) return CorruptData("SOS references unknown component");
  }
  return Status::Ok();
}

/// Fill derived geometry once SOF+SOS are known.
Status FinalizeGeometry(JpegHeader* h) {
  h->max_h = 1;
  h->max_v = 1;
  for (const auto& c : h->components) {
    h->max_h = std::max(h->max_h, c.h_samp);
    h->max_v = std::max(h->max_v, c.v_samp);
  }
  const int mcu_px_w = h->max_h * 8;
  const int mcu_px_h = h->max_v * 8;
  h->mcus_w = (h->width + mcu_px_w - 1) / mcu_px_w;
  h->mcus_h = (h->height + mcu_px_h - 1) / mcu_px_h;
  uint64_t total_samples = 0;
  for (auto& c : h->components) {
    c.blocks_w = h->mcus_w * c.h_samp;
    c.blocks_h = h->mcus_h * c.v_samp;
    c.plane_w = c.blocks_w * 8;
    c.plane_h = c.blocks_h * 8;
    total_samples +=
        static_cast<uint64_t>(c.plane_w) * static_cast<uint64_t>(c.plane_h);
    if (total_samples > kMaxDecodedSamples) {
      // Untrusted header: cap the expansion before any plane is allocated.
      return CorruptData("image exceeds decode size cap");
    }
    if (!h->quant_present[c.quant_idx]) {
      return CorruptData("component references missing quant table");
    }
    if (!h->dc_present[c.dc_table] || !h->ac_present[c.ac_table]) {
      return CorruptData("component references missing huffman table");
    }
  }
  return Status::Ok();
}

/// Decode one 8x8 block's coefficients into zig-zag order (T.81 F.2.2).
/// `reference` selects the seed bit-by-bit Huffman walk (kReference mode);
/// the default is the LUT fast path — identical symbols either way.
Status DecodeBlockCoeffs(BitReader& br, const HuffmanDecoder& dc_tbl,
                         const HuffmanDecoder& ac_tbl, int* dc_pred,
                         int16_t zz[64], bool reference) {
  std::memset(zz, 0, 64 * sizeof(int16_t));
  const int ssss = reference ? dc_tbl.DecodeReference(br) : dc_tbl.Decode(br);
  if (ssss < 0 || ssss > 15) return CorruptData("bad DC category");
  if (ssss > 0) {
    const int32_t bits = br.Get(ssss);
    if (bits < 0) return CorruptData("truncated DC bits");
    *dc_pred += ExtendValue(bits, ssss);
  }
  zz[0] = static_cast<int16_t>(*dc_pred);

  int k = 1;
  while (k < 64) {
    const int rs = reference ? ac_tbl.DecodeReference(br) : ac_tbl.Decode(br);
    if (rs < 0) return CorruptData("bad AC symbol");
    const int run = rs >> 4;
    const int size = rs & 0x0F;
    if (size == 0) {
      if (run == 15) {
        k += 16;  // ZRL
        continue;
      }
      break;  // EOB
    }
    k += run;
    if (k > 63) return CorruptData("AC run past end of block");
    const int32_t bits = br.Get(size);
    if (bits < 0) return CorruptData("truncated AC bits");
    zz[k] = static_cast<int16_t>(ExtendValue(bits, size));
    ++k;
  }
  return Status::Ok();
}

}  // namespace

Result<JpegHeader> ParseHeaders(ByteSpan jpeg) {
  if (jpeg.size() < 4 || jpeg[0] != 0xFF || jpeg[1] != kSOI) {
    return CorruptData("missing SOI");
  }
  JpegHeader h;
  size_t pos = 2;
  bool have_sof = false;
  while (pos + 2 <= jpeg.size()) {
    if (jpeg[pos] != 0xFF) return CorruptData("expected marker");
    uint8_t marker = jpeg[pos + 1];
    pos += 2;
    // Skip fill bytes (0xFF padding before a marker).
    while (marker == 0xFF && pos < jpeg.size()) marker = jpeg[pos++];

    if (marker == kSOI) continue;
    if (marker == kEOI) return CorruptData("EOI before SOS");
    if (marker >= kRST0 && marker <= kRST0 + 7) continue;  // standalone

    auto len = SegmentLength(jpeg, pos);
    if (!len.ok()) return len.status();
    const ByteSpan payload = jpeg.subspan(pos + 2, len.value() - 2);

    switch (marker) {
      case kSOF0: {
        DLB_RETURN_IF_ERROR(ParseSof0(payload, &h));
        have_sof = true;
        break;
      }
      case kSOF2:
        return Status(StatusCode::kUnimplemented,
                      "progressive JPEG not supported");
      case kDQT:
        DLB_RETURN_IF_ERROR(ParseDqt(payload, &h));
        break;
      case kDHT:
        DLB_RETURN_IF_ERROR(ParseDht(payload, &h));
        break;
      case kDRI:
        if (payload.size() < 2) return CorruptData("truncated DRI");
        h.restart_interval = ReadBe16(payload.data());
        break;
      case kSOS: {
        if (!have_sof) return CorruptData("SOS before SOF");
        DLB_RETURN_IF_ERROR(ParseSos(payload, &h));
        DLB_RETURN_IF_ERROR(FinalizeGeometry(&h));
        h.entropy_offset = pos + len.value();
        // Entropy data runs to EOI; we don't scan for it here (the entropy
        // stage stops at any non-RST marker), just bound it by the buffer.
        h.entropy_size = jpeg.size() - h.entropy_offset;
        return h;
      }
      default:
        // APPn, COM and friends: skipped.
        if ((marker >= 0xC1 && marker <= 0xCF) && marker != kDHT) {
          return Status(StatusCode::kUnimplemented,
                        "non-baseline SOF marker");
        }
        break;
    }
    pos += len.value();
  }
  return CorruptData("no SOS marker found");
}

Result<ImageInfo> PeekInfo(ByteSpan jpeg) {
  // Lightweight scan for SOF0 only.
  if (jpeg.size() < 4 || jpeg[0] != 0xFF || jpeg[1] != kSOI) {
    return CorruptData("missing SOI");
  }
  size_t pos = 2;
  while (pos + 4 <= jpeg.size()) {
    if (jpeg[pos] != 0xFF) return CorruptData("expected marker");
    const uint8_t marker = jpeg[pos + 1];
    pos += 2;
    if (marker == kSOI || (marker >= kRST0 && marker <= kRST0 + 7)) continue;
    if (marker == kEOI) break;
    auto len = SegmentLength(jpeg, pos);
    if (!len.ok()) return len.status();
    if (marker == kSOF0 || marker == kSOF2) {
      const ByteSpan p = jpeg.subspan(pos + 2, len.value() - 2);
      if (p.size() < 6) return CorruptData("truncated SOF");
      ImageInfo info;
      info.height = ReadBe16(p.data() + 1);
      info.width = ReadBe16(p.data() + 3);
      info.channels = p[5];
      return info;
    }
    if (marker == kSOS) break;
    pos += len.value();
  }
  return CorruptData("no SOF marker found");
}

Result<CoeffData> EntropyDecode(const JpegHeader& h, ByteSpan jpeg) {
  if (h.entropy_offset + h.entropy_size > jpeg.size()) {
    return CorruptData("entropy segment out of bounds");
  }
  // Build decoder tables once per image.
  std::array<Result<HuffmanDecoder>, 4> dc{
      HuffmanDecoder::Build(h.dc_tables[0]), HuffmanDecoder::Build(h.dc_tables[1]),
      HuffmanDecoder::Build(h.dc_tables[2]), HuffmanDecoder::Build(h.dc_tables[3])};
  std::array<Result<HuffmanDecoder>, 4> ac{
      HuffmanDecoder::Build(h.ac_tables[0]), HuffmanDecoder::Build(h.ac_tables[1]),
      HuffmanDecoder::Build(h.ac_tables[2]), HuffmanDecoder::Build(h.ac_tables[3])};
  for (size_t i = 0; i < h.components.size(); ++i) {
    const ComponentInfo& c = h.components[i];
    if (!dc[c.dc_table].ok()) return dc[c.dc_table].status();
    if (!ac[c.ac_table].ok()) return ac[c.ac_table].status();
  }

  CoeffData out;
  out.coeffs.resize(h.components.size());
  for (size_t i = 0; i < h.components.size(); ++i) {
    const ComponentInfo& c = h.components[i];
    out.coeffs[i].assign(
        static_cast<size_t>(c.blocks_w) * c.blocks_h * 64, 0);
  }

  BitReader br(jpeg.subspan(h.entropy_offset, h.entropy_size));
  std::vector<int> dc_pred(h.components.size(), 0);
  int rst_index = 0;
  int mcus_done = 0;
  int16_t zz[64];
  const bool reference =
      simd::GetKernelMode() == simd::KernelMode::kReference;

  for (int my = 0; my < h.mcus_h; ++my) {
    for (int mx = 0; mx < h.mcus_w; ++mx) {
      if (h.restart_interval > 0 && mcus_done > 0 &&
          mcus_done % h.restart_interval == 0) {
        br.AlignToByte();
        if (!br.ConsumeRestartMarker(rst_index)) {
          return CorruptData("missing restart marker");
        }
        ++rst_index;
        std::fill(dc_pred.begin(), dc_pred.end(), 0);
      }
      for (size_t ci = 0; ci < h.components.size(); ++ci) {
        const ComponentInfo& c = h.components[ci];
        for (int by = 0; by < c.v_samp; ++by) {
          for (int bx = 0; bx < c.h_samp; ++bx) {
            const int block_x = mx * c.h_samp + bx;
            const int block_y = my * c.v_samp + by;
            DLB_RETURN_IF_ERROR(DecodeBlockCoeffs(
                br, dc[c.dc_table].value(), ac[c.ac_table].value(),
                &dc_pred[ci], zz, reference));
            int16_t* dst =
                out.coeffs[ci].data() +
                (static_cast<size_t>(block_y) * c.blocks_w + block_x) * 64;
            std::memcpy(dst, zz, 64 * sizeof(int16_t));
          }
        }
      }
      ++mcus_done;
    }
  }
  return out;
}

Result<PlaneData> InverseTransform(const JpegHeader& h,
                                   const CoeffData& coeffs) {
  return InverseTransformScaled(h, coeffs, 1);
}

Result<PlaneData> InverseTransformScaled(const JpegHeader& h,
                                         const CoeffData& coeffs,
                                         int scale_denom) {
  if (scale_denom != 1 && scale_denom != 2 && scale_denom != 4 &&
      scale_denom != 8) {
    return InvalidArgument("scale_denom must be 1, 2, 4 or 8");
  }
  if (coeffs.coeffs.size() != h.components.size()) {
    return InvalidArgument("coefficient data does not match header");
  }
  // Each block emits an n x n tile; planes keep their MCU-grid structure at
  // 1/denom size, so the downstream sampling-ratio indexing is unchanged.
  const int n = 8 / scale_denom;
  PlaneData out;
  out.planes.resize(h.components.size());
  const bool reference =
      simd::GetKernelMode() == simd::KernelMode::kReference;
  float dq[64];
  uint8_t samples[64];
  for (size_t ci = 0; ci < h.components.size(); ++ci) {
    const ComponentInfo& c = h.components[ci];
    const auto& quant = h.quant[c.quant_idx];
    const int plane_w = c.blocks_w * n;
    const int plane_h = c.blocks_h * n;
    auto& plane = out.planes[ci];
    plane.assign(static_cast<size_t>(plane_w) * plane_h, 0);
    const size_t nblocks = static_cast<size_t>(c.blocks_w) * c.blocks_h;
    if (coeffs.coeffs[ci].size() != nblocks * 64) {
      return InvalidArgument("coefficient block count mismatch");
    }
    if (reference) {
      // Seed path: float dequant + basis-matmul iDCT + row copies.
      for (size_t b = 0; b < nblocks; ++b) {
        DequantizeZigZag(coeffs.coeffs[ci].data() + b * 64, quant.data(), dq);
        if (n == 8) {
          InverseDct8x8Basis(dq, samples);
        } else {
          InverseDctScaledBasis(dq, n, samples);
        }
        const int bx = static_cast<int>(b % c.blocks_w);
        const int by = static_cast<int>(b / c.blocks_w);
        uint8_t* base =
            plane.data() +
            (static_cast<size_t>(by) * n * plane_w) + bx * n;
        for (int y = 0; y < n; ++y) {
          std::memcpy(base + static_cast<size_t>(y) * plane_w,
                      samples + y * n, n);
        }
      }
      continue;
    }
    // Fast path: fused integer dequant+iDCT straight into the plane.
    const kernels::IdctTable table =
        kernels::BuildIdctTableScaled(quant.data(), n);
    for (size_t b = 0; b < nblocks; ++b) {
      const int bx = static_cast<int>(b % c.blocks_w);
      const int by = static_cast<int>(b / c.blocks_w);
      uint8_t* base =
          plane.data() + (static_cast<size_t>(by) * n * plane_w) + bx * n;
      kernels::DequantIdctScaled(coeffs.coeffs[ci].data() + b * 64, table, n,
                                 base, plane_w);
    }
  }
  return out;
}

Result<Image> ColorReconstruct(const JpegHeader& h, const PlaneData& planes) {
  return ColorReconstructScaled(h, planes, 1);
}

Result<Image> ColorReconstructScaled(const JpegHeader& h,
                                     const PlaneData& planes,
                                     int scale_denom) {
  if (scale_denom != 1 && scale_denom != 2 && scale_denom != 4 &&
      scale_denom != 8) {
    return InvalidArgument("scale_denom must be 1, 2, 4 or 8");
  }
  if (planes.planes.size() != h.components.size()) {
    return InvalidArgument("plane data does not match header");
  }
  // Scaled planes shrink by the same factor as the output, so the
  // x * h_samp / max_h sampling-ratio indexing below is scale-invariant:
  // 4:2:0 / 4:2:2 chroma upsampling composes identically at every scale.
  const int n = 8 / scale_denom;
  const int width = ScaledDim(h.width, scale_denom);
  const int height = ScaledDim(h.height, scale_denom);
  if (h.components.size() == 1) {
    const ComponentInfo& c = h.components[0];
    const int plane_w = c.blocks_w * n;
    Image img(width, height, 1);
    for (int y = 0; y < height; ++y) {
      std::memcpy(img.Row(y),
                  planes.planes[0].data() + static_cast<size_t>(y) * plane_w,
                  width);
    }
    return img;
  }

  // 3-component YCbCr with per-component sampling ratios relative to max.
  Image img(width, height, 3);
  const ComponentInfo& cy = h.components[0];
  const ComponentInfo& ccb = h.components[1];
  const ComponentInfo& ccr = h.components[2];
  const int yw = cy.blocks_w * n;
  const int cbw = ccb.blocks_w * n;
  const int crw = ccr.blocks_w * n;
  const auto& py = planes.planes[0];
  const auto& pcb = planes.planes[1];
  const auto& pcr = planes.planes[2];

  if (simd::GetKernelMode() == simd::KernelMode::kReference) {
    // Seed path: per-pixel accessors.
    for (int y = 0; y < height; ++y) {
      uint8_t* row = img.Row(y);
      const int yy = y * cy.v_samp / h.max_v;
      const int cby = y * ccb.v_samp / h.max_v;
      const int cry = y * ccr.v_samp / h.max_v;
      for (int x = 0; x < width; ++x) {
        const int yx = x * cy.h_samp / h.max_h;
        const int cbx = x * ccb.h_samp / h.max_h;
        const int crx = x * ccr.h_samp / h.max_h;
        const int Y = py[static_cast<size_t>(yy) * yw + yx];
        const int Cb = pcb[static_cast<size_t>(cby) * cbw + cbx];
        const int Cr = pcr[static_cast<size_t>(cry) * crw + crx];
        YcbcrToRgbPixel(Y, Cb, Cr, row + x * 3, row + x * 3 + 1,
                        row + x * 3 + 2);
      }
    }
    return img;
  }

  // Fast path: row-pointer kernels. The common layouts (luma full-res,
  // chroma full- or half-resolution horizontally) get dedicated loops; any
  // other sampling goes through precomputed per-x index maps. All variants
  // reproduce the x * h_samp / max_h indexing above exactly.
  const bool y_full = cy.h_samp == h.max_h;
  const bool all_full =
      y_full && ccb.h_samp == h.max_h && ccr.h_samp == h.max_h;
  const bool chroma_half =
      y_full && 2 * ccb.h_samp == h.max_h && 2 * ccr.h_samp == h.max_h;
  std::vector<int32_t> xmap_y, xmap_cb, xmap_cr;
  if (!all_full && !chroma_half) {
    xmap_y.resize(width);
    xmap_cb.resize(width);
    xmap_cr.resize(width);
    for (int x = 0; x < width; ++x) {
      xmap_y[x] = x * cy.h_samp / h.max_h;
      xmap_cb[x] = x * ccb.h_samp / h.max_h;
      xmap_cr[x] = x * ccr.h_samp / h.max_h;
    }
  }
  for (int y = 0; y < height; ++y) {
    uint8_t* row = img.Row(y);
    const uint8_t* yrow =
        py.data() + static_cast<size_t>(y * cy.v_samp / h.max_v) * yw;
    const uint8_t* cbrow =
        pcb.data() + static_cast<size_t>(y * ccb.v_samp / h.max_v) * cbw;
    const uint8_t* crrow =
        pcr.data() + static_cast<size_t>(y * ccr.v_samp / h.max_v) * crw;
    if (all_full) {
      kernels::YcbcrRowToRgb(yrow, cbrow, crrow, width, row);
    } else if (chroma_half) {
      kernels::YcbcrRowToRgbHalfX(yrow, cbrow, crrow, width, row);
    } else {
      kernels::YcbcrRowToRgbMapped(yrow, cbrow, crrow, xmap_y.data(),
                                   xmap_cb.data(), xmap_cr.data(), width,
                                   row);
    }
  }
  return img;
}

int ChooseScaleDenom(int width, int height, int target_w, int target_h) {
  if (target_w <= 0 || target_h <= 0 || width <= 0 || height <= 0) return 1;
  // Largest DCT scale whose output still covers the target: the residual
  // resize is always a (small) downscale, never an upscale.
  for (int denom : {8, 4, 2}) {
    if (ScaledDim(width, denom) >= target_w &&
        ScaledDim(height, denom) >= target_h) {
      return denom;
    }
  }
  return 1;
}

Result<DecodeResult> Decode(ByteSpan jpeg, const DecodeOptions& options) {
  if (options.scale_num != 1) {
    return InvalidArgument("only scale_num == 1 is supported");
  }
  auto header = ParseHeaders(jpeg);
  if (!header.ok()) return header.status();
  int denom = options.scale_denom;
  if (options.target_w > 0 && options.target_h > 0) {
    denom = ChooseScaleDenom(header.value().width, header.value().height,
                             options.target_w, options.target_h);
  } else if (denom != 1 && denom != 2 && denom != 4 && denom != 8) {
    return InvalidArgument("scale_denom must be 1, 2, 4 or 8");
  }
  auto coeffs = EntropyDecode(header.value(), jpeg);
  if (!coeffs.ok()) return coeffs.status();
  auto planes = InverseTransformScaled(header.value(), coeffs.value(), denom);
  if (!planes.ok()) return planes.status();
  auto image = ColorReconstructScaled(header.value(), planes.value(), denom);
  if (!image.ok()) return image.status();
  DecodeResult result;
  result.image = std::move(image.value());
  result.scale_denom = denom;
  return result;
}

Result<Image> Decode(ByteSpan jpeg) {
  auto result = Decode(jpeg, DecodeOptions{});
  if (!result.ok()) return result.status();
  return std::move(result.value().image);
}

}  // namespace dlb::jpeg
