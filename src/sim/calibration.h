// Paper-anchored calibration constants for the evaluation (DES) layer.
//
// Every constant is traceable to a number reported in the DLBooster paper
// (ICPP 2019); the comment on each cites the section/figure it comes from.
// The DES reproduces the *shape* of the paper's figures from these anchors;
// absolute values are the paper's testbed (2x P100, Arria-10, Optane NVMe,
// 40 Gbps fabric), not this machine.
#pragma once

#include <cstdint>

namespace dlb::cal {

// ---------------------------------------------------------------------------
// CPU (2x Intel Xeon E5-2630 v3, 32 hardware threads — §5.1)
// ---------------------------------------------------------------------------

/// One Xeon core decodes ~300 images/s for ILSVRC-sized (500x375) JPEGs,
/// including resize — §2.2(3).
inline constexpr double kCpuDecodeRateIlsvrc = 300.0;

/// Full training-side preprocessing (decode + resize + augment + staging)
/// per core. Fig. 6(b): 12 cores/GPU keep AlexNet's 2496 img/s fed
/// => ~210 img/s/core.
inline constexpr double kCpuPreprocessRateTrain = 210.0;

/// Inference-side preprocessing (decode + resize to the net input) per
/// core — the §2.2(3) "300 images per second" anchor.
inline constexpr double kCpuPreprocessRateInfer = 300.0;

/// Decode threads a CPU-based inference backend may burn per GPU before
/// the serving stack stops scaling (Fig. 9: 7~14 cores per GPU; the
/// effective decode pool sits at the bottom of that range).
inline constexpr int kCpuInferMaxCoresPerGpu = 7;

/// MNIST samples are 28x28 grayscale and trivially cheap per image; the
/// dataset fits in memory after the first epoch (§5.2). Rate chosen so that
/// preprocessing is never the MNIST bottleneck, matching Fig. 5(a)/6(a).
inline constexpr double kCpuDecodeRateMnist = 60000.0;

/// Total physical cores on the testbed server (§5.1: "32 cores in all";
/// Fig. 2(b) shows up to ~24 burned for 2 GPUs).
inline constexpr int kCpuTotalCores = 32;

/// CPU-based backends under the *default* framework configuration use a
/// small fixed decode-thread count, which is why default Caffe reaches only
/// ~25% of GPU performance (§2.2(1), Fig. 2(a)): 3 * 210 / 2496 ~ 25%.
inline constexpr int kCpuDefaultDecodeThreads = 3;

/// When many decode threads are burned they interfere with the framework's
/// own launch/IO threads; at 12 burned threads per GPU the engine peaks at
/// ~94% of the synthetic boundary (Fig. 2: 2346/2496 and 4363/4652).
inline constexpr double kCpuBurnInterferenceLoss = 0.06;  // at >=12 thr/GPU

// ---------------------------------------------------------------------------
// FPGA decoder (Intel Arria 10 AX, OpenCL, 4-way Huffman + 2-way resize —
// §3.3, §4.1, §5.1)
// ---------------------------------------------------------------------------

/// Decoder clock for the cycle model. Arria-10 OpenCL designs typically
/// close timing in the 200-300 MHz range; the JPEG example design (ref [9])
/// runs around 240 MHz.
inline constexpr double kFpgaClockHz = 240e6;

/// Sustained decode throughput of ONE decoder pipeline for ILSVRC-sized
/// JPEGs when fed by DMA from NVMe (training path). Fig. 5(b): DLBooster
/// keeps 2 training GPUs at the boundary (4652 img/s), so a pipeline must
/// sustain ~5k img/s in this mode.
inline constexpr double kFpgaDecodeRateDisk = 5200.0;

/// Sustained decode throughput of ONE decoder pipeline when images arrive
/// through the NIC and are fetched from host DRAM (inference path). Fig. 7(a):
/// DLBooster saturates near ~2.4k img/s beyond batch 16 — the paper calls
/// this "the drawbacks of the decoder's design"; the DRAM DataReader
/// (PCIe round trip per image) is the modelled culprit.
inline constexpr double kFpgaDecodeRateDram = 2450.0;

/// MNIST-sized decode rate (tiny images; command handling dominates).
inline constexpr double kFpgaDecodeRateMnist = 400000.0;

/// Fixed per-command overhead (cmd parse + MMU + FINISH arbitration).
inline constexpr double kFpgaCmdOverheadUs = 4.0;

/// Single-image decode latency through the pipeline (parser -> Huffman ->
/// iDCT -> resize -> DMA) for a 500x375 JPEG. Fig. 8: end-to-end DLBooster
/// latency at batch 1 is 1.2 ms including inference, so decode itself is a
/// few hundred microseconds.
inline constexpr double kFpgaDecodeLatencyUs = 260.0;

/// Arria 10 AX066/115-class ALM budget available to the decoder kernel
/// (about 427k ALMs on the largest parts; OpenCL BSP reserves ~15%).
inline constexpr int kFpgaAlmBudget = 360000;

/// Paper's shipped configuration (§4.1): 4-way Huffman, 2-way resizer.
inline constexpr int kFpgaHuffmanWays = 4;
inline constexpr int kFpgaResizerWays = 2;

// ---------------------------------------------------------------------------
// GPU (NVIDIA Tesla P100 — §5.1; V100 quoted in §2.2 for scalability)
// ---------------------------------------------------------------------------

/// Host-to-device effective PCIe gen3 x16 bandwidth (bytes/s).
inline constexpr double kPcieBandwidth = 12.0e9;

/// Per-CudaMemcpyAsync fixed overhead (driver + doorbell). Sized so that
/// per-item small copies cost LeNet-5 training ~20% of throughput while a
/// single per-batch block copy is free (§5.2 reason 1).
inline constexpr double kMemcpyOverheadUs = 12.0;

/// Fraction of one CPU core consumed per GPU purely to launch kernels while
/// an engine runs flat out (Fig. 6(d): 0.95 core on launching kernels).
inline constexpr double kLaunchCoresPerGpu = 0.95;

/// Fig. 6(d) breakdown for DLBooster-backed training (cores per GPU).
inline constexpr double kDlbPreprocessCores = 0.30;
inline constexpr double kDlbTransformCores = 0.15;
inline constexpr double kDlbUpdateCores = 0.12;

/// Host-bridger CPU cost per image on the DLBooster inference path
/// (FPGAReader polling + dispatch), core-seconds. Fig. 9: ~0.5 core per
/// GPU at ~2.4k img/s.
inline constexpr double kDlbInferCpuPerImage = 2.0e-4;

/// nvJPEG decode cost in GPU-seconds per image. Chosen so decode consumes
/// ~30-40% of the GPU when keeping an inference engine fed (§5.3), which
/// degrades model throughput accordingly.
inline constexpr double kNvjpegDecodeGpuSeconds = 2.4e-4;

/// Host-side latency of issuing one nvJPEG decode (kernel launch + sync).
inline constexpr double kNvjpegHostLatencySeconds = 0.9e-3;

/// CPU cores used by nvJPEG-enabled engines to launch decode kernels
/// (§5.3: "few (1~2) CPU cores").
inline constexpr double kNvjpegLaunchCores = 1.0;

// ---------------------------------------------------------------------------
// Storage / LMDB-style offline DB (§2.2, Fig. 2, Fig. 5(b))
// ---------------------------------------------------------------------------

/// Aggregate record-fetch rate of the shared DB backend for ILSVRC records
/// with ONE reader (records/s). Slightly above one AlexNet GPU's demand,
/// which is why single-GPU LMDB training is near the boundary (Fig. 5(b)).
inline constexpr double kDbSingleReaderRate = 3400.0;

/// Fractional aggregate-rate loss per additional concurrent reader on the
/// shared DB environment (reader-lock + page-cache contention). Fig. 2:
/// two readers serve 3400 * (1 - 0.06) ~ 3200 img/s, the 30% two-GPU drop.
inline constexpr double kDbReaderContentionLoss = 0.06;

/// Per-record CPU cost of deserialising + staging an LMDB record
/// (core-microseconds per image); yields ~2.5 cores/GPU in Fig. 6.
inline constexpr double kDbCpuPerRecordUs = 525.0;

/// Offline conversion rate (decode + serialise images into the DB), img/s/core.
/// Footnote 4: >2 h to prepare ILSVRC12 (1.28 M images) => ~160 img/s.
inline constexpr double kDbConvertRatePerCore = 160.0;

// ---------------------------------------------------------------------------
// Data plane (Optane 900p NVMe + 40 Gbps NIC — §5.1)
// ---------------------------------------------------------------------------

/// Optane 900p sequential read bandwidth (bytes/s) and 4k IOPS.
inline constexpr double kNvmeReadBandwidth = 2.5e9;
inline constexpr double kNvmeReadIops = 550000.0;

/// NIC line rate (bits/s) and per-packet host processing cost.
inline constexpr double kNicBitsPerSec = 40.0e9;
inline constexpr double kNicPerPacketUs = 0.3;
inline constexpr int kNicMtu = 1500;

/// Average wire size of a 500x375 quality-~85 JPEG (bytes) — §5.1/§5.3.
inline constexpr int kAvgJpegBytes = 60 * 1024;

// ---------------------------------------------------------------------------
// Economics (§5.4)
// ---------------------------------------------------------------------------

inline constexpr double kCoreDollarsPerHour = 0.105;  // $0.10–0.11 per hour
inline constexpr double kCoreDollarsPerYear = 900.0;
inline constexpr int kFpgaCoreEquivalent = 30;  // well-optimised decoder ~ 30 cores
inline constexpr double kFpgaWatts = 25.0;
inline constexpr double kCpuWatts = 130.0;
inline constexpr double kGpuWatts = 250.0;

}  // namespace dlb::cal
