// Processor-sharing resource: models a pool of compute (e.g. a GPU's CUDA
// cores) whose instantaneous capacity is divided among active jobs in
// proportion to their weights.
//
// This is the mechanism behind the paper's nvJPEG findings: decode kernels
// and inference kernels contend for the same CUDA cores, so nvJPEG "steals"
// 30-40% of the GPU and model throughput drops (§2.2(1), §5.3). A plain
// FIFO Resource cannot express that; processor sharing can.
#pragma once

#include <cstdint>
#include <list>
#include <string>

#include "sim/scheduler.h"

namespace dlb::sim {

class ProcessorSharing {
 public:
  /// `capacity` is abstract work-units per second the pool executes when
  /// fully utilised (e.g. "fp16 images per second" or "GFLOP/s").
  ProcessorSharing(Scheduler* sched, double capacity, std::string name);

  ProcessorSharing(const ProcessorSharing&) = delete;
  ProcessorSharing& operator=(const ProcessorSharing&) = delete;

  /// Submit a job of `work` units with relative `weight`. `on_done` fires
  /// when the job's work has been fully served.
  void Submit(double work, double weight, EventFn on_done);

  size_t ActiveJobs() const { return jobs_.size(); }
  double Capacity() const { return capacity_; }

  /// Work-units completed so far.
  double WorkDone() const { return work_done_; }

  /// Busy fraction of [0, Now()] (any job active counts as busy).
  double Utilization() const;

  /// Total busy nanoseconds so far (including the open interval).
  SimTime BusyTime() const;

 private:
  struct Job {
    double remaining;  // work-units left
    double weight;
    EventFn on_done;
    uint64_t id;
  };

  /// Advance all jobs' remaining work to Now(), then (re)schedule the next
  /// completion event. Called on every arrival and departure.
  void Reschedule();
  void AdvanceTo(SimTime t);

  Scheduler* sched_;
  double capacity_;
  std::string name_;
  std::list<Job> jobs_;
  SimTime last_update_ = 0;
  uint64_t next_id_ = 0;
  uint64_t completion_token_ = 0;  // invalidates stale completion events
  double work_done_ = 0.0;
  SimTime busy_time_ = 0;
};

}  // namespace dlb::sim
