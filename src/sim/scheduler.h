// Deterministic discrete-event simulation kernel.
//
// The evaluation layer of DLBooster runs entirely in virtual time: the FPGA
// decoder pipeline, GPU kernels, NVMe reads, NIC packets and CPU threads are
// all processes that schedule events here. Determinism comes from a strict
// (time, sequence-number) order, so two runs with the same seeds produce
// identical figures.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dlb::sim {

/// Virtual time in nanoseconds.
using SimTime = uint64_t;

constexpr SimTime kNanosPerMicro = 1000ull;
constexpr SimTime kNanosPerMilli = 1000ull * 1000;
constexpr SimTime kNanosPerSec = 1000ull * 1000 * 1000;

inline constexpr SimTime Micros(double us) {
  return static_cast<SimTime>(us * static_cast<double>(kNanosPerMicro));
}
inline constexpr SimTime Millis(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kNanosPerMilli));
}
inline constexpr SimTime Seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kNanosPerSec));
}
inline constexpr double ToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kNanosPerSec);
}
inline constexpr double ToMillis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kNanosPerMilli);
}

using EventFn = std::function<void()>;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime Now() const { return now_; }

  /// Schedule at absolute virtual time t (must be >= Now()).
  void At(SimTime t, EventFn fn);

  /// Schedule dt nanoseconds from now.
  void After(SimTime dt, EventFn fn);

  /// Execute the single earliest event. Returns false when none remain.
  bool Step();

  /// Run until the event queue is empty.
  void Run();

  /// Run all events with time <= t, then advance the clock to t.
  void RunUntil(SimTime t);

  /// Run all events within the next dt nanoseconds.
  void RunFor(SimTime dt);

  size_t EventsProcessed() const { return events_processed_; }
  bool Empty() const { return queue_.empty(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // tie-break: FIFO among same-time events
    EventFn fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  size_t events_processed_ = 0;
};

}  // namespace dlb::sim
