// FIFO k-server queueing resources for the DES.
//
// A Resource models k identical servers fed by one FIFO queue — NVMe
// channels, FPGA pipeline units, PCIe DMA engines and NIC links are all
// instances with different k and service times. Utilisation and queueing
// statistics are accumulated for the CPU-cost and bottleneck reports.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/stats.h"
#include "sim/scheduler.h"

namespace dlb::sim {

class Resource {
 public:
  Resource(Scheduler* sched, int servers, std::string name);

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Enqueue a job needing `service_time` on one server; `on_done` fires in
  /// virtual time when it completes.
  void Submit(SimTime service_time, EventFn on_done);

  /// Jobs queued but not yet started.
  size_t QueueLength() const { return queue_.size(); }
  int BusyServers() const { return busy_; }
  int Servers() const { return servers_; }
  const std::string& Name() const { return name_; }

  /// Total server-busy nanoseconds so far (across all servers).
  SimTime BusyTime() const { return busy_time_; }

  /// Mean utilisation in [0,1] over [0, Now()].
  double Utilization() const;

  /// Completed job count and queue-wait histogram (ns).
  uint64_t Completed() const { return completed_; }
  const Histogram& WaitHistogram() const { return wait_hist_; }

 private:
  struct Job {
    SimTime service_time;
    SimTime enqueue_time;
    EventFn on_done;
  };

  void StartNext();

  Scheduler* sched_;
  const int servers_;
  std::string name_;
  int busy_ = 0;
  std::deque<Job> queue_;
  SimTime busy_time_ = 0;
  uint64_t completed_ = 0;
  Histogram wait_hist_;
};

}  // namespace dlb::sim
