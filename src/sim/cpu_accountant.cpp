#include "sim/cpu_accountant.h"

// Header-only today; this TU anchors the library target and keeps room for
// future out-of-line reporting helpers.
