#include "sim/scheduler.h"

#include "common/log.h"

namespace dlb::sim {

void Scheduler::At(SimTime t, EventFn fn) {
  DLB_CHECK(t >= now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Scheduler::After(SimTime dt, EventFn fn) { At(now_ + dt, std::move(fn)); }

bool Scheduler::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the handler is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  Event& ev = const_cast<Event&>(queue_.top());
  now_ = ev.time;
  EventFn fn = std::move(ev.fn);
  queue_.pop();
  ++events_processed_;
  fn();
  return true;
}

void Scheduler::Run() {
  while (Step()) {
  }
}

void Scheduler::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    Step();
  }
  if (now_ < t) now_ = t;
}

void Scheduler::RunFor(SimTime dt) { RunUntil(now_ + dt); }

}  // namespace dlb::sim
