#include "sim/resource.h"

#include <utility>

namespace dlb::sim {

Resource::Resource(Scheduler* sched, int servers, std::string name)
    : sched_(sched), servers_(servers > 0 ? servers : 1), name_(std::move(name)) {}

void Resource::Submit(SimTime service_time, EventFn on_done) {
  queue_.push_back(Job{service_time, sched_->Now(), std::move(on_done)});
  StartNext();
}

void Resource::StartNext() {
  while (busy_ < servers_ && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    wait_hist_.Record(sched_->Now() - job.enqueue_time);
    busy_time_ += job.service_time;
    sched_->After(job.service_time,
                  [this, done = std::move(job.on_done)]() mutable {
                    --busy_;
                    ++completed_;
                    if (done) done();
                    StartNext();
                  });
  }
}

double Resource::Utilization() const {
  SimTime elapsed = sched_->Now();
  if (elapsed == 0) return 0.0;
  return static_cast<double>(busy_time_) /
         (static_cast<double>(elapsed) * servers_);
}

}  // namespace dlb::sim
