#include "sim/processor_sharing.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/log.h"

namespace dlb::sim {

ProcessorSharing::ProcessorSharing(Scheduler* sched, double capacity,
                                   std::string name)
    : sched_(sched), capacity_(capacity), name_(std::move(name)) {
  DLB_CHECK(capacity_ > 0.0);
}

void ProcessorSharing::Submit(double work, double weight, EventFn on_done) {
  AdvanceTo(sched_->Now());
  if (work <= 0.0) work = 1e-9;
  if (weight <= 0.0) weight = 1e-9;
  jobs_.push_back(Job{work, weight, std::move(on_done), next_id_++});
  Reschedule();
}

void ProcessorSharing::AdvanceTo(SimTime t) {
  if (t <= last_update_) return;
  const double dt = ToSeconds(t - last_update_);
  if (!jobs_.empty()) {
    busy_time_ += t - last_update_;
    double total_weight = 0.0;
    for (const Job& j : jobs_) total_weight += j.weight;
    const double served = capacity_ * dt;
    for (Job& j : jobs_) {
      const double share = served * (j.weight / total_weight);
      const double credited = std::min(j.remaining, share);
      j.remaining -= credited;
      work_done_ += credited;
    }
  }
  last_update_ = t;
}

void ProcessorSharing::Reschedule() {
  // Complete anything already finished (remaining ~ 0).
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->remaining <= 1e-12) {
      EventFn done = std::move(it->on_done);
      it = jobs_.erase(it);
      if (done) done();
    } else {
      ++it;
    }
  }
  ++completion_token_;
  if (jobs_.empty()) return;

  // Find the earliest finisher under the current share assignment.
  double total_weight = 0.0;
  for (const Job& j : jobs_) total_weight += j.weight;
  double min_finish_s = std::numeric_limits<double>::infinity();
  for (const Job& j : jobs_) {
    const double rate = capacity_ * (j.weight / total_weight);
    min_finish_s = std::min(min_finish_s, j.remaining / rate);
  }
  SimTime dt = static_cast<SimTime>(std::ceil(min_finish_s * 1e9));
  if (dt == 0) dt = 1;
  const uint64_t token = completion_token_;
  sched_->After(dt, [this, token] {
    if (token != completion_token_) return;  // superseded by newer arrival
    AdvanceTo(sched_->Now());
    Reschedule();
  });
}

SimTime ProcessorSharing::BusyTime() const {
  SimTime busy = busy_time_;
  if (!jobs_.empty() && sched_->Now() > last_update_) {
    busy += sched_->Now() - last_update_;
  }
  return busy;
}

double ProcessorSharing::Utilization() const {
  SimTime elapsed = sched_->Now();
  if (elapsed == 0) return 0.0;
  return static_cast<double>(BusyTime()) / static_cast<double>(elapsed);
}

}  // namespace dlb::sim
