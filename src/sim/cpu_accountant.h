// CPU-core cost accounting for the evaluation layer.
//
// The paper reports "CPU cost" as the number of cores a backend keeps busy
// (Figs. 2b, 6, 9). In the DES we charge core-seconds to named categories
// (preprocess, transform, kernel_launch, model_update, db, io, ...) and
// report cost-in-cores = core-seconds / elapsed-seconds, which is exactly
// what `top` averages to on the real testbed.
#pragma once

#include <map>
#include <string>

#include "sim/scheduler.h"

namespace dlb::sim {

class CpuAccountant {
 public:
  explicit CpuAccountant(Scheduler* sched) : sched_(sched) {}

  /// Charge `core_seconds` of CPU work to a category.
  void Charge(const std::string& category, double core_seconds) {
    if (core_seconds > 0) categories_[category] += core_seconds;
  }

  /// Charge a busy interval of `duration` on `cores` cores.
  void ChargeInterval(const std::string& category, SimTime duration,
                      double cores = 1.0) {
    Charge(category, ToSeconds(duration) * cores);
  }

  /// Average cores busy for one category over [0, Now()].
  double Cores(const std::string& category) const {
    auto it = categories_.find(category);
    if (it == categories_.end()) return 0.0;
    double elapsed = ToSeconds(sched_->Now());
    return elapsed > 0 ? it->second / elapsed : 0.0;
  }

  /// Average total cores busy over [0, Now()].
  double TotalCores() const {
    double total = 0.0;
    for (const auto& [_, cs] : categories_) total += cs;
    double elapsed = ToSeconds(sched_->Now());
    return elapsed > 0 ? total / elapsed : 0.0;
  }

  const std::map<std::string, double>& CoreSecondsByCategory() const {
    return categories_;
  }

  void Reset() { categories_.clear(); }

 private:
  Scheduler* sched_;
  std::map<std::string, double> categories_;  // category -> core-seconds
};

}  // namespace dlb::sim
