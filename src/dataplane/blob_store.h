// Backing stores for encoded samples.
//
// InMemoryBlobStore is the default "disk" for tests and the runtime
// pipeline: one contiguous arena addressed by (offset, size) pairs from the
// Manifest — exactly how the FPGA's DataReader sees an NVMe namespace
// (block offset + length), minus the hardware. DirectoryBlobStore persists
// each blob as a real file for the examples.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "dataplane/manifest.h"

namespace dlb {

/// Read interface shared by the stores and used by the DataCollector.
class BlobStore {
 public:
  virtual ~BlobStore() = default;

  /// Zero-copy view of a stored blob (valid until the store is destroyed
  /// or mutated).
  virtual Result<ByteSpan> Read(const FileRecord& record) const = 0;

  /// Total payload bytes stored.
  virtual uint64_t SizeBytes() const = 0;
};

/// Appendable arena store. Thread-safe for concurrent reads after writes
/// complete (the usual dataset pattern: build once, read many).
class InMemoryBlobStore : public BlobStore {
 public:
  /// Append a blob; returns the record skeleton (offset/size filled in).
  FileRecord Append(ByteSpan blob, std::string name, int32_t label);

  Result<ByteSpan> Read(const FileRecord& record) const override;
  uint64_t SizeBytes() const override { return arena_.size(); }

 private:
  Bytes arena_;
  uint64_t next_id_ = 0;
};

/// A single packed dataset file: header + manifest index + payload arena.
/// This is how ILSVRC-scale datasets are actually served (one sequential
/// file, offset+length reads — exactly what the FPGA's DataReader DMAs).
/// The whole file is loaded once; reads are zero-copy spans.
class PackedFileBlobStore : public BlobStore {
 public:
  /// Pack `manifest` + `source` into one file at `path`.
  static Status Pack(const Manifest& manifest, const BlobStore& source,
                     const std::string& path);

  /// Open a packed file; returns the store plus its manifest.
  struct Opened {
    std::unique_ptr<PackedFileBlobStore> store;
    Manifest manifest;
  };
  static Result<Opened> Open(const std::string& path);

  Result<ByteSpan> Read(const FileRecord& record) const override;
  uint64_t SizeBytes() const override { return arena_.size(); }

 private:
  PackedFileBlobStore() = default;
  Bytes arena_;
};

/// One-file-per-blob store rooted at a directory (for examples that want
/// artifacts visible on the filesystem). Reads cache the file contents.
class DirectoryBlobStore : public BlobStore {
 public:
  explicit DirectoryBlobStore(std::string root) : root_(std::move(root)) {}

  /// Write `blob` to <root>/<name> and return its record.
  Result<FileRecord> Write(ByteSpan blob, const std::string& name,
                           int32_t label);

  Result<ByteSpan> Read(const FileRecord& record) const override;
  uint64_t SizeBytes() const override;

  const std::string& Root() const { return root_; }

 private:
  std::string root_;
  mutable std::mutex mu_;
  mutable std::map<std::string, Bytes> cache_;
  uint64_t next_id_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace dlb
