// 40 Gbps NIC model for the online-inference path (§5.1, §5.3).
//
// A transfer is serialised on the link at line rate in MTU-sized packets;
// each packet charges a small host CPU cost (driver + copy), which is part
// of why CPU-based inference backends burn cores even before decoding.
#pragma once

#include "sim/calibration.h"
#include "sim/cpu_accountant.h"
#include "sim/resource.h"
#include "sim/scheduler.h"

namespace dlb {

struct NicModelOptions {
  double bits_per_sec = cal::kNicBitsPerSec;
  int mtu = cal::kNicMtu;
  double per_packet_cpu_us = cal::kNicPerPacketUs;
};

class NicModel {
 public:
  NicModel(sim::Scheduler* sched, sim::CpuAccountant* cpu,
           const NicModelOptions& options = {});

  /// Deliver `bytes` through the link; `on_done` fires when the last packet
  /// has landed in host memory. CPU cost is charged to category "nic".
  void Receive(uint64_t bytes, sim::EventFn on_done);

  uint64_t BytesReceived() const { return bytes_received_; }
  double Utilization() const { return link_.Utilization(); }

 private:
  NicModelOptions options_;
  sim::Resource link_;
  sim::CpuAccountant* cpu_;
  uint64_t bytes_received_ = 0;
};

}  // namespace dlb
