#include "dataplane/manifest.h"

#include <numeric>

namespace dlb {

std::vector<uint32_t> Manifest::EpochOrder(uint64_t epoch, uint64_t seed,
                                           bool shuffle) const {
  std::vector<uint32_t> order(records_.size());
  std::iota(order.begin(), order.end(), 0u);
  if (shuffle && order.size() > 1) {
    // Mix epoch into the seed so each epoch sees a fresh permutation but
    // re-running the experiment reproduces it exactly.
    Rng rng(seed * 0x9E3779B97F4A7C15ull + epoch + 1);
    for (size_t i = order.size() - 1; i > 0; --i) {
      const size_t j = rng.UniformU64(i + 1);
      std::swap(order[i], order[j]);
    }
  }
  return order;
}

uint64_t Manifest::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& r : records_) total += r.size;
  return total;
}

double Manifest::MeanBytes() const {
  if (records_.empty()) return 0.0;
  return static_cast<double>(TotalBytes()) / static_cast<double>(records_.size());
}

}  // namespace dlb
