// Batch iteration over a manifest: epoch ordering, batching, wrap-around.
//
// This is the runtime-side "Batch Loader" box of Fig. 3: it walks the
// manifest in (optionally shuffled) epoch order and yields fixed-size
// batches of FileRecord references for whichever backend is consuming.
#pragma once

#include <vector>

#include "dataplane/manifest.h"

namespace dlb {

class BatchLoader {
 public:
  BatchLoader(const Manifest* manifest, size_t batch_size, bool shuffle,
              uint64_t seed);

  /// The next batch of manifest indices. A batch never spans epochs; the
  /// final partial batch of an epoch is returned as-is (possibly short).
  std::vector<uint32_t> NextBatch();

  /// Epoch counter (0-based) of the batch NextBatch() would return next.
  uint64_t CurrentEpoch() const { return epoch_; }

  size_t BatchSize() const { return batch_size_; }
  size_t BatchesPerEpoch() const;

 private:
  void StartEpoch();

  const Manifest* manifest_;
  size_t batch_size_;
  bool shuffle_;
  uint64_t seed_;
  uint64_t epoch_ = 0;
  size_t cursor_ = 0;
  std::vector<uint32_t> order_;
};

}  // namespace dlb
