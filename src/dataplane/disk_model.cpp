#include "dataplane/disk_model.h"

namespace dlb {

DiskModel::DiskModel(sim::Scheduler* sched, const DiskModelOptions& options)
    : options_(options),
      channels_(sched, options.channels, "nvme") {}

void DiskModel::Read(uint64_t bytes, sim::EventFn on_done) {
  bytes_read_ += bytes;
  const double seconds = 1.0 / options_.read_iops +
                         static_cast<double>(bytes) / options_.read_bandwidth;
  channels_.Submit(sim::Seconds(seconds), std::move(on_done));
}

}  // namespace dlb
