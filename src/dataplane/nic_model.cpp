#include "dataplane/nic_model.h"

namespace dlb {

NicModel::NicModel(sim::Scheduler* sched, sim::CpuAccountant* cpu,
                   const NicModelOptions& options)
    : options_(options), link_(sched, 1, "nic"), cpu_(cpu) {}

void NicModel::Receive(uint64_t bytes, sim::EventFn on_done) {
  bytes_received_ += bytes;
  const uint64_t packets = (bytes + options_.mtu - 1) / options_.mtu;
  const double wire_seconds =
      static_cast<double>(bytes) * 8.0 / options_.bits_per_sec;
  if (cpu_ != nullptr) {
    cpu_->Charge("nic", packets * options_.per_packet_cpu_us * 1e-6);
  }
  link_.Submit(sim::Seconds(wire_seconds), std::move(on_done));
}

}  // namespace dlb
