// NVMe disk model for the evaluation layer (Intel Optane 900p, §5.1).
//
// Requests are served by a small number of parallel channels; each request
// costs a fixed IOP overhead plus size/bandwidth transfer time. That is
// enough fidelity to decide whether the data plane — rather than decode or
// the GPU — bounds a configuration, which is what the paper's figures need.
#pragma once

#include <memory>

#include "sim/calibration.h"
#include "sim/resource.h"
#include "sim/scheduler.h"

namespace dlb {

struct DiskModelOptions {
  double read_bandwidth = cal::kNvmeReadBandwidth;  // bytes/s
  double read_iops = cal::kNvmeReadIops;            // request overhead = 1/iops
  int channels = 8;                                 // parallel in-flight reads
};

class DiskModel {
 public:
  DiskModel(sim::Scheduler* sched, const DiskModelOptions& options = {});

  /// Schedule a read of `bytes`; `on_done` fires when the data is in host
  /// memory (or FPGA DDR, for the DMA-from-disk path).
  void Read(uint64_t bytes, sim::EventFn on_done);

  uint64_t BytesRead() const { return bytes_read_; }
  double Utilization() const { return channels_.Utilization(); }

 private:
  DiskModelOptions options_;
  sim::Resource channels_;
  uint64_t bytes_read_ = 0;
};

}  // namespace dlb
