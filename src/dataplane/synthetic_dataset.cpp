#include "dataplane/synthetic_dataset.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace dlb {

DatasetSpec ImageNetLikeSpec(size_t num_images, uint64_t seed) {
  DatasetSpec spec;
  spec.num_images = num_images;
  spec.width = 500;
  spec.height = 375;
  spec.channels = 3;
  spec.num_classes = 1000;
  spec.quality = 85;
  spec.dim_jitter = 0.2;
  spec.seed = seed;
  return spec;
}

DatasetSpec MnistLikeSpec(size_t num_images, uint64_t seed) {
  DatasetSpec spec;
  spec.num_images = num_images;
  spec.width = 28;
  spec.height = 28;
  spec.channels = 1;
  spec.num_classes = 10;
  spec.quality = 90;
  spec.subsampling = jpeg::Subsampling::k444;
  spec.dim_jitter = 0.0;
  spec.seed = seed;
  return spec;
}

Image RenderScene(const DatasetSpec& spec, uint64_t index, int* label_out) {
  Rng rng(spec.seed * 0x2545F4914F6CDD1Dull + index);
  const int label = static_cast<int>(rng.UniformU64(spec.num_classes));
  if (label_out) *label_out = label;

  int w = spec.width, h = spec.height;
  if (spec.dim_jitter > 0.0) {
    const double jw = rng.UniformDouble(1.0 - spec.dim_jitter,
                                        1.0 + spec.dim_jitter);
    const double jh = rng.UniformDouble(1.0 - spec.dim_jitter,
                                        1.0 + spec.dim_jitter);
    w = std::max(16, static_cast<int>(w * jw));
    h = std::max(16, static_cast<int>(h * jh));
  }

  Image img(w, h, spec.channels);
  // Background: two-axis gradient whose phase encodes the label.
  const int phase = (label * 37) % 256;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < spec.channels; ++c) {
        const int v =
            (phase + (x * (c + 2)) / 3 + (y * (3 - c % 3)) / 2) % 256;
        img.Set(x, y, c, static_cast<uint8_t>(v));
      }
    }
  }
  // Foreground: a few random discs and axis-aligned rectangles.
  const int num_shapes = 3 + static_cast<int>(rng.UniformU64(5));
  for (int s = 0; s < num_shapes; ++s) {
    const bool disc = rng.Bernoulli(0.5);
    const int cx = static_cast<int>(rng.UniformU64(w));
    const int cy = static_cast<int>(rng.UniformU64(h));
    const int extent = 4 + static_cast<int>(rng.UniformU64(std::max(2, w / 4)));
    uint8_t color[3] = {static_cast<uint8_t>(rng.UniformU64(256)),
                        static_cast<uint8_t>(rng.UniformU64(256)),
                        static_cast<uint8_t>(rng.UniformU64(256))};
    const int x0 = std::max(0, cx - extent), x1 = std::min(w - 1, cx + extent);
    const int y0 = std::max(0, cy - extent), y1 = std::min(h - 1, cy + extent);
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        if (disc) {
          const int dx = x - cx, dy = y - cy;
          if (dx * dx + dy * dy > extent * extent) continue;
        }
        for (int c = 0; c < spec.channels; ++c) {
          img.Set(x, y, c, color[c % 3]);
        }
      }
    }
  }
  return img;
}

Result<Dataset> GenerateDataset(const DatasetSpec& spec) {
  if (spec.num_images == 0) return InvalidArgument("empty dataset spec");
  Dataset ds;
  ds.store = std::make_unique<InMemoryBlobStore>();
  jpeg::EncodeOptions opts;
  opts.quality = spec.quality;
  opts.subsampling = spec.subsampling;
  for (uint64_t i = 0; i < spec.num_images; ++i) {
    int label = 0;
    Image scene = RenderScene(spec, i, &label);
    auto encoded = jpeg::Encode(scene, opts);
    if (!encoded.ok()) return encoded.status();
    char name[32];
    std::snprintf(name, sizeof(name), "img_%08llu.jpg",
                  static_cast<unsigned long long>(i));
    FileRecord rec = ds.store->Append(encoded.value(), name, label);
    rec.width = static_cast<uint16_t>(scene.Width());
    rec.height = static_cast<uint16_t>(scene.Height());
    ds.manifest.Add(std::move(rec));
  }
  return ds;
}

}  // namespace dlb
