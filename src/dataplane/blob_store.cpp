#include "dataplane/blob_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace dlb {

FileRecord InMemoryBlobStore::Append(ByteSpan blob, std::string name,
                                     int32_t label) {
  FileRecord rec;
  rec.id = next_id_++;
  rec.name = std::move(name);
  rec.offset = arena_.size();
  rec.size = static_cast<uint32_t>(blob.size());
  rec.label = label;
  arena_.insert(arena_.end(), blob.begin(), blob.end());
  return rec;
}

Result<ByteSpan> InMemoryBlobStore::Read(const FileRecord& record) const {
  if (record.offset + record.size > arena_.size()) {
    return OutOfRange("blob out of arena bounds: " + record.name);
  }
  return ByteSpan(arena_.data() + record.offset, record.size);
}

namespace {
// Packed-file layout (little-endian):
//   [u32 magic][u32 record_count]
//   per record: [u32 name_len][name][u64 offset][u32 size][i32 label]
//               [u16 width][u16 height]
//   payload arena (offsets are arena-relative)
constexpr uint32_t kPackMagic = 0xD1B9AC4B;
}  // namespace

Status PackedFileBlobStore::Pack(const Manifest& manifest,
                                 const BlobStore& source,
                                 const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Internal("cannot open for write: " + path);

  // Header + index.
  Bytes header(8);
  WriteLe32(header.data(), kPackMagic);
  WriteLe32(header.data() + 4, static_cast<uint32_t>(manifest.Size()));
  uint64_t offset = 0;
  for (const auto& rec : manifest.Records()) {
    const size_t at = header.size();
    header.resize(at + 4 + rec.name.size() + 8 + 4 + 4 + 2 + 2);
    uint8_t* p = header.data() + at;
    WriteLe32(p, static_cast<uint32_t>(rec.name.size()));
    std::memcpy(p + 4, rec.name.data(), rec.name.size());
    p += 4 + rec.name.size();
    WriteLe64(p, offset);
    WriteLe32(p + 8, rec.size);
    WriteLe32(p + 12, static_cast<uint32_t>(rec.label));
    p[16] = static_cast<uint8_t>(rec.width & 0xFF);
    p[17] = static_cast<uint8_t>(rec.width >> 8);
    p[18] = static_cast<uint8_t>(rec.height & 0xFF);
    p[19] = static_cast<uint8_t>(rec.height >> 8);
    offset += rec.size;
  }
  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(header.size()));

  // Arena.
  for (const auto& rec : manifest.Records()) {
    auto blob = source.Read(rec);
    if (!blob.ok()) return blob.status();
    out.write(reinterpret_cast<const char*>(blob.value().data()),
              static_cast<std::streamsize>(blob.value().size()));
  }
  return out ? Status::Ok() : Internal("short write: " + path);
}

Result<PackedFileBlobStore::Opened> PackedFileBlobStore::Open(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("cannot open: " + path);
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  if (data.size() < 8) return CorruptData("packed file too small");
  if (ReadLe32(data.data()) != kPackMagic) {
    return CorruptData("bad packed-file magic");
  }
  const uint32_t count = ReadLe32(data.data() + 4);

  Opened opened;
  size_t pos = 8;
  uint64_t arena_bytes = 0;
  for (uint32_t i = 0; i < count; ++i) {
    if (pos + 4 > data.size()) return CorruptData("truncated index");
    const uint32_t name_len = ReadLe32(data.data() + pos);
    if (name_len > 4096 || pos + 4 + name_len + 20 > data.size()) {
      return CorruptData("bad index entry");
    }
    FileRecord rec;
    rec.id = i;
    rec.name.assign(reinterpret_cast<const char*>(data.data() + pos + 4),
                    name_len);
    const uint8_t* p = data.data() + pos + 4 + name_len;
    rec.offset = ReadLe64(p);
    rec.size = ReadLe32(p + 8);
    rec.label = static_cast<int32_t>(ReadLe32(p + 12));
    rec.width = static_cast<uint16_t>(p[16] | (p[17] << 8));
    rec.height = static_cast<uint16_t>(p[18] | (p[19] << 8));
    arena_bytes = std::max(arena_bytes, rec.offset + rec.size);
    opened.manifest.Add(std::move(rec));
    pos += 4 + name_len + 20;
  }
  if (pos + arena_bytes > data.size()) {
    return CorruptData("arena extends past end of file");
  }
  auto store = std::unique_ptr<PackedFileBlobStore>(new PackedFileBlobStore());
  store->arena_.assign(data.begin() + pos, data.end());
  opened.store = std::move(store);
  return opened;
}

Result<ByteSpan> PackedFileBlobStore::Read(const FileRecord& record) const {
  if (record.offset + record.size > arena_.size()) {
    return OutOfRange("blob out of packed arena: " + record.name);
  }
  return ByteSpan(arena_.data() + record.offset, record.size);
}

Result<FileRecord> DirectoryBlobStore::Write(ByteSpan blob,
                                             const std::string& name,
                                             int32_t label) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(root_, ec);
  const std::string path = root_ + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Internal("cannot open for write: " + path);
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  if (!out) return Internal("short write: " + path);
  out.close();

  FileRecord rec;
  {
    std::scoped_lock lock(mu_);
    rec.id = next_id_++;
    total_bytes_ += blob.size();
  }
  rec.name = name;
  rec.offset = 0;
  rec.size = static_cast<uint32_t>(blob.size());
  rec.label = label;
  return rec;
}

Result<ByteSpan> DirectoryBlobStore::Read(const FileRecord& record) const {
  std::scoped_lock lock(mu_);
  auto it = cache_.find(record.name);
  if (it == cache_.end()) {
    const std::string path = root_ + "/" + record.name;
    std::ifstream in(path, std::ios::binary);
    if (!in) return NotFound("missing blob file: " + path);
    Bytes data((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
    it = cache_.emplace(record.name, std::move(data)).first;
  }
  if (record.size != it->second.size()) {
    return CorruptData("blob size mismatch for " + record.name);
  }
  return ByteSpan(it->second.data(), it->second.size());
}

uint64_t DirectoryBlobStore::SizeBytes() const {
  std::scoped_lock lock(mu_);
  return total_bytes_;
}

}  // namespace dlb
