// Synthetic dataset generation.
//
// The paper evaluates on MNIST and ILSVRC2012, which we cannot ship. We
// generate procedural scenes with controlled statistics (size distribution
// around the paper's 500x375 JPEG average, MNIST-like 28x28 grayscale) and
// encode them with the real JPEG encoder, so every byte that flows through
// the pipeline demands genuine decode work.
#pragma once

#include <functional>
#include <memory>

#include "codec/jpeg_encoder.h"
#include "common/rng.h"
#include "dataplane/blob_store.h"
#include "dataplane/manifest.h"

namespace dlb {

struct DatasetSpec {
  size_t num_images = 256;
  int width = 500;          // nominal dims; jitter makes sizes vary
  int height = 375;
  int channels = 3;
  int num_classes = 10;
  int quality = 85;
  jpeg::Subsampling subsampling = jpeg::Subsampling::k420;
  double dim_jitter = 0.0;  // +/- fraction applied to width/height per image
  uint64_t seed = 42;
};

/// A generated dataset: encoded blobs + manifest, ready to feed backends.
struct Dataset {
  Manifest manifest;
  std::unique_ptr<InMemoryBlobStore> store;
};

/// ILSVRC-like spec used across tests/examples (small count by default).
DatasetSpec ImageNetLikeSpec(size_t num_images, uint64_t seed = 42);

/// MNIST-like spec: 28x28 grayscale, 10 classes.
DatasetSpec MnistLikeSpec(size_t num_images, uint64_t seed = 42);

/// Render one procedural scene for sample `index` (deterministic per
/// (spec.seed, index)): layered gradients, discs and rectangles whose
/// parameters encode the class label, plus mild texture.
Image RenderScene(const DatasetSpec& spec, uint64_t index, int* label_out);

/// Generate the full dataset (render + JPEG encode each sample).
Result<Dataset> GenerateDataset(const DatasetSpec& spec);

}  // namespace dlb
