#include "dataplane/batch_loader.h"

#include "common/log.h"

namespace dlb {

BatchLoader::BatchLoader(const Manifest* manifest, size_t batch_size,
                         bool shuffle, uint64_t seed)
    : manifest_(manifest),
      batch_size_(batch_size ? batch_size : 1),
      shuffle_(shuffle),
      seed_(seed) {
  DLB_CHECK(manifest_ != nullptr);
  StartEpoch();
}

void BatchLoader::StartEpoch() {
  order_ = manifest_->EpochOrder(epoch_, seed_, shuffle_);
  cursor_ = 0;
}

std::vector<uint32_t> BatchLoader::NextBatch() {
  if (manifest_->Empty()) return {};
  if (cursor_ >= order_.size()) {
    ++epoch_;
    StartEpoch();
  }
  const size_t end = std::min(cursor_ + batch_size_, order_.size());
  std::vector<uint32_t> batch(order_.begin() + cursor_, order_.begin() + end);
  cursor_ = end;
  return batch;
}

size_t BatchLoader::BatchesPerEpoch() const {
  if (manifest_->Empty()) return 0;
  return (manifest_->Size() + batch_size_ - 1) / batch_size_;
}

}  // namespace dlb
