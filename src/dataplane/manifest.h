// Dataset manifest: the "file_manifest" input of Algorithm 1.
//
// A manifest row describes one sample's storage location and label; the
// DataCollector turns rows into FPGA commands (block descriptors for the
// disk path, physical addresses for the NIC path).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace dlb {

struct FileRecord {
  uint64_t id = 0;        // stable sample id
  std::string name;       // human-readable key ("img_000042.jpg")
  uint64_t offset = 0;    // byte offset within the backing store
  uint32_t size = 0;      // encoded byte size
  int32_t label = 0;      // class label
  uint16_t width = 0;     // pixel dims (from the encoder)
  uint16_t height = 0;
};

/// Ordered collection of FileRecords with epoch shuffling.
class Manifest {
 public:
  Manifest() = default;

  void Add(FileRecord record) { records_.push_back(std::move(record)); }

  size_t Size() const { return records_.size(); }
  bool Empty() const { return records_.empty(); }

  const FileRecord& At(size_t i) const { return records_[i]; }
  const std::vector<FileRecord>& Records() const { return records_; }

  /// Deterministic Fisher-Yates shuffle of the access order for one epoch.
  /// Returns indices into Records() (the records themselves stay put).
  std::vector<uint32_t> EpochOrder(uint64_t epoch, uint64_t seed,
                                   bool shuffle) const;

  /// Total encoded bytes across all records.
  uint64_t TotalBytes() const;

  /// Mean encoded size (0 when empty).
  double MeanBytes() const;

 private:
  std::vector<FileRecord> records_;
};

}  // namespace dlb
