#include "backends/backend.h"

#include <cstring>

namespace dlb {

Image ImageRef::ToImage() const {
  Image img(width, height, channels);
  if (data != nullptr && !img.Empty()) {
    std::memcpy(img.Data(), data, img.SizeBytes());
  }
  return img;
}

PreprocessBatch::PreprocessBatch(std::vector<BatchItem> items,
                                 const uint8_t* base,
                                 std::function<void()> recycle)
    : items_(std::move(items)), base_(base), recycle_(std::move(recycle)) {}

PreprocessBatch::PreprocessBatch(std::vector<BatchItem> items,
                                 std::vector<uint8_t> storage)
    : items_(std::move(items)),
      base_(nullptr),
      storage_(std::move(storage)) {
  base_ = storage_.data();
}

PreprocessBatch::~PreprocessBatch() {
  if (recycle_) recycle_();
}

ImageRef PreprocessBatch::At(size_t i) const {
  ImageRef ref;
  if (i >= items_.size()) return ref;
  const BatchItem& item = items_[i];
  ref.data = base_ + item.offset;
  ref.width = item.width;
  ref.height = item.height;
  ref.channels = item.channels;
  ref.label = item.label;
  ref.cookie = item.cookie;
  ref.ok = item.ok;
  ref.error = item.error;
  return ref;
}

size_t PreprocessBatch::OkCount() const {
  size_t n = 0;
  for (const auto& item : items_) {
    if (item.ok) ++n;
  }
  return n;
}

std::vector<telemetry::StageSnapshot> PreprocessBackend::Metrics() const {
  if (telemetry_ == nullptr) return {};
  return telemetry_->SnapshotStages();
}

}  // namespace dlb
