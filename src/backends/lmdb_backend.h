// LMDB-style offline preprocessing backend.
//
// Serves pre-decoded datums out of the shared KvStore that an offline
// conversion pass produced (§2.2). Reader threads share the store's reader
// path — the same shared environment that causes the multi-GPU contention
// the paper measures — then only deserialise + stage, which is why this
// backend is cheap on CPU but pays conversion time up front and degrades
// when several engines hammer one DB.
#pragma once

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "backends/backend.h"
#include "common/stats.h"
#include "dataplane/batch_loader.h"
#include "dataplane/manifest.h"
#include "storagedb/kv_store.h"

namespace dlb {

class LmdbBackend : public PreprocessBackend {
 public:
  /// `db` must already contain a datum per manifest record (keyed by the
  /// record name; see db::ConvertDataset). `max_images` bounds the run.
  LmdbBackend(const Manifest* manifest, const db::KvStore* db,
              const BackendOptions& options, uint64_t max_images = 0);
  ~LmdbBackend() override;

  Status Start() override;
  Result<BatchPtr> NextBatch(int engine) override;
  void Stop() override;
  std::string Name() const override { return "lmdb"; }
  std::string Describe() const override {
    return "lmdb(threads=" + std::to_string(options_.num_threads) +
           ", batch=" + std::to_string(options_.batch_size) + ")";
  }

  uint64_t RecordsServed() const { return served_.Value(); }
  uint64_t Failures() const { return failures_.Value(); }

 private:
  void Worker(uint32_t worker);
  std::vector<uint32_t> PullBatchIndices();

  const Manifest* manifest_;
  const db::KvStore* db_;
  BackendOptions options_;
  uint64_t max_images_;
  uint64_t images_pulled_ = 0;
  bool source_done_ = false;
  std::mutex loader_mu_;
  std::unique_ptr<BatchLoader> loader_;

  BoundedQueue<BatchPtr> out_queue_;
  std::vector<std::jthread> workers_;
  std::atomic<int> active_workers_{0};
  std::atomic<bool> started_{false};
  Counter served_;
  Counter failures_;
};

}  // namespace dlb
