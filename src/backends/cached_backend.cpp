#include "backends/cached_backend.h"

#include <cstring>

#include "common/log.h"

namespace dlb {

CachedBackend::CachedBackend(std::unique_ptr<PreprocessBackend> inner,
                             uint64_t cache_budget_bytes)
    : inner_(std::move(inner)), budget_(cache_budget_bytes) {
  DLB_CHECK(inner_ != nullptr);
}

Status CachedBackend::Start() { return inner_->Start(); }

std::string CachedBackend::Name() const {
  return inner_->Name() + "+cache";
}

std::string CachedBackend::Describe() const {
  return inner_->Describe() + "+cache(budget=" + std::to_string(budget_) + ")";
}

void CachedBackend::AttachTelemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  inner_->AttachTelemetry(telemetry);
}

Result<BatchPtr> CachedBackend::NextBatch(int engine) {
  // Replay phase: the whole dataset is resident. Replay serving is this
  // backend's fetch stage — the span quantifies "zero preprocessing cost".
  if (cache_complete_.load(std::memory_order_acquire)) {
    telemetry::Tracer* tracer =
        telemetry_ != nullptr ? telemetry_->tracer() : nullptr;
    telemetry::TraceContext trace;
    if (tracer != nullptr) trace = tracer->StartBatch();
    telemetry::StageTimer fetch_timer(telemetry::Stage::kFetch);
    std::scoped_lock lock(mu_);
    if (cache_.empty()) {
      if (tracer != nullptr) tracer->AbandonBatch(trace);
      return Closed("nothing cached");
    }
    const size_t idx = replay_cursor_.fetch_add(1) % cache_.size();
    const CachedBatch& cb = *cache_[idx];
    hits_.Add();
    if (telemetry_ != nullptr) {
      telemetry_->RecordTimed(fetch_timer, cb.items.size(), trace,
                              telemetry::Subsystem::kBackend);
      telemetry_->Registry().GetCounter("cache.hits")->Add();
    }
    auto out = std::make_unique<PreprocessBatch>(cb.items, cb.storage.data(),
                                                 nullptr);
    out->SetTrace(trace);
    return out;
  }

  auto batch = inner_->NextBatch(engine);
  if (!batch.ok()) {
    if (batch.status().code() == StatusCode::kClosed) {
      std::scoped_lock lock(mu_);
      if (!cache_abandoned_ && !cache_.empty()) {
        // First pass done: every later "epoch" replays from memory.
        cache_complete_.store(true, std::memory_order_release);
        const size_t idx = replay_cursor_.fetch_add(1) % cache_.size();
        const CachedBatch& cb = *cache_[idx];
        hits_.Add();
        auto out = std::make_unique<PreprocessBatch>(
            cb.items, cb.storage.data(), nullptr);
        if (telemetry::Tracer* tracer =
                telemetry_ != nullptr ? telemetry_->tracer() : nullptr) {
          out->SetTrace(tracer->StartBatch());
        }
        return out;
      }
    }
    return batch.status();
  }

  // Cache-fill phase: deep-copy the batch while handing it out.
  BatchPtr out = std::move(batch).value();
  std::scoped_lock lock(mu_);
  if (!cache_abandoned_) {
    uint64_t batch_bytes = 0;
    for (size_t i = 0; i < out->Size(); ++i) {
      batch_bytes += out->At(i).SizeBytes();
    }
    if (cached_bytes_.load() + batch_bytes > budget_) {
      // Dataset does not fit (the ILSVRC case): stop caching entirely so
      // epochs keep hitting the real backend.
      cache_abandoned_ = true;
      cache_.clear();
      cached_bytes_.store(0);
    } else {
      auto cb = std::make_unique<CachedBatch>();
      size_t offset = 0;
      cb->storage.resize(batch_bytes);
      for (size_t i = 0; i < out->Size(); ++i) {
        const ImageRef ref = out->At(i);
        BatchItem item;
        item.offset = static_cast<uint32_t>(offset);
        item.bytes = static_cast<uint32_t>(ref.SizeBytes());
        item.width = static_cast<uint16_t>(ref.width);
        item.height = static_cast<uint16_t>(ref.height);
        item.channels = static_cast<uint8_t>(ref.channels);
        item.label = ref.label;
        item.cookie = ref.cookie;
        item.ok = ref.ok;
        if (ref.ok && ref.data != nullptr) {
          std::memcpy(cb->storage.data() + offset, ref.data, ref.SizeBytes());
        }
        offset += ref.SizeBytes();
        cb->items.push_back(item);
      }
      cached_bytes_.fetch_add(batch_bytes);
      cache_.push_back(std::move(cb));
    }
  }
  if (telemetry_ != nullptr) {
    telemetry_->Registry().GetGauge("cache.bytes")->Set(
        static_cast<double>(cached_bytes_.load()));
  }
  return out;
}

void CachedBackend::Stop() { inner_->Stop(); }

}  // namespace dlb
