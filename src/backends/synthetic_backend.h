// Synthetic-data backend: the "performance upper boundary" of Figs. 2/5.
//
// Returns a pre-generated batch instantly, with no decode or IO at all —
// the same trick the fast-training papers the authors criticise use
// (footnote 4). It bounds what the compute engine alone can do.
#pragma once

#include <atomic>

#include "backends/backend.h"

namespace dlb {

class SyntheticBackend : public PreprocessBackend {
 public:
  /// Serves `max_batches` batches (0 = unbounded) of constant pixels.
  SyntheticBackend(const BackendOptions& options, uint64_t max_batches = 0);

  Status Start() override;
  Result<BatchPtr> NextBatch(int engine) override;
  void Stop() override {}
  std::string Name() const override { return "synthetic"; }
  std::string Describe() const override {
    return "synthetic(batch=" + std::to_string(options_.batch_size) + ")";
  }

 private:
  BackendOptions options_;
  uint64_t max_batches_;
  std::atomic<uint64_t> batches_served_{0};
  std::vector<uint8_t> pixels_;  // shared immutable payload
  std::vector<BatchItem> items_;
};

}  // namespace dlb
