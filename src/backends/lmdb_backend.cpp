#include "backends/lmdb_backend.h"

#include <cstring>
#include <optional>

#include "common/log.h"
#include "image/resize.h"
#include "storagedb/dataset_convert.h"
#include "telemetry/event_log.h"

namespace dlb {

LmdbBackend::LmdbBackend(const Manifest* manifest, const db::KvStore* db,
                         const BackendOptions& options, uint64_t max_images)
    : manifest_(manifest),
      db_(db),
      options_(options),
      max_images_(max_images),
      out_queue_(options.queue_depth * std::max(1, options.num_engines)) {
  DLB_CHECK(manifest_ != nullptr && db_ != nullptr);
  loader_ = std::make_unique<BatchLoader>(manifest_, options.batch_size,
                                          options.shuffle, options.seed);
}

LmdbBackend::~LmdbBackend() { Stop(); }

Status LmdbBackend::Start() {
  if (started_.exchange(true)) {
    return FailedPrecondition("backend already started");
  }
  const int n = std::max(1, options_.num_threads);
  active_workers_.store(n);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { Worker(static_cast<uint32_t>(i)); });
  }
  return Status::Ok();
}

std::vector<uint32_t> LmdbBackend::PullBatchIndices() {
  std::scoped_lock lock(loader_mu_);
  if (source_done_) return {};
  if (max_images_ > 0 && images_pulled_ >= max_images_) {
    source_done_ = true;
    return {};
  }
  auto batch = loader_->NextBatch();
  if (max_images_ > 0 && images_pulled_ + batch.size() > max_images_) {
    batch.resize(max_images_ - images_pulled_);
  }
  images_pulled_ += batch.size();
  if (batch.empty()) source_done_ = true;
  return batch;
}

void LmdbBackend::Worker(uint32_t worker) {
  const OutputSpec out = options_.ResolvedOutput();
  const size_t stride = out.SlotBytes();
  telemetry::Tracer* tracer =
      telemetry_ != nullptr ? telemetry_->tracer() : nullptr;
  telemetry::EventLog* events =
      telemetry_ != nullptr ? telemetry_->events() : nullptr;
  while (true) {
    telemetry::TraceContext trace;
    if (tracer != nullptr) trace = tracer->StartBatch();
    std::vector<uint32_t> indices = PullBatchIndices();
    if (indices.empty()) {
      if (tracer != nullptr) tracer->AbandonBatch(trace);
      break;
    }
    if (events != nullptr) {
      events->Log(telemetry::EventType::kBatchAdmitted, trace.batch_id,
                  worker);
    }

    // Assembly runs under a collect stage tag; per-item sections push their
    // own tag on top, so sampled stacks read "collect;fetch" etc.
    std::optional<prof::ScopedStageTag> collect_tag;
    collect_tag.emplace(static_cast<int>(telemetry::Stage::kCollect));
    const uint64_t assemble_start = telemetry_ ? telemetry::NowNs() : 0;
    const uint64_t assemble_cpu0 = telemetry_ ? prof::ThreadCpuNs() : 0;
    uint64_t staged_ns = 0;  // fetch + decode + resize, netted out of collect
    uint64_t staged_cpu_ns = 0;

    std::vector<uint8_t> storage(stride * indices.size());
    std::vector<BatchItem> items(indices.size());
    for (size_t i = 0; i < indices.size(); ++i) {
      const FileRecord& rec = manifest_->At(indices[i]);
      BatchItem& item = items[i];
      item.offset = static_cast<uint32_t>(i * stride);
      item.label = rec.label;
      // Shared reader path — this Get is where multi-engine contention
      // happens (shared_mutex + chained page walks).
      uint64_t t0 = telemetry_ ? telemetry::NowNs() : 0;
      uint64_t c0 = telemetry_ ? prof::ThreadCpuNs() : 0;
      auto value = [&] {
        prof::ScopedStageTag tag(static_cast<int>(telemetry::Stage::kFetch));
        return db_->Get(rec.name);
      }();
      uint64_t fetch_span = 0;
      if (telemetry_ != nullptr) {
        const uint64_t t1 = telemetry::NowNs();
        const uint64_t c1 = prof::ThreadCpuNs();
        fetch_span = telemetry_->RecordSpan(
            telemetry::Stage::kFetch, t0, t1, 1, trace,
            telemetry::Subsystem::kBackend, worker, c1 - c0);
        staged_ns += t1 - t0;
        staged_cpu_ns += c1 - c0;
      }
      if (!value.ok()) {
        failures_.Add();
        continue;
      }
      // "Decode" here is datum deserialisation: the DB stores pixels.
      t0 = telemetry_ ? telemetry::NowNs() : 0;
      c0 = telemetry_ ? prof::ThreadCpuNs() : 0;
      auto datum = [&] {
        prof::ScopedStageTag tag(static_cast<int>(telemetry::Stage::kDecode));
        return db::DecodeDatum(value.value());
      }();
      uint64_t decode_span = 0;
      if (telemetry_ != nullptr) {
        const uint64_t t1 = telemetry::NowNs();
        const uint64_t c1 = prof::ThreadCpuNs();
        decode_span = telemetry_->RecordSpan(
            telemetry::Stage::kDecode, t0, t1, 1,
            fetch_span != 0 ? trace.Child(fetch_span) : trace,
            telemetry::Subsystem::kBackend, worker, c1 - c0);
        staged_ns += t1 - t0;
        staged_cpu_ns += c1 - c0;
      }
      if (!datum.ok()) {
        failures_.Add();
        continue;
      }
      Image img = std::move(datum.value().second);
      if (img.Width() != out.width || img.Height() != out.height) {
        t0 = telemetry_ ? telemetry::NowNs() : 0;
        c0 = telemetry_ ? prof::ThreadCpuNs() : 0;
        auto resized = [&] {
          prof::ScopedStageTag tag(
              static_cast<int>(telemetry::Stage::kResize));
          return out.fit == FitMode::kCoverCrop
                     ? ResizeCoverCrop(img, out.width, out.height,
                                       ResizeFilter::kBilinear)
                     : Resize(img, out.width, out.height,
                              ResizeFilter::kBilinear);
        }();
        if (telemetry_ != nullptr) {
          const uint64_t t1 = telemetry::NowNs();
          const uint64_t c1 = prof::ThreadCpuNs();
          telemetry_->RecordSpan(
              telemetry::Stage::kResize, t0, t1, 1,
              decode_span != 0 ? trace.Child(decode_span) : trace,
              telemetry::Subsystem::kBackend, worker, c1 - c0);
          staged_ns += t1 - t0;
          staged_cpu_ns += c1 - c0;
        }
        if (!resized.ok()) {
          failures_.Add();
          continue;
        }
        img = std::move(resized).value();
      }
      if (img.SizeBytes() > stride) {
        failures_.Add();
        continue;
      }
      std::memcpy(storage.data() + item.offset, img.Data(), img.SizeBytes());
      item.bytes = static_cast<uint32_t>(img.SizeBytes());
      item.width = static_cast<uint16_t>(img.Width());
      item.height = static_cast<uint16_t>(img.Height());
      item.channels = static_cast<uint8_t>(img.Channels());
      item.ok = true;
      served_.Add();
    }
    auto batch =
        std::make_unique<PreprocessBatch>(std::move(items), std::move(storage));
    batch->SetTrace(trace);
    if (telemetry_ != nullptr) {
      const uint64_t busy = telemetry::NowNs() - assemble_start;
      const uint64_t assemble_cpu = prof::ThreadCpuNs() - assemble_cpu0;
      const uint64_t overhead = busy > staged_ns ? busy - staged_ns : 0;
      const uint64_t overhead_cpu =
          assemble_cpu > staged_cpu_ns ? assemble_cpu - staged_cpu_ns : 0;
      telemetry_->RecordSpan(telemetry::Stage::kCollect, assemble_start,
                             assemble_start + overhead, indices.size(), trace,
                             telemetry::Subsystem::kBackend, worker,
                             overhead_cpu);
    }
    collect_tag.reset();
    telemetry::StageTimer dispatch_timer(telemetry::Stage::kDispatch);
    const bool pushed = out_queue_.Push(std::move(batch)).ok();
    if (telemetry_ != nullptr) {
      telemetry_->RecordTimed(dispatch_timer, indices.size(), trace,
                              telemetry::Subsystem::kBackend, worker);
      if (events != nullptr) {
        events->Log(pushed ? telemetry::EventType::kBatchDispatched
                           : telemetry::EventType::kBatchDropped,
                    trace.batch_id, pushed ? 0 : /*reason: closed*/ 1);
      }
      if (!pushed && tracer != nullptr) tracer->AbandonBatch(trace);
    }
    if (!pushed) return;
  }
  if (active_workers_.fetch_sub(1) == 1) out_queue_.Close();
}

Result<BatchPtr> LmdbBackend::NextBatch(int /*engine*/) {
  auto batch = out_queue_.Pop();
  if (!batch.has_value()) return Closed("record stream ended");
  return std::move(*batch);
}

void LmdbBackend::Stop() {
  out_queue_.Close();
  workers_.clear();
}

}  // namespace dlb
