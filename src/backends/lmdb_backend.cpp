#include "backends/lmdb_backend.h"

#include <cstring>

#include "common/log.h"
#include "image/resize.h"
#include "storagedb/dataset_convert.h"
#include "telemetry/event_log.h"

namespace dlb {

LmdbBackend::LmdbBackend(const Manifest* manifest, const db::KvStore* db,
                         const BackendOptions& options, uint64_t max_images)
    : manifest_(manifest),
      db_(db),
      options_(options),
      max_images_(max_images),
      out_queue_(options.queue_depth * std::max(1, options.num_engines)) {
  DLB_CHECK(manifest_ != nullptr && db_ != nullptr);
  loader_ = std::make_unique<BatchLoader>(manifest_, options.batch_size,
                                          options.shuffle, options.seed);
}

LmdbBackend::~LmdbBackend() { Stop(); }

Status LmdbBackend::Start() {
  if (started_.exchange(true)) {
    return FailedPrecondition("backend already started");
  }
  const int n = std::max(1, options_.num_threads);
  active_workers_.store(n);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { Worker(static_cast<uint32_t>(i)); });
  }
  return Status::Ok();
}

std::vector<uint32_t> LmdbBackend::PullBatchIndices() {
  std::scoped_lock lock(loader_mu_);
  if (source_done_) return {};
  if (max_images_ > 0 && images_pulled_ >= max_images_) {
    source_done_ = true;
    return {};
  }
  auto batch = loader_->NextBatch();
  if (max_images_ > 0 && images_pulled_ + batch.size() > max_images_) {
    batch.resize(max_images_ - images_pulled_);
  }
  images_pulled_ += batch.size();
  if (batch.empty()) source_done_ = true;
  return batch;
}

void LmdbBackend::Worker(uint32_t worker) {
  const OutputSpec out = options_.ResolvedOutput();
  const size_t stride = out.SlotBytes();
  telemetry::Tracer* tracer =
      telemetry_ != nullptr ? telemetry_->tracer() : nullptr;
  telemetry::EventLog* events =
      telemetry_ != nullptr ? telemetry_->events() : nullptr;
  while (true) {
    telemetry::TraceContext trace;
    if (tracer != nullptr) trace = tracer->StartBatch();
    std::vector<uint32_t> indices = PullBatchIndices();
    if (indices.empty()) {
      if (tracer != nullptr) tracer->AbandonBatch(trace);
      break;
    }
    if (events != nullptr) {
      events->Log(telemetry::EventType::kBatchAdmitted, trace.batch_id,
                  worker);
    }

    const uint64_t assemble_start = telemetry_ ? telemetry::NowNs() : 0;
    uint64_t staged_ns = 0;  // fetch + decode + resize, netted out of collect

    std::vector<uint8_t> storage(stride * indices.size());
    std::vector<BatchItem> items(indices.size());
    for (size_t i = 0; i < indices.size(); ++i) {
      const FileRecord& rec = manifest_->At(indices[i]);
      BatchItem& item = items[i];
      item.offset = static_cast<uint32_t>(i * stride);
      item.label = rec.label;
      // Shared reader path — this Get is where multi-engine contention
      // happens (shared_mutex + chained page walks).
      uint64_t t0 = telemetry_ ? telemetry::NowNs() : 0;
      auto value = db_->Get(rec.name);
      uint64_t fetch_span = 0;
      if (telemetry_ != nullptr) {
        const uint64_t t1 = telemetry::NowNs();
        fetch_span = telemetry_->RecordSpan(
            telemetry::Stage::kFetch, t0, t1, 1, trace,
            telemetry::Subsystem::kBackend, worker);
        staged_ns += t1 - t0;
      }
      if (!value.ok()) {
        failures_.Add();
        continue;
      }
      // "Decode" here is datum deserialisation: the DB stores pixels.
      t0 = telemetry_ ? telemetry::NowNs() : 0;
      auto datum = db::DecodeDatum(value.value());
      uint64_t decode_span = 0;
      if (telemetry_ != nullptr) {
        const uint64_t t1 = telemetry::NowNs();
        decode_span = telemetry_->RecordSpan(
            telemetry::Stage::kDecode, t0, t1, 1,
            fetch_span != 0 ? trace.Child(fetch_span) : trace,
            telemetry::Subsystem::kBackend, worker);
        staged_ns += t1 - t0;
      }
      if (!datum.ok()) {
        failures_.Add();
        continue;
      }
      Image img = std::move(datum.value().second);
      if (img.Width() != out.width || img.Height() != out.height) {
        t0 = telemetry_ ? telemetry::NowNs() : 0;
        auto resized =
            out.fit == FitMode::kCoverCrop
                ? ResizeCoverCrop(img, out.width, out.height,
                                  ResizeFilter::kBilinear)
                : Resize(img, out.width, out.height, ResizeFilter::kBilinear);
        if (telemetry_ != nullptr) {
          const uint64_t t1 = telemetry::NowNs();
          telemetry_->RecordSpan(
              telemetry::Stage::kResize, t0, t1, 1,
              decode_span != 0 ? trace.Child(decode_span) : trace,
              telemetry::Subsystem::kBackend, worker);
          staged_ns += t1 - t0;
        }
        if (!resized.ok()) {
          failures_.Add();
          continue;
        }
        img = std::move(resized).value();
      }
      if (img.SizeBytes() > stride) {
        failures_.Add();
        continue;
      }
      std::memcpy(storage.data() + item.offset, img.Data(), img.SizeBytes());
      item.bytes = static_cast<uint32_t>(img.SizeBytes());
      item.width = static_cast<uint16_t>(img.Width());
      item.height = static_cast<uint16_t>(img.Height());
      item.channels = static_cast<uint8_t>(img.Channels());
      item.ok = true;
      served_.Add();
    }
    if (telemetry_ != nullptr) {
      const uint64_t busy = telemetry::NowNs() - assemble_start;
      const uint64_t overhead = busy > staged_ns ? busy - staged_ns : 0;
      telemetry_->RecordSpan(telemetry::Stage::kCollect, assemble_start,
                             assemble_start + overhead, indices.size(), trace,
                             telemetry::Subsystem::kBackend, worker);
    }
    auto batch =
        std::make_unique<PreprocessBatch>(std::move(items), std::move(storage));
    batch->SetTrace(trace);
    const uint64_t dispatch_start = telemetry_ ? telemetry::NowNs() : 0;
    const bool pushed = out_queue_.Push(std::move(batch)).ok();
    if (telemetry_ != nullptr) {
      telemetry_->RecordSpan(telemetry::Stage::kDispatch, dispatch_start,
                             telemetry::NowNs(), indices.size(), trace,
                             telemetry::Subsystem::kBackend, worker);
      if (events != nullptr) {
        events->Log(pushed ? telemetry::EventType::kBatchDispatched
                           : telemetry::EventType::kBatchDropped,
                    trace.batch_id, pushed ? 0 : /*reason: closed*/ 1);
      }
      if (!pushed && tracer != nullptr) tracer->AbandonBatch(trace);
    }
    if (!pushed) return;
  }
  if (active_workers_.fetch_sub(1) == 1) out_queue_.Close();
}

Result<BatchPtr> LmdbBackend::NextBatch(int /*engine*/) {
  auto batch = out_queue_.Pop();
  if (!batch.has_value()) return Closed("record stream ended");
  return std::move(*batch);
}

void LmdbBackend::Stop() {
  out_queue_.Close();
  workers_.clear();
}

}  // namespace dlb
