// CPU-based online preprocessing backend — the paper's primary baseline.
//
// A pool of decode threads pulls encoded samples in epoch order, runs the
// full software decode + resize on the CPU, and queues assembled batches
// for the engines. This is what "burning CPU cores" means: throughput
// scales with num_threads at ~300 images/s/core for ILSVRC-sized JPEGs.
#pragma once

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "backends/backend.h"
#include "common/stats.h"
#include "dataplane/blob_store.h"
#include "dataplane/manifest.h"
#include "hostbridge/data_collector.h"

namespace dlb {

/// Owned copy of one collected sample (the bytes must outlive the decode,
/// which runs outside the collector lock).
struct OwnedSample {
  Bytes bytes;
  int32_t label = 0;
  uint64_t request_id = 0;
};

class CpuBackend : public PreprocessBackend {
 public:
  /// Streams from `collector` (disk or network path). `max_images` bounds
  /// the run (0 = until the collector closes).
  CpuBackend(DataCollector* collector, const BackendOptions& options,
             uint64_t max_images = 0);
  ~CpuBackend() override;

  Status Start() override;
  Result<BatchPtr> NextBatch(int engine) override;
  void Stop() override;
  std::string Name() const override { return "cpu"; }
  std::string Describe() const override;

  uint64_t ImagesDecoded() const { return decoded_.Value(); }
  uint64_t DecodeFailures() const { return failures_.Value(); }

 private:
  void Worker(uint32_t worker);
  /// Pull up to batch_size samples under the collector lock. Empty result
  /// means the stream ended.
  std::vector<OwnedSample> PullBatch();

  DataCollector* collector_;
  BackendOptions options_;
  uint64_t max_images_;
  uint64_t images_pulled_ = 0;
  bool source_done_ = false;

  std::mutex collector_mu_;
  BoundedQueue<BatchPtr> out_queue_;
  std::vector<std::jthread> workers_;
  std::atomic<int> active_workers_{0};
  std::atomic<bool> started_{false};
  Counter decoded_;
  Counter failures_;
};

}  // namespace dlb
