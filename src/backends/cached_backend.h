// First-epoch memory cache — the hybrid service of §3.1.
//
// Wraps any backend: epoch 0 batches are served from the inner backend and
// deep-copied into memory (bounded by a byte budget); once the inner stream
// ends, subsequent epochs replay the cache with zero preprocessing cost.
// This is why every backend trains LeNet-5/MNIST at full speed in Fig. 5(a)
// — the dataset fits in memory after the first epoch — while ILSVRC does
// not fit and has to be re-decoded every epoch.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "backends/backend.h"
#include "common/stats.h"

namespace dlb {

class CachedBackend : public PreprocessBackend {
 public:
  /// Takes ownership of `inner`. `cache_budget_bytes` caps the cache; when
  /// the first epoch exceeds it, caching is abandoned (the ILSVRC case) and
  /// NextBatch keeps delegating forever.
  CachedBackend(std::unique_ptr<PreprocessBackend> inner,
                uint64_t cache_budget_bytes);

  Status Start() override;
  Result<BatchPtr> NextBatch(int engine) override;
  void Stop() override;
  std::string Name() const override;
  std::string Describe() const override;

  /// Records cache counters into the sink and forwards it to the wrapped
  /// backend, whose stages keep reporting through the same registry.
  void AttachTelemetry(telemetry::Telemetry* telemetry) override;

  bool CacheComplete() const { return cache_complete_.load(); }
  uint64_t CachedBytes() const { return cached_bytes_.load(); }
  uint64_t CacheHits() const { return hits_.Value(); }

 private:
  struct CachedBatch {
    std::vector<BatchItem> items;
    std::vector<uint8_t> storage;
  };

  std::unique_ptr<PreprocessBackend> inner_;
  uint64_t budget_;
  std::mutex mu_;
  std::vector<std::unique_ptr<CachedBatch>> cache_;
  std::atomic<bool> cache_complete_{false};
  bool cache_abandoned_ = false;
  std::atomic<uint64_t> cached_bytes_{0};
  std::atomic<size_t> replay_cursor_{0};
  Counter hits_;
};

}  // namespace dlb
