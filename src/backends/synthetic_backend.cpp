#include "backends/synthetic_backend.h"

namespace dlb {

SyntheticBackend::SyntheticBackend(const BackendOptions& options,
                                   uint64_t max_batches)
    : options_(options), max_batches_(max_batches) {
  const OutputSpec out = options_.ResolvedOutput();
  const size_t stride = out.SlotBytes();
  pixels_.assign(stride * options_.batch_size, 127);
  items_.resize(options_.batch_size);
  for (size_t i = 0; i < items_.size(); ++i) {
    BatchItem& item = items_[i];
    item.offset = static_cast<uint32_t>(i * stride);
    item.bytes = static_cast<uint32_t>(stride);
    item.width = static_cast<uint16_t>(out.width);
    item.height = static_cast<uint16_t>(out.height);
    item.channels = static_cast<uint8_t>(out.channels);
    item.label = static_cast<int32_t>(i % 10);
    item.ok = true;
  }
}

Status SyntheticBackend::Start() { return Status::Ok(); }

Result<BatchPtr> SyntheticBackend::NextBatch(int /*engine*/) {
  if (max_batches_ > 0) {
    const uint64_t n = batches_served_.fetch_add(1) + 1;
    if (n > max_batches_) return Closed("synthetic budget exhausted");
  }
  // Borrowed storage pointing at the shared immutable payload; no recycle
  // action is needed. The collect span bounds the staging cost every other
  // backend pays: this is the "upper boundary" stage profile.
  telemetry::Tracer* tracer =
      telemetry_ != nullptr ? telemetry_->tracer() : nullptr;
  telemetry::TraceContext trace;
  if (tracer != nullptr) trace = tracer->StartBatch();
  telemetry::StageTimer collect_timer(telemetry::Stage::kCollect);
  auto batch =
      std::make_unique<PreprocessBatch>(items_, pixels_.data(), nullptr);
  batch->SetTrace(trace);
  if (telemetry_ != nullptr) {
    telemetry_->RecordTimed(collect_timer, items_.size(), trace,
                            telemetry::Subsystem::kBackend);
  }
  return batch;
}

}  // namespace dlb
