#include "backends/cpu_backend.h"

#include <chrono>
#include <cstring>
#include <optional>
#include <thread>

#include "codec/jpeg_decoder.h"
#include "common/log.h"
#include "common/simd.h"
#include "image/resize.h"
#include "telemetry/event_log.h"

namespace dlb {

CpuBackend::CpuBackend(DataCollector* collector, const BackendOptions& options,
                       uint64_t max_images)
    : collector_(collector),
      options_(options),
      max_images_(max_images),
      out_queue_(options.queue_depth * std::max(1, options.num_engines)) {
  DLB_CHECK(collector_ != nullptr);
}

CpuBackend::~CpuBackend() { Stop(); }

std::string CpuBackend::Describe() const {
  const OutputSpec out = options_.ResolvedOutput();
  return "cpu(threads=" + std::to_string(options_.num_threads) +
         ", batch=" + std::to_string(options_.batch_size) + ", out=" +
         std::to_string(out.width) + "x" + std::to_string(out.height) + "x" +
         std::to_string(out.channels) +
         (out.fit == FitMode::kCoverCrop ? ", fit=cover" : ", fit=stretch") +
         (options_.decode_to_scale ? ", decode_to_scale" : "") +
         ", kernels=" + simd::KernelInfo() + ")";
}

Status CpuBackend::Start() {
  if (started_.exchange(true)) {
    return FailedPrecondition("backend already started");
  }
  const int n = std::max(1, options_.num_threads);
  active_workers_.store(n);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { Worker(static_cast<uint32_t>(i)); });
  }
  return Status::Ok();
}

std::vector<OwnedSample> CpuBackend::PullBatch() {
  // The fetch span is recorded by Worker() around this call — it needs the
  // span id to parent the decode spans, which ScopedSpan cannot return.
  std::scoped_lock lock(collector_mu_);
  std::vector<OwnedSample> out;
  if (source_done_) {
    return out;
  }
  out.reserve(options_.batch_size);
  while (out.size() < options_.batch_size) {
    if (max_images_ > 0 && images_pulled_ >= max_images_) {
      source_done_ = true;
      break;
    }
    // First sample blocks (nothing to flush yet); afterwards a dry
    // streaming source bounds the wait so a partial batch ships instead of
    // parking queued requests until batch fill.
    auto file = out.empty() ? collector_->Next()
                            : collector_->NextFor(options_.linger_ms);
    if (!file.ok()) {
      if (file.status().code() != StatusCode::kUnavailable) {
        source_done_ = true;
      }
      break;
    }
    OwnedSample sample;
    sample.bytes.assign(file.value().bytes.begin(), file.value().bytes.end());
    sample.label = file.value().label;
    sample.request_id = file.value().request_id;
    out.push_back(std::move(sample));
    ++images_pulled_;
  }
  return out;
}

void CpuBackend::Worker(uint32_t worker) {
  const OutputSpec out = options_.ResolvedOutput();
  const size_t stride = out.SlotBytes();
  // Decode-to-scale: ask the decoder for the largest DCT scale that still
  // covers the output geometry; the residual resize below is then a small
  // downscale instead of a full-resolution one.
  jpeg::DecodeOptions decode_opts;
  if (options_.decode_to_scale) {
    decode_opts.target_w = out.width;
    decode_opts.target_h = out.height;
  }
  telemetry::Tracer* tracer =
      telemetry_ != nullptr ? telemetry_->tracer() : nullptr;
  telemetry::EventLog* events =
      telemetry_ != nullptr ? telemetry_->events() : nullptr;
  Counter* decode_errors =
      telemetry_ != nullptr ? telemetry_->Registry().GetCounter("decode.errors")
                            : nullptr;
  auto record_failure = [&](BatchItem& item, StatusCode code,
                            uint64_t batch_id, size_t slot) {
    failures_.Add();
    item.error = code;
    if (decode_errors != nullptr) decode_errors->Add();
    if (events != nullptr) {
      events->Log(telemetry::EventType::kDecodeError, batch_id, slot,
                  static_cast<uint64_t>(code));
    }
  };
  while (true) {
    // Admit the batch before pulling: the fetch belongs to its trace. If
    // the stream turned out to be drained, the admission is retracted.
    telemetry::TraceContext trace;
    if (tracer != nullptr) trace = tracer->StartBatch();
    std::vector<OwnedSample> samples;
    uint64_t fetch_span = 0;
    {
      telemetry::StageTimer fetch(telemetry::Stage::kFetch);
      samples = PullBatch();
      if (!samples.empty() && telemetry_ != nullptr) {
        fetch_span =
            telemetry_->RecordTimed(fetch, samples.size(), trace,
                                    telemetry::Subsystem::kBackend, worker);
      }
    }
    if (samples.empty()) {
      if (tracer != nullptr) tracer->AbandonBatch(trace);
      break;
    }
    if (events != nullptr) {
      events->Log(telemetry::EventType::kBatchAdmitted, trace.batch_id,
                  worker);
    }
    const telemetry::TraceContext fetch_ctx =
        fetch_span != 0 ? trace.Child(fetch_span) : trace;

    // Batch assembly time splits into per-image decode/resize spans plus a
    // collect span for the staging remainder (allocation, memcpy, metadata).
    // The whole assembly runs under a collect stage tag (popped before the
    // dispatch push), so sampled stacks read "collect;decode" /
    // "collect;resize" while inside the kernels.
    std::optional<prof::ScopedStageTag> collect_tag;
    collect_tag.emplace(static_cast<int>(telemetry::Stage::kCollect));
    const uint64_t assemble_start = telemetry_ ? telemetry::NowNs() : 0;
    const uint64_t assemble_cpu0 = telemetry_ ? prof::ThreadCpuNs() : 0;
    uint64_t decode_ns = 0;
    uint64_t resize_ns = 0;
    uint64_t staged_cpu_ns = 0;

    std::vector<uint8_t> storage(stride * samples.size());
    std::vector<BatchItem> items(samples.size());
    for (size_t i = 0; i < samples.size(); ++i) {
      BatchItem& item = items[i];
      item.offset = static_cast<uint32_t>(i * stride);
      item.label = samples[i].label;
      item.cookie = samples[i].request_id;
      if (fault_injector_ != nullptr) {
        if (fault_injector_->Fire(fault::FaultKind::kCorruptJpeg)) {
          samples[i].bytes = fault_injector_->Corrupt(
              ByteSpan(samples[i].bytes.data(), samples[i].bytes.size()));
          if (events != nullptr) {
            events->Log(telemetry::EventType::kFaultInjected, trace.batch_id,
                        static_cast<uint64_t>(fault::FaultKind::kCorruptJpeg),
                        i);
          }
        }
        if (fault_injector_->Fire(fault::FaultKind::kLatencySpike)) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(fault_injector_->SpikeNs()));
        }
      }
      uint64_t t0 = telemetry_ ? telemetry::NowNs() : 0;
      uint64_t c0 = telemetry_ ? prof::ThreadCpuNs() : 0;
      auto decoded = [&] {
        prof::ScopedStageTag tag(static_cast<int>(telemetry::Stage::kDecode));
        return jpeg::Decode(
            ByteSpan(samples[i].bytes.data(), samples[i].bytes.size()),
            decode_opts);
      }();
      uint64_t decode_span = 0;
      if (telemetry_ != nullptr) {
        const uint64_t t1 = telemetry::NowNs();
        const uint64_t c1 = prof::ThreadCpuNs();
        decode_span = telemetry_->RecordSpan(
            telemetry::Stage::kDecode, t0, t1, 1, fetch_ctx,
            telemetry::Subsystem::kBackend, worker, c1 - c0);
        decode_ns += t1 - t0;
        staged_cpu_ns += c1 - c0;
      }
      if (!decoded.ok()) {
        record_failure(item, decoded.status().code(), trace.batch_id, i);
        continue;
      }
      t0 = telemetry_ ? telemetry::NowNs() : 0;
      c0 = telemetry_ ? prof::ThreadCpuNs() : 0;
      Image& source = decoded.value().image;
      // Skip the residual resize when decode-to-scale landed exactly on the
      // output geometry — the same condition the FPGA resizer unit applies,
      // keeping the two backends byte-identical.
      auto resized = [&] {
        prof::ScopedStageTag tag(static_cast<int>(telemetry::Stage::kResize));
        return source.Width() == out.width && source.Height() == out.height
                   ? Result<Image>(std::move(source))
                   : (out.fit == FitMode::kCoverCrop
                          ? ResizeCoverCrop(source, out.width, out.height,
                                            ResizeFilter::kArea)
                          : Resize(source, out.width, out.height,
                                   ResizeFilter::kArea));
      }();
      if (telemetry_ != nullptr) {
        const uint64_t t1 = telemetry::NowNs();
        const uint64_t c1 = prof::ThreadCpuNs();
        telemetry_->RecordSpan(
            telemetry::Stage::kResize, t0, t1, 1,
            decode_span != 0 ? trace.Child(decode_span) : trace,
            telemetry::Subsystem::kBackend, worker, c1 - c0);
        resize_ns += t1 - t0;
        staged_cpu_ns += c1 - c0;
      }
      if (!resized.ok()) {
        record_failure(item, resized.status().code(), trace.batch_id, i);
        continue;
      }
      const Image& img = resized.value();
      // Grayscale sources produce 1-channel output; that still fits the
      // slot (slot stride assumes the max channel count).
      if (img.SizeBytes() > stride) {
        record_failure(item, StatusCode::kResourceExhausted, trace.batch_id,
                       i);
        continue;
      }
      std::memcpy(storage.data() + item.offset, img.Data(), img.SizeBytes());
      item.bytes = static_cast<uint32_t>(img.SizeBytes());
      item.width = static_cast<uint16_t>(img.Width());
      item.height = static_cast<uint16_t>(img.Height());
      item.channels = static_cast<uint8_t>(img.Channels());
      item.ok = true;
      decoded_.Add();
    }
    auto batch =
        std::make_unique<PreprocessBatch>(std::move(items), std::move(storage));
    batch->SetTrace(trace);
    if (telemetry_ != nullptr) {
      // The collect span carries the assembly *overhead* (everything but the
      // per-image kernel spans), both in wall and on-CPU terms.
      const uint64_t busy = telemetry::NowNs() - assemble_start;
      const uint64_t assemble_cpu = prof::ThreadCpuNs() - assemble_cpu0;
      const uint64_t stage_ns = decode_ns + resize_ns;
      const uint64_t overhead = busy > stage_ns ? busy - stage_ns : 0;
      const uint64_t overhead_cpu =
          assemble_cpu > staged_cpu_ns ? assemble_cpu - staged_cpu_ns : 0;
      telemetry_->RecordSpan(telemetry::Stage::kCollect, assemble_start,
                             assemble_start + overhead, samples.size(), trace,
                             telemetry::Subsystem::kBackend, worker,
                             overhead_cpu);
    }
    collect_tag.reset();
    telemetry::StageTimer dispatch_timer(telemetry::Stage::kDispatch);
    const bool pushed = out_queue_.Push(std::move(batch)).ok();
    if (telemetry_ != nullptr) {
      telemetry_->RecordTimed(dispatch_timer, samples.size(), trace,
                              telemetry::Subsystem::kBackend, worker);
      if (events != nullptr) {
        events->Log(pushed ? telemetry::EventType::kBatchDispatched
                           : telemetry::EventType::kBatchDropped,
                    trace.batch_id, pushed ? 0 : /*reason: closed*/ 1);
      }
      if (!pushed && tracer != nullptr) tracer->AbandonBatch(trace);
    }
    if (!pushed) return;  // shut down
  }
  // Last worker out closes the queue so engines see end-of-stream.
  if (active_workers_.fetch_sub(1) == 1) out_queue_.Close();
}

Result<BatchPtr> CpuBackend::NextBatch(int /*engine*/) {
  auto batch = out_queue_.Pop();
  if (!batch.has_value()) return Closed("sample stream ended");
  return std::move(*batch);
}

void CpuBackend::Stop() {
  out_queue_.Close();
  workers_.clear();
}

}  // namespace dlb
