#include "backends/cpu_backend.h"

#include <cstring>

#include "codec/jpeg_decoder.h"
#include "common/log.h"
#include "image/resize.h"

namespace dlb {

CpuBackend::CpuBackend(DataCollector* collector, const BackendOptions& options,
                       uint64_t max_images)
    : collector_(collector),
      options_(options),
      max_images_(max_images),
      out_queue_(options.queue_depth * std::max(1, options.num_engines)) {
  DLB_CHECK(collector_ != nullptr);
}

CpuBackend::~CpuBackend() { Stop(); }

Status CpuBackend::Start() {
  if (started_.exchange(true)) {
    return FailedPrecondition("backend already started");
  }
  const int n = std::max(1, options_.num_threads);
  active_workers_.store(n);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { Worker(); });
  }
  return Status::Ok();
}

std::vector<OwnedSample> CpuBackend::PullBatch() {
  std::scoped_lock lock(collector_mu_);
  std::vector<OwnedSample> out;
  if (source_done_) return out;
  out.reserve(options_.batch_size);
  while (out.size() < options_.batch_size) {
    if (max_images_ > 0 && images_pulled_ >= max_images_) {
      source_done_ = true;
      break;
    }
    auto file = collector_->Next();
    if (!file.ok()) {
      source_done_ = true;
      break;
    }
    OwnedSample sample;
    sample.bytes.assign(file.value().bytes.begin(), file.value().bytes.end());
    sample.label = file.value().label;
    sample.request_id = file.value().request_id;
    out.push_back(std::move(sample));
    ++images_pulled_;
  }
  return out;
}

void CpuBackend::Worker() {
  const size_t stride = options_.SlotStride();
  while (true) {
    std::vector<OwnedSample> samples = PullBatch();
    if (samples.empty()) break;

    std::vector<uint8_t> storage(stride * samples.size());
    std::vector<BatchItem> items(samples.size());
    for (size_t i = 0; i < samples.size(); ++i) {
      BatchItem& item = items[i];
      item.offset = static_cast<uint32_t>(i * stride);
      item.label = samples[i].label;
      item.cookie = samples[i].request_id;
      auto decoded =
          jpeg::Decode(ByteSpan(samples[i].bytes.data(), samples[i].bytes.size()));
      if (!decoded.ok()) {
        failures_.Add();
        continue;
      }
      auto resized =
          options_.aspect_preserving_crop
              ? ResizeCoverCrop(decoded.value(), options_.resize_w,
                                options_.resize_h, ResizeFilter::kArea)
              : Resize(decoded.value(), options_.resize_w, options_.resize_h,
                       ResizeFilter::kArea);
      if (!resized.ok()) {
        failures_.Add();
        continue;
      }
      const Image& img = resized.value();
      // Grayscale sources produce 1-channel output; that still fits the
      // slot (slot stride assumes the max channel count).
      if (img.SizeBytes() > stride) {
        failures_.Add();
        continue;
      }
      std::memcpy(storage.data() + item.offset, img.Data(), img.SizeBytes());
      item.bytes = static_cast<uint32_t>(img.SizeBytes());
      item.width = static_cast<uint16_t>(img.Width());
      item.height = static_cast<uint16_t>(img.Height());
      item.channels = static_cast<uint8_t>(img.Channels());
      item.ok = true;
      decoded_.Add();
    }
    auto batch =
        std::make_unique<PreprocessBatch>(std::move(items), std::move(storage));
    if (!out_queue_.Push(std::move(batch)).ok()) return;  // shut down
  }
  // Last worker out closes the queue so engines see end-of-stream.
  if (active_workers_.fetch_sub(1) == 1) out_queue_.Close();
}

Result<BatchPtr> CpuBackend::NextBatch(int /*engine*/) {
  auto batch = out_queue_.Pop();
  if (!batch.has_value()) return Closed("sample stream ended");
  return std::move(*batch);
}

void CpuBackend::Stop() {
  out_queue_.Close();
  workers_.clear();
}

}  // namespace dlb
