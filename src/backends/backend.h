// The preprocessing-backend abstraction (§3.1, §4.2).
//
// A backend turns a stream of encoded samples into decoded, resized,
// batch-granular pixel data that a compute engine consumes. DLBooster, the
// CPU-based baseline and the LMDB-style offline baseline all implement this
// interface, so an engine (or the core Pipeline API) can swap them with one
// line — the "coexist with other preprocessing backends" property the paper
// demonstrates on NVCaffe and TensorRT.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "hostbridge/hugepage_pool.h"
#include "image/image.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace dlb {

/// Non-owning view of one decoded sample inside a batch.
struct ImageRef {
  const uint8_t* data = nullptr;  // interleaved HWC pixels
  int width = 0;
  int height = 0;
  int channels = 0;
  int32_t label = 0;
  uint64_t cookie = 0;  // request id on the inference path
  bool ok = false;      // decode succeeded
  /// Failure category when !ok (kCorruptData for bad inputs, kUnavailable
  /// for device errors that exhausted their retries, ...).
  StatusCode error = StatusCode::kOk;

  size_t SizeBytes() const {
    return static_cast<size_t>(width) * height * channels;
  }
  /// Deep copy into an Image (tests / augmentation steps that mutate).
  Image ToImage() const;
};

/// Structured record of one skipped image: which request failed and why.
/// Surfaced by Pipeline::NextTensorBatch so engines can count and attribute
/// skips without aborting on them.
struct ImageError {
  uint64_t cookie = 0;
  int32_t label = 0;
  StatusCode code = StatusCode::kInternal;
};

/// One decoded batch. Destroying the batch recycles its memory to whatever
/// pool produced it (pool buffer, device buffer, or owned heap storage).
class PreprocessBatch {
 public:
  /// Borrowed storage: pixels live at `base` with per-item offsets; the
  /// recycle callback runs on destruction.
  PreprocessBatch(std::vector<BatchItem> items, const uint8_t* base,
                  std::function<void()> recycle);

  /// Owned storage: the batch carries its own pixel arena.
  PreprocessBatch(std::vector<BatchItem> items, std::vector<uint8_t> storage);

  ~PreprocessBatch();
  PreprocessBatch(const PreprocessBatch&) = delete;
  PreprocessBatch& operator=(const PreprocessBatch&) = delete;

  size_t Size() const { return items_.size(); }
  ImageRef At(size_t i) const;

  /// Count of successfully decoded items.
  size_t OkCount() const;

  /// Batch trace context, stamped by the producing backend so the consumer
  /// (Pipeline::NextBatch) can close the batch's span tree. Disabled
  /// (trace_id == 0) when tracing is off.
  const telemetry::TraceContext& Trace() const { return trace_; }
  void SetTrace(const telemetry::TraceContext& trace) { trace_ = trace; }

 private:
  std::vector<BatchItem> items_;
  const uint8_t* base_;
  std::vector<uint8_t> storage_;
  std::function<void()> recycle_;
  telemetry::TraceContext trace_;
};

using BatchPtr = std::unique_ptr<PreprocessBatch>;

/// How a decoded image is fitted into the output geometry.
enum class FitMode {
  /// Plain resize to exactly (width, height); aspect ratio not preserved.
  kStretch,
  /// Aspect-preserving cover resize + centre crop (the ImageNet
  /// Resize+CenterCrop recipe).
  kCoverCrop,
};

/// The unified output contract of a preprocessing backend: every sample a
/// backend emits is exactly this geometry, so slot sizing, tensor packing
/// and engine-side reshapes all derive from one place.
struct OutputSpec {
  int width = 256;
  int height = 256;
  int channels = 3;  // 3 = RGB, 1 = grayscale
  FitMode fit = FitMode::kStretch;

  /// Bytes of one packed HWC sample — the per-slot stride in batch arenas
  /// and hugepage buffers.
  size_t SlotBytes() const {
    return static_cast<size_t>(width) * height * channels;
  }

  friend bool operator==(const OutputSpec& a, const OutputSpec& b) {
    return a.width == b.width && a.height == b.height &&
           a.channels == b.channels && a.fit == b.fit;
  }
};

struct BackendOptions {
  size_t batch_size = 32;
  /// The output contract (geometry + fit). Prefer setting this; the loose
  /// legacy fields below survive as a deprecated shim.
  OutputSpec output;
  int num_engines = 1;   // consumers pulling batches
  int num_threads = 4;   // decode parallelism (CPU/LMDB backends)
  uint64_t seed = 42;
  bool shuffle = true;
  size_t queue_depth = 4;  // decoded batches buffered per engine
  /// Decode JPEGs at a reduced DCT scale (1/2, 1/4, 1/8) chosen so the
  /// scaled image still covers the output geometry, then finish with a
  /// small residual resize. Cuts iDCT + resize work roughly by the square
  /// of the scale; outputs remain identical across backends but differ
  /// from full-resolution decode + resize (different low-pass filter).
  bool decode_to_scale = false;
  /// Streaming batch linger: when assembling a batch from a streaming
  /// source (the network path), wait at most this long for the next sample
  /// once the batch is non-empty, then flush the partial batch to the
  /// decoder. 0 (default) waits for a full batch — right for bulk sources,
  /// where arrival gaps mean "disk is slow", not "traffic is light". An
  /// online server MUST set this or a lone request parks until batch_size-1
  /// more arrive.
  uint64_t linger_ms = 0;

  /// Deprecated shim — pre-OutputSpec call sites set these loose fields.
  /// A legacy field wins over `output` only when it was moved off its
  /// default, so old and new call sites both keep working unchanged.
  /// [[deprecated]] in spirit; left warning-free so the seed builds stay
  /// clean while call sites migrate.
  int resize_w = 256;
  int resize_h = 256;
  int channels = 3;
  bool aspect_preserving_crop = false;

  /// The effective output contract: `output` overlaid with any legacy
  /// field that differs from its default.
  OutputSpec ResolvedOutput() const {
    OutputSpec spec = output;
    if (resize_w != 256) spec.width = resize_w;
    if (resize_h != 256) spec.height = resize_h;
    if (channels != 3) spec.channels = channels;
    if (aspect_preserving_crop) spec.fit = FitMode::kCoverCrop;
    return spec;
  }

  size_t SlotStride() const { return ResolvedOutput().SlotBytes(); }
};

class PreprocessBackend {
 public:
  virtual ~PreprocessBackend() = default;

  /// Spin up worker threads. Must be called exactly once before NextBatch.
  virtual Status Start() = 0;

  /// Pull the next decoded batch for `engine` (blocking). kClosed when the
  /// sample stream ended and every buffered batch was drained.
  virtual Result<BatchPtr> NextBatch(int engine) = 0;

  /// Stop all workers and release resources. Idempotent.
  virtual void Stop() = 0;

  virtual std::string Name() const = 0;

  /// One-line human-readable description of this backend's configuration
  /// ("cpu(threads=4, batch=32)"). Default: Name().
  virtual std::string Describe() const { return Name(); }

  /// Per-stage metric snapshots, in dataflow order. Default: whatever the
  /// attached telemetry recorded; empty when none is attached. Engines can
  /// introspect any backend uniformly through this.
  virtual std::vector<telemetry::StageSnapshot> Metrics() const;

  /// Attach a telemetry sink. Must happen before Start(); backends (and the
  /// components they own) record stage spans into it. Null detaches.
  virtual void AttachTelemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

  /// Attach a fault injector (tests, chaos runs). Must happen before
  /// Start(); backends query it at their injection points. Null detaches.
  virtual void AttachFaultInjector(fault::FaultInjector* injector) {
    fault_injector_ = injector;
  }

 protected:
  telemetry::Telemetry* telemetry_ = nullptr;
  fault::FaultInjector* fault_injector_ = nullptr;
};

}  // namespace dlb
