// The preprocessing-backend abstraction (§3.1, §4.2).
//
// A backend turns a stream of encoded samples into decoded, resized,
// batch-granular pixel data that a compute engine consumes. DLBooster, the
// CPU-based baseline and the LMDB-style offline baseline all implement this
// interface, so an engine (or the core Pipeline API) can swap them with one
// line — the "coexist with other preprocessing backends" property the paper
// demonstrates on NVCaffe and TensorRT.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "hostbridge/hugepage_pool.h"
#include "image/image.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace dlb {

/// Non-owning view of one decoded sample inside a batch.
struct ImageRef {
  const uint8_t* data = nullptr;  // interleaved HWC pixels
  int width = 0;
  int height = 0;
  int channels = 0;
  int32_t label = 0;
  uint64_t cookie = 0;  // request id on the inference path
  bool ok = false;      // decode succeeded
  /// Failure category when !ok (kCorruptData for bad inputs, kUnavailable
  /// for device errors that exhausted their retries, ...).
  StatusCode error = StatusCode::kOk;

  size_t SizeBytes() const {
    return static_cast<size_t>(width) * height * channels;
  }
  /// Deep copy into an Image (tests / augmentation steps that mutate).
  Image ToImage() const;
};

/// Structured record of one skipped image: which request failed and why.
/// Surfaced by Pipeline::NextTensorBatch so engines can count and attribute
/// skips without aborting on them.
struct ImageError {
  uint64_t cookie = 0;
  int32_t label = 0;
  StatusCode code = StatusCode::kInternal;
};

/// One decoded batch. Destroying the batch recycles its memory to whatever
/// pool produced it (pool buffer, device buffer, or owned heap storage).
class PreprocessBatch {
 public:
  /// Borrowed storage: pixels live at `base` with per-item offsets; the
  /// recycle callback runs on destruction.
  PreprocessBatch(std::vector<BatchItem> items, const uint8_t* base,
                  std::function<void()> recycle);

  /// Owned storage: the batch carries its own pixel arena.
  PreprocessBatch(std::vector<BatchItem> items, std::vector<uint8_t> storage);

  ~PreprocessBatch();
  PreprocessBatch(const PreprocessBatch&) = delete;
  PreprocessBatch& operator=(const PreprocessBatch&) = delete;

  size_t Size() const { return items_.size(); }
  ImageRef At(size_t i) const;

  /// Count of successfully decoded items.
  size_t OkCount() const;

  /// Batch trace context, stamped by the producing backend so the consumer
  /// (Pipeline::NextBatch) can close the batch's span tree. Disabled
  /// (trace_id == 0) when tracing is off.
  const telemetry::TraceContext& Trace() const { return trace_; }
  void SetTrace(const telemetry::TraceContext& trace) { trace_ = trace; }

 private:
  std::vector<BatchItem> items_;
  const uint8_t* base_;
  std::vector<uint8_t> storage_;
  std::function<void()> recycle_;
  telemetry::TraceContext trace_;
};

using BatchPtr = std::unique_ptr<PreprocessBatch>;

struct BackendOptions {
  size_t batch_size = 32;
  int resize_w = 256;
  int resize_h = 256;
  int channels = 3;
  int num_engines = 1;   // consumers pulling batches
  int num_threads = 4;   // decode parallelism (CPU/LMDB backends)
  uint64_t seed = 42;
  bool shuffle = true;
  size_t queue_depth = 4;  // decoded batches buffered per engine
  /// Aspect-preserving cover-resize + centre crop (ImageNet recipe) instead
  /// of a plain stretch to (resize_w, resize_h).
  bool aspect_preserving_crop = false;

  size_t SlotStride() const {
    return static_cast<size_t>(resize_w) * resize_h * channels;
  }
};

class PreprocessBackend {
 public:
  virtual ~PreprocessBackend() = default;

  /// Spin up worker threads. Must be called exactly once before NextBatch.
  virtual Status Start() = 0;

  /// Pull the next decoded batch for `engine` (blocking). kClosed when the
  /// sample stream ended and every buffered batch was drained.
  virtual Result<BatchPtr> NextBatch(int engine) = 0;

  /// Stop all workers and release resources. Idempotent.
  virtual void Stop() = 0;

  virtual std::string Name() const = 0;

  /// One-line human-readable description of this backend's configuration
  /// ("cpu(threads=4, batch=32)"). Default: Name().
  virtual std::string Describe() const { return Name(); }

  /// Per-stage metric snapshots, in dataflow order. Default: whatever the
  /// attached telemetry recorded; empty when none is attached. Engines can
  /// introspect any backend uniformly through this.
  virtual std::vector<telemetry::StageSnapshot> Metrics() const;

  /// Attach a telemetry sink. Must happen before Start(); backends (and the
  /// components they own) record stage spans into it. Null detaches.
  virtual void AttachTelemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

  /// Attach a fault injector (tests, chaos runs). Must happen before
  /// Start(); backends query it at their injection points. Null detaches.
  virtual void AttachFaultInjector(fault::FaultInjector* injector) {
    fault_injector_ = injector;
  }

 protected:
  telemetry::Telemetry* telemetry_ = nullptr;
  fault::FaultInjector* fault_injector_ = nullptr;
};

}  // namespace dlb
