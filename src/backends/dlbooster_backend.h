// DLBooster: the paper's contribution, assembled.
//
// Wires the full Fig. 3 stack together behind the PreprocessBackend
// interface: DataCollector (disk or NIC) -> FPGAReader (Algorithm 1) ->
// FPGA decoder (emulated device running the real decode stages) ->
// HugePage batch pool (Algorithm 2) -> Dispatcher (Algorithm 3) ->
// per-engine Trans Queues. Engines pull decoded batches; batch destruction
// recycles the device buffer — the recycle path of Fig. 3.
#pragma once

#include <memory>
#include <string>

#include "backends/backend.h"
#include "common/topology.h"
#include "fpga/fpga_device.h"
#include "hostbridge/data_collector.h"
#include "hostbridge/dispatcher.h"
#include "hostbridge/fpga_reader.h"
#include "hostbridge/hugepage_pool.h"
#include "hostbridge/steal_router.h"

namespace dlb {

struct DlboosterOptions {
  BackendOptions backend;
  fpga::FpgaDeviceOptions device;
  /// Host-side batch buffers in the HugePage pool.
  size_t pool_buffers = 6;
  /// Per-item copies in the dispatcher (ablation knob; default is the
  /// paper's large-block copy).
  bool per_item_copies = false;
  /// Decoder devices. "Plugging more FPGA devices" (§5.3) raises the
  /// decode bound: each device gets its own FPGAReader and (when > 1) its
  /// own shard of the data plane — a per-device HugePage arena and
  /// Free/Full queue pair — behind the work-stealing router; all share the
  /// sample stream and the dispatcher.
  int num_devices = 1;
  /// NUMA nodes the device shards are placed across (1 = flat memory).
  int numa_nodes = 1;
  /// Placement policy: "interleave" (round-robin shards across nodes) or
  /// "pack" (fill node 0 first).
  std::string placement = "interleave";
  /// Cross-device work stealing (multi-device only). Off = static
  /// sharding; a skewed shard then bounds throughput.
  bool steal_enabled = true;
  /// Steal only from shards backlogged beyond this depth.
  int steal_watermark = 4;
  /// Home-shard assignment for submitted commands: "local" or "rr".
  std::string assign_policy = "local";
};

class DlboosterBackend : public PreprocessBackend {
 public:
  /// `collector` feeds the FPGAReader; `max_images` is enforced upstream by
  /// the collector (wrap it with a bounded collector when needed).
  DlboosterBackend(DataCollector* collector, const DlboosterOptions& options);
  ~DlboosterBackend() override;

  Status Start() override;
  Result<BatchPtr> NextBatch(int engine) override;
  void Stop() override;
  std::string Name() const override { return "dlbooster"; }
  std::string Describe() const override;
  /// Fans the sink out to every component: per-device decode/resize spans
  /// and unit busy counters, reader fetch/collect spans, pool occupancy
  /// gauges, dispatcher dispatch spans. Call before Start().
  void AttachTelemetry(telemetry::Telemetry* telemetry) override;

  /// Fans the injector out to every device (unit stalls, DMA faults) and
  /// reader (payload corruption, retry policy). Call before Start().
  void AttachFaultInjector(fault::FaultInjector* injector) override;

  uint64_t ImagesDecoded() const;
  uint64_t DecodeFailures() const;
  const fpga::FpgaDevice& Device(int i = 0) const { return *devices_[i]; }
  int NumDevices() const { return static_cast<int>(devices_.size()); }

  /// The work-stealing router (null in single-device mode).
  WorkStealingRouter* Router() { return router_.get(); }
  /// Latch device `device` dead and fail its shard over to the survivors
  /// (fault-drill / test API). False in single-device mode or for the
  /// last healthy device.
  bool QuarantineDevice(int device) {
    return router_ != nullptr && router_->QuarantineDevice(device);
  }
  const topo::TopologyPlan& Topology() const { return plan_; }

 private:
  uint64_t BatchesProduced() const;
  bool AllReadersFinished() const;

  DlboosterOptions options_;
  topo::TopologyPlan plan_;
  std::unique_ptr<LockedCollector> shared_collector_;
  // Declared before devices_ so devices (whose workers call the router's
  // completion sinks) are destroyed — workers joined — first.
  std::unique_ptr<WorkStealingRouter> router_;
  std::vector<std::unique_ptr<fpga::FpgaDevice>> devices_;
  /// One pool per device shard when sharded; a single unsharded pool
  /// otherwise (legacy metric names preserved).
  std::vector<std::unique_ptr<HugePagePool>> pools_;
  std::vector<std::unique_ptr<FpgaReader>> readers_;
  std::unique_ptr<Dispatcher> dispatcher_;
  bool started_ = false;
};

}  // namespace dlb
