#include "backends/dlbooster_backend.h"

#include <sstream>

#include "common/log.h"

namespace dlb {

DlboosterBackend::DlboosterBackend(DataCollector* collector,
                                   const DlboosterOptions& options)
    : options_(options) {
  DLB_CHECK(collector != nullptr);
  const BackendOptions& b = options_.backend;
  const int num_devices = std::max(1, options_.num_devices);
  const bool sharded = num_devices > 1;

  // Topology plan: which NUMA node each device shard (arena + host
  // workers) is pinned to.
  auto plan = topo::PlanPlacement(num_devices, std::max(1, options_.numa_nodes),
                                  options_.placement);
  DLB_CHECK(plan.ok());
  plan_ = std::move(plan).value();

  // Sharded data plane: one HugePage arena + Free/Full queue pair per
  // device, allocated on (modelled as tagged with) the shard's NUMA node.
  // Single-device keeps the one unsharded pool and its legacy metrics.
  const size_t buffer_bytes = b.SlotStride() * b.batch_size;
  const size_t total_buffers =
      std::max(options_.pool_buffers, static_cast<size_t>(num_devices) * 2);
  if (!sharded) {
    pools_.push_back(
        std::make_unique<HugePagePool>(buffer_bytes, total_buffers));
  } else {
    const size_t per_shard = std::max<size_t>(
        2, (total_buffers + num_devices - 1) / num_devices);
    for (int d = 0; d < num_devices; ++d) {
      auto pool = std::make_unique<HugePagePool>(buffer_bytes, per_shard);
      pool->SetShard(d, plan_.NodeOf(d));
      pools_.push_back(std::move(pool));
    }
  }

  // Several readers share one sample stream; serialise access.
  shared_collector_ = std::make_unique<LockedCollector>(collector);

  const OutputSpec out = b.ResolvedOutput();
  FpgaReaderOptions reader_opts;
  reader_opts.batch_size = b.batch_size;
  reader_opts.resize_w = out.width;
  reader_opts.resize_h = out.height;
  reader_opts.channels = out.channels;
  reader_opts.aspect_crop = out.fit == FitMode::kCoverCrop;
  reader_opts.decode_to_scale = b.decode_to_scale;
  reader_opts.linger_ms = b.linger_ms;
  for (int d = 0; d < num_devices; ++d) {
    fpga::FpgaDeviceOptions dev_opts = options_.device;
    if (sharded) dev_opts.device_index = d;
    devices_.push_back(std::make_unique<fpga::FpgaDevice>(dev_opts));
  }
  if (sharded) {
    StealRouterOptions router_opts;
    router_opts.steal_enabled = options_.steal_enabled;
    router_opts.steal_watermark = options_.steal_watermark;
    router_opts.assign_policy = options_.assign_policy;
    std::vector<fpga::FpgaDevice*> device_ptrs;
    for (auto& device : devices_) device_ptrs.push_back(device.get());
    router_ = std::make_unique<WorkStealingRouter>(std::move(device_ptrs),
                                                   router_opts);
    for (int d = 0; d < num_devices; ++d) {
      readers_.push_back(std::make_unique<FpgaReader>(
          router_->Channel(d), shared_collector_.get(), pools_[d].get(),
          reader_opts));
    }
  } else {
    readers_.push_back(std::make_unique<FpgaReader>(
        devices_[0].get(), shared_collector_.get(), pools_[0].get(),
        reader_opts));
  }

  DispatcherOptions disp_opts;
  disp_opts.queue_depth = b.queue_depth;
  disp_opts.per_item_copies = options_.per_item_copies;
  std::vector<HugePagePool*> pool_ptrs;
  for (auto& pool : pools_) pool_ptrs.push_back(pool.get());
  dispatcher_ = std::make_unique<Dispatcher>(std::move(pool_ptrs), disp_opts);
  for (int e = 0; e < std::max(1, b.num_engines); ++e) {
    dispatcher_->RegisterEngine();
  }
}

DlboosterBackend::~DlboosterBackend() { Stop(); }

Status DlboosterBackend::Start() {
  if (started_) return FailedPrecondition("backend already started");
  started_ = true;
  dispatcher_->Start();
  for (auto& reader : readers_) reader->Start();
  return Status::Ok();
}

std::string DlboosterBackend::Describe() const {
  const BackendOptions& b = options_.backend;
  const OutputSpec out = b.ResolvedOutput();
  std::ostringstream os;
  os << "dlbooster(devices=" << devices_.size() << ", batch=" << b.batch_size
     << ", out=" << out.width << "x" << out.height << "x" << out.channels
     << (out.fit == FitMode::kCoverCrop ? ", fit=cover" : ", fit=stretch")
     << (b.decode_to_scale ? ", decode_to_scale" : "")
     << ", pool_buffers=";
  size_t total_buffers = 0;
  for (const auto& pool : pools_) total_buffers += pool->BufferCount();
  os << total_buffers << ", engines=" << std::max(1, b.num_engines);
  if (router_ != nullptr) {
    os << ", topology=" << plan_.ToString()
       << ", steal=" << (options_.steal_enabled ? "on" : "off")
       << ", watermark=" << options_.steal_watermark
       << ", assign=" << options_.assign_policy;
    if (router_->DevicesQuarantined() > 0) {
      os << ", devices_quarantined=" << router_->DevicesQuarantined();
    }
  }
  // Degraded-mode visibility: name the quarantined units per device.
  for (size_t d = 0; d < devices_.size(); ++d) {
    const std::string q = devices_[d]->QuarantineSummary();
    if (!q.empty()) os << ", quarantined[dev" << d << "]={" << q << "}";
  }
  os << ")";
  return os.str();
}

void DlboosterBackend::AttachTelemetry(telemetry::Telemetry* telemetry) {
  PreprocessBackend::AttachTelemetry(telemetry);
  for (auto& device : devices_) device->SetTelemetry(telemetry);
  for (auto& reader : readers_) reader->SetTelemetry(telemetry);
  for (auto& pool : pools_) pool->SetTelemetry(telemetry);
  if (router_ != nullptr) router_->SetTelemetry(telemetry);
  if (pools_.size() > 1) {
    if (telemetry != nullptr) {
      // Aggregate hook: keep the legacy "pool.*" gauges (hardcoded in the
      // profiler and monitor) meaningful as sums over the shard arenas.
      std::vector<HugePagePool*> all;
      for (auto& pool : pools_) all.push_back(pool.get());
      auto hook = [telemetry, all] {
        size_t buffers = 0, free_buffers = 0, full_buffers = 0;
        for (HugePagePool* pool : all) {
          buffers += pool->BufferCount();
          free_buffers += pool->FreeQueue().Size();
          full_buffers += pool->FullQueue().Size();
        }
        MetricRegistry& reg = telemetry->Registry();
        reg.GetGauge("pool.buffers")->Set(static_cast<double>(buffers));
        reg.GetGauge("pool.free_buffers")
            ->Set(static_cast<double>(free_buffers));
        reg.GetGauge("pool.full_buffers")
            ->Set(static_cast<double>(full_buffers));
      };
      for (auto& pool : pools_) pool->SetOccupancyHook(hook);
      hook();
    } else {
      for (auto& pool : pools_) pool->SetOccupancyHook({});
    }
  }
  dispatcher_->SetTelemetry(telemetry);
}

void DlboosterBackend::AttachFaultInjector(fault::FaultInjector* injector) {
  PreprocessBackend::AttachFaultInjector(injector);
  for (auto& device : devices_) device->SetFaultInjector(injector);
  for (auto& reader : readers_) reader->SetFaultInjector(injector);
  if (router_ != nullptr) router_->SetFaultInjector(injector);
}

uint64_t DlboosterBackend::ImagesDecoded() const {
  uint64_t total = 0;
  for (const auto& reader : readers_) total += reader->ImagesCompleted();
  return total;
}

uint64_t DlboosterBackend::DecodeFailures() const {
  uint64_t total = 0;
  for (const auto& reader : readers_) total += reader->DecodeFailures();
  return total;
}

uint64_t DlboosterBackend::BatchesProduced() const {
  uint64_t total = 0;
  for (const auto& reader : readers_) total += reader->BatchesProduced();
  return total;
}

bool DlboosterBackend::AllReadersFinished() const {
  for (const auto& reader : readers_) {
    if (!reader->Finished()) return false;
  }
  return true;
}

Result<BatchPtr> DlboosterBackend::NextBatch(int engine) {
  using namespace std::chrono_literals;
  TransQueues* queues = dispatcher_->Engine(engine);
  std::optional<DeviceBatch*> batch;
  while (true) {
    batch = queues->full_q.PopFor(2ms);
    if (batch.has_value()) break;
    if (queues->full_q.IsClosed()) return Closed("pipeline drained");
    // End-of-stream: every reader drained its source, every produced batch
    // was dispatched somewhere, and nothing is queued for this engine.
    if (AllReadersFinished() &&
        dispatcher_->TotalBatchesDispatched() >= BatchesProduced() &&
        queues->full_q.Empty()) {
      return Closed("sample stream ended");
    }
  }
  DeviceBatch* db = *batch;
  // The engine borrows the device buffer; destruction pushes it back to
  // the engine's free Trans Queue (Fig. 3 recycle path).
  auto out = std::make_unique<PreprocessBatch>(
      db->items, db->mem.data(), [queues, db] {
        (void)queues->free_q.TryPush(db);
      });
  out->SetTrace(db->trace);
  return out;
}

void DlboosterBackend::Stop() {
  if (!started_) {
    for (auto& device : devices_) device->Shutdown();
    if (router_ != nullptr) router_->Shutdown();
    return;
  }
  for (auto& reader : readers_) reader->Stop();
  for (auto& device : devices_) device->Shutdown();
  if (router_ != nullptr) router_->Shutdown();
  dispatcher_->Stop();
  for (auto& pool : pools_) pool->Close();
}

}  // namespace dlb
