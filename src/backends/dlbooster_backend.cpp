#include "backends/dlbooster_backend.h"

#include <sstream>

#include "common/log.h"

namespace dlb {

DlboosterBackend::DlboosterBackend(DataCollector* collector,
                                   const DlboosterOptions& options)
    : options_(options) {
  DLB_CHECK(collector != nullptr);
  const BackendOptions& b = options_.backend;
  const int num_devices = std::max(1, options_.num_devices);

  pool_ = std::make_unique<HugePagePool>(
      b.SlotStride() * b.batch_size,
      std::max(options_.pool_buffers, static_cast<size_t>(num_devices) * 2));

  // Several readers share one sample stream; serialise access.
  shared_collector_ = std::make_unique<LockedCollector>(collector);

  const OutputSpec out = b.ResolvedOutput();
  FpgaReaderOptions reader_opts;
  reader_opts.batch_size = b.batch_size;
  reader_opts.resize_w = out.width;
  reader_opts.resize_h = out.height;
  reader_opts.channels = out.channels;
  reader_opts.aspect_crop = out.fit == FitMode::kCoverCrop;
  reader_opts.decode_to_scale = b.decode_to_scale;
  for (int d = 0; d < num_devices; ++d) {
    devices_.push_back(std::make_unique<fpga::FpgaDevice>(options_.device));
    readers_.push_back(std::make_unique<FpgaReader>(
        devices_.back().get(), shared_collector_.get(), pool_.get(),
        reader_opts));
  }

  DispatcherOptions disp_opts;
  disp_opts.queue_depth = b.queue_depth;
  disp_opts.per_item_copies = options_.per_item_copies;
  dispatcher_ = std::make_unique<Dispatcher>(pool_.get(), disp_opts);
  for (int e = 0; e < std::max(1, b.num_engines); ++e) {
    dispatcher_->RegisterEngine();
  }
}

DlboosterBackend::~DlboosterBackend() { Stop(); }

Status DlboosterBackend::Start() {
  if (started_) return FailedPrecondition("backend already started");
  started_ = true;
  dispatcher_->Start();
  for (auto& reader : readers_) reader->Start();
  return Status::Ok();
}

std::string DlboosterBackend::Describe() const {
  const BackendOptions& b = options_.backend;
  const OutputSpec out = b.ResolvedOutput();
  std::ostringstream os;
  os << "dlbooster(devices=" << devices_.size() << ", batch=" << b.batch_size
     << ", out=" << out.width << "x" << out.height << "x" << out.channels
     << (out.fit == FitMode::kCoverCrop ? ", fit=cover" : ", fit=stretch")
     << (b.decode_to_scale ? ", decode_to_scale" : "")
     << ", pool_buffers=" << pool_->BufferCount()
     << ", engines=" << std::max(1, b.num_engines);
  // Degraded-mode visibility: name the quarantined units per device.
  for (size_t d = 0; d < devices_.size(); ++d) {
    const std::string q = devices_[d]->QuarantineSummary();
    if (!q.empty()) os << ", quarantined[dev" << d << "]={" << q << "}";
  }
  os << ")";
  return os.str();
}

void DlboosterBackend::AttachTelemetry(telemetry::Telemetry* telemetry) {
  PreprocessBackend::AttachTelemetry(telemetry);
  for (auto& device : devices_) device->SetTelemetry(telemetry);
  for (auto& reader : readers_) reader->SetTelemetry(telemetry);
  pool_->SetTelemetry(telemetry);
  dispatcher_->SetTelemetry(telemetry);
}

void DlboosterBackend::AttachFaultInjector(fault::FaultInjector* injector) {
  PreprocessBackend::AttachFaultInjector(injector);
  for (auto& device : devices_) device->SetFaultInjector(injector);
  for (auto& reader : readers_) reader->SetFaultInjector(injector);
}

uint64_t DlboosterBackend::ImagesDecoded() const {
  uint64_t total = 0;
  for (const auto& reader : readers_) total += reader->ImagesCompleted();
  return total;
}

uint64_t DlboosterBackend::DecodeFailures() const {
  uint64_t total = 0;
  for (const auto& reader : readers_) total += reader->DecodeFailures();
  return total;
}

uint64_t DlboosterBackend::BatchesProduced() const {
  uint64_t total = 0;
  for (const auto& reader : readers_) total += reader->BatchesProduced();
  return total;
}

bool DlboosterBackend::AllReadersFinished() const {
  for (const auto& reader : readers_) {
    if (!reader->Finished()) return false;
  }
  return true;
}

Result<BatchPtr> DlboosterBackend::NextBatch(int engine) {
  using namespace std::chrono_literals;
  TransQueues* queues = dispatcher_->Engine(engine);
  std::optional<DeviceBatch*> batch;
  while (true) {
    batch = queues->full_q.PopFor(2ms);
    if (batch.has_value()) break;
    if (queues->full_q.IsClosed()) return Closed("pipeline drained");
    // End-of-stream: every reader drained its source, every produced batch
    // was dispatched somewhere, and nothing is queued for this engine.
    if (AllReadersFinished() &&
        dispatcher_->TotalBatchesDispatched() >= BatchesProduced() &&
        queues->full_q.Empty()) {
      return Closed("sample stream ended");
    }
  }
  DeviceBatch* db = *batch;
  // The engine borrows the device buffer; destruction pushes it back to
  // the engine's free Trans Queue (Fig. 3 recycle path).
  auto out = std::make_unique<PreprocessBatch>(
      db->items, db->mem.data(), [queues, db] {
        (void)queues->free_q.TryPush(db);
      });
  out->SetTrace(db->trace);
  return out;
}

void DlboosterBackend::Stop() {
  if (!started_) {
    for (auto& device : devices_) device->Shutdown();
    return;
  }
  for (auto& reader : readers_) reader->Stop();
  for (auto& device : devices_) device->Shutdown();
  dispatcher_->Stop();
  pool_->Close();
}

}  // namespace dlb
