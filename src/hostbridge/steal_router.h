// Work-stealing decode dispatcher for the sharded data plane.
//
// N emulated FPGA devices, N submitting shards (one FPGAReader each). Each
// shard owns a local deque of pending decode commands; a pump moves
// commands from the deques into device cmd FIFOs with one batched doorbell
// per device (FpgaDevice::SubmitCmds). A device whose local deque runs dry
// steals from the back of the deepest victim deque — but only while the
// victim's backlog exceeds `steal_watermark`, so the victim's owner always
// keeps a guaranteed share of its own work (the deflake invariant the
// backend tests lean on). Completions are demultiplexed back to the
// submitting shard by a shard tag carried in the cookie's top byte, so a
// reader sees exactly the completions for the commands it submitted no
// matter which device ran them.
//
// Fault plane: QuarantineDevice() latches a whole device dead — it gets no
// further submissions and its shard's backlog becomes stealable at any
// depth, failing the shard over to the surviving devices byte-identically
// (same decode stages, different device). An injected `device_fail` fault
// at submit time does the same through the router's injector hook.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bounded_queue.h"
#include "common/fault.h"
#include "common/stats.h"
#include "hostbridge/decode_channel.h"
#include "telemetry/telemetry.h"

namespace dlb {

struct StealRouterOptions {
  /// Cross-device stealing on/off (off = static sharding; a skewed shard
  /// then bounds throughput).
  bool steal_enabled = true;
  /// A healthy victim is stealable only while its deque is deeper than
  /// this. Also the per-device minimum-share floor: an owner always gets
  /// to run at least min(assigned, watermark) of its own commands.
  int steal_watermark = 4;
  /// How Submit picks the home deque: "local" (submitting shard's own
  /// deque — NUMA-friendly) or "rr" (deterministic round-robin across
  /// shards — uniform assignment independent of submit interleaving).
  std::string assign_policy = "local";
};

class WorkStealingRouter {
 public:
  /// One shard per device; `devices[i]` is shard i's home device. Devices
  /// are borrowed, must outlive the router, and must have no other
  /// submitter — the router installs their completion sinks.
  WorkStealingRouter(std::vector<fpga::FpgaDevice*> devices,
                     const StealRouterOptions& options);
  ~WorkStealingRouter();

  WorkStealingRouter(const WorkStealingRouter&) = delete;
  WorkStealingRouter& operator=(const WorkStealingRouter&) = delete;

  /// The per-shard submission facade handed to shard's FPGAReader.
  DecodeChannel* Channel(int shard);

  /// Publish router metrics: per-shard "fpga.dev<N>.steals" / ".stolen" /
  /// ".assigned" counters and ".shard_depth" / ".quarantined" gauges, plus
  /// aggregate "fpga.steals" and "fpga.devices_quarantined".
  void SetTelemetry(telemetry::Telemetry* telemetry);

  /// Arm the `device_fail` fault: each submit draws once; a hit
  /// quarantines the submitting shard's device (never the last healthy
  /// one). Null detaches.
  void SetFaultInjector(fault::FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

  /// Latch device `device` dead: no further submissions reach it and its
  /// shard's backlog fails over to the surviving devices (byte-identical
  /// output — same decode stages elsewhere). Emits a flight-recorder
  /// trigger. Refused (returning false) for the last healthy device.
  bool QuarantineDevice(int device);
  bool IsQuarantined(int device) const {
    return shards_[static_cast<size_t>(device)]->quarantined.load(
        std::memory_order_acquire);
  }
  int DevicesQuarantined() const;

  int NumShards() const { return static_cast<int>(shards_.size()); }
  uint64_t Steals() const;           // total cross-shard steals
  uint64_t Steals(int by) const;     // commands device `by` stole
  uint64_t Stolen(int from) const;   // commands stolen from shard `from`
  size_t ShardDepth(int shard) const;

  /// True when every deque is empty, every device is idle and every
  /// completion queue is drained — no command can still surface.
  bool Quiescent() const;

  /// Close all shard channels (readers unblock). Does not shut the
  /// devices down — the owner does that after its readers stopped.
  void Shutdown();

 private:
  struct Shard;

  /// DecodeChannel facade for one shard (owned by the router).
  class ShardChannel final : public DecodeChannel {
   public:
    ShardChannel(WorkStealingRouter* router, int shard)
        : router_(router), shard_(shard) {}
    Status Submit(fpga::FpgaCmd cmd) override {
      return router_->SubmitToShard(shard_, std::move(cmd));
    }
    size_t SubmitMany(std::vector<fpga::FpgaCmd>& cmds) override {
      return router_->SubmitManyToShard(shard_, cmds);
    }
    std::vector<fpga::FpgaCompletion> DrainCompletions() override;
    std::vector<fpga::FpgaCompletion> WaitCompletions() override;
    std::vector<fpga::FpgaCompletion> WaitCompletionsFor(
        uint64_t timeout_ms) override;
    bool Quiescent() const override { return router_->Quiescent(); }
    bool IsClosed() const override {
      return router_->closed_.load(std::memory_order_acquire);
    }

   private:
    WorkStealingRouter* router_;
    int shard_;
  };

  struct Shard {
    fpga::FpgaDevice* device = nullptr;
    std::deque<fpga::FpgaCmd> backlog;  // guarded by router mu_
    BoundedQueue<fpga::FpgaCompletion> completions;
    std::atomic<bool> quarantined{false};
    Counter steals;    // commands this device stole from other shards
    Counter stolen;    // commands other devices took from this shard
    Counter assigned;  // commands whose home deque this was
    std::unique_ptr<ShardChannel> channel;
    // Registry twins (null until SetTelemetry).
    Counter* steals_reg = nullptr;
    Counter* stolen_reg = nullptr;
    Counter* assigned_reg = nullptr;
    Gauge* depth_reg = nullptr;

    explicit Shard(size_t completion_capacity)
        : completions(completion_capacity) {}
  };

  Status SubmitToShard(int shard, fpga::FpgaCmd cmd);
  size_t SubmitManyToShard(int shard, std::vector<fpga::FpgaCmd>& cmds);
  /// One fault draw per submit batch; may quarantine `shard`'s device.
  void MaybeDeviceFail(int shard);
  /// Move backlog into device FIFOs — local first, then steal. Requires
  /// mu_ held.
  void PumpLocked();
  /// Completion sink for device `device` (runs on its worker threads).
  void OnCompletion(int device, fpga::FpgaCompletion c);
  int HomeShardLocked(int submitting_shard);
  void PublishDepthLocked(int shard);

  std::vector<std::unique_ptr<Shard>> shards_;
  StealRouterOptions options_;
  mutable std::mutex mu_;
  uint64_t rr_next_ = 0;  // "rr" assign cursor, guarded by mu_
  std::atomic<bool> closed_{false};
  std::atomic<fault::FaultInjector*> injector_{nullptr};
  std::atomic<telemetry::Telemetry*> telemetry_{nullptr};
  Counter total_steals_;
  Counter* total_steals_reg_ = nullptr;
  Gauge* quarantined_reg_ = nullptr;
};

}  // namespace dlb
