// Submission-side abstraction over the decode data plane.
//
// The FPGAReader of Algorithm 1 talks to "the FPGA channel": it submits
// decode commands and drains FINISH completions. With one device that is
// literally the device's cmd FIFO and FINISH ring (DirectChannel). In the
// sharded data plane the channel is one shard of the WorkStealingRouter,
// which may run a command on any device and demultiplexes the completion
// back to the submitting shard. The reader is identical either way — the
// channel is the seam the scale-out plugs into.
#pragma once

#include <vector>

#include "common/status.h"
#include "fpga/fpga_device.h"

namespace dlb {

class DecodeChannel {
 public:
  virtual ~DecodeChannel() = default;

  /// Non-blocking single-command submit. kResourceExhausted when the
  /// channel cannot accept the command right now (drain completions and
  /// retry), kClosed after shutdown.
  virtual Status Submit(fpga::FpgaCmd cmd) = 0;

  /// Batched submit: moves the accepted prefix out of `cmds` (erasing it)
  /// and returns the accepted count. One call is one doorbell however many
  /// commands it moves.
  virtual size_t SubmitMany(std::vector<fpga::FpgaCmd>& cmds) = 0;

  /// Completions currently signalled for THIS channel (drain_out).
  virtual std::vector<fpga::FpgaCompletion> DrainCompletions() = 0;

  /// Block until at least one completion (or shutdown); then drain.
  virtual std::vector<fpga::FpgaCompletion> WaitCompletions() = 0;

  /// Like WaitCompletions but bounded by `timeout_ms` (empty on timeout).
  virtual std::vector<fpga::FpgaCompletion> WaitCompletionsFor(
      uint64_t timeout_ms) = 0;

  /// True when no submitted command can still produce a completion on any
  /// path reachable from this channel — the FINISH-timeout reap gate. A
  /// false answer is always safe (reaping is merely delayed).
  virtual bool Quiescent() const = 0;

  /// True once the channel shut down (no further completions will arrive).
  virtual bool IsClosed() const = 0;
};

/// The single-device channel: thin forwarding onto one FpgaDevice, with
/// the exact semantics the FPGAReader always had.
class DirectChannel final : public DecodeChannel {
 public:
  explicit DirectChannel(fpga::FpgaDevice* device) : device_(device) {}

  Status Submit(fpga::FpgaCmd cmd) override {
    return device_->SubmitCmd(std::move(cmd));
  }
  size_t SubmitMany(std::vector<fpga::FpgaCmd>& cmds) override {
    return device_->SubmitCmds(cmds);
  }
  std::vector<fpga::FpgaCompletion> DrainCompletions() override {
    return device_->DrainCompletions();
  }
  std::vector<fpga::FpgaCompletion> WaitCompletions() override {
    return device_->WaitCompletions();
  }
  std::vector<fpga::FpgaCompletion> WaitCompletionsFor(
      uint64_t timeout_ms) override {
    return device_->WaitCompletionsFor(timeout_ms);
  }
  bool Quiescent() const override { return device_->InFlight() == 0; }
  bool IsClosed() const override { return device_->IsClosed(); }

 private:
  fpga::FpgaDevice* device_;
};

}  // namespace dlb
