#include "hostbridge/data_collector.h"

#include "common/log.h"

namespace dlb {

DiskDataCollector::DiskDataCollector(const Manifest* manifest,
                                     const BlobStore* store, bool shuffle,
                                     uint64_t seed)
    : manifest_(manifest),
      store_(store),
      loader_(manifest, /*batch_size=*/64, shuffle, seed) {
  DLB_CHECK(manifest_ != nullptr && store_ != nullptr);
}

Result<CollectedFile> DiskDataCollector::Next() {
  if (manifest_->Empty()) return Closed("empty manifest");
  if (cursor_ >= pending_.size()) {
    pending_ = loader_.NextBatch();
    cursor_ = 0;
    if (pending_.empty()) return Closed("loader exhausted");
  }
  const FileRecord& rec = manifest_->At(pending_[cursor_++]);
  auto bytes = store_->Read(rec);
  if (!bytes.ok()) return bytes.status();
  CollectedFile out;
  out.record = &rec;
  out.bytes = bytes.value();
  out.label = rec.label;
  return out;
}

NetDataCollector::NetDataCollector(BoundedQueue<NetworkImage>* rx_queue)
    : rx_queue_(rx_queue) {
  DLB_CHECK(rx_queue_ != nullptr);
}

namespace {

CollectedFile FromNetwork(NetworkImage img) {
  CollectedFile out;
  out.owned = std::move(img.payload);
  out.bytes = ByteSpan(out.owned.data(), out.owned.size());
  out.request_id = img.request_id;
  return out;
}

}  // namespace

Result<CollectedFile> NetDataCollector::Next() {
  auto img = rx_queue_->Pop();
  if (!img.has_value()) return Closed("network stream closed");
  return FromNetwork(std::move(img).value());
}

Result<CollectedFile> NetDataCollector::NextFor(uint64_t linger_ms) {
  if (linger_ms == 0) return Next();
  auto img = rx_queue_->PopFor(std::chrono::milliseconds(linger_ms));
  if (!img.has_value()) {
    // PopFor cannot tell timeout from closed-and-drained; the queue can.
    if (rx_queue_->IsClosed()) return Closed("network stream closed");
    return Unavailable("network stream dry");
  }
  return FromNetwork(std::move(img).value());
}

}  // namespace dlb
