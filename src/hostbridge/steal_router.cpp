#include "hostbridge/steal_router.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/log.h"
#include "telemetry/event_log.h"
#include "telemetry/flight_recorder.h"

namespace dlb {

namespace {
// Shard tag in the cookie's top byte (0 = untagged), leaving the low 56
// bits for the reader's batch_seq/slot encoding. Demultiplexes completions
// back to the submitting shard when a command ran on a stolen device.
constexpr int kShardShift = 56;
constexpr uint64_t kCookieMask = (1ull << kShardShift) - 1;

// Per-shard completion queue depth. Far above any realistic in-flight
// count (pool buffers x batch size), so the device-side push never blocks
// in practice; if it ever does, the submitting reader drains it.
constexpr size_t kCompletionQueueCap = 1 << 14;

// Sentinel "way" for device-level quarantine events (unit events carry a
// real way index).
constexpr uint64_t kWholeDeviceWay = 0xFFFF;
}  // namespace

WorkStealingRouter::WorkStealingRouter(std::vector<fpga::FpgaDevice*> devices,
                                       const StealRouterOptions& options)
    : options_(options) {
  DLB_CHECK(!devices.empty());
  DLB_CHECK(options_.steal_watermark >= 1);
  DLB_CHECK(options_.assign_policy == "local" ||
            options_.assign_policy == "rr");
  shards_.reserve(devices.size());
  for (size_t d = 0; d < devices.size(); ++d) {
    DLB_CHECK(devices[d] != nullptr);
    auto shard = std::make_unique<Shard>(kCompletionQueueCap);
    shard->device = devices[d];
    shard->channel =
        std::make_unique<ShardChannel>(this, static_cast<int>(d));
    shards_.push_back(std::move(shard));
  }
  // Sinks go in last: once installed, worker threads may call back into
  // the fully constructed router.
  for (size_t d = 0; d < devices.size(); ++d) {
    devices[d]->SetCompletionSink([this, d](fpga::FpgaCompletion c) {
      OnCompletion(static_cast<int>(d), std::move(c));
    });
  }
}

WorkStealingRouter::~WorkStealingRouter() {
  Shutdown();
  // The devices outlive the router and their workers call our completion
  // sinks. closed_ blocks new submissions, so each device's in-flight
  // count only falls; once it reads 0 (acquire, pairing with the
  // sink-mode release decrement) the last sink call has returned and the
  // sink can be detached before the shards it captures are destroyed.
  for (auto& s : shards_) {
    while (s->device->InFlight() != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    s->device->SetCompletionSink(nullptr);
  }
}

DecodeChannel* WorkStealingRouter::Channel(int shard) {
  DLB_CHECK(shard >= 0 && shard < NumShards());
  return shards_[static_cast<size_t>(shard)]->channel.get();
}

void WorkStealingRouter::SetTelemetry(telemetry::Telemetry* telemetry) {
  std::scoped_lock lock(mu_);
  if (telemetry != nullptr) {
    MetricRegistry& reg = telemetry->Registry();
    for (size_t d = 0; d < shards_.size(); ++d) {
      const std::string p = "fpga.dev" + std::to_string(d) + ".";
      shards_[d]->steals_reg = reg.GetCounter(p + "steals");
      shards_[d]->stolen_reg = reg.GetCounter(p + "stolen");
      shards_[d]->assigned_reg = reg.GetCounter(p + "assigned");
      shards_[d]->depth_reg = reg.GetGauge(p + "shard_depth");
    }
    total_steals_reg_ = reg.GetCounter("fpga.steals");
    quarantined_reg_ = reg.GetGauge("fpga.devices_quarantined");
  } else {
    for (auto& s : shards_) {
      s->steals_reg = nullptr;
      s->stolen_reg = nullptr;
      s->assigned_reg = nullptr;
      s->depth_reg = nullptr;
    }
    total_steals_reg_ = nullptr;
    quarantined_reg_ = nullptr;
  }
  telemetry_.store(telemetry, std::memory_order_release);
}

int WorkStealingRouter::DevicesQuarantined() const {
  int n = 0;
  for (const auto& s : shards_) {
    if (s->quarantined.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

uint64_t WorkStealingRouter::Steals() const { return total_steals_.Value(); }

uint64_t WorkStealingRouter::Steals(int by) const {
  return shards_[static_cast<size_t>(by)]->steals.Value();
}

uint64_t WorkStealingRouter::Stolen(int from) const {
  return shards_[static_cast<size_t>(from)]->stolen.Value();
}

size_t WorkStealingRouter::ShardDepth(int shard) const {
  std::scoped_lock lock(mu_);
  return shards_[static_cast<size_t>(shard)]->backlog.size();
}

bool WorkStealingRouter::Quiescent() const {
  std::scoped_lock lock(mu_);
  for (const auto& s : shards_) {
    if (!s->backlog.empty()) return false;
    // Devices decrement InFlight only after the completion sink returned,
    // so InFlight()==0 here means every completion is already visible in
    // its shard queue (checked next) or consumed by its reader.
    if (s->device->InFlight() != 0) return false;
    if (!s->completions.Empty()) return false;
  }
  return true;
}

void WorkStealingRouter::MaybeDeviceFail(int shard) {
  fault::FaultInjector* inj = injector_.load(std::memory_order_acquire);
  if (inj == nullptr || IsQuarantined(shard)) return;
  if (!inj->Fire(fault::FaultKind::kDeviceFail)) return;
  QuarantineDevice(shard);
}

bool WorkStealingRouter::QuarantineDevice(int device) {
  if (device < 0 || device >= NumShards()) return false;
  {
    std::scoped_lock lock(mu_);
    Shard& s = *shards_[static_cast<size_t>(device)];
    if (s.quarantined.load(std::memory_order_relaxed)) return true;
    int healthy = 0;
    for (const auto& sh : shards_) {
      if (!sh->quarantined.load(std::memory_order_relaxed)) ++healthy;
    }
    // Never latch the last healthy device: degraded beats dead.
    if (healthy <= 1) return false;
    s.quarantined.store(true, std::memory_order_release);
    // Fail the dead shard's backlog over to the survivors right away.
    PumpLocked();
  }
  if (telemetry::Telemetry* telem =
          telemetry_.load(std::memory_order_acquire)) {
    MetricRegistry& reg = telem->Registry();
    reg.GetGauge("fpga.dev" + std::to_string(device) + ".quarantined")
        ->Set(1.0);
    reg.GetGauge("fpga.devices_quarantined")
        ->Set(static_cast<double>(DevicesQuarantined()));
    if (telemetry::EventLog* events = telem->events()) {
      events->Log(telemetry::EventType::kUnitQuarantined, 0,
                  static_cast<uint64_t>(device), kWholeDeviceWay);
    }
    if (flight::FlightRecorder* fr = telem->flight()) {
      fr->Trigger(flight::TriggerKind::kQuarantine,
                  "device " + std::to_string(device) +
                      " quarantined; shard failing over to survivors");
    }
  }
  return true;
}

int WorkStealingRouter::HomeShardLocked(int submitting_shard) {
  if (options_.assign_policy != "rr") return submitting_shard;
  // Deterministic round-robin over healthy shards; falls back to the
  // submitter when everything is latched (can't happen: the last healthy
  // device is unquarantinable).
  const int n = NumShards();
  for (int i = 0; i < n; ++i) {
    const int cand = static_cast<int>(rr_next_++ % static_cast<uint64_t>(n));
    if (!shards_[static_cast<size_t>(cand)]->quarantined.load(
            std::memory_order_relaxed)) {
      return cand;
    }
  }
  return submitting_shard;
}

void WorkStealingRouter::PublishDepthLocked(int shard) {
  Shard& s = *shards_[static_cast<size_t>(shard)];
  if (s.depth_reg != nullptr) {
    s.depth_reg->Set(static_cast<double>(s.backlog.size()));
  }
}

Status WorkStealingRouter::SubmitToShard(int shard, fpga::FpgaCmd cmd) {
  if (closed_.load(std::memory_order_acquire)) {
    return Closed("decode router is shut down");
  }
  if (cmd.out == nullptr || cmd.jpeg.empty()) {
    return InvalidArgument("cmd needs input bytes and an output region");
  }
  MaybeDeviceFail(shard);
  std::scoped_lock lock(mu_);
  DLB_CHECK((cmd.cookie >> kShardShift) == 0);
  cmd.cookie |= static_cast<uint64_t>(shard + 1) << kShardShift;
  const int home = HomeShardLocked(shard);
  Shard& s = *shards_[static_cast<size_t>(home)];
  s.backlog.push_back(std::move(cmd));
  s.assigned.Add();
  if (s.assigned_reg != nullptr) s.assigned_reg->Add();
  PumpLocked();
  return Status::Ok();
}

size_t WorkStealingRouter::SubmitManyToShard(int shard,
                                             std::vector<fpga::FpgaCmd>& cmds) {
  if (cmds.empty() || closed_.load(std::memory_order_acquire)) return 0;
  MaybeDeviceFail(shard);
  const size_t n = cmds.size();
  std::scoped_lock lock(mu_);
  for (fpga::FpgaCmd& cmd : cmds) {
    DLB_CHECK((cmd.cookie >> kShardShift) == 0);
    cmd.cookie |= static_cast<uint64_t>(shard + 1) << kShardShift;
    const int home = HomeShardLocked(shard);
    Shard& s = *shards_[static_cast<size_t>(home)];
    s.backlog.push_back(std::move(cmd));
    s.assigned.Add();
    if (s.assigned_reg != nullptr) s.assigned_reg->Add();
  }
  cmds.clear();
  PumpLocked();
  return n;
}

void WorkStealingRouter::PumpLocked() {
  if (closed_.load(std::memory_order_relaxed)) return;
  const int n = NumShards();
  for (int d = 0; d < n; ++d) {
    Shard& s = *shards_[static_cast<size_t>(d)];
    if (s.quarantined.load(std::memory_order_relaxed)) continue;
    int space = s.device->FifoSpace();
    if (space <= 0) continue;
    std::vector<fpga::FpgaCmd> batch;
    batch.reserve(static_cast<size_t>(space));
    // Local work first, oldest first (owner pops the front).
    while (space > 0 && !s.backlog.empty()) {
      batch.push_back(std::move(s.backlog.front()));
      s.backlog.pop_front();
      --space;
    }
    // Then steal, newest first (thieves take the back), always from the
    // deepest eligible victim. A healthy victim is eligible only above the
    // watermark — re-checked per steal, so the owner keeps at least
    // `watermark` of its own backlog. A quarantined victim is eligible at
    // any depth, even with stealing disabled: that IS the failover path.
    while (space > 0) {
      int victim = -1;
      size_t deepest = 0;
      for (int v = 0; v < n; ++v) {
        if (v == d) continue;
        Shard& sv = *shards_[static_cast<size_t>(v)];
        const size_t depth = sv.backlog.size();
        if (depth == 0) continue;
        const bool dead = sv.quarantined.load(std::memory_order_relaxed);
        const bool eligible =
            dead || (options_.steal_enabled &&
                     depth > static_cast<size_t>(options_.steal_watermark));
        if (eligible && depth > deepest) {
          deepest = depth;
          victim = v;
        }
      }
      if (victim < 0) break;
      Shard& sv = *shards_[static_cast<size_t>(victim)];
      batch.push_back(std::move(sv.backlog.back()));
      sv.backlog.pop_back();
      --space;
      s.steals.Add();
      sv.stolen.Add();
      total_steals_.Add();
      if (s.steals_reg != nullptr) s.steals_reg->Add();
      if (sv.stolen_reg != nullptr) sv.stolen_reg->Add();
      if (total_steals_reg_ != nullptr) total_steals_reg_->Add();
    }
    if (batch.empty()) continue;
    // One doorbell moves the whole batch. Sized by FifoSpace under mu_
    // (workers only free slots concurrently), so the tail is empty in all
    // but pathological races; anything rejected goes back to the local
    // front so ordering degrades gracefully.
    (void)s.device->SubmitCmds(batch);
    while (!batch.empty()) {
      s.backlog.push_front(std::move(batch.back()));
      batch.pop_back();
    }
  }
  for (int d = 0; d < n; ++d) PublishDepthLocked(d);
}

void WorkStealingRouter::OnCompletion(int device, fpga::FpgaCompletion c) {
  (void)device;  // the completion routes by submitter, not executor
  const int shard = static_cast<int>(c.cookie >> kShardShift) - 1;
  if (shard < 0 || shard >= NumShards()) return;  // untagged: dropped
  c.cookie &= kCookieMask;
  // Deliver before any pump: the device decrements InFlight only after
  // this push, which is what makes Quiescent() sound.
  (void)shards_[static_cast<size_t>(shard)]->completions.Push(std::move(c));
  std::scoped_lock lock(mu_);
  PumpLocked();  // a completion freed FIFO space somewhere
}

std::vector<fpga::FpgaCompletion>
WorkStealingRouter::ShardChannel::DrainCompletions() {
  auto& q = router_->shards_[static_cast<size_t>(shard_)]->completions;
  std::vector<fpga::FpgaCompletion> out;
  auto drained = q.DrainAll();
  out.reserve(drained.size());
  for (auto& c : drained) out.push_back(std::move(c));
  return out;
}

std::vector<fpga::FpgaCompletion>
WorkStealingRouter::ShardChannel::WaitCompletions() {
  auto& q = router_->shards_[static_cast<size_t>(shard_)]->completions;
  std::vector<fpga::FpgaCompletion> out;
  auto first = q.Pop();
  if (!first.has_value()) return out;  // shut down
  out.push_back(std::move(*first));
  auto rest = q.DrainAll();
  for (auto& c : rest) out.push_back(std::move(c));
  return out;
}

std::vector<fpga::FpgaCompletion>
WorkStealingRouter::ShardChannel::WaitCompletionsFor(uint64_t timeout_ms) {
  auto& q = router_->shards_[static_cast<size_t>(shard_)]->completions;
  std::vector<fpga::FpgaCompletion> out;
  auto first = q.PopFor(std::chrono::milliseconds(timeout_ms));
  if (!first.has_value()) return out;  // timed out or shut down
  out.push_back(std::move(*first));
  auto rest = q.DrainAll();
  for (auto& c : rest) out.push_back(std::move(c));
  return out;
}

void WorkStealingRouter::Shutdown() {
  if (closed_.exchange(true)) return;
  // Unblock every reader waiting on its shard queue. Backlog still queued
  // is abandoned (channel reset semantics); the devices themselves are the
  // owner's to shut down, after the readers stopped.
  for (auto& s : shards_) s->completions.Close();
}

}  // namespace dlb
