// DataCollector — the data abstraction of §3.4.1 / Table 1.
//
// Translates "next sample to process" into the bytes + metadata the
// FPGAReader packs into decoder commands. Two concrete sources mirror the
// paper's data plane: the disk path (manifest + blob store, training) and
// the network path (a queue the NIC receive loop fills, inference).
#pragma once

#include <memory>
#include <mutex>

#include "common/bounded_queue.h"
#include "dataplane/batch_loader.h"
#include "dataplane/blob_store.h"

namespace dlb {

/// One sample ready for decoding. `bytes` views either stable backing
/// storage (the disk path) or `owned` (the network path, where the buffer
/// must travel with the command because the receive queue recycles).
struct CollectedFile {
  const FileRecord* record = nullptr;  // null for network images
  ByteSpan bytes;                      // compressed payload
  Bytes owned;                         // set on the network path
  int32_t label = 0;
  uint64_t request_id = 0;             // network path: originating request

  /// True when the consumer must take ownership of `owned` to keep `bytes`
  /// alive beyond the next collector call.
  bool OwnsPayload() const { return !owned.empty(); }
};

class DataCollector {
 public:
  virtual ~DataCollector() = default;

  /// Next sample in arrival/epoch order. kClosed when the stream ended.
  virtual Result<CollectedFile> Next() = 0;

  /// Like Next(), but streaming sources give up after roughly `linger_ms`
  /// with kUnavailable when the stream is momentarily dry — the caller
  /// flushes its partial batch and comes back. Bulk sources (disk) never
  /// report dry: a slow read is still a read, so the default just blocks.
  /// linger_ms == 0 always means "wait indefinitely".
  virtual Result<CollectedFile> NextFor(uint64_t /*linger_ms*/) {
    return Next();
  }

  /// Samples per epoch (0 = unbounded stream).
  virtual size_t EpochSize() const { return 0; }
};

/// load_from_disk: walks the manifest in epoch order forever.
class DiskDataCollector : public DataCollector {
 public:
  DiskDataCollector(const Manifest* manifest, const BlobStore* store,
                    bool shuffle, uint64_t seed);

  Result<CollectedFile> Next() override;
  size_t EpochSize() const override { return manifest_->Size(); }

 private:
  const Manifest* manifest_;
  const BlobStore* store_;
  BatchLoader loader_;
  std::vector<uint32_t> pending_;
  size_t cursor_ = 0;
};

/// A network-delivered image (what the NIC driver deposited in host DRAM).
struct NetworkImage {
  Bytes payload;
  uint64_t request_id = 0;
};

/// Thread-safe wrapper so several FPGAReaders (one per decoder device,
/// §5.3: "plugging more FPGA devices") can share one sample stream.
class LockedCollector : public DataCollector {
 public:
  explicit LockedCollector(DataCollector* inner) : inner_(inner) {}

  Result<CollectedFile> Next() override {
    std::scoped_lock lock(mu_);
    return inner_->Next();
  }
  Result<CollectedFile> NextFor(uint64_t linger_ms) override {
    std::scoped_lock lock(mu_);
    return inner_->NextFor(linger_ms);
  }
  size_t EpochSize() const override { return inner_->EpochSize(); }

 private:
  DataCollector* inner_;
  std::mutex mu_;
};

/// Wraps a collector and stops after `max_images` samples — bounds a
/// training run the way max_images bounds the other backends.
class BoundedCollector : public DataCollector {
 public:
  BoundedCollector(DataCollector* inner, uint64_t max_images)
      : inner_(inner), remaining_(max_images) {}

  Result<CollectedFile> Next() override {
    if (remaining_ == 0) return Closed("sample budget exhausted");
    --remaining_;
    return inner_->Next();
  }
  Result<CollectedFile> NextFor(uint64_t linger_ms) override {
    if (remaining_ == 0) return Closed("sample budget exhausted");
    auto out = inner_->NextFor(linger_ms);
    if (out.ok()) --remaining_;
    return out;
  }
  size_t EpochSize() const override { return inner_->EpochSize(); }

 private:
  DataCollector* inner_;
  uint64_t remaining_;
};

/// load_from_net: drains a queue fed by the NIC receive loop.
class NetDataCollector : public DataCollector {
 public:
  explicit NetDataCollector(BoundedQueue<NetworkImage>* rx_queue);

  Result<CollectedFile> Next() override;
  Result<CollectedFile> NextFor(uint64_t linger_ms) override;

 private:
  BoundedQueue<NetworkImage>* rx_queue_;
};

}  // namespace dlb
