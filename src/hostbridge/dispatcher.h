// Dispatcher — Algorithm 3 of the paper.
//
// A daemon thread that moves full batches from the host memory pool to the
// registered compute engines with round-robin scheduling. Each engine owns
// a pair of Trans Queues (free device buffers / full device batches); the
// dispatcher copies batch payloads from pool memory into a device buffer
// (one large block copy per batch — the §5.2 optimisation) and recycles the
// host buffer for the FPGAReader.
//
// With no physical GPU attached, "device memory" is a distinct host
// allocation per engine; the copy is real, its granularity is the knob the
// copy-granularity ablation turns.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "hostbridge/hugepage_pool.h"
#include "telemetry/event_log.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace dlb {

/// A batch resident in one engine's device memory.
struct DeviceBatch {
  int engine = 0;
  std::vector<uint8_t> mem;
  std::vector<BatchItem> items;
  uint64_t seq = 0;  // dispatch sequence (for fairness tests)
  /// Batch trace root context, carried over from the host buffer so the
  /// engine-side consume span joins the same tree.
  telemetry::TraceContext trace;
};

/// The per-engine channel pair registered with the dispatcher.
struct TransQueues {
  explicit TransQueues(size_t depth) : free_q(depth), full_q(depth) {}
  BoundedQueue<DeviceBatch*> free_q;
  BoundedQueue<DeviceBatch*> full_q;
};

struct DispatcherOptions {
  /// Device-side buffers per engine (pipeline depth).
  size_t queue_depth = 2;
  /// When true, copy each item separately instead of one block per batch —
  /// the per-item small-copy behaviour of LMDB/CPU backends (§5.2 reason 1),
  /// used by the ablation bench.
  bool per_item_copies = false;
};

class Dispatcher {
 public:
  Dispatcher(HugePagePool* pool, const DispatcherOptions& options = {});
  /// Sharded data plane: pull full batches fairly across one pool per
  /// device shard. Pools are borrowed and must outlive the dispatcher.
  Dispatcher(std::vector<HugePagePool*> pools,
             const DispatcherOptions& options = {});
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Register one compute engine before Start(). Returns the engine index.
  int RegisterEngine();

  /// Engine-side access to its Trans Queues: pop full_q to get work, push
  /// the batch back to free_q when done (the recycle path of Fig. 3).
  TransQueues* Engine(int index);

  void Start();
  void Stop();

  /// Attach a telemetry sink before Start(): the dispatcher records one
  /// dispatch span per batch (pool pop -> engine queue push, H2D copy
  /// included) and a per-batch copied-bytes counter.
  void SetTelemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

  uint64_t BatchesDispatched(int engine) const;
  uint64_t TotalBatchesDispatched() const;

 private:
  void Loop();
  /// Largest buffer size across the shard pools (device batches must fit
  /// any source buffer).
  size_t MaxBufferBytes() const;

  std::vector<HugePagePool*> pools_;
  DispatcherOptions options_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::vector<std::unique_ptr<TransQueues>> engines_;
  std::vector<std::vector<std::unique_ptr<DeviceBatch>>> device_buffers_;
  std::vector<std::unique_ptr<Counter>> dispatched_;
  std::jthread thread_;
  std::atomic<bool> running_{false};
  uint64_t next_seq_ = 0;
};

}  // namespace dlb
