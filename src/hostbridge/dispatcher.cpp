#include "hostbridge/dispatcher.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"

namespace dlb {

Dispatcher::Dispatcher(HugePagePool* pool, const DispatcherOptions& options)
    : Dispatcher(std::vector<HugePagePool*>{pool}, options) {}

Dispatcher::Dispatcher(std::vector<HugePagePool*> pools,
                       const DispatcherOptions& options)
    : pools_(std::move(pools)), options_(options) {
  DLB_CHECK(!pools_.empty());
  for (HugePagePool* pool : pools_) DLB_CHECK(pool != nullptr);
  DLB_CHECK(options_.queue_depth > 0);
}

size_t Dispatcher::MaxBufferBytes() const {
  size_t max_bytes = 0;
  for (const HugePagePool* pool : pools_) {
    max_bytes = std::max(max_bytes, pool->BufferBytes());
  }
  return max_bytes;
}

Dispatcher::~Dispatcher() { Stop(); }

int Dispatcher::RegisterEngine() {
  DLB_CHECK(!running_.load());
  const int index = static_cast<int>(engines_.size());
  engines_.push_back(std::make_unique<TransQueues>(options_.queue_depth));
  dispatched_.push_back(std::make_unique<Counter>());
  device_buffers_.emplace_back();
  for (size_t i = 0; i < options_.queue_depth; ++i) {
    auto batch = std::make_unique<DeviceBatch>();
    batch->engine = index;
    batch->mem.resize(MaxBufferBytes());
    DLB_CHECK(engines_[index]->free_q.TryPush(batch.get()).ok());
    device_buffers_[index].push_back(std::move(batch));
  }
  return index;
}

TransQueues* Dispatcher::Engine(int index) {
  DLB_CHECK(index >= 0 && index < static_cast<int>(engines_.size()));
  return engines_[index].get();
}

void Dispatcher::Start() {
  DLB_CHECK(!engines_.empty());
  if (running_.exchange(true)) return;
  thread_ = std::jthread([this] { Loop(); });
}

void Dispatcher::Stop() {
  if (!running_.exchange(false)) return;
  for (HugePagePool* pool : pools_) pool->Close();
  for (auto& engine : engines_) {
    engine->free_q.Close();
    engine->full_q.Close();
  }
  if (thread_.joinable()) thread_.join();
}

uint64_t Dispatcher::BatchesDispatched(int engine) const {
  DLB_CHECK(engine >= 0 && engine < static_cast<int>(dispatched_.size()));
  return dispatched_[engine]->Value();
}

uint64_t Dispatcher::TotalBatchesDispatched() const {
  uint64_t total = 0;
  for (const auto& c : dispatched_) total += c->Value();
  return total;
}

void Dispatcher::Loop() {
  using namespace std::chrono_literals;
  size_t rr = 0;
  size_t pool_rr = 0;
  while (running_.load(std::memory_order_relaxed)) {
    // Pull the next full batch fairly across the shard pools: sweep every
    // pool non-blocking, then park briefly on a rotating one so an idle
    // plane doesn't spin. Exits once every pool is closed and drained.
    BatchBuffer* src = nullptr;
    HugePagePool* src_pool = nullptr;
    while (running_.load(std::memory_order_relaxed) && src == nullptr) {
      size_t closed = 0;
      for (size_t i = 0; i < pools_.size() && src == nullptr; ++i) {
        HugePagePool* pool = pools_[(pool_rr + i) % pools_.size()];
        auto popped = pool->FullQueue().TryPop();
        if (popped.has_value()) {
          src = *popped;
          src_pool = pool;
        } else if (pool->FullQueue().IsClosed()) {
          ++closed;
        }
      }
      if (src != nullptr) break;
      if (closed == pools_.size()) return;  // every shard closed + drained
      HugePagePool* pool = pools_[pool_rr % pools_.size()];
      ++pool_rr;
      auto popped = pool->FullQueue().PopFor(1ms);
      if (popped.has_value()) {
        src = *popped;
        src_pool = pool;
      }
    }
    if (src == nullptr) break;  // running_ cleared

    // Round-robin engine selection (line 1-11 of Algorithm 3).
    TransQueues* engine = engines_[rr % engines_.size()].get();
    const int engine_idx = static_cast<int>(rr % engines_.size());
    ++rr;

    auto device = engine->free_q.Pop();
    if (!device.has_value()) {
      // Engine queues closed: this batch will never be consumed.
      if (telemetry_ != nullptr) {
        if (telemetry::Tracer* tracer = telemetry_->tracer()) {
          tracer->AbandonBatch(src->trace);
        }
        if (telemetry::EventLog* events = telemetry_->events()) {
          events->Log(telemetry::EventType::kBatchDropped,
                      src->trace.batch_id, /*reason: engine closed*/ 2);
        }
      }
      src_pool->Recycle(src);
      break;
    }
    DeviceBatch* dst = *device;

    telemetry::StageTimer dispatch_timer(telemetry::Stage::kDispatch);
    size_t copied = 0;

    // The CudaMemcpyAsync + stream-sync pair of Algorithm 3, collapsed to
    // a synchronous copy (no physical GPU). Granularity is the ablation
    // knob: one block per batch vs one copy per item.
    if (options_.per_item_copies) {
      for (const BatchItem& item : src->items) {
        if (!item.ok) continue;
        std::memcpy(dst->mem.data() + item.offset, src->data + item.offset,
                    item.bytes);
        copied += item.bytes;
      }
    } else if (!src->items.empty()) {
      size_t span = 0;
      for (const BatchItem& item : src->items) {
        span = std::max(span, static_cast<size_t>(item.offset) + item.bytes);
      }
      copied = std::min(span, src->capacity);
      std::memcpy(dst->mem.data(), src->data, copied);
    }
    dst->items = src->items;
    dst->seq = next_seq_++;
    // Carry the batch trace across the copy BEFORE recycling: Recycle()
    // resets the host buffer's context for its next batch.
    dst->trace = src->trace;
    const telemetry::TraceContext trace = src->trace;
    dispatched_[engine_idx]->Add();

    // Recycle the host buffer for the FPGAReader, then hand the device
    // batch to the engine.
    src_pool->Recycle(src);
    const size_t batch_items = dst->items.size();
    Status pushed = engine->full_q.Push(dst);
    if (telemetry_ != nullptr) {
      telemetry_->RecordTimed(dispatch_timer, batch_items, trace,
                              telemetry::Subsystem::kHostbridge,
                              static_cast<uint32_t>(engine_idx));
      telemetry_->Registry()
          .GetCounter("dispatcher.bytes_copied")
          ->Add(copied);
      // Aggregate engine-queue occupancy: how many full device batches sit
      // unconsumed. The gauge's watermark catches spikes between samples.
      size_t queued = 0;
      for (const auto& e : engines_) queued += e->full_q.Size();
      telemetry_->Registry()
          .GetGauge("dispatcher.queue_depth")
          ->Set(static_cast<double>(queued));
      if (telemetry::EventLog* events = telemetry_->events()) {
        if (pushed.ok()) {
          events->Log(telemetry::EventType::kBatchDispatched, trace.batch_id,
                      static_cast<uint64_t>(engine_idx));
          const size_t depth = engine->full_q.Size();
          const size_t cap = engine->full_q.Capacity();
          if (depth * 4 >= cap * 3) {
            events->Log(telemetry::EventType::kQueueHighWatermark,
                        trace.batch_id, depth, cap);
          }
        } else {
          events->Log(telemetry::EventType::kBatchDropped, trace.batch_id,
                      /*reason: engine closed*/ 2);
        }
      }
      if (!pushed.ok()) {
        if (telemetry::Tracer* tracer = telemetry_->tracer()) {
          tracer->AbandonBatch(trace);
        }
      }
    }
    if (!pushed.ok()) break;
  }
}

}  // namespace dlb
