#include "hostbridge/hugepage_pool.h"

#include <cstdlib>

#include "common/log.h"

namespace dlb {

namespace {
constexpr size_t kHugePageAlign = 2ull * 1024 * 1024;  // 2 MiB

void FreeAligned(uint8_t* p) { std::free(p); }

size_t RoundUp(size_t v, size_t align) {
  return (v + align - 1) / align * align;
}
}  // namespace

HugePagePool::HugePagePool(size_t buffer_bytes, size_t buffer_count)
    : buffer_bytes_(buffer_bytes),
      arena_(nullptr, &FreeAligned),
      free_queue_(buffer_count ? buffer_count : 1),
      full_queue_(buffer_count ? buffer_count : 1) {
  DLB_CHECK(buffer_bytes > 0 && buffer_count > 0);
  const size_t total = RoundUp(buffer_bytes * buffer_count, kHugePageAlign);
  auto* raw = static_cast<uint8_t*>(std::aligned_alloc(kHugePageAlign, total));
  DLB_CHECK(raw != nullptr);
  arena_.reset(raw);

  buffers_.reserve(buffer_count);
  for (size_t i = 0; i < buffer_count; ++i) {
    auto buf = std::make_unique<BatchBuffer>();
    buf->data = raw + i * buffer_bytes;
    buf->phys_addr = kPhysBase + i * buffer_bytes;
    buf->capacity = buffer_bytes;
    DLB_CHECK(free_queue_.TryPush(buf.get()).ok());
    buffers_.push_back(std::move(buf));
  }
}

void HugePagePool::Recycle(BatchBuffer* buffer) {
  if (buffer == nullptr) return;
  buffer->items.clear();
  buffer->trace = {};
  // Push can only fail after Close(), at which point dropping is correct.
  (void)free_queue_.TryPush(buffer);
  telemetry::Telemetry* t = telemetry_.load(std::memory_order_acquire);
  if (t != nullptr) {
    t->Registry().GetCounter(prefix_ + "recycles")->Add();
    // The legacy aggregate stays a plain counter sum in sharded mode.
    if (shard_ >= 0) t->Registry().GetCounter("pool.recycles")->Add();
    PublishOccupancy();
  }
}

void HugePagePool::SetShard(int shard, int numa_node) {
  DLB_CHECK(shard >= 0);
  shard_ = shard;
  numa_node_ = numa_node;
  prefix_ = "pool.dev" + std::to_string(shard) + ".";
}

void HugePagePool::SetTelemetry(telemetry::Telemetry* telemetry) {
  telemetry_.store(telemetry, std::memory_order_release);
  if (telemetry != nullptr) {
    telemetry->Registry().GetGauge(prefix_ + "buffers")->Set(
        static_cast<double>(buffers_.size()));
    if (shard_ >= 0) {
      telemetry->Registry().GetGauge(prefix_ + "numa_node")->Set(
          static_cast<double>(numa_node_));
    }
    PublishOccupancy();
  }
}

void HugePagePool::PublishOccupancy() {
  telemetry::Telemetry* t = telemetry_.load(std::memory_order_acquire);
  if (t == nullptr) return;
  t->Registry().GetGauge(prefix_ + "free_buffers")->Set(
      static_cast<double>(free_queue_.Size()));
  t->Registry().GetGauge(prefix_ + "full_buffers")->Set(
      static_cast<double>(full_queue_.Size()));
  if (occupancy_hook_) occupancy_hook_();
}

Result<uint8_t*> HugePagePool::PhysToVirt(uint64_t phys) const {
  const uint64_t end = kPhysBase + ArenaBytes();
  if (phys < kPhysBase || phys >= end) {
    return OutOfRange("physical address outside the pool arena");
  }
  return arena_.get() + (phys - kPhysBase);
}

Result<uint64_t> HugePagePool::VirtToPhys(const uint8_t* virt) const {
  const uint8_t* base = arena_.get();
  if (virt < base || virt >= base + ArenaBytes()) {
    return OutOfRange("virtual address outside the pool arena");
  }
  return kPhysBase + static_cast<uint64_t>(virt - base);
}

void HugePagePool::Close() {
  free_queue_.Close();
  full_queue_.Close();
}

}  // namespace dlb
