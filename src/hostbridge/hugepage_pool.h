// HugePage-style batch memory pool — Algorithm 2 of the paper.
//
// One large contiguous allocation (2 MiB-aligned, standing in for Linux
// HugePages) is sliced into fixed-size batch buffers. Buffers cycle through
// two queues: Free_Batch_Queue (empty, awaiting the FPGAReader) and
// Full_Batch_Queue (decoded, awaiting the Dispatcher). Each buffer records
// both its virtual address and its "physical" address — the arena offset
// plus a fake base, standing in for the phys2virt/virt2phys mapping the real
// system derives from /proc/self/pagemap — because the FPGA only understands
// physical addresses.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bounded_queue.h"
#include "common/status.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace dlb {

/// Metadata for one decoded item inside a batch buffer.
struct BatchItem {
  uint64_t cookie = 0;    // producer correlation id
  uint32_t offset = 0;    // byte offset inside the buffer
  uint32_t bytes = 0;     // decoded payload size
  uint16_t width = 0;
  uint16_t height = 0;
  uint8_t channels = 0;
  int32_t label = 0;
  bool ok = false;        // decode succeeded
  /// StatusCode of the decode failure when !ok (kOk while pending); lets
  /// consumers distinguish corrupt inputs from device errors per image.
  StatusCode error = StatusCode::kOk;
};

/// One recycled batch-granular memory unit.
struct BatchBuffer {
  uint8_t* data = nullptr;     // virtual address of the slice
  uint64_t phys_addr = 0;      // what goes into FPGA cmds
  size_t capacity = 0;
  std::vector<BatchItem> items;  // filled by the producer, cleared on recycle
  /// Batch trace root context, stamped by the producer that admits the
  /// batch (FPGAReader) and reset on recycle.
  telemetry::TraceContext trace;
};

class HugePagePool {
 public:
  /// Fake physical base so address-translation bugs are loud (a real
  /// kernel would never hand out this range).
  static constexpr uint64_t kPhysBase = 0x4000000000ull;

  /// Allocate `buffer_count` buffers of `buffer_bytes` each from one
  /// contiguous arena. All buffers start in the free queue.
  HugePagePool(size_t buffer_bytes, size_t buffer_count);

  HugePagePool(const HugePagePool&) = delete;
  HugePagePool& operator=(const HugePagePool&) = delete;

  BoundedQueue<BatchBuffer*>& FreeQueue() { return free_queue_; }
  BoundedQueue<BatchBuffer*>& FullQueue() { return full_queue_; }

  /// Recycle a buffer: clear its metadata and return it to the free queue.
  void Recycle(BatchBuffer* buffer);

  /// Address translation (phy2virt / virt2phy of Table 1).
  Result<uint8_t*> PhysToVirt(uint64_t phys) const;
  Result<uint64_t> VirtToPhys(const uint8_t* virt) const;

  size_t BufferBytes() const { return buffer_bytes_; }
  size_t BufferCount() const { return buffers_.size(); }
  uint64_t ArenaBytes() const { return buffer_bytes_ * buffers_.size(); }

  /// Close both queues (releases blocked producers/consumers at shutdown).
  void Close();

  /// Attach a telemetry sink: the pool publishes occupancy gauges
  /// ("pool.free_buffers", "pool.full_buffers", "pool.buffers") and a
  /// "pool.recycles" counter. Safe to call while producers run.
  void SetTelemetry(telemetry::Telemetry* telemetry);

  /// Refresh the occupancy gauges (called by the pool on recycle; callers
  /// that pop directly from FreeQueue() should call it after the pop).
  void PublishOccupancy();

  /// Mark this pool as device shard `shard` pinned to NUMA node
  /// `numa_node`: metric names move to "pool.dev<N>.*" (plus a
  /// "pool.dev<N>.numa_node" gauge) so per-shard arenas stop clobbering
  /// each other's gauges. Call before SetTelemetry / before threads run.
  void SetShard(int shard, int numa_node);
  int Shard() const { return shard_; }
  int NumaNode() const { return numa_node_; }

  /// Hook run after every occupancy publish. The multi-pool owner installs
  /// an aggregator here that keeps the legacy "pool.buffers" /
  /// "pool.free_buffers" / "pool.full_buffers" names meaningful (summed
  /// across shards) for the profiler and monitor. Install before threads
  /// run.
  void SetOccupancyHook(std::function<void()> hook) {
    occupancy_hook_ = std::move(hook);
  }

 private:
  size_t buffer_bytes_;
  int shard_ = -1;       // -1 = unsharded (legacy metric names)
  int numa_node_ = 0;
  std::string prefix_ = "pool.";  // "pool.dev<N>." once sharded
  std::function<void()> occupancy_hook_;
  std::atomic<telemetry::Telemetry*> telemetry_{nullptr};
  std::unique_ptr<uint8_t[], void (*)(uint8_t*)> arena_;
  std::vector<std::unique_ptr<BatchBuffer>> buffers_;
  BoundedQueue<BatchBuffer*> free_queue_;
  BoundedQueue<BatchBuffer*> full_queue_;
};

}  // namespace dlb
