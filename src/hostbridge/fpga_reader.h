// Asynchronous FPGAReader — Algorithm 1 of the paper.
//
// A daemon thread that (a) pulls empty batch buffers from the
// Free_Batch_Queue, (b) packs decoder commands (physical address + offset
// per slot) from the DataCollector and submits them aggressively to the
// FPGA channel, (c) drains FINISH completions with best effort, and
// (d) pushes fully decoded batches to the Full_Batch_Queue. Multiple
// batches are kept in flight, so the decoder never starves while the host
// assembles the next batch.
#pragma once

#include <atomic>
#include <map>
#include <thread>

#include "fpga/fpga_device.h"
#include "hostbridge/data_collector.h"
#include "hostbridge/hugepage_pool.h"
#include "telemetry/event_log.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace dlb {

struct FpgaReaderOptions {
  size_t batch_size = 32;
  int resize_w = 256;   // decoder resize target (slot geometry)
  int resize_h = 256;
  int channels = 3;
  bool aspect_crop = false;  // cover-resize + centre crop in the resizer
  /// Slot stride in bytes (derived): resize_w * resize_h * channels.
  size_t SlotStride() const {
    return static_cast<size_t>(resize_w) * resize_h * channels;
  }
};

class FpgaReader {
 public:
  FpgaReader(fpga::FpgaDevice* device, DataCollector* collector,
             HugePagePool* pool, const FpgaReaderOptions& options);
  ~FpgaReader();

  FpgaReader(const FpgaReader&) = delete;
  FpgaReader& operator=(const FpgaReader&) = delete;

  /// Attach a telemetry sink before Start(): the reader records fetch spans
  /// (collector pulls) and collect spans (batch assembly latency).
  void SetTelemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

  /// Launch the daemon thread.
  void Start();

  /// Stop after in-flight work settles; joins the thread. Idempotent.
  void Stop();

  /// True once the daemon has drained its source and flushed all batches.
  bool Finished() const { return finished_.load(std::memory_order_acquire); }

  uint64_t ImagesSubmitted() const { return submitted_.Value(); }
  uint64_t ImagesCompleted() const { return completed_.Value(); }
  uint64_t DecodeFailures() const { return failures_.Value(); }
  uint64_t BatchesProduced() const { return batches_.Value(); }

 private:
  /// Per-batch assembly state, keyed by batch sequence number. `payloads`
  /// pins network-delivered buffers until their decodes complete.
  struct BatchState {
    BatchBuffer* buffer = nullptr;
    size_t expected = 0;
    size_t done = 0;
    uint64_t start_ns = 0;  // buffer acquisition time (collect span start)
    telemetry::TraceContext trace;  // root context minted at admission
    std::vector<BatchItem> items;
    std::vector<Bytes> payloads;
  };

  void Loop();
  void ProcessCompletions(std::vector<fpga::FpgaCompletion> completions);
  bool SubmitOne(uint64_t batch_seq, size_t slot, const CollectedFile& file,
                 BatchBuffer* buffer, const telemetry::TraceContext& trace);
  /// Retire a fully assembled batch: collect span, hand-off, events.
  void FinishBatch(std::map<uint64_t, BatchState>::iterator it);

  telemetry::Tracer* TracerSink() const {
    return telemetry_ != nullptr ? telemetry_->tracer() : nullptr;
  }
  telemetry::EventLog* EventsSink() const {
    return telemetry_ != nullptr ? telemetry_->events() : nullptr;
  }

  fpga::FpgaDevice* device_;
  DataCollector* collector_;
  HugePagePool* pool_;
  FpgaReaderOptions options_;
  telemetry::Telemetry* telemetry_ = nullptr;

  std::jthread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> finished_{false};
  std::map<uint64_t, BatchState> in_flight_;
  uint64_t next_batch_seq_ = 0;
  Counter submitted_;
  Counter completed_;
  Counter failures_;
  Counter batches_;
};

}  // namespace dlb
