// Asynchronous FPGAReader — Algorithm 1 of the paper.
//
// A daemon thread that (a) pulls empty batch buffers from the
// Free_Batch_Queue, (b) packs decoder commands (physical address + offset
// per slot) from the DataCollector and submits them aggressively to the
// FPGA channel, (c) drains FINISH completions with best effort, and
// (d) pushes fully decoded batches to the Full_Batch_Queue. Multiple
// batches are kept in flight, so the decoder never starves while the host
// assembles the next batch.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <thread>

#include "common/fault.h"
#include "fpga/fpga_device.h"
#include "hostbridge/data_collector.h"
#include "hostbridge/decode_channel.h"
#include "hostbridge/hugepage_pool.h"
#include "telemetry/event_log.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace dlb {

struct FpgaReaderOptions {
  size_t batch_size = 32;
  int resize_w = 256;   // decoder resize target (slot geometry)
  int resize_h = 256;
  int channels = 3;
  bool aspect_crop = false;  // cover-resize + centre crop in the resizer
  /// Ask the device to decode at a reduced DCT scale covering
  /// (resize_w, resize_h); the resizer then only does the residual shrink.
  bool decode_to_scale = false;
  /// Streaming batch linger (BackendOptions::linger_ms): with a non-empty
  /// batch under assembly, wait at most this long for the next sample
  /// before flushing the partial batch. 0 = wait for a full batch.
  uint64_t linger_ms = 0;

  // --- Fault-recovery policy ---
  /// Resubmits per slot after a transient (kUnavailable) completion before
  /// the image is declared failed.
  int dma_retry_limit = 3;
  /// Base backoff before a resubmit; doubles per attempt, capped at 5 ms.
  uint64_t retry_backoff_us = 100;
  /// Bound on cmd-FIFO-full submit retries per command (0 = retry until
  /// the device closes, the plain backpressure behaviour).
  int submit_retry_limit = 0;
  /// FINISH-arbiter timeout: once the device is idle, a batch that has seen
  /// no completion for this long is force-retired with its pending slots
  /// marked failed — how the reader survives lost completions (0 = off;
  /// armed with a default when a fault injector is attached).
  uint64_t completion_timeout_ms = 0;

  /// Slot stride in bytes (derived): resize_w * resize_h * channels.
  size_t SlotStride() const {
    return static_cast<size_t>(resize_w) * resize_h * channels;
  }
};

class FpgaReader {
 public:
  /// Single-device reader: wraps `device` in an owned DirectChannel.
  FpgaReader(fpga::FpgaDevice* device, DataCollector* collector,
             HugePagePool* pool, const FpgaReaderOptions& options);
  /// Sharded reader: submits through `channel` (one shard of the
  /// work-stealing router; borrowed, must outlive the reader).
  FpgaReader(DecodeChannel* channel, DataCollector* collector,
             HugePagePool* pool, const FpgaReaderOptions& options);
  ~FpgaReader();

  FpgaReader(const FpgaReader&) = delete;
  FpgaReader& operator=(const FpgaReader&) = delete;

  /// Attach a telemetry sink before Start(): the reader records fetch spans
  /// (collector pulls), collect spans (batch assembly latency) and the
  /// fault-plane counters ("decode.errors", "retry.attempts",
  /// "retry.exhausted").
  void SetTelemetry(telemetry::Telemetry* telemetry);

  /// Attach a fault injector before Start(): compressed payloads may be
  /// corrupted pre-submit (`corrupt_jpeg`), and the completion timeout is
  /// armed (default 2000 ms) so injected completion losses cannot wedge
  /// the reader. Null detaches.
  void SetFaultInjector(fault::FaultInjector* injector);

  /// Launch the daemon thread.
  void Start();

  /// Stop after in-flight work settles; joins the thread. Idempotent.
  void Stop();

  /// True once the daemon has drained its source and flushed all batches.
  bool Finished() const { return finished_.load(std::memory_order_acquire); }

  uint64_t ImagesSubmitted() const { return submitted_.Value(); }
  uint64_t ImagesCompleted() const { return completed_.Value(); }
  uint64_t DecodeFailures() const { return failures_.Value(); }
  uint64_t BatchesProduced() const { return batches_.Value(); }
  uint64_t RetryAttempts() const { return retry_attempts_.Value(); }
  uint64_t RetriesExhausted() const { return retry_exhausted_.Value(); }
  uint64_t BatchTimeouts() const { return batch_timeouts_.Value(); }

 private:
  /// Per-batch assembly state, keyed by batch sequence number. `payloads`
  /// pins network-delivered buffers until their decodes complete.
  struct BatchState {
    BatchBuffer* buffer = nullptr;
    size_t expected = 0;
    size_t done = 0;
    uint64_t start_ns = 0;  // buffer acquisition time (collect span start)
    uint64_t last_progress_ns = 0;  // last completion seen for this batch
    telemetry::TraceContext trace;  // root context minted at admission
    std::vector<BatchItem> items;
    std::vector<Bytes> payloads;
    /// Submitted input span per slot, retained so a transient DMA failure
    /// can be resubmitted without re-fetching.
    std::vector<ByteSpan> sources;
    /// DMA resubmit count per slot (bounded by dma_retry_limit).
    std::vector<uint8_t> attempts;
  };

  enum class SubmitOutcome { kSubmitted, kExhausted, kClosed };

  void Loop();
  void ProcessCompletions(std::vector<fpga::FpgaCompletion> completions);
  /// Pack one decode command for (batch_seq, slot): cookie, translated
  /// output address, slot geometry.
  fpga::FpgaCmd BuildCmd(uint64_t batch_seq, size_t slot, ByteSpan jpeg,
                         BatchBuffer* buffer,
                         const telemetry::TraceContext& trace) const;
  SubmitOutcome SubmitOne(uint64_t batch_seq, size_t slot, ByteSpan jpeg,
                          BatchBuffer* buffer,
                          const telemetry::TraceContext& trace);
  /// Batched submit of one assembled batch: repeated SubmitMany doorbells
  /// with completion drains between rounds; slots whose submit budget runs
  /// out are marked failed in place. Returns false when the channel closed
  /// (commands may remain unsubmitted).
  bool SubmitBatch(std::vector<fpga::FpgaCmd>& cmds);
  /// Record one slot's terminal failure (counts, event, batch progress).
  /// May retire the batch; the caller must re-find iterators afterwards.
  void MarkSlotFailed(std::map<uint64_t, BatchState>::iterator it, size_t slot,
                      StatusCode code);
  /// FINISH-arbiter timeout: retire batches whose pending completions are
  /// definitively lost (device idle + quiet past completion_timeout_ms).
  void ReapTimedOutBatches();
  /// Retire a fully assembled batch: collect span, hand-off, events.
  void FinishBatch(std::map<uint64_t, BatchState>::iterator it);

  telemetry::Tracer* TracerSink() const {
    return telemetry_ != nullptr ? telemetry_->tracer() : nullptr;
  }
  telemetry::EventLog* EventsSink() const {
    return telemetry_ != nullptr ? telemetry_->events() : nullptr;
  }

  std::unique_ptr<DecodeChannel> owned_channel_;  // legacy device ctor
  DecodeChannel* channel_;
  DataCollector* collector_;
  HugePagePool* pool_;
  FpgaReaderOptions options_;
  telemetry::Telemetry* telemetry_ = nullptr;

  std::jthread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> finished_{false};
  std::map<uint64_t, BatchState> in_flight_;
  uint64_t next_batch_seq_ = 0;
  Counter submitted_;
  Counter completed_;
  Counter failures_;
  Counter batches_;
  Counter retry_attempts_;
  Counter retry_exhausted_;
  Counter batch_timeouts_;
  fault::FaultInjector* injector_ = nullptr;
  // Registry twins of the fault-plane counters (null when detached).
  Counter* decode_errors_reg_ = nullptr;
  Counter* retry_attempts_reg_ = nullptr;
  Counter* retry_exhausted_reg_ = nullptr;
};

}  // namespace dlb
