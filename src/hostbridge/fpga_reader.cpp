#include "hostbridge/fpga_reader.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/log.h"
#include "telemetry/flight_recorder.h"

namespace dlb {

namespace {
// Cookie layout: high bits batch sequence, low 20 bits slot index.
constexpr int kSlotBits = 20;
constexpr uint64_t kSlotMask = (1ull << kSlotBits) - 1;

// FINISH-arbiter timeout armed automatically with a fault injector.
constexpr uint64_t kDefaultCompletionTimeoutMs = 2000;

// Exponential backoff before a DMA resubmit, capped so a burst of injected
// errors cannot stall the reader for long.
uint64_t BackoffUs(uint64_t base_us, int attempt) {
  const int shift = std::min(attempt - 1, 6);
  return std::min<uint64_t>(base_us << shift, 5000);
}
}  // namespace

FpgaReader::FpgaReader(fpga::FpgaDevice* device, DataCollector* collector,
                       HugePagePool* pool, const FpgaReaderOptions& options)
    : owned_channel_(std::make_unique<DirectChannel>(device)),
      channel_(owned_channel_.get()),
      collector_(collector),
      pool_(pool),
      options_(options) {
  DLB_CHECK(device && collector_ && pool_);
  DLB_CHECK(options_.batch_size > 0);
  DLB_CHECK(options_.batch_size < kSlotMask);
  DLB_CHECK(options_.SlotStride() * options_.batch_size <= pool_->BufferBytes());
}

FpgaReader::FpgaReader(DecodeChannel* channel, DataCollector* collector,
                       HugePagePool* pool, const FpgaReaderOptions& options)
    : channel_(channel), collector_(collector), pool_(pool),
      options_(options) {
  DLB_CHECK(channel_ && collector_ && pool_);
  DLB_CHECK(options_.batch_size > 0);
  DLB_CHECK(options_.batch_size < kSlotMask);
  DLB_CHECK(options_.SlotStride() * options_.batch_size <= pool_->BufferBytes());
}

FpgaReader::~FpgaReader() { Stop(); }

void FpgaReader::SetTelemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry != nullptr) {
    MetricRegistry& reg = telemetry->Registry();
    decode_errors_reg_ = reg.GetCounter("decode.errors");
    retry_attempts_reg_ = reg.GetCounter("retry.attempts");
    retry_exhausted_reg_ = reg.GetCounter("retry.exhausted");
  } else {
    decode_errors_reg_ = nullptr;
    retry_attempts_reg_ = nullptr;
    retry_exhausted_reg_ = nullptr;
  }
}

void FpgaReader::SetFaultInjector(fault::FaultInjector* injector) {
  injector_ = injector;
  if (injector_ != nullptr && options_.completion_timeout_ms == 0) {
    options_.completion_timeout_ms = kDefaultCompletionTimeoutMs;
  }
}

void FpgaReader::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::jthread([this] { Loop(); });
}

void FpgaReader::Stop() {
  if (!running_.exchange(false)) return;
  pool_->Close();  // unblocks queue waits in the loop
  if (thread_.joinable()) thread_.join();
}

fpga::FpgaCmd FpgaReader::BuildCmd(uint64_t batch_seq, size_t slot,
                                   ByteSpan jpeg, BatchBuffer* buffer,
                                   const telemetry::TraceContext& trace)
    const {
  fpga::FpgaCmd cmd;
  cmd.cookie = (batch_seq << kSlotBits) | slot;
  cmd.jpeg = jpeg;
  cmd.trace = trace;
  // The cmd carries a *physical* address in hardware; here we translate
  // eagerly and hand the device the virtual alias, asserting the mapping
  // is valid — the same check the real MMU performs.
  const uint64_t phys =
      buffer->phys_addr + static_cast<uint64_t>(slot) * options_.SlotStride();
  auto virt = pool_->PhysToVirt(phys);
  DLB_CHECK(virt.ok());
  cmd.out = virt.value();
  cmd.out_capacity = options_.SlotStride();
  cmd.resize_w = options_.resize_w;
  cmd.resize_h = options_.resize_h;
  cmd.aspect_crop = options_.aspect_crop;
  cmd.decode_to_scale = options_.decode_to_scale;
  return cmd;
}

FpgaReader::SubmitOutcome FpgaReader::SubmitOne(
    uint64_t batch_seq, size_t slot, ByteSpan jpeg, BatchBuffer* buffer,
    const telemetry::TraceContext& trace) {
  fpga::FpgaCmd cmd = BuildCmd(batch_seq, slot, jpeg, buffer, trace);

  // Aggressive submit: when the FIFO is full, drain completions and retry
  // (the blocking branch of Algorithm 1) — bounded per attempt so a lossy
  // FINISH ring cannot park the reader forever, and bounded in count when
  // submit_retry_limit caps it.
  int attempts = 0;
  while (running_.load(std::memory_order_relaxed)) {
    Status s = channel_->Submit(cmd);
    if (s.ok()) {
      submitted_.Add();
      return SubmitOutcome::kSubmitted;
    }
    if (s.code() == StatusCode::kClosed) return SubmitOutcome::kClosed;
    ++attempts;
    if (options_.submit_retry_limit > 0 &&
        attempts >= options_.submit_retry_limit) {
      return SubmitOutcome::kExhausted;
    }
    ProcessCompletions(channel_->WaitCompletionsFor(
        std::max<uint64_t>(1, BackoffUs(options_.retry_backoff_us, attempts) /
                                  1000)));
    ReapTimedOutBatches();
  }
  return SubmitOutcome::kClosed;
}

bool FpgaReader::SubmitBatch(std::vector<fpga::FpgaCmd>& cmds) {
  // Batched variant of the aggressive submit: one SubmitMany doorbell
  // moves as many commands as the channel has room for; a full channel is
  // drained between rounds. A command that exhausts its submit budget
  // fails its slot in place and the batch carries on.
  int attempts = 0;
  while (!cmds.empty() && running_.load(std::memory_order_relaxed)) {
    const size_t accepted = channel_->SubmitMany(cmds);
    if (accepted > 0) {
      submitted_.Add(accepted);
      attempts = 0;
      // Opportunistic drain between doorbells keeps completions flowing
      // while the rest of the batch queues up.
      ProcessCompletions(channel_->DrainCompletions());
      continue;
    }
    if (channel_->IsClosed()) return false;
    ++attempts;
    if (options_.submit_retry_limit > 0 &&
        attempts >= options_.submit_retry_limit) {
      // The front command's submit budget is spent; fail that slot and
      // move on so one wedged slot can't starve the rest of the batch.
      const uint64_t cookie = cmds.front().cookie;
      cmds.erase(cmds.begin());
      attempts = 0;
      retry_exhausted_.Add();
      if (retry_exhausted_reg_ != nullptr) retry_exhausted_reg_->Add();
      auto it = in_flight_.find(cookie >> kSlotBits);
      if (it == in_flight_.end()) continue;
      const size_t slot = static_cast<size_t>(cookie & kSlotMask);
      if (telemetry::EventLog* events = EventsSink()) {
        events->Log(telemetry::EventType::kRetryExhausted,
                    it->second.trace.batch_id, slot,
                    static_cast<uint64_t>(options_.submit_retry_limit));
      }
      if (telemetry_ != nullptr) {
        if (flight::FlightRecorder* fr = telemetry_->flight()) {
          fr->Trigger(flight::TriggerKind::kRetryExhausted,
                      "submit budget exhausted: batch " +
                          std::to_string(it->second.trace.batch_id) +
                          " slot " + std::to_string(slot));
        }
      }
      MarkSlotFailed(it, slot, StatusCode::kResourceExhausted);
      continue;
    }
    ProcessCompletions(channel_->WaitCompletionsFor(
        std::max<uint64_t>(1, BackoffUs(options_.retry_backoff_us, attempts) /
                                  1000)));
    ReapTimedOutBatches();
  }
  return running_.load(std::memory_order_relaxed) && cmds.empty();
}

void FpgaReader::MarkSlotFailed(std::map<uint64_t, BatchState>::iterator it,
                                size_t slot, StatusCode code) {
  BatchState& state = it->second;
  BatchItem& item = state.items[slot];
  item.ok = false;
  item.error = code;
  completed_.Add();
  failures_.Add();
  if (decode_errors_reg_ != nullptr) decode_errors_reg_->Add();
  if (telemetry::EventLog* events = EventsSink()) {
    events->Log(telemetry::EventType::kDecodeError, state.trace.batch_id,
                slot, static_cast<uint64_t>(code));
  }
  ++state.done;
  if (state.done == state.expected) FinishBatch(it);
}

void FpgaReader::ProcessCompletions(
    std::vector<fpga::FpgaCompletion> completions) {
  for (auto& c : completions) {
    const uint64_t batch_seq = c.cookie >> kSlotBits;
    const size_t slot = static_cast<size_t>(c.cookie & kSlotMask);
    auto it = in_flight_.find(batch_seq);
    if (it == in_flight_.end()) continue;  // batch abandoned at shutdown
    BatchState& state = it->second;
    state.last_progress_ns = telemetry::NowNs();
    if (c.status.code() == StatusCode::kUnavailable &&
        state.attempts[slot] <
            static_cast<uint8_t>(std::max(0, options_.dma_retry_limit))) {
      // Transient device/DMA error: back off and resubmit this slot from
      // its retained source bytes.
      const int attempt = ++state.attempts[slot];
      retry_attempts_.Add();
      if (retry_attempts_reg_ != nullptr) retry_attempts_reg_->Add();
      std::this_thread::sleep_for(std::chrono::microseconds(
          BackoffUs(options_.retry_backoff_us, attempt)));
      if (SubmitOne(batch_seq, slot, state.sources[slot], state.buffer,
                    state.trace) == SubmitOutcome::kSubmitted) {
        continue;  // the slot is in flight again, not done
      }
      // Resubmit impossible (device closed / submit budget exhausted):
      // fall through and record the failure. SubmitOne may have mutated the
      // map (nested completion processing), so re-find the batch.
      it = in_flight_.find(batch_seq);
      if (it == in_flight_.end()) continue;
      MarkSlotFailed(it, slot, c.status.code());
      continue;
    }
    if (c.status.code() == StatusCode::kUnavailable) {
      // Retries exhausted: a counted, event-logged per-image failure.
      retry_exhausted_.Add();
      if (retry_exhausted_reg_ != nullptr) retry_exhausted_reg_->Add();
      if (telemetry::EventLog* events = EventsSink()) {
        events->Log(telemetry::EventType::kRetryExhausted,
                    state.trace.batch_id, slot, state.attempts[slot]);
      }
      if (telemetry_ != nullptr) {
        if (flight::FlightRecorder* fr = telemetry_->flight()) {
          fr->Trigger(flight::TriggerKind::kRetryExhausted,
                      "batch " + std::to_string(state.trace.batch_id) +
                          " slot " + std::to_string(slot) + " after " +
                          std::to_string(state.attempts[slot]) + " attempts");
        }
      }
      MarkSlotFailed(it, slot, c.status.code());
      continue;
    }
    BatchItem& item = state.items[slot];
    item.ok = c.status.ok();
    item.error = c.status.code();
    item.bytes = static_cast<uint32_t>(c.bytes_written);
    item.width = static_cast<uint16_t>(c.width);
    item.height = static_cast<uint16_t>(c.height);
    item.channels = static_cast<uint8_t>(c.channels);
    completed_.Add();
    if (!c.status.ok()) {
      failures_.Add();
      if (decode_errors_reg_ != nullptr) decode_errors_reg_->Add();
      if (telemetry::EventLog* events = EventsSink()) {
        events->Log(telemetry::EventType::kDecodeError, state.trace.batch_id,
                    slot, static_cast<uint64_t>(c.status.code()));
      }
    }
    ++state.done;
    if (state.done == state.expected) FinishBatch(it);
  }
}

void FpgaReader::ReapTimedOutBatches() {
  if (options_.completion_timeout_ms == 0 || in_flight_.empty()) return;
  // Only reap once the data plane has serviced everything it was given
  // (deques empty, devices idle, completion queues drained): then a
  // pending slot's completion is definitively lost (dropped FINISH), never
  // still in flight — so a timed-out retire can't race a late DMA write.
  if (!channel_->Quiescent()) return;
  const uint64_t now = telemetry::NowNs();
  const uint64_t deadline_ns = options_.completion_timeout_ms * 1'000'000ull;
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    auto next = std::next(it);
    BatchState& state = it->second;
    const uint64_t anchor =
        std::max(state.start_ns, state.last_progress_ns);
    if (state.done < state.expected && anchor != 0 &&
        now - anchor > deadline_ns) {
      size_t pending = 0;
      for (size_t slot = 0; slot < state.expected; ++slot) {
        // Pending slots are the ones no completion ever touched.
        if (!state.items[slot].ok &&
            state.items[slot].error == StatusCode::kOk) {
          ++pending;
        }
      }
      batch_timeouts_.Add();
      if (telemetry::EventLog* events = EventsSink()) {
        events->Log(telemetry::EventType::kBatchTimeout, state.trace.batch_id,
                    pending);
      }
      // MarkSlotFailed retires the batch when the last pending slot is
      // recorded, invalidating `it` — walk via the slot list carefully.
      for (size_t slot = 0; slot < state.expected && pending > 0; ++slot) {
        if (!state.items[slot].ok &&
            state.items[slot].error == StatusCode::kOk) {
          --pending;
          MarkSlotFailed(it, slot, StatusCode::kUnavailable);
        }
      }
    }
    it = next;
  }
}

void FpgaReader::FinishBatch(std::map<uint64_t, BatchState>::iterator it) {
  BatchState& state = it->second;
  state.buffer->items = std::move(state.items);
  if (telemetry_ != nullptr && state.start_ns != 0) {
    // Collect span: buffer acquisition -> fully assembled batch.
    telemetry_->RecordSpan(telemetry::Stage::kCollect, state.start_ns,
                           telemetry::NowNs(), state.expected, state.trace,
                           telemetry::Subsystem::kHostbridge);
  }
  // Closed full queue at shutdown => drop; otherwise hand off.
  const bool pushed = pool_->FullQueue().Push(state.buffer).ok();
  if (telemetry::EventLog* events = EventsSink()) {
    if (!pushed) {
      events->Log(telemetry::EventType::kBatchDropped, state.trace.batch_id,
                  /*reason: full queue closed*/ 1);
    } else {
      const size_t depth = pool_->FullQueue().Size();
      const size_t cap = pool_->FullQueue().Capacity();
      if (depth * 4 >= cap * 3) {
        events->Log(telemetry::EventType::kQueueHighWatermark,
                    state.trace.batch_id, depth, cap);
      }
    }
  }
  if (!pushed) {
    // The batch will never be consumed; retire its trace explicitly.
    if (telemetry::Tracer* tracer = TracerSink()) {
      tracer->AbandonBatch(state.trace);
    }
  }
  pool_->PublishOccupancy();
  batches_.Add();
  in_flight_.erase(it);
}

void FpgaReader::Loop() {
  using namespace std::chrono_literals;
  bool source_exhausted = false;
  while (running_.load(std::memory_order_relaxed) && !source_exhausted) {
    // Acquire an empty batch buffer, draining completions while we wait so
    // the decoder's FINISH ring never backs up.
    BatchBuffer* buffer = nullptr;
    bool reported_exhausted = false;
    while (running_.load(std::memory_order_relaxed)) {
      auto popped = pool_->FreeQueue().PopFor(1ms);
      if (popped.has_value()) {
        buffer = *popped;
        break;
      }
      if (pool_->FreeQueue().IsClosed()) return;
      if (!reported_exhausted) {
        // Once per wait, not once per poll: the pool ran dry, the reader is
        // backpressured by the consumer side.
        reported_exhausted = true;
        if (telemetry::EventLog* events = EventsSink()) {
          events->Log(telemetry::EventType::kPoolExhausted, 0,
                      pool_->FullQueue().Size());
        }
      }
      ProcessCompletions(channel_->DrainCompletions());
      ReapTimedOutBatches();
    }
    if (buffer == nullptr) break;
    pool_->PublishOccupancy();

    const uint64_t batch_seq = next_batch_seq_++;
    // Register the batch before the first submit so completions that race
    // ahead of assembly find their state. Map nodes are pointer-stable.
    BatchState* state = nullptr;
    {
      BatchState fresh;
      fresh.buffer = buffer;
      fresh.expected = options_.batch_size;
      fresh.start_ns = telemetry::NowNs();
      fresh.items.resize(options_.batch_size);
      fresh.payloads.resize(options_.batch_size);
      fresh.sources.resize(options_.batch_size);
      fresh.attempts.assign(options_.batch_size, 0);
      // Batch admission: mint the trace context that every downstream span
      // of this batch will link into, and stamp it on the buffer.
      if (telemetry::Tracer* tracer = TracerSink()) {
        fresh.trace = tracer->StartBatch();
        buffer->trace = fresh.trace;
      }
      if (telemetry::EventLog* events = EventsSink()) {
        events->Log(telemetry::EventType::kBatchAdmitted,
                    fresh.trace.batch_id);
      }
      state = &in_flight_.emplace(batch_seq, std::move(fresh)).first->second;
    }

    // Assemble the whole batch's commands first, then move them with as
    // few doorbells as the channel allows (batched multi-buffer DMA): one
    // SubmitMany replaces batch_size individual MMIO writes.
    std::vector<fpga::FpgaCmd> cmds;
    cmds.reserve(options_.batch_size);
    size_t slot = 0;
    for (; slot < options_.batch_size; ++slot) {
      // Fetch span covers only the collector pull, not the device submit.
      // Recorded manually (not ScopedSpan) because the decode command it
      // causes must parent to this span's id.
      uint64_t fetch_span = 0;
      auto pull = [&]() -> Result<CollectedFile> {
        // Non-empty batch + dry streaming source: bound the wait so queued
        // requests are not held hostage to batch fill.
        if (slot > 0) return collector_->NextFor(options_.linger_ms);
        if (options_.linger_ms == 0) return collector_->Next();
        // Slot 0 of a streaming batch: nothing to flush yet, but batches
        // submitted earlier still need their completions drained while the
        // source idles — otherwise the last partial batch's results wait
        // for the NEXT request to arrive. No reaping here: the empty batch
        // registered above must not be force-retired mid-assembly.
        while (running_.load(std::memory_order_relaxed)) {
          auto sample = collector_->NextFor(options_.linger_ms);
          if (sample.ok() ||
              sample.status().code() != StatusCode::kUnavailable) {
            return sample;
          }
          ProcessCompletions(channel_->DrainCompletions());
        }
        return Closed("reader stopped");
      };
      auto file = [&] {
        telemetry::StageTimer fetch_timer(telemetry::Stage::kFetch);
        auto pulled = pull();
        if (telemetry_ != nullptr && pulled.ok()) {
          fetch_span =
              telemetry_->RecordTimed(fetch_timer, 1, state->trace,
                                      telemetry::Subsystem::kHostbridge);
        }
        return pulled;
      }();
      if (!file.ok()) {
        // kUnavailable = "dry right now": flush what we have, come back.
        // Anything else ends the stream.
        if (file.status().code() != StatusCode::kUnavailable) {
          source_exhausted = true;
        }
        break;
      }
      CollectedFile cf = std::move(file).value();
      if (injector_ != nullptr &&
          injector_->Fire(fault::FaultKind::kCorruptJpeg)) {
        // Corrupt the compressed payload before it reaches the decoder; the
        // mutated copy is pinned like a network payload.
        state->payloads[slot] = injector_->Corrupt(cf.bytes);
        cf.bytes = ByteSpan(state->payloads[slot].data(),
                            state->payloads[slot].size());
        if (telemetry::EventLog* events = EventsSink()) {
          events->Log(
              telemetry::EventType::kFaultInjected, state->trace.batch_id,
              static_cast<uint64_t>(fault::FaultKind::kCorruptJpeg), slot);
        }
      } else if (cf.OwnsPayload()) {
        // Pin network payloads for the async decode's lifetime.
        state->payloads[slot] = std::move(cf.owned);
        cf.bytes = ByteSpan(state->payloads[slot].data(),
                            state->payloads[slot].size());
      }
      state->items[slot].cookie = cf.request_id;
      state->items[slot].label = cf.label;
      state->items[slot].offset =
          static_cast<uint32_t>(slot * options_.SlotStride());
      state->sources[slot] = cf.bytes;
      const telemetry::TraceContext cmd_trace =
          fetch_span != 0 ? state->trace.Child(fetch_span) : state->trace;
      cmds.push_back(
          BuildCmd(batch_seq, slot, cf.bytes, state->buffer, cmd_trace));
      // Opportunistic drain during assembly — nothing of THIS batch is
      // submitted yet, so `state` stays valid inside the loop.
      ProcessCompletions(channel_->DrainCompletions());
    }

    if (slot == 0) {
      // Nothing fetched into this buffer: recycle it untouched.
      auto it = in_flight_.find(batch_seq);
      if (telemetry::Tracer* tracer = TracerSink()) {
        tracer->AbandonBatch(it->second.trace);
      }
      in_flight_.erase(it);
      pool_->Recycle(buffer);
      break;
    }
    // Shrink a partial final batch to what was actually fetched — before
    // the submit, so completions racing in can retire it.
    if (slot < options_.batch_size) {
      auto it = in_flight_.find(batch_seq);
      it->second.expected = slot;
      it->second.items.resize(slot);
    }
    if (!SubmitBatch(cmds)) source_exhausted = true;
  }

  // Flush: wait for every in-flight batch to finish. With a completion
  // timeout armed the wait is polled, so lost FINISH records cannot park
  // the flush forever.
  while (running_.load(std::memory_order_relaxed) && !in_flight_.empty()) {
    if (options_.completion_timeout_ms > 0) {
      ProcessCompletions(channel_->WaitCompletionsFor(10));
      ReapTimedOutBatches();
      if (channel_->IsClosed()) break;
    } else {
      auto completions = channel_->WaitCompletions();
      if (completions.empty()) break;  // device shut down
      ProcessCompletions(std::move(completions));
    }
  }
  // Batches still unfinished at shutdown never reach a consumer.
  if (telemetry::Tracer* tracer = TracerSink()) {
    for (auto& [seq, state] : in_flight_) tracer->AbandonBatch(state.trace);
  }
  finished_.store(true, std::memory_order_release);
}

}  // namespace dlb
