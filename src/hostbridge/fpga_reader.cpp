#include "hostbridge/fpga_reader.h"

#include <chrono>

#include "common/log.h"

namespace dlb {

namespace {
// Cookie layout: high bits batch sequence, low 20 bits slot index.
constexpr int kSlotBits = 20;
constexpr uint64_t kSlotMask = (1ull << kSlotBits) - 1;
}  // namespace

FpgaReader::FpgaReader(fpga::FpgaDevice* device, DataCollector* collector,
                       HugePagePool* pool, const FpgaReaderOptions& options)
    : device_(device), collector_(collector), pool_(pool), options_(options) {
  DLB_CHECK(device_ && collector_ && pool_);
  DLB_CHECK(options_.batch_size > 0);
  DLB_CHECK(options_.batch_size < kSlotMask);
  DLB_CHECK(options_.SlotStride() * options_.batch_size <= pool_->BufferBytes());
}

FpgaReader::~FpgaReader() { Stop(); }

void FpgaReader::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::jthread([this] { Loop(); });
}

void FpgaReader::Stop() {
  if (!running_.exchange(false)) return;
  pool_->Close();  // unblocks queue waits in the loop
  if (thread_.joinable()) thread_.join();
}

bool FpgaReader::SubmitOne(uint64_t batch_seq, size_t slot,
                           const CollectedFile& file, BatchBuffer* buffer,
                           const telemetry::TraceContext& trace) {
  fpga::FpgaCmd cmd;
  cmd.cookie = (batch_seq << kSlotBits) | slot;
  cmd.jpeg = file.bytes;
  cmd.trace = trace;
  // The cmd carries a *physical* address in hardware; here we translate
  // eagerly and hand the device the virtual alias, asserting the mapping
  // is valid — the same check the real MMU performs.
  const uint64_t phys =
      buffer->phys_addr + static_cast<uint64_t>(slot) * options_.SlotStride();
  auto virt = pool_->PhysToVirt(phys);
  DLB_CHECK(virt.ok());
  cmd.out = virt.value();
  cmd.out_capacity = options_.SlotStride();
  cmd.resize_w = options_.resize_w;
  cmd.resize_h = options_.resize_h;
  cmd.aspect_crop = options_.aspect_crop;

  // Aggressive submit: when the FIFO is full, drain completions and retry
  // (the blocking branch of Algorithm 1).
  while (running_.load(std::memory_order_relaxed)) {
    Status s = device_->SubmitCmd(cmd);
    if (s.ok()) {
      submitted_.Add();
      return true;
    }
    if (s.code() == StatusCode::kClosed) return false;
    ProcessCompletions(device_->WaitCompletions());
  }
  return false;
}

void FpgaReader::ProcessCompletions(
    std::vector<fpga::FpgaCompletion> completions) {
  for (auto& c : completions) {
    const uint64_t batch_seq = c.cookie >> kSlotBits;
    const size_t slot = static_cast<size_t>(c.cookie & kSlotMask);
    auto it = in_flight_.find(batch_seq);
    if (it == in_flight_.end()) continue;  // batch abandoned at shutdown
    BatchState& state = it->second;
    BatchItem& item = state.items[slot];
    item.ok = c.status.ok();
    item.bytes = static_cast<uint32_t>(c.bytes_written);
    item.width = static_cast<uint16_t>(c.width);
    item.height = static_cast<uint16_t>(c.height);
    item.channels = static_cast<uint8_t>(c.channels);
    completed_.Add();
    if (!c.status.ok()) failures_.Add();
    ++state.done;
    if (state.done == state.expected) FinishBatch(it);
  }
}

void FpgaReader::FinishBatch(std::map<uint64_t, BatchState>::iterator it) {
  BatchState& state = it->second;
  state.buffer->items = std::move(state.items);
  if (telemetry_ != nullptr && state.start_ns != 0) {
    // Collect span: buffer acquisition -> fully assembled batch.
    telemetry_->RecordSpan(telemetry::Stage::kCollect, state.start_ns,
                           telemetry::NowNs(), state.expected, state.trace,
                           telemetry::Subsystem::kHostbridge);
  }
  // Closed full queue at shutdown => drop; otherwise hand off.
  const bool pushed = pool_->FullQueue().Push(state.buffer).ok();
  if (telemetry::EventLog* events = EventsSink()) {
    if (!pushed) {
      events->Log(telemetry::EventType::kBatchDropped, state.trace.batch_id,
                  /*reason: full queue closed*/ 1);
    } else {
      const size_t depth = pool_->FullQueue().Size();
      const size_t cap = pool_->FullQueue().Capacity();
      if (depth * 4 >= cap * 3) {
        events->Log(telemetry::EventType::kQueueHighWatermark,
                    state.trace.batch_id, depth, cap);
      }
    }
  }
  if (!pushed) {
    // The batch will never be consumed; retire its trace explicitly.
    if (telemetry::Tracer* tracer = TracerSink()) {
      tracer->AbandonBatch(state.trace);
    }
  }
  pool_->PublishOccupancy();
  batches_.Add();
  in_flight_.erase(it);
}

void FpgaReader::Loop() {
  using namespace std::chrono_literals;
  bool source_exhausted = false;
  while (running_.load(std::memory_order_relaxed) && !source_exhausted) {
    // Acquire an empty batch buffer, draining completions while we wait so
    // the decoder's FINISH ring never backs up.
    BatchBuffer* buffer = nullptr;
    bool reported_exhausted = false;
    while (running_.load(std::memory_order_relaxed)) {
      auto popped = pool_->FreeQueue().PopFor(1ms);
      if (popped.has_value()) {
        buffer = *popped;
        break;
      }
      if (pool_->FreeQueue().IsClosed()) return;
      if (!reported_exhausted) {
        // Once per wait, not once per poll: the pool ran dry, the reader is
        // backpressured by the consumer side.
        reported_exhausted = true;
        if (telemetry::EventLog* events = EventsSink()) {
          events->Log(telemetry::EventType::kPoolExhausted, 0,
                      pool_->FullQueue().Size());
        }
      }
      ProcessCompletions(device_->DrainCompletions());
    }
    if (buffer == nullptr) break;
    pool_->PublishOccupancy();

    const uint64_t batch_seq = next_batch_seq_++;
    // Register the batch before the first submit so completions that race
    // ahead of assembly find their state. Map nodes are pointer-stable.
    BatchState* state = nullptr;
    {
      BatchState fresh;
      fresh.buffer = buffer;
      fresh.expected = options_.batch_size;
      fresh.start_ns = telemetry_ != nullptr ? telemetry::NowNs() : 0;
      fresh.items.resize(options_.batch_size);
      fresh.payloads.resize(options_.batch_size);
      // Batch admission: mint the trace context that every downstream span
      // of this batch will link into, and stamp it on the buffer.
      if (telemetry::Tracer* tracer = TracerSink()) {
        fresh.trace = tracer->StartBatch();
        buffer->trace = fresh.trace;
      }
      if (telemetry::EventLog* events = EventsSink()) {
        events->Log(telemetry::EventType::kBatchAdmitted,
                    fresh.trace.batch_id);
      }
      state = &in_flight_.emplace(batch_seq, std::move(fresh)).first->second;
    }

    size_t slot = 0;
    for (; slot < options_.batch_size; ++slot) {
      // Fetch span covers only the collector pull, not the device submit.
      // Recorded manually (not ScopedSpan) because the decode command it
      // causes must parent to this span's id.
      const uint64_t fetch_start =
          telemetry_ != nullptr ? telemetry::NowNs() : 0;
      auto file = collector_->Next();
      uint64_t fetch_span = 0;
      if (telemetry_ != nullptr && file.ok()) {
        fetch_span = telemetry_->RecordSpan(
            telemetry::Stage::kFetch, fetch_start, telemetry::NowNs(), 1,
            state->trace, telemetry::Subsystem::kHostbridge);
      }
      if (!file.ok()) {
        source_exhausted = true;
        break;
      }
      CollectedFile cf = std::move(file).value();
      if (cf.OwnsPayload()) {
        // Pin network payloads for the async decode's lifetime.
        state->payloads[slot] = std::move(cf.owned);
        cf.bytes = ByteSpan(state->payloads[slot].data(),
                            state->payloads[slot].size());
      }
      state->items[slot].cookie = cf.request_id;
      state->items[slot].label = cf.label;
      state->items[slot].offset =
          static_cast<uint32_t>(slot * options_.SlotStride());
      const telemetry::TraceContext cmd_trace =
          fetch_span != 0 ? state->trace.Child(fetch_span) : state->trace;
      if (!SubmitOne(batch_seq, slot, cf, state->buffer, cmd_trace)) {
        source_exhausted = true;
        ++slot;
        break;
      }
      // Opportunistic drain. This can only retire THIS batch after its
      // final slot was submitted, so `state` stays valid inside the loop.
      ProcessCompletions(device_->DrainCompletions());
    }

    if (slot == 0) {
      // Nothing submitted into this buffer: recycle it untouched.
      auto it = in_flight_.find(batch_seq);
      if (telemetry::Tracer* tracer = TracerSink()) {
        tracer->AbandonBatch(it->second.trace);
      }
      in_flight_.erase(it);
      pool_->Recycle(buffer);
      break;
    }
    // Shrink a partial final batch to what was actually submitted.
    auto it = in_flight_.find(batch_seq);
    if (it != in_flight_.end() && slot < options_.batch_size) {
      it->second.expected = slot;
      it->second.items.resize(slot);
      if (it->second.done == it->second.expected) FinishBatch(it);
    }
  }

  // Flush: wait for every in-flight batch to finish.
  while (running_.load(std::memory_order_relaxed) && !in_flight_.empty()) {
    auto completions = device_->WaitCompletions();
    if (completions.empty()) break;  // device shut down
    ProcessCompletions(std::move(completions));
  }
  // Batches still unfinished at shutdown never reach a consumer.
  if (telemetry::Tracer* tracer = TracerSink()) {
    for (auto& [seq, state] : in_flight_) tracer->AbandonBatch(state.trace);
  }
  finished_.store(true, std::memory_order_release);
}

}  // namespace dlb
