// The six DL models the paper evaluates (§5.1): LeNet-5, AlexNet and
// ResNet-18 for training; GoogLeNet, VGG-16 and ResNet-50 for inference.
//
// Rates are calibrated to the paper's P100 testbed (see calibration.h for
// the anchors); parameter sizes are the published model sizes and drive the
// gradient-synchronisation cost of multi-GPU training.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace dlb::gpu {

struct DlModel {
  std::string name;
  int input_w = 224;
  int input_h = 224;
  int input_c = 3;
  uint64_t param_bytes = 0;  // fp32 parameter footprint

  /// Training throughput of ONE P100 with an always-ready input pipeline
  /// (the "performance upper boundary" lines of Figs. 2/5), img/s.
  double train_rate_per_gpu = 0;
  /// Efficiency of 2-GPU data-parallel training relative to 2x one GPU
  /// (gradient all-reduce overhead), from Fig. 2/5 ratios.
  double two_gpu_scaling = 1.0;
  /// The paper's per-GPU training batch size for this model.
  int train_batch = 0;

  /// Saturated fp16 inference throughput of one P100 (TensorRT), img/s.
  double infer_rate_per_gpu = 0;
  /// Fixed per-batch cost (kernel launches, engine enqueue), seconds.
  double infer_launch_seconds = 0;

  /// GPU-seconds of inference compute for a batch of n images.
  double InferBatchSeconds(int n) const {
    return infer_launch_seconds + static_cast<double>(n) / infer_rate_per_gpu;
  }
  /// GPU-seconds of fwd+bwd training compute for a batch of n images.
  double TrainBatchSeconds(int n) const {
    return static_cast<double>(n) / train_rate_per_gpu;
  }
};

const DlModel& LeNet5();
const DlModel& AlexNet();
const DlModel& ResNet18();
const DlModel& GoogLeNet();
const DlModel& Vgg16();
const DlModel& ResNet50();

/// All zoo models, training models first.
const std::vector<const DlModel*>& AllModels();

/// Case-sensitive lookup by name ("alexnet", "resnet50", ...).
Result<const DlModel*> FindModel(const std::string& name);

}  // namespace dlb::gpu
