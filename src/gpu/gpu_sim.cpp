#include "gpu/gpu_sim.h"

namespace dlb::gpu {

GpuDevice::GpuDevice(sim::Scheduler* sched, sim::CpuAccountant* cpu, int index,
                     const GpuOptions& options)
    : sched_(sched),
      cpu_(cpu),
      index_(index),
      options_(options),
      copy_engine_(sched, 1, "gpu" + std::to_string(index) + ".copy"),
      cores_(sched, options.compute_capacity,
             "gpu" + std::to_string(index) + ".cores") {}

void GpuDevice::CopyH2D(uint64_t bytes, int pieces, sim::EventFn on_done) {
  if (pieces < 1) pieces = 1;
  const double transfer =
      static_cast<double>(bytes) / options_.pcie_bytes_per_sec;
  const double total = transfer + options_.memcpy_overhead_s * pieces;
  // Per-piece driver work also costs CPU (the "transforming" category of
  // Fig. 6(d) — staging and issuing the copies).
  if (cpu_ != nullptr) {
    cpu_->Charge("transform", options_.memcpy_overhead_s * pieces * 0.5);
  }
  copy_engine_.Submit(sim::Seconds(total), std::move(on_done));
}

void GpuDevice::SubmitCompute(double gpu_seconds, double weight,
                              sim::EventFn on_done) {
  cores_.Submit(gpu_seconds, weight, std::move(on_done));
}

void GpuDevice::ChargeLaunchCores() {
  if (cpu_ != nullptr) {
    cpu_->ChargeInterval("kernel_launch", cores_.BusyTime(),
                         options_.launch_cores);
  }
}

}  // namespace dlb::gpu
