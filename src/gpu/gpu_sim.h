// GPU device simulator for the evaluation layer.
//
// Two aspects matter for the paper's figures:
//  1. Compute contention: the CUDA cores are a processor-sharing pool, so
//     when an nvJPEG-style backend decodes ON the GPU it steals capacity
//     from model kernels (the §5.3 "nvJPEG dominates 30-40% GPU" effect).
//  2. Transfer costs: batched host->device copies over PCIe, with per-call
//     overhead — the reason DLBooster's large-block batch copies beat
//     per-item small copies (§5.2 reason 1).
// Kernel launches also charge fractional CPU cores (Fig. 6(d): 0.95).
#pragma once

#include <memory>
#include <string>

#include "sim/calibration.h"
#include "sim/cpu_accountant.h"
#include "sim/processor_sharing.h"
#include "sim/resource.h"
#include "sim/scheduler.h"

namespace dlb::gpu {

struct GpuOptions {
  double pcie_bytes_per_sec = cal::kPcieBandwidth;
  double memcpy_overhead_s = cal::kMemcpyOverheadUs * 1e-6;
  /// Abstract compute capacity: 1.0 = one full GPU's worth of GPU-seconds
  /// per second. Model rates in the zoo are defined against 1.0.
  double compute_capacity = 1.0;
  /// CPU cores charged (category "kernel_launch") while compute runs.
  double launch_cores = cal::kLaunchCoresPerGpu;
};

class GpuDevice {
 public:
  GpuDevice(sim::Scheduler* sched, sim::CpuAccountant* cpu, int index,
            const GpuOptions& options = {});

  /// Async host->device copy of `bytes` in `pieces` chunks (pieces > 1
  /// models per-item small copies; DLBooster uses pieces = 1 per batch).
  void CopyH2D(uint64_t bytes, int pieces, sim::EventFn on_done);

  /// Submit `gpu_seconds` of compute with processor-sharing `weight`.
  void SubmitCompute(double gpu_seconds, double weight, sim::EventFn on_done);

  /// Charge launch-thread CPU cores for the GPU-busy time accumulated so
  /// far (call once, at the end of a simulation — charging per job would
  /// double-count overlapping processor-sharing jobs).
  void ChargeLaunchCores();

  double ComputeUtilization() const { return cores_.Utilization(); }
  double CopyUtilization() const { return copy_engine_.Utilization(); }
  int Index() const { return index_; }

 private:
  sim::Scheduler* sched_;
  sim::CpuAccountant* cpu_;
  int index_;
  GpuOptions options_;
  sim::Resource copy_engine_;
  sim::ProcessorSharing cores_;
};

}  // namespace dlb::gpu
