#include "gpu/model_zoo.h"

namespace dlb::gpu {

// Training anchors: Fig. 2 gives the AlexNet boundary (2496 / 4652 img/s on
// 1 / 2 GPUs => 93.2% scaling). LeNet-5 and ResNet-18 boundaries are read
// off the Fig. 5(a)/(c) axes. Inference anchors: Fig. 7 saturation levels
// per model (with the ResNet-50 series using 2 GPUs, see EXPERIMENTS.md).

const DlModel& LeNet5() {
  static const DlModel m{
      .name = "lenet5",
      .input_w = 28,
      .input_h = 28,
      .input_c = 1,
      .param_bytes = 1700ull * 1024,  // ~0.43M params fp32
      .train_rate_per_gpu = 100000.0,
      .two_gpu_scaling = 0.97,
      .train_batch = 512,
      .infer_rate_per_gpu = 300000.0,
      .infer_launch_seconds = 120e-6,
  };
  return m;
}

const DlModel& AlexNet() {
  static const DlModel m{
      .name = "alexnet",
      .param_bytes = 244ull * 1024 * 1024,  // 61M params fp32
      .train_rate_per_gpu = 2496.0,
      .two_gpu_scaling = 0.932,
      .train_batch = 256,
      .infer_rate_per_gpu = 9000.0,
      .infer_launch_seconds = 300e-6,
  };
  return m;
}

const DlModel& ResNet18() {
  static const DlModel m{
      .name = "resnet18",
      .param_bytes = 47ull * 1024 * 1024,  // 11.7M params fp32
      .train_rate_per_gpu = 1400.0,
      .two_gpu_scaling = 0.95,
      .train_batch = 128,
      .infer_rate_per_gpu = 4800.0,
      .infer_launch_seconds = 400e-6,
  };
  return m;
}

const DlModel& GoogLeNet() {
  static const DlModel m{
      .name = "googlenet",
      .param_bytes = 27ull * 1024 * 1024,  // 6.8M params fp32
      .train_rate_per_gpu = 1800.0,
      .two_gpu_scaling = 0.95,
      .train_batch = 128,
      .infer_rate_per_gpu = 3300.0,
      .infer_launch_seconds = 450e-6,
  };
  return m;
}

const DlModel& Vgg16() {
  static const DlModel m{
      .name = "vgg16",
      .param_bytes = 553ull * 1024 * 1024,  // 138M params fp32
      .train_rate_per_gpu = 700.0,
      .two_gpu_scaling = 0.90,
      .train_batch = 64,
      .infer_rate_per_gpu = 1750.0,
      .infer_launch_seconds = 600e-6,
  };
  return m;
}

const DlModel& ResNet50() {
  static const DlModel m{
      .name = "resnet50",
      .param_bytes = 102ull * 1024 * 1024,  // 25.6M params fp32
      .train_rate_per_gpu = 800.0,
      .two_gpu_scaling = 0.94,
      .train_batch = 64,
      .infer_rate_per_gpu = 2600.0,
      .infer_launch_seconds = 500e-6,
  };
  return m;
}

const std::vector<const DlModel*>& AllModels() {
  static const std::vector<const DlModel*> all = {
      &LeNet5(), &AlexNet(),  &ResNet18(),
      &GoogLeNet(), &Vgg16(), &ResNet50()};
  return all;
}

Result<const DlModel*> FindModel(const std::string& name) {
  for (const DlModel* m : AllModels()) {
    if (m->name == name) return m;
  }
  return NotFound("unknown model: " + name);
}

}  // namespace dlb::gpu
