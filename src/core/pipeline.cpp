#include "core/pipeline.h"

#include "backends/cached_backend.h"
#include "backends/cpu_backend.h"
#include "backends/lmdb_backend.h"
#include "backends/synthetic_backend.h"
#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/buildinfo.h"
#include "common/log.h"
#include "telemetry/exposition.h"
#include "telemetry/profiler.h"
#include "telemetry/trace_exporter.h"

namespace dlb::core {

Pipeline::~Pipeline() { Shutdown(); }

void Pipeline::Shutdown() {
  // The monitor serves sampler snapshots: stop the server before the
  // sampler, and both before the recording side winds down. The SLO engine
  // and watchdog stop before the flight recorder (they pull its trigger),
  // the recorder before the sampler (bundles snapshot its rings) — Stop()
  // drains queued triggers, so a breach just before shutdown still lands.
  if (monitor_) monitor_->Stop();
  if (slo_) slo_->Stop();
  if (watchdog_) watchdog_->Stop();
  if (flight_) flight_->Stop();
  if (sampler_) sampler_->Stop();
  if (backend_) backend_->Stop();
  if (!trace_path_.empty() && !trace_exported_.exchange(true)) {
    Status s = ExportTrace(trace_path_);
    if (!s.ok()) DLB_WARN << "trace export failed: " << s.message();
  }
}

Status Pipeline::ExportTrace(const std::string& path) {
  telemetry::Tracer* tracer = telemetry_->tracer();
  if (tracer == nullptr) {
    return FailedPrecondition("tracing is not enabled on this pipeline");
  }
  Status s = telemetry::TraceExporter::WriteChromeJson(*tracer, path);
  if (s.ok()) {
    if (telemetry::EventLog* events = telemetry_->events()) {
      events->Log(telemetry::EventType::kTraceExported, 0,
                  tracer->SpansRecorded());
    }
  }
  return s;
}

Result<BatchPtr> Pipeline::NextBatch(int engine) {
  if (engine < 0 || engine >= num_engines_) {
    return InvalidArgument("engine id " + std::to_string(engine) +
                           " out of range [0, " +
                           std::to_string(num_engines_) + ")");
  }
  // Consume span: how long the engine waited for (and accounted) a batch —
  // the pipeline-is-the-bottleneck signal. Recorded with the batch's trace
  // context, then the batch's root span is closed: consume is the last
  // stage of the tree.
  telemetry::StageTimer consume_timer(telemetry::Stage::kConsume);
  auto batch = backend_->NextBatch(engine);
  if (!batch.ok()) {
    return batch.status();
  }
  const size_t size = batch.value()->Size();
  const size_t ok = batch.value()->OkCount();
  const telemetry::TraceContext trace = batch.value()->Trace();
  telemetry_->RecordTimed(consume_timer, size, trace,
                          telemetry::Subsystem::kCore,
                          static_cast<uint32_t>(engine));
  if (trace.Enabled()) {
    if (telemetry::Tracer* tracer = telemetry_->tracer()) {
      tracer->EndBatch(trace, size);
    }
  }
  if (telemetry::EventLog* events = telemetry_->events()) {
    events->Log(telemetry::EventType::kBatchCompleted, trace.batch_id, ok,
                size - ok);
  }
  {
    std::scoped_lock lock(stats_mu_);
    ++stats_.batches;
    stats_.images_ok += ok;
    stats_.images_failed += size - ok;
  }
  return batch;
}

Result<std::pair<Tensor, std::vector<int32_t>>> Pipeline::NextTensorBatch(
    int engine, const Normalization& norm, std::vector<ImageError>* errors) {
  // Per-image decode failures are skips, never aborts: a batch whose every
  // image failed (possible under fault injection) is dropped whole and the
  // next one is pulled. Only stream end (kClosed) or a transport error
  // propagates to the caller.
  while (true) {
    auto batch = NextBatch(engine);
    if (!batch.ok()) return batch.status();
    const PreprocessBatch& b = *batch.value();

    std::vector<Image> images;
    std::vector<int32_t> labels;
    images.reserve(b.Size());
    for (size_t i = 0; i < b.Size(); ++i) {
      const ImageRef ref = b.At(i);
      if (!ref.ok) {
        if (errors != nullptr) {
          errors->push_back(ImageError{ref.cookie, ref.label,
                                       ref.error != StatusCode::kOk
                                           ? ref.error
                                           : StatusCode::kInternal});
        }
        continue;
      }
      images.push_back(ref.ToImage());
      labels.push_back(ref.label);
    }
    if (images.empty()) continue;
    auto tensor = BatchToTensor(images, norm);
    if (!tensor.ok()) return tensor.status();
    return std::make_pair(std::move(tensor).value(), std::move(labels));
  }
}

PipelineStats Pipeline::Stats() const {
  PipelineStats out;
  {
    std::scoped_lock lock(stats_mu_);
    out = stats_;
  }
  out.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  if (out.elapsed_seconds > 0.0) {
    out.images_per_second =
        static_cast<double>(out.images_ok) / out.elapsed_seconds;
  }
  out.stages = telemetry_->SnapshotStages();
  return out;
}

std::string Pipeline::StatsJson() const {
  const PipelineStats stats = Stats();
  std::ostringstream os;
  os << "{\"backend\":\"" << backend_name_ << "\""
     << ",\"batches\":" << stats.batches
     << ",\"images_ok\":" << stats.images_ok
     << ",\"images_failed\":" << stats.images_failed
     << ",\"elapsed_seconds\":" << stats.elapsed_seconds
     << ",\"images_per_second\":" << stats.images_per_second
     << ",\"stages\":[";
  bool first = true;
  for (const telemetry::StageSnapshot& s : stats.stages) {
    if (!first) os << ",";
    first = false;
    os << "{\"stage\":\"" << s.name << "\",\"ops\":" << s.ops
       << ",\"items\":" << s.items << ",\"busy_ns\":" << s.busy_ns
       << ",\"cpu_ns\":" << s.cpu_ns << ",\"wait_ns\":" << s.wait_ns
       << ",\"mean_ns\":" << s.mean_ns << ",\"p50_ns\":" << s.p50_ns
       << ",\"p95_ns\":" << s.p95_ns << ",\"p99_ns\":" << s.p99_ns
       << ",\"max_ns\":" << s.max_ns << "}";
  }
  os << "]}";
  return os.str();
}

PipelineBuilder& PipelineBuilder::WithConfig(PipelineConfig config) {
  config_ = std::move(config);
  return *this;
}

PipelineBuilder& PipelineBuilder::WithDataset(const Manifest* manifest,
                                              const BlobStore* store) {
  manifest_ = manifest;
  store_ = store;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithNetworkSource(
    BoundedQueue<NetworkImage>* rx_queue) {
  rx_queue_ = rx_queue;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithDatabase(const Manifest* manifest,
                                               const db::KvStore* db) {
  manifest_ = manifest;
  db_ = db;
  return *this;
}

Result<std::unique_ptr<Pipeline>> PipelineBuilder::Build() {
  // Reject contradictory sources before any resources spin up.
  if (store_ != nullptr && db_ != nullptr) {
    return InvalidArgument(
        "conflicting sources: WithDataset() and WithDatabase() are "
        "mutually exclusive");
  }
  if (rx_queue_ != nullptr && (store_ != nullptr || db_ != nullptr)) {
    return InvalidArgument(
        "conflicting sources: WithNetworkSource() cannot combine with a "
        "dataset or database");
  }
  const BackendOptions& o = config_.options;
  if (o.batch_size == 0) {
    return InvalidArgument("options.batch_size must be >= 1");
  }
  if (o.num_engines < 1) {
    return InvalidArgument("options.num_engines must be >= 1");
  }
  if (o.num_threads < 1) {
    return InvalidArgument("options.num_threads must be >= 1");
  }
  // Geometry is validated on the *resolved* output spec, so both the new
  // OutputSpec field and the legacy resize_w/resize_h shim are covered.
  const OutputSpec out = o.ResolvedOutput();
  if (out.width < 1 || out.height < 1) {
    return InvalidArgument("options output width/height must be >= 1");
  }
  if (out.channels != 1 && out.channels != 3) {
    return InvalidArgument("options output channels must be 1 or 3");
  }
  if (o.queue_depth == 0) {
    return InvalidArgument("options.queue_depth must be >= 1");
  }

  if (config_.monitor_port > 65535) {
    return InvalidArgument("monitor_port must be <= 65535 (got " +
                           std::to_string(config_.monitor_port) + ")");
  }

  if (config_.devices < 1) {
    return InvalidArgument("devices must be >= 1");
  }
  if (config_.numa_nodes < 1) {
    return InvalidArgument("numa_nodes must be >= 1");
  }
  if (config_.placement != "interleave" && config_.placement != "pack") {
    return InvalidArgument("placement must be \"interleave\" or \"pack\" (got " +
                           config_.placement + ")");
  }
  if (config_.steal_watermark < 1) {
    return InvalidArgument("steal_watermark must be >= 1");
  }

  auto level = telemetry::ParseEventLevel(config_.event_log_level);
  if (!level.ok()) return level.status();

  // Fault plane: the DLB_FAULTS environment variable overrides the config
  // spec, so chaos runs need no rebuild. fault_seed (when set) overrides
  // the spec's seed — same seed, same fault schedule.
  fault::FaultSpec fault_spec;
  if (const char* env = std::getenv("DLB_FAULTS"); env != nullptr) {
    auto spec = fault::ParseFaultSpec(env);
    if (!spec.ok()) return spec.status();
    fault_spec = spec.value();
  } else if (!config_.faults.empty()) {
    auto spec = fault::ParseFaultSpec(config_.faults);
    if (!spec.ok()) return spec.status();
    fault_spec = spec.value();
  }
  if (config_.fault_seed != 0) fault_spec.seed = config_.fault_seed;

  // SLO plane: the DLB_SLO environment variable overrides the config spec,
  // mirroring DLB_FAULTS — declare objectives without a rebuild.
  slo::SloSpec slo_spec;
  if (const char* env = std::getenv("DLB_SLO"); env != nullptr) {
    auto spec = slo::ParseSloSpec(env);
    if (!spec.ok()) return spec.status();
    slo_spec = std::move(spec).value();
  } else if (!config_.slo.empty()) {
    auto spec = slo::ParseSloSpec(config_.slo);
    if (!spec.ok()) return spec.status();
    slo_spec = std::move(spec).value();
  }
  const bool flight_on = !config_.flight_dir.empty();

  auto pipeline = std::unique_ptr<Pipeline>(new Pipeline());
  pipeline->backend_name_ = config_.backend;
  pipeline->num_engines_ = o.num_engines;

  // Observability wiring must precede backend construction: components
  // latch the tracer/event-log pointers when telemetry is attached. The
  // flight recorder implies tracing (bundles carry the breach-window
  // Perfetto trace) and raises event logging to "info" when left off
  // (bundles carry the event tail).
  const bool tracing = config_.enable_tracing || !config_.trace_path.empty() ||
                       config_.watchdog_deadline_ms > 0 || flight_on;
  if (tracing) {
    pipeline->telemetry_->EnableTracing(config_.trace_span_capacity);
    pipeline->trace_path_ = config_.trace_path;
  }
  telemetry::EventLevel event_level = level.value();
  if (flight_on && event_level == telemetry::EventLevel::kOff) {
    event_level = telemetry::EventLevel::kInfo;
  }
  if (event_level != telemetry::EventLevel::kOff) {
    pipeline->telemetry_->EnableEvents(config_.event_log_capacity,
                                       event_level);
  }
  if (config_.watchdog_deadline_ms > 0) {
    telemetry::WatchdogOptions wd;
    wd.deadline_ms = config_.watchdog_deadline_ms;
    pipeline->watchdog_ = std::make_unique<telemetry::Watchdog>(
        pipeline->telemetry_.get(), wd);
  }

  // Source collector (not needed by lmdb/synthetic).
  DataCollector* collector = nullptr;
  if (rx_queue_ != nullptr) {
    pipeline->collector_ = std::make_unique<NetDataCollector>(rx_queue_);
    collector = pipeline->collector_.get();
  } else if (manifest_ != nullptr && store_ != nullptr) {
    pipeline->collector_ = std::make_unique<DiskDataCollector>(
        manifest_, store_, config_.options.shuffle, config_.options.seed);
    collector = pipeline->collector_.get();
  }
  if (collector != nullptr && config_.max_images > 0) {
    pipeline->bounded_collector_ =
        std::make_unique<BoundedCollector>(collector, config_.max_images);
    collector = pipeline->bounded_collector_.get();
  }

  std::unique_ptr<PreprocessBackend> backend;
  if (config_.backend == "dlbooster") {
    if (collector == nullptr) {
      return InvalidArgument("dlbooster backend needs a dataset or network source");
    }
    DlboosterOptions opts = config_.dlbooster;
    opts.backend = config_.options;
    // Scale-out knobs: the pipeline-level fields win over whatever the
    // embedded DlboosterOptions carried (the larger device count wins so
    // neither knob silently shrinks the fleet).
    opts.num_devices = std::max(opts.num_devices, config_.devices);
    opts.numa_nodes = config_.numa_nodes;
    opts.placement = config_.placement;
    opts.steal_enabled = config_.steal;
    opts.steal_watermark = config_.steal_watermark;
    if (config_.decoder_mirror != "jpeg" && !opts.device.custom_decoder) {
      auto mirror = DecoderRegistry::Global().Create(config_.decoder_mirror);
      if (!mirror.ok()) return mirror.status();
      pipeline->mirror_ = std::move(mirror).value();
      DecoderMirror* m = pipeline->mirror_.get();
      opts.device.custom_decoder = [m](ByteSpan data) { return m->Decode(data); };
    }
    backend = std::make_unique<DlboosterBackend>(collector, opts);
  } else if (config_.backend == "cpu") {
    if (collector == nullptr) {
      return InvalidArgument("cpu backend needs a dataset or network source");
    }
    backend = std::make_unique<CpuBackend>(collector, config_.options);
  } else if (config_.backend == "lmdb") {
    if (manifest_ == nullptr || db_ == nullptr) {
      return InvalidArgument("lmdb backend needs WithDatabase()");
    }
    backend = std::make_unique<LmdbBackend>(manifest_, db_, config_.options,
                                            config_.max_images);
  } else if (config_.backend == "synthetic") {
    const uint64_t max_batches =
        config_.max_images > 0
            ? (config_.max_images + config_.options.batch_size - 1) /
                  config_.options.batch_size
            : 0;
    backend = std::make_unique<SyntheticBackend>(config_.options, max_batches);
  } else {
    return InvalidArgument("unknown backend: " + config_.backend);
  }

  if (config_.cache_epochs) {
    backend = std::make_unique<CachedBackend>(std::move(backend),
                                              config_.cache_budget_bytes);
  }
  pipeline->backend_ = std::move(backend);
  pipeline->backend_->AttachTelemetry(pipeline->telemetry_.get());
  if (fault_spec.Any()) {
    pipeline->injector_ = std::make_unique<fault::FaultInjector>(fault_spec);
    pipeline->injector_->AttachRegistry(&pipeline->telemetry_->Registry());
    pipeline->backend_->AttachFaultInjector(pipeline->injector_.get());
  }
  // Sampler: the monitoring plane, the SLO engine and the flight recorder
  // all read its time series, so it exists whenever any of them does.
  if (config_.monitor_port >= 0 || slo_spec.Any() || flight_on) {
    telemetry::SamplerOptions sampler_opts;
    sampler_opts.sample_ms = config_.monitor_sample_ms;
    pipeline->sampler_ = std::make_unique<telemetry::MetricsSampler>(
        pipeline->telemetry_.get(), sampler_opts);
  }

  // Flight recorder: armed before the backend starts so fault-plane
  // trigger sites (retry exhaustion, way quarantine) reach it from the
  // first batch. Components find it through the telemetry hub.
  if (flight_on) {
    flight::FlightOptions fopts;
    fopts.dir = config_.flight_dir;
    fopts.max_bundles = config_.flight_max_bundles;
    fopts.min_interval_ms = config_.flight_min_interval_ms;
    fopts.profile_ms = config_.flight_profile_ms;
    fopts.trace_window_ms = config_.flight_trace_window_ms;
    pipeline->flight_ = std::make_unique<flight::FlightRecorder>(
        pipeline->telemetry_.get(), fopts);
    pipeline->flight_->AttachSampler(pipeline->sampler_.get());
    Pipeline* p = pipeline.get();
    pipeline->flight_->SetTopologyProvider(
        [p] { return p->backend_->Describe(); });
    pipeline->flight_->SetStatsProvider([p] { return p->StatsJson(); });
    pipeline->telemetry_->AttachFlightRecorder(pipeline->flight_.get());
    pipeline->flight_->Start();
  }

  // SLO engine: evaluates the declared objectives over the sampler's
  // series; a burn-rate breach snapshots a flight bundle when the
  // recorder is armed.
  if (slo_spec.Any()) {
    slo::SloEngineOptions slo_opts;
    slo_opts.eval_ms = config_.monitor_sample_ms;
    pipeline->slo_ = std::make_unique<slo::SloEngine>(
        pipeline->telemetry_.get(), pipeline->sampler_.get(),
        std::move(slo_spec), slo_opts);
    if (pipeline->flight_) {
      flight::FlightRecorder* fr = pipeline->flight_.get();
      pipeline->slo_->OnBreach([fr](const slo::SloBreach& breach) {
        fr->Trigger(flight::TriggerKind::kSloBreach, breach.Describe());
      });
    }
  }

  // Watchdog stall → bundle. The callback replaces the watchdog's default
  // logging, so log the report here before triggering.
  if (pipeline->watchdog_ && pipeline->flight_) {
    flight::FlightRecorder* fr = pipeline->flight_.get();
    pipeline->watchdog_->OnStall([fr](const telemetry::StallReport& report) {
      DLB_WARN << report.text;
      fr->Trigger(flight::TriggerKind::kWatchdogStall,
                  "no stage progress for " + std::to_string(report.quiet_ms) +
                      " ms");
    });
  }

  pipeline->start_time_ = std::chrono::steady_clock::now();
  DLB_RETURN_IF_ERROR(pipeline->backend_->Start());
  if (pipeline->watchdog_) pipeline->watchdog_->Start();

  // Monitoring plane: the exposition server. Wired last so every endpoint
  // observes a fully-started pipeline.
  if (config_.monitor_port >= 0) {
    telemetry::MonitorServer::Options server_opts;
    server_opts.bind_address = config_.monitor_bind;
    server_opts.port = config_.monitor_port;
    pipeline->monitor_ =
        std::make_unique<telemetry::MonitorServer>(server_opts);

    Pipeline* p = pipeline.get();
    pipeline->monitor_->AddHandler(
        "/metrics", [p](const telemetry::HttpRequest&) {
          return telemetry::HttpResponse{
              200, telemetry::kPrometheusContentType,
              telemetry::RenderPrometheus(p->telemetry_->Registry(),
                                          p->sampler_.get())};
        });
    pipeline->monitor_->AddHandler(
        "/metrics.json", [p](const telemetry::HttpRequest& request) {
          // ?points=1 includes the sampler's time-series rings (what the
          // dashboard's sparkline view wants; scrapers skip the weight).
          const bool points =
              request.query.find("points=1") != std::string::npos;
          std::string body = "{\"metrics\":" +
                             p->telemetry_->Registry().ReportJson() +
                             ",\"sampler\":" + p->sampler_->Json(points) + "}";
          return telemetry::HttpResponse{200, "application/json",
                                         std::move(body)};
        });
    pipeline->monitor_->AddHandler(
        "/stats", [p](const telemetry::HttpRequest&) {
          return telemetry::HttpResponse{200, "application/json",
                                         p->StatsJson()};
        });
    pipeline->monitor_->AddHandler(
        "/events", [p](const telemetry::HttpRequest& request) {
          telemetry::EventLog* events = p->telemetry_->events();
          if (events == nullptr) {
            return telemetry::HttpResponse{
                200, "application/x-ndjson",
                ""};  // log disabled: empty tail, still a valid JSONL body
          }
          size_t n = 64;
          const size_t eq = request.query.find("n=");
          if (eq != std::string::npos) {
            n = static_cast<size_t>(
                std::strtoull(request.query.c_str() + eq + 2, nullptr, 10));
            if (n == 0) n = 64;
          }
          std::string body;
          for (const telemetry::Event& e : events->Tail(n)) {
            body += telemetry::EventLog::RenderJson(e);
            body += "\n";
          }
          return telemetry::HttpResponse{200, "application/x-ndjson",
                                         std::move(body)};
        });
    pipeline->monitor_->AddHandler(
        "/profile", [p](const telemetry::HttpRequest& request) {
          // Sampling profile over a bounded window. The monitor poll loop
          // is single-threaded, so collection blocks other endpoints for
          // the window — hence the 30 s ceiling. ?seconds=N or ?ms=N pick
          // the window (default 2 s), ?hz=N the tick rate, ?format=json
          // the full report (default: collapsed stacks for flamegraph.pl).
          uint64_t window_ms = 2000;
          const size_t sec = request.query.find("seconds=");
          if (sec != std::string::npos) {
            window_ms = 1000 * std::strtoull(
                                   request.query.c_str() + sec + 8, nullptr,
                                   10);
          }
          const size_t ms = request.query.find("ms=");
          // "ms=" also matches inside "seconds=...&ms=..."; a bare prefix
          // match is fine — the last spelled knob wins via this ordering.
          if (ms != std::string::npos &&
              (ms == 0 || request.query[ms - 1] == '&' ||
               request.query[ms - 1] == '?')) {
            window_ms =
                std::strtoull(request.query.c_str() + ms + 3, nullptr, 10);
          }
          window_ms = std::clamp<uint64_t>(window_ms, 10, 30'000);
          prof::ProfilerOptions opts;
          const size_t hz = request.query.find("hz=");
          if (hz != std::string::npos) {
            const uint64_t rate =
                std::strtoull(request.query.c_str() + hz + 3, nullptr, 10);
            if (rate > 0) opts.interval_us = 1'000'000 / rate;
          }
          const auto report = prof::Profiler::ProfileFor(
              window_ms, opts, &p->telemetry_->Registry());
          if (request.query.find("format=json") != std::string::npos) {
            return telemetry::HttpResponse{200, "application/json",
                                           report.Json()};
          }
          return telemetry::HttpResponse{200, "text/plain; charset=utf-8",
                                         report.Collapsed()};
        });
    pipeline->monitor_->AddHandler(
        "/slo", [p](const telemetry::HttpRequest&) {
          const std::string body = p->slo_ != nullptr
                                       ? p->slo_->Json()
                                       : std::string("{\"enabled\":false}");
          return telemetry::HttpResponse{200, "application/json", body};
        });
    pipeline->monitor_->AddHandler(
        "/buildinfo", [](const telemetry::HttpRequest&) {
          return telemetry::HttpResponse{200, "application/json",
                                         BuildInfoJson()};
        });
    pipeline->monitor_->AddHandler(
        "/debug/dump", [p](const telemetry::HttpRequest& request) {
          if (p->flight_ == nullptr) {
            return telemetry::HttpResponse{200, "application/json",
                                           "{\"enabled\":false}"};
          }
          if (request.method == "POST") {
            // Manual black-box capture: synchronous, bypasses the
            // automated-trigger rate limit.
            auto bundle = p->flight_->WriteBundleNow(
                flight::TriggerKind::kManual, "POST /debug/dump");
            if (!bundle.ok()) {
              return telemetry::HttpResponse{
                  500, "application/json",
                  "{\"error\":\"" + bundle.status().message() + "\"}"};
            }
            return telemetry::HttpResponse{
                200, "application/json",
                "{\"bundle\":\"" + bundle.value() + "\"}"};
          }
          return telemetry::HttpResponse{200, "application/json",
                                         p->flight_->ListJson()};
        });
    pipeline->monitor_->AddHandler(
        "/healthz", [p](const telemetry::HttpRequest&) {
          if (p->watchdog_ != nullptr && p->watchdog_->CurrentlyStalled()) {
            return telemetry::HttpResponse{
                503, "text/plain; charset=utf-8",
                "stalled: no stage progress past the watchdog deadline\n"};
          }
          // Degraded-but-serving: quarantined ways, skipped images or a
          // burning SLO mean reduced capacity, not an outage — still 200,
          // but flagged so operators (and the soak harness) can see it.
          MetricRegistry& reg = p->telemetry_->Registry();
          const uint64_t quarantined =
              static_cast<uint64_t>(reg.GetGauge("fpga.ways_quarantined")->Value());
          const uint64_t decode_errors =
              reg.GetCounter("decode.errors")->Value();
          const uint64_t slo_burning =
              p->slo_ != nullptr ? p->slo_->AnyBurning() : 0;
          // The front door (frontdoor::FrontDoor) publishes its shed level
          // into this registry; shedding is degraded-but-serving too.
          const uint64_t shedding = static_cast<uint64_t>(
              reg.GetGauge("frontdoor.shed_level")->Value());
          if (quarantined > 0 || decode_errors > 0 || slo_burning > 0 ||
              shedding > 0) {
            std::string body =
                "degraded ways_quarantined=" + std::to_string(quarantined) +
                " decode_errors=" + std::to_string(decode_errors);
            if (slo_burning > 0) {
              body += " slo_burning=" + std::to_string(slo_burning);
            }
            if (shedding > 0) {
              body += " shedding_level=" + std::to_string(shedding);
            }
            return telemetry::HttpResponse{200, "text/plain; charset=utf-8",
                                           std::move(body) + "\n"};
          }
          return telemetry::HttpResponse{200, "text/plain; charset=utf-8",
                                         "ok\n"};
        });

    DLB_RETURN_IF_ERROR(pipeline->monitor_->Start());
  }
  if (pipeline->sampler_) pipeline->sampler_->Start();
  if (pipeline->slo_) pipeline->slo_->Start();
  return pipeline;
}

}  // namespace dlb::core
