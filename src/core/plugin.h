// Pluggable decoder mirrors (§3.1, §4.1).
//
// The paper packs each FPGA decoding logic as a "mirror" that users download
// to the device per application. Here a mirror is a named, thread-safe
// decode function plus a format sniffer; the registry is what the Pipeline
// consults when the user asks for a non-default decoder. Two mirrors ship
// built in: "jpeg" (the full baseline codec) and "ppm" (binary P5/P6).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "image/image.h"

namespace dlb::core {

class DecoderMirror {
 public:
  virtual ~DecoderMirror() = default;

  virtual std::string Name() const = 0;
  virtual std::string Description() const = 0;

  /// True when this mirror recognises the byte stream.
  virtual bool Sniff(ByteSpan data) const = 0;

  /// Full functional decode. Must be thread-safe: the emulated FPGA runs
  /// it concurrently from several unit workers.
  virtual Result<Image> Decode(ByteSpan data) const = 0;
};

using MirrorFactory = std::function<std::unique_ptr<DecoderMirror>()>;

/// Process-wide mirror registry.
class DecoderRegistry {
 public:
  /// The singleton registry, pre-populated with the built-in mirrors.
  static DecoderRegistry& Global();

  /// Register a factory; fails on duplicate names.
  Status Register(const std::string& name, MirrorFactory factory);

  /// Instantiate a mirror by name.
  Result<std::unique_ptr<DecoderMirror>> Create(const std::string& name) const;

  /// Registered mirror names, sorted.
  std::vector<std::string> List() const;

 private:
  DecoderRegistry();
  mutable std::mutex mu_;
  std::map<std::string, MirrorFactory> factories_;
};

}  // namespace dlb::core
