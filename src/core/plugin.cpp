#include "core/plugin.h"

#include "codec/jpeg_decoder.h"
#include "codec/png.h"
#include "codec/ppm.h"

namespace dlb::core {

namespace {

class JpegMirror : public DecoderMirror {
 public:
  std::string Name() const override { return "jpeg"; }
  std::string Description() const override {
    return "baseline JFIF decoder (4-stage pipeline)";
  }
  bool Sniff(ByteSpan data) const override {
    return data.size() >= 2 && data[0] == 0xFF && data[1] == 0xD8;
  }
  Result<Image> Decode(ByteSpan data) const override {
    return jpeg::Decode(data);
  }
};

class PngMirror : public DecoderMirror {
 public:
  std::string Name() const override { return "png"; }
  std::string Description() const override {
    return "PNG decoder (DEFLATE + all scanline filters)";
  }
  bool Sniff(ByteSpan data) const override { return png::SniffPng(data); }
  Result<Image> Decode(ByteSpan data) const override {
    return png::Decode(data);
  }
};

class PpmMirror : public DecoderMirror {
 public:
  std::string Name() const override { return "ppm"; }
  std::string Description() const override {
    return "binary PPM/PGM (P6/P5) decoder";
  }
  bool Sniff(ByteSpan data) const override { return ppm::SniffPpm(data); }
  Result<Image> Decode(ByteSpan data) const override {
    return ppm::Decode(data);
  }
};

}  // namespace

DecoderRegistry::DecoderRegistry() {
  factories_["jpeg"] = [] { return std::make_unique<JpegMirror>(); };
  factories_["png"] = [] { return std::make_unique<PngMirror>(); };
  factories_["ppm"] = [] { return std::make_unique<PpmMirror>(); };
}

DecoderRegistry& DecoderRegistry::Global() {
  static DecoderRegistry registry;
  return registry;
}

Status DecoderRegistry::Register(const std::string& name,
                                 MirrorFactory factory) {
  if (name.empty() || !factory) {
    return InvalidArgument("mirror needs a name and a factory");
  }
  std::scoped_lock lock(mu_);
  if (factories_.count(name)) {
    return FailedPrecondition("mirror already registered: " + name);
  }
  factories_[name] = std::move(factory);
  return Status::Ok();
}

Result<std::unique_ptr<DecoderMirror>> DecoderRegistry::Create(
    const std::string& name) const {
  std::scoped_lock lock(mu_);
  auto it = factories_.find(name);
  if (it == factories_.end()) return NotFound("no such mirror: " + name);
  return it->second();
}

std::vector<std::string> DecoderRegistry::List() const {
  std::scoped_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, _] : factories_) names.push_back(name);
  return names;
}

}  // namespace dlb::core
