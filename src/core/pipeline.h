// DLBooster public API: build a preprocessing pipeline in a few lines.
//
//   auto dataset = dlb::GenerateDataset(dlb::ImageNetLikeSpec(512));
//   dlb::core::PipelineConfig config;
//   config.backend = "dlbooster";
//   auto pipeline = dlb::core::PipelineBuilder()
//                       .WithConfig(config)
//                       .WithDataset(&dataset->manifest, dataset->store.get())
//                       .Build();
//   auto batch = pipeline.value()->NextBatch();
//
// The same builder drives every backend (Table 1's promise: swap the
// backend, keep the engine code), the network source for inference, the
// first-epoch cache, and pluggable decoder mirrors.
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "backends/backend.h"
#include "backends/dlbooster_backend.h"
#include "core/plugin.h"
#include "dataplane/manifest.h"
#include "dataplane/blob_store.h"
#include "hostbridge/data_collector.h"
#include "image/tensor.h"
#include "storagedb/kv_store.h"
#include "telemetry/event_log.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics_sampler.h"
#include "telemetry/monitor_server.h"
#include "telemetry/slo.h"
#include "telemetry/trace.h"
#include "telemetry/watchdog.h"

namespace dlb::core {

struct PipelineConfig {
  /// "dlbooster" | "cpu" | "lmdb" | "synthetic"
  std::string backend = "dlbooster";
  BackendOptions options;
  /// DLBooster-specific knobs (FPGA config, pool sizing).
  DlboosterOptions dlbooster;
  /// Emulated FPGA decoder devices (scale-out shards). Values > 1 shard
  /// the data plane: per-device arenas + Free/Full queues behind the
  /// work-stealing router. Takes precedence over dlbooster.num_devices
  /// when larger.
  int devices = 1;
  /// NUMA nodes the device shards are placed across (1 = flat memory).
  int numa_nodes = 1;
  /// Shard placement across nodes: "interleave" | "pack".
  std::string placement = "interleave";
  /// Cross-device work stealing (multi-device only).
  bool steal = true;
  /// Steal only from shards backlogged beyond this depth.
  int steal_watermark = 4;
  /// Decoder mirror to load ("jpeg" default; see DecoderRegistry).
  std::string decoder_mirror = "jpeg";
  /// Stop after this many images (0 = stream until the source closes).
  uint64_t max_images = 0;
  /// Enable the §3.1 first-epoch memory cache.
  bool cache_epochs = false;
  uint64_t cache_budget_bytes = 1ull << 30;

  // --- Observability (DESIGN.md §5) ---
  /// Batch tracing: every batch gets a causally-linked span tree across
  /// fetch/decode/resize/collect/dispatch/consume. Also implied by a
  /// non-empty trace_path or a non-zero watchdog_deadline_ms.
  bool enable_tracing = false;
  /// When non-empty, Shutdown() writes a Chrome/Perfetto trace_event JSON
  /// file here (load in ui.perfetto.dev or chrome://tracing).
  std::string trace_path;
  /// Trace ring capacity in spans (rounded up to a power of two).
  size_t trace_span_capacity = size_t{1} << 15;
  /// Structured event log level: "off" | "warn" | "info" | "debug".
  /// Anything but "off" enables the event ring.
  std::string event_log_level = "off";
  size_t event_log_capacity = telemetry::kDefaultEventCapacity;
  /// Stall watchdog: fire a report when no stage makes progress for this
  /// many ms while batches are in flight (0 = disabled). Implies tracing.
  uint64_t watchdog_deadline_ms = 0;

  // --- Fault injection (DESIGN.md "Fault model") ---
  /// Fault spec, e.g. "corrupt_jpeg=0.01,fpga_unit_stall=0.001,dma_error=
  /// 0.005". The DLB_FAULTS environment variable, when set, overrides this
  /// field. Empty (and no env) = fault plane off.
  std::string faults;
  /// Overrides the spec's RNG seed when non-zero (the spec's own `seed=`
  /// key applies otherwise; default 42). Same seed = same fault schedule.
  uint64_t fault_seed = 0;

  // --- Monitoring plane (DESIGN.md §5.5) ---
  /// Embedded HTTP exposition server port: -1 = off, 0 = pick an ephemeral
  /// port (read it back via Pipeline::MonitorPort()), else the TCP port to
  /// bind. Serves /metrics (Prometheus), /metrics.json, /stats, /events
  /// and /healthz, and starts the metrics sampler.
  int monitor_port = -1;
  /// Bind address for the monitor server (loopback unless exposed).
  std::string monitor_bind = "127.0.0.1";
  /// Metrics sampler period in ms (rates/watermarks are derived per
  /// window). Also the SLO engine's evaluation cadence, and the sampler
  /// runs whenever the SLO engine or flight recorder needs it — even with
  /// the monitor server off.
  uint64_t monitor_sample_ms = 500;

  // --- SLO engine + flight recorder (DESIGN.md §5.10) ---
  /// Declared objectives, e.g. "infer_p99<8ms/30s,decode_errors<0.1%"
  /// (grammar in telemetry/slo.h). The DLB_SLO environment variable, when
  /// set, overrides this field. Empty (and no env) = engine off.
  std::string slo;
  /// Flight-recorder bundle directory; non-empty arms the recorder (and
  /// implies tracing — bundles carry the breach-window Perfetto trace).
  /// Event logging is raised to "info" when left "off", so bundles carry an
  /// event tail.
  std::string flight_dir;
  /// Bundles retained on disk; the oldest is deleted past the cap.
  size_t flight_max_bundles = 8;
  /// Minimum spacing between automated bundles (manual POST /debug/dump
  /// bypasses it).
  uint64_t flight_min_interval_ms = 5000;
  /// Auto-captured dlb::prof profile window per bundle (0 = skip).
  uint64_t flight_profile_ms = 200;
  /// Trace window per bundle: spans ending in the last this-many ms
  /// (0 = everything resident in the ring).
  uint64_t flight_trace_window_ms = 10'000;
};

/// Structured pipeline snapshot. The first three fields are the legacy
/// surface (kept verbatim for existing callers; deprecated in favour of the
/// per-stage view — see DESIGN.md "Observability"); the rest is derived from
/// the pipeline's telemetry at snapshot time.
struct PipelineStats {
  // Legacy counters (deprecated: prefer `stages` + derived rates).
  uint64_t batches = 0;
  uint64_t images_ok = 0;
  uint64_t images_failed = 0;

  /// Wall time since the pipeline was built.
  double elapsed_seconds = 0.0;
  /// images_ok / elapsed_seconds (0 while nothing was consumed).
  double images_per_second = 0.0;
  /// Per-stage counts, throughput and latency quantiles in dataflow order
  /// (fetch, decode, resize, collect, dispatch, consume). Stages a backend
  /// never exercises report zero ops.
  std::vector<telemetry::StageSnapshot> stages;
};

class Pipeline {
 public:
  ~Pipeline();
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Next decoded batch for `engine` (round-robin fed). kClosed at stream
  /// end; kInvalidArgument when `engine` is outside [0, num_engines).
  Result<BatchPtr> NextBatch(int engine = 0);

  /// Convenience: next batch staged as a normalised NCHW float tensor with
  /// labels (what a compute engine actually consumes). Failed decodes are
  /// skipped — never fatal: a batch whose every image failed is skipped
  /// whole and the next batch is pulled (kClosed still ends the stream).
  /// When `errors` is non-null, each skipped image appends a structured
  /// ImageError {cookie, label, status code} for the caller to inspect.
  Result<std::pair<Tensor, std::vector<int32_t>>> NextTensorBatch(
      int engine = 0, const Normalization& norm = {},
      std::vector<ImageError>* errors = nullptr);

  /// Structured snapshot: legacy counters plus elapsed time, throughput and
  /// the per-stage latency/throughput breakdown.
  PipelineStats Stats() const;

  /// The pipeline's metric registry (stage metrics, backend counters,
  /// pool/dispatcher/FPGA gauges). Valid for the pipeline's lifetime.
  MetricRegistry& Metrics() { return telemetry_->Registry(); }

  /// All metrics as a deterministic JSON object (MetricRegistry format).
  std::string MetricsJson() const { return telemetry_->Registry().ReportJson(); }

  /// The underlying telemetry sink (span ring + stage metrics).
  telemetry::Telemetry& TelemetrySink() { return *telemetry_; }

  /// Batch tracer; null unless tracing was enabled in the config.
  telemetry::Tracer* Tracer() const { return telemetry_->tracer(); }
  /// Structured event log; null unless event_log_level != "off".
  telemetry::EventLog* Events() const { return telemetry_->events(); }
  /// Stall watchdog; null unless watchdog_deadline_ms > 0.
  telemetry::Watchdog* StallWatchdog() { return watchdog_.get(); }
  /// Fault injector; null unless a fault spec was configured (config.faults
  /// or the DLB_FAULTS environment variable).
  fault::FaultInjector* Faults() { return injector_.get(); }
  /// Metrics sampler; null unless monitoring, the SLO engine or the flight
  /// recorder was enabled.
  telemetry::MetricsSampler* Sampler() { return sampler_.get(); }
  /// Exposition server; null unless monitoring was enabled.
  telemetry::MonitorServer* Monitor() { return monitor_.get(); }
  /// The bound monitoring port (resolves monitor_port=0), -1 when off.
  int MonitorPort() const { return monitor_ ? monitor_->Port() : -1; }
  /// SLO engine; null unless objectives were declared (config.slo or the
  /// DLB_SLO environment variable).
  slo::SloEngine* Slo() { return slo_.get(); }
  /// Flight recorder; null unless config.flight_dir was set.
  flight::FlightRecorder* Flight() { return flight_.get(); }

  /// Stats() as deterministic JSON — the /stats endpoint body.
  std::string StatsJson() const;

  /// Export the batch trace as Chrome trace_event JSON to `path` now.
  /// kFailedPrecondition when tracing is off. Shutdown() calls this
  /// automatically for config.trace_path.
  Status ExportTrace(const std::string& path);

  const PreprocessBackend& Backend() const { return *backend_; }
  const std::string& BackendName() const { return backend_name_; }

  /// Stop all pipeline threads (also runs on destruction). Exports the
  /// trace to config.trace_path (once) after the threads settle.
  void Shutdown();

 private:
  friend class PipelineBuilder;
  Pipeline() : telemetry_(std::make_unique<telemetry::Telemetry>()) {}

  std::string backend_name_;
  int num_engines_ = 1;
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<telemetry::Watchdog> watchdog_;
  std::unique_ptr<telemetry::MetricsSampler> sampler_;
  std::unique_ptr<flight::FlightRecorder> flight_;
  std::unique_ptr<slo::SloEngine> slo_;
  std::unique_ptr<telemetry::MonitorServer> monitor_;
  std::string trace_path_;
  std::atomic<bool> trace_exported_{false};
  std::unique_ptr<DecoderMirror> mirror_;
  std::unique_ptr<DataCollector> collector_;
  std::unique_ptr<DataCollector> bounded_collector_;
  std::unique_ptr<PreprocessBackend> backend_;
  std::chrono::steady_clock::time_point start_time_;
  mutable std::mutex stats_mu_;
  PipelineStats stats_;
};

class PipelineBuilder {
 public:
  PipelineBuilder& WithConfig(PipelineConfig config);

  /// Disk path: manifest + blob store (training workflows).
  PipelineBuilder& WithDataset(const Manifest* manifest,
                               const BlobStore* store);

  /// Network path: queue the NIC receive loop fills (inference workflows).
  PipelineBuilder& WithNetworkSource(BoundedQueue<NetworkImage>* rx_queue);

  /// Offline path: pre-converted DB for the "lmdb" backend.
  PipelineBuilder& WithDatabase(const Manifest* manifest,
                                const db::KvStore* db);

  /// Construct and start the pipeline.
  Result<std::unique_ptr<Pipeline>> Build();

 private:
  PipelineConfig config_;
  const Manifest* manifest_ = nullptr;
  const BlobStore* store_ = nullptr;
  BoundedQueue<NetworkImage>* rx_queue_ = nullptr;
  const db::KvStore* db_ = nullptr;
};

}  // namespace dlb::core
