// DLBooster public API: build a preprocessing pipeline in a few lines.
//
//   auto dataset = dlb::GenerateDataset(dlb::ImageNetLikeSpec(512));
//   dlb::core::PipelineConfig config;
//   config.backend = "dlbooster";
//   auto pipeline = dlb::core::PipelineBuilder()
//                       .WithConfig(config)
//                       .WithDataset(&dataset->manifest, dataset->store.get())
//                       .Build();
//   auto batch = pipeline.value()->NextBatch();
//
// The same builder drives every backend (Table 1's promise: swap the
// backend, keep the engine code), the network source for inference, the
// first-epoch cache, and pluggable decoder mirrors.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "backends/backend.h"
#include "backends/dlbooster_backend.h"
#include "core/plugin.h"
#include "dataplane/manifest.h"
#include "dataplane/blob_store.h"
#include "hostbridge/data_collector.h"
#include "image/tensor.h"
#include "storagedb/kv_store.h"

namespace dlb::core {

struct PipelineConfig {
  /// "dlbooster" | "cpu" | "lmdb" | "synthetic"
  std::string backend = "dlbooster";
  BackendOptions options;
  /// DLBooster-specific knobs (FPGA config, pool sizing).
  DlboosterOptions dlbooster;
  /// Decoder mirror to load ("jpeg" default; see DecoderRegistry).
  std::string decoder_mirror = "jpeg";
  /// Stop after this many images (0 = stream until the source closes).
  uint64_t max_images = 0;
  /// Enable the §3.1 first-epoch memory cache.
  bool cache_epochs = false;
  uint64_t cache_budget_bytes = 1ull << 30;
};

struct PipelineStats {
  uint64_t batches = 0;
  uint64_t images_ok = 0;
  uint64_t images_failed = 0;
};

class Pipeline {
 public:
  ~Pipeline();
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Next decoded batch for `engine` (round-robin fed). kClosed at stream
  /// end.
  Result<BatchPtr> NextBatch(int engine = 0);

  /// Convenience: next batch staged as a normalised NCHW float tensor with
  /// labels (what a compute engine actually consumes). Failed decodes are
  /// skipped.
  Result<std::pair<Tensor, std::vector<int32_t>>> NextTensorBatch(
      int engine = 0, const Normalization& norm = {});

  PipelineStats Stats() const;
  const std::string& BackendName() const { return backend_name_; }

  /// Stop all pipeline threads (also runs on destruction).
  void Shutdown();

 private:
  friend class PipelineBuilder;
  Pipeline() = default;

  std::string backend_name_;
  std::unique_ptr<DecoderMirror> mirror_;
  std::unique_ptr<DataCollector> collector_;
  std::unique_ptr<DataCollector> bounded_collector_;
  std::unique_ptr<PreprocessBackend> backend_;
  mutable std::mutex stats_mu_;
  PipelineStats stats_;
};

class PipelineBuilder {
 public:
  PipelineBuilder& WithConfig(PipelineConfig config);

  /// Disk path: manifest + blob store (training workflows).
  PipelineBuilder& WithDataset(const Manifest* manifest,
                               const BlobStore* store);

  /// Network path: queue the NIC receive loop fills (inference workflows).
  PipelineBuilder& WithNetworkSource(BoundedQueue<NetworkImage>* rx_queue);

  /// Offline path: pre-converted DB for the "lmdb" backend.
  PipelineBuilder& WithDatabase(const Manifest* manifest,
                                const db::KvStore* db);

  /// Construct and start the pipeline.
  Result<std::unique_ptr<Pipeline>> Build();

 private:
  PipelineConfig config_;
  const Manifest* manifest_ = nullptr;
  const BlobStore* store_ = nullptr;
  BoundedQueue<NetworkImage>* rx_queue_ = nullptr;
  const db::KvStore* db_ = nullptr;
};

}  // namespace dlb::core
