// Shared dependency-free HTTP/1.1 server — the socket plane under both the
// monitoring exposition server (telemetry::MonitorServer) and the inference
// front door (frontdoor::FrontDoor).
//
// One background thread runs a poll() loop over the listen socket, a
// self-pipe wake channel and the client connections. The loop owns every
// connection's state machine (read headers -> read body -> dispatch ->
// write -> keep-alive reset or close); handlers never touch a socket.
//
// Two handler shapes:
//   - Handler: request in, response out, on the poll thread. Right for
//     snapshot endpoints (/metrics, /stats) that answer from memory.
//   - AsyncHandler: receives a Responder and returns immediately; any
//     thread may later call Responder::Send() exactly once. Right for
//     requests whose answer is produced elsewhere (the front door's
//     /infer completes from the pipeline's consume loop). Send() wakes
//     the poll loop through the self-pipe, so completion latency is not
//     quantised to the poll period.
//
// Hardening lives here once, for every embedded server (this is the
// extraction the monitor's request-timeout fix asked for):
//   - request timeout: a connection that has not completed its request
//     (headers AND body) within request_timeout_ms is dropped — truncated
//     request lines and slow-loris writers cannot pin a slot. The sweep
//     runs on its own cadence (sweep_interval_ms), decoupled from the
//     poll period.
//   - bounded buffers: oversized headers (431) and bodies (413) are
//     refused before they allocate unbounded memory.
//   - keep-alive: HTTP/1.1 connections are reused unless the client (or a
//     response) asks for close; idle keep-alive connections are reaped on
//     the longer idle_timeout_ms. Pipelined bytes left in the input
//     buffer after a response are served next, not dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace dlb::http {

struct HttpRequest {
  std::string method;  // "GET" | "POST"
  std::string path;    // "/infer" (query string stripped)
  std::string query;   // "tenant=premium&deadline_ms=50" (without the '?')
  std::string body;    // POST payload (Content-Length delimited)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Force Connection: close on an otherwise keep-alive connection.
  bool close_connection = false;
};

/// Decode "key=value" from a query string; empty string when absent.
std::string QueryParam(const std::string& query, const std::string& key);

class HttpServer {
 public:
  struct Options {
    /// Bind address. Loopback by default: embedded planes are
    /// process-local unless the operator opts into exposure.
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via Port()).
    int port = 0;
    /// Connections the poll loop tracks at once; accepts beyond this are
    /// served as soon as a slot frees (the backlog holds them).
    int max_connections = 64;
    /// A connection that has not completed its request (header terminator
    /// AND declared body) within this many ms is dropped, as is one whose
    /// response write makes no progress for this long.
    uint64_t request_timeout_ms = 5000;
    /// A keep-alive connection with no request in flight is reaped after
    /// this many ms (idle between requests is not slow-loris).
    uint64_t idle_timeout_ms = 15'000;
    /// Safety net for async handlers that never complete: the connection
    /// is answered 504 and closed after this many ms.
    uint64_t pending_timeout_ms = 30'000;
    /// Timeout-sweep cadence — deliberately decoupled from poll_ms so
    /// hardening deadlines hold even if the poll period is retuned.
    uint64_t sweep_interval_ms = 100;
    /// poll() timeout; bounds Stop() latency, nothing else (completions
    /// and socket events wake the loop immediately).
    int poll_ms = 50;
    /// Request body cap (413 beyond it) and header-block cap (431).
    size_t max_body_bytes = 8u << 20;
    size_t max_header_bytes = 1u << 16;
    /// Honor HTTP/1.1 keep-alive. Off = one request per connection.
    bool keep_alive = true;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Completes one async request. Copyable; Send() is thread-safe and
  /// idempotent (the first call wins). The HttpServer must outlive every
  /// Responder handed out — callers stop their completion threads before
  /// destroying the server.
  class Responder {
   public:
    Responder() = default;
    void Send(HttpResponse response) const;

   private:
    friend class HttpServer;
    struct State {
      std::function<void(HttpResponse)> sink;
      std::atomic<bool> done{false};
    };
    explicit Responder(std::shared_ptr<State> state)
        : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
  };

  using AsyncHandler = std::function<void(const HttpRequest&, Responder)>;

  HttpServer();
  explicit HttpServer(Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register handlers for an exact path. Call before Start(). A path is
  /// either sync or async, not both (the last registration wins).
  void AddHandler(std::string path, Handler handler);
  void AddAsyncHandler(std::string path, AsyncHandler handler);

  /// Bind, listen and launch the poll loop.
  Status Start();

  /// Stop the loop and close all sockets. Pending async requests are
  /// dropped (their Responder::Send becomes a no-op). Idempotent.
  void Stop();

  bool Running() const { return running_.load(std::memory_order_acquire); }

  /// The bound TCP port (resolves port 0), or -1 before Start().
  int Port() const { return port_.load(std::memory_order_acquire); }

  uint64_t RequestsServed() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t ConnectionsAccepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  /// Connections reaped by the timeout sweep (request, write or pending).
  uint64_t TimeoutsReaped() const {
    return timeouts_.load(std::memory_order_relaxed);
  }

  /// Route a request through the registered handlers without a socket —
  /// the deterministic seam tests use. Async handlers run synchronously
  /// (Dispatch blocks until the Responder is fed). 404 (with an endpoint
  /// listing body) on unknown path, 405 on anything but GET/POST.
  HttpResponse Dispatch(const HttpRequest& request) const;

  /// Serialize a response as an HTTP/1.1 wire message.
  static std::string Serialize(const HttpResponse& response,
                               bool keep_alive = false);

 private:
  struct Conn;

  void Loop(std::stop_token token);
  void CompleteAsync(uint64_t conn_id, HttpResponse response);
  void Wake();
  /// Parse + dispatch as many complete pipelined requests as `c.in`
  /// holds. Returns false when the connection must close (protocol
  /// error or cap exceeded).
  bool ProcessInput(Conn& c);
  void DispatchToConn(Conn& c, const HttpRequest& request);
  HttpResponse RouteSync(const HttpRequest& request) const;

  Options options_;
  std::map<std::string, Handler> handlers_;
  std::map<std::string, AsyncHandler> async_handlers_;
  std::jthread thread_;
  std::atomic<bool> running_{false};
  std::atomic<int> port_{-1};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> timeouts_{0};
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [read, write]

  // Async completions cross from caller threads to the poll loop here.
  mutable std::mutex completed_mu_;
  std::deque<std::pair<uint64_t, HttpResponse>> completed_;
  bool accepting_completions_ = false;
};

}  // namespace dlb::http
