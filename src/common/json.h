// A small recursive-descent JSON reader for tooling (benchdiff, tests).
//
// This is deliberately not a general-purpose JSON library: the repo's data
// interchange is the bench `--json` output and the monitor endpoints, all of
// which this code produces itself. It parses the full JSON grammar (objects,
// arrays, strings with escapes, numbers, booleans, null) into a Value tree,
// and offers FlattenNumbers() — the projection benchdiff runs on: every
// numeric leaf keyed by its dotted path ("scaled.img_s", "gate.pass").
// Booleans flatten as 0/1 so pass/fail gates diff like any other metric.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace dlb::json {

class Value;
using ValuePtr = std::shared_ptr<Value>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Kind kind() const { return kind_; }
  bool IsNumber() const { return kind_ == Kind::kNumber; }
  bool IsBool() const { return kind_ == Kind::kBool; }
  bool IsString() const { return kind_ == Kind::kString; }
  bool IsObject() const { return kind_ == Kind::kObject; }
  bool IsArray() const { return kind_ == Kind::kArray; }

  double number = 0.0;
  bool boolean = false;
  std::string str;
  std::vector<ValuePtr> array;
  // Insertion-ordered keys alongside the map keep object iteration stable.
  std::map<std::string, ValuePtr> object;
  std::vector<std::string> keys;

  static ValuePtr Make(Kind kind) {
    auto v = std::make_shared<Value>();
    v->kind_ = kind;
    return v;
  }

  /// Object member lookup; null when absent or not an object.
  ValuePtr Get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : it->second;
  }

 private:
  Kind kind_ = Kind::kNull;
};

/// Parse one JSON document (surrounding whitespace allowed, trailing junk
/// rejected).
Result<ValuePtr> Parse(const std::string& text);

/// Every numeric leaf of `value`, keyed by dotted path. Booleans map to
/// 0/1; array elements use their index as the path segment ("runs.0.ms").
/// Strings and nulls are skipped.
std::map<std::string, double> FlattenNumbers(const ValuePtr& value);

}  // namespace dlb::json
