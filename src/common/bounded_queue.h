// Bounded blocking MPMC queue — the backpressure primitive behind every
// channel in DLBooster (Free_Batch_Queue, Full_Batch_Queue, Trans Queues,
// FPGA cmd FIFO emulation).
//
// Follows CP.42 ("don't wait without a condition") and CP.20 (RAII locks).
// close() lets producers signal end-of-stream: blocked consumers wake and
// observe kClosed once the queue drains.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/log.h"
#include "common/status.h"

namespace dlb {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` must be >= 1: a zero-capacity queue can never pass an item,
  /// so it is a programmer error, not a degenerate configuration.
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    DLB_CHECK(capacity > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking push; returns kClosed if the queue was closed.
  Status Push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return Closed("push on closed queue");
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return Status::Ok();
  }

  /// Non-blocking push; kResourceExhausted when full, kClosed when closed.
  Status TryPush(T item) {
    {
      std::scoped_lock lock(mu_);
      if (closed_) return Closed("push on closed queue");
      if (items_.size() >= capacity_) return ResourceExhausted("queue full");
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return Status::Ok();
  }

  /// Batched non-blocking push: move items from [first, last) into the
  /// queue under ONE lock acquisition and wake consumers once — the
  /// software twin of a doorbell that announces a whole batch of slots.
  /// Returns how many items were accepted (a prefix; the queue may fill
  /// mid-batch, and a closed queue accepts none).
  template <typename It>
  size_t TryPushMany(It first, It last) {
    size_t pushed = 0;
    {
      std::scoped_lock lock(mu_);
      if (closed_) return 0;
      while (first != last && items_.size() < capacity_) {
        items_.push_back(std::move(*first));
        ++first;
        ++pushed;
      }
    }
    if (pushed > 0) not_empty_.notify_all();
    return pushed;
  }

  /// Blocking pop; empty optional means closed-and-drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Pop with a deadline; empty optional on timeout or closed-and-drained.
  std::optional<T> PopFor(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::optional<T> out;
    {
      std::scoped_lock lock(mu_);
      if (items_.empty()) return std::nullopt;
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Drain everything currently queued without blocking.
  std::deque<T> DrainAll() {
    std::deque<T> out;
    {
      std::scoped_lock lock(mu_);
      out.swap(items_);
    }
    not_full_.notify_all();
    return out;
  }

  /// After close, pushes fail and pops drain the remaining items then
  /// return nullopt. Idempotent.
  void Close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool IsClosed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

  size_t Size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

  size_t Capacity() const { return capacity_; }

  bool Empty() const { return Size() == 0; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dlb
