#include "common/benchdiff.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json.h"

namespace dlb::benchdiff {

namespace {

bool Contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

/// True if the final path segment is exactly "pass" (e.g. "gate.pass").
bool IsPassFlag(const std::string& metric) {
  const size_t dot = metric.rfind('.');
  const std::string leaf =
      dot == std::string::npos ? metric : metric.substr(dot + 1);
  return leaf == "pass";
}

double Better(Direction direction, double a, double b) {
  switch (direction) {
    case Direction::kLowerBetter:
      return std::min(a, b);
    case Direction::kHigherBetter:
    case Direction::kRatio:
    case Direction::kPassFlag:
      return std::max(a, b);
    case Direction::kInfo:
      return a;  // keep the first run's value
  }
  return a;
}

std::string FormatNumber(double v) {
  std::ostringstream os;
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    os << static_cast<int64_t>(v);
  } else {
    os.precision(4);
    os << v;
  }
  return os.str();
}

std::string FormatPct(double rel) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << (rel >= 0 ? "+" : "") << rel * 100.0 << "%";
  return os.str();
}

}  // namespace

Direction Classify(const std::string& metric) {
  if (IsPassFlag(metric)) return Direction::kPassFlag;
  if (Contains(metric, "ratio") || Contains(metric, "speedup") ||
      Contains(metric, "utilization") || Contains(metric, "hit_rate")) {
    return Direction::kRatio;
  }
  if (Contains(metric, "img_s") || Contains(metric, "_per_s") ||
      Contains(metric, "throughput") || Contains(metric, "mb_s")) {
    return Direction::kHigherBetter;
  }
  if (Contains(metric, "_ns") || Contains(metric, "_us") ||
      Contains(metric, "_ms") || Contains(metric, "latency") ||
      Contains(metric, "seconds")) {
    return Direction::kLowerBetter;
  }
  return Direction::kInfo;
}

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kOk: return "ok";
    case Verdict::kImproved: return "improved";
    case Verdict::kRegressed: return "REGRESSED";
    case Verdict::kMissing: return "MISSING";
    case Verdict::kNew: return "new";
  }
  return "?";
}

Result<BenchSet> LoadDir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return NotFound("bench dir not found: " + dir);
  }
  BenchSet set;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) != 0 || entry.path().extension() != ".json") {
      continue;
    }
    const std::string label = name.substr(6, name.size() - 6 - 5);
    if (label == "all") continue;  // the run manifest, not a bench
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    auto parsed = json::Parse(buf.str());
    if (!parsed.ok()) {
      return Status(parsed.status().code(),
                    name + ": " + parsed.status().message());
    }
    set[label] = json::FlattenNumbers(parsed.value());
  }
  if (set.empty()) {
    return NotFound("no BENCH_*.json files in " + dir);
  }
  return set;
}

BenchSet MergeBest(const std::vector<BenchSet>& runs) {
  BenchSet merged;
  for (const BenchSet& run : runs) {
    for (const auto& [label, metrics] : run) {
      auto& out = merged[label];
      for (const auto& [metric, value] : metrics) {
        auto it = out.find(metric);
        if (it == out.end()) {
          out[metric] = value;
        } else {
          it->second = Better(Classify(metric), it->second, value);
        }
      }
    }
  }
  return merged;
}

DiffReport Diff(const BenchSet& baseline, const BenchSet& candidate,
                const Thresholds& thresholds, Gate gate) {
  DiffReport report;
  for (const auto& [label, base_metrics] : baseline) {
    const auto cand_label = candidate.find(label);
    if (cand_label == candidate.end()) {
      MetricDiff d;
      d.label = label;
      d.metric = "*";
      d.verdict = Verdict::kMissing;
      d.gated = !thresholds.allow_missing;
      if (d.gated) ++report.regressions;
      report.diffs.push_back(std::move(d));
      continue;
    }
    for (const auto& [metric, base_value] : base_metrics) {
      MetricDiff d;
      d.label = label;
      d.metric = metric;
      d.direction = Classify(metric);
      d.baseline = base_value;
      const auto cand_metric = cand_label->second.find(metric);
      if (cand_metric == cand_label->second.end()) {
        d.verdict = Verdict::kMissing;
        d.gated =
            !thresholds.allow_missing && d.direction != Direction::kInfo;
        if (d.gated) ++report.regressions;
        report.diffs.push_back(std::move(d));
        continue;
      }
      d.candidate = cand_metric->second;
      const double delta = d.candidate - d.baseline;
      d.delta_rel =
          d.baseline != 0.0
              ? delta / std::abs(d.baseline)
              : (delta == 0.0 ? 0.0 : std::copysign(1e9, delta));

      const bool gateable =
          d.direction == Direction::kPassFlag ||
          d.direction == Direction::kRatio ||
          (gate == Gate::kAll && (d.direction == Direction::kHigherBetter ||
                                  d.direction == Direction::kLowerBetter));
      if (d.direction == Direction::kPassFlag) {
        // Strict: a pass-flag flip ignores thresholds entirely.
        if (d.baseline >= 0.5 && d.candidate < 0.5) {
          d.verdict = Verdict::kRegressed;
        } else if (d.baseline < 0.5 && d.candidate >= 0.5) {
          d.verdict = Verdict::kImproved;
        }
      } else if (d.direction != Direction::kInfo &&
                 std::abs(delta) > thresholds.abs) {
        const double threshold = d.direction == Direction::kRatio
                                     ? thresholds.ratio_rel
                                     : thresholds.rel;
        const double worse_rel = d.direction == Direction::kLowerBetter
                                     ? d.delta_rel
                                     : -d.delta_rel;
        if (worse_rel > threshold) {
          d.verdict = Verdict::kRegressed;
        } else if (-worse_rel > threshold) {
          d.verdict = Verdict::kImproved;
        }
      }
      d.gated = gateable && d.verdict == Verdict::kRegressed;
      if (d.gated) ++report.regressions;
      if (d.verdict == Verdict::kImproved) ++report.improvements;
      report.diffs.push_back(std::move(d));
    }
    // Candidate-only metrics within a shared label: informational.
    for (const auto& [metric, value] : cand_label->second) {
      if (base_metrics.count(metric) != 0) continue;
      MetricDiff d;
      d.label = label;
      d.metric = metric;
      d.direction = Classify(metric);
      d.candidate = value;
      d.verdict = Verdict::kNew;
      report.diffs.push_back(std::move(d));
    }
  }
  for (const auto& [label, metrics] : candidate) {
    if (baseline.count(label) != 0) continue;
    MetricDiff d;
    d.label = label;
    d.metric = "*";
    d.verdict = Verdict::kNew;
    report.diffs.push_back(std::move(d));
    (void)metrics;
  }
  std::stable_sort(report.diffs.begin(), report.diffs.end(),
                   [](const MetricDiff& a, const MetricDiff& b) {
                     if (a.gated != b.gated) return a.gated;
                     if (a.label != b.label) return a.label < b.label;
                     return a.metric < b.metric;
                   });
  return report;
}

std::string DiffReport::Markdown() const {
  std::ostringstream os;
  if (regressions > 0) {
    os << "## ❌ bench diff: " << regressions << " regression"
       << (regressions == 1 ? "" : "s") << "\n\n";
  } else {
    os << "## ✅ bench diff: no regressions";
    if (improvements > 0) {
      os << " (" << improvements << " improvement"
         << (improvements == 1 ? "" : "s") << ")";
    }
    os << "\n\n";
  }
  os << "| bench | metric | baseline | candidate | delta | verdict |\n"
     << "|---|---|---:|---:|---:|---|\n";
  for (const MetricDiff& d : diffs) {
    // Keep the table focused: skip unchanged informational rows.
    if (d.verdict == Verdict::kOk && d.direction == Direction::kInfo) {
      continue;
    }
    os << "| " << d.label << " | " << d.metric << " | "
       << (d.verdict == Verdict::kNew ? "—" : FormatNumber(d.baseline))
       << " | "
       << (d.verdict == Verdict::kMissing ? "—" : FormatNumber(d.candidate))
       << " | ";
    if (d.verdict == Verdict::kMissing || d.verdict == Verdict::kNew) {
      os << "—";
    } else {
      os << FormatPct(d.delta_rel);
    }
    os << " | " << VerdictName(d.verdict) << (d.gated ? " (gated)" : "")
       << " |\n";
  }
  return os.str();
}

}  // namespace dlb::benchdiff
