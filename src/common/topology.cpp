#include "common/topology.h"

namespace dlb::topo {

int TopologyPlan::DevicesOn(int node) const {
  int count = 0;
  for (int n : node_of_device) {
    if (n == node) ++count;
  }
  return count;
}

std::string TopologyPlan::ToString() const {
  std::string out = policy + "(" + std::to_string(numa_nodes) + " node" +
                    (numa_nodes == 1 ? "" : "s") + "):";
  for (size_t d = 0; d < node_of_device.size(); ++d) {
    out += " dev" + std::to_string(d) + ":n" +
           std::to_string(node_of_device[d]);
  }
  return out;
}

Result<TopologyPlan> PlanPlacement(int devices, int numa_nodes,
                                   const std::string& policy) {
  if (devices < 1) {
    return InvalidArgument("placement needs >= 1 device, got " +
                           std::to_string(devices));
  }
  if (numa_nodes < 1) {
    return InvalidArgument("placement needs >= 1 NUMA node, got " +
                           std::to_string(numa_nodes));
  }
  if (policy != "interleave" && policy != "pack") {
    return InvalidArgument("unknown placement policy \"" + policy +
                           "\" (want interleave|pack)");
  }
  TopologyPlan plan;
  plan.numa_nodes = numa_nodes;
  plan.policy = policy;
  plan.node_of_device.resize(static_cast<size_t>(devices));
  for (int d = 0; d < devices; ++d) {
    if (policy == "interleave") {
      plan.node_of_device[d] = d % numa_nodes;
    } else {
      // pack: devices fill nodes in contiguous runs, node 0 first. With
      // devices not divisible by nodes the earlier nodes take the extra.
      plan.node_of_device[d] =
          static_cast<int>((static_cast<long long>(d) * numa_nodes) / devices);
    }
  }
  return plan;
}

}  // namespace dlb::topo
