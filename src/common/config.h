// String key/value configuration with typed getters.
//
// Benches and examples accept "key=value" overrides on the command line and
// thread them down to components through a Config, so every experiment knob
// is scriptable without recompiling.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace dlb {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" tokens (e.g. argv tail). Unparseable tokens error.
  static Result<Config> FromArgs(const std::vector<std::string>& args);

  void Set(const std::string& key, const std::string& value);
  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key, const std::string& def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  /// All keys, sorted (for reproducible experiment headers).
  std::vector<std::string> Keys() const;

  std::string ToString() const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace dlb
