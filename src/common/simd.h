// SIMD capability detection and the kernel dispatch switch.
//
// Detection is compile-time: each kernel translation unit guards its
// vector arms with the DLB_SIMD_* macros below, which reflect what the
// compiler was asked to target (-march=...; see the DLB_SIMD / DLB_NATIVE
// CMake options). There is no runtime CPUID probing — the binary either
// contains an arm or it does not — but there IS a runtime mode switch so
// tests and benches can force the scalar arm (the reference oracle for
// bit-exactness checks) without rebuilding.
//
// Modes:
//   kFast      — best compiled arm (AVX2 > NEON > SSE2 > scalar).
//   kScalar    — the new scalar kernels, vector arms disabled. Output is
//                bit-identical to kFast by construction (integer kernels).
//   kReference — the seed textbook implementations (float basis-matmul
//                iDCT, per-pixel colour/resize accessors, bit-by-bit
//                Huffman). The oracle golden tests compare against.
#pragma once

#include <atomic>
#include <cstdlib>
#include <string>

#if !defined(DLB_DISABLE_SIMD)
#if defined(__AVX2__)
#define DLB_SIMD_AVX2 1
#endif
#if defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define DLB_SIMD_SSE2 1
#endif
#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define DLB_SIMD_NEON 1
#endif
#endif  // !DLB_DISABLE_SIMD

namespace dlb::simd {

enum class KernelMode {
  kFast = 0,       // dispatch to the best compiled arm
  kScalar = 1,     // new kernels, scalar arm only (bit-identical to kFast)
  kReference = 2,  // seed implementations (the golden-test oracle)
};

namespace internal {

inline KernelMode ModeFromEnv() {
  const char* v = std::getenv("DLB_KERNELS");
  if (v == nullptr) return KernelMode::kFast;
  const std::string s(v);
  if (s == "scalar") return KernelMode::kScalar;
  if (s == "reference") return KernelMode::kReference;
  return KernelMode::kFast;
}

inline std::atomic<KernelMode>& ModeFlag() {
  static std::atomic<KernelMode> mode{ModeFromEnv()};
  return mode;
}

}  // namespace internal

/// Current kernel mode (relaxed load; hot paths read this once per batch of
/// work, e.g. per image or per row, never per pixel).
inline KernelMode GetKernelMode() {
  return internal::ModeFlag().load(std::memory_order_relaxed);
}

/// Override the kernel mode (tests/benches; also settable via the
/// DLB_KERNELS=fast|scalar|reference environment variable at startup).
inline void SetKernelMode(KernelMode mode) {
  internal::ModeFlag().store(mode, std::memory_order_relaxed);
}

/// RAII mode override for tests.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(KernelMode mode) : prev_(GetKernelMode()) {
    SetKernelMode(mode);
  }
  ~ScopedKernelMode() { SetKernelMode(prev_); }
  ScopedKernelMode(const ScopedKernelMode&) = delete;
  ScopedKernelMode& operator=(const ScopedKernelMode&) = delete;

 private:
  KernelMode prev_;
};

/// Name of the widest vector arm compiled into this binary.
inline const char* CompiledIsa() {
#if defined(DLB_SIMD_AVX2)
  return "avx2";
#elif defined(DLB_SIMD_NEON)
  return "neon";
#elif defined(DLB_SIMD_SSE2)
  return "sse2";
#else
  return "scalar";
#endif
}

/// True when the vector arms were compiled out (DLB_SIMD=OFF).
inline bool SimdDisabledAtBuild() {
#if defined(DLB_DISABLE_SIMD)
  return true;
#else
  return false;
#endif
}

/// One-line human/JSON-friendly report of what the decode hot path runs,
/// e.g. "isa=avx2 mode=fast simd=on". Surfaced by backend Describe() and
/// the micro-bench JSON documents.
inline std::string KernelInfo() {
  std::string out = "isa=";
  out += CompiledIsa();
  out += " mode=";
  switch (GetKernelMode()) {
    case KernelMode::kFast: out += "fast"; break;
    case KernelMode::kScalar: out += "scalar"; break;
    case KernelMode::kReference: out += "reference"; break;
  }
  out += SimdDisabledAtBuild() ? " simd=off" : " simd=on";
  return out;
}

}  // namespace dlb::simd
