#include "common/buildinfo.h"

#include <sstream>

#include "common/simd.h"

#ifndef DLB_GIT_DESCRIBE
#define DLB_GIT_DESCRIBE "unknown"
#endif
#ifndef DLB_BUILD_TYPE
#define DLB_BUILD_TYPE "unknown"
#endif
#ifndef DLB_SANITIZE_NAME
#define DLB_SANITIZE_NAME ""
#endif

namespace dlb {

namespace {

std::string CompilerString() {
#if defined(__clang__)
  return std::string("clang ") + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

const char* KernelModeName(simd::KernelMode mode) {
  switch (mode) {
    case simd::KernelMode::kFast: return "fast";
    case simd::KernelMode::kScalar: return "scalar";
    case simd::KernelMode::kReference: return "reference";
  }
  return "unknown";
}

void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

BuildInfo GetBuildInfo() {
  BuildInfo info;
  info.version = DLB_GIT_DESCRIBE;
  info.compiler = CompilerString();
  info.build_type = DLB_BUILD_TYPE;
  info.sanitizer = DLB_SANITIZE_NAME;
  info.isa = simd::CompiledIsa();
  info.kernel_mode = KernelModeName(simd::GetKernelMode());
  return info;
}

std::string BuildInfoJson() {
  const BuildInfo info = GetBuildInfo();
  std::ostringstream os;
  os << "{\"version\":";
  AppendJsonString(os, info.version);
  os << ",\"compiler\":";
  AppendJsonString(os, info.compiler);
  os << ",\"build_type\":";
  AppendJsonString(os, info.build_type);
  os << ",\"sanitizer\":";
  AppendJsonString(os, info.sanitizer);
  os << ",\"isa\":";
  AppendJsonString(os, info.isa);
  os << ",\"kernel_mode\":";
  AppendJsonString(os, info.kernel_mode);
  os << "}";
  return os.str();
}

}  // namespace dlb
