#include "common/thread_pool.h"

namespace dlb {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : tasks_(queue_capacity) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::Submit(std::function<void()> task) {
  {
    std::scoped_lock lock(idle_mu_);
    ++in_flight_;
  }
  Status s = tasks_.Push(std::move(task));
  if (!s.ok()) {
    std::scoped_lock lock(idle_mu_);
    --in_flight_;
    idle_cv_.notify_all();
  }
  return s;
}

void ThreadPool::Wait() {
  std::unique_lock lock(idle_mu_);
  idle_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

void ThreadPool::Shutdown() {
  tasks_.Close();
  workers_.clear();  // jthread joins on destruction
}

void ThreadPool::WorkerLoop() {
  while (auto task = tasks_.Pop()) {
    (*task)();
    std::scoped_lock lock(idle_mu_);
    --in_flight_;
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace dlb
