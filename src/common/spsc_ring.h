// Wait-free single-producer / single-consumer ring buffer.
//
// Used on latency-critical hand-offs where exactly one producer and one
// consumer exist by construction (e.g. the emulated FPGA FINISH signal path).
// The slot count must be a power of two (the index mask depends on it —
// anything else would silently wrap to the wrong slot); one slot is
// sacrificed to distinguish full from empty, so a ring of N slots holds
// N - 1 items.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/log.h"

namespace dlb {

template <typename T>
class SpscRing {
 public:
  /// `slot_count` must be a power of two >= 2. Rejected loudly instead of
  /// rounded: a silently adjusted capacity hides sizing bugs at the call
  /// site (the caller's occupancy math would be computed against a
  /// different ring than the one it got).
  explicit SpscRing(size_t slot_count)
      : mask_(ValidatedSlots(slot_count) - 1), slots_(slot_count) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full.
  bool TryPush(T item) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    slots_[head] = std::move(item);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Empty optional when the ring is empty.
  std::optional<T> TryPop() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T item = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return item;
  }

  size_t SizeApprox() const {
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  /// Usable capacity (one slot is reserved internally).
  size_t Capacity() const { return mask_; }

 private:
  static size_t ValidatedSlots(size_t slot_count) {
    DLB_CHECK(slot_count >= 2 && std::has_single_bit(slot_count));
    return slot_count;
  }

  const size_t mask_;
  std::vector<T> slots_;
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace dlb
