// Wait-free single-producer / single-consumer ring buffer.
//
// Used on latency-critical hand-offs where exactly one producer and one
// consumer exist by construction (e.g. the emulated FPGA FINISH signal path).
// Capacity is rounded up to a power of two; one slot is sacrificed to
// distinguish full from empty.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace dlb {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t min_capacity)
      : mask_(std::bit_ceil(min_capacity < 2 ? size_t{2} : min_capacity + 1) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full.
  bool TryPush(T item) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    slots_[head] = std::move(item);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Empty optional when the ring is empty.
  std::optional<T> TryPop() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T item = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return item;
  }

  size_t SizeApprox() const {
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  /// Usable capacity (one slot is reserved internally).
  size_t Capacity() const { return mask_; }

 private:
  const size_t mask_;
  std::vector<T> slots_;
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace dlb
