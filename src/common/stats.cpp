#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace dlb {

namespace {
// Highest value representable before clamping into the top bucket. 2^40 ns
// is ~18 minutes, far above any latency we track.
constexpr int kMaxExponent = 40;
}  // namespace

Histogram::Histogram(int sub_bucket_bits)
    : sub_bits_(sub_bucket_bits),
      buckets_((kMaxExponent + 1) << sub_bucket_bits) {}

size_t Histogram::BucketIndex(uint64_t value) const {
  if (value == 0) return 0;
  int exponent = 63 - std::countl_zero(value);
  if (exponent > kMaxExponent) {
    exponent = kMaxExponent;
    value = (1ull << kMaxExponent) | ((1ull << kMaxExponent) - 1);
  }
  uint64_t sub;
  if (exponent <= sub_bits_) {
    // Small values are exactly representable in the linear region.
    return static_cast<size_t>(value);
  }
  sub = (value >> (exponent - sub_bits_)) & ((1ull << sub_bits_) - 1);
  return (static_cast<size_t>(exponent) << sub_bits_) + static_cast<size_t>(sub);
}

uint64_t Histogram::LowerBound(int sub_bits, size_t index) {
  size_t exponent = index >> sub_bits;
  size_t sub = index & ((1ull << sub_bits) - 1);
  if (exponent == 0) return sub;
  if (exponent <= static_cast<size_t>(sub_bits)) {
    // Linear region: index IS the value.
    return index;
  }
  return (1ull << exponent) + (static_cast<uint64_t>(sub) << (exponent - sub_bits));
}

uint64_t Histogram::BucketLowerBound(size_t index) const {
  return LowerBound(sub_bits_, index);
}

void Histogram::Record(uint64_t value) { RecordN(value, 1); }

void Histogram::RecordN(uint64_t value, uint64_t n) {
  if (n == 0) return;
  buckets_[BucketIndex(value)].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(value * n, std::memory_order_relaxed);
  uint64_t cur_min = min_.load(std::memory_order_relaxed);
  while (value < cur_min &&
         !min_.compare_exchange_weak(cur_min, value, std::memory_order_relaxed)) {
  }
  uint64_t cur_max = max_.load(std::memory_order_relaxed);
  while (value > cur_max &&
         !max_.compare_exchange_weak(cur_max, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Min() const {
  uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

uint64_t Histogram::Max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::Mean() const {
  uint64_t c = Count();
  return c == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(c);
}

uint64_t Histogram::Quantile(double q) const {
  uint64_t total = Count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    uint64_t b = buckets_[i].load(std::memory_order_relaxed);
    if (b == 0) continue;
    seen += b;
    if (seen > rank) return BucketLowerBound(i);
  }
  return Max();
}

HistogramSnapshot Histogram::TakeSnapshot() const {
  HistogramSnapshot snap;
  snap.sub_bits_ = sub_bits_;
  snap.buckets_.resize(buckets_.size());
  uint64_t total = 0;
  size_t lowest = buckets_.size();
  size_t highest = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t b = buckets_[i].load(std::memory_order_relaxed);
    snap.buckets_[i] = b;
    if (b == 0) continue;
    total += b;
    if (lowest == buckets_.size()) lowest = i;
    highest = i;
  }
  // Count comes from the copied buckets, not the live count_ atomic, so the
  // quantile ranks and the mass they index are the same set of samples.
  snap.count_ = total;
  if (total == 0) return snap;
  snap.sum_ = sum_.load(std::memory_order_relaxed);
  // min_/max_ are updated by recorders *after* the bucket increment; clamp
  // against the frozen buckets so a half-published record cannot make
  // Min()/Max() contradict the quantiles.
  uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min_ = std::min(min, LowerBound(sub_bits_, lowest));
  snap.max_ = std::max(max_.load(std::memory_order_relaxed),
                       LowerBound(sub_bits_, highest));
  return snap;
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    if (seen > rank) return Histogram::LowerBound(sub_bits_, i);
  }
  return max_;  // unreachable: count_ equals the bucket mass
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size() && i < other.buckets_.size(); ++i) {
    uint64_t b = other.buckets_[i].load(std::memory_order_relaxed);
    if (b) buckets_[i].fetch_add(b, std::memory_order_relaxed);
  }
  count_.fetch_add(other.Count(), std::memory_order_relaxed);
  sum_.fetch_add(other.Sum(), std::memory_order_relaxed);
  uint64_t om = other.min_.load(std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (om < cur && !min_.compare_exchange_weak(cur, om, std::memory_order_relaxed)) {
  }
  uint64_t oM = other.Max();
  cur = max_.load(std::memory_order_relaxed);
  while (oM > cur && !max_.compare_exchange_weak(cur, oM, std::memory_order_relaxed)) {
  }
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricRegistry::Visit(MetricVisitor& visitor) const {
  std::scoped_lock lock(mu_);
  for (const auto& [name, c] : counters_) visitor.OnCounter(name, *c);
  for (const auto& [name, g] : gauges_) visitor.OnGauge(name, *g);
  for (const auto& [name, h] : histograms_) visitor.OnHistogram(name, *h);
}

std::string MetricRegistry::Report() const {
  std::scoped_lock lock(mu_);
  // One sorted list across all kinds: merge the three (already sorted)
  // maps so counters, gauges and histograms interleave by name.
  std::map<std::string, std::string> lines;
  for (const auto& [name, c] : counters_) {
    std::ostringstream os;
    os << name << " " << c->Value();
    lines[name] = os.str();
  }
  for (const auto& [name, g] : gauges_) {
    std::ostringstream os;
    os << name << " " << g->Value();
    lines[name] = os.str();
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->TakeSnapshot();
    std::ostringstream os;
    os << name << " count=" << s.Count() << " mean=" << s.Mean()
       << " p50=" << s.Quantile(0.5) << " p99=" << s.Quantile(0.99)
       << " max=" << s.Max();
    lines[name] = os.str();
  }
  std::ostringstream os;
  for (const auto& [name, line] : lines) os << line << "\n";
  return os.str();
}

namespace {

// Shortest-faithful double rendering for JSON: integers print without a
// fraction so golden tests stay byte-stable.
std::string JsonNumber(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string MetricRegistry::ReportJson() const {
  std::scoped_lock lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << JsonString(name) << ":" << c->Value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << JsonString(name) << ":" << JsonNumber(g->Value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    const HistogramSnapshot s = h->TakeSnapshot();
    os << JsonString(name) << ":{\"count\":" << s.Count()
       << ",\"mean\":" << JsonNumber(s.Mean()) << ",\"p50\":" << s.Quantile(0.5)
       << ",\"p95\":" << s.Quantile(0.95) << ",\"p99\":" << s.Quantile(0.99)
       << ",\"max\":" << s.Max() << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace dlb
