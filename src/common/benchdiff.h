// Bench-result diffing: the performance-regression plane's core.
//
// Benches emit BENCH_<label>.json (bench/run_benches.sh collects them); this
// library loads two such sets — a committed baseline and a fresh run —
// flattens every numeric leaf to a dotted-path metric, classifies each
// metric by its name, and reports which moved beyond noise thresholds.
//
// Classification is heuristic but closed over this repo's bench schema:
//
//   pass-flag   *.pass booleans — a true→false flip is always a regression
//   ratio       "ratio"/"speedup"/"utilization"/"hit_rate" — dimensionless,
//               machine-independent, so CI can gate on them across runner
//               generations (--gate ratio, the CI default)
//   throughput  "img_s"/"_per_s"/"throughput"/"mb_s" — higher is better
//   latency     "_ns"/"_us"/"_ms"/"latency"/"seconds" — lower is better
//   info        everything else — reported, never gated
//
// Absolute-unit metrics (throughput, latency) are only gated with
// --gate all, for same-machine comparisons; committed baselines come from a
// different box than CI runners, so CI gates on the dimensionless classes.
// Noise handling: best-of-N (MergeBest over several candidate runs) plus a
// relative threshold per class and an absolute floor under which deltas are
// ignored.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace dlb::benchdiff {

enum class Direction {
  kHigherBetter,  // throughput
  kLowerBetter,   // latency / wall time
  kRatio,         // dimensionless, higher better, loose threshold
  kPassFlag,      // boolean gate emitted by a self-gating bench
  kInfo,          // never gated (counts, sizes, config echoes)
};

/// Metric class from its dotted path (see header comment).
Direction Classify(const std::string& metric);

enum class Gate {
  kRatioOnly,  // gate pass-flags + ratio metrics (cross-machine safe)
  kAll,        // additionally gate throughput/latency (same-machine runs)
};

struct Thresholds {
  double rel = 0.25;        // flag throughput/latency moves beyond ±25%
  double ratio_rel = 0.30;  // ratios are noisier relative to their size
  double abs = 1e-9;        // ignore |delta| below this, whatever the class
  bool allow_missing = false;  // missing labels/metrics don't fail the gate
};

enum class Verdict { kOk, kImproved, kRegressed, kMissing, kNew };

const char* VerdictName(Verdict verdict);

struct MetricDiff {
  std::string label;   // bench label (BENCH_<label>.json)
  std::string metric;  // dotted path within the file
  Direction direction = Direction::kInfo;
  double baseline = 0.0;
  double candidate = 0.0;
  double delta_rel = 0.0;  // (candidate - baseline) / |baseline|
  Verdict verdict = Verdict::kOk;
  bool gated = false;  // counted toward the exit code
};

struct DiffReport {
  std::vector<MetricDiff> diffs;  // regressions first, then by label/metric
  int regressions = 0;  // gated kRegressed (+ kMissing unless allowed)
  int improvements = 0;

  bool HasRegressions() const { return regressions > 0; }
  /// Human-facing markdown: summary line + a table of every gated metric
  /// and every non-gated metric that moved.
  std::string Markdown() const;
};

/// label -> (metric path -> value).
using BenchSet = std::map<std::string, std::map<std::string, double>>;

/// Load every BENCH_<label>.json in `dir` (BENCH_all.json, the manifest, is
/// skipped). Fails if the directory is missing or a file does not parse.
Result<BenchSet> LoadDir(const std::string& dir);

/// Best-of-N merge: per metric, keep the most favourable value across runs
/// (min for latency, max for throughput/ratio/pass; first seen for info).
BenchSet MergeBest(const std::vector<BenchSet>& runs);

/// Compare candidate against baseline. Labels/metrics present only in the
/// candidate report as kNew (never gated); present only in the baseline as
/// kMissing (gated unless thresholds.allow_missing).
DiffReport Diff(const BenchSet& baseline, const BenchSet& candidate,
                const Thresholds& thresholds = {}, Gate gate = Gate::kRatioOnly);

}  // namespace dlb::benchdiff
