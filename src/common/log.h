// Minimal leveled logger. Thread-safe, stderr-backed, zero cost when the
// level is filtered out (stream body is not evaluated).
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace dlb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped. Defaults to kWarn so
/// tests and benches stay quiet unless they opt in.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Collects one log line and emits it (with a single global lock) on
/// destruction. Use via the DLB_LOG macro, not directly.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define DLB_LOG(level)                                      \
  if (::dlb::GetLogLevel() <= ::dlb::LogLevel::level)       \
  ::dlb::internal::LogLine(::dlb::LogLevel::level, __FILE__, __LINE__)

#define DLB_DEBUG DLB_LOG(kDebug)
#define DLB_INFO DLB_LOG(kInfo)
#define DLB_WARN DLB_LOG(kWarn)
#define DLB_ERROR DLB_LOG(kError)

/// Abort with a message when an internal invariant is broken. Used for
/// conditions that indicate programmer error, never for data errors.
[[noreturn]] void FatalInvariant(const char* file, int line, const std::string& what);

#define DLB_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond))                                                         \
      ::dlb::FatalInvariant(__FILE__, __LINE__, "check failed: " #cond); \
  } while (0)

}  // namespace dlb
