#include "common/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>

#include "common/log.h"

namespace dlb::http {

namespace {

using Clock = std::chrono::steady_clock;

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "OK";
  }
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string ToLower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

// Case-insensitive header lookup over the raw header block (between the
// request line and the terminator). Returns the trimmed value or "".
std::string HeaderValue(const std::string& headers, const std::string& name) {
  const std::string lowered = ToLower(headers);
  const std::string needle = "\r\n" + ToLower(name) + ":";
  size_t pos = lowered.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  size_t end = headers.find("\r\n", pos);
  if (end == std::string::npos) end = headers.size();
  std::string value = headers.substr(pos, end - pos);
  const size_t first = value.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  const size_t last = value.find_last_not_of(" \t");
  return value.substr(first, last - first + 1);
}

}  // namespace

std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

// One in-flight client connection.
struct HttpServer::Conn {
  enum class State { kReading, kPending, kWriting };

  uint64_t id = 0;
  int fd = -1;
  State state = State::kReading;
  std::string in;
  std::string out;
  size_t written = 0;
  bool keep_alive = true;       // negotiated per request
  bool close_after_write = true;
  uint64_t served = 0;          // requests completed on this connection
  Clock::time_point last_activity;   // read/write progress
  Clock::time_point pending_since;   // async dispatch time
};

void HttpServer::Responder::Send(HttpResponse response) const {
  if (state_ && !state_->done.exchange(true)) {
    state_->sink(std::move(response));
  }
}

HttpServer::HttpServer() : HttpServer(Options()) {}

HttpServer::HttpServer(Options options) : options_(std::move(options)) {
  if (options_.max_connections < 1) options_.max_connections = 1;
  if (options_.sweep_interval_ms < 1) options_.sweep_interval_ms = 1;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::AddHandler(std::string path, Handler handler) {
  async_handlers_.erase(path);
  handlers_[std::move(path)] = std::move(handler);
}

void HttpServer::AddAsyncHandler(std::string path, AsyncHandler handler) {
  handlers_.erase(path);
  async_handlers_[std::move(path)] = std::move(handler);
}

HttpResponse HttpServer::RouteSync(const HttpRequest& request) const {
  if (request.method != "GET" && request.method != "POST") {
    return {405, "text/plain; charset=utf-8", "method not allowed\n"};
  }
  auto it = handlers_.find(request.path);
  if (it == handlers_.end()) {
    std::string body = "not found; endpoints:\n";
    for (const auto& [path, handler] : handlers_) body += "  " + path + "\n";
    for (const auto& [path, handler] : async_handlers_) {
      body += "  " + path + "\n";
    }
    return {404, "text/plain; charset=utf-8", std::move(body)};
  }
  return it->second(request);
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) const {
  if (request.method == "GET" || request.method == "POST") {
    auto it = async_handlers_.find(request.path);
    if (it != async_handlers_.end()) {
      // Run the async handler synchronously: the deterministic test seam.
      std::mutex mu;
      std::condition_variable cv;
      bool ready = false;
      HttpResponse out;
      auto state = std::make_shared<Responder::State>();
      state->sink = [&](HttpResponse response) {
        std::scoped_lock lock(mu);
        out = std::move(response);
        ready = true;
        cv.notify_one();
      };
      it->second(request, Responder(state));
      std::unique_lock lock(mu);
      cv.wait(lock, [&] { return ready; });
      return out;
    }
  }
  return RouteSync(request);
}

std::string HttpServer::Serialize(const HttpResponse& response,
                                  bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive && !response.close_connection
             ? "Connection: keep-alive\r\n\r\n"
             : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

Status HttpServer::Start() {
  if (running_.exchange(true)) return Status::Ok();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    running_.store(false);
    return Internal("socket(): " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    return InvalidArgument("bad bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    return Internal("bind/listen on " + options_.bind_address + ":" +
                    std::to_string(options_.port) + ": " + err);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_release);
  }
  SetNonBlocking(listen_fd_);

  if (::pipe(wake_fds_) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    return Internal("pipe(): " + err);
  }
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);

  {
    std::scoped_lock lock(completed_mu_);
    accepting_completions_ = true;
    completed_.clear();
  }
  thread_ = std::jthread([this](std::stop_token token) { Loop(token); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  thread_.request_stop();
  Wake();
  if (thread_.joinable()) thread_.join();
  {
    std::scoped_lock lock(completed_mu_);
    accepting_completions_ = false;
    completed_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  port_.store(-1, std::memory_order_release);
}

void HttpServer::Wake() {
  if (wake_fds_[1] >= 0) {
    const char byte = 'w';
    // A full pipe already guarantees a wake-up; EAGAIN is success here.
    (void)!::write(wake_fds_[1], &byte, 1);
  }
}

void HttpServer::CompleteAsync(uint64_t conn_id, HttpResponse response) {
  {
    std::scoped_lock lock(completed_mu_);
    if (!accepting_completions_) return;
    completed_.emplace_back(conn_id, std::move(response));
  }
  Wake();
}

void HttpServer::DispatchToConn(Conn& c, const HttpRequest& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (request.method == "GET" || request.method == "POST") {
    auto it = async_handlers_.find(request.path);
    if (it != async_handlers_.end()) {
      c.state = Conn::State::kPending;
      c.pending_since = Clock::now();
      auto state = std::make_shared<Responder::State>();
      const uint64_t id = c.id;
      HttpServer* server = this;
      state->sink = [server, id](HttpResponse response) {
        server->CompleteAsync(id, std::move(response));
      };
      it->second(request, Responder(state));
      return;
    }
  }
  HttpResponse response = RouteSync(request);
  c.close_after_write = !options_.keep_alive || !c.keep_alive ||
                        response.close_connection;
  c.out = Serialize(response, !c.close_after_write);
  c.written = 0;
  c.state = Conn::State::kWriting;
}

bool HttpServer::ProcessInput(Conn& c) {
  while (c.state == Conn::State::kReading) {
    const size_t header_end = c.in.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      if (c.in.size() > options_.max_header_bytes) {
        c.out = Serialize({431, "text/plain; charset=utf-8",
                           "header block too large\n"});
        c.written = 0;
        c.state = Conn::State::kWriting;
        c.close_after_write = true;
        return true;
      }
      return true;  // wait for more bytes
    }

    // Parse the request line: METHOD SP TARGET SP VERSION.
    const size_t line_end = c.in.find("\r\n");
    const std::string line = c.in.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      c.out = Serialize({400, "text/plain; charset=utf-8", "bad request\n"});
      c.written = 0;
      c.state = Conn::State::kWriting;
      c.close_after_write = true;
      return true;
    }

    const std::string headers =
        c.in.substr(line_end, header_end - line_end);  // leading CRLF kept
    const std::string version = line.substr(sp2 + 1);
    const std::string connection = ToLower(HeaderValue(headers, "Connection"));
    c.keep_alive = version == "HTTP/1.1" ? connection != "close"
                                         : connection == "keep-alive";

    size_t content_length = 0;
    const std::string length_value = HeaderValue(headers, "Content-Length");
    if (!length_value.empty()) {
      char* end = nullptr;
      const unsigned long long parsed =
          std::strtoull(length_value.c_str(), &end, 10);
      if (end == length_value.c_str() || *end != '\0') {
        c.out = Serialize({400, "text/plain; charset=utf-8",
                           "bad content-length\n"});
        c.written = 0;
        c.state = Conn::State::kWriting;
        c.close_after_write = true;
        return true;
      }
      content_length = static_cast<size_t>(parsed);
    }
    if (content_length > options_.max_body_bytes) {
      c.out = Serialize({413, "text/plain; charset=utf-8",
                         "body too large\n"});
      c.written = 0;
      c.state = Conn::State::kWriting;
      c.close_after_write = true;
      return true;
    }
    const size_t message_end = header_end + 4 + content_length;
    if (c.in.size() < message_end) return true;  // body still arriving

    HttpRequest request;
    request.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t q = target.find('?');
    if (q != std::string::npos) {
      request.query = target.substr(q + 1);
      target.resize(q);
    }
    request.path = std::move(target);
    request.body = c.in.substr(header_end + 4, content_length);
    c.in.erase(0, message_end);  // keep pipelined bytes for the next round
    c.last_activity = Clock::now();
    DispatchToConn(c, request);
  }
  return true;
}

void HttpServer::Loop(std::stop_token token) {
  std::vector<std::unique_ptr<Conn>> conns;
  uint64_t next_conn_id = 1;
  auto next_sweep =
      Clock::now() + std::chrono::milliseconds(options_.sweep_interval_ms);

  while (!token.stop_requested()) {
    std::vector<pollfd> fds;
    fds.reserve(conns.size() + 2);
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    for (const auto& c : conns) {
      short events = 0;
      if (c->state == Conn::State::kReading) events = POLLIN;
      if (c->state == Conn::State::kWriting) events = POLLOUT;
#ifdef POLLRDHUP
      // A departed kPending client shows as POLLRDHUP (a plain close is a
      // FIN, which events=0 would never surface — POLLHUP needs both
      // directions down). Reaping on it frees the slot immediately instead
      // of holding it until pending_timeout; the cost is dropping clients
      // that shutdown(SHUT_WR) while awaiting their response, a pattern no
      // mainstream HTTP client uses.
      if (c->state == Conn::State::kPending) events = POLLRDHUP;
#endif
      fds.push_back({c->fd, events, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), options_.poll_ms);
    if (ready < 0 && errno != EINTR) break;

    // Drain the wake pipe (level-triggered; a single byte is enough).
    if (fds[1].revents & POLLIN) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }

    // Deliver async completions to their (possibly departed) connections.
    {
      std::deque<std::pair<uint64_t, HttpResponse>> done;
      {
        std::scoped_lock lock(completed_mu_);
        done.swap(completed_);
      }
      for (auto& [id, response] : done) {
        for (auto& c : conns) {
          if (c->id != id || c->state != Conn::State::kPending) continue;
          c->close_after_write = !options_.keep_alive || !c->keep_alive ||
                                 response.close_connection;
          c->out = Serialize(response, !c->close_after_write);
          c->written = 0;
          c->state = Conn::State::kWriting;
          c->last_activity = Clock::now();
          break;
        }
      }
    }

    // Accept while there is room in the connection table.
    if (fds[0].revents & POLLIN) {
      while (conns.size() < static_cast<size_t>(options_.max_connections)) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        SetNonBlocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto c = std::make_unique<Conn>();
        c->id = next_conn_id++;
        c->fd = fd;
        c->last_activity = Clock::now();
        conns.push_back(std::move(c));
        accepted_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    const auto now = Clock::now();
    const bool sweep = now >= next_sweep;
    if (sweep) {
      next_sweep =
          now + std::chrono::milliseconds(options_.sweep_interval_ms);
    }

    for (size_t i = 0; i < conns.size();) {
      Conn& c = *conns[i];
      bool close_conn = false;
      // Connections accepted this round have no pollfd entry yet, and an
      // erase above shifts indices — match on fd before trusting revents.
      const short revents = (i + 2 < fds.size() && fds[i + 2].fd == c.fd)
                                ? fds[i + 2].revents
                                : 0;

      if (c.state == Conn::State::kReading &&
          (revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char buf[16384];
        const ssize_t n = ::read(c.fd, buf, sizeof(buf));
        if (n > 0) {
          c.in.append(buf, static_cast<size_t>(n));
          c.last_activity = now;
          ProcessInput(c);
        } else if (n == 0 ||
                   (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
          close_conn = true;
        }
      } else if (c.state == Conn::State::kPending &&
                 (revents & (POLLHUP | POLLERR
#ifdef POLLRDHUP
                             | POLLRDHUP
#endif
                             )) != 0) {
        // Client hung up while its answer was being produced: drop the
        // slot now; the eventual Responder::Send finds no connection.
        close_conn = true;
      }

      // Attempt the write whenever a response is pending — a fresh socket
      // is almost always writable, so most requests finish in the same
      // poll cycle that parsed them; EAGAIN defers to the next POLLOUT.
      if (c.state == Conn::State::kWriting && !close_conn) {
        const ssize_t n =
            ::write(c.fd, c.out.data() + c.written, c.out.size() - c.written);
        if (n > 0) {
          c.written += static_cast<size_t>(n);
          c.last_activity = now;
          if (c.written == c.out.size()) {
            if (c.close_after_write) {
              close_conn = true;
            } else {
              // Keep-alive reset; pipelined bytes already buffered are
              // served without waiting for another POLLIN.
              c.out.clear();
              c.written = 0;
              ++c.served;
              c.state = Conn::State::kReading;
              ProcessInput(c);
            }
          }
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
          close_conn = true;
        }
      }

      // The hardening sweep, on its own cadence: a wedged connection
      // generates no poll events, so every deadline must hold without one.
      if (sweep && !close_conn) {
        const auto idle_for = now - c.last_activity;
        switch (c.state) {
          case Conn::State::kReading: {
            // Idle-between-requests keep-alive connections get the longer
            // leash; a connection mid-request (bytes buffered, or never
            // served) is held to the request timeout.
            const uint64_t deadline_ms =
                (c.served > 0 && c.in.empty()) ? options_.idle_timeout_ms
                                               : options_.request_timeout_ms;
            if (idle_for > std::chrono::milliseconds(deadline_ms)) {
              close_conn = true;
              timeouts_.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case Conn::State::kWriting:
            if (idle_for >
                std::chrono::milliseconds(options_.request_timeout_ms)) {
              close_conn = true;
              timeouts_.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          case Conn::State::kPending:
            if (now - c.pending_since >
                std::chrono::milliseconds(options_.pending_timeout_ms)) {
              HttpResponse timeout{504, "text/plain; charset=utf-8",
                                   "upstream timed out\n"};
              c.close_after_write = true;
              c.out = Serialize(timeout);
              c.written = 0;
              c.state = Conn::State::kWriting;
              timeouts_.fetch_add(1, std::memory_order_relaxed);
            }
            break;
        }
      }

      if (close_conn) {
        ::close(c.fd);
        conns.erase(conns.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
  }

  for (const auto& c : conns) ::close(c->fd);
}

}  // namespace dlb::http
