#include "common/config.h"

#include <cstdlib>
#include <sstream>

namespace dlb {

Result<Config> Config::FromArgs(const std::vector<std::string>& args) {
  Config c;
  for (const auto& a : args) {
    auto eq = a.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status(StatusCode::kInvalidArgument,
                    "expected key=value, got: " + a);
    }
    c.Set(a.substr(0, eq), a.substr(eq + 1));
  }
  return c;
}

void Config::Set(const std::string& key, const std::string& value) {
  kv_[key] = value;
}

bool Config::Has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Config::GetString(const std::string& key,
                              const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

int64_t Config::GetInt(const std::string& key, int64_t def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Config::GetDouble(const std::string& key, double def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Config::GetBool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(kv_.size());
  for (const auto& [k, _] : kv_) keys.push_back(k);
  return keys;
}

std::string Config::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : kv_) {
    if (!first) os << " ";
    os << k << "=" << v;
    first = false;
  }
  return os.str();
}

}  // namespace dlb
