#include "common/fault.h"

#include <algorithm>
#include <cstdlib>

namespace dlb::fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCorruptJpeg: return "corrupt_jpeg";
    case FaultKind::kFpgaUnitStall: return "fpga_unit_stall";
    case FaultKind::kDmaError: return "dma_error";
    case FaultKind::kDmaDrop: return "dma_drop";
    case FaultKind::kLatencySpike: return "latency_spike";
    case FaultKind::kDeviceFail: return "device_fail";
  }
  return "unknown";
}

double FaultSpec::Rate(FaultKind kind) const {
  switch (kind) {
    case FaultKind::kCorruptJpeg: return corrupt_jpeg;
    case FaultKind::kFpgaUnitStall: return fpga_unit_stall;
    case FaultKind::kDmaError: return dma_error;
    case FaultKind::kDmaDrop: return dma_drop;
    case FaultKind::kLatencySpike: return latency_spike;
    case FaultKind::kDeviceFail: return device_fail;
  }
  return 0.0;
}

bool FaultSpec::Any() const {
  return corrupt_jpeg > 0.0 || fpga_unit_stall > 0.0 || dma_error > 0.0 ||
         dma_drop > 0.0 || latency_spike > 0.0 || device_fail > 0.0;
}

namespace {

Status ParseRate(const std::string& key, const std::string& value,
                 double* out) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return InvalidArgument("fault spec: bad number for " + key + ": \"" +
                           value + "\"");
  }
  if (v < 0.0 || v > 1.0) {
    return InvalidArgument("fault spec: " + key + " must be in [0,1], got " +
                           value);
  }
  *out = v;
  return Status::Ok();
}

Status ParseU64(const std::string& key, const std::string& value,
                uint64_t* out) {
  char* end = nullptr;
  const uint64_t v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return InvalidArgument("fault spec: bad integer for " + key + ": \"" +
                           value + "\"");
  }
  *out = v;
  return Status::Ok();
}

}  // namespace

Result<FaultSpec> ParseFaultSpec(const std::string& spec) {
  FaultSpec out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return InvalidArgument("fault spec: expected key=value, got \"" + entry +
                             "\"");
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "corrupt_jpeg") {
      DLB_RETURN_IF_ERROR(ParseRate(key, value, &out.corrupt_jpeg));
    } else if (key == "fpga_unit_stall") {
      DLB_RETURN_IF_ERROR(ParseRate(key, value, &out.fpga_unit_stall));
    } else if (key == "dma_error") {
      DLB_RETURN_IF_ERROR(ParseRate(key, value, &out.dma_error));
    } else if (key == "dma_drop") {
      DLB_RETURN_IF_ERROR(ParseRate(key, value, &out.dma_drop));
    } else if (key == "latency_spike") {
      DLB_RETURN_IF_ERROR(ParseRate(key, value, &out.latency_spike));
    } else if (key == "device_fail") {
      DLB_RETURN_IF_ERROR(ParseRate(key, value, &out.device_fail));
    } else if (key == "latency_spike_us") {
      DLB_RETURN_IF_ERROR(ParseU64(key, value, &out.latency_spike_us));
    } else if (key == "latency_spike_ms") {
      uint64_t ms = 0;
      DLB_RETURN_IF_ERROR(ParseU64(key, value, &ms));
      out.latency_spike_us = ms * 1000;
    } else if (key == "seed") {
      DLB_RETURN_IF_ERROR(ParseU64(key, value, &out.seed));
    } else {
      return InvalidArgument("fault spec: unknown key \"" + key + "\"");
    }
  }
  return out;
}

Result<FaultSpec> FaultSpecFromEnv() {
  const char* env = std::getenv("DLB_FAULTS");
  if (env == nullptr) return FaultSpec{};
  return ParseFaultSpec(env);
}

void FaultInjector::AttachRegistry(MetricRegistry* registry) {
  if (registry == nullptr) {
    registry_total_.store(nullptr, std::memory_order_relaxed);
    for (auto& c : registry_kind_) c.store(nullptr, std::memory_order_relaxed);
    return;
  }
  for (int k = 0; k < kNumFaultKinds; ++k) {
    registry_kind_[k].store(
        registry->GetCounter(std::string("faults.injected.") +
                             FaultKindName(static_cast<FaultKind>(k))),
        std::memory_order_relaxed);
  }
  registry_total_.store(registry->GetCounter("faults.injected"),
                        std::memory_order_release);
}

bool FaultInjector::Fire(FaultKind kind) {
  const double rate = spec_.Rate(kind);
  if (rate <= 0.0) return false;
  {
    std::scoped_lock lock(mu_);
    if (!rng_.Bernoulli(rate)) return false;
  }
  injected_[static_cast<int>(kind)].Add();
  if (Counter* c = registry_kind_[static_cast<int>(kind)].load(
          std::memory_order_acquire)) {
    c->Add();
  }
  if (Counter* c = registry_total_.load(std::memory_order_acquire)) c->Add();
  return true;
}

Bytes FaultInjector::Corrupt(ByteSpan data) {
  Bytes out(data.begin(), data.end());
  if (out.empty()) return out;
  std::scoped_lock lock(mu_);
  switch (rng_.UniformU64(3)) {
    case 0: {
      // Flip 1..8 bytes; XOR with a non-zero value so each flip is real.
      const uint64_t flips = 1 + rng_.UniformU64(8);
      for (uint64_t i = 0; i < flips; ++i) {
        const size_t at = static_cast<size_t>(rng_.UniformU64(out.size()));
        out[at] ^= static_cast<uint8_t>(1 + rng_.UniformU64(255));
      }
      break;
    }
    case 1:
      // Truncate to a strict prefix (possibly empty).
      out.resize(static_cast<size_t>(rng_.UniformU64(out.size())));
      break;
    default: {
      // Overwrite a run with garbage.
      const size_t at = static_cast<size_t>(rng_.UniformU64(out.size()));
      const size_t len = std::min(
          out.size() - at, static_cast<size_t>(1 + rng_.UniformU64(64)));
      for (size_t i = 0; i < len; ++i) {
        out[at + i] = static_cast<uint8_t>(rng_.UniformU64(256));
      }
      break;
    }
  }
  return out;
}

uint64_t FaultInjector::TotalInjected() const {
  uint64_t total = 0;
  for (const Counter& c : injected_) total += c.Value();
  return total;
}

}  // namespace dlb::fault
