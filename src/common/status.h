// Lightweight error-propagation types used across the DLBooster codebase.
//
// We avoid exceptions on hot paths (decode loops, queue operations) and use
// Status / Result<T> instead, in the spirit of the Core Guidelines' advice
// to make error paths explicit at module boundaries.
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace dlb {

/// Coarse error category, sufficient for routing and test assertions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kCorruptData,
  kUnimplemented,
  kInternal,
  kClosed,  ///< operating on a closed queue/channel/pipeline
  kUnavailable,  ///< transient device/transport failure; safe to retry
};

/// Human-readable name for a StatusCode (for logs and test failures).
inline const char* StatusCodeName(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kCorruptData: return "CORRUPT_DATA";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kClosed: return "CLOSED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

/// A status is a code plus an optional message. `Status::Ok()` is cheap.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message" for logging.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string m) {
  return {StatusCode::kInvalidArgument, std::move(m)};
}
inline Status NotFound(std::string m) {
  return {StatusCode::kNotFound, std::move(m)};
}
inline Status OutOfRange(std::string m) {
  return {StatusCode::kOutOfRange, std::move(m)};
}
inline Status ResourceExhausted(std::string m) {
  return {StatusCode::kResourceExhausted, std::move(m)};
}
inline Status FailedPrecondition(std::string m) {
  return {StatusCode::kFailedPrecondition, std::move(m)};
}
inline Status CorruptData(std::string m) {
  return {StatusCode::kCorruptData, std::move(m)};
}
inline Status Internal(std::string m) {
  return {StatusCode::kInternal, std::move(m)};
}
inline Status Closed(std::string m) {
  return {StatusCode::kClosed, std::move(m)};
}
inline Status Unavailable(std::string m) {
  return {StatusCode::kUnavailable, std::move(m)};
}

/// Either a value or an error status. Minimal `expected`-style carrier.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {}   // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  const Status& status() const {
    static const Status kOk = Status::Ok();
    if (ok()) return kOk;
    return std::get<Status>(v_);
  }

 private:
  std::variant<T, Status> v_;
};

/// Propagate a non-OK Status from an expression.
#define DLB_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::dlb::Status _s = (expr);               \
    if (!_s.ok()) return _s;                 \
  } while (0)

}  // namespace dlb
