// NUMA-node placement model for the sharded data plane.
//
// Scaling past one FPGA device only pays off when each device's host-side
// resources — its FPGAReader thread and its hugepage arena — sit on the
// same NUMA node as the device's PCIe root, otherwise every DMA and every
// batch copy crosses the interconnect. With no real multi-socket host
// attached, the model is declarative: PlanPlacement assigns each device a
// node under a policy, the backend tags arenas and metrics with the node,
// and the plan surfaces through Describe()/metrics so tests and the monitor
// can verify the topology a run used.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace dlb::topo {

/// One device -> node assignment plan.
struct TopologyPlan {
  int numa_nodes = 1;
  std::string policy = "interleave";
  /// node_of_device[d] = the NUMA node device d (and its reader + arena)
  /// is pinned to.
  std::vector<int> node_of_device;

  int NodeOf(int device) const {
    return device >= 0 && device < static_cast<int>(node_of_device.size())
               ? node_of_device[device]
               : 0;
  }
  /// Devices placed on `node`.
  int DevicesOn(int node) const;
  /// "interleave(2 nodes): dev0:n0 dev1:n1" — for Describe()/logs.
  std::string ToString() const;
};

/// Plan the device -> node map. Policies:
///   "interleave"  round-robin devices across nodes (balances memory
///                 bandwidth; the default)
///   "pack"        fill node 0 first (minimises cross-node steal traffic
///                 when the corpus is uniform)
/// kInvalidArgument on an unknown policy or non-positive counts.
Result<TopologyPlan> PlanPlacement(int devices, int numa_nodes,
                                   const std::string& policy);

}  // namespace dlb::topo
