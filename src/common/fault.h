// Deterministic fault injection for the DLBooster pipeline.
//
// Production preprocessing must survive bad inputs and flaky devices: a
// corrupt JPEG, a wedged decode way or a lost DMA completion must degrade
// the pipeline, never stop it. The FaultInjector is how we prove that
// continuously — a seeded source of synthetic faults that components query
// at well-defined points (before submit, before DMA, before FINISH). Every
// probability is a Bernoulli draw from one xoshiro stream, so a given seed
// reproduces the exact same fault schedule on every run and machine.
//
// The spec travels as a compact string ("corrupt_jpeg=0.01,dma_error=0.005")
// through PipelineConfig::faults or the DLB_FAULTS environment variable;
// see ParseFaultSpec for the grammar.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace dlb::fault {

/// The fault vocabulary. Each kind is armed by its rate in the spec and
/// fired at one specific point in the pipeline:
enum class FaultKind : uint8_t {
  kCorruptJpeg = 0,   // flip/truncate/garbage compressed bytes before decode
  kFpgaUnitStall,     // latch one simulated FPGA unit way as dead
  kDmaError,          // a completion reports a transient DMA failure
  kDmaDrop,           // the FINISH record is lost (DMA itself landed)
  kLatencySpike,      // a stage sleeps for latency_spike_us
  kDeviceFail,        // a whole device latches dead; its shard fails over
};
inline constexpr int kNumFaultKinds = 6;

const char* FaultKindName(FaultKind kind);

/// Parsed fault configuration. All rates are probabilities in [0, 1].
struct FaultSpec {
  double corrupt_jpeg = 0.0;
  double fpga_unit_stall = 0.0;
  double dma_error = 0.0;
  double dma_drop = 0.0;
  double latency_spike = 0.0;
  double device_fail = 0.0;
  /// Duration of one injected latency spike.
  uint64_t latency_spike_us = 2000;
  /// Seed for the injector's RNG; same seed => same fault schedule.
  uint64_t seed = 42;

  double Rate(FaultKind kind) const;
  /// True when any rate is armed (> 0).
  bool Any() const;
};

/// Parse a "key=value,key=value" spec. Keys: corrupt_jpeg, fpga_unit_stall,
/// dma_error, dma_drop, latency_spike, device_fail (rates in [0,1]);
/// latency_spike_us, latency_spike_ms, seed (integers). Empty string =>
/// all-zero spec.
/// kInvalidArgument on unknown keys or out-of-range rates.
Result<FaultSpec> ParseFaultSpec(const std::string& spec);

/// Spec from the DLB_FAULTS environment variable (all-zero when unset).
Result<FaultSpec> FaultSpecFromEnv();

/// Seeded fault source, shared by every component of one pipeline. Fire()
/// is serialised on an internal mutex — fault paths are cold by design, so
/// the lock never shows up in profiles, and one stream keeps the schedule
/// deterministic for single-threaded tests.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec) : spec_(spec), rng_(spec.seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultSpec& Spec() const { return spec_; }

  /// Publish injection counters ("faults.injected" plus one
  /// "faults.injected.<kind>" per kind) into `registry`. Null detaches.
  void AttachRegistry(MetricRegistry* registry);

  /// One Bernoulli draw at this kind's rate; true means the caller must
  /// inject the fault now (already counted).
  bool Fire(FaultKind kind);

  /// Deterministically mutate a compressed payload: flip a few bytes,
  /// truncate, or overwrite a run with garbage. The result is always a
  /// fresh copy; the input is never touched.
  Bytes Corrupt(ByteSpan data);

  /// Duration of one latency spike in ns.
  uint64_t SpikeNs() const { return spec_.latency_spike_us * 1000; }

  uint64_t Injected(FaultKind kind) const {
    return injected_[static_cast<int>(kind)].Value();
  }
  uint64_t TotalInjected() const;

 private:
  FaultSpec spec_;
  std::mutex mu_;
  Rng rng_;
  Counter injected_[kNumFaultKinds];
  std::atomic<Counter*> registry_total_{nullptr};
  std::atomic<Counter*> registry_kind_[kNumFaultKinds] = {};
};

}  // namespace dlb::fault
