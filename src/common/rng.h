// Deterministic, fast pseudo-random number generation.
//
// Every stochastic component in DLBooster (dataset generator, simulated
// clients, augmentation) takes an explicit seed so that tests and benchmark
// figures are bit-reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <limits>

namespace dlb {

/// xoshiro256** by Blackman & Vigna — small, fast, high quality, and easy to
/// seed deterministically via splitmix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  /// Re-seed the full 256-bit state from one 64-bit seed using splitmix64.
  void Seed(uint64_t seed) {
    for (auto& word : s_) {
      seed += 0x9E3779B97F4A7C15ull;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t UniformU64(uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    UniformU64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Exponentially distributed with the given mean (for Poisson arrivals).
  double Exponential(double mean) {
    double u;
    do {
      u = UniformDouble();
    } while (u <= 0.0);
    return -mean * __builtin_log(u);
  }

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace dlb
