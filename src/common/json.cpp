#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace dlb::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<ValuePtr> Run() {
    SkipWs();
    auto value = ParseValue();
    if (!value.ok()) return value;
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return CorruptData("json: " + what + " at offset " +
                       std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<ValuePtr> ParseValue() {
    if (depth_ > 64) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      auto s = ParseString();
      if (!s.ok()) return s.status();
      auto v = Value::Make(Kind::kString);
      v->str = std::move(s).value();
      return v;
    }
    if (ConsumeWord("true")) {
      auto v = Value::Make(Kind::kBool);
      v->boolean = true;
      return v;
    }
    if (ConsumeWord("false")) return Value::Make(Kind::kBool);
    if (ConsumeWord("null")) return Value::Make(Kind::kNull);
    return ParseNumber();
  }

  Result<ValuePtr> ParseObject() {
    ++depth_;
    ++pos_;  // '{'
    auto v = Value::Make(Kind::kObject);
    SkipWs();
    if (Consume('}')) {
      --depth_;
      return v;
    }
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      auto member = ParseValue();
      if (!member.ok()) return member;
      if (v->object.emplace(key.value(), member.value()).second) {
        v->keys.push_back(key.value());
      }
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Fail("expected ',' or '}'");
    }
    --depth_;
    return v;
  }

  Result<ValuePtr> ParseArray() {
    ++depth_;
    ++pos_;  // '['
    auto v = Value::Make(Kind::kArray);
    SkipWs();
    if (Consume(']')) {
      --depth_;
      return v;
    }
    for (;;) {
      SkipWs();
      auto element = ParseValue();
      if (!element.ok()) return element;
      v->array.push_back(element.value());
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Fail("expected ',' or ']'");
    }
    --depth_;
    return v;
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          const unsigned long cp =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // UTF-8 encode the BMP code point; surrogate pairs are out of
          // scope for metric files and pass through as two 3-byte units.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  Result<ValuePtr> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    auto v = Value::Make(Kind::kNumber);
    v->number = d;
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void FlattenInto(const ValuePtr& value, const std::string& prefix,
                 std::map<std::string, double>& out) {
  if (value == nullptr) return;
  switch (value->kind()) {
    case Kind::kNumber:
      out[prefix] = value->number;
      break;
    case Kind::kBool:
      out[prefix] = value->boolean ? 1.0 : 0.0;
      break;
    case Kind::kObject:
      for (const std::string& key : value->keys) {
        FlattenInto(value->Get(key),
                    prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    case Kind::kArray:
      for (size_t i = 0; i < value->array.size(); ++i) {
        const std::string seg = std::to_string(i);
        FlattenInto(value->array[i],
                    prefix.empty() ? seg : prefix + "." + seg, out);
      }
      break;
    case Kind::kString:
    case Kind::kNull:
      break;
  }
}

}  // namespace

Result<ValuePtr> Parse(const std::string& text) {
  return Parser(text).Run();
}

std::map<std::string, double> FlattenNumbers(const ValuePtr& value) {
  std::map<std::string, double> out;
  FlattenInto(value, "", out);
  return out;
}

}  // namespace dlb::json
