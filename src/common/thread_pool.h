// Fixed-size worker pool with a bounded task queue.
//
// CP.4: callers think in tasks; the pool owns the threads. Join semantics
// are structured: the destructor (or Shutdown) drains outstanding tasks
// before the threads exit, so a pool behaves like a scoped container of
// work (CP.23/CP.25).
#pragma once

#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"

namespace dlb {

class ThreadPool {
 public:
  /// Creates `num_threads` workers. `queue_capacity` bounds the backlog so
  /// producers feel backpressure instead of growing memory without bound.
  explicit ThreadPool(size_t num_threads, size_t queue_capacity = 1024);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Blocking submit (applies backpressure when the queue is full).
  /// Returns kClosed after Shutdown().
  Status Submit(std::function<void()> task);

  /// Submit returning a future for the task's result.
  template <typename F>
  auto SubmitWithResult(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    Status s = Submit([task] { (*task)(); });
    if (!s.ok()) {
      // Fulfil the future with an exception so callers don't deadlock.
      task->reset();
      std::packaged_task<R()> broken([] () -> R {
        throw std::runtime_error("thread pool closed");
      });
      fut = broken.get_future();
    }
    return fut;
  }

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Stops accepting tasks, drains the queue, joins workers. Idempotent.
  void Shutdown();

  size_t NumThreads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  BoundedQueue<std::function<void()>> tasks_;
  std::vector<std::jthread> workers_;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  size_t in_flight_ = 0;  // queued + executing
};

}  // namespace dlb
