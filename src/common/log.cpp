#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace dlb {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* LevelTag(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "-";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
}

LogLine::~LogLine() {
  std::scoped_lock lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal

void FatalInvariant(const char* file, int line, const std::string& what) {
  {
    std::scoped_lock lock(g_emit_mutex);
    std::fprintf(stderr, "[FATAL %s:%d] %s\n", file, line, what.c_str());
  }
  std::abort();
}

}  // namespace dlb
