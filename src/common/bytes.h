// Byte-level helpers shared by the codec and the storage engine.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace dlb {

using ByteSpan = std::span<const uint8_t>;
using MutableByteSpan = std::span<uint8_t>;
using Bytes = std::vector<uint8_t>;

/// Big-endian 16-bit read (JPEG marker segments are big-endian).
inline uint16_t ReadBe16(const uint8_t* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}

inline void WriteBe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v & 0xFF);
}

/// Little-endian fixed-width accessors (storage engine page format).
inline uint32_t ReadLe32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void WriteLe32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

inline uint64_t ReadLe64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void WriteLe64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }

/// FNV-1a 64-bit hash, used by the KV store bucket index and for
/// content-checksum assertions in tests.
inline uint64_t Fnv1a64(ByteSpan data) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (uint8_t b : data) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace dlb
