// Metric primitives: counters, gauges, and latency histograms.
//
// Histograms use logarithmic bucketing (HdrHistogram-style, base-2 with
// linear sub-buckets) so that percentile queries over nanosecond latencies
// are cheap and memory use is bounded regardless of sample count.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dlb {

/// Monotonic counter, safe to bump from many threads.
class Counter {
 public:
  void Add(uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-writer-wins gauge for instantaneous values (queue depth, cores
/// busy), plus a high-watermark so a sampler polling at 1 Hz still sees the
/// spike a last-writer-wins read would miss.
class Gauge {
 public:
  void Set(double v) {
    v_.store(v, std::memory_order_relaxed);
    double cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double Value() const { return v_.load(std::memory_order_relaxed); }

  /// Largest value Set() since construction or the last MaxAndReset().
  double Max() const { return max_.load(std::memory_order_relaxed); }

  /// Reset-on-read watermark for interval samplers: returns the peak of the
  /// window just ended and re-seeds the watermark with the current value,
  /// so each sampling window reports its own peak.
  double MaxAndReset() {
    const double peak = max_.exchange(Value(), std::memory_order_relaxed);
    // A Set() racing the exchange can only push max_ up again; the returned
    // peak stays correct for the closed window.
    return peak;
  }

 private:
  std::atomic<double> v_{0.0};
  std::atomic<double> max_{0.0};
};

class Histogram;

/// Frozen single-pass copy of a Histogram: all statistics derive from one
/// bucket-array read, so quantiles are mutually consistent — p50 <= p95 <=
/// p99 <= Max() always holds, which separate Quantile() calls racing with
/// recorders cannot guarantee.
class HistogramSnapshot {
 public:
  HistogramSnapshot() = default;

  /// Derived from the copied buckets (not the live count atomic), so the
  /// count always matches the mass the quantiles are computed over.
  uint64_t Count() const { return count_; }
  uint64_t Sum() const { return sum_; }
  uint64_t Min() const { return min_; }
  uint64_t Max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile q in [0,1] over the frozen buckets. Monotone in q.
  /// Returns 0 when empty.
  uint64_t Quantile(double q) const;

 private:
  friend class Histogram;

  int sub_bits_ = 0;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

/// Fixed-memory log-bucketed histogram of non-negative integer samples
/// (typically nanoseconds). Thread-safe recording; quantile queries take a
/// consistent snapshot under the same lock-free scheme (relaxed reads are
/// fine for reporting purposes).
class Histogram {
 public:
  /// sub_bucket_bits controls relative precision: 2^bits linear sub-buckets
  /// per power of two, i.e. worst-case relative error ~ 1/2^bits.
  explicit Histogram(int sub_bucket_bits = 5);

  void Record(uint64_t value);
  void RecordN(uint64_t value, uint64_t count);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Min() const;
  uint64_t Max() const;
  double Mean() const;

  /// Value at quantile q in [0,1]. Returns 0 when empty. Note: successive
  /// calls race with concurrent recorders; for mutually-consistent
  /// percentiles use TakeSnapshot() and query the snapshot.
  uint64_t Quantile(double q) const;

  /// Copy the bucket array once and freeze it; all statistics on the
  /// returned snapshot are computed from that single copy.
  HistogramSnapshot TakeSnapshot() const;

  void Reset();

  /// Merge another histogram (same bucket layout) into this one.
  void Merge(const Histogram& other);

 private:
  friend class HistogramSnapshot;
  static uint64_t LowerBound(int sub_bits, size_t index);

  size_t BucketIndex(uint64_t value) const;
  uint64_t BucketLowerBound(size_t index) const;

  int sub_bits_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Simple running mean/variance accumulator (Welford). Not thread-safe;
/// intended for single-threaded reporting code.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }
  uint64_t Count() const { return n_; }
  double Mean() const { return mean_; }
  double Variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double StdDev() const;
  double Min() const { return n_ ? min_ : 0.0; }
  double Max() const { return n_ ? max_ : 0.0; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, min_ = 0.0, max_ = 0.0;
};

/// Read-only iteration callbacks for MetricRegistry::Visit(). Default
/// implementations ignore the kind, so visitors override only what they
/// consume. Called with the registry lock held: keep the bodies short and
/// never re-enter the registry from inside one.
class MetricVisitor {
 public:
  virtual ~MetricVisitor() = default;
  virtual void OnCounter(const std::string& name, const Counter& counter) {
    (void)name;
    (void)counter;
  }
  virtual void OnGauge(const std::string& name, Gauge& gauge) {
    (void)name;
    (void)gauge;
  }
  virtual void OnHistogram(const std::string& name,
                           const Histogram& histogram) {
    (void)name;
    (void)histogram;
  }
};

/// Named registry so workflows can export all metrics in one report.
/// Creation is lazy; pointers remain valid for the registry's lifetime.
class MetricRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Iterate every registered metric in name order, one kind at a time
  /// (counters, then gauges, then histograms). The registry itself is not
  /// mutated, but gauges are passed mutable so samplers can apply
  /// reset-on-read watermark semantics (Gauge::MaxAndReset()).
  void Visit(MetricVisitor& visitor) const;

  /// Render "name value" lines for logs and golden tests: one list, sorted
  /// by name across all metric kinds (counters, gauges and histograms
  /// interleave). Histograms render as count/mean/p50/p99/max.
  std::string Report() const;

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...}} with
  /// keys sorted by name inside each section; histograms carry
  /// count/mean/p50/p95/p99/max. Deterministic, so golden-testable.
  std::string ReportJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace dlb
