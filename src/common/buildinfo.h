// Build provenance: which build produced this number?
//
// Every benchmark JSON, flight-recorder bundle and /buildinfo response
// carries the same record: the git describe of the tree, the compiler, the
// build type, the widest vector ISA arm compiled in and the kernel mode the
// process is actually running (DLB_KERNELS can demote it at runtime). A
// regression report that cannot say which build produced each side is a
// guess; stamping the provenance at the source makes dlb_benchdiff's
// left/right labels trustworthy.
//
// The git version is captured at CMake configure time (DLB_GIT_DESCRIBE);
// re-run cmake after switching commits if you need it exact.
#pragma once

#include <string>

namespace dlb {

struct BuildInfo {
  std::string version;      // git describe --always --dirty, or "unknown"
  std::string compiler;     // e.g. "gcc 12.2.0"
  std::string build_type;   // CMAKE_BUILD_TYPE, e.g. "RelWithDebInfo"
  std::string sanitizer;    // "thread" | "address" | "undefined" | ""
  std::string isa;          // widest compiled vector arm (dlb::simd)
  std::string kernel_mode;  // "fast" | "scalar" | "reference" (runtime)
};

/// The current process's provenance. kernel_mode is read at call time, so a
/// DLB_KERNELS override is reflected.
BuildInfo GetBuildInfo();

/// Deterministic JSON object:
/// {"version":…,"compiler":…,"build_type":…,"sanitizer":…,"isa":…,
///  "kernel_mode":…}
std::string BuildInfoJson();

}  // namespace dlb
