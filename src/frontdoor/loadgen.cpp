#include "frontdoor/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

namespace dlb::frontdoor {

namespace {

// splitmix64: tiny, seedable, and good enough for arrival jitter — the
// schedule must be reproducible across machines, so no std::random_device.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double UniformDouble(uint64_t& state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

double ExponentialGap(uint64_t& state, double rate) {
  double u = UniformDouble(state);
  if (u <= 0.0) u = 1e-12;
  return -std::log(u) / rate;
}

// Instantaneous rate multiplier for the shaped patterns; each has mean 1
// over the run so `rate_per_s` stays the true offered mean.
double RateMultiplier(ArrivalPattern pattern, double t, double duration) {
  switch (pattern) {
    case ArrivalPattern::kBursty: {
      // 1 s burst at 4x every 5 s; baseline scaled to keep the mean at 1:
      // mean = (4*1 + b*4)/5 = 1 -> b = 0.25.
      const double phase = std::fmod(t, 5.0);
      return phase < 1.0 ? 4.0 : 0.25;
    }
    case ArrivalPattern::kDiurnal:
      // One sinusoidal "day" over the run: 0.25x trough, 1.75x peak.
      return 1.0 + 0.75 * std::sin(2.0 * M_PI * t / duration);
    case ArrivalPattern::kStep:
      return t < duration / 2 ? 0.5 : 1.5;
    default:
      return 1.0;
  }
}

}  // namespace

Result<ArrivalPattern> ParseArrivalPattern(const std::string& name) {
  if (name == "steady") return ArrivalPattern::kSteady;
  if (name == "poisson") return ArrivalPattern::kPoisson;
  if (name == "bursty") return ArrivalPattern::kBursty;
  if (name == "diurnal") return ArrivalPattern::kDiurnal;
  if (name == "step") return ArrivalPattern::kStep;
  return InvalidArgument("unknown arrival pattern \"" + name +
                         "\" (want steady|poisson|bursty|diurnal|step)");
}

std::vector<double> GenerateArrivals(ArrivalPattern pattern,
                                     double rate_per_s, double duration_s,
                                     uint64_t seed) {
  std::vector<double> out;
  if (rate_per_s <= 0 || duration_s <= 0) return out;
  out.reserve(static_cast<size_t>(rate_per_s * duration_s * 1.2) + 16);
  uint64_t state = seed * 0x2545f4914f6cdd1dULL + 1;

  if (pattern == ArrivalPattern::kSteady) {
    const double gap = 1.0 / rate_per_s;
    for (double t = 0.0; t < duration_s; t += gap) out.push_back(t);
    return out;
  }

  // Non-homogeneous Poisson by thinning: draw at the envelope rate, keep
  // each arrival with probability multiplier(t)/envelope.
  const double envelope =
      pattern == ArrivalPattern::kPoisson ? 1.0
      : pattern == ArrivalPattern::kBursty ? 4.0
      : pattern == ArrivalPattern::kDiurnal ? 1.75
                                            : 1.5;  // kStep
  double t = 0.0;
  while (true) {
    t += ExponentialGap(state, rate_per_s * envelope);
    if (t >= duration_s) break;
    const double keep =
        RateMultiplier(pattern, t, duration_s) / envelope;
    if (UniformDouble(state) < keep) out.push_back(t);
  }
  return out;
}

Result<std::vector<TraceArrival>> LoadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFound("trace file not readable: " + path);
  std::vector<TraceArrival> out;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    char* end = nullptr;
    const double t = std::strtod(line.c_str() + first, &end);
    if (end == line.c_str() + first || t < 0) {
      return InvalidArgument(path + ":" + std::to_string(lineno) +
                             ": want \"<seconds> [tenant]\"");
    }
    TraceArrival arrival;
    arrival.t_s = t;
    while (*end == ' ' || *end == '\t') ++end;
    const char* tenant_start = end;
    while (*end && *end != ' ' && *end != '\t' && *end != '\r') ++end;
    arrival.tenant.assign(tenant_start, static_cast<size_t>(end - tenant_start));
    out.push_back(std::move(arrival));
  }
  std::sort(out.begin(), out.end(),
            [](const TraceArrival& a, const TraceArrival& b) {
              return a.t_s < b.t_s;
            });
  return out;
}

Result<std::vector<TenantMix>> ParseTenantMix(const std::string& spec) {
  std::vector<TenantMix> out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    TenantMix mix;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      mix.name = entry;
    } else {
      mix.name = entry.substr(0, eq);
      std::string rest = entry.substr(eq + 1);
      const size_t colon = rest.find(':');
      if (colon != std::string::npos) {
        mix.deadline_ms = std::strtoull(rest.c_str() + colon + 1, nullptr, 10);
        rest.resize(colon);
      }
      char* end = nullptr;
      mix.weight = std::strtod(rest.c_str(), &end);
      if (end == rest.c_str() || *end != '\0' || mix.weight <= 0) {
        return InvalidArgument("bad tenant mix entry \"" + entry +
                               "\" (want name=weight[:deadline_ms])");
      }
    }
    if (mix.name.empty()) {
      return InvalidArgument("empty tenant name in mix \"" + spec + "\"");
    }
    out.push_back(std::move(mix));
  }
  if (out.empty()) return InvalidArgument("empty tenant mix");
  return out;
}

namespace {

// Minimal blocking HTTP/1.1 keep-alive client: one socket per worker. Any
// protocol or socket failure closes the connection; the next request
// reconnects.
class Client {
 public:
  Client(std::string host, int port, uint64_t io_timeout_ms)
      : host_(std::move(host)), port_(port), io_timeout_ms_(io_timeout_ms) {}
  ~Client() { Close(); }

  struct Reply {
    bool transported = false;  // a complete HTTP response was read
    int status = 0;
    std::string body;
  };

  Reply Post(const std::string& target, const std::vector<uint8_t>& payload) {
    Reply reply;
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (fd_ < 0 && !Connect()) return reply;
      if (!SendRequest(target, payload)) {
        // A stale keep-alive connection fails on write; one reconnect
        // retry distinguishes that from a down server.
        Close();
        continue;
      }
      if (ReadResponse(reply)) return reply;
      Close();
    }
    return reply;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    buffer_.clear();
  }

 private:
  bool Connect() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(io_timeout_ms_ / 1000);
    tv.tv_usec = static_cast<suseconds_t>((io_timeout_ms_ % 1000) * 1000);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0) {
      Close();
      return false;
    }
    return true;
  }

  bool SendRequest(const std::string& target,
                   const std::vector<uint8_t>& payload) {
    std::string head = "POST " + target + " HTTP/1.1\r\nHost: " + host_ +
                       "\r\nContent-Length: " +
                       std::to_string(payload.size()) + "\r\n\r\n";
    if (!WriteAll(head.data(), head.size())) return false;
    return WriteAll(reinterpret_cast<const char*>(payload.data()),
                    payload.size());
  }

  bool WriteAll(const char* data, size_t size) {
    size_t sent = 0;
    while (sent < size) {
      const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadResponse(Reply& reply) {
    // Headers.
    size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return false;
    }
    const std::string headers = buffer_.substr(0, header_end);
    if (headers.compare(0, 9, "HTTP/1.1 ") != 0 &&
        headers.compare(0, 9, "HTTP/1.0 ") != 0) {
      return false;
    }
    reply.status = std::atoi(headers.c_str() + 9);
    size_t content_length = 0;
    {
      // Responses are server-generated; exact-case match is fine here.
      const size_t pos = headers.find("Content-Length:");
      if (pos != std::string::npos) {
        content_length = static_cast<size_t>(
            std::strtoull(headers.c_str() + pos + 15, nullptr, 10));
      }
    }
    const bool close_after =
        headers.find("Connection: close") != std::string::npos;
    while (buffer_.size() < header_end + 4 + content_length) {
      if (!Fill()) return false;
    }
    reply.body = buffer_.substr(header_end + 4, content_length);
    buffer_.erase(0, header_end + 4 + content_length);
    reply.transported = true;
    if (close_after) Close();
    return true;
  }

  bool Fill() {
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  std::string host_;
  int port_;
  uint64_t io_timeout_ms_;
  int fd_ = -1;
  std::string buffer_;
};

// Mutable per-tenant tally shared by the workers.
struct TenantTally {
  std::mutex mu;
  TenantReport report;   // latency snapshot filled at the end
  Histogram latency_us;  // live recording target
};

struct Classified {
  enum Kind {
    kOk,
    kLate,
    kDecodeFailed,
    kShed,
    kRejectedDeadline,
    kRejectedRate,
    kRejectedOther,
    kServerError,
    kTransport,
  } kind = kTransport;
};

Classified::Kind Classify(const Client::Reply& reply) {
  if (!reply.transported) return Classified::kTransport;
  switch (reply.status) {
    case 200:
      return reply.body.find("\"late\":true") != std::string::npos
                 ? Classified::kLate
                 : Classified::kOk;
    case 422:
      return Classified::kDecodeFailed;
    case 429:
      return Classified::kRejectedRate;
    case 503:
      if (reply.body.find("\"shed\"") != std::string::npos) {
        return Classified::kShed;
      }
      if (reply.body.find("deadline") != std::string::npos) {
        return Classified::kRejectedDeadline;
      }
      return Classified::kRejectedOther;
    default:
      return reply.status >= 500 ? Classified::kServerError
                                 : Classified::kRejectedOther;
  }
}

}  // namespace

uint64_t LoadReport::TotalStatus(int low, int high) const {
  uint64_t total = 0;
  for (const auto& [status, count] : status_counts) {
    if (status >= low && status <= high) total += count;
  }
  return total;
}

const TenantReport* LoadReport::Tenant(const std::string& name) const {
  for (const TenantReport& t : tenants) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

LoadReport RunLoad(const LoadgenOptions& options,
                   const std::vector<TraceArrival>& arrivals) {
  LoadReport report;
  if (arrivals.empty() || options.mix.empty()) return report;

  double total_weight = 0;
  for (const TenantMix& m : options.mix) total_weight += m.weight;

  std::vector<std::unique_ptr<TenantTally>> tallies;
  for (const TenantMix& m : options.mix) {
    auto tally = std::make_unique<TenantTally>();
    tally->report.name = m.name;
    tallies.push_back(std::move(tally));
  }

  std::mutex report_mu;  // status_counts + max lag
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> transport_total{0};

  const auto start = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(50);  // connect headroom
  const int workers = std::max(1, options.connections);

  std::vector<std::jthread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      Client client(options.host, options.port, options.io_timeout_ms);
      double local_max_lag_ms = 0;
      std::map<int, uint64_t> local_status;

      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= arrivals.size()) break;
        const TraceArrival& arrival = arrivals[i];

        // Tenant: trace override wins; otherwise a seeded draw keyed on
        // the arrival index, so the assignment is schedule-stable no
        // matter which worker fires it.
        size_t mix_index = 0;
        if (!arrival.tenant.empty()) {
          for (size_t m = 0; m < options.mix.size(); ++m) {
            if (options.mix[m].name == arrival.tenant) {
              mix_index = m;
              break;
            }
          }
        } else {
          uint64_t state = options.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
          double draw = UniformDouble(state) * total_weight;
          for (size_t m = 0; m < options.mix.size(); ++m) {
            draw -= options.mix[m].weight;
            if (draw <= 0) {
              mix_index = m;
              break;
            }
          }
        }
        const TenantMix& mix = options.mix[mix_index];

        const auto fire_at =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(arrival.t_s));
        std::this_thread::sleep_until(fire_at);
        const double lag_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - fire_at)
                .count();
        local_max_lag_ms = std::max(local_max_lag_ms, lag_ms);

        std::string target = "/infer?tenant=" + mix.name;
        if (mix.deadline_ms > 0) {
          target += "&deadline_ms=" + std::to_string(mix.deadline_ms);
        }
        const auto sent_at = std::chrono::steady_clock::now();
        const Client::Reply reply = client.Post(target, options.payload);
        const uint64_t latency_us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - sent_at)
                .count());

        const Classified::Kind kind = Classify(reply);
        TenantTally& tally = *tallies[mix_index];
        {
          std::scoped_lock lock(tally.mu);
          TenantReport& r = tally.report;
          ++r.sent;
          switch (kind) {
            case Classified::kOk:
              ++r.ok;
              break;
            case Classified::kLate:
              ++r.late;
              break;
            case Classified::kDecodeFailed:
              ++r.decode_failed;
              break;
            case Classified::kShed:
              ++r.shed;
              break;
            case Classified::kRejectedDeadline:
              ++r.rejected_deadline;
              break;
            case Classified::kRejectedRate:
              ++r.rejected_rate;
              break;
            case Classified::kRejectedOther:
              ++r.rejected_other;
              break;
            case Classified::kServerError:
              ++r.server_errors;
              break;
            case Classified::kTransport:
              ++r.transport_errors;
              break;
          }
        }
        if (reply.transported) {
          if (reply.status == 200) tally.latency_us.Record(latency_us);
          ++local_status[reply.status];
        } else {
          transport_total.fetch_add(1, std::memory_order_relaxed);
        }
      }

      std::scoped_lock lock(report_mu);
      report.max_send_lag_ms =
          std::max(report.max_send_lag_ms, local_max_lag_ms);
      for (const auto& [status, count] : local_status) {
        report.status_counts[status] += count;
      }
    });
  }
  pool.clear();  // join

  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  report.duration_s = elapsed_s;
  report.sent = arrivals.size();
  report.offered_rps =
      elapsed_s > 0 ? static_cast<double>(arrivals.size()) / elapsed_s : 0;
  report.transport_errors = transport_total.load();
  for (auto& tally : tallies) {
    tally->report.latency_us = tally->latency_us.TakeSnapshot();
    tally->report.goodput_rps =
        elapsed_s > 0 ? static_cast<double>(tally->report.ok) / elapsed_s : 0;
    report.tenants.push_back(tally->report);
  }
  return report;
}

double MeasureCapacity(const LoadgenOptions& options, double seconds) {
  if (options.mix.empty() || seconds <= 0) return 0;
  // Probe round-robin across every tenant in the mix. Probing a single
  // tenant is wrong under a shed-capable server: closed-loop saturation
  // raises the shed level, and if the probe tenant is sheddable every
  // probe bounces as a 503 and "capacity" collapses to the shed rate. With
  // all tenants probing, the shed-immune (highest-priority) tenant keeps
  // the pipeline saturated and the answered rate stays the decode rate.
  std::vector<std::string> targets;
  for (const TenantMix& m : options.mix) {
    targets.push_back("/infer?tenant=" + m.name + "&deadline_ms=60000");
  }

  std::atomic<uint64_t> answered{0};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(seconds));
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> pool;
    for (int w = 0; w < std::max(1, options.connections); ++w) {
      pool.emplace_back([&, w] {
        const std::string& target = targets[w % targets.size()];
        Client client(options.host, options.port, options.io_timeout_ms);
        while (std::chrono::steady_clock::now() < deadline) {
          const Client::Reply reply = client.Post(target, options.payload);
          if (reply.transported &&
              (reply.status == 200 || reply.status == 422)) {
            answered.fetch_add(1, std::memory_order_relaxed);
          } else if (!reply.transported) {
            // Server unreachable: back off instead of spinning.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          } else {
            // Shed/rejected: instant 503s would otherwise spin this worker
            // at kHz against the same poll loop serving real probes.
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
        }
      });
    }
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return elapsed_s > 0 ? static_cast<double>(answered.load()) / elapsed_s : 0;
}

}  // namespace dlb::frontdoor
