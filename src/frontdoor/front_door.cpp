#include "frontdoor/front_door.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/log.h"

namespace dlb::frontdoor {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

http::HttpResponse JsonError(int status, const std::string& kind,
                             const std::string& extra = "") {
  std::string body = "{\"error\":\"" + kind + "\"";
  if (!extra.empty()) body += "," + extra;
  body += "}\n";
  return {status, "application/json", std::move(body)};
}

// The toy classifier the original example used: mean-intensity bucket over
// strided pixels. The point is a deterministic answer derived from the
// decoded output, not model quality.
int ToyPredict(const ImageRef& ref) {
  long sum = 0;
  for (size_t p = 0; p < ref.SizeBytes(); p += 97) sum += ref.data[p];
  return static_cast<int>((sum / (ref.SizeBytes() / 97 + 1)) / 26);
}

}  // namespace

FrontDoor::FrontDoor(core::Pipeline* pipeline,
                     BoundedQueue<NetworkImage>* rx_queue,
                     FrontDoorOptions options)
    : pipeline_(pipeline),
      rx_queue_(rx_queue),
      options_(std::move(options)),
      http_([&] {
        http::HttpServer::Options h;
        h.bind_address = options_.bind_address;
        h.port = options_.port;
        h.max_connections = options_.max_connections;
        h.max_body_bytes = options_.max_body_bytes;
        return h;
      }()),
      admission_([&] {
        AdmissionController::Options a;
        a.min_service_rate = options_.min_service_rate;
        return a;
      }()) {}

FrontDoor::~FrontDoor() { Stop(); }

Status FrontDoor::Start() {
  if (started_.exchange(true)) return Status::Ok();

  auto specs = ParseTenantSpecs(options_.tenants);
  if (!specs.ok()) {
    started_.store(false);
    return specs.status();
  }
  specs_ = std::move(specs).value();

  int max_priority = 0;
  uint64_t min_deadline_ms = UINT64_MAX;
  MetricRegistry& registry = pipeline_->Metrics();
  tenants_.clear();
  tenants_.resize(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    const TenantSpec& spec = specs_[i];
    max_priority = std::max(max_priority, spec.priority);
    min_deadline_ms = std::min(min_deadline_ms, spec.default_deadline_ms);
    TenantState& t = tenants_[i];
    t.bucket = TokenBucket(spec.rate_per_s, spec.burst);
    const std::string prefix = "frontdoor." + spec.name + ".";
    t.admitted = registry.GetCounter(prefix + "admitted");
    t.shed = registry.GetCounter(prefix + "shed");
    t.rejected_rate = registry.GetCounter(prefix + "rejected_rate");
    t.rejected_deadline = registry.GetCounter(prefix + "rejected_deadline");
    t.rejected_queue = registry.GetCounter(prefix + "rejected_queue");
    t.completed = registry.GetCounter(prefix + "completed");
    t.failed = registry.GetCounter(prefix + "failed");
    t.deadline_missed = registry.GetCounter(prefix + "deadline_missed");
    t.queue_depth = registry.GetGauge(prefix + "queue_depth");
    t.latency_us = registry.GetHistogram(prefix + "latency_us");
  }
  shed_level_gauge_ = registry.GetGauge("frontdoor.shed_level");
  est_wait_gauge_ = registry.GetGauge("frontdoor.est_wait_ms");
  service_rate_gauge_ = registry.GetGauge("frontdoor.service_rate");
  inflight_gauge_ = registry.GetGauge("frontdoor.inflight");

  target_wait_ms_ = options_.target_wait_ms > 0
                        ? options_.target_wait_ms
                        : static_cast<double>(min_deadline_ms);

  ShedController::Options shed_opts;
  shed_opts.dwell_ns = options_.shed_dwell_ms * 1'000'000;
  shed_opts.max_level = max_priority;  // the top tenant is never shed
  shed_ = ShedController(shed_opts);

  http_.AddAsyncHandler(
      "/infer", [this](const http::HttpRequest& request,
                       http::HttpServer::Responder responder) {
        HandleInfer(request, std::move(responder));
      });
  http_.AddHandler("/frontdoor", [this](const http::HttpRequest&) {
    return http::HttpResponse{200, "application/json", SnapshotJson()};
  });
  http_.AddHandler("/healthz", [this](const http::HttpRequest&) {
    const int level = shed_level_.load(std::memory_order_relaxed);
    if (level > 0) {
      return http::HttpResponse{
          200, "text/plain; charset=utf-8",
          "degraded shedding level=" + std::to_string(level) + "\n"};
    }
    return http::HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
  });

  const Status started = http_.Start();
  if (!started.ok()) {
    started_.store(false);
    return started;
  }

  stopping_ = false;
  scheduler_ = std::jthread([this] { SchedulerLoop(); });
  completion_ = std::jthread([this] { CompletionLoop(); });
  control_ =
      std::jthread([this](std::stop_token token) { ControlLoop(token); });
  return Status::Ok();
}

void FrontDoor::Stop() {
  if (!started_.exchange(false)) return;
  http_.Stop();  // no new requests; outstanding Responders become no-ops
  {
    std::scoped_lock lock(mu_);
    stopping_ = true;
    for (TenantState& t : tenants_) t.queue.clear();
    inflight_.clear();
  }
  cv_.notify_all();
  control_.request_stop();
  // Closing the rx queue unblocks a scheduler stuck in Push() and ends the
  // pipeline's input stream, so the completion loop drains to kClosed.
  rx_queue_->Close();
  if (scheduler_.joinable()) scheduler_.join();
  if (completion_.joinable()) completion_.join();
  if (control_.joinable()) control_.join();
}

size_t FrontDoor::BacklogLocked() const {
  size_t backlog = inflight_.size() + rx_queue_->Size();
  for (const TenantState& t : tenants_) backlog += t.queue.size();
  return backlog;
}

size_t FrontDoor::BacklogAheadOfLocked(size_t tenant_index) const {
  // What a request admitted for `tenant_index` actually waits behind under
  // strict-priority scheduling: work already committed to the pipeline
  // (inflight + rx queue, FIFO once pushed) plus queued requests at its
  // priority or higher. A deep low-priority queue must NOT count — it is
  // scheduled after this request, so counting it would let bulk traffic
  // starve premium tenants of admission at exactly the moment priority is
  // supposed to protect them.
  const int priority = specs_[tenant_index].priority;
  size_t backlog = inflight_.size() + rx_queue_->Size();
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (specs_[i].priority >= priority) backlog += tenants_[i].queue.size();
  }
  return backlog;
}

void FrontDoor::HandleInfer(const http::HttpRequest& request,
                            http::HttpServer::Responder responder) {
  if (request.method != "POST") {
    responder.Send(JsonError(405, "method_not_allowed"));
    return;
  }
  if (request.body.empty()) {
    responder.Send(JsonError(400, "empty_payload"));
    return;
  }

  std::string name = http::QueryParam(request.query, "tenant");
  size_t tenant_index = specs_.size();
  if (name.empty() && specs_.size() == 1) {
    tenant_index = 0;
  } else {
    for (size_t i = 0; i < specs_.size(); ++i) {
      if (specs_[i].name == name) {
        tenant_index = i;
        break;
      }
    }
  }
  if (tenant_index == specs_.size()) {
    responder.Send(JsonError(403, "unknown_tenant",
                             "\"tenant\":\"" + name + "\""));
    return;
  }
  const TenantSpec& spec = specs_[tenant_index];

  uint64_t deadline_ms = spec.default_deadline_ms;
  const std::string deadline_param = http::QueryParam(request.query, "deadline_ms");
  if (!deadline_param.empty()) {
    const uint64_t parsed = std::strtoull(deadline_param.c_str(), nullptr, 10);
    if (parsed > 0) deadline_ms = parsed;
  }

  const uint64_t now = NowNs();
  {
    std::scoped_lock lock(mu_);
    TenantState& tenant = tenants_[tenant_index];
    if (stopping_) {
      responder.Send(JsonError(503, "shutting_down"));
      return;
    }
    const int level = shed_level_.load(std::memory_order_relaxed);
    if (spec.priority < level) {
      tenant.shed->Add();
      responder.Send(JsonError(503, "shed",
                               "\"level\":" + std::to_string(level)));
      return;
    }
    if (!tenant.bucket.TryAcquire(now)) {
      tenant.rejected_rate->Add();
      responder.Send(JsonError(429, "rate_limited"));
      return;
    }
    const size_t backlog = BacklogAheadOfLocked(tenant_index);
    if (!admission_.DeadlineFeasible(backlog, deadline_ms)) {
      tenant.rejected_deadline->Add();
      responder.Send(JsonError(
          503, "deadline_infeasible",
          "\"est_wait_ms\":" +
              std::to_string(admission_.EstimatedWaitMs(backlog))));
      return;
    }
    if (tenant.queue.size() >= spec.queue_capacity) {
      tenant.rejected_queue->Add();
      responder.Send(JsonError(503, "queue_full"));
      return;
    }

    PendingRequest pending;
    pending.id = next_id_++;
    pending.responder = std::move(responder);
    pending.payload.assign(request.body.begin(), request.body.end());
    pending.admit_ns = now;
    pending.deadline_ns = now + deadline_ms * 1'000'000;
    pending.tenant_index = tenant_index;
    tenant.queue.push_back(std::move(pending));
    tenant.queue_depth->Set(static_cast<double>(tenant.queue.size()));
    tenant.admitted->Add();
    admitted_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
}

void FrontDoor::SchedulerLoop() {
  // Tenant indices in strict priority order (stable: spec order breaks
  // ties, giving equal-priority tenants round-robin-by-arrival fairness
  // through the per-tenant FIFOs).
  std::vector<size_t> order(specs_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return specs_[a].priority > specs_[b].priority;
  });

  while (true) {
    PendingRequest pending;
    bool have = false;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] {
        if (stopping_) return true;
        for (const TenantState& t : tenants_) {
          if (!t.queue.empty()) return true;
        }
        return false;
      });
      if (stopping_) return;
      for (size_t index : order) {
        TenantState& t = tenants_[index];
        if (t.queue.empty()) continue;
        pending = std::move(t.queue.front());
        t.queue.pop_front();
        t.queue_depth->Set(static_cast<double>(t.queue.size()));
        have = true;
        break;
      }
      if (!have) continue;
      const uint64_t now = NowNs();
      if (now > pending.deadline_ns) {
        // Went stale while queued: answering it would only waste decode
        // capacity the live requests need.
        tenants_[pending.tenant_index].rejected_deadline->Add();
        lock.unlock();
        pending.responder.Send(JsonError(503, "deadline_expired"));
        continue;
      }
      InflightRequest inflight;
      inflight.responder = pending.responder;
      inflight.admit_ns = pending.admit_ns;
      inflight.deadline_ns = pending.deadline_ns;
      inflight.tenant_index = pending.tenant_index;
      inflight_.emplace(pending.id, std::move(inflight));
    }

    NetworkImage image;
    image.payload = std::move(pending.payload);
    image.request_id = pending.id;
    if (!rx_queue_->Push(std::move(image)).ok()) {
      // Queue closed mid-shutdown; the stopping_ check above ends the loop.
      std::scoped_lock lock(mu_);
      inflight_.erase(pending.id);
    }
  }
}

void FrontDoor::CompletionLoop() {
  while (true) {
    auto batch = pipeline_->NextBatch();
    if (!batch.ok()) return;  // kClosed: stream over
    const uint64_t now = NowNs();
    for (size_t i = 0; i < batch.value()->Size(); ++i) {
      const ImageRef ref = batch.value()->At(i);
      InflightRequest request;
      {
        std::scoped_lock lock(mu_);
        auto it = inflight_.find(ref.cookie);
        if (it == inflight_.end()) continue;
        request = std::move(it->second);
        inflight_.erase(it);
      }
      TenantState& tenant = tenants_[request.tenant_index];
      const uint64_t latency_us = (now - request.admit_ns) / 1000;
      tenant.latency_us->Record(latency_us);
      completed_.fetch_add(1, std::memory_order_relaxed);
      if (!ref.ok) {
        // The client's payload failed to decode — a 4xx, not a 5xx: the
        // server is healthy, the data was not (the fault-soak lane relies
        // on this distinction to detect real 5xx storms).
        tenant.failed->Add();
        request.responder.Send(JsonError(
            422, "decode_failed",
            "\"id\":" + std::to_string(ref.cookie)));
        continue;
      }
      const bool late = now > request.deadline_ns;
      if (late) tenant.deadline_missed->Add();
      tenant.completed->Add();
      request.responder.Send(http::HttpResponse{
          200, "application/json",
          "{\"id\":" + std::to_string(ref.cookie) +
              ",\"tenant\":\"" + specs_[request.tenant_index].name +
              "\",\"prediction\":" + std::to_string(ToyPredict(ref)) +
              ",\"latency_us\":" + std::to_string(latency_us) +
              ",\"late\":" + (late ? "true" : "false") + "}\n"});
    }
  }
}

void FrontDoor::ControlLoop(std::stop_token token) {
  const auto interval =
      std::chrono::milliseconds(options_.control_interval_ms);
  while (!token.stop_requested()) {
    // Sleep in small slices so Stop() never waits a full interval.
    const auto wake = std::chrono::steady_clock::now() + interval;
    while (!token.stop_requested() &&
           std::chrono::steady_clock::now() < wake) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (token.stop_requested()) return;

    const core::PipelineStats stats = pipeline_->Stats();
    const uint64_t now = NowNs();
    double est_wait_ms = 0;
    double service_rate = 0;
    size_t inflight = 0;
    {
      std::scoped_lock lock(mu_);
      admission_.ObserveProgress(stats.images_ok, now);
      est_wait_ms = admission_.EstimatedWaitMs(BacklogLocked());
      service_rate = admission_.ServiceRatePerS();
      inflight = inflight_.size();
    }
    const double rx_fill =
        static_cast<double>(rx_queue_->Size()) /
        static_cast<double>(std::max<size_t>(rx_queue_->Capacity(), 1));
    const bool slo_burning =
        pipeline_->Slo() != nullptr && pipeline_->Slo()->AnyBurning();
    double pressure =
        std::max(est_wait_ms / target_wait_ms_, rx_fill / 0.95);
    if (slo_burning) pressure = std::max(pressure, 1.5);

    int level = 0;
    {
      std::scoped_lock lock(mu_);
      level = shed_.Update(pressure, now);
    }
    const int previous = shed_level_.exchange(level);
    if (level != previous) {
      DLB_WARN << "frontdoor shed level " << previous << " -> " << level
               << " (pressure " << pressure << ", est_wait "
               << est_wait_ms << " ms)";
      if (telemetry::EventLog* events = pipeline_->Events()) {
        events->Log(telemetry::EventType::kOverloadShed, 0,
                    static_cast<uint64_t>(level),
                    static_cast<uint64_t>(previous));
      }
      if (previous == 0 && level > 0 && pipeline_->Flight() != nullptr) {
        pipeline_->Flight()->Trigger(
            flight::TriggerKind::kOverloadShed,
            "shed level " + std::to_string(level) + ", est_wait " +
                std::to_string(est_wait_ms) + " ms");
      }
    }
    shed_level_gauge_->Set(level);
    est_wait_gauge_->Set(est_wait_ms);
    service_rate_gauge_->Set(service_rate);
    inflight_gauge_->Set(static_cast<double>(inflight));
  }
}

std::string FrontDoor::SnapshotJson() const {
  std::scoped_lock lock(mu_);
  std::string out = "{\"shed_level\":" +
                    std::to_string(shed_level_.load()) +
                    ",\"service_rate\":" +
                    std::to_string(admission_.ServiceRatePerS()) +
                    ",\"inflight\":" + std::to_string(inflight_.size()) +
                    ",\"tenants\":[";
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (i > 0) out += ",";
    const TenantSpec& spec = specs_[i];
    const TenantState& t = tenants_[i];
    out += "{\"name\":\"" + spec.name + "\"";
    out += ",\"priority\":" + std::to_string(spec.priority);
    out += ",\"queued\":" + std::to_string(t.queue.size());
    out += ",\"admitted\":" + std::to_string(t.admitted->Value());
    out += ",\"shed\":" + std::to_string(t.shed->Value());
    out += ",\"rejected_rate\":" + std::to_string(t.rejected_rate->Value());
    out += ",\"rejected_deadline\":" +
           std::to_string(t.rejected_deadline->Value());
    out += ",\"completed\":" + std::to_string(t.completed->Value());
    out += ",\"failed\":" + std::to_string(t.failed->Value());
    out += ",\"deadline_missed\":" +
           std::to_string(t.deadline_missed->Value());
    out += ",\"p99_us\":" + std::to_string(t.latency_us->Quantile(0.99));
    out += "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace dlb::frontdoor
