// Admission-control primitives for the inference front door: per-tenant
// token buckets, tenant specs, deadline feasibility math and the shed
// controller. Everything here is clock-parameterised (callers pass now_ns)
// so unit tests drive the exact refill/hysteresis schedules with a fake
// clock — determinism is the point, these decisions gate real traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dlb::frontdoor {

/// Classic token bucket: `rate_per_s` tokens/s up to `burst`. Starts full
/// (a quiet tenant may open with a burst). Externally synchronised — the
/// front door calls it under its admission lock.
class TokenBucket {
 public:
  /// rate_per_s <= 0 means unlimited (TryAcquire always succeeds).
  TokenBucket(double rate_per_s, double burst);

  /// Refill to `now_ns` and take one token if available.
  bool TryAcquire(uint64_t now_ns);

  /// Tokens available at `now_ns` (refills as a side effect).
  double TokensAt(uint64_t now_ns);

 private:
  void Refill(uint64_t now_ns);

  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  uint64_t last_ns_ = 0;
  bool primed_ = false;
};

/// One tenant's contract with the front door.
struct TenantSpec {
  /// Identifier clients pass as ?tenant=<name>. Lowercase [a-z0-9_]+ so
  /// the derived metric names survive Prometheus rendering.
  std::string name;
  /// Higher = more important. The shed controller drops tenants with
  /// priority < shed level; the scheduler drains higher priorities first.
  int priority = 1;
  /// Token-bucket rate (requests/s); 0 = unlimited.
  double rate_per_s = 0.0;
  /// Bucket depth; 0 = max(2 * rate, 32).
  double burst = 0.0;
  /// Deadline applied when the request does not carry ?deadline_ms=.
  uint64_t default_deadline_ms = 100;
  /// Per-tenant admission queue capacity (503 beyond it).
  size_t queue_capacity = 256;
};

/// Parse "premium:prio=2,rate=500,burst=64,deadline=50;batch:prio=0".
/// Per-tenant keys: prio, rate, burst, deadline (ms), queue. A bare name
/// takes every default. kInvalidArgument on malformed specs, duplicate or
/// illegal names, or an empty spec.
Result<std::vector<TenantSpec>> ParseTenantSpecs(const std::string& spec);

/// Service-rate estimator + deadline feasibility. Feed it pipeline
/// progress (cumulative images_ok) on a steady cadence; it keeps an EWMA
/// of the observed service rate and prices the queue in wait-time.
class AdmissionController {
 public:
  struct Options {
    /// EWMA smoothing for the service-rate estimate (0..1; weight of the
    /// newest window).
    double alpha = 0.3;
    /// Floor before any traffic has been observed, so the first requests
    /// are never rejected by a zero-rate estimate (requests/s).
    double min_service_rate = 50.0;
  };

  AdmissionController() : AdmissionController(Options()) {}
  explicit AdmissionController(Options options);

  /// Record cumulative completed-image count at `now_ns`; updates the
  /// service-rate EWMA from the delta. Call on a steady cadence.
  void ObserveProgress(uint64_t images_ok, uint64_t now_ns);

  /// Smoothed service rate (images/s); never below min_service_rate.
  double ServiceRatePerS() const;

  /// Expected wait for a request entering behind `queued_ahead` requests.
  double EstimatedWaitMs(size_t queued_ahead) const;

  /// Can a request with `deadline_ms` budget left still make it, given the
  /// backlog ahead of it? (Pure function of the rate estimate — the test
  /// seam for the deadline math.)
  bool DeadlineFeasible(size_t queued_ahead, uint64_t deadline_ms) const;

 private:
  Options options_;
  double rate_ = 0.0;  // EWMA, images/s
  uint64_t last_images_ = 0;
  uint64_t last_ns_ = 0;
  bool primed_ = false;
};

/// Hysteresis shed-level controller. Level 0 = everyone admitted; level L
/// sheds tenants with priority < L. Pressure >= 1 means overloaded (the
/// front door feeds it max(est_wait/target, rx_fill/0.9, slo_burning)).
/// Steps are rate-limited by a dwell time, and the step-down threshold is
/// below the step-up threshold, so the level cannot flap at the boundary.
class ShedController {
 public:
  struct Options {
    /// Step the level up when pressure exceeds this.
    double high = 1.0;
    /// Step the level down when pressure falls below this.
    double low = 0.6;
    /// Minimum ns between level changes (dwell).
    uint64_t dwell_ns = 500'000'000;
    /// Highest level Update() will return (max tenant priority: the top
    /// tenant is never shed — it degrades by deadline rejection only).
    int max_level = 1;
  };

  explicit ShedController(Options options) : options_(options) {}

  /// Feed one pressure sample; returns the (possibly unchanged) level.
  int Update(double pressure, uint64_t now_ns);

  int Level() const { return level_; }

 private:
  Options options_;
  int level_ = 0;
  uint64_t last_change_ns_ = 0;
  bool primed_ = false;
};

}  // namespace dlb::frontdoor
