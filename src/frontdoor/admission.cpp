#include "frontdoor/admission.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace dlb::frontdoor {

TokenBucket::TokenBucket(double rate_per_s, double burst)
    : rate_(rate_per_s),
      burst_(burst > 0 ? burst : std::max(2.0 * rate_per_s, 32.0)),
      tokens_(burst_) {}

void TokenBucket::Refill(uint64_t now_ns) {
  if (!primed_) {
    primed_ = true;
    last_ns_ = now_ns;
    return;
  }
  if (now_ns <= last_ns_) return;
  const double elapsed_s = static_cast<double>(now_ns - last_ns_) / 1e9;
  tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
  last_ns_ = now_ns;
}

bool TokenBucket::TryAcquire(uint64_t now_ns) {
  if (rate_ <= 0) return true;  // unlimited
  Refill(now_ns);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::TokensAt(uint64_t now_ns) {
  Refill(now_ns);
  return rate_ <= 0 ? burst_ : tokens_;
}

namespace {

bool ValidTenantName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<TenantSpec>> ParseTenantSpecs(const std::string& spec) {
  std::vector<TenantSpec> out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string entry = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (entry.empty()) continue;

    TenantSpec tenant;
    const size_t colon = entry.find(':');
    tenant.name = entry.substr(0, colon);
    if (!ValidTenantName(tenant.name)) {
      return InvalidArgument("bad tenant name \"" + tenant.name +
                             "\" (want [a-z0-9_]+)");
    }
    for (const TenantSpec& existing : out) {
      if (existing.name == tenant.name) {
        return InvalidArgument("duplicate tenant \"" + tenant.name + "\"");
      }
    }

    if (colon != std::string::npos) {
      size_t kv = colon + 1;
      while (kv < entry.size()) {
        size_t comma = entry.find(',', kv);
        if (comma == std::string::npos) comma = entry.size();
        const std::string pair = entry.substr(kv, comma - kv);
        kv = comma + 1;
        if (pair.empty()) continue;
        const size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          return InvalidArgument("tenant \"" + tenant.name +
                                 "\": want key=value, got \"" + pair + "\"");
        }
        const std::string key = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        char* end = nullptr;
        const double number = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' || number < 0) {
          return InvalidArgument("tenant \"" + tenant.name + "\": bad " +
                                 key + "=" + value);
        }
        if (key == "prio") {
          tenant.priority = static_cast<int>(number);
        } else if (key == "rate") {
          tenant.rate_per_s = number;
        } else if (key == "burst") {
          tenant.burst = number;
        } else if (key == "deadline") {
          tenant.default_deadline_ms = static_cast<uint64_t>(number);
        } else if (key == "queue") {
          if (number < 1) {
            return InvalidArgument("tenant \"" + tenant.name +
                                   "\": queue must be >= 1");
          }
          tenant.queue_capacity = static_cast<size_t>(number);
        } else {
          return InvalidArgument("tenant \"" + tenant.name +
                                 "\": unknown key \"" + key + "\"");
        }
      }
    }
    out.push_back(std::move(tenant));
  }
  if (out.empty()) return InvalidArgument("empty tenant spec");
  return out;
}

AdmissionController::AdmissionController(Options options)
    : options_(options) {}

void AdmissionController::ObserveProgress(uint64_t images_ok,
                                          uint64_t now_ns) {
  if (!primed_) {
    primed_ = true;
    last_images_ = images_ok;
    last_ns_ = now_ns;
    return;
  }
  if (now_ns <= last_ns_) return;
  const double window_s = static_cast<double>(now_ns - last_ns_) / 1e9;
  const double delta =
      images_ok >= last_images_
          ? static_cast<double>(images_ok - last_images_)
          : 0.0;  // counter reset: skip the window rather than go negative
  const double window_rate = delta / window_s;
  rate_ = rate_ == 0.0
              ? window_rate
              : options_.alpha * window_rate + (1.0 - options_.alpha) * rate_;
  last_images_ = images_ok;
  last_ns_ = now_ns;
}

double AdmissionController::ServiceRatePerS() const {
  return std::max(rate_, options_.min_service_rate);
}

double AdmissionController::EstimatedWaitMs(size_t queued_ahead) const {
  return 1000.0 * static_cast<double>(queued_ahead) / ServiceRatePerS();
}

bool AdmissionController::DeadlineFeasible(size_t queued_ahead,
                                           uint64_t deadline_ms) const {
  return EstimatedWaitMs(queued_ahead) <= static_cast<double>(deadline_ms);
}

int ShedController::Update(double pressure, uint64_t now_ns) {
  if (!primed_) {
    primed_ = true;
    last_change_ns_ = now_ns;
  }
  const bool dwelled = now_ns - last_change_ns_ >= options_.dwell_ns;
  if (pressure > options_.high && level_ < options_.max_level &&
      (dwelled || level_ == 0)) {
    // Entering shedding is immediate — overload must not wait out a dwell
    // window; subsequent escalation steps do.
    ++level_;
    last_change_ns_ = now_ns;
  } else if (pressure < options_.low && level_ > 0 && dwelled) {
    --level_;
    last_change_ns_ = now_ns;
  }
  return level_;
}

}  // namespace dlb::frontdoor
