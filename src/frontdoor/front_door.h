// Multi-tenant inference front door (DESIGN.md §5.12): the socket-serving
// edge between many concurrent HTTP clients and one DLBooster pipeline.
//
//   clients ──► HttpServer (shared poll loop, common/http_server.h)
//                  │  POST /infer?tenant=T[&deadline_ms=N]   body = JPEG
//                  ▼
//            admission (per-tenant token bucket → shed level → deadline
//            feasibility → per-tenant queue with bounded depth)
//                  ▼
//            scheduler thread (strict priority across tenant queues) ──►
//            rx queue (the pipeline's network source; blocking push =
//            backpressure)
//                  ▼
//            pipeline (decode on the emulated FPGA)
//                  ▼
//            completion thread (NextBatch loop; answers each request's
//            Responder by cookie — 200 with the toy prediction, 422 when
//            the client's payload failed to decode)
//
// A control thread closes the loop: it feeds pipeline progress into the
// service-rate EWMA (deadline pricing), publishes frontdoor.* metrics into
// the pipeline's registry (so /metrics, the sampler, Prometheus and
// dlb_monitor see them with zero extra wiring), and drives the hysteresis
// shed controller. Entering shedding raises a kOverloadShed event and a
// flight-recorder trigger; the pipeline's /healthz reports the level on
// its degraded-but-serving line.
//
// Status codes are the contract the load generator and the overload-soak
// lane assert on:
//   200 answered (body carries "late":true past the deadline)
//   400 empty payload        403 unknown tenant
//   422 payload failed to decode (client data, not server health)
//   429 tenant over its token-bucket rate
//   503 shed / deadline infeasible / tenant queue full (overload — the
//       only "try later" class, and it must never be a 5xx storm of 500s)
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/http_server.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "frontdoor/admission.h"
#include "hostbridge/data_collector.h"

namespace dlb::frontdoor {

struct FrontDoorOptions {
  /// Bind address / port for the serving socket (0 = ephemeral).
  std::string bind_address = "127.0.0.1";
  int port = 0;
  /// Concurrent connections the poll loop tracks.
  int max_connections = 128;
  /// Tenant spec (admission.h grammar), e.g.
  /// "premium:prio=2,rate=500,deadline=50;batch:prio=0,deadline=2000".
  std::string tenants = "default:prio=1,deadline=1000";
  /// Wait-time target the shed controller defends (ms). 0 derives the
  /// smallest tenant default deadline.
  double target_wait_ms = 0.0;
  /// Control-loop cadence: service-rate EWMA, gauges, shed decisions.
  uint64_t control_interval_ms = 100;
  /// Shed-level dwell between steps (hysteresis).
  uint64_t shed_dwell_ms = 500;
  /// Admission floor before any throughput was observed (requests/s).
  double min_service_rate = 50.0;
  /// Per-request body cap (413 beyond it).
  size_t max_body_bytes = 4u << 20;
};

class FrontDoor {
 public:
  /// The pipeline must have been built with WithNetworkSource(rx_queue)
  /// and must outlive the front door. The front door owns the pipeline's
  /// consume side: nothing else may call NextBatch() while it runs.
  FrontDoor(core::Pipeline* pipeline, BoundedQueue<NetworkImage>* rx_queue,
            FrontDoorOptions options);
  ~FrontDoor();

  FrontDoor(const FrontDoor&) = delete;
  FrontDoor& operator=(const FrontDoor&) = delete;

  /// Parse the tenant spec, bind the serving socket and launch the
  /// scheduler / completion / control threads.
  Status Start();

  /// Stop serving: refuses new connections, fails queued requests, closes
  /// the rx queue (ending the pipeline's input stream — the pipeline
  /// cannot be re-fed afterwards) and joins all threads. Idempotent.
  void Stop();

  /// Bound serving port, or -1 before Start().
  int Port() const { return http_.Port(); }

  /// Current shed level (0 = admitting everyone).
  int ShedLevel() const {
    return shed_level_.load(std::memory_order_relaxed);
  }

  /// Requests admitted past admission control (all tenants).
  uint64_t Admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  /// Requests answered (200 or 422).
  uint64_t Completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

  /// Configured tenants (valid after Start()).
  const std::vector<TenantSpec>& Tenants() const { return specs_; }

  /// Deterministic test seam: route a request without a socket.
  http::HttpResponse Dispatch(const http::HttpRequest& request) const {
    return http_.Dispatch(request);
  }

 private:
  struct PendingRequest {
    uint64_t id = 0;
    http::HttpServer::Responder responder;
    Bytes payload;
    uint64_t admit_ns = 0;
    uint64_t deadline_ns = 0;  // absolute
    size_t tenant_index = 0;
  };

  struct InflightRequest {
    http::HttpServer::Responder responder;
    uint64_t admit_ns = 0;
    uint64_t deadline_ns = 0;
    size_t tenant_index = 0;
  };

  // Per-tenant runtime state (parallel to specs_).
  struct TenantState {
    TokenBucket bucket{0, 0};
    std::deque<PendingRequest> queue;
    Counter* admitted = nullptr;
    Counter* shed = nullptr;
    Counter* rejected_rate = nullptr;
    Counter* rejected_deadline = nullptr;
    Counter* rejected_queue = nullptr;
    Counter* completed = nullptr;
    Counter* failed = nullptr;
    Counter* deadline_missed = nullptr;
    Gauge* queue_depth = nullptr;
    Histogram* latency_us = nullptr;
  };

  void HandleInfer(const http::HttpRequest& request,
                   http::HttpServer::Responder responder);
  std::string SnapshotJson() const;
  void SchedulerLoop();
  void CompletionLoop();
  void ControlLoop(std::stop_token token);
  size_t BacklogLocked() const;  // mu_ held
  // Backlog scheduled ahead of a new request for this tenant under strict
  // priority: inflight + rx queue + queues at >= its priority. mu_ held.
  size_t BacklogAheadOfLocked(size_t tenant_index) const;

  core::Pipeline* pipeline_;
  BoundedQueue<NetworkImage>* rx_queue_;
  FrontDoorOptions options_;
  std::vector<TenantSpec> specs_;
  double target_wait_ms_ = 0.0;

  http::HttpServer http_;
  std::jthread scheduler_;
  std::jthread completion_;
  std::jthread control_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  // scheduler wake: work or stop
  std::vector<TenantState> tenants_;
  std::map<uint64_t, InflightRequest> inflight_;
  AdmissionController admission_;
  ShedController shed_{ShedController::Options{}};
  uint64_t next_id_ = 1;
  bool stopping_ = false;

  std::atomic<bool> started_{false};
  std::atomic<int> shed_level_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> completed_{0};

  // Global gauges in the pipeline registry (set by the control thread).
  Gauge* shed_level_gauge_ = nullptr;
  Gauge* est_wait_gauge_ = nullptr;
  Gauge* service_rate_gauge_ = nullptr;
  Gauge* inflight_gauge_ = nullptr;
};

}  // namespace dlb::frontdoor
