// Open-loop load generation against the inference front door.
//
// Open-loop means the arrival schedule is fixed up front (a function of
// pattern, rate, duration and seed — never of response times), so a slow
// server faces the same offered load a fast one does; that is the only
// way saturation and shed behaviour are measurable (closed-loop clients
// self-throttle and hide the overload). Workers pull the next arrival off
// a shared index and sleep until its timestamp; send lag is recorded so a
// run can prove its schedule integrity.
//
// The same library backs tools/dlb_loadgen (CLI + soak gating) and
// bench_frontdoor_overload (in-process saturation sweep).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stats.h"

namespace dlb::frontdoor {

enum class ArrivalPattern {
  kSteady,   // evenly spaced
  kPoisson,  // exponential inter-arrivals at the mean rate
  kBursty,   // Poisson baseline + periodic 4x bursts (1 s every 5 s)
  kDiurnal,  // sinusoidal rate between 0.25x and 1.75x over the run
  kStep,     // 0.5x for the first half, 1.5x for the second
};

Result<ArrivalPattern> ParseArrivalPattern(const std::string& name);

/// Arrival offsets in seconds over [0, duration_s), sorted ascending.
/// Deterministic in (pattern, rate, duration, seed). Mean rate is
/// `rate_per_s` for every pattern (the shapes redistribute, not add).
std::vector<double> GenerateArrivals(ArrivalPattern pattern,
                                     double rate_per_s, double duration_s,
                                     uint64_t seed);

/// Load a trace file of arrival offsets: one "<seconds> [tenant]" pair per
/// line, '#' comments. Returns offsets + the optional per-line tenant
/// override (empty string = pick from the configured mix).
struct TraceArrival {
  double t_s = 0.0;
  std::string tenant;
};
Result<std::vector<TraceArrival>> LoadTrace(const std::string& path);

/// One tenant's share of the generated traffic.
struct TenantMix {
  std::string name;
  double weight = 1.0;
  /// Per-request deadline passed as ?deadline_ms= (0 = server default).
  uint64_t deadline_ms = 0;
};

/// Parse "premium=0.3:50,batch=0.7" (name=weight[:deadline_ms], comma
/// separated). kInvalidArgument on malformed entries.
Result<std::vector<TenantMix>> ParseTenantMix(const std::string& spec);

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  std::vector<TenantMix> mix;
  /// Concurrent keep-alive connections (worker threads). Bounds how far
  /// the open loop can stay on schedule past saturation — size it well
  /// above the expected concurrency.
  int connections = 16;
  uint64_t seed = 42;
  /// JPEG payload each request posts.
  std::vector<uint8_t> payload;
  /// Per-request socket timeout.
  uint64_t io_timeout_ms = 10'000;
};

struct TenantReport {
  std::string name;
  uint64_t sent = 0;
  uint64_t ok = 0;             // 200 within deadline
  uint64_t late = 0;           // 200 with "late":true
  uint64_t decode_failed = 0;  // 422
  uint64_t shed = 0;           // 503 body error=shed
  uint64_t rejected_deadline = 0;  // 503 deadline_infeasible/_expired
  uint64_t rejected_rate = 0;      // 429
  uint64_t rejected_other = 0;     // remaining 4xx/503
  uint64_t server_errors = 0;      // 5xx other than 503
  uint64_t transport_errors = 0;   // connect/read/write failures
  HistogramSnapshot latency_us;    // of 200 responses
  /// On-time completions per second of wall time.
  double goodput_rps = 0.0;
};

struct LoadReport {
  double duration_s = 0.0;
  double offered_rps = 0.0;
  uint64_t sent = 0;
  std::map<int, uint64_t> status_counts;  // HTTP status -> count
  uint64_t transport_errors = 0;
  std::vector<TenantReport> tenants;
  /// Worst send lag (ms) behind the open-loop schedule; large values mean
  /// the worker pool, not the schedule, was the bottleneck.
  double max_send_lag_ms = 0.0;

  uint64_t TotalStatus(int low, int high) const;  // [low, high] inclusive
  const TenantReport* Tenant(const std::string& name) const;
};

/// Fire the arrival schedule at the front door and collect the report.
/// `trace` entries with a tenant override win over the mix draw.
LoadReport RunLoad(const LoadgenOptions& options,
                   const std::vector<TraceArrival>& arrivals);

/// Closed-loop capacity probe: `connections` workers (round-robin across
/// the tenant mix, so a shed-capable server still has shed-immune probes
/// saturating it) send back-to-back for `seconds`; returns achieved
/// answered-request throughput (requests/s). This is the saturation point
/// the overload sweep multiplies.
double MeasureCapacity(const LoadgenOptions& options, double seconds);

}  // namespace dlb::frontdoor
