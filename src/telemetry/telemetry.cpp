#include "telemetry/telemetry.h"

#include <chrono>

#include "common/log.h"
#include "telemetry/event_log.h"
#include "telemetry/trace.h"

namespace dlb::telemetry {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kFetch:
      return "fetch";
    case Stage::kDecode:
      return "decode";
    case Stage::kResize:
      return "resize";
    case Stage::kCollect:
      return "collect";
    case Stage::kDispatch:
      return "dispatch";
    case Stage::kConsume:
      return "consume";
  }
  return "unknown";
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

StageMetrics::StageMetrics(Stage stage, MetricRegistry* registry)
    : stage_(stage) {
  DLB_CHECK(registry != nullptr);
  const std::string prefix = std::string("stage.") + StageName(stage);
  ops_ = registry->GetCounter(prefix + ".ops");
  items_ = registry->GetCounter(prefix + ".items");
  cpu_ = registry->GetCounter(prefix + ".cpu_ns");
  wait_ = registry->GetCounter(prefix + ".wait_ns");
  latency_ = registry->GetHistogram(prefix + ".latency_ns");
}

void StageMetrics::Record(uint64_t duration_ns, uint64_t items,
                          uint64_t cpu_ns) {
  ops_->Add();
  items_->Add(items);
  latency_->Record(duration_ns);
  if (cpu_ns != kCpuUnknown) {
    // Clamp: a thread migrating between clock reads (or clock granularity)
    // can report cpu slightly above wall; cpu+wait must sum to duration.
    const uint64_t cpu = cpu_ns < duration_ns ? cpu_ns : duration_ns;
    cpu_->Add(cpu);
    wait_->Add(duration_ns - cpu);
  }
}

StageSnapshot StageMetrics::Snapshot() const {
  StageSnapshot snap;
  snap.stage = stage_;
  snap.name = StageName(stage_);
  snap.ops = ops_->Value();
  snap.items = items_->Value();
  snap.cpu_ns = cpu_->Value();
  snap.wait_ns = wait_->Value();
  // One frozen bucket copy for every percentile: separate Quantile() calls
  // racing with recorders could report p99 < p50 (each call walks a
  // different bucket state); the snapshot cannot.
  const HistogramSnapshot lat = latency_->TakeSnapshot();
  snap.busy_ns = lat.Sum();
  snap.mean_ns = lat.Mean();
  snap.p50_ns = lat.Quantile(0.50);
  snap.p95_ns = lat.Quantile(0.95);
  snap.p99_ns = lat.Quantile(0.99);
  snap.max_ns = lat.Max();
  return snap;
}

Telemetry::Telemetry(size_t span_capacity) : spans_(span_capacity) {
  for (int i = 0; i < kNumStages; ++i) {
    stages_[i] =
        std::make_unique<StageMetrics>(static_cast<Stage>(i), &registry_);
  }
}

Telemetry::~Telemetry() = default;

Tracer* Telemetry::EnableTracing(size_t span_capacity) {
  if (!tracer_) tracer_ = std::make_unique<Tracer>(span_capacity);
  return tracer_.get();
}

Tracer* Telemetry::EnableTracing() { return EnableTracing(kDefaultTraceSpans); }

EventLog* Telemetry::EnableEvents(size_t capacity, EventLevel min_level) {
  if (!events_) events_ = std::make_unique<EventLog>(capacity, min_level);
  return events_.get();
}

EventLog* Telemetry::EnableEvents() {
  return EnableEvents(kDefaultEventCapacity, EventLevel::kInfo);
}

uint64_t Telemetry::RecordSpan(Stage stage, uint64_t start_ns, uint64_t end_ns,
                               uint64_t items, const TraceContext& ctx,
                               Subsystem subsystem, uint32_t tid,
                               uint64_t cpu_ns) {
  RecordSpan(stage, start_ns, end_ns, items, cpu_ns);
  if (tracer_ == nullptr || !ctx.Enabled()) return 0;
  return tracer_->RecordSpan(ctx, stage, subsystem, tid, start_ns, end_ns,
                             items);
}

void Telemetry::RecordSpan(Stage stage, uint64_t start_ns, uint64_t end_ns,
                           uint64_t items, uint64_t cpu_ns) {
  if (end_ns < start_ns) end_ns = start_ns;
  Get(stage).Record(end_ns - start_ns, items, cpu_ns);
  SpanRecord record;
  record.stage = stage;
  record.start_ns = start_ns;
  record.end_ns = end_ns;
  record.items = items;
  spans_.Push(record);
}

void Telemetry::RecordTimed(const StageTimer& timer, uint64_t items) {
  RecordSpan(timer.ForStage(), timer.StartNs(), NowNs(), items,
             timer.CpuNs());
}

uint64_t Telemetry::RecordTimed(const StageTimer& timer, uint64_t items,
                                const TraceContext& ctx, Subsystem subsystem,
                                uint32_t tid) {
  return RecordSpan(timer.ForStage(), timer.StartNs(), NowNs(), items, ctx,
                    subsystem, tid, timer.CpuNs());
}

std::vector<StageSnapshot> Telemetry::SnapshotStages() const {
  std::vector<StageSnapshot> out;
  out.reserve(kNumStages);
  for (int i = 0; i < kNumStages; ++i) {
    out.push_back(stages_[i]->Snapshot());
  }
  return out;
}

}  // namespace dlb::telemetry
