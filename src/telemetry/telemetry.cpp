#include "telemetry/telemetry.h"

#include <bit>
#include <chrono>

#include "common/log.h"

namespace dlb::telemetry {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kFetch:
      return "fetch";
    case Stage::kDecode:
      return "decode";
    case Stage::kResize:
      return "resize";
    case Stage::kCollect:
      return "collect";
    case Stage::kDispatch:
      return "dispatch";
    case Stage::kConsume:
      return "consume";
  }
  return "unknown";
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SpanRing::SpanRing(size_t capacity)
    : slots_(std::bit_ceil(capacity < 2 ? size_t{2} : capacity)) {}

uint64_t SpanRing::Push(SpanRecord record) {
  const uint64_t seq = cursor_.fetch_add(1, std::memory_order_acq_rel);
  record.seq = seq;
  Slot& slot = slots_[seq & (slots_.size() - 1)];
  // Seqlock write: bump to odd, store payload, bump to even. A slower
  // writer lapped by a faster one can interleave versions, but readers
  // validate the version word around the copy, so a torn read is never
  // returned — at worst the slot is skipped in that snapshot.
  const uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_release);
  slot.record = record;
  slot.version.store(v + 2, std::memory_order_release);
  return seq;
}

std::vector<SpanRecord> SpanRing::Snapshot() const {
  const uint64_t end = cursor_.load(std::memory_order_acquire);
  const uint64_t count =
      end < slots_.size() ? end : static_cast<uint64_t>(slots_.size());
  std::vector<SpanRecord> out;
  out.reserve(count);
  for (uint64_t seq = end - count; seq < end; ++seq) {
    const Slot& slot = slots_[seq & (slots_.size() - 1)];
    const uint64_t before = slot.version.load(std::memory_order_acquire);
    if (before & 1) continue;  // mid-write
    SpanRecord copy = slot.record;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_acquire) != before) continue;
    if (copy.seq != seq) continue;  // already overwritten by a newer lap
    out.push_back(copy);
  }
  return out;
}

StageMetrics::StageMetrics(Stage stage, MetricRegistry* registry)
    : stage_(stage) {
  DLB_CHECK(registry != nullptr);
  const std::string prefix = std::string("stage.") + StageName(stage);
  ops_ = registry->GetCounter(prefix + ".ops");
  items_ = registry->GetCounter(prefix + ".items");
  latency_ = registry->GetHistogram(prefix + ".latency_ns");
}

void StageMetrics::Record(uint64_t duration_ns, uint64_t items) {
  ops_->Add();
  items_->Add(items);
  latency_->Record(duration_ns);
}

StageSnapshot StageMetrics::Snapshot() const {
  StageSnapshot snap;
  snap.stage = stage_;
  snap.name = StageName(stage_);
  snap.ops = ops_->Value();
  snap.items = items_->Value();
  snap.busy_ns = latency_->Sum();
  snap.mean_ns = latency_->Mean();
  snap.p50_ns = latency_->Quantile(0.50);
  snap.p95_ns = latency_->Quantile(0.95);
  snap.p99_ns = latency_->Quantile(0.99);
  snap.max_ns = latency_->Max();
  return snap;
}

Telemetry::Telemetry(size_t span_capacity) : spans_(span_capacity) {
  for (int i = 0; i < kNumStages; ++i) {
    stages_[i] =
        std::make_unique<StageMetrics>(static_cast<Stage>(i), &registry_);
  }
}

void Telemetry::RecordSpan(Stage stage, uint64_t start_ns, uint64_t end_ns,
                           uint64_t items) {
  if (end_ns < start_ns) end_ns = start_ns;
  Get(stage).Record(end_ns - start_ns, items);
  SpanRecord record;
  record.stage = stage;
  record.start_ns = start_ns;
  record.end_ns = end_ns;
  record.items = items;
  spans_.Push(record);
}

std::vector<StageSnapshot> Telemetry::SnapshotStages() const {
  std::vector<StageSnapshot> out;
  out.reserve(kNumStages);
  for (int i = 0; i < kNumStages; ++i) {
    out.push_back(stages_[i]->Snapshot());
  }
  return out;
}

}  // namespace dlb::telemetry
