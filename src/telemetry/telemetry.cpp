#include "telemetry/telemetry.h"

#include <chrono>

#include "common/log.h"
#include "telemetry/event_log.h"
#include "telemetry/trace.h"

namespace dlb::telemetry {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kFetch:
      return "fetch";
    case Stage::kDecode:
      return "decode";
    case Stage::kResize:
      return "resize";
    case Stage::kCollect:
      return "collect";
    case Stage::kDispatch:
      return "dispatch";
    case Stage::kConsume:
      return "consume";
  }
  return "unknown";
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

StageMetrics::StageMetrics(Stage stage, MetricRegistry* registry)
    : stage_(stage) {
  DLB_CHECK(registry != nullptr);
  const std::string prefix = std::string("stage.") + StageName(stage);
  ops_ = registry->GetCounter(prefix + ".ops");
  items_ = registry->GetCounter(prefix + ".items");
  latency_ = registry->GetHistogram(prefix + ".latency_ns");
}

void StageMetrics::Record(uint64_t duration_ns, uint64_t items) {
  ops_->Add();
  items_->Add(items);
  latency_->Record(duration_ns);
}

StageSnapshot StageMetrics::Snapshot() const {
  StageSnapshot snap;
  snap.stage = stage_;
  snap.name = StageName(stage_);
  snap.ops = ops_->Value();
  snap.items = items_->Value();
  // One frozen bucket copy for every percentile: separate Quantile() calls
  // racing with recorders could report p99 < p50 (each call walks a
  // different bucket state); the snapshot cannot.
  const HistogramSnapshot lat = latency_->TakeSnapshot();
  snap.busy_ns = lat.Sum();
  snap.mean_ns = lat.Mean();
  snap.p50_ns = lat.Quantile(0.50);
  snap.p95_ns = lat.Quantile(0.95);
  snap.p99_ns = lat.Quantile(0.99);
  snap.max_ns = lat.Max();
  return snap;
}

Telemetry::Telemetry(size_t span_capacity) : spans_(span_capacity) {
  for (int i = 0; i < kNumStages; ++i) {
    stages_[i] =
        std::make_unique<StageMetrics>(static_cast<Stage>(i), &registry_);
  }
}

Telemetry::~Telemetry() = default;

Tracer* Telemetry::EnableTracing(size_t span_capacity) {
  if (!tracer_) tracer_ = std::make_unique<Tracer>(span_capacity);
  return tracer_.get();
}

Tracer* Telemetry::EnableTracing() { return EnableTracing(kDefaultTraceSpans); }

EventLog* Telemetry::EnableEvents(size_t capacity, EventLevel min_level) {
  if (!events_) events_ = std::make_unique<EventLog>(capacity, min_level);
  return events_.get();
}

EventLog* Telemetry::EnableEvents() {
  return EnableEvents(kDefaultEventCapacity, EventLevel::kInfo);
}

uint64_t Telemetry::RecordSpan(Stage stage, uint64_t start_ns, uint64_t end_ns,
                               uint64_t items, const TraceContext& ctx,
                               Subsystem subsystem, uint32_t tid) {
  RecordSpan(stage, start_ns, end_ns, items);
  if (tracer_ == nullptr || !ctx.Enabled()) return 0;
  return tracer_->RecordSpan(ctx, stage, subsystem, tid, start_ns, end_ns,
                             items);
}

void Telemetry::RecordSpan(Stage stage, uint64_t start_ns, uint64_t end_ns,
                           uint64_t items) {
  if (end_ns < start_ns) end_ns = start_ns;
  Get(stage).Record(end_ns - start_ns, items);
  SpanRecord record;
  record.stage = stage;
  record.start_ns = start_ns;
  record.end_ns = end_ns;
  record.items = items;
  spans_.Push(record);
}

std::vector<StageSnapshot> Telemetry::SnapshotStages() const {
  std::vector<StageSnapshot> out;
  out.reserve(kNumStages);
  for (int i = 0; i < kNumStages; ++i) {
    out.push_back(stages_[i]->Snapshot());
  }
  return out;
}

}  // namespace dlb::telemetry
