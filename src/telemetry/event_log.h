// Structured event log: a lock-free ring of typed pipeline events.
//
// Where spans measure durations, events mark *moments that explain them*:
// a batch was admitted, the buffer pool ran dry, an engine queue hit its
// high watermark, the watchdog saw a stall. The ring is the same seqlock
// discipline as the span ring (writers never block); two render paths —
// human text lines and machine JSONL — serve logs and tooling from the one
// buffer. Events below the configured level are dropped at the Log() call.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/telemetry.h"

namespace dlb::telemetry {

enum class EventLevel : uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kOff = 3,  // min_level only: drop everything
};

const char* EventLevelName(EventLevel level);

/// Parse "off" | "warn" | "info" | "debug"; kInvalidArgument otherwise.
Result<EventLevel> ParseEventLevel(const std::string& name);

/// Event vocabulary. Each type documents its argument payload; args the
/// type does not use are zero.
enum class EventType : uint8_t {
  kBatchAdmitted = 0,   // batch minted; arg0 = producer tid        [debug]
  kBatchDispatched,     // handed to an engine; arg0 = engine       [debug]
  kBatchCompleted,      // consumed; arg0 = ok items, arg1 = failed [debug]
  kBatchDropped,        // abandoned unproduced; arg0 = reason code [info]
  kPoolExhausted,       // free-buffer wait; arg0 = full-queue depth [info]
  kQueueHighWatermark,  // queue full; arg0 = depth, arg1 = capacity [info]
  kStallDetected,       // watchdog fired; arg0 = quiet ms           [warn]
  kTraceExported,       // trace file written; arg0 = span count     [info]
  kDecodeError,         // one image failed; arg0 = slot, arg1 = code [info]
  kFaultInjected,       // injector fired; arg0 = FaultKind          [debug]
  kUnitQuarantined,     // dead FPGA way latched; arg0 = unit,
                        // arg1 = way                                [warn]
  kRetryExhausted,      // slot gave up retrying; arg0 = slot,
                        // arg1 = attempts                           [warn]
  kBatchTimeout,        // completion deadline hit; arg0 = pending   [warn]
  kStageStalled,        // watchdog named this stage; arg0 = Stage,
                        // arg1 = quiet ms                           [warn]
  kSloBreach,           // objective entered burning; arg0 = index,
                        // arg1 = observed value (truncated)         [warn]
  kBundleWritten,       // flight recorder dumped; arg0 = trigger    [info]
  kOverloadShed,        // front door changed shed level; arg0 = new
                        // level, arg1 = previous level               [warn]
};

const char* EventTypeName(EventType type);

/// The intrinsic severity of each event type (what Log() filters against).
EventLevel EventTypeLevel(EventType type);

struct Event {
  EventType type = EventType::kBatchAdmitted;
  uint64_t ts_ns = 0;     // NowNs() at Log() time
  uint64_t batch_id = 0;  // 0 when not batch-scoped
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  uint64_t seq = 0;  // assigned by the ring
};

/// Default event ring capacity.
inline constexpr size_t kDefaultEventCapacity = 1024;

class EventLog {
 public:
  explicit EventLog(size_t capacity = kDefaultEventCapacity,
                    EventLevel min_level = EventLevel::kInfo);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Record one event (dropped when its type's level is below min_level).
  void Log(EventType type, uint64_t batch_id = 0, uint64_t arg0 = 0,
           uint64_t arg1 = 0);

  bool Enabled(EventType type) const {
    return EventTypeLevel(type) >= min_level_;
  }
  EventLevel MinLevel() const { return min_level_; }

  /// Events still resident, oldest first.
  std::vector<Event> Snapshot() const { return ring_.Snapshot(); }

  /// The most recent `n` events, oldest first.
  std::vector<Event> Tail(size_t n) const;

  /// Events ever accepted (post-filter); >= Snapshot().size().
  uint64_t TotalLogged() const { return ring_.TotalRecorded(); }
  size_t Capacity() const { return ring_.Capacity(); }

  /// One human-readable line, no trailing newline:
  ///   "+12.345ms warn  stall_detected batch=0 arg0=2000 arg1=0"
  /// Timestamps are rendered relative to `epoch_ns` (0 = absolute ns).
  static std::string Render(const Event& event, uint64_t epoch_ns = 0);

  /// One JSON object, no trailing newline (JSONL row).
  static std::string RenderJson(const Event& event);

  /// All resident events as text lines / JSONL.
  std::string RenderText() const;
  std::string RenderJsonl() const;

  /// Write RenderJsonl() to `path`.
  Status WriteJsonl(const std::string& path) const;

 private:
  EventLevel min_level_;
  SeqlockRing<Event> ring_;
};

}  // namespace dlb::telemetry
