// Batch-granular distributed tracing on top of the telemetry hub.
//
// The per-stage histograms answer "what are the p99s"; the tracer answers
// "where did batch #17 spend its time". A TraceContext is minted when a
// batch is admitted (the FPGAReader acquires a buffer, a CPU worker pulls
// its samples) and rides along with the batch through every hand-off —
// FpgaCmd, BatchBuffer, DeviceBatch, PreprocessBatch — so each component
// can record spans that are causally linked into one tree per batch:
//
//   batch #17 (root, admit -> consume)
//     ├─ fetch  [hostbridge/reader-0]   (per slot)
//     │    └─ decode [fpga/resizer-1]   (cmd FIFO wait + Huffman + iDCT + colour)
//     │         └─ resize [fpga/resizer-1]
//     ├─ collect  [hostbridge/reader-0]
//     ├─ dispatch [hostbridge/dispatcher]
//     └─ consume  [core/engine-0]
//
// Spans land in a lock-free SeqlockRing (same discipline as the span ring:
// writers never block); trees are assembled at read time by grouping on
// batch id and resolving parent ids. A null Tracer* disables everything, so
// tracing-off costs one pointer check per call site.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace dlb::telemetry {

/// Trace-export process taxonomy: one pid per subsystem in the Perfetto
/// view, matching the repo's module layering.
enum class Subsystem : uint8_t {
  kCore = 0,       // Pipeline / engine side
  kFpga,           // emulated decoder device
  kHostbridge,     // FPGAReader, pool, dispatcher
  kBackend,        // CPU/LMDB/synthetic/cached worker loops
};

inline constexpr int kNumSubsystems = 4;

/// Stable lowercase subsystem name ("core", "fpga", ...).
const char* SubsystemName(Subsystem subsystem);

/// Default tracer ring capacity (spans). ~3 spans per image plus a handful
/// per batch; 64k spans cover ≥ 500 32-image batches before wrapping.
inline constexpr size_t kDefaultTraceSpans = size_t{1} << 16;

/// The context propagated with a batch: which trace and batch the work
/// belongs to and which span caused it. Copyable POD; a default-constructed
/// (trace_id == 0) context disables recording at every site it reaches.
struct TraceContext {
  uint64_t trace_id = 0;     // 0 = tracing disabled
  uint64_t batch_id = 0;     // batch ordinal within the trace (1-based)
  uint64_t parent_span = 0;  // span id of the causally-enclosing span

  bool Enabled() const { return trace_id != 0; }

  /// Context for work caused by span `span_id` (same trace/batch).
  TraceContext Child(uint64_t span_id) const {
    TraceContext ctx = *this;
    ctx.parent_span = span_id;
    return ctx;
  }
};

/// One traced span. `parent_span == 0` marks a batch root.
struct TraceSpan {
  uint64_t trace_id = 0;
  uint64_t batch_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;
  Stage stage = Stage::kFetch;
  Subsystem subsystem = Subsystem::kCore;
  uint32_t tid = 0;  // unit/worker ordinal inside the subsystem
  bool root = false;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint64_t items = 0;
  uint64_t seq = 0;  // assigned by the ring

  uint64_t DurationNs() const { return end_ns - start_ns; }
};

/// Mints batch trace contexts and collects their spans. All recording paths
/// are lock-free (atomic id counters + seqlock ring); only the
/// start/end-of-batch bookkeeping takes a mutex, twice per batch.
class Tracer {
 public:
  explicit Tracer(size_t span_capacity = kDefaultTraceSpans);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Admit a batch: mints a batch id and its root span id. The batch stays
  /// in flight (visible to the watchdog) until EndBatch/AbandonBatch.
  TraceContext StartBatch();

  /// Record one completed span under `ctx.parent_span`; returns the new
  /// span id (0 if `ctx` is not live) for chaining causally-dependent
  /// follow-up spans.
  uint64_t RecordSpan(const TraceContext& ctx, Stage stage,
                      Subsystem subsystem, uint32_t tid, uint64_t start_ns,
                      uint64_t end_ns, uint64_t items = 1);

  /// Complete the batch: records the root span (admission -> now) and
  /// retires it from the in-flight set.
  void EndBatch(const TraceContext& ctx, uint64_t items);

  /// The batch never produced output (source drained, shutdown): retire it
  /// without a root span.
  void AbandonBatch(const TraceContext& ctx);

  struct InFlight {
    uint64_t batch_id = 0;
    uint64_t root_span = 0;
    uint64_t start_ns = 0;  // admission time
  };
  /// Batches admitted but not yet ended, oldest first.
  std::vector<InFlight> InFlightBatches() const;

  /// All spans still resident in the ring (oldest first).
  std::vector<TraceSpan> Spans() const { return ring_.Snapshot(); }

  /// Resident spans that ended at or after `since_ns` — the flight
  /// recorder's breach-window view of the retained ring.
  std::vector<TraceSpan> SpansSince(uint64_t since_ns) const {
    std::vector<TraceSpan> all = ring_.Snapshot();
    std::erase_if(all,
                  [since_ns](const TraceSpan& s) { return s.end_ns < since_ns; });
    return all;
  }

  uint64_t TraceId() const { return trace_id_; }
  uint64_t BatchesStarted() const {
    return next_batch_.load(std::memory_order_relaxed) - 1;
  }
  uint64_t BatchesCompleted() const {
    return completed_.load(std::memory_order_relaxed);
  }
  uint64_t BatchesAbandoned() const {
    return abandoned_.load(std::memory_order_relaxed);
  }
  uint64_t SpansRecorded() const { return ring_.TotalRecorded(); }
  size_t SpanCapacity() const { return ring_.Capacity(); }

 private:
  const uint64_t trace_id_;
  SeqlockRing<TraceSpan> ring_;
  std::atomic<uint64_t> next_span_{1};
  std::atomic<uint64_t> next_batch_{1};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> abandoned_{0};
  mutable std::mutex inflight_mu_;
  std::map<uint64_t, InFlight> inflight_;
};

/// Render one batch's span tree as indented text (the watchdog's partial
/// span trees and a debugging aid). Spans are `spans` filtered to
/// `batch_id`; orphans (parent not resident) are attached to the root.
std::string RenderSpanTree(const std::vector<TraceSpan>& spans,
                           uint64_t batch_id);

}  // namespace dlb::telemetry
