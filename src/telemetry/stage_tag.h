// Thread-local stage tags: the bridge between spans and the sampling
// profiler (dlb::prof, telemetry/profiler.h).
//
// Every span (RAII ScopedSpan or a manual telemetry::StageTimer) pushes the
// stage it measures onto a small per-thread tag stack; a Profiler's sampler
// thread reads the stacks of all live tagged threads at each tick and
// attributes the sample to the stack it sees. Pushing is a handful of
// relaxed atomic stores — no locks, no allocation after a thread's first
// tag — so tagging is always on whether or not a profiler is collecting.
//
// This header is deliberately tiny (no telemetry.h dependency): it is what
// the hot recording path includes.
#pragma once

#include <cstdint>

namespace dlb::prof {

/// Maximum nested tag depth the sampler can see. Deeper pushes still
/// balance with their pops but are invisible to sampling.
inline constexpr int kMaxTagDepth = 8;

/// Push/pop the calling thread's current stage tag (a telemetry::Stage
/// value). Registers the thread with the profiler's global thread registry
/// on first use.
void PushStageTag(int stage);
void PopStageTag();

/// The calling thread's cumulative on-CPU time (CLOCK_THREAD_CPUTIME_ID),
/// in nanoseconds. Subtracting two reads brackets a section's compute time;
/// wall minus cpu is its queue/IO wait.
uint64_t ThreadCpuNs();

/// RAII stage tag for manually-recorded span sections.
class ScopedStageTag {
 public:
  explicit ScopedStageTag(int stage) { PushStageTag(stage); }
  ~ScopedStageTag() { PopStageTag(); }

  ScopedStageTag(const ScopedStageTag&) = delete;
  ScopedStageTag& operator=(const ScopedStageTag&) = delete;
};

}  // namespace dlb::prof
