// Declared service-level objectives, evaluated continuously in-process.
//
// The paper's headline claims are tail-latency claims; a pipeline that can
// only *expose* its p99 leaves "are we meeting it?" to whoever happens to
// be watching. The SLO engine closes that loop: the operator declares
// objectives as a compact spec string —
//
//   slo=infer_p99<8ms/30s,decode_errors<0.1%
//
// — and a background thread evaluates them over the MetricsSampler's
// time-series rings with multi-window burn-rate state:
//
//   ok       no recent violating samples
//   warning  some violation in the fast or slow window
//   burning  >= half of the fast window violates, confirmed by the slow
//            window — the page-worthy state
//
// Each objective exports slo.<name>.{state,value,burn_fast,burn_slow}
// gauges plus slo.breaches counters; /slo serves the full JSON status; a
// breach (edge into burning) fires a callback the pipeline wires to the
// flight recorder, so the diagnostic bundle is written the moment the
// objective starts burning — no human in the loop.
//
// Grammar (mirrors ParseFaultSpec: comma-separated entries, DLB_SLO env
// overrides PipelineConfig::slo):
//
//   <metric><op><threshold>[/<window>]
//
//   metric     infer_p50|p95|p99           consume-stage latency quantile
//              <stage>_p50|p95|p99         any stage's latency quantile
//                                          (fetch, decode, resize, collect,
//                                          dispatch, consume)
//              decode_errors               windowed error ratio:
//                                          delta(decode.errors) /
//                                          delta(stage.decode.items)
//              retry_exhausted             delta(retry.exhausted) /
//                                          delta(stage.decode.items)
//              anything else               a raw sampler series watched
//                                          verbatim (e.g.
//                                          fpga.ways_quarantined<1)
//   op         '<' (objective: stay below) or '>' (stay above)
//   threshold  number with optional unit: ns|us|ms|s (durations, stored as
//              ns) or % (ratio, stored as a fraction)
//   window     number with optional unit ms|s|m (default 30s). The slow
//              confirmation window is 4x the fast window.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "telemetry/metrics_sampler.h"
#include "telemetry/telemetry.h"

namespace dlb::slo {

enum class SloState : uint8_t {
  kOk = 0,
  kWarning = 1,
  kBurning = 2,
};

const char* SloStateName(SloState state);

/// How an objective's value is derived from the sampler's series.
enum class ObjectiveKind : uint8_t {
  kQuantile,  // a stage latency quantile series (ns)
  kRatio,     // delta(numerator) / delta(denominator) over the window
  kSeries,    // a raw sampler series, watched verbatim
};

struct SloObjective {
  std::string name;  // spec spelling; also the slo.<name>.* gauge key
  ObjectiveKind kind = ObjectiveKind::kSeries;
  std::string series;       // kQuantile/kSeries: the sampler series watched
  std::string numerator;    // kRatio: counter series
  std::string denominator;  // kRatio: counter series
  char op = '<';            // '<' stay below, '>' stay above
  double threshold = 0.0;   // ns for durations, fraction for ratios
  uint64_t window_ms = 30'000;

  /// True when `value` violates the objective.
  bool Violates(double value) const {
    return op == '<' ? value >= threshold : value <= threshold;
  }
};

struct SloSpec {
  std::vector<SloObjective> objectives;
  std::string text;  // the original spec string

  bool Any() const { return !objectives.empty(); }
};

/// Parse the spec grammar above. Empty string => empty spec (engine off).
/// kInvalidArgument on unknown metrics, bad ops, units or windows.
Result<SloSpec> ParseSloSpec(const std::string& spec);

/// Spec from the DLB_SLO environment variable (empty spec when unset).
Result<SloSpec> SloSpecFromEnv();

/// One objective's state after an evaluation pass.
struct SloStatus {
  std::string name;
  std::string series;  // what was watched ("a/b" for ratios)
  SloState state = SloState::kOk;
  char op = '<';
  double value = 0.0;      // latest observed value (fast window)
  double threshold = 0.0;
  double burn_fast = 0.0;  // violating fraction of the fast window
  double burn_slow = 0.0;  // violating fraction of the slow (4x) window
  uint64_t window_ms = 0;
  uint64_t samples = 0;    // points the fast window contained
};

/// Passed to the breach callback on each edge into kBurning.
struct SloBreach {
  std::string objective;
  double value = 0.0;
  double threshold = 0.0;
  uint64_t window_ms = 0;
  uint64_t ts_ns = 0;

  /// "infer_p99: value 1.2e+07 >= threshold 8e+06 over 30000ms"
  std::string Describe() const;
};

struct SloEngineOptions {
  /// Evaluation period of the background thread. The pipeline aligns this
  /// with the sampler cadence — evaluating faster than the sampler samples
  /// only re-reads the same points.
  uint64_t eval_ms = 500;
};

/// Evaluates a SloSpec over a MetricsSampler's series. All evaluation state
/// lives behind one mutex; the hot path is never touched — the engine runs
/// a few times per second over snapshot APIs.
class SloEngine {
 public:
  /// `telemetry` and `sampler` must outlive the engine; the sampler must be
  /// sampling (the engine only reads its rings).
  SloEngine(telemetry::Telemetry* telemetry,
            telemetry::MetricsSampler* sampler, SloSpec spec,
            SloEngineOptions options = {});
  ~SloEngine();

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Launch / stop the evaluation thread. Idempotent.
  void Start();
  void Stop();

  /// Callback invoked (from the evaluation thread) on each edge into
  /// kBurning, once per transition — not once per evaluation while burning.
  /// Set before Start().
  void OnBreach(std::function<void(const SloBreach&)> callback);

  /// One synchronous evaluation pass at the supplied timestamp — the
  /// deterministic seam tests use (pair with MetricsSampler::SampleAt).
  std::vector<SloStatus> EvaluateAt(uint64_t now_ns);
  std::vector<SloStatus> EvaluateOnce() {
    return EvaluateAt(telemetry::NowNs());
  }

  /// The most recent evaluation's per-objective statuses.
  std::vector<SloStatus> Status() const;

  /// True while any objective is burning — the /healthz degraded signal.
  bool AnyBurning() const {
    return burning_.load(std::memory_order_acquire) > 0;
  }

  uint64_t Evaluations() const {
    return evals_.load(std::memory_order_relaxed);
  }
  uint64_t Breaches() const {
    return breaches_.load(std::memory_order_relaxed);
  }

  /// The /slo endpoint body: {"enabled":true,"spec":…,"evals":…,
  /// "breaches":…,"objectives":[{…}]}.
  std::string Json() const;

  const SloSpec& Spec() const { return spec_; }
  const SloEngineOptions& Options() const { return options_; }

 private:
  void Loop(std::stop_token token);

  telemetry::Telemetry* telemetry_;
  telemetry::MetricsSampler* sampler_;
  SloSpec spec_;
  SloEngineOptions options_;
  std::function<void(const SloBreach&)> on_breach_;

  std::jthread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> evals_{0};
  std::atomic<uint64_t> breaches_{0};
  std::atomic<int> burning_{0};

  mutable std::mutex mu_;
  std::vector<SloStatus> last_;        // most recent evaluation
  std::vector<SloState> prev_state_;   // for edge detection
};

}  // namespace dlb::slo
