// Stall watchdog: turns "the pipeline hangs" into a diagnosis.
//
// A sampling thread reads the per-stage ops counters every poll interval
// and tracks when each stage last made progress. When *no* stage advances
// for the configured deadline while batches are still in flight (per the
// tracer), it fires: a StallReport names the stalled stages, the last N
// structured events, and the in-flight batches' partial span trees — the
// exact context needed to see which hand-off wedged. Healthy-idle states
// (nothing in flight, e.g. stream drained) never fire.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/event_log.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace dlb::telemetry {

struct WatchdogOptions {
  /// Fire when no stage makes progress for this long while work is in
  /// flight.
  uint64_t deadline_ms = 2000;
  /// Sampling period of the watchdog thread.
  uint64_t poll_ms = 50;
  /// Events included in a report (most recent first in the rendering).
  size_t report_events = 16;
};

struct StageProgress {
  Stage stage = Stage::kFetch;
  uint64_t ops = 0;       // ops counter at probe time
  uint64_t quiet_ms = 0;  // ms since the counter last advanced
  bool stalled = false;   // quiet_ms >= deadline
};

struct StallReport {
  uint64_t detected_ns = 0;
  uint64_t quiet_ms = 0;  // ms since *any* stage advanced
  std::vector<StageProgress> stages;
  std::vector<Tracer::InFlight> inflight;
  std::vector<Event> recent_events;
  /// Full human-readable rendering (stalled stages, events, span trees).
  std::string text;
};

class Watchdog {
 public:
  /// `telemetry` must outlive the watchdog and should have tracing enabled
  /// — without a tracer the watchdog cannot distinguish "stalled" from
  /// "finished" and stays silent.
  explicit Watchdog(Telemetry* telemetry, WatchdogOptions options = {});
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Launch the sampling thread. Idempotent.
  void Start();
  /// Stop and join. Idempotent; also runs on destruction.
  void Stop();

  /// Callback invoked (from the watchdog thread) on each stall detection.
  /// Default: DLB_WARN-log the report text. Set before Start().
  void OnStall(std::function<void(const StallReport&)> callback);

  /// One synchronous sampling step: refresh per-stage progress and return a
  /// report iff the stall condition holds. The thread calls this every
  /// poll_ms; tests call it directly for deterministic timing.
  std::optional<StallReport> Probe();

  uint64_t StallsDetected() const {
    return stalls_.load(std::memory_order_relaxed);
  }

  /// True from the probe that detected a stall until a later probe observes
  /// stage progress again — the health-endpoint signal (/healthz 503).
  bool CurrentlyStalled() const {
    return stalled_.load(std::memory_order_acquire);
  }
  const WatchdogOptions& Options() const { return options_; }

 private:
  void Loop(std::stop_token token);
  StallReport BuildReport(uint64_t now_ns, uint64_t quiet_ms,
                          std::vector<Tracer::InFlight> inflight);

  Telemetry* telemetry_;
  WatchdogOptions options_;
  std::function<void(const StallReport&)> on_stall_;
  std::jthread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> stalls_{0};
  std::atomic<bool> stalled_{false};

  // Probe state (only the probing thread mutates; a mutex keeps Probe()
  // safe if tests call it while the thread runs).
  std::mutex probe_mu_;
  std::array<uint64_t, kNumStages> last_ops_{};
  std::array<uint64_t, kNumStages> last_change_ns_{};
  uint64_t armed_since_ns_ = 0;  // progress baseline; reset after a fire
};

}  // namespace dlb::telemetry
