#include "telemetry/metrics_sampler.h"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace dlb::telemetry {

namespace {

// The suffix rule that turns a busy-time counter into a utilization series:
// "<unit>.busy_ns" + gauge "<unit>.ways" (worker count, default 1) gives
// busy fraction = delta_busy_ns / (dt_ns * ways).
constexpr const char* kBusySuffix = ".busy_ns";

std::string JsonNumber(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

const char* SeriesKindName(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounter: return "counter";
    case SeriesKind::kGauge: return "gauge";
    case SeriesKind::kRate: return "rate";
    case SeriesKind::kWatermark: return "watermark";
    case SeriesKind::kQuantile: return "quantile";
    case SeriesKind::kUtilization: return "utilization";
  }
  return "unknown";
}

MetricsSampler::MetricsSampler(Telemetry* telemetry, SamplerOptions options)
    : telemetry_(telemetry), options_(options) {
  if (options_.sample_ms == 0) options_.sample_ms = 1;
  if (options_.history < 2) options_.history = 2;
}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::jthread([this](std::stop_token token) {
    const auto period = std::chrono::milliseconds(options_.sample_ms);
    while (!token.stop_requested()) {
      SampleOnce();
      std::this_thread::sleep_for(period);
    }
  });
}

void MetricsSampler::Stop() {
  if (!running_.exchange(false)) return;
  thread_.request_stop();
  if (thread_.joinable()) thread_.join();
}

uint64_t MetricsSampler::SamplesTaken() const {
  std::scoped_lock lock(mu_);
  return samples_;
}

void MetricsSampler::Put(const std::string& name, SeriesKind kind,
                         uint64_t ts_ns, double value) {
  Ring& ring = series_[name];
  if (ring.points.empty()) {
    ring.kind = kind;
    ring.points.resize(options_.history);
  }
  ring.points[ring.next] = {ts_ns, value};
  ring.next = (ring.next + 1) % ring.points.size();
  ring.size = std::min(ring.size + 1, ring.points.size());
}

void MetricsSampler::SampleAt(uint64_t ts_ns) {
  // Collect under the registry lock (visitor bodies must stay short), then
  // derive and store under the sampler lock.
  struct Collector : MetricVisitor {
    std::vector<std::pair<std::string, double>> counters;
    std::vector<std::pair<std::string, std::pair<double, double>>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
    void OnCounter(const std::string& name, const Counter& c) override {
      counters.emplace_back(name, static_cast<double>(c.Value()));
    }
    void OnGauge(const std::string& name, Gauge& g) override {
      // Reset-on-read: the returned peak belongs to the window just closed.
      const double peak = g.MaxAndReset();
      gauges.emplace_back(name,
                          std::make_pair(g.Value(), std::max(peak, g.Value())));
    }
    void OnHistogram(const std::string& name, const Histogram& h) override {
      histograms.emplace_back(name, h.TakeSnapshot());
    }
  } collected;
  telemetry_->Registry().Visit(collected);

  std::scoped_lock lock(mu_);
  ++samples_;

  auto rate_of = [&](const std::string& name, double value) -> double {
    auto it = prev_counters_.find(name);
    double rate = 0.0;
    if (it != prev_counters_.end() && ts_ns > it->second.ts_ns) {
      rate = (value - it->second.value) * 1e9 /
             static_cast<double>(ts_ns - it->second.ts_ns);
    }
    prev_counters_[name] = {ts_ns, value};
    return rate;
  };
  auto gauge_value = [&](const std::string& name) -> double {
    for (const auto& [gname, vals] : collected.gauges) {
      if (gname == name) return vals.first;
    }
    return 0.0;
  };

  for (const auto& [name, value] : collected.counters) {
    const double rate = rate_of(name, value);
    Put(name, SeriesKind::kCounter, ts_ns, value);
    Put(name + ".rate_per_s", SeriesKind::kRate, ts_ns, rate);
    if (name.size() > std::char_traits<char>::length(kBusySuffix) &&
        name.ends_with(kBusySuffix)) {
      const std::string unit =
          name.substr(0, name.size() - std::char_traits<char>::length(kBusySuffix));
      double ways = gauge_value(unit + ".ways");
      if (ways < 1.0) ways = 1.0;
      // rate is busy-ns per second; busy fraction normalises by way count.
      Put(unit + ".utilization", SeriesKind::kUtilization, ts_ns,
          rate / (1e9 * ways));
    }
  }
  for (const auto& [name, vals] : collected.gauges) {
    Put(name, SeriesKind::kGauge, ts_ns, vals.first);
    Put(name + ".watermark", SeriesKind::kWatermark, ts_ns, vals.second);
  }
  for (const auto& [name, snap] : collected.histograms) {
    const double count = static_cast<double>(snap.Count());
    Put(name + ".count.rate_per_s", SeriesKind::kRate, ts_ns,
        rate_of(name + ".count", count));
    Put(name + ".p50", SeriesKind::kQuantile, ts_ns,
        static_cast<double>(snap.Quantile(0.5)));
    Put(name + ".p95", SeriesKind::kQuantile, ts_ns,
        static_cast<double>(snap.Quantile(0.95)));
    Put(name + ".p99", SeriesKind::kQuantile, ts_ns,
        static_cast<double>(snap.Quantile(0.99)));
  }
}

std::vector<SeriesSnapshot> MetricsSampler::Snapshot(bool with_points) const {
  std::scoped_lock lock(mu_);
  std::vector<SeriesSnapshot> out;
  out.reserve(series_.size());
  for (const auto& [name, ring] : series_) {
    SeriesSnapshot s;
    s.name = name;
    s.kind = ring.kind;
    if (ring.size > 0) {
      const size_t last =
          (ring.next + ring.points.size() - 1) % ring.points.size();
      s.last = ring.points[last].value;
      const size_t begin =
          (ring.next + ring.points.size() - ring.size) % ring.points.size();
      for (size_t i = 0; i < ring.size; ++i) {
        const SeriesPoint& p = ring.points[(begin + i) % ring.points.size()];
        s.high = std::max(s.high, p.value);
        if (with_points) s.points.push_back(p);
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricsSampler::Json(bool with_points) const {
  const std::vector<SeriesSnapshot> snap = Snapshot(with_points);
  std::ostringstream os;
  os << "{\"sample_ms\":" << options_.sample_ms
     << ",\"samples\":" << SamplesTaken() << ",\"series\":{";
  bool first = true;
  for (const SeriesSnapshot& s : snap) {
    if (!first) os << ",";
    first = false;
    os << "\"" << s.name << "\":{\"kind\":\"" << SeriesKindName(s.kind)
       << "\",\"last\":" << JsonNumber(s.last)
       << ",\"high\":" << JsonNumber(s.high);
    if (with_points) {
      os << ",\"points\":[";
      for (size_t i = 0; i < s.points.size(); ++i) {
        if (i) os << ",";
        os << "[" << s.points[i].ts_ns << "," << JsonNumber(s.points[i].value)
           << "]";
      }
      os << "]";
    }
    os << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace dlb::telemetry
