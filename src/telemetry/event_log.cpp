#include "telemetry/event_log.h"

#include <cstdio>
#include <sstream>

namespace dlb::telemetry {

const char* EventLevelName(EventLevel level) {
  switch (level) {
    case EventLevel::kDebug:
      return "debug";
    case EventLevel::kInfo:
      return "info";
    case EventLevel::kWarn:
      return "warn";
    case EventLevel::kOff:
      return "off";
  }
  return "unknown";
}

Result<EventLevel> ParseEventLevel(const std::string& name) {
  if (name == "debug") return EventLevel::kDebug;
  if (name == "info") return EventLevel::kInfo;
  if (name == "warn") return EventLevel::kWarn;
  if (name == "off") return EventLevel::kOff;
  return InvalidArgument("unknown event level \"" + name +
                         "\" (want off|warn|info|debug)");
}

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kBatchAdmitted:
      return "batch_admitted";
    case EventType::kBatchDispatched:
      return "batch_dispatched";
    case EventType::kBatchCompleted:
      return "batch_completed";
    case EventType::kBatchDropped:
      return "batch_dropped";
    case EventType::kPoolExhausted:
      return "pool_exhausted";
    case EventType::kQueueHighWatermark:
      return "queue_high_watermark";
    case EventType::kStallDetected:
      return "stall_detected";
    case EventType::kTraceExported:
      return "trace_exported";
    case EventType::kDecodeError:
      return "decode_error";
    case EventType::kFaultInjected:
      return "fault_injected";
    case EventType::kUnitQuarantined:
      return "unit_quarantined";
    case EventType::kRetryExhausted:
      return "retry_exhausted";
    case EventType::kBatchTimeout:
      return "batch_timeout";
    case EventType::kStageStalled:
      return "stage_stalled";
    case EventType::kSloBreach:
      return "slo_breach";
    case EventType::kBundleWritten:
      return "bundle_written";
    case EventType::kOverloadShed:
      return "overload_shed";
  }
  return "unknown";
}

EventLevel EventTypeLevel(EventType type) {
  switch (type) {
    case EventType::kBatchAdmitted:
    case EventType::kBatchDispatched:
    case EventType::kBatchCompleted:
    case EventType::kFaultInjected:
      return EventLevel::kDebug;
    case EventType::kBatchDropped:
    case EventType::kPoolExhausted:
    case EventType::kQueueHighWatermark:
    case EventType::kTraceExported:
    case EventType::kDecodeError:
    case EventType::kBundleWritten:
      return EventLevel::kInfo;
    case EventType::kStallDetected:
    case EventType::kUnitQuarantined:
    case EventType::kRetryExhausted:
    case EventType::kBatchTimeout:
    case EventType::kStageStalled:
    case EventType::kSloBreach:
    case EventType::kOverloadShed:
      return EventLevel::kWarn;
  }
  return EventLevel::kInfo;
}

EventLog::EventLog(size_t capacity, EventLevel min_level)
    : min_level_(min_level), ring_(capacity) {}

void EventLog::Log(EventType type, uint64_t batch_id, uint64_t arg0,
                   uint64_t arg1) {
  if (!Enabled(type)) return;
  Event event;
  event.type = type;
  event.ts_ns = NowNs();
  event.batch_id = batch_id;
  event.arg0 = arg0;
  event.arg1 = arg1;
  ring_.Push(event);
}

std::vector<Event> EventLog::Tail(size_t n) const {
  std::vector<Event> all = ring_.Snapshot();
  if (all.size() > n) all.erase(all.begin(), all.end() - n);
  return all;
}

std::string EventLog::Render(const Event& event, uint64_t epoch_ns) {
  const uint64_t rel = event.ts_ns >= epoch_ns ? event.ts_ns - epoch_ns : 0;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "+%.3fms %-5s %-20s batch=%llu arg0=%llu arg1=%llu",
                rel / 1e6, EventLevelName(EventTypeLevel(event.type)),
                EventTypeName(event.type),
                static_cast<unsigned long long>(event.batch_id),
                static_cast<unsigned long long>(event.arg0),
                static_cast<unsigned long long>(event.arg1));
  return buf;
}

std::string EventLog::RenderJson(const Event& event) {
  std::ostringstream os;
  os << "{\"seq\":" << event.seq << ",\"ts_ns\":" << event.ts_ns
     << ",\"type\":\"" << EventTypeName(event.type) << "\",\"level\":\""
     << EventLevelName(EventTypeLevel(event.type))
     << "\",\"batch\":" << event.batch_id << ",\"arg0\":" << event.arg0
     << ",\"arg1\":" << event.arg1 << "}";
  return os.str();
}

std::string EventLog::RenderText() const {
  std::vector<Event> events = ring_.Snapshot();
  const uint64_t epoch = events.empty() ? 0 : events.front().ts_ns;
  std::ostringstream os;
  for (const Event& e : events) os << Render(e, epoch) << "\n";
  return os.str();
}

std::string EventLog::RenderJsonl() const {
  std::ostringstream os;
  for (const Event& e : ring_.Snapshot()) os << RenderJson(e) << "\n";
  return os.str();
}

Status EventLog::WriteJsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Internal("cannot open event log sink: " + path);
  }
  const std::string body = RenderJsonl();
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return Internal("short write to event log sink: " + path);
  }
  return Status::Ok();
}

}  // namespace dlb::telemetry
