// Prometheus text exposition for the metric registry + sampler.
//
// Naming scheme (documented in DESIGN.md "Monitoring"): every metric gets
// the `dlb_` prefix and dots become underscores — registry counter
// "stage.decode.items" exports as `dlb_stage_decode_items_total`, gauges
// keep their name plus a `_peak` twin (Gauge::Max), histograms export as
// Prometheus summaries with p50/p95/p99 quantile labels, and
// sampler-derived series (rates, window watermarks, unit utilization)
// export as gauges under their series name ("…_rate_per_s",
// "…_watermark", "…_utilization").
#pragma once

#include <string>

#include "common/stats.h"

namespace dlb::telemetry {

class MetricsSampler;

/// "stage.decode.items" -> "dlb_stage_decode_items": prefix + every char
/// outside [a-zA-Z0-9_] replaced by '_'.
std::string PrometheusName(const std::string& name);

/// Render the whole registry (and, when non-null, the sampler's derived
/// rate/watermark/utilization series) in Prometheus text exposition format
/// (text/plain; version=0.0.4). Deterministic for a frozen registry.
std::string RenderPrometheus(const MetricRegistry& registry,
                             const MetricsSampler* sampler);

}  // namespace dlb::telemetry
