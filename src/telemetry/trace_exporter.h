// Chrome/Perfetto trace_event exporter for batch traces.
//
// Serialises everything resident in a Tracer's span ring into the Trace
// Event Format that chrome://tracing and ui.perfetto.dev load directly:
// one *process* per subsystem (core / fpga / hostbridge / backend), one
// *thread* per unit or worker inside it, stage spans as complete ("X")
// events, and each batch's root as an async "b"/"e" pair (batches overlap
// in flight, which async tracks render correctly). Causal links (span id,
// parent id, batch id) ride in each event's args, so the span tree survives
// the flattening into timelines.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/trace.h"

namespace dlb::telemetry {

class TraceExporter {
 public:
  /// Render all spans resident in `tracer` as a Chrome trace_event JSON
  /// object ({"displayTimeUnit":...,"traceEvents":[...]}). Timestamps are
  /// rebased so the earliest span starts at ~0 us.
  static std::string ToChromeJson(const Tracer& tracer);

  /// Same rendering over an explicit span set — the flight recorder passes
  /// Tracer::SpansSince() to export just the breach window.
  static std::string ToChromeJson(const std::vector<TraceSpan>& spans);

  /// Write ToChromeJson() to `path` (load it in ui.perfetto.dev).
  static Status WriteChromeJson(const Tracer& tracer,
                                const std::string& path);
};

}  // namespace dlb::telemetry
