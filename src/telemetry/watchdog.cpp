#include "telemetry/watchdog.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/log.h"

namespace dlb::telemetry {

Watchdog::Watchdog(Telemetry* telemetry, WatchdogOptions options)
    : telemetry_(telemetry), options_(options) {
  DLB_CHECK(telemetry_ != nullptr);
  if (options_.poll_ms == 0) options_.poll_ms = 1;
  if (options_.deadline_ms == 0) options_.deadline_ms = 1;
  on_stall_ = [](const StallReport& report) { DLB_WARN << report.text; };
  const uint64_t now = NowNs();
  last_change_ns_.fill(now);
  armed_since_ns_ = now;
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::jthread([this](std::stop_token token) { Loop(token); });
}

void Watchdog::Stop() {
  if (!running_.exchange(false)) return;
  thread_.request_stop();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::OnStall(std::function<void(const StallReport&)> callback) {
  on_stall_ = std::move(callback);
}

void Watchdog::Loop(std::stop_token token) {
  const auto poll = std::chrono::milliseconds(options_.poll_ms);
  while (!token.stop_requested()) {
    std::this_thread::sleep_for(poll);
    if (token.stop_requested()) break;
    auto report = Probe();
    if (report.has_value() && on_stall_) on_stall_(*report);
  }
}

std::optional<StallReport> Watchdog::Probe() {
  std::scoped_lock lock(probe_mu_);
  const uint64_t now = NowNs();
  bool any_progress = false;
  for (int i = 0; i < kNumStages; ++i) {
    const uint64_t ops =
        telemetry_->Get(static_cast<Stage>(i)).Snapshot().ops;
    if (ops != last_ops_[i]) {
      last_ops_[i] = ops;
      last_change_ns_[i] = now;
      any_progress = true;
    }
  }
  if (any_progress) {
    armed_since_ns_ = now;
    stalled_.store(false, std::memory_order_release);
  }

  const uint64_t quiet_ms = (now - armed_since_ns_) / 1'000'000;
  if (quiet_ms < options_.deadline_ms) return std::nullopt;

  // Quiet long enough — but only a stall if work is actually pending. The
  // tracer's in-flight set is the ground truth; with no tracer attached we
  // cannot tell a wedge from a drained stream, so stay silent.
  Tracer* tracer = telemetry_->tracer();
  if (tracer == nullptr) return std::nullopt;
  std::vector<Tracer::InFlight> inflight = tracer->InFlightBatches();
  if (inflight.empty()) {
    // Healthy-idle: the stream drained. A previously-latched stall state is
    // over — nothing is wedged when nothing is pending.
    stalled_.store(false, std::memory_order_release);
    return std::nullopt;
  }

  StallReport report = BuildReport(now, quiet_ms, std::move(inflight));
  stalls_.fetch_add(1, std::memory_order_relaxed);
  stalled_.store(true, std::memory_order_release);
  if (EventLog* events = telemetry_->events()) {
    events->Log(EventType::kStallDetected, 0, quiet_ms,
                report.inflight.size());
    // One machine-readable record per stalled stage (arg0 = Stage ordinal,
    // arg1 = that stage's quiet ms), so flight-recorder bundles carry the
    // diagnosis without parsing the report text.
    for (const StageProgress& p : report.stages) {
      if (p.stalled) {
        events->Log(EventType::kStageStalled, 0,
                    static_cast<uint64_t>(p.stage), p.quiet_ms);
      }
    }
  }
  // Re-arm: require a full fresh deadline before firing again, so a wedged
  // pipeline reports once per deadline instead of once per poll.
  armed_since_ns_ = now;
  return report;
}

StallReport Watchdog::BuildReport(uint64_t now_ns, uint64_t quiet_ms,
                                  std::vector<Tracer::InFlight> inflight) {
  StallReport report;
  report.detected_ns = now_ns;
  report.quiet_ms = quiet_ms;
  report.inflight = std::move(inflight);
  for (int i = 0; i < kNumStages; ++i) {
    StageProgress p;
    p.stage = static_cast<Stage>(i);
    p.ops = last_ops_[i];
    p.quiet_ms = (now_ns - last_change_ns_[i]) / 1'000'000;
    p.stalled = p.quiet_ms >= options_.deadline_ms;
    report.stages.push_back(p);
  }
  if (EventLog* events = telemetry_->events()) {
    report.recent_events = events->Tail(options_.report_events);
  }

  std::ostringstream os;
  os << "pipeline stalled: no stage progress for " << quiet_ms << " ms, "
     << report.inflight.size() << " batch(es) in flight\n";
  os << "  stage progress:\n";
  for (const StageProgress& p : report.stages) {
    os << "    " << StageName(p.stage) << ": ops=" << p.ops << " quiet="
       << p.quiet_ms << "ms" << (p.stalled ? " [stalled]" : "") << "\n";
  }
  // Name quarantined decode units: a dead way explains decode-stage silence
  // better than any span tree.
  {
    MetricRegistry& reg = telemetry_->Registry();
    bool header = false;
    for (const char* unit : {"huffman", "idct", "resizer"}) {
      const double n =
          reg.GetGauge(std::string("fpga.") + unit + ".quarantined")->Value();
      if (n <= 0.0) continue;
      if (!header) {
        os << "  quarantined FPGA ways:";
        header = true;
      }
      os << " " << unit << "=" << static_cast<uint64_t>(n);
    }
    if (header) os << " (served via CPU-decode fallback)\n";
  }
  if (!report.recent_events.empty()) {
    const uint64_t epoch = report.recent_events.front().ts_ns;
    os << "  last " << report.recent_events.size() << " events:\n";
    for (const Event& e : report.recent_events) {
      os << "    " << EventLog::Render(e, epoch) << "\n";
    }
  }
  if (Tracer* tracer = telemetry_->tracer()) {
    const std::vector<TraceSpan> spans = tracer->Spans();
    os << "  in-flight batches:\n";
    for (const Tracer::InFlight& b : report.inflight) {
      os << "    batch " << b.batch_id << " in flight for "
         << (now_ns - b.start_ns) / 1'000'000 << " ms; partial tree:\n";
      std::istringstream tree(RenderSpanTree(spans, b.batch_id));
      std::string line;
      while (std::getline(tree, line)) os << "      " << line << "\n";
    }
  }
  report.text = os.str();
  return report;
}

}  // namespace dlb::telemetry
