#include "telemetry/slo.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "common/log.h"
#include "telemetry/event_log.h"

namespace dlb::slo {

const char* SloStateName(SloState state) {
  switch (state) {
    case SloState::kOk: return "ok";
    case SloState::kWarning: return "warning";
    case SloState::kBurning: return "burning";
  }
  return "unknown";
}

namespace {

// Parse "<number>[unit]" where unit scales into the objective's canonical
// domain: durations land in ns, percentages in fractions.
Status ParseThreshold(const std::string& entry, const std::string& text,
                      double* out, bool* is_percent, bool* is_duration) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) {
    return InvalidArgument("slo spec: bad threshold in \"" + entry + "\"");
  }
  const std::string unit(end);
  *is_percent = false;
  *is_duration = true;
  if (unit.empty()) {
    *is_duration = false;
    *out = v;
  } else if (unit == "ns") {
    *out = v;
  } else if (unit == "us") {
    *out = v * 1e3;
  } else if (unit == "ms") {
    *out = v * 1e6;
  } else if (unit == "s") {
    *out = v * 1e9;
  } else if (unit == "%") {
    *is_percent = true;
    *is_duration = false;
    *out = v / 100.0;
  } else {
    return InvalidArgument("slo spec: unknown threshold unit \"" + unit +
                           "\" in \"" + entry + "\" (want ns|us|ms|s|%)");
  }
  return Status::Ok();
}

Status ParseWindow(const std::string& entry, const std::string& text,
                   uint64_t* out_ms) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || v <= 0) {
    return InvalidArgument("slo spec: bad window in \"" + entry + "\"");
  }
  const std::string unit(end);
  if (unit == "ms") {
    *out_ms = static_cast<uint64_t>(v);
  } else if (unit == "s" || unit.empty()) {
    *out_ms = static_cast<uint64_t>(v * 1000.0);
  } else if (unit == "m") {
    *out_ms = static_cast<uint64_t>(v * 60'000.0);
  } else {
    return InvalidArgument("slo spec: unknown window unit \"" + unit +
                           "\" in \"" + entry + "\" (want ms|s|m)");
  }
  if (*out_ms == 0) *out_ms = 1;
  return Status::Ok();
}

// Map the metric vocabulary onto sampler series. Quantile shorthands
// resolve against the stage taxonomy; two error-ratio shorthands cover the
// fault plane; everything else is watched as a literal series name.
Status ResolveMetric(SloObjective* obj) {
  const std::string& name = obj->name;
  const size_t p = name.rfind("_p");
  if (p != std::string::npos && p > 0) {
    const std::string q = name.substr(p + 2);
    if (q == "50" || q == "95" || q == "99") {
      std::string stage = name.substr(0, p);
      if (stage == "infer") stage = "consume";
      for (int i = 0; i < telemetry::kNumStages; ++i) {
        if (stage == telemetry::StageName(static_cast<telemetry::Stage>(i))) {
          obj->kind = ObjectiveKind::kQuantile;
          obj->series = "stage." + stage + ".latency_ns.p" + q;
          return Status::Ok();
        }
      }
      return InvalidArgument(
          "slo spec: unknown stage in \"" + name +
          "\" (want infer or fetch|decode|resize|collect|dispatch|consume)");
    }
  }
  if (name == "decode_errors") {
    obj->kind = ObjectiveKind::kRatio;
    obj->numerator = "decode.errors";
    obj->denominator = "stage.decode.items";
    return Status::Ok();
  }
  if (name == "retry_exhausted") {
    obj->kind = ObjectiveKind::kRatio;
    obj->numerator = "retry.exhausted";
    obj->denominator = "stage.decode.items";
    return Status::Ok();
  }
  obj->kind = ObjectiveKind::kSeries;
  obj->series = name;
  return Status::Ok();
}

}  // namespace

Result<SloSpec> ParseSloSpec(const std::string& spec) {
  SloSpec out;
  out.text = spec;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    const size_t op = entry.find_first_of("<>");
    if (op == std::string::npos || op == 0) {
      return InvalidArgument(
          "slo spec: expected <metric><op><threshold>[/window], got \"" +
          entry + "\"");
    }
    SloObjective obj;
    obj.name = entry.substr(0, op);
    obj.op = entry[op];
    std::string rest = entry.substr(op + 1);
    const size_t slash = rest.find('/');
    if (slash != std::string::npos) {
      DLB_RETURN_IF_ERROR(
          ParseWindow(entry, rest.substr(slash + 1), &obj.window_ms));
      rest.resize(slash);
    }
    bool is_percent = false;
    bool is_duration = false;
    DLB_RETURN_IF_ERROR(
        ParseThreshold(entry, rest, &obj.threshold, &is_percent, &is_duration));
    DLB_RETURN_IF_ERROR(ResolveMetric(&obj));

    if (obj.kind == ObjectiveKind::kRatio) {
      if (is_duration) {
        return InvalidArgument("slo spec: \"" + obj.name +
                               "\" is a ratio; threshold wants % or a "
                               "fraction, not a duration");
      }
      if (obj.threshold < 0.0 || obj.threshold > 1.0) {
        return InvalidArgument("slo spec: ratio threshold for \"" + obj.name +
                               "\" must be in [0,1] (or 0%..100%)");
      }
    }
    if (obj.kind == ObjectiveKind::kQuantile && is_percent) {
      return InvalidArgument("slo spec: \"" + obj.name +
                             "\" is a latency quantile; threshold wants a "
                             "duration (ns|us|ms|s), not %");
    }
    out.objectives.push_back(std::move(obj));
  }
  return out;
}

Result<SloSpec> SloSpecFromEnv() {
  const char* env = std::getenv("DLB_SLO");
  if (env == nullptr) return SloSpec{};
  return ParseSloSpec(env);
}

std::string SloBreach::Describe() const {
  std::ostringstream os;
  os << objective << ": value " << value << " vs threshold " << threshold
     << " over " << window_ms << "ms";
  return os.str();
}

SloEngine::SloEngine(telemetry::Telemetry* telemetry,
                     telemetry::MetricsSampler* sampler, SloSpec spec,
                     SloEngineOptions options)
    : telemetry_(telemetry),
      sampler_(sampler),
      spec_(std::move(spec)),
      options_(options) {
  DLB_CHECK(telemetry_ != nullptr);
  DLB_CHECK(sampler_ != nullptr);
  if (options_.eval_ms == 0) options_.eval_ms = 1;
  prev_state_.assign(spec_.objectives.size(), SloState::kOk);
  // Pre-register the exported gauges/counters so the spec is visible in
  // /metrics from the first scrape, before the first evaluation.
  MetricRegistry& reg = telemetry_->Registry();
  reg.GetCounter("slo.breaches");
  for (const SloObjective& o : spec_.objectives) {
    reg.GetGauge("slo." + o.name + ".state");
    reg.GetGauge("slo." + o.name + ".value");
    reg.GetGauge("slo." + o.name + ".burn_fast");
    reg.GetGauge("slo." + o.name + ".burn_slow");
    reg.GetGauge("slo." + o.name + ".threshold")->Set(o.threshold);
    reg.GetCounter("slo." + o.name + ".breaches");
  }
}

SloEngine::~SloEngine() { Stop(); }

void SloEngine::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::jthread([this](std::stop_token token) { Loop(token); });
}

void SloEngine::Stop() {
  if (!running_.exchange(false)) return;
  thread_.request_stop();
  if (thread_.joinable()) thread_.join();
}

void SloEngine::OnBreach(std::function<void(const SloBreach&)> callback) {
  on_breach_ = std::move(callback);
}

void SloEngine::Loop(std::stop_token token) {
  const auto period = std::chrono::milliseconds(options_.eval_ms);
  while (!token.stop_requested()) {
    std::this_thread::sleep_for(period);
    if (token.stop_requested()) break;
    EvaluateOnce();
  }
}

std::vector<SloStatus> SloEngine::EvaluateAt(uint64_t now_ns) {
  const std::vector<telemetry::SeriesSnapshot> series =
      sampler_->Snapshot(/*with_points=*/true);
  auto find = [&series](const std::string& name)
      -> const telemetry::SeriesSnapshot* {
    for (const telemetry::SeriesSnapshot& s : series) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };

  // Counter delta over [lo_ns, now]: last - first of the points inside the
  // window. Fewer than two points means the window has no measurable delta.
  auto delta_over = [&](const telemetry::SeriesSnapshot* s, uint64_t lo_ns,
                        uint64_t* samples) -> double {
    if (s == nullptr) return 0.0;
    double first = 0.0, last = 0.0;
    uint64_t n = 0;
    for (const telemetry::SeriesPoint& p : s->points) {
      if (p.ts_ns < lo_ns || p.ts_ns > now_ns) continue;
      if (n == 0) first = p.value;
      last = p.value;
      ++n;
    }
    if (samples != nullptr) *samples = n;
    if (n < 2) return 0.0;
    return std::max(0.0, last - first);
  };

  std::vector<SloStatus> out;
  std::vector<SloBreach> fired;
  out.reserve(spec_.objectives.size());

  {
    std::scoped_lock lock(mu_);
    int burning = 0;
    for (size_t i = 0; i < spec_.objectives.size(); ++i) {
      const SloObjective& obj = spec_.objectives[i];
      SloStatus st;
      st.name = obj.name;
      st.op = obj.op;
      st.threshold = obj.threshold;
      st.window_ms = obj.window_ms;

      const uint64_t fast_ns = obj.window_ms * 1'000'000ull;
      const uint64_t slow_ns = 4 * fast_ns;
      const uint64_t fast_lo = now_ns > fast_ns ? now_ns - fast_ns : 0;
      const uint64_t slow_lo = now_ns > slow_ns ? now_ns - slow_ns : 0;

      if (obj.kind == ObjectiveKind::kRatio) {
        st.series = obj.numerator + "/" + obj.denominator;
        const telemetry::SeriesSnapshot* num = find(obj.numerator);
        const telemetry::SeriesSnapshot* den = find(obj.denominator);
        auto ratio = [&](uint64_t lo, uint64_t* samples) {
          uint64_t num_n = 0;
          const double dn = delta_over(num, lo, &num_n);
          const double dd = delta_over(den, lo, samples);
          if (dd <= 0.0) return dn > 0.0 ? 1.0 : 0.0;
          return dn / dd;
        };
        uint64_t slow_samples = 0;
        const double fast = ratio(fast_lo, &st.samples);
        const double slow = ratio(slow_lo, &slow_samples);
        st.value = fast;
        st.burn_fast = obj.Violates(fast) ? 1.0 : 0.0;
        st.burn_slow = obj.Violates(slow) ? 1.0 : 0.0;
        // A window with no denominator flow has nothing to violate.
        if (st.samples < 2) st.burn_fast = 0.0;
        if (slow_samples < 2) st.burn_slow = 0.0;
      } else {
        st.series = obj.series;
        const telemetry::SeriesSnapshot* s = find(obj.series);
        uint64_t fast_n = 0, fast_viol = 0, slow_n = 0, slow_viol = 0;
        if (s != nullptr) {
          for (const telemetry::SeriesPoint& p : s->points) {
            if (p.ts_ns > now_ns || p.ts_ns < slow_lo) continue;
            ++slow_n;
            if (obj.Violates(p.value)) ++slow_viol;
            if (p.ts_ns >= fast_lo) {
              ++fast_n;
              if (obj.Violates(p.value)) ++fast_viol;
              st.value = p.value;  // newest in-window point wins
            }
          }
        }
        st.samples = fast_n;
        st.burn_fast =
            fast_n > 0 ? static_cast<double>(fast_viol) / fast_n : 0.0;
        st.burn_slow =
            slow_n > 0 ? static_cast<double>(slow_viol) / slow_n : 0.0;
      }

      // Multi-window burn state: burning needs a majority of the fast
      // window *and* slow-window confirmation; any violation warns.
      if (st.samples == 0) {
        st.state = SloState::kOk;  // no data, nothing to judge
      } else if (st.burn_fast >= 0.5 && st.burn_slow > 0.0) {
        st.state = SloState::kBurning;
      } else if (st.burn_fast > 0.0 || st.burn_slow > 0.0) {
        st.state = SloState::kWarning;
      } else {
        st.state = SloState::kOk;
      }
      if (st.state == SloState::kBurning) ++burning;

      MetricRegistry& reg = telemetry_->Registry();
      reg.GetGauge("slo." + obj.name + ".state")
          ->Set(static_cast<double>(st.state));
      reg.GetGauge("slo." + obj.name + ".value")->Set(st.value);
      reg.GetGauge("slo." + obj.name + ".burn_fast")->Set(st.burn_fast);
      reg.GetGauge("slo." + obj.name + ".burn_slow")->Set(st.burn_slow);

      if (st.state == SloState::kBurning &&
          prev_state_[i] != SloState::kBurning) {
        breaches_.fetch_add(1, std::memory_order_relaxed);
        reg.GetCounter("slo.breaches")->Add();
        reg.GetCounter("slo." + obj.name + ".breaches")->Add();
        if (telemetry::EventLog* events = telemetry_->events()) {
          events->Log(telemetry::EventType::kSloBreach, 0, i,
                      static_cast<uint64_t>(st.value));
        }
        SloBreach breach;
        breach.objective = obj.name;
        breach.value = st.value;
        breach.threshold = obj.threshold;
        breach.window_ms = obj.window_ms;
        breach.ts_ns = now_ns;
        fired.push_back(std::move(breach));
      }
      prev_state_[i] = st.state;
      out.push_back(std::move(st));
    }
    burning_.store(burning, std::memory_order_release);
    last_ = out;
    evals_.fetch_add(1, std::memory_order_relaxed);
  }

  // Callbacks run outside the lock: the flight recorder may call back into
  // snapshot APIs, and a slow bundle write must not stall Status()/Json().
  if (on_breach_) {
    for (const SloBreach& b : fired) on_breach_(b);
  }
  return out;
}

std::vector<SloStatus> SloEngine::Status() const {
  std::scoped_lock lock(mu_);
  return last_;
}

std::string SloEngine::Json() const {
  std::vector<SloStatus> statuses = Status();
  std::ostringstream os;
  os << "{\"enabled\":true,\"spec\":\"" << spec_.text << "\""
     << ",\"eval_ms\":" << options_.eval_ms
     << ",\"evals\":" << Evaluations() << ",\"breaches\":" << Breaches()
     << ",\"burning\":" << (AnyBurning() ? "true" : "false")
     << ",\"objectives\":[";
  bool first = true;
  for (const SloStatus& st : statuses) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << st.name << "\",\"series\":\"" << st.series
       << "\",\"state\":\"" << SloStateName(st.state) << "\",\"op\":\""
       << st.op << "\",\"value\":" << st.value
       << ",\"threshold\":" << st.threshold
       << ",\"burn_fast\":" << st.burn_fast
       << ",\"burn_slow\":" << st.burn_slow
       << ",\"window_ms\":" << st.window_ms
       << ",\"samples\":" << st.samples << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace dlb::slo
