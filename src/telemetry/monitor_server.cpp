#include "telemetry/monitor_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "common/log.h"

namespace dlb::telemetry {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 400: return "Bad Request";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// One in-flight client connection: accumulate the request until the header
// terminator, then flush the serialized response.
struct Connection {
  int fd = -1;
  std::string in;
  std::string out;
  size_t written = 0;
  bool responding = false;
  std::chrono::steady_clock::time_point accepted;
};

}  // namespace

MonitorServer::MonitorServer() : MonitorServer(Options()) {}

MonitorServer::MonitorServer(Options options) : options_(std::move(options)) {
  if (options_.max_connections < 1) options_.max_connections = 1;
}

MonitorServer::~MonitorServer() { Stop(); }

void MonitorServer::AddHandler(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

HttpResponse MonitorServer::Dispatch(const HttpRequest& request) const {
  if (request.method != "GET" && request.method != "POST") {
    return {405, "text/plain; charset=utf-8", "method not allowed\n"};
  }
  auto it = handlers_.find(request.path);
  if (it == handlers_.end()) {
    std::string body = "not found; endpoints:\n";
    for (const auto& [path, handler] : handlers_) body += "  " + path + "\n";
    return {404, "text/plain; charset=utf-8", std::move(body)};
  }
  return it->second(request);
}

std::string MonitorServer::Serialize(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

Status MonitorServer::Start() {
  if (running_.exchange(true)) return Status::Ok();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    running_.store(false);
    return Internal("socket(): " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    return InvalidArgument("bad bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 32) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    return Internal("bind/listen on " + options_.bind_address + ":" +
                       std::to_string(options_.port) + ": " + err);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_release);
  }
  SetNonBlocking(listen_fd_);

  thread_ = std::jthread([this](std::stop_token token) { Loop(token); });
  return Status::Ok();
}

void MonitorServer::Stop() {
  if (!running_.exchange(false)) return;
  thread_.request_stop();
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_.store(-1, std::memory_order_release);
}

void MonitorServer::Loop(std::stop_token token) {
  std::vector<Connection> conns;
  // Bounded poll timeout doubles as the stop-flag check interval: Stop()
  // never needs a wake-up pipe.
  constexpr int kPollMs = 50;

  while (!token.stop_requested()) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const Connection& c : conns) {
      fds.push_back(
          {c.fd, static_cast<short>(c.responding ? POLLOUT : POLLIN), 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), kPollMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 && conns.empty()) continue;
    // A timed-out poll still sweeps the connection table below: a wedged
    // connection generates no poll events, so the request timeout must not
    // depend on one.

    // Accept while there is room in the connection table.
    if (ready > 0 && (fds[0].revents & POLLIN) != 0) {
      while (conns.size() < static_cast<size_t>(options_.max_connections)) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        SetNonBlocking(fd);
        Connection c;
        c.fd = fd;
        c.accepted = std::chrono::steady_clock::now();
        conns.push_back(std::move(c));
      }
    }

    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < conns.size();) {
      Connection& c = conns[i];
      // A connection still waiting for complete request headers past the
      // timeout (truncated request line, slow-loris) is dropped so it
      // cannot pin a slot and wedge the accept loop.
      bool close_conn =
          !c.responding &&
          now - c.accepted >
              std::chrono::milliseconds(options_.request_timeout_ms);
      // Connections accepted this round have no pollfd entry yet, and an
      // erase above shifts indices — match on fd before trusting revents.
      const short revents = (i + 1 < fds.size() && fds[i + 1].fd == c.fd)
                                ? fds[i + 1].revents
                                : 0;

      if (!c.responding && (revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char buf[4096];
        const ssize_t n = ::read(c.fd, buf, sizeof(buf));
        if (n > 0) {
          c.in.append(buf, static_cast<size_t>(n));
          const size_t header_end = c.in.find("\r\n\r\n");
          if (header_end != std::string::npos) {
            // Parse the request line: METHOD SP TARGET SP VERSION.
            HttpRequest request;
            const size_t line_end = c.in.find("\r\n");
            const std::string line = c.in.substr(0, line_end);
            const size_t sp1 = line.find(' ');
            const size_t sp2 =
                sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
            HttpResponse response;
            if (sp1 == std::string::npos || sp2 == std::string::npos) {
              response = {400, "text/plain; charset=utf-8", "bad request\n"};
            } else {
              request.method = line.substr(0, sp1);
              std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
              const size_t q = target.find('?');
              if (q != std::string::npos) {
                request.query = target.substr(q + 1);
                target.resize(q);
              }
              request.path = std::move(target);
              response = Dispatch(request);
            }
            c.out = Serialize(response);
            c.responding = true;
            requests_.fetch_add(1, std::memory_order_relaxed);
          } else if (c.in.size() > (1u << 16)) {
            close_conn = true;  // header flood; drop it
          }
        } else if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
          close_conn = true;
        }
      }

      // Attempt the write whenever a response is pending — a fresh socket
      // is almost always writable, so most requests finish in the same
      // poll cycle that parsed them; EAGAIN defers to the next POLLOUT.
      if (c.responding && !close_conn) {
        const ssize_t n = ::write(c.fd, c.out.data() + c.written,
                                  c.out.size() - c.written);
        if (n > 0) {
          c.written += static_cast<size_t>(n);
          if (c.written == c.out.size()) close_conn = true;  // done
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
          close_conn = true;
        }
      }

      if (close_conn) {
        ::close(c.fd);
        conns.erase(conns.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
  }

  for (Connection& c : conns) ::close(c.fd);
}

}  // namespace dlb::telemetry
