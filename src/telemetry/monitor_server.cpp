#include "telemetry/monitor_server.h"

#include <algorithm>

namespace dlb::telemetry {

namespace {

http::HttpServer::Options Translate(const MonitorServer::Options& options) {
  http::HttpServer::Options out;
  out.bind_address = options.bind_address;
  out.port = options.port;
  out.max_connections = options.max_connections;
  out.request_timeout_ms = options.request_timeout_ms;
  // Keep the sweep at least as fine as the configured timeout so tests
  // with short deadlines observe the reap promptly.
  out.sweep_interval_ms = std::min<uint64_t>(100, options.request_timeout_ms);
  // One request per connection: scrapers open a fresh connection per
  // scrape and read until EOF, so keep-alive would only make them hang.
  out.keep_alive = false;
  return out;
}

}  // namespace

MonitorServer::MonitorServer() : MonitorServer(Options()) {}

MonitorServer::MonitorServer(Options options)
    : server_(Translate(options)) {}

MonitorServer::~MonitorServer() { Stop(); }

void MonitorServer::AddHandler(std::string path, Handler handler) {
  server_.AddHandler(std::move(path), std::move(handler));
}

Status MonitorServer::Start() { return server_.Start(); }

void MonitorServer::Stop() { server_.Stop(); }

HttpResponse MonitorServer::Dispatch(const HttpRequest& request) const {
  return server_.Dispatch(request);
}

std::string MonitorServer::Serialize(const HttpResponse& response) {
  return http::HttpServer::Serialize(response, /*keep_alive=*/false);
}

}  // namespace dlb::telemetry
