// Embedded HTTP/1.1 exposition server: the pipeline's window to the fleet.
//
// A single background thread runs a blocking poll() loop over the listen
// socket and its client connections — no worker pool, no dependencies.
// That is the right shape for a metrics port: scrapers (Prometheus, the
// dlb_monitor dashboard, curl) issue one short GET a second; the server
// never touches the preprocessing hot path and its handlers only read
// snapshot APIs that were built for concurrent readers.
//
// Routing is exact-path over registered handlers; the pipeline wires
// /metrics, /metrics.json, /stats, /events and /healthz (see
// core/pipeline.cpp). Responses always close the connection
// (Connection: close) — one request per TCP connection keeps the state
// machine trivial and is what scrapers do anyway.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/status.h"

namespace dlb::telemetry {

struct HttpRequest {
  std::string method;  // "GET"
  std::string path;    // "/metrics" (query string stripped)
  std::string query;   // "window=5" (without the '?')
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Prometheus text exposition content type.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

class MonitorServer {
 public:
  struct Options {
    /// Bind address. Loopback by default: the monitoring plane is
    /// process-local unless the operator opts into exposure.
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via Port()).
    int port = 0;
    /// Connections the poll loop tracks at once; accepts beyond this are
    /// served as soon as a slot frees (the backlog holds them).
    int max_connections = 16;
    /// A connection that has not completed its request headers within this
    /// many ms is dropped — a truncated request line (or a slow-loris
    /// client) must not pin a connection slot forever.
    uint64_t request_timeout_ms = 5000;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  MonitorServer();
  explicit MonitorServer(Options options);
  ~MonitorServer();

  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  /// Register a handler for an exact path. Call before Start().
  void AddHandler(std::string path, Handler handler);

  /// Bind, listen and launch the poll loop. kUnavailable when the socket
  /// cannot be bound.
  Status Start();

  /// Stop the loop and close all sockets. Idempotent; runs on destruction.
  void Stop();

  bool Running() const { return running_.load(std::memory_order_acquire); }

  /// The bound TCP port (resolves port 0), or -1 before Start().
  int Port() const { return port_.load(std::memory_order_acquire); }

  uint64_t RequestsServed() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Route a request through the registered handlers without a socket —
  /// the deterministic seam tests use. 404 (with an endpoint listing body)
  /// on unknown path, 405 on anything but GET/POST. Handlers that care
  /// about the method (POST /debug/dump) branch on request.method.
  HttpResponse Dispatch(const HttpRequest& request) const;

  /// Serialize a response as an HTTP/1.1 wire message.
  static std::string Serialize(const HttpResponse& response);

 private:
  void Loop(std::stop_token token);

  Options options_;
  std::map<std::string, Handler> handlers_;
  std::jthread thread_;
  std::atomic<bool> running_{false};
  std::atomic<int> port_{-1};
  std::atomic<uint64_t> requests_{0};
  int listen_fd_ = -1;
};

}  // namespace dlb::telemetry
