// Embedded HTTP/1.1 exposition server: the pipeline's window to the fleet.
//
// A thin adapter over the shared dlb::http::HttpServer (common/http_server.h)
// — the socket plane, connection state machine and hardening (request
// timeouts on their own sweep cadence, header/body caps, slow-loris reaping)
// live there, shared with the inference front door. This wrapper pins the
// monitoring-plane policy: one request per TCP connection
// (Connection: close) — that is what scrapers (Prometheus, dlb_monitor,
// curl) do anyway, and it keeps every scrape independent.
//
// Routing is exact-path over registered handlers; the pipeline wires
// /metrics, /metrics.json, /stats, /events and /healthz (see
// core/pipeline.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "common/http_server.h"
#include "common/status.h"

namespace dlb::telemetry {

// The monitoring plane speaks the shared HTTP vocabulary; these aliases
// keep existing call sites (pipeline.cpp, tests) source-compatible.
using HttpRequest = http::HttpRequest;
using HttpResponse = http::HttpResponse;

/// Prometheus text exposition content type.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

class MonitorServer {
 public:
  struct Options {
    /// Bind address. Loopback by default: the monitoring plane is
    /// process-local unless the operator opts into exposure.
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via Port()).
    int port = 0;
    /// Connections the poll loop tracks at once; accepts beyond this are
    /// served as soon as a slot frees (the backlog holds them).
    int max_connections = 16;
    /// A connection that has not completed its request headers within this
    /// many ms is dropped — a truncated request line (or a slow-loris
    /// client) must not pin a connection slot forever.
    uint64_t request_timeout_ms = 5000;
  };

  using Handler = http::HttpServer::Handler;

  MonitorServer();
  explicit MonitorServer(Options options);
  ~MonitorServer();

  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  /// Register a handler for an exact path. Call before Start().
  void AddHandler(std::string path, Handler handler);

  /// Bind, listen and launch the poll loop. kUnavailable when the socket
  /// cannot be bound.
  Status Start();

  /// Stop the loop and close all sockets. Idempotent; runs on destruction.
  void Stop();

  bool Running() const { return server_.Running(); }

  /// The bound TCP port (resolves port 0), or -1 before Start().
  int Port() const { return server_.Port(); }

  uint64_t RequestsServed() const { return server_.RequestsServed(); }

  /// Route a request through the registered handlers without a socket —
  /// the deterministic seam tests use. 404 (with an endpoint listing body)
  /// on unknown path, 405 on anything but GET/POST. Handlers that care
  /// about the method (POST /debug/dump) branch on request.method.
  HttpResponse Dispatch(const HttpRequest& request) const;

  /// Serialize a response as an HTTP/1.1 wire message (Connection: close —
  /// the monitoring plane's one-shot semantics).
  static std::string Serialize(const HttpResponse& response);

 private:
  http::HttpServer server_;
};

}  // namespace dlb::telemetry
