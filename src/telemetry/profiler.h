// dlb::prof — an always-available, low-overhead sampling profiler.
//
// The per-stage histograms answer "how long did decode take"; they cannot
// answer "which stage is this thread in *right now*, and is it computing or
// waiting". The profiler closes that gap without perturbing the pipeline:
//
//   - every span pushes a thread-local stage tag (telemetry/stage_tag.h);
//     tags nest, so a decode span inside a collect section reads as the
//     stack "collect;decode",
//   - a dedicated sampler thread ticks at ~1 kHz, reads each registered
//     thread's tag stack (seqlock, torn reads skipped) and its on-CPU time
//     (pthread_getcpuclockid + CLOCK_THREAD_CPUTIME_ID), and
//   - attributes the tick's per-thread wall delta to the stack it saw,
//     split into cpu (on-CPU delta) and wait (the remainder: queue waits,
//     blocking pops, page faults — anything off-CPU).
//
// Because attribution is per-thread-per-tick (every live thread counts at
// every tick, scheduled or not), sample *shares* are scheduling-independent:
// two threads tagged decode and one tagged resize yield a 2:1 decode:resize
// sample ratio regardless of CPU contention — which is what makes the
// stage-attribution test deterministic.
//
// The report renders as collapsed-stack text ("collect;decode 412" lines —
// pipe straight into flamegraph.pl) or JSON, and also carries hugepage-pool
// watermarks (peak buffer usage during the window) sampled from a
// MetricRegistry when one is supplied. The pipeline serves all of this at
// GET /profile?seconds=N (core/pipeline.cpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <ctime>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "telemetry/stage_tag.h"

namespace dlb::prof {

/// Per-thread profiling state, shared between the owner thread (tag pushes)
/// and sampler threads (stack reads + CPU clock queries). Lifetime is
/// shared_ptr-managed: the registry and any sampler mid-tick keep it alive
/// after its thread exits.
class ThreadState {
 public:
  ThreadState();

  /// Owner-thread side: push/pop the current stage tag. Seqlock-published
  /// so a sampler never sees a half-updated stack.
  void Push(int stage);
  void Pop();

  /// Sampler side: copy a consistent stack snapshot; returns the depth
  /// (clamped to kMaxTagDepth) or -1 when a consistent read could not be
  /// taken (a tag mutation was in flight — skip the thread this tick).
  int ReadStack(uint8_t (&out)[kMaxTagDepth]) const;

  /// The thread's cumulative on-CPU nanoseconds, 0 when unavailable (the
  /// thread exited, or the platform lacks per-thread CPU clocks).
  uint64_t CpuNs() const;

  void MarkDead() { alive_.store(false, std::memory_order_release); }
  bool Alive() const { return alive_.load(std::memory_order_acquire); }

  /// Registration ordinal — a process-unique, reuse-free thread key.
  uint64_t Id() const { return id_; }

 private:
  friend class ThreadRegistry;

  std::atomic<uint32_t> version_{0};
  std::atomic<int32_t> depth_{0};
  std::array<std::atomic<uint8_t>, kMaxTagDepth> stack_{};
  clockid_t cpu_clock_{};
  bool has_clock_ = false;
  std::atomic<bool> alive_{true};
  uint64_t id_ = 0;
};

/// Process-wide registry of tagged threads. Tags are thread-scoped, not
/// pipeline-scoped, so one (leaked) singleton serves every profiler in the
/// process.
class ThreadRegistry {
 public:
  static ThreadRegistry& Global();

  /// Register the calling thread (called once per thread by the TLS hook).
  std::shared_ptr<ThreadState> RegisterCurrentThread();
  void Unregister(const ThreadState* state);

  /// Snapshot of the currently-live thread states.
  std::vector<std::shared_ptr<ThreadState>> LiveThreads() const;
  size_t LiveCount() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadState>> threads_;
  uint64_t next_id_ = 1;
};

struct ProfilerOptions {
  /// Sampling tick period. ~1 kHz keeps the sampler far below the 5%
  /// overhead budget (bench_profiler_overhead gates ≥95% of profiling-off
  /// throughput).
  uint64_t interval_us = 1000;
  /// Distinct stacks retained; the stage taxonomy is 6 deep, so this never
  /// binds in practice — it bounds memory against pathological tagging.
  size_t max_stacks = 1024;
};

/// One collapsed stack ("fetch;decode") and its sample count.
struct StackCount {
  std::string stack;
  uint64_t samples = 0;
};

/// Per-stage sample/cpu/wait totals, attributed by top-of-stack tag.
/// "untagged" collects threads registered but outside any span.
struct StageBreakdown {
  std::string stage;
  uint64_t samples = 0;
  uint64_t cpu_ns = 0;
  uint64_t wait_ns = 0;
};

/// Hugepage-pool occupancy watermarks over the profile window, sampled from
/// the registry's pool gauges (hostbridge/hugepage_pool.cpp publishes them).
struct PoolWatermarks {
  bool present = false;   // false when the pipeline has no pool
  double buffers = 0.0;   // pool size (buffers)
  double free_min = 0.0;  // fewest free buffers seen -> peak arena usage
  double full_max = 0.0;  // most decoded-but-undispatched buffers seen
};

struct ProfileReport {
  uint64_t duration_ns = 0;
  uint64_t ticks = 0;    // sampler iterations completed
  uint64_t samples = 0;  // thread-samples attributed (≈ ticks × threads)
  size_t threads = 0;    // peak concurrently-registered threads observed
  std::vector<StackCount> stacks;      // most samples first
  std::vector<StageBreakdown> stages;  // dataflow order, then untagged
  PoolWatermarks pool;

  /// Flamegraph-ready collapsed-stack text: "stage;stage count\n" lines.
  std::string Collapsed() const;
  /// Everything (stacks, per-stage cpu/wait, pool watermarks) as one
  /// deterministic JSON object.
  std::string Json() const;
};

class Profiler {
 public:
  /// `registry`, when non-null, is sampled each tick for pool watermarks;
  /// it must outlive the profiler.
  explicit Profiler(ProfilerOptions options = {},
                    MetricRegistry* registry = nullptr);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Launch / stop the sampler thread. Idempotent.
  void Start();
  void Stop();
  bool Running() const { return running_.load(std::memory_order_acquire); }

  /// Snapshot of everything collected so far (callable while running).
  ProfileReport Report() const;

  /// One synchronous sampling step — the deterministic seam tests use.
  void TickOnce();

  /// Blocking convenience: collect for `duration_ms`, then report. This is
  /// what the /profile endpoint calls.
  static ProfileReport ProfileFor(uint64_t duration_ms,
                                  ProfilerOptions options = {},
                                  MetricRegistry* registry = nullptr);

 private:
  struct PrevSample {
    uint64_t wall_ns = 0;
    uint64_t cpu_ns = 0;
  };
  struct StageAccum {
    uint64_t samples = 0;
    uint64_t cpu_ns = 0;
    uint64_t wait_ns = 0;
  };

  void Loop(std::stop_token token);
  void Tick(uint64_t now_ns);

  ProfilerOptions options_;
  MetricRegistry* registry_;
  std::jthread thread_;
  std::atomic<bool> running_{false};

  mutable std::mutex mu_;
  uint64_t started_ns_ = 0;
  uint64_t stopped_ns_ = 0;
  uint64_t ticks_ = 0;
  uint64_t samples_ = 0;
  size_t max_threads_ = 0;
  std::map<uint64_t, PrevSample> prev_;        // by ThreadState::Id()
  std::map<uint64_t, uint64_t> stack_counts_;  // packed stack -> samples
  std::map<int, StageAccum> stages_;           // top tag (-1 untagged)
  PoolWatermarks pool_;
};

}  // namespace dlb::prof
