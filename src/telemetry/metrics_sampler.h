// Continuous metrics sampling: the recording side's counters become rates.
//
// Counters and histograms answer "how much since the process started";
// diagnosing a preprocessing stall needs "how much *per second*, right
// now, per stage" (Gong et al.: stalls are only visible in continuous
// per-stage rates). The MetricsSampler is a background thread that
// snapshots the pipeline's MetricRegistry on a fixed interval into
// fixed-size time-series rings and derives, per sample window:
//
//   <counter>.rate_per_s    delta / dt for every counter (imgs/s, bytes/s)
//   <hist>.count.rate_per_s the same for histogram sample counts
//   <hist>.{p50,p95,p99}    latency quantiles over the live histogram
//   <gauge>                 the instantaneous value
//   <gauge>.watermark       the window peak (Gauge::MaxAndReset, so spikes
//                           between samples are not lost)
//   <unit>.utilization      busy fraction for every "<unit>.busy_ns"
//                           counter: delta_busy / (dt * <unit>.ways)
//
// The sampler is the single producer; the exposition server and the
// dlb_monitor dashboard are the consumers. Everything is held under one
// mutex — sampling runs a few times per second, never on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "telemetry/telemetry.h"

namespace dlb::telemetry {

struct SamplerOptions {
  /// Sampling period of the background thread.
  uint64_t sample_ms = 500;
  /// Points retained per series (ring capacity). At 500 ms that is two
  /// minutes of history per series.
  size_t history = 256;
};

/// What a series measures; consumers use it to pick units and rendering.
enum class SeriesKind : uint8_t {
  kCounter,      // raw monotonic counter value
  kGauge,        // instantaneous value
  kRate,         // per-second delta of a counter
  kWatermark,    // per-window gauge peak
  kQuantile,     // histogram quantile (ns)
  kUtilization,  // busy fraction in [0, 1]
};

const char* SeriesKindName(SeriesKind kind);

struct SeriesPoint {
  uint64_t ts_ns = 0;
  double value = 0.0;
};

/// One derived series, as returned by MetricsSampler::Snapshot().
struct SeriesSnapshot {
  std::string name;
  SeriesKind kind = SeriesKind::kGauge;
  double last = 0.0;
  double high = 0.0;  // max over the retained window
  std::vector<SeriesPoint> points;  // oldest first; empty unless requested
};

class MetricsSampler {
 public:
  /// `telemetry` must outlive the sampler.
  explicit MetricsSampler(Telemetry* telemetry, SamplerOptions options = {});
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Launch / stop the sampling thread. Idempotent.
  void Start();
  void Stop();

  /// One synchronous sampling step at the current time. The thread calls
  /// this every sample_ms; tools may call it to force a fresh window.
  void SampleOnce() { SampleAt(NowNs()); }

  /// Deterministic variant for tests: the caller supplies the sample
  /// timestamp, so rate math is exact.
  void SampleAt(uint64_t ts_ns);

  uint64_t SamplesTaken() const;

  /// All series in name order. Ring points are copied only when
  /// `with_points` (the dashboard wants them; the Prometheus path does not).
  std::vector<SeriesSnapshot> Snapshot(bool with_points = false) const;

  /// Deterministic JSON: {"sample_ms":…,"samples":…,"series":{name:
  /// {"kind":…,"last":…,"high":…,"points":[[ts_ns,value],…]}}}.
  std::string Json(bool with_points = true) const;

  const SamplerOptions& Options() const { return options_; }

 private:
  struct Ring {
    SeriesKind kind = SeriesKind::kGauge;
    std::vector<SeriesPoint> points;  // ring storage
    size_t size = 0;                  // points resident (<= capacity)
    size_t next = 0;                  // write cursor
  };

  void Put(const std::string& name, SeriesKind kind, uint64_t ts_ns,
           double value);

  Telemetry* telemetry_;
  SamplerOptions options_;
  std::jthread thread_;
  std::atomic<bool> running_{false};

  mutable std::mutex mu_;
  std::map<std::string, Ring> series_;
  // Previous raw counter values, for rate derivation.
  std::map<std::string, SeriesPoint> prev_counters_;
  uint64_t samples_ = 0;
};

}  // namespace dlb::telemetry
