#include "telemetry/exposition.h"

#include <cctype>
#include <sstream>

#include "telemetry/metrics_sampler.h"

namespace dlb::telemetry {

namespace {

// Prometheus accepts integers and floats; default ostream formatting of a
// double ("1e+09", "0.25") is valid exposition syntax.
std::string Num(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "dlb_";
  out.reserve(name.size() + 4);
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

std::string RenderPrometheus(const MetricRegistry& registry,
                             const MetricsSampler* sampler) {
  struct Renderer : MetricVisitor {
    std::ostringstream os;
    void OnCounter(const std::string& name, const Counter& c) override {
      const std::string pn = PrometheusName(name) + "_total";
      os << "# TYPE " << pn << " counter\n"
         << pn << " " << c.Value() << "\n";
    }
    void OnGauge(const std::string& name, Gauge& g) override {
      const std::string pn = PrometheusName(name);
      os << "# TYPE " << pn << " gauge\n"
         << pn << " " << Num(g.Value()) << "\n";
      // Running peak since the last sampler window reset — the spike a
      // scrape-time read of the gauge would miss.
      os << "# TYPE " << pn << "_peak gauge\n"
         << pn << "_peak " << Num(g.Max()) << "\n";
    }
    void OnHistogram(const std::string& name, const Histogram& h) override {
      const std::string pn = PrometheusName(name);
      const HistogramSnapshot s = h.TakeSnapshot();
      os << "# TYPE " << pn << " summary\n";
      os << pn << "{quantile=\"0.5\"} " << s.Quantile(0.5) << "\n";
      os << pn << "{quantile=\"0.95\"} " << s.Quantile(0.95) << "\n";
      os << pn << "{quantile=\"0.99\"} " << s.Quantile(0.99) << "\n";
      os << pn << "_sum " << s.Sum() << "\n";
      os << pn << "_count " << s.Count() << "\n";
    }
  } r;
  registry.Visit(r);

  if (sampler != nullptr) {
    for (const SeriesSnapshot& s : sampler->Snapshot(/*with_points=*/false)) {
      // Raw counter/gauge/quantile series duplicate the registry above;
      // only the derived views are new information for a scraper.
      if (s.kind != SeriesKind::kRate && s.kind != SeriesKind::kWatermark &&
          s.kind != SeriesKind::kUtilization) {
        continue;
      }
      const std::string pn = PrometheusName(s.name);
      r.os << "# TYPE " << pn << " gauge\n" << pn << " " << Num(s.last) << "\n";
    }
  }
  return r.os.str();
}

}  // namespace dlb::telemetry
