#include "telemetry/profiler.h"

#include <pthread.h>
#include <time.h>

#include <algorithm>
#include <sstream>

#include "telemetry/telemetry.h"

namespace dlb::prof {

namespace {

uint64_t ClockNs(clockid_t clock) {
  timespec ts{};
  if (clock_gettime(clock, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

/// Stage-tag rendering: the canonical stage names, "untagged" for a thread
/// outside any span, "tag<N>" for out-of-taxonomy tags.
std::string TagName(int tag) {
  if (tag < 0) return "untagged";
  if (tag < telemetry::kNumStages) {
    return telemetry::StageName(static_cast<telemetry::Stage>(tag));
  }
  return "tag" + std::to_string(tag);
}

/// Unpack a stack key (one byte per frame, stage+1, deepest frame in the
/// low byte) back into "outer;inner" text.
std::string UnpackStack(uint64_t key) {
  uint8_t frames[kMaxTagDepth];
  int depth = 0;
  while (key != 0 && depth < kMaxTagDepth) {
    frames[depth++] = static_cast<uint8_t>(key & 0xff);
    key >>= 8;
  }
  if (depth == 0) return "untagged";
  std::string out;
  for (int i = depth - 1; i >= 0; --i) {
    if (!out.empty()) out += ';';
    out += TagName(static_cast<int>(frames[i]) - 1);
  }
  return out;
}

/// Registers the calling thread on first tag push and marks it dead at
/// thread exit. The registry is leaked, so this destructor is safe in any
/// shutdown order.
struct TlsHandle {
  std::shared_ptr<ThreadState> state;
  TlsHandle() : state(ThreadRegistry::Global().RegisterCurrentThread()) {}
  ~TlsHandle() {
    state->MarkDead();
    ThreadRegistry::Global().Unregister(state.get());
  }
};

ThreadState& Local() {
  thread_local TlsHandle tls;
  return *tls.state;
}

}  // namespace

void PushStageTag(int stage) { Local().Push(stage); }
void PopStageTag() { Local().Pop(); }

uint64_t ThreadCpuNs() { return ClockNs(CLOCK_THREAD_CPUTIME_ID); }

// ---------------------------------------------------------------------------
// ThreadState

ThreadState::ThreadState() {
  has_clock_ = pthread_getcpuclockid(pthread_self(), &cpu_clock_) == 0;
}

void ThreadState::Push(int stage) {
  const int32_t d = depth_.load(std::memory_order_relaxed);
  if (d < 0 || d >= kMaxTagDepth) {
    // Beyond the visible window: keep the depth balanced for the pops but
    // leave the sampled stack untouched (no version bump needed — nothing
    // a reader can see changes).
    depth_.store(d + 1, std::memory_order_relaxed);
    return;
  }
  // Seqlock write: odd version -> mutate -> even version. Readers retry on
  // an odd or changed version, so they never observe a half-pushed stack.
  version_.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  const int clamped = stage < 0 ? 0 : (stage > 254 ? 254 : stage);
  stack_[d].store(static_cast<uint8_t>(clamped), std::memory_order_relaxed);
  depth_.store(d + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  version_.fetch_add(1, std::memory_order_release);
}

void ThreadState::Pop() {
  const int32_t d = depth_.load(std::memory_order_relaxed);
  if (d <= 0) return;  // unbalanced pop: ignore rather than corrupt
  if (d > kMaxTagDepth) {
    depth_.store(d - 1, std::memory_order_relaxed);
    return;
  }
  version_.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  depth_.store(d - 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  version_.fetch_add(1, std::memory_order_release);
}

int ThreadState::ReadStack(uint8_t (&out)[kMaxTagDepth]) const {
  for (int attempt = 0; attempt < 4; ++attempt) {
    const uint32_t before = version_.load(std::memory_order_acquire);
    if (before & 1) continue;  // mutation in flight
    int32_t d = depth_.load(std::memory_order_relaxed);
    if (d < 0) d = 0;
    if (d > kMaxTagDepth) d = kMaxTagDepth;
    for (int i = 0; i < d; ++i) {
      out[i] = stack_[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (version_.load(std::memory_order_relaxed) == before) return d;
  }
  return -1;
}

uint64_t ThreadState::CpuNs() const {
  if (!has_clock_) return 0;
  return ClockNs(cpu_clock_);
}

// ---------------------------------------------------------------------------
// ThreadRegistry

ThreadRegistry& ThreadRegistry::Global() {
  // Leaked: thread-exit hooks and profilers may run at any shutdown stage.
  static ThreadRegistry* registry = new ThreadRegistry();
  return *registry;
}

std::shared_ptr<ThreadState> ThreadRegistry::RegisterCurrentThread() {
  auto state = std::make_shared<ThreadState>();
  std::scoped_lock lock(mu_);
  state->id_ = next_id_++;
  threads_.push_back(state);
  return state;
}

void ThreadRegistry::Unregister(const ThreadState* state) {
  std::scoped_lock lock(mu_);
  threads_.erase(std::remove_if(threads_.begin(), threads_.end(),
                                [state](const auto& t) {
                                  return t.get() == state;
                                }),
                 threads_.end());
}

std::vector<std::shared_ptr<ThreadState>> ThreadRegistry::LiveThreads() const {
  std::scoped_lock lock(mu_);
  return threads_;
}

size_t ThreadRegistry::LiveCount() const {
  std::scoped_lock lock(mu_);
  return threads_.size();
}

// ---------------------------------------------------------------------------
// Profiler

Profiler::Profiler(ProfilerOptions options, MetricRegistry* registry)
    : options_(options), registry_(registry) {
  if (options_.interval_us < 100) options_.interval_us = 100;
}

Profiler::~Profiler() { Stop(); }

void Profiler::Start() {
  if (running_.exchange(true)) return;
  {
    std::scoped_lock lock(mu_);
    if (started_ns_ == 0) started_ns_ = telemetry::NowNs();
    stopped_ns_ = 0;
  }
  thread_ = std::jthread([this](std::stop_token token) { Loop(token); });
}

void Profiler::Stop() {
  if (!running_.exchange(false)) return;
  thread_.request_stop();
  if (thread_.joinable()) thread_.join();
  std::scoped_lock lock(mu_);
  stopped_ns_ = telemetry::NowNs();
}

void Profiler::Loop(std::stop_token token) {
  while (!token.stop_requested()) {
    Tick(telemetry::NowNs());
    std::this_thread::sleep_for(std::chrono::microseconds(options_.interval_us));
  }
  // One closing tick so the final partial window is attributed too.
  Tick(telemetry::NowNs());
}

void Profiler::TickOnce() { Tick(telemetry::NowNs()); }

void Profiler::Tick(uint64_t now_ns) {
  const auto threads = ThreadRegistry::Global().LiveThreads();
  std::scoped_lock lock(mu_);
  if (started_ns_ == 0) started_ns_ = now_ns;
  max_threads_ = std::max(max_threads_, threads.size());
  for (const auto& t : threads) {
    if (!t->Alive()) continue;
    uint8_t stack[kMaxTagDepth];
    const int depth = t->ReadStack(stack);
    if (depth < 0) continue;  // torn read: skip this thread this tick
    const uint64_t cpu = t->CpuNs();
    PrevSample& prev = prev_[t->Id()];
    if (prev.wall_ns != 0 && now_ns > prev.wall_ns) {
      const uint64_t dwall = now_ns - prev.wall_ns;
      uint64_t dcpu = cpu >= prev.cpu_ns ? cpu - prev.cpu_ns : 0;
      if (dcpu > dwall) dcpu = dwall;

      const int top = depth > 0 ? static_cast<int>(stack[depth - 1]) : -1;
      StageAccum& accum = stages_[top];
      ++accum.samples;
      accum.cpu_ns += dcpu;
      accum.wait_ns += dwall - dcpu;
      ++samples_;

      uint64_t key = 0;
      for (int i = 0; i < depth; ++i) {
        key = (key << 8) | (static_cast<uint64_t>(stack[i]) + 1);
      }
      if (stack_counts_.size() < options_.max_stacks ||
          stack_counts_.count(key) != 0) {
        ++stack_counts_[key];
      }
    }
    prev.wall_ns = now_ns;
    prev.cpu_ns = cpu;
  }

  if (registry_ != nullptr) {
    // Pool watermarks: read the occupancy gauges if the pipeline has a
    // hugepage pool (never create them — Visit only sees what exists).
    struct PoolVisitor : MetricVisitor {
      double buffers = -1.0, free_buffers = -1.0, full_buffers = -1.0;
      void OnGauge(const std::string& name, Gauge& gauge) override {
        if (name == "pool.buffers") buffers = gauge.Value();
        if (name == "pool.free_buffers") free_buffers = gauge.Value();
        if (name == "pool.full_buffers") full_buffers = gauge.Value();
      }
    } v;
    registry_->Visit(v);
    if (v.buffers >= 0.0) {
      if (!pool_.present) {
        pool_.present = true;
        pool_.free_min = v.free_buffers;
      }
      pool_.buffers = v.buffers;
      pool_.free_min = std::min(pool_.free_min, v.free_buffers);
      pool_.full_max = std::max(pool_.full_max, v.full_buffers);
    }
  }
  ++ticks_;
}

ProfileReport Profiler::Report() const {
  std::scoped_lock lock(mu_);
  ProfileReport report;
  const uint64_t end =
      stopped_ns_ != 0 ? stopped_ns_
                       : (started_ns_ != 0 ? telemetry::NowNs() : 0);
  report.duration_ns = end > started_ns_ ? end - started_ns_ : 0;
  report.ticks = ticks_;
  report.samples = samples_;
  report.threads = max_threads_;
  report.pool = pool_;

  report.stacks.reserve(stack_counts_.size());
  for (const auto& [key, count] : stack_counts_) {
    report.stacks.push_back(StackCount{UnpackStack(key), count});
  }
  std::sort(report.stacks.begin(), report.stacks.end(),
            [](const StackCount& a, const StackCount& b) {
              return a.samples != b.samples ? a.samples > b.samples
                                            : a.stack < b.stack;
            });

  // Stages in dataflow order, then any out-of-taxonomy tags, untagged last.
  std::vector<std::pair<int, StageAccum>> tagged;
  for (const auto& [tag, accum] : stages_) {
    if (tag >= 0) tagged.emplace_back(tag, accum);
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [tag, accum] : tagged) {
    report.stages.push_back(
        StageBreakdown{TagName(tag), accum.samples, accum.cpu_ns,
                       accum.wait_ns});
  }
  if (auto it = stages_.find(-1); it != stages_.end()) {
    report.stages.push_back(StageBreakdown{
        "untagged", it->second.samples, it->second.cpu_ns,
        it->second.wait_ns});
  }
  return report;
}

ProfileReport Profiler::ProfileFor(uint64_t duration_ms,
                                   ProfilerOptions options,
                                   MetricRegistry* registry) {
  Profiler profiler(options, registry);
  profiler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  profiler.Stop();
  return profiler.Report();
}

// ---------------------------------------------------------------------------
// Report rendering

std::string ProfileReport::Collapsed() const {
  std::string out;
  for (const StackCount& s : stacks) {
    out += s.stack;
    out += ' ';
    out += std::to_string(s.samples);
    out += '\n';
  }
  return out;
}

std::string ProfileReport::Json() const {
  std::ostringstream os;
  os << "{\"duration_ns\":" << duration_ns << ",\"ticks\":" << ticks
     << ",\"samples\":" << samples << ",\"threads\":" << threads
     << ",\"stages\":[";
  bool first = true;
  for (const StageBreakdown& s : stages) {
    if (!first) os << ",";
    first = false;
    os << "{\"stage\":\"" << s.stage << "\",\"samples\":" << s.samples
       << ",\"cpu_ns\":" << s.cpu_ns << ",\"wait_ns\":" << s.wait_ns << "}";
  }
  os << "],\"stacks\":[";
  first = true;
  for (const StackCount& s : stacks) {
    if (!first) os << ",";
    first = false;
    os << "{\"stack\":\"" << s.stack << "\",\"samples\":" << s.samples << "}";
  }
  os << "],\"pool\":{\"present\":" << (pool.present ? "true" : "false")
     << ",\"buffers\":" << pool.buffers << ",\"free_min\":" << pool.free_min
     << ",\"full_max\":" << pool.full_max << "}}";
  return os.str();
}

}  // namespace dlb::prof
