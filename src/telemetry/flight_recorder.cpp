#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/buildinfo.h"
#include "common/log.h"
#include "telemetry/event_log.h"
#include "telemetry/profiler.h"
#include "telemetry/trace.h"
#include "telemetry/trace_exporter.h"

namespace dlb::flight {

namespace fs = std::filesystem;

const char* TriggerName(TriggerKind kind) {
  switch (kind) {
    case TriggerKind::kManual: return "manual";
    case TriggerKind::kSloBreach: return "slo_breach";
    case TriggerKind::kWatchdogStall: return "watchdog_stall";
    case TriggerKind::kRetryExhausted: return "retry_exhausted";
    case TriggerKind::kQuarantine: return "quarantine";
    case TriggerKind::kOverloadShed: return "overload_shed";
  }
  return "unknown";
}

namespace {

// Wall-clock ms since the Unix epoch: bundle names must sort across
// process restarts, which the steady clock cannot give.
uint64_t WallMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

Status WriteFile(const fs::path& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Internal("cannot open bundle file: " + path.string());
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return Internal("short write to bundle file: " + path.string());
  }
  return Status::Ok();
}

void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (c == '\n') {
      os << "\\n";
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

FlightRecorder::FlightRecorder(telemetry::Telemetry* telemetry,
                               FlightOptions options)
    : telemetry_(telemetry), options_(std::move(options)) {
  DLB_CHECK(telemetry_ != nullptr);
  DLB_CHECK(!options_.dir.empty());
  if (options_.max_bundles == 0) options_.max_bundles = 1;
  // Pre-register the twin counters so the recorder is visible in /metrics
  // before the first trigger.
  telemetry_->Registry().GetCounter("flight.bundles");
  telemetry_->Registry().GetCounter("flight.suppressed");
}

FlightRecorder::~FlightRecorder() {
  Stop();
  telemetry_->AttachFlightRecorder(nullptr);
}

void FlightRecorder::AttachSampler(telemetry::MetricsSampler* sampler) {
  sampler_ = sampler;
}

void FlightRecorder::SetTopologyProvider(
    std::function<std::string()> provider) {
  topology_ = std::move(provider);
}

void FlightRecorder::SetStatsProvider(std::function<std::string()> provider) {
  stats_ = std::move(provider);
}

void FlightRecorder::Start() {
  if (running_.exchange(true)) return;
  {
    std::scoped_lock lock(mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void FlightRecorder::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::scoped_lock lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool FlightRecorder::Trigger(TriggerKind kind, std::string detail) {
  if (!running_.load(std::memory_order_acquire)) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    telemetry_->Registry().GetCounter("flight.suppressed")->Add();
    return false;
  }
  const uint64_t now = telemetry::NowNs();
  if (kind != TriggerKind::kManual) {
    const uint64_t last = last_accept_ns_.load(std::memory_order_acquire);
    if (last != 0 && now - last < options_.min_interval_ms * 1'000'000ull) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      telemetry_->Registry().GetCounter("flight.suppressed")->Add();
      return false;
    }
  }
  {
    std::scoped_lock lock(mu_);
    if (queue_.size() >= 4) {  // writer is hopelessly behind; shed
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      telemetry_->Registry().GetCounter("flight.suppressed")->Add();
      return false;
    }
    queue_.push_back(Pending{kind, std::move(detail)});
  }
  last_accept_ns_.store(now, std::memory_order_release);
  cv_.notify_one();
  return true;
}

void FlightRecorder::Loop() {
  for (;;) {
    Pending item;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_requested_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    auto result = WriteBundleNow(item.kind, item.detail);
    if (!result.ok()) {
      DLB_WARN << "flight recorder: bundle write failed: "
               << result.status().message();
    }
  }
}

std::string FlightRecorder::ManifestJson(TriggerKind kind,
                                         const std::string& detail,
                                         uint64_t wall_ms,
                                         const std::string& name) const {
  std::ostringstream os;
  os << "{\"format_version\":1,\"bundle\":\"" << name << "\",\"trigger\":\""
     << TriggerName(kind) << "\",\"detail\":";
  AppendJsonString(os, detail);
  os << ",\"wall_ms\":" << wall_ms << ",\"ts_ns\":" << telemetry::NowNs()
     << ",\"buildinfo\":" << BuildInfoJson() << "}";
  return os.str();
}

Result<std::string> FlightRecorder::WriteBundleNow(TriggerKind kind,
                                                   const std::string& detail) {
  const uint64_t wall_ms = WallMs();
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  const std::string name = "bundle-" + std::to_string(wall_ms) + "-" +
                           std::to_string(seq) + "-" + TriggerName(kind);

  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  const fs::path final_dir = fs::path(options_.dir) / name;
  const fs::path tmp_dir = fs::path(options_.dir) / ("." + name + ".tmp");
  fs::remove_all(tmp_dir, ec);
  fs::create_directories(tmp_dir, ec);
  if (ec) {
    return Internal("cannot create bundle dir " + tmp_dir.string() + ": " +
                    ec.message());
  }

  DLB_RETURN_IF_ERROR(WriteFile(tmp_dir / "manifest.json",
                                ManifestJson(kind, detail, wall_ms, name)));
  if (telemetry::Tracer* tracer = telemetry_->tracer()) {
    std::vector<telemetry::TraceSpan> spans;
    if (options_.trace_window_ms > 0) {
      const uint64_t now = telemetry::NowNs();
      const uint64_t window = options_.trace_window_ms * 1'000'000ull;
      spans = tracer->SpansSince(now > window ? now - window : 0);
    } else {
      spans = tracer->Spans();
    }
    DLB_RETURN_IF_ERROR(WriteFile(
        tmp_dir / "trace.json", telemetry::TraceExporter::ToChromeJson(spans)));
  }
  if (telemetry::EventLog* events = telemetry_->events()) {
    std::string tail;
    for (const telemetry::Event& e : events->Tail(options_.event_tail)) {
      tail += telemetry::EventLog::RenderJson(e);
      tail += "\n";
    }
    DLB_RETURN_IF_ERROR(WriteFile(tmp_dir / "events.jsonl", tail));
  }
  DLB_RETURN_IF_ERROR(WriteFile(tmp_dir / "metrics.json",
                                telemetry_->Registry().ReportJson()));
  if (sampler_ != nullptr) {
    DLB_RETURN_IF_ERROR(
        WriteFile(tmp_dir / "series.json", sampler_->Json(true)));
  }
  if (options_.profile_ms > 0) {
    // Blocking capture on the writer thread: the breach is still live when
    // the trigger fires, so the window profiles the anomaly itself.
    const auto report = prof::Profiler::ProfileFor(
        options_.profile_ms, prof::ProfilerOptions{},
        &telemetry_->Registry());
    DLB_RETURN_IF_ERROR(WriteFile(tmp_dir / "profile.json", report.Json()));
  }
  if (topology_) {
    DLB_RETURN_IF_ERROR(WriteFile(tmp_dir / "topology.txt", topology_()));
  }
  if (stats_) {
    DLB_RETURN_IF_ERROR(WriteFile(tmp_dir / "stats.json", stats_()));
  }

  fs::rename(tmp_dir, final_dir, ec);
  if (ec) {
    return Internal("cannot publish bundle " + final_dir.string() + ": " +
                    ec.message());
  }
  written_.fetch_add(1, std::memory_order_relaxed);
  telemetry_->Registry().GetCounter("flight.bundles")->Add();
  if (telemetry::EventLog* events = telemetry_->events()) {
    events->Log(telemetry::EventType::kBundleWritten, 0,
                static_cast<uint64_t>(kind));
  }
  EnforceRetention();
  return final_dir.string();
}

std::vector<BundleInfo> FlightRecorder::Bundles() const {
  std::vector<BundleInfo> out;
  std::error_code ec;
  fs::directory_iterator it(options_.dir, ec);
  if (ec) return out;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_directory(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("bundle-", 0) != 0) continue;
    out.push_back(BundleInfo{name, entry.path().string()});
  }
  std::sort(out.begin(), out.end(),
            [](const BundleInfo& a, const BundleInfo& b) {
              return a.name < b.name;
            });
  return out;
}

void FlightRecorder::EnforceRetention() {
  std::vector<BundleInfo> bundles = Bundles();
  std::error_code ec;
  while (bundles.size() > options_.max_bundles) {
    fs::remove_all(bundles.front().path, ec);
    bundles.erase(bundles.begin());
  }
}

std::string FlightRecorder::ListJson() const {
  std::ostringstream os;
  os << "{\"enabled\":true,\"dir\":";
  AppendJsonString(os, options_.dir);
  os << ",\"written\":" << BundlesWritten()
     << ",\"suppressed\":" << TriggersSuppressed() << ",\"bundles\":[";
  bool first = true;
  for (const BundleInfo& b : Bundles()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << b.name << "\",\"manifest\":";
    // Embed the bundle's own manifest verbatim — it is valid JSON by
    // construction, and re-parsing it here would only re-serialise it.
    std::string manifest = "null";
    if (std::FILE* f = std::fopen((fs::path(b.path) / "manifest.json").c_str(),
                                  "r")) {
      char buf[4096];
      std::string body;
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
      std::fclose(f);
      if (!body.empty()) manifest = std::move(body);
    }
    os << manifest << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace dlb::flight
