// Flight recorder: anomaly-triggered black-box capture.
//
// Export-on-shutdown tracing answers "what happened over the whole run";
// an SLO breach at 03:12 needs "what happened in the last ten seconds",
// captured *at 03:12*, with nobody watching. The recorder leans on the
// telemetry substrate's always-on retained rings — the tracer's span ring,
// the event log, the sampler's time-series — and adds a trigger bus: when
// an objective starts burning, the watchdog fires, the fault plane
// exhausts its retries or quarantines a way, or an operator POSTs
// /debug/dump, a background writer atomically materialises a bundle
// directory:
//
//   <dir>/bundle-<wall_ms>-<seq>-<trigger>/
//     manifest.json   trigger kind + detail, timestamps, build provenance
//     trace.json      Perfetto trace of the breach window (SpansSince)
//     events.jsonl    structured event tail
//     metrics.json    full MetricRegistry snapshot
//     series.json     sampler time-series rings (when attached)
//     profile.json    auto-captured dlb::prof sampling profile
//     topology.txt    backend Describe() (when wired)
//     stats.json      pipeline StatsJson() (when wired)
//
// Bundles are written to a dotted temp dir and renamed into place, so a
// reader never sees a half-written bundle. Automated triggers are
// rate-limited (min_interval_ms) and retention-capped (max_bundles, oldest
// deleted); manual triggers bypass the rate limit but not retention.
// Triggering is enqueue-and-return — the hot path and the watchdog thread
// never block on file I/O or the profile window.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "telemetry/metrics_sampler.h"
#include "telemetry/telemetry.h"

namespace dlb::flight {

/// Who pulled the trigger. Stable ordinals: event-log records carry them.
enum class TriggerKind : uint8_t {
  kManual = 0,      // POST /debug/dump or a direct call
  kSloBreach,       // an SLO objective entered burning
  kWatchdogStall,   // the stall watchdog fired
  kRetryExhausted,  // hostbridge gave up retrying a slot
  kQuarantine,      // an FPGA way was latched dead
  kOverloadShed,    // the front door entered load shedding
};
inline constexpr int kNumTriggerKinds = 6;

const char* TriggerName(TriggerKind kind);

struct FlightOptions {
  /// Bundle root directory (created on demand). Must be non-empty.
  std::string dir;
  /// Bundles retained; the oldest is deleted when the cap is exceeded.
  size_t max_bundles = 8;
  /// Minimum spacing between automated bundles. A fault storm that trips
  /// ten triggers a second still produces one bundle per interval.
  uint64_t min_interval_ms = 5000;
  /// Auto-captured profile window per bundle (0 = skip the profile).
  uint64_t profile_ms = 200;
  /// Events included in the bundle's tail.
  size_t event_tail = 256;
  /// Trace window: spans that ended in the last this-many ms make the
  /// bundle (0 = everything resident in the ring).
  uint64_t trace_window_ms = 10'000;
};

struct BundleInfo {
  std::string name;  // directory name, "bundle-<wall_ms>-<seq>-<trigger>"
  std::string path;  // full path
};

class FlightRecorder {
 public:
  /// `telemetry` must outlive the recorder.
  FlightRecorder(telemetry::Telemetry* telemetry, FlightOptions options);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Wire the sampler whose rings land in series.json. Call before Start().
  void AttachSampler(telemetry::MetricsSampler* sampler);
  /// Optional bundle extras. Call before Start(); invoked from the writer
  /// thread, so providers must be thread-safe snapshot APIs.
  void SetTopologyProvider(std::function<std::string()> provider);
  void SetStatsProvider(std::function<std::string()> provider);

  /// Launch / stop the writer thread. Stop() drains queued triggers first,
  /// so a breach just before shutdown still lands on disk. Idempotent.
  void Start();
  void Stop();

  /// Request a bundle. Returns true when accepted (the writer thread will
  /// materialise it), false when suppressed — recorder not running, rate
  /// limit, or queue full. Automated kinds are rate-limited; kManual is
  /// not. Never blocks on I/O.
  bool Trigger(TriggerKind kind, std::string detail);

  /// Write a bundle synchronously on the calling thread (the /debug/dump
  /// POST path and the deterministic test seam — no rate limit). Returns
  /// the bundle path.
  Result<std::string> WriteBundleNow(TriggerKind kind,
                                     const std::string& detail);

  /// Bundles currently on disk, oldest first.
  std::vector<BundleInfo> Bundles() const;

  /// The GET /debug/dump body: {"enabled":true,"dir":…,"bundles":[
  /// {"name":…,"manifest":{…}},…]} with each bundle's manifest embedded.
  std::string ListJson() const;

  uint64_t BundlesWritten() const {
    return written_.load(std::memory_order_relaxed);
  }
  uint64_t TriggersSuppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }
  const FlightOptions& Options() const { return options_; }

 private:
  struct Pending {
    TriggerKind kind = TriggerKind::kManual;
    std::string detail;
  };

  void Loop();
  void EnforceRetention();
  std::string ManifestJson(TriggerKind kind, const std::string& detail,
                           uint64_t wall_ms, const std::string& name) const;

  telemetry::Telemetry* telemetry_;
  FlightOptions options_;
  telemetry::MetricsSampler* sampler_ = nullptr;
  std::function<std::string()> topology_;
  std::function<std::string()> stats_;

  std::atomic<bool> running_{false};
  std::atomic<uint64_t> written_{0};
  std::atomic<uint64_t> suppressed_{0};
  std::atomic<uint64_t> last_accept_ns_{0};
  std::atomic<uint64_t> seq_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace dlb::flight
