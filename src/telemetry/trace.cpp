#include "telemetry/trace.h"

#include <algorithm>
#include <sstream>

namespace dlb::telemetry {

namespace {

/// Trace ids are global so two pipelines in one process never collide.
uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// In-flight bookkeeping is bounded: a producer that mints batches which
/// are never ended (a backend used without a consuming Pipeline) must not
/// leak; past this size the oldest entry is dropped on admission.
constexpr size_t kMaxInFlight = 4096;

}  // namespace

const char* SubsystemName(Subsystem subsystem) {
  switch (subsystem) {
    case Subsystem::kCore:
      return "core";
    case Subsystem::kFpga:
      return "fpga";
    case Subsystem::kHostbridge:
      return "hostbridge";
    case Subsystem::kBackend:
      return "backend";
  }
  return "unknown";
}

Tracer::Tracer(size_t span_capacity)
    : trace_id_(NextTraceId()), ring_(span_capacity) {}

TraceContext Tracer::StartBatch() {
  TraceContext ctx;
  ctx.trace_id = trace_id_;
  ctx.batch_id = next_batch_.fetch_add(1, std::memory_order_relaxed);
  ctx.parent_span = next_span_.fetch_add(1, std::memory_order_relaxed);
  InFlight entry;
  entry.batch_id = ctx.batch_id;
  entry.root_span = ctx.parent_span;
  entry.start_ns = NowNs();
  std::scoped_lock lock(inflight_mu_);
  if (inflight_.size() >= kMaxInFlight) inflight_.erase(inflight_.begin());
  inflight_.emplace(ctx.batch_id, entry);
  return ctx;
}

uint64_t Tracer::RecordSpan(const TraceContext& ctx, Stage stage,
                            Subsystem subsystem, uint32_t tid,
                            uint64_t start_ns, uint64_t end_ns,
                            uint64_t items) {
  if (!ctx.Enabled()) return 0;
  if (end_ns < start_ns) end_ns = start_ns;
  TraceSpan span;
  span.trace_id = ctx.trace_id;
  span.batch_id = ctx.batch_id;
  span.span_id = next_span_.fetch_add(1, std::memory_order_relaxed);
  span.parent_span = ctx.parent_span;
  span.stage = stage;
  span.subsystem = subsystem;
  span.tid = tid;
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  span.items = items;
  ring_.Push(span);
  return span.span_id;
}

void Tracer::EndBatch(const TraceContext& ctx, uint64_t items) {
  if (!ctx.Enabled()) return;
  uint64_t start_ns = 0;
  {
    std::scoped_lock lock(inflight_mu_);
    auto it = inflight_.find(ctx.batch_id);
    if (it == inflight_.end()) return;  // already ended/abandoned (or evicted)
    start_ns = it->second.start_ns;
    inflight_.erase(it);
  }
  TraceSpan root;
  root.trace_id = ctx.trace_id;
  root.batch_id = ctx.batch_id;
  // Producers stamp batch payloads with the *root* context (never a Child),
  // so ctx.parent_span carries the root span id minted at StartBatch.
  root.span_id = ctx.parent_span;
  root.parent_span = 0;
  root.root = true;
  root.stage = Stage::kConsume;  // nominal; exporters label roots "batch"
  root.subsystem = Subsystem::kCore;
  root.start_ns = start_ns;
  root.end_ns = NowNs();
  root.items = items;
  ring_.Push(root);
  completed_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::AbandonBatch(const TraceContext& ctx) {
  if (!ctx.Enabled()) return;
  std::scoped_lock lock(inflight_mu_);
  if (inflight_.erase(ctx.batch_id) > 0) {
    abandoned_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<Tracer::InFlight> Tracer::InFlightBatches() const {
  std::scoped_lock lock(inflight_mu_);
  std::vector<InFlight> out;
  out.reserve(inflight_.size());
  for (const auto& [id, entry] : inflight_) out.push_back(entry);
  return out;
}

std::string RenderSpanTree(const std::vector<TraceSpan>& spans,
                           uint64_t batch_id) {
  std::vector<const TraceSpan*> batch;
  for (const TraceSpan& s : spans) {
    if (s.batch_id == batch_id) batch.push_back(&s);
  }
  std::stable_sort(batch.begin(), batch.end(),
                   [](const TraceSpan* a, const TraceSpan* b) {
                     return a->start_ns < b->start_ns;
                   });
  // Depth = length of the parent chain among resident spans.
  std::map<uint64_t, const TraceSpan*> by_id;
  for (const TraceSpan* s : batch) by_id[s->span_id] = s;
  std::ostringstream os;
  os << "batch " << batch_id << " (" << batch.size() << " spans)\n";
  for (const TraceSpan* s : batch) {
    int depth = 0;
    uint64_t parent = s->parent_span;
    while (parent != 0 && depth < 8) {
      auto it = by_id.find(parent);
      if (it == by_id.end()) break;  // orphan tail: attach under the root
      ++depth;
      parent = it->second->parent_span;
    }
    os << "  ";
    for (int i = 0; i < depth; ++i) os << "  ";
    os << (s->root ? "batch" : StageName(s->stage)) << " ["
       << SubsystemName(s->subsystem) << "/t" << s->tid << "] "
       << s->DurationNs() / 1000 << "us x" << s->items << " span="
       << s->span_id << (s->parent_span ? "" : " (root)") << "\n";
  }
  return os.str();
}

}  // namespace dlb::telemetry
