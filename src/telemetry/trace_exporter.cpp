#include "telemetry/trace_exporter.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

namespace dlb::telemetry {

namespace {

// Perfetto pids: subsystem ordinal + 1 (pid 0 renders poorly).
int PidOf(Subsystem subsystem) { return static_cast<int>(subsystem) + 1; }

// Microsecond timestamps with sub-us precision preserved (trace_event "ts"
// is in us; fractional values are legal and keep ns resolution).
std::string Us(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buf;
}

void AppendCommonArgs(std::ostringstream& os, const TraceSpan& span) {
  os << "\"args\":{\"trace\":" << span.trace_id << ",\"batch\":"
     << span.batch_id << ",\"span\":" << span.span_id << ",\"parent\":"
     << span.parent_span << ",\"items\":" << span.items << "}";
}

}  // namespace

std::string TraceExporter::ToChromeJson(const Tracer& tracer) {
  return ToChromeJson(tracer.Spans());
}

std::string TraceExporter::ToChromeJson(const std::vector<TraceSpan>& spans) {
  uint64_t epoch = UINT64_MAX;
  for (const TraceSpan& s : spans) epoch = std::min(epoch, s.start_ns);
  if (epoch == UINT64_MAX) epoch = 0;

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };

  // Process-name metadata for every subsystem that recorded, plus thread
  // names for every (subsystem, tid) lane.
  std::set<int> pids;
  std::set<std::pair<int, uint32_t>> tids;
  for (const TraceSpan& s : spans) {
    pids.insert(PidOf(s.subsystem));
    tids.insert({PidOf(s.subsystem), s.tid});
  }
  for (int pid : pids) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\""
       << SubsystemName(static_cast<Subsystem>(pid - 1)) << "\"}}";
  }
  for (const auto& [pid, tid] : tids) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
       << SubsystemName(static_cast<Subsystem>(pid - 1)) << "-t" << tid
       << "\"}}";
  }

  for (const TraceSpan& s : spans) {
    const uint64_t start = s.start_ns - epoch;
    const uint64_t end = s.end_ns > epoch ? s.end_ns - epoch : start;
    if (s.root) {
      // Async begin/end pair: batch lifetimes overlap, and async tracks are
      // the trace_event idiom for overlapping intervals.
      sep();
      os << "{\"ph\":\"b\",\"cat\":\"batch\",\"name\":\"batch\",\"id\":"
         << s.batch_id << ",\"pid\":" << PidOf(s.subsystem)
         << ",\"tid\":" << s.tid << ",\"ts\":" << Us(start) << ",";
      AppendCommonArgs(os, s);
      os << "}";
      sep();
      os << "{\"ph\":\"e\",\"cat\":\"batch\",\"name\":\"batch\",\"id\":"
         << s.batch_id << ",\"pid\":" << PidOf(s.subsystem)
         << ",\"tid\":" << s.tid << ",\"ts\":" << Us(end) << "}";
      continue;
    }
    sep();
    os << "{\"ph\":\"X\",\"cat\":\"" << SubsystemName(s.subsystem)
       << "\",\"name\":\"" << StageName(s.stage) << "\",\"pid\":"
       << PidOf(s.subsystem) << ",\"tid\":" << s.tid << ",\"ts\":"
       << Us(start) << ",\"dur\":" << Us(end - start) << ",";
    AppendCommonArgs(os, s);
    os << "}";
  }
  os << "]}";
  return os.str();
}

Status TraceExporter::WriteChromeJson(const Tracer& tracer,
                                      const std::string& path) {
  const std::string body = ToChromeJson(tracer);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Internal("cannot open trace sink: " + path);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return Internal("short write to trace sink: " + path);
  }
  return Status::Ok();
}

}  // namespace dlb::telemetry
