// Per-stage telemetry: the observability layer under Pipeline::Stats().
//
// DLBooster's argument is about *where time goes* — decode on the FPGA vs
// the CPU, copy granularity, dispatcher hand-off — so every backend records
// spans against a fixed stage taxonomy:
//
//   fetch    pull encoded bytes from the source (disk, NIC queue, DB)
//   decode   entropy decode + iDCT + colour reconstruction
//   resize   resizer unit / software resize + staging DMA
//   collect  batch assembly (slot packing, completion collection)
//   dispatch hand-off to a compute engine (H2D copy, queue push)
//   consume  engine-side wait for the next batch
//
// Two sinks receive every span: a per-stage StageMetrics (Counter +
// Histogram from common/stats.h — cheap enough for per-image recording)
// and a fixed-capacity lock-free SpanRing holding the most recent raw
// records for timeline-style inspection. A null Telemetry* disables
// recording everywhere; ScopedSpan makes the instrumented code read like
// plain RAII.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"

namespace dlb::telemetry {

/// The canonical pipeline stages, in dataflow order.
enum class Stage : int {
  kFetch = 0,
  kDecode,
  kResize,
  kCollect,
  kDispatch,
  kConsume,
};

inline constexpr int kNumStages = 6;

/// Stable lowercase stage name ("fetch", "decode", ...).
const char* StageName(Stage stage);

/// Monotonic wall-clock in nanoseconds (steady_clock).
uint64_t NowNs();

/// One recorded span. `seq` is the global record ordinal the ring assigns,
/// so consumers can detect drops (seq gaps) and order records.
struct SpanRecord {
  Stage stage = Stage::kFetch;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint64_t items = 0;
  uint64_t seq = 0;

  uint64_t DurationNs() const { return end_ns - start_ns; }
};

/// Fixed-capacity lock-free ring of the most recent span records.
//
// Writers claim a slot with one fetch_add and publish with a per-slot
// version word (seqlock); no writer ever blocks on a reader or another
// writer. Snapshot() copies whatever is resident, skipping slots that are
// mid-write — readers get a consistent view of each record, not of the
// whole ring, which is the right trade for a diagnostics buffer.
class SpanRing {
 public:
  /// `capacity` is rounded up to a power of two (min 2).
  explicit SpanRing(size_t capacity = 4096);

  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  /// Record a span; assigns and returns its global sequence number.
  uint64_t Push(SpanRecord record);

  /// Records still resident, oldest first. Slots being written concurrently
  /// are skipped.
  std::vector<SpanRecord> Snapshot() const;

  /// Total spans ever pushed (>= Snapshot().size()).
  uint64_t TotalRecorded() const {
    return cursor_.load(std::memory_order_acquire);
  }

  size_t Capacity() const { return slots_.size(); }

 private:
  struct Slot {
    /// Even = stable, odd = write in progress. Version v publishes the
    /// record pushed with sequence (v/2 - 1) modulo capacity laps.
    std::atomic<uint64_t> version{0};
    SpanRecord record;
  };

  std::vector<Slot> slots_;
  std::atomic<uint64_t> cursor_{0};
};

/// Point-in-time view of one stage's metrics, the unit Pipeline::Stats()
/// returns per stage.
struct StageSnapshot {
  Stage stage = Stage::kFetch;
  std::string name;
  uint64_t ops = 0;       // spans recorded
  uint64_t items = 0;     // samples covered by those spans
  uint64_t busy_ns = 0;   // sum of span durations
  double mean_ns = 0.0;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
};

/// Per-stage aggregation built on the registry's Counter/Histogram
/// primitives, so the same numbers surface in MetricRegistry::Report()
/// and its JSON export under "stage.<name>.{ops,items,latency_ns}".
class StageMetrics {
 public:
  StageMetrics(Stage stage, MetricRegistry* registry);

  void Record(uint64_t duration_ns, uint64_t items = 1);

  StageSnapshot Snapshot() const;
  Stage ForStage() const { return stage_; }

 private:
  Stage stage_;
  Counter* ops_;
  Counter* items_;
  Histogram* latency_;
};

/// The per-pipeline telemetry hub: one MetricRegistry, one SpanRing, one
/// StageMetrics per stage. Components hold a Telemetry* (possibly null)
/// and record through it; the Pipeline owns the instance and exposes
/// snapshots through its redesigned Stats() API.
class Telemetry {
 public:
  explicit Telemetry(size_t span_capacity = 4096);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  StageMetrics& Get(Stage stage) {
    return *stages_[static_cast<int>(stage)];
  }
  const StageMetrics& Get(Stage stage) const {
    return *stages_[static_cast<int>(stage)];
  }

  /// Record one span into both sinks (stage histogram + ring).
  void RecordSpan(Stage stage, uint64_t start_ns, uint64_t end_ns,
                  uint64_t items = 1);

  /// Snapshots for all six stages, in dataflow order.
  std::vector<StageSnapshot> SnapshotStages() const;

  MetricRegistry& Registry() { return registry_; }
  const MetricRegistry& Registry() const { return registry_; }
  SpanRing& Spans() { return spans_; }
  const SpanRing& Spans() const { return spans_; }

 private:
  MetricRegistry registry_;
  SpanRing spans_;
  std::array<std::unique_ptr<StageMetrics>, kNumStages> stages_;
};

/// RAII span: starts timing at construction, records at destruction.
/// A null telemetry pointer makes every operation a no-op, so call sites
/// need no branching.
class ScopedSpan {
 public:
  ScopedSpan(Telemetry* telemetry, Stage stage, uint64_t items = 1)
      : telemetry_(telemetry),
        stage_(stage),
        items_(items),
        start_ns_(telemetry ? NowNs() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (telemetry_ != nullptr) {
      telemetry_->RecordSpan(stage_, start_ns_, NowNs(), items_);
    }
  }

  /// Adjust the item count before the span closes (e.g. once the batch
  /// size pulled is known).
  void SetItems(uint64_t items) { items_ = items; }

  /// Drop the span (e.g. the guarded operation hit end-of-stream).
  void Cancel() { telemetry_ = nullptr; }

 private:
  Telemetry* telemetry_;
  Stage stage_;
  uint64_t items_;
  uint64_t start_ns_;
};

}  // namespace dlb::telemetry
