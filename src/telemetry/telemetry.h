// Per-stage telemetry: the observability layer under Pipeline::Stats().
//
// DLBooster's argument is about *where time goes* — decode on the FPGA vs
// the CPU, copy granularity, dispatcher hand-off — so every backend records
// spans against a fixed stage taxonomy:
//
//   fetch    pull encoded bytes from the source (disk, NIC queue, DB)
//   decode   entropy decode + iDCT + colour reconstruction
//   resize   resizer unit / software resize + staging DMA
//   collect  batch assembly (slot packing, completion collection)
//   dispatch hand-off to a compute engine (H2D copy, queue push)
//   consume  engine-side wait for the next batch
//
// Two sinks receive every span: a per-stage StageMetrics (Counter +
// Histogram from common/stats.h — cheap enough for per-image recording)
// and a fixed-capacity lock-free SpanRing holding the most recent raw
// records for timeline-style inspection. A null Telemetry* disables
// recording everywhere; ScopedSpan makes the instrumented code read like
// plain RAII.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/stats.h"
#include "telemetry/stage_tag.h"

namespace dlb::flight {
class FlightRecorder;
}  // namespace dlb::flight

namespace dlb::telemetry {

/// The canonical pipeline stages, in dataflow order.
enum class Stage : int {
  kFetch = 0,
  kDecode,
  kResize,
  kCollect,
  kDispatch,
  kConsume,
};

inline constexpr int kNumStages = 6;

/// Stable lowercase stage name ("fetch", "decode", ...).
const char* StageName(Stage stage);

/// Sentinel for "no on-CPU measurement for this span". Cross-thread and
/// cross-unit spans (e.g. the FPGA-sim decode span, which brackets
/// submit→complete across worker threads) pass this: their duration is real
/// wall time but no single thread's CPU clock covers it.
inline constexpr uint64_t kCpuUnknown = ~uint64_t{0};

/// Monotonic wall-clock in nanoseconds (steady_clock).
uint64_t NowNs();

/// One recorded span. `seq` is the global record ordinal the ring assigns,
/// so consumers can detect drops (seq gaps) and order records.
struct SpanRecord {
  Stage stage = Stage::kFetch;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint64_t items = 0;
  uint64_t seq = 0;

  uint64_t DurationNs() const { return end_ns - start_ns; }
};

namespace internal {
inline size_t RingCapacity(size_t capacity) {
  size_t c = 2;
  while (c < capacity) c <<= 1;
  return c;
}
}  // namespace internal

/// Fixed-capacity lock-free ring of the most recent records of type T.
//
// Writers claim a slot with one fetch_add and publish with a per-slot
// version word (seqlock) that encodes the owning sequence number; the
// newest lap always wins, so a writer lapped before it could store simply
// drops its (already superseded) record. Writers never block on readers;
// a writer may briefly spin while an older in-flight write on the same
// slot drains. Snapshot() copies whatever is resident, skipping slots that
// are mid-write — readers get a consistent view of each record, not of
// the whole ring, which is the right trade for a diagnostics buffer.
//
// T must be trivially copyable (payloads move through the slot as relaxed
// atomic words, so a torn copy is well-defined and the seqlock discards it)
// and carry a `uint64_t seq` field the ring assigns on push. Shared by the
// span ring, the batch tracer and the structured event log.
template <typename T>
class SeqlockRing {
 public:
  /// `capacity` is rounded up to a power of two (min 2).
  explicit SeqlockRing(size_t capacity = 4096)
      : slots_(internal::RingCapacity(capacity)) {}

  SeqlockRing(const SeqlockRing&) = delete;
  SeqlockRing& operator=(const SeqlockRing&) = delete;

  /// Record an entry; assigns and returns its global sequence number.
  uint64_t Push(T record) {
    const uint64_t seq = cursor_.fetch_add(1, std::memory_order_acq_rel);
    record.seq = seq;
    Slot& slot = slots_[seq & (slots_.size() - 1)];
    // Seqlock write: CAS the version word to odd-with-our-seq, store the
    // payload, then publish even-with-our-seq. The seq embedded in the
    // version word resolves lap races deterministically: if a newer lap
    // already owns (or is writing) the slot, this record is superseded and
    // dropped; if an older write is still in flight, spin briefly until it
    // publishes. Readers validate the version word around the copy and the
    // embedded seq after it, so a torn read is never returned — at worst
    // the slot is skipped in that snapshot. The release fence keeps the
    // odd store ahead of the payload words.
    const uint64_t claimed = Slot::Owner(seq) | 1;
    uint64_t cur = slot.version.load(std::memory_order_relaxed);
    for (;;) {
      if (cur > claimed) return seq;  // a newer lap owns this slot
      if (cur & 1) {  // older write in flight; wait for it to publish
        cur = slot.version.load(std::memory_order_relaxed);
        continue;
      }
      if (slot.version.compare_exchange_weak(cur, claimed,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
        break;
      }
    }
    std::atomic_thread_fence(std::memory_order_release);
    slot.Store(record);
    slot.version.store(Slot::Owner(seq), std::memory_order_release);
    return seq;
  }

  /// Records still resident, oldest first. Slots being written concurrently
  /// are skipped.
  std::vector<T> Snapshot() const {
    const uint64_t end = cursor_.load(std::memory_order_acquire);
    const uint64_t count =
        end < slots_.size() ? end : static_cast<uint64_t>(slots_.size());
    std::vector<T> out;
    out.reserve(count);
    for (uint64_t seq = end - count; seq < end; ++seq) {
      const Slot& slot = slots_[seq & (slots_.size() - 1)];
      const uint64_t before = slot.version.load(std::memory_order_acquire);
      if (before & 1) continue;  // mid-write
      T copy = slot.Load();
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.version.load(std::memory_order_relaxed) != before) continue;
      if (copy.seq != seq) continue;  // already overwritten by a newer lap
      out.push_back(copy);
    }
    return out;
  }

  /// Total entries ever pushed (>= Snapshot().size()).
  uint64_t TotalRecorded() const {
    return cursor_.load(std::memory_order_acquire);
  }

  size_t Capacity() const { return slots_.size(); }

 private:
  struct Slot {
    static_assert(std::is_trivially_copyable_v<T>,
                  "SeqlockRing payloads are copied word-by-word");
    static constexpr size_t kWords = (sizeof(T) + 7) / 8;

    /// Owner(seq) of the record resident in the slot; the low bit marks a
    /// write in progress. 0 = never written. Monotonic per slot, so lap
    /// races resolve newest-wins.
    std::atomic<uint64_t> version{0};

    /// Version-word encoding of the owning sequence number; +1 keeps the
    /// encoding nonzero so 0 still reads as "empty".
    static constexpr uint64_t Owner(uint64_t seq) { return (seq + 1) << 1; }
    /// Payload, staged as relaxed atomic words: concurrent writers lapping
    /// the same slot stay data-race-free at the language level while the
    /// version word + seq check give record-level consistency.
    std::atomic<uint64_t> words[kWords] = {};

    void Store(const T& record) {
      uint64_t buf[kWords] = {};
      std::memcpy(buf, &record, sizeof(T));
      for (size_t i = 0; i < kWords; ++i)
        words[i].store(buf[i], std::memory_order_relaxed);
    }

    T Load() const {
      uint64_t buf[kWords];
      for (size_t i = 0; i < kWords; ++i)
        buf[i] = words[i].load(std::memory_order_relaxed);
      T out;
      std::memcpy(&out, buf, sizeof(T));
      return out;
    }
  };

  std::vector<Slot> slots_;
  std::atomic<uint64_t> cursor_{0};
};

/// The span ring: most recent raw stage spans, for timeline inspection.
using SpanRing = SeqlockRing<SpanRecord>;

/// Point-in-time view of one stage's metrics, the unit Pipeline::Stats()
/// returns per stage.
struct StageSnapshot {
  Stage stage = Stage::kFetch;
  std::string name;
  uint64_t ops = 0;       // spans recorded
  uint64_t items = 0;     // samples covered by those spans
  uint64_t busy_ns = 0;   // sum of span durations
  uint64_t cpu_ns = 0;    // on-CPU share of busy_ns (spans that measured it)
  uint64_t wait_ns = 0;   // off-CPU share (queue waits, blocking IO)
  double mean_ns = 0.0;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
};

/// Per-stage aggregation built on the registry's Counter/Histogram
/// primitives, so the same numbers surface in MetricRegistry::Report()
/// and its JSON export under "stage.<name>.{ops,items,latency_ns}".
class StageMetrics {
 public:
  StageMetrics(Stage stage, MetricRegistry* registry);

  /// `cpu_ns` is the recording thread's on-CPU time over the span (from
  /// StageTimer / prof::ThreadCpuNs()); it is clamped to `duration_ns`, and
  /// the remainder accrues to the stage's wait counter. kCpuUnknown leaves
  /// both untouched.
  void Record(uint64_t duration_ns, uint64_t items = 1,
              uint64_t cpu_ns = kCpuUnknown);

  StageSnapshot Snapshot() const;
  Stage ForStage() const { return stage_; }

 private:
  Stage stage_;
  Counter* ops_;
  Counter* items_;
  Counter* cpu_;
  Counter* wait_;
  Histogram* latency_;
};

// Forward declarations for the optional tracing/event facilities
// (telemetry/trace.h, telemetry/event_log.h). Keeping them out of this
// header keeps the hot recording path header-light.
class Tracer;
class EventLog;
struct TraceContext;
enum class Subsystem : uint8_t;
enum class EventLevel : uint8_t;

/// Manual span timer for call sites that record explicitly (most backends
/// do: the span's item count or trace parent is only known at the end).
/// Construction pushes the profiler stage tag and snapshots wall + on-CPU
/// clocks; pass the timer to Telemetry::RecordTimed() (or read the clocks
/// yourself) before it goes out of scope. The tag pops at destruction, so
/// keep the timer scoped to exactly the section it measures.
class StageTimer {
 public:
  explicit StageTimer(Stage stage)
      : stage_(stage),
        tag_(static_cast<int>(stage)),
        start_ns_(NowNs()),
        start_cpu_ns_(prof::ThreadCpuNs()) {}

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  Stage ForStage() const { return stage_; }
  uint64_t StartNs() const { return start_ns_; }
  /// On-CPU nanoseconds this thread spent since construction.
  uint64_t CpuNs() const { return prof::ThreadCpuNs() - start_cpu_ns_; }

 private:
  Stage stage_;
  prof::ScopedStageTag tag_;
  uint64_t start_ns_;
  uint64_t start_cpu_ns_;
};

/// The per-pipeline telemetry hub: one MetricRegistry, one SpanRing, one
/// StageMetrics per stage, plus two opt-in facilities — a batch `Tracer`
/// (per-batch causal span trees) and a structured `EventLog`. Components
/// hold a Telemetry* (possibly null) and record through it; the Pipeline
/// owns the instance and exposes snapshots through its Stats() API.
/// Tracing and event logging default to off and cost one null-pointer
/// check when disabled.
class Telemetry {
 public:
  explicit Telemetry(size_t span_capacity = 4096);
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  StageMetrics& Get(Stage stage) {
    return *stages_[static_cast<int>(stage)];
  }
  const StageMetrics& Get(Stage stage) const {
    return *stages_[static_cast<int>(stage)];
  }

  /// Record one span into both sinks (stage histogram + ring). `cpu_ns` is
  /// the recording thread's on-CPU time over the span; pass kCpuUnknown
  /// (default) for spans no single thread computed.
  void RecordSpan(Stage stage, uint64_t start_ns, uint64_t end_ns,
                  uint64_t items = 1, uint64_t cpu_ns = kCpuUnknown);

  /// Record one span into both sinks AND into the batch trace identified by
  /// `ctx` (parented under ctx.parent_span). Returns the trace span id so
  /// causally-dependent follow-up spans can parent to it; 0 when tracing is
  /// off or `ctx` is not live.
  uint64_t RecordSpan(Stage stage, uint64_t start_ns, uint64_t end_ns,
                      uint64_t items, const TraceContext& ctx,
                      Subsystem subsystem, uint32_t tid = 0,
                      uint64_t cpu_ns = kCpuUnknown);

  /// Close a StageTimer: record [timer.StartNs(), now) with the timer's
  /// on-CPU delta. The plain overload feeds the stage sinks; the traced one
  /// also parents a trace span (same contract as the traced RecordSpan).
  void RecordTimed(const StageTimer& timer, uint64_t items = 1);
  uint64_t RecordTimed(const StageTimer& timer, uint64_t items,
                       const TraceContext& ctx, Subsystem subsystem,
                       uint32_t tid = 0);

  /// Snapshots for all six stages, in dataflow order.
  std::vector<StageSnapshot> SnapshotStages() const;

  /// Create the batch tracer (idempotent). Call before any component starts
  /// recording; components pick it up through tracer().
  Tracer* EnableTracing(size_t span_capacity);
  Tracer* EnableTracing();
  /// Null until EnableTracing() — the tracing-off fast path.
  Tracer* tracer() const { return tracer_.get(); }

  /// Create the structured event log (idempotent).
  EventLog* EnableEvents(size_t capacity, EventLevel min_level);
  EventLog* EnableEvents();
  /// Null until EnableEvents().
  EventLog* events() const { return events_.get(); }

  /// Attach the pipeline's flight recorder so deep components (hostbridge
  /// retry exhaustion, FPGA quarantine) can pull its trigger without a
  /// dependency on the pipeline layer. The recorder is owned elsewhere;
  /// null detaches (the recorder detaches itself on destruction).
  void AttachFlightRecorder(flight::FlightRecorder* recorder) {
    flight_.store(recorder, std::memory_order_release);
  }
  /// Null until a recorder is attached — the recorder-off fast path.
  flight::FlightRecorder* flight() const {
    return flight_.load(std::memory_order_acquire);
  }

  MetricRegistry& Registry() { return registry_; }
  const MetricRegistry& Registry() const { return registry_; }
  SpanRing& Spans() { return spans_; }
  const SpanRing& Spans() const { return spans_; }

 private:
  MetricRegistry registry_;
  SpanRing spans_;
  std::array<std::unique_ptr<StageMetrics>, kNumStages> stages_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<EventLog> events_;
  std::atomic<flight::FlightRecorder*> flight_{nullptr};
};

/// RAII span: starts timing at construction, records at destruction.
/// A null telemetry pointer disables recording (the stage tag is still
/// pushed — profiler tagging is always on), so call sites need no
/// branching.
class ScopedSpan {
 public:
  ScopedSpan(Telemetry* telemetry, Stage stage, uint64_t items = 1)
      : telemetry_(telemetry),
        stage_(stage),
        tag_(static_cast<int>(stage)),
        items_(items),
        start_ns_(telemetry ? NowNs() : 0),
        start_cpu_ns_(telemetry ? prof::ThreadCpuNs() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (telemetry_ != nullptr) {
      telemetry_->RecordSpan(stage_, start_ns_, NowNs(), items_,
                             prof::ThreadCpuNs() - start_cpu_ns_);
    }
  }

  /// Adjust the item count before the span closes (e.g. once the batch
  /// size pulled is known).
  void SetItems(uint64_t items) { items_ = items; }

  /// Drop the span (e.g. the guarded operation hit end-of-stream).
  void Cancel() { telemetry_ = nullptr; }

 private:
  Telemetry* telemetry_;
  Stage stage_;
  prof::ScopedStageTag tag_;
  uint64_t items_;
  uint64_t start_ns_;
  uint64_t start_cpu_ns_;
};

}  // namespace dlb::telemetry
