// Geometric and augmentation transforms (crop, flip).
//
// These correspond to the "data augmentation" half of preprocessing that
// DLBooster deliberately leaves OFF the FPGA (§3.1): decode + resize go to
// hardware, augmentation stays on GPU/CPU.
#pragma once

#include "common/rng.h"
#include "image/image.h"

namespace dlb {

/// Extract the [x, x+w) x [y, y+h) sub-image.
Result<Image> Crop(const Image& src, int x, int y, int w, int h);

/// Centre crop of w x h.
Result<Image> CenterCrop(const Image& src, int w, int h);

/// Random crop of w x h with corner chosen uniformly (training augmentation).
Result<Image> RandomCrop(const Image& src, int w, int h, Rng& rng);

/// Mirror horizontally.
Image FlipHorizontal(const Image& src);

/// Flip with probability 0.5 (training augmentation).
Image MaybeFlipHorizontal(const Image& src, Rng& rng);

/// Rotate by a multiple of 90 degrees clockwise (§2.1 lists rotation among
/// the augmentation technologies). `quarter_turns` is taken modulo 4.
Image Rotate90(const Image& src, int quarter_turns);

/// Scale every channel value by `factor` (brightness augmentation),
/// clamping to [0,255].
Image AdjustBrightness(const Image& src, double factor);

/// One random training augmentation pass: random crop to (w, h), maybe
/// flip, brightness jitter in [1-jitter, 1+jitter]. Deterministic per Rng
/// state.
Result<Image> RandomAugment(const Image& src, int w, int h, double jitter,
                            Rng& rng);

}  // namespace dlb
