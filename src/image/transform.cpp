#include "image/transform.h"

#include <cstring>

namespace dlb {

Result<Image> Crop(const Image& src, int x, int y, int w, int h) {
  if (w <= 0 || h <= 0) return InvalidArgument("crop size must be positive");
  if (x < 0 || y < 0 || x + w > src.Width() || y + h > src.Height()) {
    return OutOfRange("crop rectangle outside image");
  }
  const int ch = src.Channels();
  Image dst(w, h, ch);
  for (int row = 0; row < h; ++row) {
    const uint8_t* s = src.Row(y + row) + static_cast<size_t>(x) * ch;
    std::memcpy(dst.Row(row), s, static_cast<size_t>(w) * ch);
  }
  return dst;
}

Result<Image> CenterCrop(const Image& src, int w, int h) {
  if (w > src.Width() || h > src.Height()) {
    return OutOfRange("centre crop larger than image");
  }
  return Crop(src, (src.Width() - w) / 2, (src.Height() - h) / 2, w, h);
}

Result<Image> RandomCrop(const Image& src, int w, int h, Rng& rng) {
  if (w > src.Width() || h > src.Height()) {
    return OutOfRange("random crop larger than image");
  }
  const int max_x = src.Width() - w;
  const int max_y = src.Height() - h;
  const int x = max_x > 0 ? static_cast<int>(rng.UniformU64(max_x + 1)) : 0;
  const int y = max_y > 0 ? static_cast<int>(rng.UniformU64(max_y + 1)) : 0;
  return Crop(src, x, y, w, h);
}

Image FlipHorizontal(const Image& src) {
  const int ch = src.Channels();
  Image dst(src.Width(), src.Height(), ch);
  for (int y = 0; y < src.Height(); ++y) {
    for (int x = 0; x < src.Width(); ++x) {
      for (int c = 0; c < ch; ++c) {
        dst.Set(x, y, c, src.At(src.Width() - 1 - x, y, c));
      }
    }
  }
  return dst;
}

Image MaybeFlipHorizontal(const Image& src, Rng& rng) {
  if (rng.Bernoulli(0.5)) return FlipHorizontal(src);
  return Image(src);
}

Image Rotate90(const Image& src, int quarter_turns) {
  const int turns = ((quarter_turns % 4) + 4) % 4;
  if (turns == 0) return Image(src);
  const int ch = src.Channels();
  const bool swap = turns % 2 == 1;
  Image dst(swap ? src.Height() : src.Width(),
            swap ? src.Width() : src.Height(), ch);
  for (int y = 0; y < src.Height(); ++y) {
    for (int x = 0; x < src.Width(); ++x) {
      int dx = 0, dy = 0;
      switch (turns) {
        case 1:  // 90 degrees clockwise
          dx = src.Height() - 1 - y;
          dy = x;
          break;
        case 2:
          dx = src.Width() - 1 - x;
          dy = src.Height() - 1 - y;
          break;
        case 3:  // 270 degrees clockwise
          dx = y;
          dy = src.Width() - 1 - x;
          break;
      }
      for (int c = 0; c < ch; ++c) dst.Set(dx, dy, c, src.At(x, y, c));
    }
  }
  return dst;
}

Image AdjustBrightness(const Image& src, double factor) {
  Image dst(src.Width(), src.Height(), src.Channels());
  const uint8_t* in = src.Data();
  uint8_t* out = dst.Data();
  for (size_t i = 0; i < src.SizeBytes(); ++i) {
    const double v = in[i] * factor;
    out[i] = static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v + 0.5));
  }
  return dst;
}

Result<Image> RandomAugment(const Image& src, int w, int h, double jitter,
                            Rng& rng) {
  auto cropped = RandomCrop(src, w, h, rng);
  if (!cropped.ok()) return cropped.status();
  Image out = MaybeFlipHorizontal(cropped.value(), rng);
  if (jitter > 0.0) {
    out = AdjustBrightness(out, rng.UniformDouble(1.0 - jitter, 1.0 + jitter));
  }
  return out;
}

}  // namespace dlb
