#include "image/tensor.h"

namespace dlb {

Status ImageToTensor(const Image& img, const Normalization& norm, Tensor* dst,
                     int n) {
  if (img.Channels() != dst->c || img.Height() != dst->h ||
      img.Width() != dst->w) {
    return InvalidArgument("image shape does not match tensor");
  }
  if (n < 0 || n >= dst->n) return OutOfRange("batch index out of range");
  for (int c = 0; c < dst->c; ++c) {
    const float mean = norm.mean[c % 3];
    const float inv_std = 1.0f / norm.stddev[c % 3];
    for (int y = 0; y < dst->h; ++y) {
      for (int x = 0; x < dst->w; ++x) {
        dst->At(n, c, y, x) =
            (static_cast<float>(img.At(x, y, c)) - mean) * inv_std;
      }
    }
  }
  return Status::Ok();
}

Result<Tensor> BatchToTensor(const std::vector<Image>& batch,
                             const Normalization& norm) {
  if (batch.empty()) return InvalidArgument("empty batch");
  Tensor t;
  t.n = static_cast<int>(batch.size());
  t.c = batch[0].Channels();
  t.h = batch[0].Height();
  t.w = batch[0].Width();
  t.data.assign(t.NumElements(), 0.0f);
  for (size_t i = 0; i < batch.size(); ++i) {
    Status s = ImageToTensor(batch[i], norm, &t, static_cast<int>(i));
    if (!s.ok()) return s;
  }
  return t;
}

}  // namespace dlb
