#include "image/resize.h"

#include "common/simd.h"
#include "image/transform.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

namespace dlb {

namespace detail {

// Seed reference implementations, kept compiled in as the oracle for the
// row-pointer kernels below (golden/resize tests assert byte-identity) and
// as the kReference kernel-mode path.

// Fixed-point bilinear with 16-bit fractional weights. Deterministic across
// platforms (no float rounding differences).
Image ResizeBilinearReference(const Image& src, int out_w, int out_h) {
  const int ch = src.Channels();
  Image dst(out_w, out_h, ch);
  constexpr int kShift = 16;
  constexpr int64_t kOne = 1ll << kShift;
  // Scale factors in fixed point; use the pixel-centre convention.
  const int64_t sx = (static_cast<int64_t>(src.Width()) << kShift) / out_w;
  const int64_t sy = (static_cast<int64_t>(src.Height()) << kShift) / out_h;
  for (int y = 0; y < out_h; ++y) {
    int64_t fy = (y * sy) + (sy >> 1) - (kOne >> 1);
    fy = std::clamp<int64_t>(fy, 0, (static_cast<int64_t>(src.Height() - 1)) << kShift);
    const int y0 = static_cast<int>(fy >> kShift);
    const int y1 = std::min(y0 + 1, src.Height() - 1);
    const int64_t wy = fy & (kOne - 1);
    for (int x = 0; x < out_w; ++x) {
      int64_t fx = (x * sx) + (sx >> 1) - (kOne >> 1);
      fx = std::clamp<int64_t>(fx, 0,
                               (static_cast<int64_t>(src.Width() - 1)) << kShift);
      const int x0 = static_cast<int>(fx >> kShift);
      const int x1 = std::min(x0 + 1, src.Width() - 1);
      const int64_t wx = fx & (kOne - 1);
      for (int c = 0; c < ch; ++c) {
        const int64_t p00 = src.At(x0, y0, c);
        const int64_t p01 = src.At(x1, y0, c);
        const int64_t p10 = src.At(x0, y1, c);
        const int64_t p11 = src.At(x1, y1, c);
        const int64_t top = p00 * (kOne - wx) + p01 * wx;          // << 16
        const int64_t bot = p10 * (kOne - wx) + p11 * wx;          // << 16
        const int64_t val = (top >> kShift) * (kOne - wy) + (bot >> kShift) * wy;
        dst.Set(x, y, c, static_cast<uint8_t>((val + (kOne >> 1)) >> kShift));
      }
    }
  }
  return dst;
}

Image ResizeNearestReference(const Image& src, int out_w, int out_h) {
  const int ch = src.Channels();
  Image dst(out_w, out_h, ch);
  for (int y = 0; y < out_h; ++y) {
    const int sy = std::min(static_cast<int>(
                                (static_cast<int64_t>(y) * src.Height()) / out_h),
                            src.Height() - 1);
    for (int x = 0; x < out_w; ++x) {
      const int sx = std::min(static_cast<int>(
                                  (static_cast<int64_t>(x) * src.Width()) / out_w),
                              src.Width() - 1);
      for (int c = 0; c < ch; ++c) dst.Set(x, y, c, src.At(sx, sy, c));
    }
  }
  return dst;
}

// Box-average over the exact source footprint of each output pixel,
// computed with integer endpoints (suitable for hardware: the FPGA resizer
// accumulates then divides once).
Image ResizeAreaReference(const Image& src, int out_w, int out_h) {
  const int ch = src.Channels();
  Image dst(out_w, out_h, ch);
  for (int y = 0; y < out_h; ++y) {
    int y0 = static_cast<int>(static_cast<int64_t>(y) * src.Height() / out_h);
    int y1 = static_cast<int>(static_cast<int64_t>(y + 1) * src.Height() / out_h);
    if (y1 <= y0) y1 = y0 + 1;
    y1 = std::min(y1, src.Height());
    for (int x = 0; x < out_w; ++x) {
      int x0 = static_cast<int>(static_cast<int64_t>(x) * src.Width() / out_w);
      int x1 = static_cast<int>(static_cast<int64_t>(x + 1) * src.Width() / out_w);
      if (x1 <= x0) x1 = x0 + 1;
      x1 = std::min(x1, src.Width());
      const int64_t area = static_cast<int64_t>(y1 - y0) * (x1 - x0);
      for (int c = 0; c < ch; ++c) {
        int64_t acc = 0;
        for (int yy = y0; yy < y1; ++yy) {
          for (int xx = x0; xx < x1; ++xx) acc += src.At(xx, yy, c);
        }
        dst.Set(x, y, c, static_cast<uint8_t>((acc + area / 2) / area));
      }
    }
  }
  return dst;
}

Result<Image> ResizeReference(const Image& src, int out_w, int out_h,
                              ResizeFilter filter) {
  if (src.Empty()) return InvalidArgument("resize of empty image");
  if (out_w <= 0 || out_h <= 0) {
    return InvalidArgument("resize target must be positive");
  }
  if (out_w == src.Width() && out_h == src.Height()) return Image(src);
  switch (filter) {
    case ResizeFilter::kNearest:
      return ResizeNearestReference(src, out_w, out_h);
    case ResizeFilter::kBilinear:
      return ResizeBilinearReference(src, out_w, out_h);
    case ResizeFilter::kArea:
      return ResizeAreaReference(src, out_w, out_h);
  }
  return InvalidArgument("unknown resize filter");
}

}  // namespace detail

namespace {

// Row-pointer bilinear. Bit-exact with the reference: every intermediate in
// the reference fits in 31 bits (max term 255 << 16, sums < 2^26), so the
// narrowed int32 arithmetic computes identical values, and the per-x
// endpoint/weight tables hold exactly the reference's per-pixel results.
// Templated on the channel count so the per-pixel loop fully unrolls for
// the gray/RGB cases.
template <int CH>
void BilinearRows(const Image& src, Image& dst, const int32_t* off0,
                  const int32_t* off1, const int32_t* wxs, int64_t sy) {
  constexpr int kShift = 16;
  constexpr int64_t kOne = 1ll << kShift;
  const int out_w = dst.Width();
  const int out_h = dst.Height();
  const int ch = src.Channels();
  for (int y = 0; y < out_h; ++y) {
    int64_t fy = (y * sy) + (sy >> 1) - (kOne >> 1);
    fy = std::clamp<int64_t>(fy, 0,
                             (static_cast<int64_t>(src.Height() - 1)) << kShift);
    const int y0 = static_cast<int>(fy >> kShift);
    const int y1 = std::min(y0 + 1, src.Height() - 1);
    const int32_t wy = static_cast<int32_t>(fy & (kOne - 1));
    const int32_t iwy = static_cast<int32_t>(kOne) - wy;
    const uint8_t* r0 = src.Row(y0);
    const uint8_t* r1 = src.Row(y1);
    uint8_t* d = dst.Row(y);
    for (int x = 0; x < out_w; ++x) {
      const int32_t wx = wxs[x];
      const int32_t iwx = static_cast<int32_t>(kOne) - wx;
      const uint8_t* p00 = r0 + off0[x];
      const uint8_t* p01 = r0 + off1[x];
      const uint8_t* p10 = r1 + off0[x];
      const uint8_t* p11 = r1 + off1[x];
      uint8_t* o = d + x * (CH > 0 ? CH : ch);
      for (int c = 0; c < (CH > 0 ? CH : ch); ++c) {
        const int32_t top = p00[c] * iwx + p01[c] * wx;  // << 16
        const int32_t bot = p10[c] * iwx + p11[c] * wx;  // << 16
        const int32_t val = (top >> kShift) * iwy + (bot >> kShift) * wy;
        o[c] = static_cast<uint8_t>(
            (val + static_cast<int32_t>(kOne >> 1)) >> kShift);
      }
    }
  }
}

Image ResizeBilinearFast(const Image& src, int out_w, int out_h) {
  const int ch = src.Channels();
  Image dst(out_w, out_h, ch);
  constexpr int kShift = 16;
  constexpr int64_t kOne = 1ll << kShift;
  const int64_t sx = (static_cast<int64_t>(src.Width()) << kShift) / out_w;
  const int64_t sy = (static_cast<int64_t>(src.Height()) << kShift) / out_h;

  std::vector<int32_t> off0(out_w), off1(out_w), wxs(out_w);
  for (int x = 0; x < out_w; ++x) {
    int64_t fx = (x * sx) + (sx >> 1) - (kOne >> 1);
    fx = std::clamp<int64_t>(fx, 0,
                             (static_cast<int64_t>(src.Width() - 1)) << kShift);
    const int x0 = static_cast<int>(fx >> kShift);
    const int x1 = std::min(x0 + 1, src.Width() - 1);
    off0[x] = x0 * ch;
    off1[x] = x1 * ch;
    wxs[x] = static_cast<int32_t>(fx & (kOne - 1));
  }

  switch (ch) {
    case 1:
      BilinearRows<1>(src, dst, off0.data(), off1.data(), wxs.data(), sy);
      break;
    case 3:
      BilinearRows<3>(src, dst, off0.data(), off1.data(), wxs.data(), sy);
      break;
    default:
      BilinearRows<0>(src, dst, off0.data(), off1.data(), wxs.data(), sy);
      break;
  }
  return dst;
}

Image ResizeNearestFast(const Image& src, int out_w, int out_h) {
  const int ch = src.Channels();
  Image dst(out_w, out_h, ch);
  std::vector<int32_t> off(out_w);
  for (int x = 0; x < out_w; ++x) {
    const int sx = std::min(
        static_cast<int>((static_cast<int64_t>(x) * src.Width()) / out_w),
        src.Width() - 1);
    off[x] = sx * ch;
  }
  for (int y = 0; y < out_h; ++y) {
    const int sy = std::min(
        static_cast<int>((static_cast<int64_t>(y) * src.Height()) / out_h),
        src.Height() - 1);
    const uint8_t* r = src.Row(sy);
    uint8_t* d = dst.Row(y);
    for (int x = 0; x < out_w; ++x) {
      const uint8_t* p = r + off[x];
      uint8_t* o = d + x * ch;
      for (int c = 0; c < ch; ++c) o[c] = p[c];
    }
  }
  return dst;
}

Image ResizeAreaFast(const Image& src, int out_w, int out_h) {
  const int ch = src.Channels();
  Image dst(out_w, out_h, ch);
  std::vector<int32_t> xs0(out_w), xs1(out_w);
  for (int x = 0; x < out_w; ++x) {
    int x0 = static_cast<int>(static_cast<int64_t>(x) * src.Width() / out_w);
    int x1 =
        static_cast<int>(static_cast<int64_t>(x + 1) * src.Width() / out_w);
    if (x1 <= x0) x1 = x0 + 1;
    xs0[x] = x0;
    xs1[x] = std::min(x1, src.Width());
  }
  for (int y = 0; y < out_h; ++y) {
    int y0 = static_cast<int>(static_cast<int64_t>(y) * src.Height() / out_h);
    int y1 =
        static_cast<int>(static_cast<int64_t>(y + 1) * src.Height() / out_h);
    if (y1 <= y0) y1 = y0 + 1;
    y1 = std::min(y1, src.Height());
    uint8_t* d = dst.Row(y);
    for (int x = 0; x < out_w; ++x) {
      const int x0 = xs0[x], x1 = xs1[x];
      const int64_t area = static_cast<int64_t>(y1 - y0) * (x1 - x0);
      uint8_t* o = d + x * ch;
      for (int c = 0; c < ch; ++c) {
        // int64 accumulator: a huge footprint (whole-image box) can exceed
        // 2^31 at 255 per sample.
        int64_t acc = 0;
        for (int yy = y0; yy < y1; ++yy) {
          const uint8_t* r = src.Row(yy) + x0 * ch + c;
          for (int xx = x0; xx < x1; ++xx, r += ch) acc += *r;
        }
        o[c] = static_cast<uint8_t>((acc + area / 2) / area);
      }
    }
  }
  return dst;
}

}  // namespace

Result<Image> Resize(const Image& src, int out_w, int out_h,
                     ResizeFilter filter) {
  if (simd::GetKernelMode() == simd::KernelMode::kReference) {
    return detail::ResizeReference(src, out_w, out_h, filter);
  }
  if (src.Empty()) return InvalidArgument("resize of empty image");
  if (out_w <= 0 || out_h <= 0) {
    return InvalidArgument("resize target must be positive");
  }
  if (out_w == src.Width() && out_h == src.Height()) return Image(src);
  switch (filter) {
    case ResizeFilter::kNearest:
      return ResizeNearestFast(src, out_w, out_h);
    case ResizeFilter::kBilinear:
      return ResizeBilinearFast(src, out_w, out_h);
    case ResizeFilter::kArea:
      return ResizeAreaFast(src, out_w, out_h);
  }
  return InvalidArgument("unknown resize filter");
}

Result<Image> ResizeCoverCrop(const Image& src, int out_w, int out_h,
                              ResizeFilter filter) {
  if (src.Empty()) return InvalidArgument("resize of empty image");
  if (out_w <= 0 || out_h <= 0) {
    return InvalidArgument("target must be positive");
  }
  // Scale so the image covers the target box, then centre-crop the excess.
  const double scale = std::max(static_cast<double>(out_w) / src.Width(),
                                static_cast<double>(out_h) / src.Height());
  const int mid_w =
      std::max(out_w, static_cast<int>(src.Width() * scale + 0.5));
  const int mid_h =
      std::max(out_h, static_cast<int>(src.Height() * scale + 0.5));
  auto resized = Resize(src, mid_w, mid_h, filter);
  if (!resized.ok()) return resized.status();
  return Crop(resized.value(), (mid_w - out_w) / 2, (mid_h - out_h) / 2,
              out_w, out_h);
}

Result<Image> ResizeShorterSide(const Image& src, int target,
                                ResizeFilter filter) {
  if (src.Empty()) return InvalidArgument("resize of empty image");
  if (target <= 0) return InvalidArgument("target must be positive");
  int out_w, out_h;
  if (src.Width() <= src.Height()) {
    out_w = target;
    out_h = std::max<int>(
        1, static_cast<int>(static_cast<int64_t>(src.Height()) * target /
                            src.Width()));
  } else {
    out_h = target;
    out_w = std::max<int>(
        1, static_cast<int>(static_cast<int64_t>(src.Width()) * target /
                            src.Height()));
  }
  return Resize(src, out_w, out_h, filter);
}

}  // namespace dlb
