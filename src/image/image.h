// Basic raster image container used throughout the pipeline.
//
// Pixels are 8-bit, interleaved (HWC). Channels is 1 (grayscale) or 3 (RGB).
// The container is a plain value type: moves are cheap (vector move), copies
// are explicit and deep.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace dlb {

class Image {
 public:
  Image() = default;
  Image(int width, int height, int channels)
      : width_(width),
        height_(height),
        channels_(channels),
        pixels_(static_cast<size_t>(width) * height * channels, 0) {}

  int Width() const { return width_; }
  int Height() const { return height_; }
  int Channels() const { return channels_; }
  bool Empty() const { return pixels_.empty(); }
  size_t SizeBytes() const { return pixels_.size(); }

  const uint8_t* Data() const { return pixels_.data(); }
  uint8_t* Data() { return pixels_.data(); }
  ByteSpan Span() const { return {pixels_.data(), pixels_.size()}; }

  /// Unchecked pixel accessors (hot paths); callers validate bounds.
  uint8_t At(int x, int y, int c) const {
    return pixels_[(static_cast<size_t>(y) * width_ + x) * channels_ + c];
  }
  void Set(int x, int y, int c, uint8_t v) {
    pixels_[(static_cast<size_t>(y) * width_ + x) * channels_ + c] = v;
  }

  /// Row pointer (start of row y).
  const uint8_t* Row(int y) const {
    return pixels_.data() + static_cast<size_t>(y) * width_ * channels_;
  }
  uint8_t* Row(int y) {
    return pixels_.data() + static_cast<size_t>(y) * width_ * channels_;
  }

  /// Content hash for equivalence tests across backends.
  uint64_t ContentHash() const;

  /// Mean absolute per-pixel difference against another image of identical
  /// shape; used to bound lossy-codec roundtrip error in tests.
  static Result<double> MeanAbsDiff(const Image& a, const Image& b);

  friend bool operator==(const Image& a, const Image& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.channels_ == b.channels_ && a.pixels_ == b.pixels_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  std::vector<uint8_t> pixels_;
};

}  // namespace dlb
