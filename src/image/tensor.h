// Float tensor staging: the last preprocessing step before the compute
// engine consumes a batch (subtract mean, divide by std, HWC -> CHW).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "image/image.h"

namespace dlb {

/// Dense float32 tensor in NCHW layout, the input format of every model in
/// the zoo (matches what NVCaffe/TensorRT expect).
struct Tensor {
  int n = 0, c = 0, h = 0, w = 0;
  std::vector<float> data;

  size_t NumElements() const {
    return static_cast<size_t>(n) * c * h * w;
  }
  size_t SizeBytes() const { return NumElements() * sizeof(float); }

  float& At(int in, int ic, int iy, int ix) {
    return data[((static_cast<size_t>(in) * c + ic) * h + iy) * w + ix];
  }
  float At(int in, int ic, int iy, int ix) const {
    return data[((static_cast<size_t>(in) * c + ic) * h + iy) * w + ix];
  }
};

/// Per-channel normalisation parameters (ImageNet defaults are the usual
/// mean/std in 0-255 scale).
struct Normalization {
  std::array<float, 3> mean{123.675f, 116.28f, 103.53f};
  std::array<float, 3> stddev{58.395f, 57.12f, 57.375f};
};

/// Convert one image to CHW floats into `dst` at batch index `n`.
/// The image shape must match the tensor's C/H/W.
Status ImageToTensor(const Image& img, const Normalization& norm, Tensor* dst,
                     int n);

/// Build an N-image tensor from equal-shaped images.
Result<Tensor> BatchToTensor(const std::vector<Image>& batch,
                             const Normalization& norm);

}  // namespace dlb
