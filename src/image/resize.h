// Image resampling kernels.
//
// The FPGA decoder's resizing unit and the CPU backends share these
// implementations so that functional outputs are bit-identical regardless of
// which backend produced them (verified by backend-equivalence tests).
#pragma once

#include "image/image.h"

namespace dlb {

enum class ResizeFilter {
  kNearest,   ///< nearest neighbour
  kBilinear,  ///< 2x2 bilinear, fixed-point arithmetic
  kArea,      ///< box average; best for large downscales (what the FPGA does)
};

/// Resize `src` to out_w x out_h with the given filter.
Result<Image> Resize(const Image& src, int out_w, int out_h,
                     ResizeFilter filter = ResizeFilter::kBilinear);

/// Resize so the *shorter* side equals `target`, preserving aspect ratio
/// (the standard ImageNet preprocessing step before a centre crop).
Result<Image> ResizeShorterSide(const Image& src, int target,
                                ResizeFilter filter = ResizeFilter::kBilinear);

/// Aspect-preserving "cover" resize + centre crop to exactly out_w x out_h
/// (torchvision's Resize+CenterCrop; what real ImageNet pipelines run).
Result<Image> ResizeCoverCrop(const Image& src, int out_w, int out_h,
                              ResizeFilter filter = ResizeFilter::kBilinear);

namespace detail {

/// Seed per-pixel-accessor implementation, kept as the oracle for the
/// row-pointer kernels (and the kReference kernel-mode path). The fast path
/// is bit-identical to this on every input.
Result<Image> ResizeReference(const Image& src, int out_w, int out_h,
                              ResizeFilter filter = ResizeFilter::kBilinear);

}  // namespace detail

}  // namespace dlb
