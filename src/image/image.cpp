#include "image/image.h"

#include <cmath>
#include <cstdlib>

namespace dlb {

uint64_t Image::ContentHash() const {
  uint64_t h = Fnv1a64(Span());
  // Fold the shape in so images with identical bytes but different shapes
  // do not collide.
  h ^= (static_cast<uint64_t>(width_) << 40) ^
       (static_cast<uint64_t>(height_) << 20) ^
       static_cast<uint64_t>(channels_);
  return h;
}

Result<double> Image::MeanAbsDiff(const Image& a, const Image& b) {
  if (a.Width() != b.Width() || a.Height() != b.Height() ||
      a.Channels() != b.Channels()) {
    return InvalidArgument("image shape mismatch");
  }
  if (a.SizeBytes() == 0) return 0.0;
  uint64_t total = 0;
  const uint8_t* pa = a.Data();
  const uint8_t* pb = b.Data();
  for (size_t i = 0; i < a.SizeBytes(); ++i) {
    total += static_cast<uint64_t>(std::abs(int(pa[i]) - int(pb[i])));
  }
  return static_cast<double>(total) / static_cast<double>(a.SizeBytes());
}

}  // namespace dlb
