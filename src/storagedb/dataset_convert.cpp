#include "storagedb/dataset_convert.h"

#include <chrono>
#include <cstring>

#include "codec/jpeg_decoder.h"
#include "common/thread_pool.h"
#include "image/resize.h"

namespace dlb::db {

namespace {
constexpr size_t kDatumHeaderBytes = 2 + 2 + 1 + 4;
}

Bytes EncodeDatum(const DatumHeader& header, const Image& image) {
  Bytes out(kDatumHeaderBytes + image.SizeBytes());
  out[0] = static_cast<uint8_t>(header.width & 0xFF);
  out[1] = static_cast<uint8_t>(header.width >> 8);
  out[2] = static_cast<uint8_t>(header.height & 0xFF);
  out[3] = static_cast<uint8_t>(header.height >> 8);
  out[4] = header.channels;
  WriteLe32(out.data() + 5, static_cast<uint32_t>(header.label));
  std::memcpy(out.data() + kDatumHeaderBytes, image.Data(), image.SizeBytes());
  return out;
}

Result<std::pair<DatumHeader, Image>> DecodeDatum(ByteSpan value) {
  if (value.size() < kDatumHeaderBytes) return CorruptData("datum too small");
  DatumHeader h;
  h.width = static_cast<uint16_t>(value[0] | (value[1] << 8));
  h.height = static_cast<uint16_t>(value[2] | (value[3] << 8));
  h.channels = value[4];
  h.label = static_cast<int32_t>(ReadLe32(value.data() + 5));
  const size_t pixels =
      static_cast<size_t>(h.width) * h.height * h.channels;
  if (value.size() != kDatumHeaderBytes + pixels) {
    return CorruptData("datum payload size mismatch");
  }
  Image img(h.width, h.height, h.channels);
  std::memcpy(img.Data(), value.data() + kDatumHeaderBytes, pixels);
  return std::make_pair(h, std::move(img));
}

Result<ConvertReport> ConvertDataset(const Dataset& dataset,
                                     const ConvertOptions& options,
                                     KvStore* out) {
  if (out == nullptr) return InvalidArgument("null output store");
  const auto start = std::chrono::steady_clock::now();
  ConvertReport report;

  std::mutex err_mu;
  Status first_error;
  std::atomic<uint64_t> output_bytes{0};

  auto convert_one = [&](const FileRecord& rec) {
    auto blob = dataset.store->Read(rec);
    if (!blob.ok()) {
      std::scoped_lock lock(err_mu);
      if (first_error.ok()) first_error = blob.status();
      return;
    }
    auto decoded = jpeg::Decode(blob.value());
    if (!decoded.ok()) {
      std::scoped_lock lock(err_mu);
      if (first_error.ok()) first_error = decoded.status();
      return;
    }
    auto resized = Resize(decoded.value(), options.resize_width,
                          options.resize_height, ResizeFilter::kBilinear);
    if (!resized.ok()) {
      std::scoped_lock lock(err_mu);
      if (first_error.ok()) first_error = resized.status();
      return;
    }
    DatumHeader header;
    header.width = static_cast<uint16_t>(options.resize_width);
    header.height = static_cast<uint16_t>(options.resize_height);
    header.channels = static_cast<uint8_t>(resized.value().Channels());
    header.label = rec.label;
    const Bytes datum = EncodeDatum(header, resized.value());
    output_bytes.fetch_add(datum.size(), std::memory_order_relaxed);
    Status put = out->Put(rec.name, datum);
    if (!put.ok()) {
      std::scoped_lock lock(err_mu);
      if (first_error.ok()) first_error = put;
    }
  };

  if (options.num_threads <= 1) {
    for (const auto& rec : dataset.manifest.Records()) convert_one(rec);
  } else {
    ThreadPool pool(static_cast<size_t>(options.num_threads));
    for (const auto& rec : dataset.manifest.Records()) {
      Status s = pool.Submit([&convert_one, &rec] { convert_one(rec); });
      if (!s.ok()) return s;
    }
    pool.Wait();
  }
  if (!first_error.ok()) return first_error;

  report.images = dataset.manifest.Size();
  report.input_bytes = dataset.manifest.TotalBytes();
  report.output_bytes = output_bytes.load();
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace dlb::db
