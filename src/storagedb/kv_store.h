// Hash-bucketed key-value store over the page store — our LMDB stand-in.
//
// Layout:
//   page 0            : superblock (magic, bucket count, record count)
//   pages 1..B        : bucket head pages
//   further pages     : chained overflow pages
//
// Each bucket chain is a byte stream of back-to-back records:
//   record := [u32 key_len][u32 val_len][key bytes][val bytes]
// Records may span page boundaries (decoded image records are ~200 KiB,
// far larger than a page), so readers walk the chain as a stream.
//
// Concurrency mirrors LMDB's single-writer / many-readers design: a
// shared_mutex guards the store, and reader acquisition counts are exposed
// so the evaluation layer can calibrate contention (the 30% two-GPU drop of
// Fig. 2 comes from exactly this shared path).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "storagedb/page_store.h"

namespace dlb::db {

struct KvStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t get_misses = 0;
  uint64_t pages_touched = 0;
};

class KvStore {
 public:
  /// `num_buckets` fixes the hash-table width at creation time.
  explicit KvStore(uint32_t num_buckets = 1024);

  /// Insert or overwrite-by-append (the newest record for a key wins).
  Status Put(std::string_view key, ByteSpan value);

  /// Fetch a value (copies out, like mdb_get + memcpy into user space).
  Result<Bytes> Get(std::string_view key) const;

  /// True if the key exists.
  bool Contains(std::string_view key) const;

  uint64_t RecordCount() const { return record_count_.load(); }
  uint64_t SizeBytes() const { return pages_.SizeBytes(); }
  KvStats Stats() const;

  /// Visit every record in storage order (newest duplicate last). The
  /// callback must not touch the store.
  Status Scan(const std::function<void(std::string_view key, ByteSpan value)>&
                  visit) const;

  Status SaveToFile(const std::string& path) const;
  static Result<std::unique_ptr<KvStore>> LoadFromFile(const std::string& path);

 private:
  struct BucketRef {
    PageId head;
    PageId tail;
  };

  // Page header: [u32 next_page][u32 used_bytes]
  static constexpr size_t kPageHeader = 8;
  static constexpr size_t kUsableBytes = kPageSize - kPageHeader;

  uint32_t BucketOf(std::string_view key) const;
  PageId AllocChainPage();
  Status AppendToBucket(uint32_t bucket, ByteSpan record);

  uint32_t num_buckets_;
  PageStore pages_;
  std::vector<BucketRef> buckets_;
  std::atomic<uint64_t> record_count_{0};

  mutable std::shared_mutex mu_;
  mutable std::atomic<uint64_t> puts_{0};
  mutable std::atomic<uint64_t> gets_{0};
  mutable std::atomic<uint64_t> get_misses_{0};
  mutable std::atomic<uint64_t> pages_touched_{0};
};

}  // namespace dlb::db
