#include "storagedb/kv_store.h"

#include <cstring>

#include "common/log.h"

namespace dlb::db {

namespace {
constexpr uint32_t kMagic = 0xD1B00573;

// Superblock layout on page 0: [magic][num_buckets][record_count lo][hi]
// followed by per-bucket head/tail PageIds.
}  // namespace

KvStore::KvStore(uint32_t num_buckets)
    : num_buckets_(num_buckets ? num_buckets : 1) {
  // Page 0: superblock. Pages 1..B: bucket heads.
  (void)pages_.Alloc();
  buckets_.resize(num_buckets_);
  for (uint32_t b = 0; b < num_buckets_; ++b) {
    const PageId head = AllocChainPage();
    buckets_[b] = BucketRef{head, head};
  }
}

uint32_t KvStore::BucketOf(std::string_view key) const {
  const uint64_t h = Fnv1a64(
      ByteSpan(reinterpret_cast<const uint8_t*>(key.data()), key.size()));
  return static_cast<uint32_t>(h % num_buckets_);
}

PageId KvStore::AllocChainPage() {
  const PageId id = pages_.Alloc();
  auto page = pages_.Page(id);
  DLB_CHECK(page.ok());
  WriteLe32(page.value().data(), kInvalidPage);  // next
  WriteLe32(page.value().data() + 4, 0);         // used
  return id;
}

Status KvStore::AppendToBucket(uint32_t bucket, ByteSpan record) {
  BucketRef& ref = buckets_[bucket];
  size_t written = 0;
  while (written < record.size()) {
    auto tail = pages_.Page(ref.tail);
    if (!tail.ok()) return tail.status();
    uint8_t* p = tail.value().data();
    uint32_t used = ReadLe32(p + 4);
    size_t room = kUsableBytes - used;
    if (room == 0) {
      const PageId next = AllocChainPage();
      // Re-fetch: Alloc may have reallocated the arena.
      tail = pages_.Page(ref.tail);
      if (!tail.ok()) return tail.status();
      WriteLe32(tail.value().data(), next);
      ref.tail = next;
      continue;
    }
    const size_t chunk = std::min(room, record.size() - written);
    std::memcpy(p + kPageHeader + used, record.data() + written, chunk);
    WriteLe32(p + 4, used + static_cast<uint32_t>(chunk));
    written += chunk;
  }
  return Status::Ok();
}

Status KvStore::Put(std::string_view key, ByteSpan value) {
  if (key.empty()) return InvalidArgument("empty key");
  Bytes record(8 + key.size() + value.size());
  WriteLe32(record.data(), static_cast<uint32_t>(key.size()));
  WriteLe32(record.data() + 4, static_cast<uint32_t>(value.size()));
  std::memcpy(record.data() + 8, key.data(), key.size());
  std::memcpy(record.data() + 8 + key.size(), value.data(), value.size());

  std::unique_lock lock(mu_);
  DLB_RETURN_IF_ERROR(AppendToBucket(BucketOf(key), record));
  record_count_.fetch_add(1, std::memory_order_relaxed);
  puts_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

namespace {

/// Sequential reader over one bucket's page chain.
class ChainReader {
 public:
  ChainReader(const PageStore& pages, PageId head,
              std::atomic<uint64_t>* pages_touched)
      : pages_(pages), page_(head), touched_(pages_touched) {
    LoadPage();
  }

  /// Copy exactly n bytes into dst; false when the chain is exhausted.
  bool Read(uint8_t* dst, size_t n) {
    while (n > 0) {
      if (!page_span_.data()) return false;
      if (offset_ >= used_) {
        if (!Advance()) return false;
        continue;
      }
      const size_t chunk = std::min(n, static_cast<size_t>(used_ - offset_));
      if (dst) std::memcpy(dst, page_span_.data() + 8 + offset_, chunk);
      if (dst) dst += chunk;
      offset_ += chunk;
      n -= chunk;
    }
    return true;
  }

  bool Skip(size_t n) { return Read(nullptr, n); }

  /// True when no more record bytes remain.
  bool AtEnd() {
    while (offset_ >= used_) {
      if (!Advance()) return true;
    }
    return false;
  }

 private:
  void LoadPage() {
    auto span = pages_.Page(page_);
    if (!span.ok()) {
      page_span_ = ByteSpan{};
      used_ = 0;
      return;
    }
    page_span_ = span.value();
    used_ = ReadLe32(page_span_.data() + 4);
    offset_ = 0;
    if (touched_) touched_->fetch_add(1, std::memory_order_relaxed);
  }

  bool Advance() {
    if (!page_span_.data()) return false;
    const PageId next = ReadLe32(page_span_.data());
    if (next == kInvalidPage) {
      page_span_ = ByteSpan{};
      return false;
    }
    page_ = next;
    LoadPage();
    return page_span_.data() != nullptr;
  }

  const PageStore& pages_;
  PageId page_;
  ByteSpan page_span_;
  uint32_t used_ = 0;
  uint32_t offset_ = 0;
  std::atomic<uint64_t>* touched_;
};

}  // namespace

Result<Bytes> KvStore::Get(std::string_view key) const {
  std::shared_lock lock(mu_);
  gets_.fetch_add(1, std::memory_order_relaxed);
  ChainReader reader(pages_, buckets_[BucketOf(key)].head, &pages_touched_);
  Bytes found;
  bool have = false;
  Bytes key_buf;
  while (!reader.AtEnd()) {
    uint8_t header[8];
    if (!reader.Read(header, 8)) break;
    const uint32_t klen = ReadLe32(header);
    const uint32_t vlen = ReadLe32(header + 4);
    key_buf.resize(klen);
    if (!reader.Read(key_buf.data(), klen)) break;
    const bool match =
        klen == key.size() &&
        std::memcmp(key_buf.data(), key.data(), klen) == 0;
    if (match) {
      found.resize(vlen);
      if (!reader.Read(found.data(), vlen)) break;
      have = true;  // keep scanning: a later duplicate overrides
    } else {
      if (!reader.Skip(vlen)) break;
    }
  }
  if (!have) {
    get_misses_.fetch_add(1, std::memory_order_relaxed);
    return NotFound("key not found: " + std::string(key));
  }
  return found;
}

bool KvStore::Contains(std::string_view key) const {
  return Get(key).ok();
}

KvStats KvStore::Stats() const {
  KvStats s;
  s.puts = puts_.load();
  s.gets = gets_.load();
  s.get_misses = get_misses_.load();
  s.pages_touched = pages_touched_.load();
  return s;
}

Status KvStore::Scan(
    const std::function<void(std::string_view, ByteSpan)>& visit) const {
  std::shared_lock lock(mu_);
  Bytes key_buf, val_buf;
  for (uint32_t b = 0; b < num_buckets_; ++b) {
    ChainReader reader(pages_, buckets_[b].head, &pages_touched_);
    while (!reader.AtEnd()) {
      uint8_t header[8];
      if (!reader.Read(header, 8)) break;
      const uint32_t klen = ReadLe32(header);
      const uint32_t vlen = ReadLe32(header + 4);
      key_buf.resize(klen);
      val_buf.resize(vlen);
      if (!reader.Read(key_buf.data(), klen)) break;
      if (!reader.Read(val_buf.data(), vlen)) break;
      visit(std::string_view(reinterpret_cast<const char*>(key_buf.data()),
                             klen),
            ByteSpan(val_buf.data(), vlen));
    }
  }
  return Status::Ok();
}

Status KvStore::SaveToFile(const std::string& path) const {
  std::unique_lock lock(mu_);
  // Only the superblock needs serialising: bucket heads are pages 1..B by
  // construction, and tails are recovered by walking each chain at load.
  auto* self = const_cast<KvStore*>(this);  // writing our own page 0
  auto page0 = self->pages_.Page(PageId{0});
  if (!page0.ok()) return page0.status();
  uint8_t* p = page0.value().data();
  WriteLe32(p, kMagic);
  WriteLe32(p + 4, num_buckets_);
  WriteLe64(p + 8, record_count_.load());
  return pages_.SaveToFile(path);
}

Result<std::unique_ptr<KvStore>> KvStore::LoadFromFile(
    const std::string& path) {
  PageStore pages;
  DLB_RETURN_IF_ERROR(pages.LoadFromFile(path));
  auto page0 = pages.Page(PageId{0});
  if (!page0.ok()) return page0.status();
  const uint8_t* p = page0.value().data();
  if (ReadLe32(p) != kMagic) return CorruptData("bad KvStore magic");
  const uint32_t num_buckets = ReadLe32(p + 4);
  if (num_buckets == 0 ||
      static_cast<size_t>(num_buckets) + 1 > pages.PageCount()) {
    return CorruptData("bad bucket count");
  }
  const uint64_t record_count = ReadLe64(p + 8);
  auto store = std::make_unique<KvStore>(1);  // placeholder; rebuilt below
  store->num_buckets_ = num_buckets;
  store->pages_ = std::move(pages);
  store->record_count_.store(record_count);
  // Bucket heads are pages 1..B by construction; recover each tail by
  // walking the chain to its last page.
  store->buckets_.resize(num_buckets);
  for (uint32_t b = 0; b < num_buckets; ++b) {
    const PageId head = b + 1;
    PageId tail = head;
    size_t hops = 0;
    while (true) {
      auto page = store->pages_.Page(tail);
      if (!page.ok()) return CorruptData("broken bucket chain");
      const PageId next = ReadLe32(page.value().data());
      if (next == kInvalidPage) break;
      if (next >= store->pages_.PageCount() ||
          ++hops > store->pages_.PageCount()) {
        return CorruptData("cyclic or dangling bucket chain");
      }
      tail = next;
    }
    store->buckets_[b].head = head;
    store->buckets_[b].tail = tail;
  }
  return store;
}

}  // namespace dlb::db
