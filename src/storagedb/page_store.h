// Fixed-size page store, the bottom layer of the LMDB-like database.
//
// Pages are 4 KiB (the unit LMDB maps from disk). The store is an in-memory
// arena with optional file persistence — the paper's contention effects come
// from the *shared reader path*, not from physical disk latency (ILSVRC's
// LMDB lives in the page cache on their testbed too).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace dlb::db {

inline constexpr size_t kPageSize = 4096;
using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;

class PageStore {
 public:
  PageStore() = default;

  /// Allocate a zeroed page; returns its id.
  PageId Alloc();

  size_t PageCount() const { return pages_.size() / kPageSize; }
  uint64_t SizeBytes() const { return pages_.size(); }

  /// Raw page access. Ids must come from Alloc().
  Result<MutableByteSpan> Page(PageId id);
  Result<ByteSpan> Page(PageId id) const;

  /// Persist / restore the whole store (used by the offline-conversion
  /// example so the DB survives as an artifact).
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

 private:
  Bytes pages_;
};

}  // namespace dlb::db
