// Offline dataset conversion — the expensive preparation step that offline
// backends (LMDB/TFRecord/RecordIO) impose before training can start
// (§2.2(2): >2 hours for ILSVRC12).
//
// Like Caffe's convert_imageset, conversion decodes every JPEG, resizes to
// the training input size, and stores the raw pixel datum plus label.
#pragma once

#include "dataplane/synthetic_dataset.h"
#include "image/image.h"
#include "storagedb/kv_store.h"

namespace dlb::db {

/// Datum header preceding the raw pixel payload in each DB value.
struct DatumHeader {
  uint16_t width = 0;
  uint16_t height = 0;
  uint8_t channels = 0;
  int32_t label = 0;
};

struct ConvertOptions {
  int resize_width = 256;   // stored datum dims (Caffe convention)
  int resize_height = 256;
  int num_threads = 1;      // conversion parallelism
};

struct ConvertReport {
  uint64_t images = 0;
  uint64_t input_bytes = 0;   // encoded JPEG bytes read
  uint64_t output_bytes = 0;  // raw datum bytes written
  double wall_seconds = 0.0;  // measured conversion time
};

/// Serialise (header, pixels) into a DB value.
Bytes EncodeDatum(const DatumHeader& header, const Image& image);

/// Parse a DB value back into (header, image).
Result<std::pair<DatumHeader, Image>> DecodeDatum(ByteSpan value);

/// Convert every sample of `dataset` into `out`. Keys are the manifest
/// names. Decoding runs on `options.num_threads`; DB writes are serialised
/// through the store's writer lock (as in LMDB).
Result<ConvertReport> ConvertDataset(const Dataset& dataset,
                                     const ConvertOptions& options,
                                     KvStore* out);

}  // namespace dlb::db
