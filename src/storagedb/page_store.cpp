#include "storagedb/page_store.h"

#include <cstring>
#include <fstream>

namespace dlb::db {

PageId PageStore::Alloc() {
  const PageId id = static_cast<PageId>(PageCount());
  pages_.resize(pages_.size() + kPageSize, 0);
  return id;
}

Result<MutableByteSpan> PageStore::Page(PageId id) {
  if (static_cast<size_t>(id) >= PageCount()) {
    return OutOfRange("page id out of range");
  }
  return MutableByteSpan(pages_.data() + static_cast<size_t>(id) * kPageSize,
                         kPageSize);
}

Result<ByteSpan> PageStore::Page(PageId id) const {
  if (static_cast<size_t>(id) >= PageCount()) {
    return OutOfRange("page id out of range");
  }
  return ByteSpan(pages_.data() + static_cast<size_t>(id) * kPageSize,
                  kPageSize);
}

Status PageStore::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Internal("cannot open for write: " + path);
  out.write(reinterpret_cast<const char*>(pages_.data()),
            static_cast<std::streamsize>(pages_.size()));
  return out ? Status::Ok() : Internal("short write: " + path);
}

Status PageStore::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("cannot open: " + path);
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  if (data.size() % kPageSize != 0) {
    return CorruptData("file size not a multiple of the page size");
  }
  pages_ = std::move(data);
  return Status::Ok();
}

}  // namespace dlb::db
