#include "workflow/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace dlb::workflow {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << "\n";
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FmtCount(double value) {
  const long long v = std::llround(value);
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace dlb::workflow
