// Plain-text table rendering shared by the figure-reproduction benches.
#pragma once

#include <string>
#include <vector>

namespace dlb::workflow {

/// Column-aligned text table with a header row and a rule under it.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.3", "0.30").
std::string Fmt(double value, int precision = 1);

/// Thousands-separated integer ("4,652").
std::string FmtCount(double value);

}  // namespace dlb::workflow
