#include "workflow/econ.h"

#include <sstream>

#include "workflow/report.h"

namespace dlb::workflow {

EconReport AnalyzeEconomics(const EconInput& input) {
  EconReport report;
  report.freed_core_dollars_per_hour =
      input.cores_replaced * input.core_dollars_per_hour;
  report.core_revenue_per_year =
      report.freed_core_dollars_per_hour * 24 * 365;
  report.fpga_payback_days =
      input.fpga_price_dollars / (report.freed_core_dollars_per_hour * 24);
  report.power_saved_watts =
      input.cores_replaced * input.cpu_watts_per_core - input.fpga_watts;
  report.power_saved_dollars_per_year =
      report.power_saved_watts / 1000.0 * 24 * 365 *
      input.electricity_dollars_per_kwh;
  return report;
}

std::string RenderEconReport(const EconInput& input,
                             const EconReport& report) {
  std::ostringstream os;
  os << "Economic analysis (Section 5.4)\n";
  Table t({"quantity", "value"});
  t.AddRow({"CPU cores one FPGA decoder replaces", Fmt(input.cores_replaced, 0)});
  t.AddRow({"core price ($/core-hour)", Fmt(input.core_dollars_per_hour, 3)});
  t.AddRow({"freed-core revenue ($/hour)",
            Fmt(report.freed_core_dollars_per_hour, 2)});
  t.AddRow({"freed-core revenue ($/year)",
            FmtCount(report.core_revenue_per_year)});
  t.AddRow({"FPGA board price ($)", FmtCount(input.fpga_price_dollars)});
  t.AddRow({"FPGA payback time (days)", Fmt(report.fpga_payback_days, 1)});
  t.AddRow({"power: CPU-equivalent (W)",
            Fmt(input.cores_replaced * input.cpu_watts_per_core, 0)});
  t.AddRow({"power: FPGA (W)", Fmt(input.fpga_watts, 0)});
  t.AddRow({"power saved (W)", Fmt(report.power_saved_watts, 0)});
  t.AddRow({"power savings ($/year)",
            FmtCount(report.power_saved_dollars_per_year)});
  os << t.Render();
  return os.str();
}

}  // namespace dlb::workflow
