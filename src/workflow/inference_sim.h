// Online-inference workflow simulator (reproduces Figs. 7, 8, 9).
//
// Five clients stream JPEGs over a 40 Gbps fabric into a TensorRT-like
// serving engine (§5.3). Requests flow NIC -> preprocessing backend ->
// batch assembly -> fp16 inference -> response; latency is measured from
// "image received" to "prediction made", exactly the paper's definition.
// Clients are closed-loop with a window proportional to the batch size, so
// small batches measure pipeline latency and large batches expose the
// saturation throughput.
#pragma once

#include <map>
#include <string>

#include "fpga/decoder_config.h"
#include "gpu/model_zoo.h"
#include "sim/calibration.h"

namespace dlb::workflow {

enum class InferBackend { kCpu, kNvjpeg, kDlbooster };

const char* InferBackendName(InferBackend backend);

struct InferConfig {
  const gpu::DlModel* model = &gpu::GoogLeNet();
  InferBackend backend = InferBackend::kDlbooster;
  int batch_size = 1;
  int num_gpus = 1;
  int num_clients = 5;
  /// Decoder pipelines serving the DLBooster backend.
  int fpga_pipelines = 1;
  fpga::DecoderConfig fpga_config{};
  /// CPU backend decode threads; 0 = best-effort sizing.
  int cpu_decode_threads = 0;
  double sim_seconds = 20.0;
  double avg_image_bytes = cal::kAvgJpegBytes;
  uint64_t source_pixels = 500ull * 375;  // paper: 500x375 averages
  /// Decode-to-scale denominator applied by the FPGA decoder model (1, 2,
  /// 4, 8): iDCT and resizer service times shrink by denom^2.
  int decode_scale_denom = 1;
  /// §7 future work (2): the decoder DMAs straight into GPU memory,
  /// skipping the host staging copy. DLBooster backend only.
  bool direct_gpu_write = false;
};

struct InferResult {
  double throughput = 0;     // img/s
  double latency_ms_mean = 0;
  double latency_ms_p50 = 0;
  double latency_ms_p99 = 0;
  double cpu_cores = 0;
  std::map<std::string, double> cpu_by_category;
  double gpu_compute_util = 0;
  int decode_threads = 0;
};

InferResult SimulateInference(const InferConfig& config);

}  // namespace dlb::workflow
