#include "workflow/training_sim.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/log.h"
#include "fpga/fpga_decoder_sim.h"
#include "gpu/gpu_sim.h"
#include "sim/cpu_accountant.h"
#include "sim/resource.h"
#include "sim/scheduler.h"

namespace dlb::workflow {

namespace {

/// Single-waiter counting gate: the DES analogue of a depth-limited queue
/// hand-off between two loops.
class CountGate {
 public:
  void Add(int n = 1) {
    count_ += n;
    Fire();
  }
  void Take(sim::EventFn fn) {
    DLB_CHECK(!waiter_);
    waiter_ = std::move(fn);
    Fire();
  }

 private:
  void Fire() {
    if (waiter_ && count_ > 0) {
      --count_;
      sim::EventFn fn = std::move(waiter_);
      waiter_ = nullptr;
      fn();
    }
  }
  int count_ = 0;
  sim::EventFn waiter_;
};

struct TrainSim {
  explicit TrainSim(const TrainConfig& config) : cfg(config), cpu(&sched) {
    batch = cfg.batch_size > 0 ? cfg.batch_size : cfg.model->train_batch;
    DLB_CHECK(batch > 0);

    // --- Backend supply sizing -------------------------------------------
    if (cfg.backend == TrainBackend::kCpu) {
      threads_per_gpu = cfg.cpu_decode_threads_per_gpu;
      if (threads_per_gpu == 0) {
        if (cfg.dataset_fits_memory) {
          threads_per_gpu = 2;
        } else {
          // Best effort: burn what the model demands, capped by the socket.
          const int demand = static_cast<int>(std::ceil(
              cfg.model->train_rate_per_gpu / cal::kCpuPreprocessRateTrain));
          const int cap = std::max(
              1, (cal::kCpuTotalCores - 2 * cfg.num_gpus) / cfg.num_gpus);
          threads_per_gpu = std::min(demand, cap);
        }
      }
    }

    // --- Devices ----------------------------------------------------------
    for (int g = 0; g < cfg.num_gpus; ++g) {
      gpus.push_back(std::make_unique<gpu::GpuDevice>(&sched, &cpu, g));
      supply_gate.push_back(std::make_unique<CountGate>());
      supply_credit.push_back(std::make_unique<CountGate>());
      ready_gate.push_back(std::make_unique<CountGate>());
      ready_credit.push_back(std::make_unique<CountGate>());
      supply_credit[g]->Add(2);  // prefetch depth: 2 batches decoding ahead
      ready_credit[g]->Add(2);   // 2 copied batches buffered
    }

    switch (cfg.backend) {
      case TrainBackend::kSynthetic:
        break;
      case TrainBackend::kCpu: {
        // Per-GPU thread pools; fluid model: one server at aggregate rate.
        const int instances = cfg.num_gpus;
        for (int i = 0; i < instances; ++i) {
          decode_res.push_back(
              std::make_unique<sim::Resource>(&sched, 1, "cpu.decode"));
        }
        break;
      }
      case TrainBackend::kLmdb: {
        // Default: one reader resource per GPU (Caffe data layers), all
        // paying shared-environment contention. Singleton ablation: one
        // uncontended service shared round-robin.
        const int instances = cfg.lmdb_singleton_service ? 1 : cfg.num_gpus;
        for (int i = 0; i < instances; ++i) {
          decode_res.push_back(
              std::make_unique<sim::Resource>(&sched, 1, "lmdb.db"));
        }
        break;
      }
      case TrainBackend::kDlbooster: {
        fpga::DecoderConfig fc = cfg.fpga_config;
        fc.cmd_fifo_depth = std::max(fc.cmd_fifo_depth, 64);
        int instances = cfg.fpga_pipelines;
        if (cfg.per_gpu_decoder_instances) {
          // Fragment the one device's unit ways across per-GPU instances.
          instances = cfg.num_gpus;
          fc.huffman_ways = std::max(1, fc.huffman_ways / cfg.num_gpus);
          fc.resizer_ways = std::max(1, fc.resizer_ways / cfg.num_gpus);
        }
        for (int i = 0; i < instances; ++i) {
          fpgas.push_back(std::make_unique<fpga::FpgaDecoderSim>(&sched, fc));
        }
        break;
      }
    }
  }

  // --- Supply side ---------------------------------------------------------

  double LmdbAggregateRate() const {
    // Caffe's data layers give each GPU its own reader on the shared DB;
    // the singleton-service ablation removes that reader contention.
    const int readers = cfg.lmdb_singleton_service ? 1 : cfg.num_gpus;
    return cal::kDbSingleReaderRate *
           std::max(0.1, 1.0 - cal::kDbReaderContentionLoss * (readers - 1));
  }

  /// Decode one batch for GPU g, then call done.
  void DecodeBatch(int g, sim::EventFn done) {
    if (cfg.backend == TrainBackend::kSynthetic || cfg.dataset_fits_memory) {
      // Cache replay: staging cost only.
      if (cfg.backend == TrainBackend::kCpu ||
          cfg.backend == TrainBackend::kLmdb) {
        cpu.Charge("preprocess", batch * 3e-6);
      }
      sched.After(sim::Micros(5), std::move(done));
      return;
    }
    switch (cfg.backend) {
      case TrainBackend::kCpu: {
        const double rate =
            threads_per_gpu * cal::kCpuPreprocessRateTrain;  // per GPU pool
        cpu.Charge("preprocess", batch / cal::kCpuPreprocessRateTrain);
        decode_res[g]->Submit(sim::Seconds(batch / rate), std::move(done));
        break;
      }
      case TrainBackend::kLmdb: {
        const int idx = cfg.lmdb_singleton_service ? 0 : g;
        // Aggregate fetch rate after reader contention, split across the
        // per-GPU reader instances (or kept whole for the singleton).
        double rate = LmdbAggregateRate();
        if (!cfg.lmdb_singleton_service) rate /= cfg.num_gpus;
        cpu.Charge("db_read", batch * cal::kDbCpuPerRecordUs * 1e-6);
        decode_res[idx]->Submit(sim::Seconds(batch / rate), std::move(done));
        break;
      }
      case TrainBackend::kDlbooster: {
        SubmitFpgaBatch(static_cast<int>(g % fpgas.size()), batch,
                        std::move(done));
        break;
      }
      default:
        sched.After(1, std::move(done));
    }
  }

  /// Submit `n` decode jobs to FPGA `idx`; call done when all complete.
  void SubmitFpgaBatch(int idx, int n, sim::EventFn done) {
    auto remaining = std::make_shared<int>(n);
    auto on_one = [this, remaining, done = std::move(done)]() mutable {
      if (--*remaining == 0 && done) done();
    };
    SubmitFpgaJobs(idx, n, on_one);
  }

  void SubmitFpgaJobs(int idx, int n, std::function<void()> on_one) {
    fpga::DecodeJob job;
    job.encoded_bytes = static_cast<uint64_t>(cfg.avg_image_bytes);
    job.pixels = cfg.source_pixels;
    job.out_bytes = 256ull * 256 * 3;
    job.source = fpga::DataSource::kDisk;
    job.scale_denom = cfg.decode_scale_denom;
    int submitted = 0;
    while (submitted < n && fpgas[idx]->SubmitDecode(job, on_one)) {
      ++submitted;
    }
    if (submitted < n) {
      // FIFO full: retry shortly (the FPGAReader's drain-and-retry loop).
      sched.After(sim::Micros(50), [this, idx, n, submitted, on_one] {
        SubmitFpgaJobs(idx, n - submitted, on_one);
      });
    }
  }

  void SupplyLoop(int g) {
    supply_credit[g]->Take([this, g] {
      DecodeBatch(g, [this, g] {
        supply_gate[g]->Add();
        SupplyLoop(g);
      });
    });
  }

  // --- Copy stage ------------------------------------------------------------

  int CopyPieces() const {
    if (cfg.force_per_item_copies) return batch;
    switch (cfg.backend) {
      case TrainBackend::kDlbooster:
      case TrainBackend::kSynthetic:
        return 1;  // batched large-block copy (§5.2)
      default:
        return batch;  // per-datum small copies
    }
  }

  uint64_t BatchTensorBytes() const {
    return static_cast<uint64_t>(batch) * cfg.model->input_w *
           cfg.model->input_h * cfg.model->input_c;
  }

  void CopyLoop(int g) {
    supply_gate[g]->Take([this, g] {
      ready_credit[g]->Take([this, g] {
        gpus[g]->CopyH2D(BatchTensorBytes(), CopyPieces(), [this, g] {
          supply_credit[g]->Add();  // decode slot freed
          ready_gate[g]->Add();
          CopyLoop(g);
        });
      });
    });
  }

  // --- Compute stage ---------------------------------------------------------

  double InterferenceFactor() const {
    if (cfg.backend != TrainBackend::kCpu || cfg.dataset_fits_memory) {
      return 1.0;
    }
    return 1.0 - cal::kCpuBurnInterferenceLoss *
                     std::min(1.0, threads_per_gpu / 12.0);
  }

  double ScalingEfficiency() const {
    if (cfg.num_gpus <= 1) return 1.0;
    const double eff2 = cfg.model->two_gpu_scaling;
    return std::pow(eff2, std::log2(static_cast<double>(cfg.num_gpus)));
  }

  void Barrier(sim::EventFn resume) {
    barrier_waiters.push_back(std::move(resume));
    if (static_cast<int>(barrier_waiters.size()) < cfg.num_gpus) return;
    auto waiters = std::move(barrier_waiters);
    barrier_waiters.clear();
    const double compute_s = batch / (cfg.model->train_rate_per_gpu *
                                      InterferenceFactor());
    const double sync_s = compute_s * (1.0 / ScalingEfficiency() - 1.0);
    sched.After(sim::Seconds(sync_s), [this, waiters = std::move(waiters)] {
      for (const auto& w : waiters) w();
    });
  }

  void ComputeLoop(int g) {
    ready_gate[g]->Take([this, g] {
      const double compute_s = batch / (cfg.model->train_rate_per_gpu *
                                        InterferenceFactor());
      gpus[g]->SubmitCompute(compute_s, 1.0, [this, g, compute_s] {
        ready_credit[g]->Add();  // device buffer freed
        Barrier([this, g, compute_s] {
          // Model update + tensor staging CPU costs (Fig. 6(d)).
          cpu.Charge("model_update", cal::kDlbUpdateCores * compute_s);
          cpu.Charge("transform", cal::kDlbTransformCores * compute_s);
          if (cfg.backend == TrainBackend::kDlbooster &&
              !cfg.dataset_fits_memory) {
            // Host-bridger polling (FPGAReader + Dispatcher).
            cpu.Charge("preprocess", cal::kDlbPreprocessCores * compute_s);
          }
          if (sched.Now() >= warmup_end) images_done += batch;
          ComputeLoop(g);
        });
      });
    });
  }

  TrainResult Run() {
    const sim::SimTime horizon = sim::Seconds(cfg.sim_seconds);
    warmup_end = horizon / 5;  // discard the 20% warm-up transient
    for (int g = 0; g < cfg.num_gpus; ++g) {
      SupplyLoop(g);
      CopyLoop(g);
      ComputeLoop(g);
    }
    sched.RunUntil(horizon);
    for (auto& g : gpus) g->ChargeLaunchCores();

    TrainResult result;
    const double measured = sim::ToSeconds(horizon - warmup_end);
    result.throughput = images_done / measured;
    result.cpu_cores = cpu.TotalCores();
    for (const auto& [k, v] : cpu.CoreSecondsByCategory()) {
      result.cpu_by_category[k] = v / sim::ToSeconds(horizon);
    }
    result.decode_threads_per_gpu =
        cfg.backend == TrainBackend::kCpu ? threads_per_gpu : 0;
    double util = 0;
    for (const auto& g : gpus) util += g->ComputeUtilization();
    result.gpu_compute_util = util / gpus.size();
    for (const auto& f : fpgas) {
      result.fpga_util = std::max(
          {result.fpga_util, f->HuffmanUtilization(), f->IdctUtilization(),
           f->ResizerUtilization(), f->ReaderUtilization()});
    }
    return result;
  }

  TrainConfig cfg;
  sim::Scheduler sched;
  sim::CpuAccountant cpu;
  int batch = 0;
  int threads_per_gpu = 0;

  std::vector<std::unique_ptr<gpu::GpuDevice>> gpus;
  std::vector<std::unique_ptr<sim::Resource>> decode_res;
  std::vector<std::unique_ptr<fpga::FpgaDecoderSim>> fpgas;

  std::vector<std::unique_ptr<CountGate>> supply_gate;    // decoded batches
  std::vector<std::unique_ptr<CountGate>> supply_credit;  // decode-ahead slots
  std::vector<std::unique_ptr<CountGate>> ready_gate;     // copied batches
  std::vector<std::unique_ptr<CountGate>> ready_credit;   // device buffers

  std::vector<sim::EventFn> barrier_waiters;
  uint64_t images_done = 0;
  sim::SimTime warmup_end = 0;
};

}  // namespace

const char* TrainBackendName(TrainBackend backend) {
  switch (backend) {
    case TrainBackend::kSynthetic: return "synthetic";
    case TrainBackend::kCpu: return "cpu";
    case TrainBackend::kLmdb: return "lmdb";
    case TrainBackend::kDlbooster: return "dlbooster";
  }
  return "?";
}

TrainResult SimulateTraining(const TrainConfig& config) {
  TrainSim sim(config);
  return sim.Run();
}

}  // namespace dlb::workflow
