// Economic analysis of §5.4: what replacing burned CPU cores with an FPGA
// decoder is worth, to users and to the cloud provider.
#pragma once

#include <string>

namespace dlb::workflow {

struct EconInput {
  double cores_replaced = 30;       // well-optimised decoder ~ 30 cores
  double fpga_price_dollars = 3000; // Arria-10 class board
  double core_dollars_per_hour = 0.105;
  double electricity_dollars_per_kwh = 0.10;
  double fpga_watts = 25;
  double cpu_watts_per_core = 130.0 / 16;  // 130 W socket / 16 cores
  double gpu_watts = 250;
};

struct EconReport {
  double core_revenue_per_year = 0;     // $ for the freed cores, resellable
  double fpga_payback_days = 0;         // board price / freed-core revenue
  double power_saved_watts = 0;         // CPU-equivalent power minus FPGA
  double power_saved_dollars_per_year = 0;
  double freed_core_dollars_per_hour = 0;
};

EconReport AnalyzeEconomics(const EconInput& input);

/// Human-readable rendering used by bench_econ_analysis.
std::string RenderEconReport(const EconInput& input, const EconReport& report);

}  // namespace dlb::workflow
