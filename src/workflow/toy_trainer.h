// A small real learner over decoded batches — multinomial logistic
// regression on average-pooled pixels.
//
// Its purpose is to close the loop on the runtime layer: prove the bytes a
// backend produces are *trainable data* (loss goes down on the synthetic
// datasets, whose labels are visually encoded), not to compete with real
// models. The training example and the end-to-end tests both use it.
#pragma once

#include <vector>

#include "backends/backend.h"

namespace dlb::workflow {

class ToyClassifier {
 public:
  /// `features` must be a perfect square (the pooling grid is sqrt x sqrt).
  ToyClassifier(int features, int classes);

  /// One SGD step over every decodable image in the batch; returns mean
  /// cross-entropy loss (0 when the batch had no usable images).
  double Step(const PreprocessBatch& batch, float learning_rate);

  /// Predicted class for one image.
  int Predict(const ImageRef& ref) const;

  /// Fraction of the batch classified correctly (before updating).
  double Accuracy(const PreprocessBatch& batch) const;

  int Features() const { return features_; }
  int Classes() const { return classes_; }

 private:
  void Featurize(const ImageRef& ref, std::vector<float>* x) const;
  void Logits(const std::vector<float>& x, std::vector<float>* out) const;

  int features_;
  int classes_;
  int grid_;
  std::vector<float> weights_;  // classes x features
};

}  // namespace dlb::workflow
