#include "workflow/inference_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <vector>

#include "common/log.h"
#include "common/stats.h"
#include "dataplane/nic_model.h"
#include "fpga/fpga_decoder_sim.h"
#include "gpu/gpu_sim.h"
#include "sim/cpu_accountant.h"
#include "sim/resource.h"
#include "sim/scheduler.h"

namespace dlb::workflow {

namespace {

struct Request {
  sim::SimTime received_at = 0;  // when the server got the image (NIC done)
};

struct InferSim {
  explicit InferSim(const InferConfig& config)
      : cfg(config), cpu(&sched), nic(&sched, &cpu) {
    DLB_CHECK(cfg.batch_size > 0 && cfg.num_gpus > 0);
    for (int g = 0; g < cfg.num_gpus; ++g) {
      gpus.push_back(std::make_unique<gpu::GpuDevice>(&sched, &cpu, g));
    }
    switch (cfg.backend) {
      case InferBackend::kCpu: {
        decode_threads = cfg.cpu_decode_threads;
        if (decode_threads == 0) {
          // Best effort, bounded by what the serving stack can use per GPU.
          const int demand = static_cast<int>(
              std::ceil(cfg.model->infer_rate_per_gpu * cfg.num_gpus /
                        cal::kCpuPreprocessRateInfer));
          decode_threads = std::min(
              {demand, cal::kCpuInferMaxCoresPerGpu * cfg.num_gpus,
               cal::kCpuTotalCores - 2 * cfg.num_gpus});
          decode_threads = std::max(decode_threads, 1);
        }
        cpu_decode = std::make_unique<sim::Resource>(&sched, decode_threads,
                                                     "cpu.decode");
        break;
      }
      case InferBackend::kNvjpeg:
        break;  // decode runs on the GPUs themselves
      case InferBackend::kDlbooster: {
        fpga::DecoderConfig fc = cfg.fpga_config;
        fc.cmd_fifo_depth = std::max(fc.cmd_fifo_depth, 256);
        for (int i = 0; i < cfg.fpga_pipelines; ++i) {
          fpgas.push_back(std::make_unique<fpga::FpgaDecoderSim>(&sched, fc));
        }
        break;
      }
    }
  }

  // Closed-loop window: enough outstanding images to keep the pipeline
  // busy at the configured batch size without flooding the queues.
  int Window() const {
    return std::max(2 * cfg.batch_size * cfg.num_gpus, 2);
  }

  /// One client slot sends an image; recursion keeps the window constant.
  void ClientSend() {
    nic.Receive(static_cast<uint64_t>(cfg.avg_image_bytes), [this] {
      Request req;
      req.received_at = sched.Now();
      DecodeOne(req);
    });
  }

  void DecodeOne(const Request& req) {
    switch (cfg.backend) {
      case InferBackend::kCpu: {
        cpu.Charge("preprocess", 1.0 / cal::kCpuPreprocessRateInfer);
        cpu_decode->Submit(sim::Seconds(1.0 / cal::kCpuPreprocessRateInfer),
                           [this, req] { EnqueueDecoded(req); });
        break;
      }
      case InferBackend::kNvjpeg: {
        // Decode competes with inference kernels on the SAME GPU pool.
        const int g = rr_decode++ % cfg.num_gpus;
        cpu.Charge("nvjpeg_launch", cal::kNvjpegHostLatencySeconds * 0.5);
        sched.After(sim::Seconds(cal::kNvjpegHostLatencySeconds), [this, g,
                                                                   req] {
          gpus[g]->SubmitCompute(cal::kNvjpegDecodeGpuSeconds, 1.0,
                                 [this, req] { EnqueueDecoded(req); });
        });
        break;
      }
      case InferBackend::kDlbooster: {
        cpu.Charge("preprocess", cal::kDlbInferCpuPerImage);
        fpga::DecodeJob job;
        job.encoded_bytes = static_cast<uint64_t>(cfg.avg_image_bytes);
        job.pixels = cfg.source_pixels;
        job.out_bytes = static_cast<uint64_t>(cfg.model->input_w) *
                        cfg.model->input_h * cfg.model->input_c;
        job.source = fpga::DataSource::kDram;
        job.scale_denom = cfg.decode_scale_denom;
        const size_t idx = rr_decode++ % fpgas.size();
        if (!fpgas[idx]->SubmitDecode(job,
                                      [this, req] { EnqueueDecoded(req); })) {
          // FIFO full: retry shortly (FPGAReader behaviour).
          sched.After(sim::Micros(50), [this, req] { DecodeOne(req); });
        }
        break;
      }
    }
  }

  void EnqueueDecoded(const Request& req) {
    decoded.push_back(req);
    TryLaunchBatches();
  }

  void TryLaunchBatches() {
    while (static_cast<int>(decoded.size()) >= cfg.batch_size) {
      // Find an idle GPU; engines run one batch at a time (TensorRT
      // enqueue on a single stream per engine).
      int g = -1;
      for (int i = 0; i < cfg.num_gpus; ++i) {
        if (!gpu_busy[rr_gpu % cfg.num_gpus]) {
          g = rr_gpu % cfg.num_gpus;
          break;
        }
        ++rr_gpu;
      }
      if (g < 0) return;
      ++rr_gpu;
      gpu_busy[g] = true;
      std::vector<Request> reqs(decoded.begin(),
                                decoded.begin() + cfg.batch_size);
      decoded.erase(decoded.begin(), decoded.begin() + cfg.batch_size);
      LaunchBatch(g, std::move(reqs));
    }
  }

  void LaunchBatch(int g, std::vector<Request> reqs) {
    auto compute = [this, g, reqs = std::move(reqs)]() mutable {
      const double work = cfg.model->InferBatchSeconds(cfg.batch_size);
      gpus[g]->SubmitCompute(work, 1.0, [this, g,
                                         reqs = std::move(reqs)]() mutable {
        for (const Request& r : reqs) {
          latency.Record(sched.Now() - r.received_at);
          if (sched.Now() >= warmup_end) ++images_done;
          ClientSend();  // closed loop: window slot freed
        }
        gpu_busy[g] = false;
        TryLaunchBatches();
      });
    };
    if (cfg.direct_gpu_write && cfg.backend == InferBackend::kDlbooster) {
      // §7(2): pixels already landed in device memory via decoder DMA.
      compute();
      return;
    }
    const uint64_t tensor_bytes = static_cast<uint64_t>(cfg.batch_size) *
                                  cfg.model->input_w * cfg.model->input_h *
                                  cfg.model->input_c * 2;  // fp16
    const int pieces =
        cfg.backend == InferBackend::kDlbooster ? 1 : cfg.batch_size;
    gpus[g]->CopyH2D(tensor_bytes, pieces, std::move(compute));
  }

  InferResult Run() {
    gpu_busy.assign(cfg.num_gpus, false);
    const sim::SimTime horizon = sim::Seconds(cfg.sim_seconds);
    warmup_end = horizon / 5;
    for (int i = 0; i < Window(); ++i) ClientSend();
    sched.RunUntil(horizon);
    for (auto& g : gpus) g->ChargeLaunchCores();

    InferResult result;
    result.throughput = images_done / sim::ToSeconds(horizon - warmup_end);
    result.latency_ms_mean = latency.Mean() / 1e6;
    result.latency_ms_p50 = latency.Quantile(0.5) / 1e6;
    result.latency_ms_p99 = latency.Quantile(0.99) / 1e6;
    result.cpu_cores = cpu.TotalCores();
    for (const auto& [k, v] : cpu.CoreSecondsByCategory()) {
      result.cpu_by_category[k] = v / sim::ToSeconds(horizon);
    }
    double util = 0;
    for (const auto& g : gpus) util += g->ComputeUtilization();
    result.gpu_compute_util = util / gpus.size();
    result.decode_threads = decode_threads;
    return result;
  }

  InferConfig cfg;
  sim::Scheduler sched;
  sim::CpuAccountant cpu;
  NicModel nic;
  std::vector<std::unique_ptr<gpu::GpuDevice>> gpus;
  std::unique_ptr<sim::Resource> cpu_decode;
  std::vector<std::unique_ptr<fpga::FpgaDecoderSim>> fpgas;

  std::deque<Request> decoded;
  std::vector<bool> gpu_busy;
  uint64_t rr_decode = 0;
  uint64_t rr_gpu = 0;
  int decode_threads = 0;
  uint64_t images_done = 0;
  sim::SimTime warmup_end = 0;
  Histogram latency;
};

}  // namespace

const char* InferBackendName(InferBackend backend) {
  switch (backend) {
    case InferBackend::kCpu: return "cpu";
    case InferBackend::kNvjpeg: return "nvjpeg";
    case InferBackend::kDlbooster: return "dlbooster";
  }
  return "?";
}

InferResult SimulateInference(const InferConfig& config) {
  InferSim sim(config);
  return sim.Run();
}

}  // namespace dlb::workflow
