// Offline-training workflow simulator (reproduces Figs. 2, 5, 6).
//
// Mirrors the paper's NVCaffe data-parallel setup: each GPU runs
// prefetch -> H2D copy -> forward/backward -> gradient all-reduce ->
// update, fed by one of four preprocessing backends. Throughput is whatever
// the slowest of {supply, copy, compute} sustains, and CPU cost is
// accounted per category exactly as Fig. 6(d) breaks it down.
#pragma once

#include <map>
#include <string>

#include "fpga/decoder_config.h"
#include "gpu/model_zoo.h"
#include "sim/calibration.h"

namespace dlb::workflow {

enum class TrainBackend { kSynthetic, kCpu, kLmdb, kDlbooster };

const char* TrainBackendName(TrainBackend backend);

struct TrainConfig {
  const gpu::DlModel* model = &gpu::AlexNet();
  TrainBackend backend = TrainBackend::kDlbooster;
  int num_gpus = 1;
  int batch_size = 0;  // 0 = the model's paper batch size
  /// CPU backend decode threads per GPU; 0 = best-effort sizing (burn as
  /// many cores as the model demands, Fig. 2(b)'s regime).
  int cpu_decode_threads_per_gpu = 0;
  /// MNIST case: the dataset fits in memory after the first epoch (§5.2),
  /// so steady-state supply is a cache replay for every backend.
  bool dataset_fits_memory = false;
  /// Decoder pipelines (FPGA devices) serving the DLBooster backend.
  int fpga_pipelines = 1;
  fpga::DecoderConfig fpga_config{};
  double sim_seconds = 30.0;
  double avg_image_bytes = cal::kAvgJpegBytes;
  uint64_t source_pixels = 500ull * 375;
  /// Decode-to-scale denominator applied by the FPGA decoder model (1, 2,
  /// 4, 8): iDCT and resizer service times shrink by denom^2.
  int decode_scale_denom = 1;
  /// Ablation override: force per-item H2D copies even for DLBooster.
  bool force_per_item_copies = false;
  /// Ablation override: fragment the FPGA decoder into per-GPU instances
  /// (each gets a share of the unit ways) instead of the shared singleton.
  bool per_gpu_decoder_instances = false;
  /// Ablation override: serve the LMDB through ONE reader service instead
  /// of the per-GPU data-layer readers Caffe actually runs (the default,
  /// contended arrangement is what Fig. 2 measures).
  bool lmdb_singleton_service = false;
};

struct TrainResult {
  double throughput = 0;  // img/s, all GPUs
  double cpu_cores = 0;   // avg cores busy, all categories
  std::map<std::string, double> cpu_by_category;
  int decode_threads_per_gpu = 0;
  double gpu_compute_util = 0;  // mean across GPUs
  double fpga_util = 0;         // busiest FPGA unit utilisation
};

/// Run the DES and report steady-state numbers.
TrainResult SimulateTraining(const TrainConfig& config);

}  // namespace dlb::workflow
