#include "workflow/toy_trainer.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace dlb::workflow {

ToyClassifier::ToyClassifier(int features, int classes)
    : features_(features),
      classes_(classes),
      grid_(static_cast<int>(std::lround(std::sqrt(features)))),
      weights_(static_cast<size_t>(features) * classes, 0.0f) {
  DLB_CHECK(grid_ * grid_ == features_);
  DLB_CHECK(classes_ > 1);
}

void ToyClassifier::Featurize(const ImageRef& ref,
                              std::vector<float>* x) const {
  x->assign(features_, 0.0f);
  for (int gy = 0; gy < grid_; ++gy) {
    for (int gx = 0; gx < grid_; ++gx) {
      long sum = 0;
      int count = 0;
      const int x0 = gx * ref.width / grid_;
      const int x1 = (gx + 1) * ref.width / grid_;
      const int y0 = gy * ref.height / grid_;
      const int y1 = (gy + 1) * ref.height / grid_;
      for (int y = y0; y < y1; ++y) {
        for (int xx = x0; xx < x1; ++xx) {
          sum += ref.data[(static_cast<size_t>(y) * ref.width + xx) *
                          ref.channels];
          ++count;
        }
      }
      (*x)[static_cast<size_t>(gy) * grid_ + gx] =
          count ? (sum / static_cast<float>(count) - 128.0f) / 128.0f : 0.0f;
    }
  }
}

void ToyClassifier::Logits(const std::vector<float>& x,
                           std::vector<float>* out) const {
  out->assign(classes_, 0.0f);
  for (int c = 0; c < classes_; ++c) {
    float acc = 0;
    for (int f = 0; f < features_; ++f) {
      acc += weights_[static_cast<size_t>(c) * features_ + f] * x[f];
    }
    (*out)[c] = acc;
  }
}

double ToyClassifier::Step(const PreprocessBatch& batch, float learning_rate) {
  double total_loss = 0.0;
  int n = 0;
  std::vector<float> x, logits;
  for (size_t i = 0; i < batch.Size(); ++i) {
    const ImageRef ref = batch.At(i);
    if (!ref.ok) continue;
    Featurize(ref, &x);
    const int label = ((ref.label % classes_) + classes_) % classes_;
    Logits(x, &logits);
    const float max_logit = *std::max_element(logits.begin(), logits.end());
    double z = 0;
    for (float& l : logits) {
      l = std::exp(l - max_logit);
      z += l;
    }
    total_loss += -std::log(logits[label] / z + 1e-12);
    for (int c = 0; c < classes_; ++c) {
      const float p = static_cast<float>(logits[c] / z);
      const float g = p - (c == label ? 1.0f : 0.0f);
      for (int f = 0; f < features_; ++f) {
        weights_[static_cast<size_t>(c) * features_ + f] -=
            learning_rate * g * x[f];
      }
    }
    ++n;
  }
  return n ? total_loss / n : 0.0;
}

int ToyClassifier::Predict(const ImageRef& ref) const {
  std::vector<float> x, logits;
  Featurize(ref, &x);
  Logits(x, &logits);
  return static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

double ToyClassifier::Accuracy(const PreprocessBatch& batch) const {
  int correct = 0, total = 0;
  for (size_t i = 0; i < batch.Size(); ++i) {
    const ImageRef ref = batch.At(i);
    if (!ref.ok) continue;
    ++total;
    const int label = ((ref.label % classes_) + classes_) % classes_;
    if (Predict(ref) == label) ++correct;
  }
  return total ? static_cast<double>(correct) / total : 0.0;
}

}  // namespace dlb::workflow
