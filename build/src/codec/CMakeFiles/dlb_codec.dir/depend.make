# Empty dependencies file for dlb_codec.
# This may be replaced when dependencies are built.
