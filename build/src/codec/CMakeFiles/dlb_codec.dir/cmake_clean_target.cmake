file(REMOVE_RECURSE
  "libdlb_codec.a"
)
