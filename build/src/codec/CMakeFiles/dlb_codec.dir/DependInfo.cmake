
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/color.cpp" "src/codec/CMakeFiles/dlb_codec.dir/color.cpp.o" "gcc" "src/codec/CMakeFiles/dlb_codec.dir/color.cpp.o.d"
  "/root/repo/src/codec/dct.cpp" "src/codec/CMakeFiles/dlb_codec.dir/dct.cpp.o" "gcc" "src/codec/CMakeFiles/dlb_codec.dir/dct.cpp.o.d"
  "/root/repo/src/codec/huffman.cpp" "src/codec/CMakeFiles/dlb_codec.dir/huffman.cpp.o" "gcc" "src/codec/CMakeFiles/dlb_codec.dir/huffman.cpp.o.d"
  "/root/repo/src/codec/inflate.cpp" "src/codec/CMakeFiles/dlb_codec.dir/inflate.cpp.o" "gcc" "src/codec/CMakeFiles/dlb_codec.dir/inflate.cpp.o.d"
  "/root/repo/src/codec/jpeg_decoder.cpp" "src/codec/CMakeFiles/dlb_codec.dir/jpeg_decoder.cpp.o" "gcc" "src/codec/CMakeFiles/dlb_codec.dir/jpeg_decoder.cpp.o.d"
  "/root/repo/src/codec/jpeg_encoder.cpp" "src/codec/CMakeFiles/dlb_codec.dir/jpeg_encoder.cpp.o" "gcc" "src/codec/CMakeFiles/dlb_codec.dir/jpeg_encoder.cpp.o.d"
  "/root/repo/src/codec/png.cpp" "src/codec/CMakeFiles/dlb_codec.dir/png.cpp.o" "gcc" "src/codec/CMakeFiles/dlb_codec.dir/png.cpp.o.d"
  "/root/repo/src/codec/ppm.cpp" "src/codec/CMakeFiles/dlb_codec.dir/ppm.cpp.o" "gcc" "src/codec/CMakeFiles/dlb_codec.dir/ppm.cpp.o.d"
  "/root/repo/src/codec/tables.cpp" "src/codec/CMakeFiles/dlb_codec.dir/tables.cpp.o" "gcc" "src/codec/CMakeFiles/dlb_codec.dir/tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dlb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/dlb_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
