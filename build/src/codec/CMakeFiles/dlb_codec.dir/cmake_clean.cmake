file(REMOVE_RECURSE
  "CMakeFiles/dlb_codec.dir/color.cpp.o"
  "CMakeFiles/dlb_codec.dir/color.cpp.o.d"
  "CMakeFiles/dlb_codec.dir/dct.cpp.o"
  "CMakeFiles/dlb_codec.dir/dct.cpp.o.d"
  "CMakeFiles/dlb_codec.dir/huffman.cpp.o"
  "CMakeFiles/dlb_codec.dir/huffman.cpp.o.d"
  "CMakeFiles/dlb_codec.dir/inflate.cpp.o"
  "CMakeFiles/dlb_codec.dir/inflate.cpp.o.d"
  "CMakeFiles/dlb_codec.dir/jpeg_decoder.cpp.o"
  "CMakeFiles/dlb_codec.dir/jpeg_decoder.cpp.o.d"
  "CMakeFiles/dlb_codec.dir/jpeg_encoder.cpp.o"
  "CMakeFiles/dlb_codec.dir/jpeg_encoder.cpp.o.d"
  "CMakeFiles/dlb_codec.dir/png.cpp.o"
  "CMakeFiles/dlb_codec.dir/png.cpp.o.d"
  "CMakeFiles/dlb_codec.dir/ppm.cpp.o"
  "CMakeFiles/dlb_codec.dir/ppm.cpp.o.d"
  "CMakeFiles/dlb_codec.dir/tables.cpp.o"
  "CMakeFiles/dlb_codec.dir/tables.cpp.o.d"
  "libdlb_codec.a"
  "libdlb_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
