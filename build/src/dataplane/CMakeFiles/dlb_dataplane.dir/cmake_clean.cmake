file(REMOVE_RECURSE
  "CMakeFiles/dlb_dataplane.dir/batch_loader.cpp.o"
  "CMakeFiles/dlb_dataplane.dir/batch_loader.cpp.o.d"
  "CMakeFiles/dlb_dataplane.dir/blob_store.cpp.o"
  "CMakeFiles/dlb_dataplane.dir/blob_store.cpp.o.d"
  "CMakeFiles/dlb_dataplane.dir/disk_model.cpp.o"
  "CMakeFiles/dlb_dataplane.dir/disk_model.cpp.o.d"
  "CMakeFiles/dlb_dataplane.dir/manifest.cpp.o"
  "CMakeFiles/dlb_dataplane.dir/manifest.cpp.o.d"
  "CMakeFiles/dlb_dataplane.dir/nic_model.cpp.o"
  "CMakeFiles/dlb_dataplane.dir/nic_model.cpp.o.d"
  "CMakeFiles/dlb_dataplane.dir/synthetic_dataset.cpp.o"
  "CMakeFiles/dlb_dataplane.dir/synthetic_dataset.cpp.o.d"
  "libdlb_dataplane.a"
  "libdlb_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
