
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/batch_loader.cpp" "src/dataplane/CMakeFiles/dlb_dataplane.dir/batch_loader.cpp.o" "gcc" "src/dataplane/CMakeFiles/dlb_dataplane.dir/batch_loader.cpp.o.d"
  "/root/repo/src/dataplane/blob_store.cpp" "src/dataplane/CMakeFiles/dlb_dataplane.dir/blob_store.cpp.o" "gcc" "src/dataplane/CMakeFiles/dlb_dataplane.dir/blob_store.cpp.o.d"
  "/root/repo/src/dataplane/disk_model.cpp" "src/dataplane/CMakeFiles/dlb_dataplane.dir/disk_model.cpp.o" "gcc" "src/dataplane/CMakeFiles/dlb_dataplane.dir/disk_model.cpp.o.d"
  "/root/repo/src/dataplane/manifest.cpp" "src/dataplane/CMakeFiles/dlb_dataplane.dir/manifest.cpp.o" "gcc" "src/dataplane/CMakeFiles/dlb_dataplane.dir/manifest.cpp.o.d"
  "/root/repo/src/dataplane/nic_model.cpp" "src/dataplane/CMakeFiles/dlb_dataplane.dir/nic_model.cpp.o" "gcc" "src/dataplane/CMakeFiles/dlb_dataplane.dir/nic_model.cpp.o.d"
  "/root/repo/src/dataplane/synthetic_dataset.cpp" "src/dataplane/CMakeFiles/dlb_dataplane.dir/synthetic_dataset.cpp.o" "gcc" "src/dataplane/CMakeFiles/dlb_dataplane.dir/synthetic_dataset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dlb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/dlb_image.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/dlb_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
