# Empty compiler generated dependencies file for dlb_dataplane.
# This may be replaced when dependencies are built.
