file(REMOVE_RECURSE
  "libdlb_dataplane.a"
)
