file(REMOVE_RECURSE
  "CMakeFiles/dlb_sim.dir/cpu_accountant.cpp.o"
  "CMakeFiles/dlb_sim.dir/cpu_accountant.cpp.o.d"
  "CMakeFiles/dlb_sim.dir/processor_sharing.cpp.o"
  "CMakeFiles/dlb_sim.dir/processor_sharing.cpp.o.d"
  "CMakeFiles/dlb_sim.dir/resource.cpp.o"
  "CMakeFiles/dlb_sim.dir/resource.cpp.o.d"
  "CMakeFiles/dlb_sim.dir/scheduler.cpp.o"
  "CMakeFiles/dlb_sim.dir/scheduler.cpp.o.d"
  "libdlb_sim.a"
  "libdlb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
