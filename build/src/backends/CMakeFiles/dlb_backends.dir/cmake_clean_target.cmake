file(REMOVE_RECURSE
  "libdlb_backends.a"
)
