file(REMOVE_RECURSE
  "CMakeFiles/dlb_backends.dir/backend.cpp.o"
  "CMakeFiles/dlb_backends.dir/backend.cpp.o.d"
  "CMakeFiles/dlb_backends.dir/cached_backend.cpp.o"
  "CMakeFiles/dlb_backends.dir/cached_backend.cpp.o.d"
  "CMakeFiles/dlb_backends.dir/cpu_backend.cpp.o"
  "CMakeFiles/dlb_backends.dir/cpu_backend.cpp.o.d"
  "CMakeFiles/dlb_backends.dir/dlbooster_backend.cpp.o"
  "CMakeFiles/dlb_backends.dir/dlbooster_backend.cpp.o.d"
  "CMakeFiles/dlb_backends.dir/lmdb_backend.cpp.o"
  "CMakeFiles/dlb_backends.dir/lmdb_backend.cpp.o.d"
  "CMakeFiles/dlb_backends.dir/synthetic_backend.cpp.o"
  "CMakeFiles/dlb_backends.dir/synthetic_backend.cpp.o.d"
  "libdlb_backends.a"
  "libdlb_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
