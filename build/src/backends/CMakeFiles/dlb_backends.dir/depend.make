# Empty dependencies file for dlb_backends.
# This may be replaced when dependencies are built.
