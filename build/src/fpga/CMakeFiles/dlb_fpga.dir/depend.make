# Empty dependencies file for dlb_fpga.
# This may be replaced when dependencies are built.
