file(REMOVE_RECURSE
  "libdlb_fpga.a"
)
