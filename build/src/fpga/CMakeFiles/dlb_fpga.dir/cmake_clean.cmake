file(REMOVE_RECURSE
  "CMakeFiles/dlb_fpga.dir/decoder_config.cpp.o"
  "CMakeFiles/dlb_fpga.dir/decoder_config.cpp.o.d"
  "CMakeFiles/dlb_fpga.dir/fpga_decoder_sim.cpp.o"
  "CMakeFiles/dlb_fpga.dir/fpga_decoder_sim.cpp.o.d"
  "CMakeFiles/dlb_fpga.dir/fpga_device.cpp.o"
  "CMakeFiles/dlb_fpga.dir/fpga_device.cpp.o.d"
  "libdlb_fpga.a"
  "libdlb_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
