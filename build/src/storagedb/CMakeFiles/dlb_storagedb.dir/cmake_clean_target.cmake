file(REMOVE_RECURSE
  "libdlb_storagedb.a"
)
