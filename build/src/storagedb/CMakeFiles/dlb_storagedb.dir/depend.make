# Empty dependencies file for dlb_storagedb.
# This may be replaced when dependencies are built.
