file(REMOVE_RECURSE
  "CMakeFiles/dlb_storagedb.dir/dataset_convert.cpp.o"
  "CMakeFiles/dlb_storagedb.dir/dataset_convert.cpp.o.d"
  "CMakeFiles/dlb_storagedb.dir/kv_store.cpp.o"
  "CMakeFiles/dlb_storagedb.dir/kv_store.cpp.o.d"
  "CMakeFiles/dlb_storagedb.dir/page_store.cpp.o"
  "CMakeFiles/dlb_storagedb.dir/page_store.cpp.o.d"
  "libdlb_storagedb.a"
  "libdlb_storagedb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_storagedb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
