file(REMOVE_RECURSE
  "libdlb_hostbridge.a"
)
