file(REMOVE_RECURSE
  "CMakeFiles/dlb_hostbridge.dir/data_collector.cpp.o"
  "CMakeFiles/dlb_hostbridge.dir/data_collector.cpp.o.d"
  "CMakeFiles/dlb_hostbridge.dir/dispatcher.cpp.o"
  "CMakeFiles/dlb_hostbridge.dir/dispatcher.cpp.o.d"
  "CMakeFiles/dlb_hostbridge.dir/fpga_reader.cpp.o"
  "CMakeFiles/dlb_hostbridge.dir/fpga_reader.cpp.o.d"
  "CMakeFiles/dlb_hostbridge.dir/hugepage_pool.cpp.o"
  "CMakeFiles/dlb_hostbridge.dir/hugepage_pool.cpp.o.d"
  "libdlb_hostbridge.a"
  "libdlb_hostbridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_hostbridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
