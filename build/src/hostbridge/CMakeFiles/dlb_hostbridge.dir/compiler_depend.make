# Empty compiler generated dependencies file for dlb_hostbridge.
# This may be replaced when dependencies are built.
