file(REMOVE_RECURSE
  "libdlb_workflow.a"
)
