file(REMOVE_RECURSE
  "CMakeFiles/dlb_workflow.dir/econ.cpp.o"
  "CMakeFiles/dlb_workflow.dir/econ.cpp.o.d"
  "CMakeFiles/dlb_workflow.dir/inference_sim.cpp.o"
  "CMakeFiles/dlb_workflow.dir/inference_sim.cpp.o.d"
  "CMakeFiles/dlb_workflow.dir/report.cpp.o"
  "CMakeFiles/dlb_workflow.dir/report.cpp.o.d"
  "CMakeFiles/dlb_workflow.dir/toy_trainer.cpp.o"
  "CMakeFiles/dlb_workflow.dir/toy_trainer.cpp.o.d"
  "CMakeFiles/dlb_workflow.dir/training_sim.cpp.o"
  "CMakeFiles/dlb_workflow.dir/training_sim.cpp.o.d"
  "libdlb_workflow.a"
  "libdlb_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
