# Empty compiler generated dependencies file for dlb_workflow.
# This may be replaced when dependencies are built.
