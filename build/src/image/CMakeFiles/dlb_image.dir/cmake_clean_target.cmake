file(REMOVE_RECURSE
  "libdlb_image.a"
)
