
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/image.cpp" "src/image/CMakeFiles/dlb_image.dir/image.cpp.o" "gcc" "src/image/CMakeFiles/dlb_image.dir/image.cpp.o.d"
  "/root/repo/src/image/resize.cpp" "src/image/CMakeFiles/dlb_image.dir/resize.cpp.o" "gcc" "src/image/CMakeFiles/dlb_image.dir/resize.cpp.o.d"
  "/root/repo/src/image/tensor.cpp" "src/image/CMakeFiles/dlb_image.dir/tensor.cpp.o" "gcc" "src/image/CMakeFiles/dlb_image.dir/tensor.cpp.o.d"
  "/root/repo/src/image/transform.cpp" "src/image/CMakeFiles/dlb_image.dir/transform.cpp.o" "gcc" "src/image/CMakeFiles/dlb_image.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dlb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
