file(REMOVE_RECURSE
  "CMakeFiles/dlb_image.dir/image.cpp.o"
  "CMakeFiles/dlb_image.dir/image.cpp.o.d"
  "CMakeFiles/dlb_image.dir/resize.cpp.o"
  "CMakeFiles/dlb_image.dir/resize.cpp.o.d"
  "CMakeFiles/dlb_image.dir/tensor.cpp.o"
  "CMakeFiles/dlb_image.dir/tensor.cpp.o.d"
  "CMakeFiles/dlb_image.dir/transform.cpp.o"
  "CMakeFiles/dlb_image.dir/transform.cpp.o.d"
  "libdlb_image.a"
  "libdlb_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
