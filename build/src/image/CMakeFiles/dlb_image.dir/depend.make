# Empty dependencies file for dlb_image.
# This may be replaced when dependencies are built.
