file(REMOVE_RECURSE
  "CMakeFiles/dlb_common.dir/config.cpp.o"
  "CMakeFiles/dlb_common.dir/config.cpp.o.d"
  "CMakeFiles/dlb_common.dir/log.cpp.o"
  "CMakeFiles/dlb_common.dir/log.cpp.o.d"
  "CMakeFiles/dlb_common.dir/stats.cpp.o"
  "CMakeFiles/dlb_common.dir/stats.cpp.o.d"
  "CMakeFiles/dlb_common.dir/thread_pool.cpp.o"
  "CMakeFiles/dlb_common.dir/thread_pool.cpp.o.d"
  "libdlb_common.a"
  "libdlb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
