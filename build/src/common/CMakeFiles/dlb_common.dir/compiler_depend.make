# Empty compiler generated dependencies file for dlb_common.
# This may be replaced when dependencies are built.
