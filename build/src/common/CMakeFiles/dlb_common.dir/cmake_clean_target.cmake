file(REMOVE_RECURSE
  "libdlb_common.a"
)
