file(REMOVE_RECURSE
  "CMakeFiles/dlb_gpu.dir/gpu_sim.cpp.o"
  "CMakeFiles/dlb_gpu.dir/gpu_sim.cpp.o.d"
  "CMakeFiles/dlb_gpu.dir/model_zoo.cpp.o"
  "CMakeFiles/dlb_gpu.dir/model_zoo.cpp.o.d"
  "libdlb_gpu.a"
  "libdlb_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
