# Empty compiler generated dependencies file for dlb_gpu.
# This may be replaced when dependencies are built.
