file(REMOVE_RECURSE
  "libdlb_gpu.a"
)
