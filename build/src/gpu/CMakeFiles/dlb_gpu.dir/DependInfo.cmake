
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/gpu_sim.cpp" "src/gpu/CMakeFiles/dlb_gpu.dir/gpu_sim.cpp.o" "gcc" "src/gpu/CMakeFiles/dlb_gpu.dir/gpu_sim.cpp.o.d"
  "/root/repo/src/gpu/model_zoo.cpp" "src/gpu/CMakeFiles/dlb_gpu.dir/model_zoo.cpp.o" "gcc" "src/gpu/CMakeFiles/dlb_gpu.dir/model_zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dlb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
