file(REMOVE_RECURSE
  "CMakeFiles/dlb_core.dir/pipeline.cpp.o"
  "CMakeFiles/dlb_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/dlb_core.dir/plugin.cpp.o"
  "CMakeFiles/dlb_core.dir/plugin.cpp.o.d"
  "libdlb_core.a"
  "libdlb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
