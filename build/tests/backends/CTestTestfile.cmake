# CMake generated Testfile for 
# Source directory: /root/repo/tests/backends
# Build directory: /root/repo/build/tests/backends
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/backends/cpu_backend_test[1]_include.cmake")
include("/root/repo/build/tests/backends/lmdb_backend_test[1]_include.cmake")
include("/root/repo/build/tests/backends/dlbooster_backend_test[1]_include.cmake")
include("/root/repo/build/tests/backends/backend_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/backends/cached_backend_test[1]_include.cmake")
include("/root/repo/build/tests/backends/synthetic_backend_test[1]_include.cmake")
include("/root/repo/build/tests/backends/stress_test[1]_include.cmake")
