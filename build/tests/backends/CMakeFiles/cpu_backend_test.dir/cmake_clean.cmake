file(REMOVE_RECURSE
  "CMakeFiles/cpu_backend_test.dir/cpu_backend_test.cpp.o"
  "CMakeFiles/cpu_backend_test.dir/cpu_backend_test.cpp.o.d"
  "cpu_backend_test"
  "cpu_backend_test.pdb"
  "cpu_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
