# Empty compiler generated dependencies file for cached_backend_test.
# This may be replaced when dependencies are built.
