file(REMOVE_RECURSE
  "CMakeFiles/cached_backend_test.dir/cached_backend_test.cpp.o"
  "CMakeFiles/cached_backend_test.dir/cached_backend_test.cpp.o.d"
  "cached_backend_test"
  "cached_backend_test.pdb"
  "cached_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cached_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
