file(REMOVE_RECURSE
  "CMakeFiles/dlbooster_backend_test.dir/dlbooster_backend_test.cpp.o"
  "CMakeFiles/dlbooster_backend_test.dir/dlbooster_backend_test.cpp.o.d"
  "dlbooster_backend_test"
  "dlbooster_backend_test.pdb"
  "dlbooster_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlbooster_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
