# Empty dependencies file for dlbooster_backend_test.
# This may be replaced when dependencies are built.
