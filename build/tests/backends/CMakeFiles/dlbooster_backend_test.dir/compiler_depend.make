# Empty compiler generated dependencies file for dlbooster_backend_test.
# This may be replaced when dependencies are built.
