# Empty dependencies file for lmdb_backend_test.
# This may be replaced when dependencies are built.
