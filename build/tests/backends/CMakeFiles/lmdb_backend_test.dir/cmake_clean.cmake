file(REMOVE_RECURSE
  "CMakeFiles/lmdb_backend_test.dir/lmdb_backend_test.cpp.o"
  "CMakeFiles/lmdb_backend_test.dir/lmdb_backend_test.cpp.o.d"
  "lmdb_backend_test"
  "lmdb_backend_test.pdb"
  "lmdb_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmdb_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
