# Empty dependencies file for backend_equivalence_test.
# This may be replaced when dependencies are built.
