file(REMOVE_RECURSE
  "CMakeFiles/synthetic_backend_test.dir/synthetic_backend_test.cpp.o"
  "CMakeFiles/synthetic_backend_test.dir/synthetic_backend_test.cpp.o.d"
  "synthetic_backend_test"
  "synthetic_backend_test.pdb"
  "synthetic_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
