# Empty compiler generated dependencies file for api_table_test.
# This may be replaced when dependencies are built.
