file(REMOVE_RECURSE
  "CMakeFiles/api_table_test.dir/api_table_test.cpp.o"
  "CMakeFiles/api_table_test.dir/api_table_test.cpp.o.d"
  "api_table_test"
  "api_table_test.pdb"
  "api_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
