# Empty dependencies file for inference_sim_test.
# This may be replaced when dependencies are built.
