file(REMOVE_RECURSE
  "CMakeFiles/inference_sim_test.dir/inference_sim_test.cpp.o"
  "CMakeFiles/inference_sim_test.dir/inference_sim_test.cpp.o.d"
  "inference_sim_test"
  "inference_sim_test.pdb"
  "inference_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
