file(REMOVE_RECURSE
  "CMakeFiles/econ_test.dir/econ_test.cpp.o"
  "CMakeFiles/econ_test.dir/econ_test.cpp.o.d"
  "econ_test"
  "econ_test.pdb"
  "econ_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/econ_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
