file(REMOVE_RECURSE
  "CMakeFiles/toy_trainer_test.dir/toy_trainer_test.cpp.o"
  "CMakeFiles/toy_trainer_test.dir/toy_trainer_test.cpp.o.d"
  "toy_trainer_test"
  "toy_trainer_test.pdb"
  "toy_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toy_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
