# Empty dependencies file for toy_trainer_test.
# This may be replaced when dependencies are built.
