file(REMOVE_RECURSE
  "CMakeFiles/training_sim_test.dir/training_sim_test.cpp.o"
  "CMakeFiles/training_sim_test.dir/training_sim_test.cpp.o.d"
  "training_sim_test"
  "training_sim_test.pdb"
  "training_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
