# Empty dependencies file for training_sim_test.
# This may be replaced when dependencies are built.
