# CMake generated Testfile for 
# Source directory: /root/repo/tests/workflow
# Build directory: /root/repo/build/tests/workflow
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/workflow/report_test[1]_include.cmake")
include("/root/repo/build/tests/workflow/training_sim_test[1]_include.cmake")
include("/root/repo/build/tests/workflow/inference_sim_test[1]_include.cmake")
include("/root/repo/build/tests/workflow/econ_test[1]_include.cmake")
include("/root/repo/build/tests/workflow/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/workflow/toy_trainer_test[1]_include.cmake")
