# CMake generated Testfile for 
# Source directory: /root/repo/tests/dataplane
# Build directory: /root/repo/build/tests/dataplane
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dataplane/manifest_test[1]_include.cmake")
include("/root/repo/build/tests/dataplane/blob_store_test[1]_include.cmake")
include("/root/repo/build/tests/dataplane/synthetic_dataset_test[1]_include.cmake")
include("/root/repo/build/tests/dataplane/batch_loader_test[1]_include.cmake")
include("/root/repo/build/tests/dataplane/disk_nic_model_test[1]_include.cmake")
