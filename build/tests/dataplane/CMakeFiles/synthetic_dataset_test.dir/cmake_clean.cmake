file(REMOVE_RECURSE
  "CMakeFiles/synthetic_dataset_test.dir/synthetic_dataset_test.cpp.o"
  "CMakeFiles/synthetic_dataset_test.dir/synthetic_dataset_test.cpp.o.d"
  "synthetic_dataset_test"
  "synthetic_dataset_test.pdb"
  "synthetic_dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
