# Empty dependencies file for synthetic_dataset_test.
# This may be replaced when dependencies are built.
