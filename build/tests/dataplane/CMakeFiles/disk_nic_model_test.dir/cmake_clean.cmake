file(REMOVE_RECURSE
  "CMakeFiles/disk_nic_model_test.dir/disk_nic_model_test.cpp.o"
  "CMakeFiles/disk_nic_model_test.dir/disk_nic_model_test.cpp.o.d"
  "disk_nic_model_test"
  "disk_nic_model_test.pdb"
  "disk_nic_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_nic_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
