file(REMOVE_RECURSE
  "CMakeFiles/batch_loader_test.dir/batch_loader_test.cpp.o"
  "CMakeFiles/batch_loader_test.dir/batch_loader_test.cpp.o.d"
  "batch_loader_test"
  "batch_loader_test.pdb"
  "batch_loader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
