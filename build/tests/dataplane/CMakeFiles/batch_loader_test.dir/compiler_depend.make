# Empty compiler generated dependencies file for batch_loader_test.
# This may be replaced when dependencies are built.
