# CMake generated Testfile for 
# Source directory: /root/repo/tests/hostbridge
# Build directory: /root/repo/build/tests/hostbridge
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hostbridge/hugepage_pool_test[1]_include.cmake")
include("/root/repo/build/tests/hostbridge/data_collector_test[1]_include.cmake")
include("/root/repo/build/tests/hostbridge/fpga_reader_test[1]_include.cmake")
include("/root/repo/build/tests/hostbridge/dispatcher_test[1]_include.cmake")
