# Empty dependencies file for fpga_reader_test.
# This may be replaced when dependencies are built.
