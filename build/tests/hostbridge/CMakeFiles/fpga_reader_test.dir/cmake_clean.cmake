file(REMOVE_RECURSE
  "CMakeFiles/fpga_reader_test.dir/fpga_reader_test.cpp.o"
  "CMakeFiles/fpga_reader_test.dir/fpga_reader_test.cpp.o.d"
  "fpga_reader_test"
  "fpga_reader_test.pdb"
  "fpga_reader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_reader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
