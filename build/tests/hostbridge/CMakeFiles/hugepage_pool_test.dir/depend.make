# Empty dependencies file for hugepage_pool_test.
# This may be replaced when dependencies are built.
