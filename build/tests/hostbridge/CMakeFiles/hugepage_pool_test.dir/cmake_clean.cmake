file(REMOVE_RECURSE
  "CMakeFiles/hugepage_pool_test.dir/hugepage_pool_test.cpp.o"
  "CMakeFiles/hugepage_pool_test.dir/hugepage_pool_test.cpp.o.d"
  "hugepage_pool_test"
  "hugepage_pool_test.pdb"
  "hugepage_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hugepage_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
