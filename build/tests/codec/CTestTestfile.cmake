# CMake generated Testfile for 
# Source directory: /root/repo/tests/codec
# Build directory: /root/repo/build/tests/codec
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/codec/bit_io_test[1]_include.cmake")
include("/root/repo/build/tests/codec/huffman_test[1]_include.cmake")
include("/root/repo/build/tests/codec/dct_test[1]_include.cmake")
include("/root/repo/build/tests/codec/color_test[1]_include.cmake")
include("/root/repo/build/tests/codec/jpeg_roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/codec/jpeg_error_test[1]_include.cmake")
include("/root/repo/build/tests/codec/jpeg_stage_test[1]_include.cmake")
include("/root/repo/build/tests/codec/inflate_test[1]_include.cmake")
include("/root/repo/build/tests/codec/png_test[1]_include.cmake")
