file(REMOVE_RECURSE
  "CMakeFiles/bit_io_test.dir/bit_io_test.cpp.o"
  "CMakeFiles/bit_io_test.dir/bit_io_test.cpp.o.d"
  "bit_io_test"
  "bit_io_test.pdb"
  "bit_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bit_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
