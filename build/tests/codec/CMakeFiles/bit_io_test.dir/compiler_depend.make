# Empty compiler generated dependencies file for bit_io_test.
# This may be replaced when dependencies are built.
