# Empty compiler generated dependencies file for jpeg_stage_test.
# This may be replaced when dependencies are built.
