file(REMOVE_RECURSE
  "CMakeFiles/jpeg_stage_test.dir/jpeg_stage_test.cpp.o"
  "CMakeFiles/jpeg_stage_test.dir/jpeg_stage_test.cpp.o.d"
  "jpeg_stage_test"
  "jpeg_stage_test.pdb"
  "jpeg_stage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpeg_stage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
