# Empty dependencies file for inflate_test.
# This may be replaced when dependencies are built.
