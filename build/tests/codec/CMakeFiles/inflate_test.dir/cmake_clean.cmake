file(REMOVE_RECURSE
  "CMakeFiles/inflate_test.dir/inflate_test.cpp.o"
  "CMakeFiles/inflate_test.dir/inflate_test.cpp.o.d"
  "inflate_test"
  "inflate_test.pdb"
  "inflate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
