# Empty compiler generated dependencies file for jpeg_error_test.
# This may be replaced when dependencies are built.
